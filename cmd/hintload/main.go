// Command hintload is the load generator for the hint-serving plane:
// it simulates a herd of hint-protocol clients over real UDP against a
// hintnode AP (or any internal/hintserve server) and reports
// throughput and ACK latency.
//
//	hintnode -listen 127.0.0.1:9999 &
//	hintload -target 127.0.0.1:9999 -clients 10000 -packets 1000000
//
// The traffic mix is configurable: the fraction of clients moving, how
// often they flip movement state, how hints are carried (movement
// header bit always; TLV trailers and standalone hint frames by
// ratio), and a fraction of deliberately corrupted frames to exercise
// the AP's decode rejection. The run is deterministic for a fixed
// -seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/hintserve"
)

func main() {
	target := flag.String("target", "", "serving plane UDP address (required)")
	clients := flag.Int("clients", 1000, "simulated clients")
	firstClient := flag.Int("first-client", 0, "client numbering offset (for concurrent herds)")
	packets := flag.Int64("packets", 100000, "total data frames to send")
	senders := flag.Int("senders", 0, "sender goroutines (0 = default)")
	window := flag.Int("window", 64, "per-sender in-flight window")
	moving := flag.Float64("moving", 0.5, "fraction of clients initially moving")
	toggle := flag.Int("toggle", 64, "frames between movement flips per client (0 = never)")
	trailer := flag.Float64("trailer", 0.5, "fraction of data frames carrying a TLV hint trailer")
	hintFrames := flag.Float64("hint-frames", 0.05, "standalone hint frames per data frame")
	corrupt := flag.Float64("corrupt", 0, "fraction of data frames sent with a broken FCS")
	payload := flag.Int("payload", 64, "data frame payload bytes")
	seed := flag.Int64("seed", 1, "traffic randomness seed")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall run deadline")
	jsonOut := flag.String("json", "", "also write the report as JSON to this file (- for stdout)")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "usage: hintload -target host:port [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	rep, err := hintserve.RunLoad(hintserve.LoadConfig{
		Target:         *target,
		Clients:        *clients,
		FirstClient:    *firstClient,
		Packets:        *packets,
		Senders:        *senders,
		Window:         *window,
		MovingRatio:    *moving,
		TogglePeriod:   *toggle,
		TrailerRatio:   *trailer,
		HintFrameRatio: *hintFrames,
		CorruptRatio:   *corrupt,
		PayloadSize:    *payload,
		Seed:           *seed,
		Timeout:        *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	if *jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		b = append(b, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	// A run that acked nothing means the plane was unreachable or dead:
	// fail loudly so scripted harnesses catch it.
	if rep.Acked == 0 {
		log.Fatalf("no ACKs received from %s", *target)
	}
}
