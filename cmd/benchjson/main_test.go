package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func f(v float64) *float64 { return &v }

func rec(rs ...Result) map[string]Result {
	m := map[string]Result{}
	for _, r := range rs {
		m[r.Name] = r
	}
	return m
}

// TestCompareResultsNsGate pins the original ns/op rule: up to 25%
// slower passes, beyond it fails.
func TestCompareResultsNsGate(t *testing.T) {
	base := rec(Result{Name: "BenchmarkX", NsPerOp: 100})
	if _, _, regs := compareResults(base, []Result{{Name: "BenchmarkX", NsPerOp: 124}}); len(regs) != 0 {
		t.Errorf("24%% slower flagged: %v", regs)
	}
	compared, _, regs := compareResults(base, []Result{{Name: "BenchmarkX", NsPerOp: 126}})
	if compared != 1 || len(regs) != 1 {
		t.Errorf("26%% slower not flagged: compared=%d regs=%v", compared, regs)
	}
}

// TestCompareResultsAllocGate is the regression test for the silent
// alloc-gate bug: a recorded allocs/op of 0 turning nonzero must fail
// the check (it never did — only ns/op was compared), growth of a
// nonzero record must fail, and equal-or-better allocs must pass.
func TestCompareResultsAllocGate(t *testing.T) {
	base := rec(
		Result{Name: "BenchmarkZeroAlloc", NsPerOp: 100, AllocsPerOp: f(0)},
		Result{Name: "BenchmarkSomeAllocs", NsPerOp: 100, AllocsPerOp: f(2)},
	)

	// The injected regression: 0 allocs/op recorded, 1 measured. ns/op
	// is identical, so only the alloc rule can catch it.
	_, _, regs := compareResults(base, []Result{{Name: "BenchmarkZeroAlloc", NsPerOp: 100, AllocsPerOp: f(1)}})
	if len(regs) != 1 || !strings.Contains(regs[0], "zero-alloc contract") {
		t.Errorf("0 -> 1 allocs/op not flagged: %v", regs)
	}

	// Growth of a nonzero record fails; staying equal or shrinking
	// passes.
	_, _, regs = compareResults(base, []Result{{Name: "BenchmarkSomeAllocs", NsPerOp: 100, AllocsPerOp: f(3)}})
	if len(regs) != 1 {
		t.Errorf("2 -> 3 allocs/op not flagged: %v", regs)
	}
	_, _, regs = compareResults(base, []Result{
		{Name: "BenchmarkZeroAlloc", NsPerOp: 100, AllocsPerOp: f(0)},
		{Name: "BenchmarkSomeAllocs", NsPerOp: 100, AllocsPerOp: f(1)},
	})
	if len(regs) != 0 {
		t.Errorf("unchanged/improved allocs flagged: %v", regs)
	}

	// A benchmark that stops reporting allocs would un-gate the
	// contract silently — that is itself a failure.
	_, _, regs = compareResults(base, []Result{{Name: "BenchmarkZeroAlloc", NsPerOp: 100}})
	if len(regs) != 1 || !strings.Contains(regs[0], "no longer reported") {
		t.Errorf("lost allocs column not flagged: %v", regs)
	}

	// No recorded allocs: no alloc gate, whatever fresh reports.
	loose := rec(Result{Name: "BenchmarkY", NsPerOp: 100})
	if _, _, regs := compareResults(loose, []Result{{Name: "BenchmarkY", NsPerOp: 100, AllocsPerOp: f(7)}}); len(regs) != 0 {
		t.Errorf("ungated benchmark flagged on allocs: %v", regs)
	}
}

// TestParseResultsAllocs proves the parse → record → reload round trip
// preserves a measured 0 allocs/op: the omitempty float64 form dropped
// it, which is how the recorded contract went missing.
func TestParseResultsAllocs(t *testing.T) {
	raw := "BenchmarkHot-4   1000   125 ns/op   0 B/op   0 allocs/op\n" +
		"BenchmarkNoAllocs-4   500   90 ns/op\n"
	rs := parseResults([]byte(raw))
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2", len(rs))
	}
	if rs[0].AllocsPerOp == nil || *rs[0].AllocsPerOp != 0 {
		t.Fatalf("measured 0 allocs/op parsed as %v", rs[0].AllocsPerOp)
	}
	if rs[1].AllocsPerOp != nil {
		t.Fatalf("unmeasured allocs parsed as %v", *rs[1].AllocsPerOp)
	}
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"allocs_per_op":0`) {
		t.Fatalf("measured 0 allocs/op dropped from the record: %s", data)
	}
	var back []Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].AllocsPerOp == nil || *back[0].AllocsPerOp != 0 {
		t.Fatalf("0 allocs/op lost in round trip: %v", back[0].AllocsPerOp)
	}
}
