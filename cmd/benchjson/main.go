// Command benchjson runs the repository's figure and hot-path
// benchmarks and records the results as machine-readable JSON, so the
// performance trajectory of the simulation core is tracked in-repo
// rather than lost in terminal scrollback.
//
//	benchjson [-out BENCH_hotpath.json] [-bench <regex>] [-benchtime 1x]
//	benchjson -check BENCH_hotpath.json [-out BENCH_current.json]
//
// It shells out to `go test -bench`, echoes the raw output, then parses
// ns/op (and B/op / allocs/op when present) into a result list plus two
// families of derived speedups:
//
//   - workers=N sub-benchmarks of the BenchmarkParallel* experiments
//     against their workers=1 serial baseline, and
//   - table-driven fast paths (lut sub-benchmarks) against their
//     analytic/reference twins.
//
// -check is the bench regression gate: it re-runs only the hot-path
// micro-benchmarks (the stable, iteration-counted pass), compares each
// entry's ns/op against the recorded trajectory, writes the fresh
// snapshot to -out (default BENCH_current.json, so the record itself is
// not clobbered), and exits 1 when any entry regressed by more than 25%
// — noise-tolerant enough for CI hardware variance while catching real
// hot-path regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is a pointer so a measured 0 survives the JSON round
	// trip: with a plain float64 and omitempty, the recorded zero-alloc
	// contract of a b.ReportAllocs benchmark silently vanished from the
	// record — and the gate had nothing to compare.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric columns (pps, p99-us, ...)
	// keyed by their unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Speedup is one derived baseline-vs-variant ratio.
type Speedup struct {
	Benchmark string  `json:"benchmark"`
	Baseline  string  `json:"baseline"`
	Variant   string  `json:"variant"`
	Speedup   float64 `json:"speedup"`
}

// Report is the BENCH_hotpath.json schema.
type Report struct {
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	NumCPU      int       `json:"num_cpu"`
	BenchRegex  string    `json:"bench_regex"`
	BenchTime   string    `json:"bench_time"`
	Results     []Result  `json:"results"`
	Speedups    []Speedup `json:"speedups"`
}

// benchLine matches `BenchmarkX/sub-8   12  3456 ns/op  ...`.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)
	bytesCol   = regexp.MustCompile(`([\d.]+) B/op`)
	allocsCol  = regexp.MustCompile(`([\d.]+) allocs/op`)
	metricCol  = regexp.MustCompile(`([\d.eE+-]+) (\S+)`)
	lutBenches = []struct{ variant, baseline string }{
		{"BenchmarkDeliveryProb/lut", "BenchmarkDeliveryProb/analytic"},
		{"BenchmarkGenerate/lut", "BenchmarkGenerate/reference"},
		{"BenchmarkGenerate/lut-into", "BenchmarkGenerate/reference"},
	}
)

// runPass shells out one `go test -bench` invocation and returns the
// raw output (also echoed to stdout).
func runPass(bench, benchtime string) []byte {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench, "-benchtime", benchtime, ".")
	cmd.Stderr = os.Stderr
	got, err := cmd.Output()
	os.Stdout.Write(got)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n", err)
		os.Exit(1)
	}
	return got
}

// parseResults extracts the benchmark lines of raw output.
func parseResults(raw []byte) []Result {
	var out []Result
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		// Optional columns emitted by b.ReportAllocs.
		if bm := bytesCol.FindStringSubmatch(m[4]); bm != nil {
			r.BytesPerOp, _ = strconv.ParseFloat(bm[1], 64)
		}
		if am := allocsCol.FindStringSubmatch(m[4]); am != nil {
			if v, err := strconv.ParseFloat(am[1], 64); err == nil {
				r.AllocsPerOp = &v
			}
		}
		// Custom b.ReportMetric columns (anything besides the three
		// standard units) land in Extra keyed by unit.
		for _, mm := range metricCol.FindAllStringSubmatch(m[4], -1) {
			unit := mm[2]
			if unit == "B/op" || unit == "allocs/op" {
				continue
			}
			if v, err := strconv.ParseFloat(mm[1], 64); err == nil {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
		out = append(out, r)
	}
	return out
}

// writeReport marshals the report to path.
func writeReport(rep Report, path string) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// maxRegression is the gate: a hot-path entry may be up to this much
// slower than the recorded trajectory before -check fails.
const maxRegression = 1.25

// compareResults gates fresh results against the recorded ones and
// returns the per-entry report lines, the regression descriptions, and
// how many entries overlapped. Two rules per overlapping entry:
//
//   - ns/op may grow up to maxRegression (CI hardware variance);
//   - allocs/op is exact, not noisy: a recorded 0 that turns nonzero
//     breaks an allocation-budget contract, a nonzero record must not
//     grow, and a record that stops being measured at all un-gates the
//     contract silently — all three fail the check.
func compareResults(recBy map[string]Result, fresh []Result) (compared int, lines, regressions []string) {
	for _, r := range fresh {
		base, ok := recBy[r.Name]
		if !ok || base.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		compared++
		verdict := "ok"
		ratio := r.NsPerOp / base.NsPerOp
		if ratio > maxRegression {
			verdict = "REGRESSED"
			regressions = append(regressions, fmt.Sprintf("%s: %.1f ns/op vs recorded %.1f ns/op (%.2fx)", r.Name, r.NsPerOp, base.NsPerOp, ratio))
		}
		allocs := ""
		if base.AllocsPerOp != nil {
			switch {
			case r.AllocsPerOp == nil:
				verdict = "REGRESSED"
				regressions = append(regressions, fmt.Sprintf("%s: allocs/op no longer reported (recorded %g; the allocation gate would go silent)", r.Name, *base.AllocsPerOp))
			case *base.AllocsPerOp == 0 && *r.AllocsPerOp > 0:
				verdict = "REGRESSED"
				regressions = append(regressions, fmt.Sprintf("%s: %g allocs/op vs recorded 0 (zero-alloc contract broken)", r.Name, *r.AllocsPerOp))
			case *r.AllocsPerOp > *base.AllocsPerOp:
				verdict = "REGRESSED"
				regressions = append(regressions, fmt.Sprintf("%s: %g allocs/op vs recorded %g", r.Name, *r.AllocsPerOp, *base.AllocsPerOp))
			}
			if r.AllocsPerOp != nil {
				allocs = fmt.Sprintf("  %g/%g allocs/op", *r.AllocsPerOp, *base.AllocsPerOp)
			}
		}
		lines = append(lines, fmt.Sprintf("check %-40s recorded %10.1f ns/op  current %10.1f ns/op  %.2fx%s  %s",
			r.Name, base.NsPerOp, r.NsPerOp, ratio, allocs, verdict))
	}
	return compared, lines, regressions
}

// check re-runs the micro-benchmarks and compares ns/op against the
// recorded report; returns the exit code.
func check(recordPath, outPath, micro, microtime string) int {
	data, err := os.ReadFile(recordPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	var rec Report
	if err := json.Unmarshal(data, &rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", recordPath, err)
		return 1
	}
	recBy := map[string]Result{}
	for _, r := range rec.Results {
		recBy[r.Name] = r
	}

	fresh := Report{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		BenchRegex:  micro,
		BenchTime:   microtime,
		Results:     parseResults(runPass(micro, microtime)),
	}
	writeReport(fresh, outPath)

	compared, lines, regressions := compareResults(recBy, fresh.Results)
	for _, l := range lines {
		fmt.Println(l)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no hot-path entries of %s overlap the current benchmarks (stale record?)\n", recordPath)
		return 1
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d hot-path regression%s (ns/op gate %d%%, allocs/op gated exactly):\n",
			len(regressions), map[bool]string{true: "", false: "s"}[len(regressions) == 1], int(maxRegression*100)-100)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Printf("benchjson: %d hot-path entries within %d%% of the recorded trajectory (allocs/op unchanged)\n", compared, int(maxRegression*100)-100)
	return 0
}

func main() {
	out := flag.String("out", "", "output JSON `file` (default BENCH_hotpath.json, or BENCH_current.json with -check)")
	bench := flag.String("bench", "Fig|Table|Sec|Parallel",
		"figure-level benchmark regex, run once per experiment (-benchtime)")
	benchtime := flag.String("benchtime", "1x", "value passed to -benchtime for the figure benchmarks")
	micro := flag.String("microbench", "DeliveryProb|Generate|RatesimRun",
		"hot-path micro-benchmark regex, run with -microtime for stable ns/op")
	microtime := flag.String("microtime", "200ms", "value passed to -benchtime for the micro-benchmarks")
	checkPath := flag.String("check", "", "recorded JSON `file` to gate against: re-run the micro-benchmarks and fail on >25% ns/op regression")
	flag.Parse()

	if *checkPath != "" {
		if *out == "" {
			*out = "BENCH_current.json"
		}
		os.Exit(check(*checkPath, *out, *micro, *microtime))
	}
	if *out == "" {
		*out = "BENCH_hotpath.json"
	}

	// Two passes: experiments are one-shot (each iteration is a full
	// reproduction), micro-benchmarks need real iteration counts.
	var raw []byte
	for _, pass := range [][2]string{{*bench, *benchtime}, {*micro, *microtime}} {
		raw = append(raw, runPass(pass[0], pass[1])...)
	}

	rep := Report{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		BenchRegex:  *bench + "|" + *micro,
		BenchTime:   *benchtime + "/" + *microtime,
		Results:     parseResults(raw),
	}
	byName := map[string]Result{}
	for _, r := range rep.Results {
		byName[r.Name] = r
	}

	// Parallel experiment speedups vs the workers=1 serial baseline.
	for _, r := range rep.Results {
		name, sub, ok := strings.Cut(r.Name, "/")
		if !ok || !strings.HasPrefix(sub, "workers=") || sub == "workers=1" {
			continue
		}
		base, ok := byName[name+"/workers=1"]
		if !ok || r.NsPerOp == 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, Speedup{
			Benchmark: name, Baseline: "workers=1", Variant: sub,
			Speedup: base.NsPerOp / r.NsPerOp,
		})
	}
	// Table-driven fast path vs analytic/reference twins, in fixed
	// order so repeat runs diff cleanly.
	for _, pair := range lutBenches {
		v, okV := byName[pair.variant]
		b, okB := byName[pair.baseline]
		if !okV || !okB || v.NsPerOp == 0 {
			continue
		}
		name, sub, _ := strings.Cut(pair.variant, "/")
		rep.Speedups = append(rep.Speedups, Speedup{
			Benchmark: name, Baseline: strings.TrimPrefix(pair.baseline, name+"/"), Variant: sub,
			Speedup: b.NsPerOp / v.NsPerOp,
		})
	}

	writeReport(rep, *out)
	fmt.Printf("wrote %s (%d results, %d speedups)\n", *out, len(rep.Results), len(rep.Speedups))
}
