// Command benchjson runs the repository's figure and hot-path
// benchmarks and records the results as machine-readable JSON, so the
// performance trajectory of the simulation core is tracked in-repo
// rather than lost in terminal scrollback.
//
//	benchjson [-out BENCH_hotpath.json] [-bench <regex>] [-benchtime 1x]
//
// It shells out to `go test -bench`, echoes the raw output, then parses
// ns/op (and B/op / allocs/op when present) into a result list plus two
// families of derived speedups:
//
//   - workers=N sub-benchmarks of the BenchmarkParallel* experiments
//     against their workers=1 serial baseline, and
//   - table-driven fast paths (lut sub-benchmarks) against their
//     analytic/reference twins.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Speedup is one derived baseline-vs-variant ratio.
type Speedup struct {
	Benchmark string  `json:"benchmark"`
	Baseline  string  `json:"baseline"`
	Variant   string  `json:"variant"`
	Speedup   float64 `json:"speedup"`
}

// Report is the BENCH_hotpath.json schema.
type Report struct {
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	NumCPU      int       `json:"num_cpu"`
	BenchRegex  string    `json:"bench_regex"`
	BenchTime   string    `json:"bench_time"`
	Results     []Result  `json:"results"`
	Speedups    []Speedup `json:"speedups"`
}

// benchLine matches `BenchmarkX/sub-8   12  3456 ns/op  ...`.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)
	bytesCol   = regexp.MustCompile(`([\d.]+) B/op`)
	allocsCol  = regexp.MustCompile(`([\d.]+) allocs/op`)
	lutBenches = []struct{ variant, baseline string }{
		{"BenchmarkDeliveryProb/lut", "BenchmarkDeliveryProb/analytic"},
		{"BenchmarkGenerate/lut", "BenchmarkGenerate/reference"},
		{"BenchmarkGenerate/lut-into", "BenchmarkGenerate/reference"},
	}
)

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "output JSON `file`")
	bench := flag.String("bench", "Fig|Table|Sec|Parallel",
		"figure-level benchmark regex, run once per experiment (-benchtime)")
	benchtime := flag.String("benchtime", "1x", "value passed to -benchtime for the figure benchmarks")
	micro := flag.String("microbench", "DeliveryProb|Generate|RatesimRun",
		"hot-path micro-benchmark regex, run with -microtime for stable ns/op")
	microtime := flag.String("microtime", "200ms", "value passed to -benchtime for the micro-benchmarks")
	flag.Parse()

	// Two passes: experiments are one-shot (each iteration is a full
	// reproduction), micro-benchmarks need real iteration counts.
	var raw []byte
	for _, pass := range [][2]string{{*bench, *benchtime}, {*micro, *microtime}} {
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", pass[0], "-benchtime", pass[1], ".")
		cmd.Stderr = os.Stderr
		got, err := cmd.Output()
		os.Stdout.Write(got)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n", err)
			os.Exit(1)
		}
		raw = append(raw, got...)
	}

	rep := Report{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		BenchRegex:  *bench + "|" + *micro,
		BenchTime:   *benchtime + "/" + *microtime,
	}
	byName := map[string]Result{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		// Optional columns emitted by b.ReportAllocs.
		if bm := bytesCol.FindStringSubmatch(m[4]); bm != nil {
			r.BytesPerOp, _ = strconv.ParseFloat(bm[1], 64)
		}
		if am := allocsCol.FindStringSubmatch(m[4]); am != nil {
			r.AllocsPerOp, _ = strconv.ParseFloat(am[1], 64)
		}
		rep.Results = append(rep.Results, r)
		byName[r.Name] = r
	}

	// Parallel experiment speedups vs the workers=1 serial baseline.
	for _, r := range rep.Results {
		name, sub, ok := strings.Cut(r.Name, "/")
		if !ok || !strings.HasPrefix(sub, "workers=") || sub == "workers=1" {
			continue
		}
		base, ok := byName[name+"/workers=1"]
		if !ok || r.NsPerOp == 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, Speedup{
			Benchmark: name, Baseline: "workers=1", Variant: sub,
			Speedup: base.NsPerOp / r.NsPerOp,
		})
	}
	// Table-driven fast path vs analytic/reference twins, in fixed
	// order so repeat runs diff cleanly.
	for _, pair := range lutBenches {
		v, okV := byName[pair.variant]
		b, okB := byName[pair.baseline]
		if !okV || !okB || v.NsPerOp == 0 {
			continue
		}
		name, sub, _ := strings.Cut(pair.variant, "/")
		rep.Speedups = append(rep.Speedups, Speedup{
			Benchmark: name, Baseline: strings.TrimPrefix(pair.baseline, name+"/"), Variant: sub,
			Speedup: b.NsPerOp / v.NsPerOp,
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results, %d speedups)\n", *out, len(rep.Results), len(rep.Speedups))
}
