// Command hintbench regenerates the paper's tables and figures. Each
// experiment prints the rows/series the paper reports plus automated
// shape checks (who wins, by roughly what factor, where crossovers
// fall).
//
// Usage:
//
//	hintbench -list
//	hintbench [-scale 1.0] [-seed 42] [-workers N] all
//	hintbench [-scale 1.0] [-seed 42] [-workers N] fig3-5 table5-1 ...
//	hintbench -cpuprofile cpu.pprof -memprofile mem.pprof fig3-5
//
// Reports are bit-identical for any -workers value: trials derive their
// seeds by trial index and merge in trial order, so -workers only
// changes how fast the tables appear. To spread one experiment across
// processes (or machines) with the same guarantee, see cmd/hintshard.
//
// -cpuprofile/-memprofile write pprof profiles covering the experiment
// runs (the profiles are flushed even when shape checks fail), for
// hunting hot-path regressions with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the exit code back to main so deferred profile
// writers run before the process exits (os.Exit skips defers).
func realMain() int {
	scale := flag.Float64("scale", 1.0, "experiment scale (1.0 = paper scale, smaller = faster)")
	seed := flag.Int64("seed", 42, "random seed for deterministic runs")
	workers := flag.Int("workers", 0, "worker goroutines per experiment (0 = one per CPU); output is identical for any value")
	list := flag.Bool("list", false, "list experiments and exit")
	tag := flag.String("tag", "", "run every experiment carrying this registry tag (see -list)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to `file` (pprof format)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to `file` on exit (pprof format)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recent allocation stats before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	reg := experiments.Default
	if *list {
		for _, e := range reg.All() {
			fmt.Printf("%-12s %-40s %s\n", e.ID, e.Desc, strings.Join(e.Tags, ","))
		}
		fmt.Printf("tags: %s\n", strings.Join(reg.Tags(), " "))
		return 0
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers}
	ids := flag.Args()
	var runners []experiments.Runner
	switch {
	case *tag != "":
		if len(ids) > 0 {
			fmt.Fprintln(os.Stderr, "-tag and explicit experiment ids are mutually exclusive")
			return 2
		}
		runners = reg.ByTag(*tag)
		if len(runners) == 0 {
			fmt.Fprintf(os.Stderr, "no experiments tagged %q (try -list)\n", *tag)
			return 2
		}
	case len(ids) == 0:
		fmt.Fprintln(os.Stderr, "usage: hintbench [-scale S] [-seed N] all | -tag <tag> | <experiment-id>...")
		fmt.Fprintln(os.Stderr, "run 'hintbench -list' for experiment ids and tags")
		return 2
	case len(ids) == 1 && ids[0] == "all":
		runners = reg.All()
	default:
		for _, id := range ids {
			r, ok := reg.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				return 2
			}
			runners = append(runners, r)
		}
	}

	failed := 0
	for _, r := range runners {
		rep := r.Run(cfg)
		fmt.Println(rep)
		failed += len(rep.Failed())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d shape check(s) failed\n", failed)
		return 1
	}
	return 0
}
