// Command tracegen generates synthetic channel fate traces in the format
// the MAC simulator replays (framed binary trace.FateTrace, see internal/trace/codec.go), standing in
// for the paper's real-world trace collection campaign.
//
// Usage:
//
//	tracegen -env office -mode mixed -duration 20s -seed 7 -o trace.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/channel"
	"repro/internal/sensors"
)

func main() {
	envName := flag.String("env", "office", "environment: office, hallway, outdoor, vehicular")
	mode := flag.String("mode", "mixed", "mobility: static, mobile, mixed")
	duration := flag.Duration("duration", 20*time.Second, "trace length")
	period := flag.Duration("period", 10*time.Second, "static/mobile alternation period for mixed mode")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var env channel.Environment
	switch *envName {
	case "office":
		env = channel.Office
	case "hallway":
		env = channel.Hallway
	case "outdoor":
		env = channel.Outdoor
	case "vehicular":
		env = channel.Vehicular
	default:
		fmt.Fprintf(os.Stderr, "unknown environment %q\n", *envName)
		os.Exit(2)
	}

	moveMode := sensors.Walk
	if *envName == "vehicular" {
		moveMode = sensors.Vehicle
	}
	var sched sensors.Schedule
	switch *mode {
	case "static":
		sched = sensors.Schedule{{Start: 0, End: *duration, Mode: sensors.Static}}
	case "mobile":
		sched = sensors.Schedule{{Start: 0, End: *duration, Mode: moveMode}}
	case "mixed":
		sched = sensors.AlternatingSchedule(*duration, *period, moveMode, false)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	tr := channel.Generate(channel.Config{Env: env, Sched: sched, Total: *duration, Seed: *seed})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Encode(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s/%s trace: %d slots, %v\n", tr.Env, tr.Mode, len(tr.Slots), tr.Duration())
}
