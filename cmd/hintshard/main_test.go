package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

// TestFlagValidation is the table-driven CLI contract: contradictory
// mode selectors are rejected with a usage message and exit code 2,
// never silently prioritized, and each mode insists on the flags it
// needs.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"no mode", []string{}, "no mode selected"},
		{"merge and shard", []string{"-merge", "-shard", "0/2", "-run", "fig2-2"}, "contradictory modes"},
		{"merge and shards", []string{"-merge", "-shards", "3"}, "contradictory modes"},
		{"connect and shards", []string{"-connect", "h:1", "-shards", "2"}, "contradictory modes"},
		{"connect and serve-stdio", []string{"-connect", "h:1", "-serve-stdio"}, "contradictory modes"},
		{"shard and shards", []string{"-run", "x", "-shard", "0/2", "-shards", "2"}, "contradictory modes"},
		{"listen without shards", []string{"-run", "fig2-2", "-listen", ":0"}, "-listen needs -shards"},
		{"coordinator without run", []string{"-shards", "3"}, "coordinator needs -run"},
		{"worker without run", []string{"-shard", "0/2"}, "-shard needs -run"},
		{"merge with run", []string{"-merge", "-run", "fig2-2"}, "takes only partial files"},
		{"connect with run", []string{"-connect", "h:1", "-run", "fig2-2"}, "assignments from the coordinator"},
		{"serve-stdio with output", []string{"-serve-stdio", "-o", "f.json"}, "assignments from the coordinator"},
		{"shard with listen", []string{"-run", "x", "-shard", "0/2", "-listen", ":0"}, "one-shot worker"},
		{"unknown transport", []string{"-run", "x", "-shards", "2", "-transport", "smoke-signals"}, "unknown -transport"},
		{"tcp transport without listen", []string{"-run", "x", "-shards", "2", "-transport", "tcp"}, "needs -listen"},
		{"procs with tcp", []string{"-run", "x", "-shards", "2", "-listen", ":0", "-procs", "3"}, "-procs applies to local transports"},
		{"listen with subprocess transport", []string{"-run", "x", "-shards", "2", "-listen", ":0", "-transport", "subprocess"}, "-listen implies -transport tcp"},
		{"die-after-assign on coordinator", []string{"-run", "x", "-shards", "2", "-die-after-assign", "1"}, "-die-after-assign is a worker flag"},
		{"die-after-assign on one-shot", []string{"-run", "x", "-shard", "0/2", "-die-after-assign", "1"}, "applies to protocol workers"},
		{"worker-die-after without subprocess", []string{"-run", "x", "-shards", "2", "-transport", "inproc", "-worker-die-after", "1"}, "-worker-die-after needs -transport subprocess"},
		{"addr-file without tcp", []string{"-run", "x", "-shards", "2", "-addr-file", "/tmp/a"}, "-addr-file publishes a -listen address"},
		{"coordinator flag on connect worker", []string{"-connect", "h:1", "-addr-file", "/tmp/a"}, "coordinator flag"},
		{"coordinator flag on stdio worker", []string{"-serve-stdio", "-retries", "5"}, "coordinator flag"},
		{"coordinator flag on merge", []string{"-merge", "-no-steal"}, "coordinator flag"},
		{"coordinator flag on one-shot", []string{"-run", "x", "-shard", "0/2", "-procs", "3"}, "coordinator flag"},
		{"campaign and merge", []string{"-campaign", "-merge", "fig2-2"}, "contradictory modes"},
		{"campaign and connect", []string{"-campaign", "-connect", "h:1"}, "contradictory modes"},
		{"campaign with run", []string{"-campaign", "-run", "fig2-2"}, "job specs, not -run"},
		{"campaign with one-shot output", []string{"-campaign", "-o", "f.json", "fig2-2"}, "one-shot worker flag"},
		{"campaign without jobs", []string{"-campaign", "-shards", "2"}, "no campaign jobs"},
		{"campaign bad verify", []string{"-campaign", "-verify", "1.5", "fig2-2"}, "outside [0, 1]"},
		{"campaign bad spec", []string{"-campaign", "-shards", "2", "fig2-2:flux=1"}, "unknown option"},
		{"campaign spec without shards", []string{"-campaign", "fig2-2"}, "no shard count"},
		{"campaign missing job file", []string{"-campaign", "-shards", "2", "@/definitely/not/a/file"}, "no such file"},
		{"campaign with die-after-assign", []string{"-campaign", "-die-after-assign", "1", "fig2-2"}, "-die-after-assign is a worker flag"},
		{"campaign listen with inproc", []string{"-campaign", "-transport", "inproc", "-listen", ":0", "fig2-2"}, "-listen implies -transport tcp"},
		{"verify without campaign", []string{"-run", "x", "-shards", "2", "-verify", "0.5"}, "campaign flag"},
		{"report-dir without campaign", []string{"-run", "x", "-shards", "2", "-report-dir", "/tmp/r"}, "campaign flag"},
		{"no-warm without campaign", []string{"-connect", "h:1", "-no-warm"}, "campaign flag"},
		{"heartbeat on connect worker", []string{"-connect", "h:1", "-heartbeat", "1s"}, "coordinator flag"},
		{"heartbeat-misses on stdio worker", []string{"-serve-stdio", "-heartbeat-misses", "5"}, "coordinator flag"},
		{"token on merge", []string{"-merge", "-token", "s"}, "cluster session flag"},
		{"chaos on one-shot", []string{"-run", "x", "-shard", "0/2", "-chaos-plan", "drop=0.1"}, "cluster session flag"},
		{"chaos on stdio worker", []string{"-serve-stdio", "-chaos-plan", "drop=0.1"}, "inject chaos at the coordinator"},
		{"chaos-seed without plan", []string{"-run", "x", "-shards", "2", "-chaos-seed", "7"}, "needs a -chaos-plan"},
		{"bad chaos plan", []string{"-run", "x", "-shards", "2", "-chaos-plan", "drop=2"}, "probability in [0,1]"},
		{"unknown chaos key", []string{"-connect", "h:1", "-chaos-plan", "teleport=0.5"}, "unknown chaos plan key"},
		{"reconnect without connect", []string{"-run", "x", "-shards", "2", "-reconnect", "3"}, "-reconnect applies to -connect workers"},
		{"negative reconnect", []string{"-connect", "h:1", "-reconnect", "-1"}, "is negative"},
		{"bad flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(c.args, &stdout, &stderr)
			if code != 2 {
				t.Errorf("exit code %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), c.want)
			}
		})
	}
}

func TestListMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fig3-1") {
		t.Errorf("-list output lacks experiments:\n%s", stdout.String())
	}
}

func TestOneShotWorkerErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "fig2-2", "-shard", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed shard spec: exit %d, want 2", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-run", "no-such", "-shard", "0/2"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown experiment: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

// TestInprocCoordinatorMatchesDirectRun drives the full coordinator
// pipeline through the CLI entry point (inproc transport) and compares
// against the equivalent of hintbench's output for the same experiment.
func TestInprocCoordinatorMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment")
	}
	exp, ok := experiments.ByID("fig2-2")
	if !ok {
		t.Fatal("fig2-2 not registered")
	}
	want := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String() + "\n"
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "fig2-2", "-shards", "5", "-transport", "inproc", "-procs", "2", "-scale", "0.1", "-seed", "42"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != want {
		t.Errorf("coordinator output differs from direct run:\n--- direct ---\n%s\n--- cli ---\n%s", want, stdout.String())
	}
}

// TestInprocCampaignMatchesDirectRuns drives the campaign pipeline
// through the CLI entry point (inproc transport, jobs from both a spec
// argument and an @file, verification on) and requires every report —
// on stdout, in submission order, and in -report-dir — to match the
// direct runs byte for byte.
func TestInprocCampaignMatchesDirectRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	dir := t.TempDir()
	jobFile := filepath.Join(dir, "jobs.txt")
	if err := os.WriteFile(jobFile, []byte("# tail of the campaign\nfig3-1:scale=0.1\nfig2-2:seed=7:shards=2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	repDir := filepath.Join(dir, "reports")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-campaign", "-transport", "inproc", "-procs", "2", "-shards", "3",
		"-scale", "0.1", "-seed", "42", "-verify", "1", "-report-dir", repDir,
		"fig2-2", "@" + jobFile}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	type jobCfg struct {
		id    string
		scale float64
		seed  int64
	}
	jobs := []jobCfg{{"fig2-2", 0.1, 42}, {"fig3-1", 0.1, 42}, {"fig2-2", 0.1, 7}}
	var want strings.Builder
	for ji, jc := range jobs {
		exp, ok := experiments.ByID(jc.id)
		if !ok {
			t.Fatalf("%s not registered", jc.id)
		}
		rep := exp.Run(experiments.Config{Scale: jc.scale, Seed: jc.seed, Workers: 1}).String() + "\n"
		want.WriteString(rep)
		path := filepath.Join(repDir, fmt.Sprintf("job%d-%s.out", ji+1, jc.id))
		got, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("report file: %v", err)
			continue
		}
		if string(got) != rep {
			t.Errorf("job %d report file differs from the direct run", ji)
		}
	}
	if stdout.String() != want.String() {
		t.Errorf("campaign stdout differs from the concatenated direct runs:\n--- direct ---\n%s\n--- campaign ---\n%s",
			want.String(), stdout.String())
	}
}

// TestOneShotAndMergePipeline exercises the file-based worker/merge path
// end to end through the CLI.
func TestOneShotAndMergePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment")
	}
	dir := t.TempDir()
	var files []string
	for _, sh := range parallel.NewShardPlan(3).Shards() {
		f := filepath.Join(dir, sh.String()[:1]+".json")
		var stdout, stderr bytes.Buffer
		code := run([]string{"-run", "fig2-2", "-shard", sh.String(), "-scale", "0.1", "-seed", "42", "-o", f}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("worker %v: exit %d, stderr %s", sh, code, stderr.String())
		}
		files = append(files, f)
	}
	exp, _ := experiments.ByID("fig2-2")
	want := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String() + "\n"
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-merge"}, files...), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("merge: exit %d, stderr %s", code, stderr.String())
	}
	if stdout.String() != want {
		t.Errorf("merged report differs from direct run")
	}
	// A missing file fails cleanly.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-merge", filepath.Join(dir, "missing.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("merge of missing file: exit %d, want 1", code)
	}
	_ = os.Remove(files[0])
}
