package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

// TestFlagValidation is the table-driven CLI contract: contradictory
// mode selectors are rejected with a usage message and exit code 2,
// never silently prioritized, and each mode insists on the flags it
// needs.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"no mode", []string{}, "no mode selected"},
		{"merge and shard", []string{"-merge", "-shard", "0/2", "-run", "fig2-2"}, "contradictory modes"},
		{"merge and shards", []string{"-merge", "-shards", "3"}, "contradictory modes"},
		{"connect and shards", []string{"-connect", "h:1", "-shards", "2"}, "contradictory modes"},
		{"connect and serve-stdio", []string{"-connect", "h:1", "-serve-stdio"}, "contradictory modes"},
		{"shard and shards", []string{"-run", "x", "-shard", "0/2", "-shards", "2"}, "contradictory modes"},
		{"listen without shards", []string{"-run", "fig2-2", "-listen", ":0"}, "-listen needs -shards"},
		{"coordinator without run", []string{"-shards", "3"}, "coordinator needs -run"},
		{"worker without run", []string{"-shard", "0/2"}, "-shard needs -run"},
		{"merge with run", []string{"-merge", "-run", "fig2-2"}, "takes only partial files"},
		{"connect with run", []string{"-connect", "h:1", "-run", "fig2-2"}, "assignments from the coordinator"},
		{"serve-stdio with output", []string{"-serve-stdio", "-o", "f.json"}, "assignments from the coordinator"},
		{"shard with listen", []string{"-run", "x", "-shard", "0/2", "-listen", ":0"}, "one-shot worker"},
		{"unknown transport", []string{"-run", "x", "-shards", "2", "-transport", "smoke-signals"}, "unknown -transport"},
		{"tcp transport without listen", []string{"-run", "x", "-shards", "2", "-transport", "tcp"}, "needs -listen"},
		{"procs with tcp", []string{"-run", "x", "-shards", "2", "-listen", ":0", "-procs", "3"}, "-procs applies to local transports"},
		{"listen with subprocess transport", []string{"-run", "x", "-shards", "2", "-listen", ":0", "-transport", "subprocess"}, "-listen implies -transport tcp"},
		{"die-after-assign on coordinator", []string{"-run", "x", "-shards", "2", "-die-after-assign", "1"}, "-die-after-assign is a worker flag"},
		{"die-after-assign on one-shot", []string{"-run", "x", "-shard", "0/2", "-die-after-assign", "1"}, "applies to protocol workers"},
		{"worker-die-after without subprocess", []string{"-run", "x", "-shards", "2", "-transport", "inproc", "-worker-die-after", "1"}, "-worker-die-after needs -transport subprocess"},
		{"addr-file without tcp", []string{"-run", "x", "-shards", "2", "-addr-file", "/tmp/a"}, "-addr-file publishes a -listen address"},
		{"coordinator flag on connect worker", []string{"-connect", "h:1", "-addr-file", "/tmp/a"}, "coordinator flag"},
		{"coordinator flag on stdio worker", []string{"-serve-stdio", "-retries", "5"}, "coordinator flag"},
		{"coordinator flag on merge", []string{"-merge", "-no-steal"}, "coordinator flag"},
		{"coordinator flag on one-shot", []string{"-run", "x", "-shard", "0/2", "-procs", "3"}, "coordinator flag"},
		{"bad flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(c.args, &stdout, &stderr)
			if code != 2 {
				t.Errorf("exit code %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), c.want)
			}
		})
	}
}

func TestListMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fig3-1") {
		t.Errorf("-list output lacks experiments:\n%s", stdout.String())
	}
}

func TestOneShotWorkerErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "fig2-2", "-shard", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed shard spec: exit %d, want 2", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-run", "no-such", "-shard", "0/2"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown experiment: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

// TestInprocCoordinatorMatchesDirectRun drives the full coordinator
// pipeline through the CLI entry point (inproc transport) and compares
// against the equivalent of hintbench's output for the same experiment.
func TestInprocCoordinatorMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment")
	}
	exp, ok := experiments.ByID("fig2-2")
	if !ok {
		t.Fatal("fig2-2 not registered")
	}
	want := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String() + "\n"
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "fig2-2", "-shards", "5", "-transport", "inproc", "-procs", "2", "-scale", "0.1", "-seed", "42"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != want {
		t.Errorf("coordinator output differs from direct run:\n--- direct ---\n%s\n--- cli ---\n%s", want, stdout.String())
	}
}

// TestOneShotAndMergePipeline exercises the file-based worker/merge path
// end to end through the CLI.
func TestOneShotAndMergePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment")
	}
	dir := t.TempDir()
	var files []string
	for _, sh := range parallel.NewShardPlan(3).Shards() {
		f := filepath.Join(dir, sh.String()[:1]+".json")
		var stdout, stderr bytes.Buffer
		code := run([]string{"-run", "fig2-2", "-shard", sh.String(), "-scale", "0.1", "-seed", "42", "-o", f}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("worker %v: exit %d, stderr %s", sh, code, stderr.String())
		}
		files = append(files, f)
	}
	exp, _ := experiments.ByID("fig2-2")
	want := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String() + "\n"
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-merge"}, files...), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("merge: exit %d, stderr %s", code, stderr.String())
	}
	if stdout.String() != want {
		t.Errorf("merged report differs from direct run")
	}
	// A missing file fails cleanly.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-merge", filepath.Join(dir, "missing.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("merge of missing file: exit %d, want 1", code)
	}
	_ = os.Remove(files[0])
}
