// Command hintshard runs one experiment — or a whole campaign of them —
// sharded across workers and merges the partial results into reports
// that are bit-identical to the single-process hintbench output — for
// any shard count, worker count, transport, assignment order, or worker
// failure. It is a thin front end over the work-stealing cluster
// runtime in internal/cluster and the campaign scheduler in
// internal/campaign.
//
// Modes (exactly one per invocation):
//
//	coordinator: split the trial space into K shards (a queue, not a
//	static assignment), hand shards to workers as they free up, steal
//	from stragglers, re-dispatch shards lost to dead workers, merge.
//	The -transport flag picks where the workers live: "subprocess"
//	(default; -procs worker processes of this binary on this machine),
//	"inproc" (-procs goroutine workers in this process), or "tcp"
//	(workers connect to -listen over the network).
//
//	    hintshard -run fig3-5 -shards 8 [-procs 3] [-scale S] [-seed N]
//	    hintshard -run fig3-5 -shards 8 -listen :7432 [-addr-file F]
//
//	campaign: queue several experiments through one warm fleet. Jobs
//	are specs ("id[:scale=S][:seed=N][:shards=K]", defaults from the
//	flags) or "@file" job files (one spec per line, #-comments);
//	workers stay connected across assignments with their phy tables
//	pre-built (the prepare step), shards of consecutive jobs
//	interleave so stragglers overlap the next job's start, and each
//	report prints in submission order the moment its last shard
//	merges — byte-identical to the standalone hintbench output.
//	-verify F re-executes a deterministic sample of shards (fraction
//	F of each job, at least one) on a second worker and byte-compares
//	the partials: any divergence is a hard fault. -report-dir also
//	writes each report to jobN-<id>.out for scripted diffing.
//
//	    hintshard -campaign -shards 6 [-scale S] [-seed N] fig2-2 fig3-1:scale=0.5
//	    hintshard -campaign -listen :7432 [-verify 0.2] @jobs.txt
//
//	Either coordinator flavor also serves a live HTTP control plane
//	with -status-addr (resolved address published via
//	-status-addr-file): GET /status is the full scheduler state as
//	JSON, GET /metrics the same counters in Prometheus text form, and
//	campaigns accept POST /jobs (a job spec) and POST /jobs/{n}/cancel
//	to mutate the running schedule. "hintshard -status <addr>" is the
//	matching one-shot client:
//
//	    hintshard -status 127.0.0.1:7500
//	    hintshard -status 127.0.0.1:7500 -submit fig2-2:seed=7:shards=2
//	    hintshard -status 127.0.0.1:7500 -cancel 3
//
//	TCP worker: connect to a coordinator and pull shards until stopped.
//
//	    hintshard -connect host:7432 [-workers W]
//
//	one-shot worker: run one fixed shard's slice of every trial range
//	and write the partial (unmerged per-trial accumulators) as JSON to
//	-o or stdout — the building block for file-based, multi-machine
//	runs without a live coordinator.
//
//	    hintshard -run fig3-5 -shard 2/4 -o part2.json [-scale S] [-seed N]
//
//	merge: consume partial files produced by one-shot workers anywhere
//	(any order; the shard set must be complete and agree on seed/scale)
//	and print the merged report.
//
//	    hintshard -merge part0.json part1.json part2.json part3.json
//
//	stdio worker (internal): speak the cluster frame protocol on
//	stdin/stdout; the subprocess transport spawns this.
//
//	    hintshard -serve-stdio
//
// The determinism contract (internal/parallel/README.md) extends across
// process and machine boundaries: per-trial seeds derive from the root
// seed by global trial index, shards own contiguous trial ranges, and
// the coordinator absorbs per-trial results in global trial order — so
// -shards, -procs, and -transport, like -workers, only change how fast
// the report appears. -worker-die-after and -die-after-assign inject
// worker death for the failure-path smoke tests.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/ctlplane"
	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options carries the parsed flag set; methods on it implement the
// modes.
type options struct {
	run       string
	scale     float64
	seed      int64
	workers   int
	shardSpec string
	shards    int
	procs     int
	transport string
	listen    string
	addrFile  string
	connect   string
	serveStd  bool
	merge     bool
	out       string
	list      bool
	retries   int
	noSteal   bool
	verbose   bool
	dieAfter  int
	workerDie int
	camp      bool
	verify    float64
	reportDir string
	noWarm    bool
	statAddr  string
	statFile  string
	statQuery string
	submit    string
	cancel    int
	metrics   bool
	token     string
	heartbeat time.Duration
	hbMisses  int
	reconnect int
	chaosSeed int64
	chaosSpec string

	// plan is the parsed -chaos-plan, nil when chaos is off.
	plan *cluster.FaultPlan

	stdout, stderr io.Writer
}

// run parses args and dispatches to the selected mode; it is main minus
// os.Exit, so the CLI tests can drive it directly.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hintshard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &options{stdout: stdout, stderr: stderr}
	fs.StringVar(&o.run, "run", "", "experiment id (see 'hintshard -list')")
	fs.Float64Var(&o.scale, "scale", 1.0, "experiment scale (1.0 = paper scale, smaller = faster)")
	fs.Int64Var(&o.seed, "seed", 42, "random seed for deterministic runs")
	fs.IntVar(&o.workers, "workers", 0, "goroutines per worker for one shard's trials (0 = one per CPU, split across -procs for local transports)")
	fs.StringVar(&o.shardSpec, "shard", "", "one-shot worker: run shard `k/K` and emit a partial result")
	fs.IntVar(&o.shards, "shards", 0, "coordinator: split the trial space into `K` queued shards")
	fs.IntVar(&o.procs, "procs", 0, "coordinator: number of local workers (subprocess/inproc transports; default K)")
	fs.StringVar(&o.transport, "transport", "", "coordinator transport: subprocess, inproc, or tcp (default subprocess; tcp implied by -listen)")
	fs.StringVar(&o.listen, "listen", "", "coordinator: accept TCP workers on `addr` (e.g. :7432, 127.0.0.1:0)")
	fs.StringVar(&o.addrFile, "addr-file", "", "coordinator: write the resolved -listen address to `file` (for scripts using port 0)")
	fs.StringVar(&o.connect, "connect", "", "worker: pull shards from the coordinator at `addr` until stopped")
	fs.BoolVar(&o.serveStd, "serve-stdio", false, "worker: speak the cluster protocol on stdin/stdout (spawned by the subprocess transport)")
	fs.BoolVar(&o.merge, "merge", false, "merge partial-result files given as arguments and print the report")
	fs.StringVar(&o.out, "o", "", "one-shot worker: write the partial to `file` instead of stdout")
	fs.BoolVar(&o.list, "list", false, "list experiments and exit")
	fs.IntVar(&o.retries, "retries", 3, "coordinator: per-shard failure budget before aborting")
	fs.BoolVar(&o.noSteal, "no-steal", false, "coordinator: disable speculative re-dispatch of in-flight shards")
	fs.BoolVar(&o.verbose, "v", false, "log dispatches, steals, and worker deaths to stderr")
	fs.IntVar(&o.dieAfter, "die-after-assign", 0, "worker fault injection: exit abruptly on receiving the `n`-th assignment")
	fs.IntVar(&o.workerDie, "worker-die-after", 0, "coordinator fault injection (subprocess transport): pass -die-after-assign `n` to the first spawned worker")
	fs.BoolVar(&o.camp, "campaign", false, "run a campaign: queue the job specs (or @file) given as arguments through one fleet")
	fs.Float64Var(&o.verify, "verify", 0, "campaign: re-execute this `fraction` of each job's shards on a second worker and byte-compare (0 = off)")
	fs.StringVar(&o.reportDir, "report-dir", "", "campaign: also write each report to `dir`/jobN-<id>.out for scripted diffing")
	fs.BoolVar(&o.noWarm, "no-warm", false, "campaign: skip the warm-worker prepare step (workers build LUTs lazily)")
	fs.StringVar(&o.statAddr, "status-addr", "", "coordinator/campaign: serve the HTTP control plane (/status, /metrics, POST /jobs) on `addr` (e.g. 127.0.0.1:0)")
	fs.StringVar(&o.statFile, "status-addr-file", "", "write the resolved -status-addr address to `file` (for scripts using port 0)")
	fs.StringVar(&o.statQuery, "status", "", "client: query the control plane at `addr` and print a status summary")
	fs.StringVar(&o.submit, "submit", "", "with -status: submit one job `spec` to the running campaign and print its index")
	fs.IntVar(&o.cancel, "cancel", -1, "with -status: cancel the job with this `index` (as shown in the status output)")
	fs.BoolVar(&o.metrics, "metrics", false, "with -status: print the raw Prometheus metrics text instead of the summary")
	fs.StringVar(&o.token, "token", "", "shared auth `secret`; the coordinator rejects workers whose hello MAC does not match and gates control-plane mutations behind it; with -status it signs -submit/-cancel requests (empty = trusted LAN)")
	fs.DurationVar(&o.heartbeat, "heartbeat", 0, "coordinator: ping `interval` for worker liveness (0 = default 2s, negative = disable heartbeats)")
	fs.IntVar(&o.hbMisses, "heartbeat-misses", 0, "coordinator: reap a worker after this many silent heartbeat intervals (0 = default 15)")
	fs.IntVar(&o.reconnect, "reconnect", 0, "TCP worker: redial the coordinator up to `n` times with backoff after a lost session (0 = give up on first loss)")
	fs.Int64Var(&o.chaosSeed, "chaos-seed", 1, "fault injection: root `seed` of the -chaos-plan schedule")
	fs.StringVar(&o.chaosSpec, "chaos-plan", "", "fault injection `spec` drop=P,dup=P,corrupt=P,delay=P:DUR,partition=N,conns=N,kills=N, applied to this process's outbound frames")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if o.list {
		for _, e := range experiments.Default.All() {
			line := fmt.Sprintf("%-12s %s", e.ID, e.Desc)
			if len(e.Tags) > 0 {
				line += "  [" + strings.Join(e.Tags, ",") + "]"
			}
			if e.Plan != nil {
				p := e.Plan(experiments.Config{Scale: o.scale})
				line += fmt.Sprintf("  plan=%dx%d", p.Cells, p.Units)
			}
			fmt.Fprintln(o.stdout, line)
		}
		return 0
	}

	mode, err := o.mode(explicit)
	if err != nil {
		fmt.Fprintln(o.stderr, err)
		usage(o.stderr)
		return 2
	}
	switch mode {
	case "merge":
		return o.mergeFiles(fs.Args())
	case "one-shot":
		return o.oneShot()
	case "connect":
		return o.tcpWorker()
	case "serve-stdio":
		return o.stdioWorker()
	case "coordinator":
		return o.coordinate()
	case "campaign":
		return o.runCampaign(fs.Args())
	case "status":
		return o.statusClient()
	}
	usage(o.stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: hintshard -run <id> -shards K [-procs N | -listen addr]   (coordinator)")
	fmt.Fprintln(w, "       hintshard -campaign [-shards K] <job-spec|@file>...        (campaign)")
	fmt.Fprintln(w, "       hintshard -connect addr                                    (TCP worker)")
	fmt.Fprintln(w, "       hintshard -run <id> -shard k/K [-o file]                   (one-shot worker)")
	fmt.Fprintln(w, "       hintshard -merge part.json...                              (merge partials)")
	fmt.Fprintln(w, "       hintshard -status addr [-submit spec | -cancel N | -metrics]  (control-plane client)")
	fmt.Fprintln(w, "job specs are id[:scale=S][:seed=N][:shards=K]; run 'hintshard -list' for ids")
}

// mode validates flag combinations and names the selected mode.
// Contradictory selectors are rejected rather than silently prioritized,
// and coordinator-only tuning flags are rejected in the worker and merge
// modes (explicit holds the flags actually set on the command line): a
// run that quietly ignored half its flags would do something the
// operator did not ask for.
func (o *options) mode(explicit map[string]bool) (string, error) {
	rejectCoordFlags := func(mode string) error {
		for _, f := range []string{"transport", "procs", "addr-file", "retries", "no-steal", "worker-die-after", "heartbeat", "heartbeat-misses", "status-addr", "status-addr-file"} {
			if explicit[f] {
				return fmt.Errorf("-%s is a coordinator flag; it does not apply to %s", f, mode)
			}
		}
		return nil
	}
	// The session flags only mean something to processes speaking the
	// cluster protocol; -merge and one-shot workers never open a conn.
	rejectSessionFlags := func(mode string) error {
		for _, f := range []string{"token", "chaos-seed", "chaos-plan", "reconnect"} {
			if explicit[f] {
				return fmt.Errorf("-%s is a cluster session flag; it does not apply to %s", f, mode)
			}
		}
		return nil
	}
	if explicit["reconnect"] && o.connect == "" {
		return "", fmt.Errorf("-reconnect applies to -connect workers")
	}
	if o.reconnect < 0 {
		return "", fmt.Errorf("-reconnect %d is negative", o.reconnect)
	}
	if o.chaosSpec != "" {
		plan, err := cluster.ParseFaultPlan(o.chaosSpec, o.chaosSeed)
		if err != nil {
			return "", err
		}
		o.plan = plan
	} else if explicit["chaos-seed"] {
		return "", fmt.Errorf("-chaos-seed needs a -chaos-plan to seed")
	}
	if !o.camp {
		for _, f := range []string{"verify", "report-dir", "no-warm"} {
			if explicit[f] {
				return "", fmt.Errorf("-%s is a campaign flag; it needs -campaign", f)
			}
		}
	}
	if o.statQuery == "" {
		for _, f := range []string{"submit", "cancel", "metrics"} {
			if explicit[f] {
				return "", fmt.Errorf("-%s is a status-client flag; it needs -status addr", f)
			}
		}
	}
	if o.statFile != "" && o.statAddr == "" {
		return "", fmt.Errorf("-status-addr-file publishes a -status-addr address; it needs -status-addr")
	}
	var modes []string
	if o.merge {
		modes = append(modes, "-merge")
	}
	if o.shardSpec != "" {
		modes = append(modes, "-shard")
	}
	if o.shards > 0 && !o.camp {
		// With -campaign, -shards is the default shard count per job,
		// not a mode selector.
		modes = append(modes, "-shards")
	}
	if o.camp {
		modes = append(modes, "-campaign")
	}
	if o.connect != "" {
		modes = append(modes, "-connect")
	}
	if o.serveStd {
		modes = append(modes, "-serve-stdio")
	}
	if o.statQuery != "" {
		modes = append(modes, "-status")
	}
	if len(modes) == 0 {
		if o.listen != "" {
			return "", fmt.Errorf("-listen needs -shards K (or -campaign)")
		}
		return "", fmt.Errorf("no mode selected")
	}
	if len(modes) > 1 {
		return "", fmt.Errorf("flags %v select contradictory modes; pick one", modes)
	}
	switch modes[0] {
	case "-merge":
		if o.run != "" || o.listen != "" || o.out != "" {
			return "", fmt.Errorf("-merge takes only partial files (remove -run/-listen/-o)")
		}
		if err := rejectCoordFlags("-merge"); err != nil {
			return "", err
		}
		if err := rejectSessionFlags("-merge"); err != nil {
			return "", err
		}
		return "merge", nil
	case "-shard":
		if o.run == "" {
			return "", fmt.Errorf("-shard needs -run <experiment-id>")
		}
		if o.listen != "" || o.transport != "" {
			return "", fmt.Errorf("-shard is a one-shot worker; it takes no -listen/-transport")
		}
		if o.dieAfter > 0 {
			return "", fmt.Errorf("-die-after-assign applies to protocol workers (-connect/-serve-stdio)")
		}
		if err := rejectCoordFlags("a one-shot worker"); err != nil {
			return "", err
		}
		if err := rejectSessionFlags("a one-shot worker"); err != nil {
			return "", err
		}
		return "one-shot", nil
	case "-connect":
		if o.run != "" || o.shards > 0 || o.listen != "" || o.out != "" {
			return "", fmt.Errorf("-connect workers take their assignments from the coordinator (remove -run/-shards/-listen/-o)")
		}
		if err := rejectCoordFlags("a -connect worker"); err != nil {
			return "", err
		}
		return "connect", nil
	case "-serve-stdio":
		if o.run != "" || o.listen != "" || o.out != "" {
			return "", fmt.Errorf("-serve-stdio workers take their assignments from the coordinator (remove -run/-listen/-o)")
		}
		if err := rejectCoordFlags("a -serve-stdio worker"); err != nil {
			return "", err
		}
		// A stdio worker's conn belongs to the coordinator that spawned
		// it; chaos is injected there, not here.
		for _, f := range []string{"chaos-seed", "chaos-plan"} {
			if explicit[f] {
				return "", fmt.Errorf("-%s on a -serve-stdio worker: inject chaos at the coordinator that spawns it", f)
			}
		}
		return "serve-stdio", nil
	case "-status":
		if o.run != "" || o.listen != "" || o.out != "" {
			return "", fmt.Errorf("-status is a read/mutate client for a running coordinator (remove -run/-listen/-o)")
		}
		if err := rejectCoordFlags("the -status client"); err != nil {
			return "", err
		}
		// -token is meaningful here (it signs mutation requests); the
		// other session flags still are not — the status client never
		// speaks the cluster frame protocol.
		for _, f := range []string{"chaos-seed", "chaos-plan", "reconnect"} {
			if explicit[f] {
				return "", fmt.Errorf("-%s is a cluster session flag; it does not apply to the -status client", f)
			}
		}
		set := 0
		for _, on := range []bool{o.submit != "", o.cancel >= 0, o.metrics} {
			if on {
				set++
			}
		}
		if set > 1 {
			return "", fmt.Errorf("pick one of -submit, -cancel, -metrics per -status invocation")
		}
		if explicit["cancel"] && o.cancel < 0 {
			return "", fmt.Errorf("-cancel %d is not a job index", o.cancel)
		}
		return "status", nil
	case "-campaign":
		if o.run != "" {
			return "", fmt.Errorf("campaign jobs are given as job specs, not -run")
		}
		if o.out != "" {
			return "", fmt.Errorf("-o is a one-shot worker flag; campaigns write reports with -report-dir")
		}
		if o.dieAfter > 0 {
			return "", fmt.Errorf("-die-after-assign is a worker flag; coordinators inject faults with -worker-die-after")
		}
		// Negated form so NaN (for which every comparison is false) is
		// rejected too.
		if !(o.verify >= 0 && o.verify <= 1) {
			return "", fmt.Errorf("-verify %g outside [0, 1]", o.verify)
		}
		if err := o.validateTransport(); err != nil {
			return "", err
		}
		return "campaign", nil
	default: // -shards
		if o.run == "" {
			return "", fmt.Errorf("coordinator needs -run <experiment-id>")
		}
		if o.dieAfter > 0 {
			return "", fmt.Errorf("-die-after-assign is a worker flag; coordinators inject faults with -worker-die-after")
		}
		if err := o.validateTransport(); err != nil {
			return "", err
		}
		return "coordinator", nil
	}
}

// validateTransport resolves and checks the transport selection shared
// by the coordinator and campaign modes (-transport defaults to
// subprocess, or tcp when -listen is given).
func (o *options) validateTransport() error {
	tr := o.transport
	if tr == "" {
		if o.listen != "" {
			tr = "tcp"
		} else {
			tr = "subprocess"
		}
		o.transport = tr
	}
	switch tr {
	case "tcp":
		if o.listen == "" {
			return fmt.Errorf("-transport tcp needs -listen addr")
		}
		if o.procs > 0 {
			return fmt.Errorf("-procs applies to local transports; TCP workers join via -connect")
		}
	case "subprocess", "inproc":
		if o.listen != "" {
			return fmt.Errorf("-listen implies -transport tcp, not %s", tr)
		}
		if o.addrFile != "" {
			return fmt.Errorf("-addr-file publishes a -listen address; it needs -transport tcp")
		}
	default:
		return fmt.Errorf("unknown -transport %q (want subprocess, inproc, or tcp)", tr)
	}
	if o.workerDie > 0 && tr != "subprocess" {
		return fmt.Errorf("-worker-die-after needs -transport subprocess (TCP workers inject their own faults with -die-after-assign)")
	}
	return nil
}

func (o *options) logf() func(string, ...any) {
	if !o.verbose {
		return nil
	}
	return func(format string, args ...any) {
		fmt.Fprintf(o.stderr, format+"\n", args...)
	}
}

// serveOpts builds the worker-side options, including the
// fault-injection hook behind -die-after-assign.
func (o *options) serveOpts(name string) cluster.ServeOptions {
	so := cluster.ServeOptions{Name: name, Workers: o.workers, Token: o.token}
	if n := o.dieAfter; n > 0 {
		seen := 0
		so.OnAssign = func(cluster.Assign) error {
			seen++
			if seen >= n {
				// Abrupt mid-shard death: the assignment was received
				// and will never be answered.
				fmt.Fprintf(o.stderr, "%s: dying after assignment %d (fault injection)\n", name, seen)
				os.Exit(3)
			}
			return nil
		}
	}
	return so
}

// oneShot runs one fixed shard and writes the partial result.
func (o *options) oneShot() int {
	shard, err := parallel.ParseShard(o.shardSpec)
	if err != nil {
		fmt.Fprintln(o.stderr, err)
		return 2
	}
	cfg := experiments.Config{Scale: o.scale, Seed: o.seed, Workers: o.workers}
	p, err := experiments.RunShard(o.run, cfg, shard)
	if err != nil {
		fmt.Fprintln(o.stderr, err)
		return 1
	}
	w := o.stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			fmt.Fprintln(o.stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := p.Encode(w); err != nil {
		fmt.Fprintf(o.stderr, "writing partial: %v\n", err)
		return 1
	}
	return 0
}

// tcpWorker pulls shards from a remote coordinator until stopped,
// redialing lost sessions up to the -reconnect budget.
func (o *options) tcpWorker() int {
	host, _ := os.Hostname()
	name := fmt.Sprintf("%s/%d", host, os.Getpid())
	do := cluster.DialOptions{Attempts: 1 + o.reconnect, Logf: o.logf()}
	if o.plan != nil {
		do.Wrap = func(c cluster.Conn) cluster.Conn {
			cluster.InjectFaults(c, o.plan.NextConn())
			return c
		}
	}
	if err := cluster.ServeTCP(o.connect, o.serveOpts(name), do); err != nil {
		fmt.Fprintln(o.stderr, err)
		return 1
	}
	return 0
}

// stdioWorker serves the protocol on stdin/stdout for the subprocess
// transport.
func (o *options) stdioWorker() int {
	if err := cluster.ServeStdio(o.serveOpts(fmt.Sprintf("proc/%d", os.Getpid()))); err != nil {
		fmt.Fprintln(o.stderr, err)
		return 1
	}
	return 0
}

// perWorkerFanout picks how many goroutines each worker fans a shard's
// trials across. Local transports run every worker on this machine at
// once; the "one goroutine per CPU" default would oversubscribe it
// procs-fold, so split the CPUs instead. An explicit -workers value
// passes through untouched. TCP workers are (usually) other machines:
// the default leaves the fan-out to each worker.
func (o *options) perWorkerFanout(procs int) int {
	perWorker := o.workers
	if perWorker == 0 && o.transport != "tcp" {
		perWorker = runtime.NumCPU() / procs
		if perWorker < 1 {
			perWorker = 1
		}
	}
	return perWorker
}

// buildTransport constructs the validated transport selection with
// procs local workers (ignored by tcp), each fanning shards across
// perWorker goroutines.
func (o *options) buildTransport(procs, perWorker int) (cluster.Transport, error) {
	switch o.transport {
	case "inproc":
		return cluster.NewInProcess(procs, func(i int, c cluster.Conn) {
			so := o.serveOpts(fmt.Sprintf("inproc-%d", i))
			cluster.Serve(c, so)
		}), nil
	case "subprocess":
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("locating own binary: %v", err)
		}
		return cluster.NewSubprocess(procs, func(i int) *exec.Cmd {
			args := []string{"-serve-stdio", "-workers", strconv.Itoa(perWorker)}
			if o.token != "" {
				args = append(args, "-token", o.token)
			}
			if o.workerDie > 0 && i == 0 {
				args = append(args, "-die-after-assign", strconv.Itoa(o.workerDie))
			}
			cmd := exec.Command(self, args...)
			cmd.Stderr = o.stderr
			return cmd
		}), nil
	case "tcp":
		lt, err := cluster.ListenTCP(o.listen)
		if err != nil {
			return nil, err
		}
		if o.addrFile != "" {
			// Atomic write: workers poll for this file, and a torn read
			// of half an address made them dial garbage.
			if err := atomicfile.WriteFile(o.addrFile, []byte(lt.Addr()), 0o644); err != nil {
				lt.Close()
				return nil, err
			}
		}
		fmt.Fprintf(o.stderr, "hintshard: listening on %s\n", lt.Addr())
		return lt, nil
	}
	return nil, fmt.Errorf("unknown transport %q", o.transport)
}

// withChaos wraps the coordinator transport with the -chaos-plan fault
// schedule, if one was given.
func (o *options) withChaos(t cluster.Transport) cluster.Transport {
	if o.plan == nil {
		return t
	}
	return cluster.WithChaos(t, o.plan)
}

// coordinate runs the work-stealing coordinator over the selected
// transport and prints the merged report.
func (o *options) coordinate() int {
	procs := o.procs
	if procs <= 0 {
		procs = o.shards
	}
	perWorker := o.perWorkerFanout(procs)
	t, err := o.buildTransport(procs, perWorker)
	if err != nil {
		fmt.Fprintln(o.stderr, err)
		return 1
	}

	// Single-run coordinators serve status and metrics read-only: there
	// is no campaign to submit more jobs to, so the mutation hooks stay
	// unset and POST answers 403.
	var control *cluster.Control
	if o.statAddr != "" {
		control = cluster.NewControl()
		ctl, err := ctlplane.Start(o.statAddr, ctlplane.Config{Service: "hintshard", Control: control, Token: o.token, Logf: o.logf()})
		if err != nil {
			fmt.Fprintln(o.stderr, err)
			return 1
		}
		defer ctl.Close()
		fmt.Fprintf(o.stderr, "hintshard: control plane on %s\n", ctl.Addr())
		if o.statFile != "" {
			if err := atomicfile.WriteFile(o.statFile, []byte(ctl.Addr()), 0o644); err != nil {
				fmt.Fprintln(o.stderr, err)
				return 1
			}
		}
	}

	rep, _, err := cluster.Run(o.withChaos(t), cluster.Options{
		Control:           control,
		Experiment:        o.run,
		Seed:              o.seed,
		Scale:             o.scale,
		Shards:            o.shards,
		ShardWorkers:      perWorker,
		MergeWorkers:      o.workers,
		Retries:           o.retries,
		NoSteal:           o.noSteal,
		Token:             o.token,
		HeartbeatInterval: o.heartbeat,
		HeartbeatMisses:   o.hbMisses,
		Logf:              o.logf(),
	})
	if err != nil {
		fmt.Fprintln(o.stderr, err)
		var we *cluster.WorkerExitError
		if errors.As(err, &we) {
			return we.Code
		}
		return 1
	}
	return o.printReport(rep)
}

// runCampaign parses the job specs (or @file job files), runs the
// campaign over the selected transport, and prints each report in
// submission order as it becomes ready — exactly as hintbench would
// print the same experiment, so the outputs diff byte for byte.
func (o *options) runCampaign(specs []string) int {
	if len(specs) == 0 {
		fmt.Fprintln(o.stderr, "no campaign jobs given (want job specs or @file arguments)")
		usage(o.stderr)
		return 2
	}
	def := campaign.Job{Scale: o.scale, Seed: o.seed, Shards: o.shards}
	var jobs []campaign.Job
	for _, spec := range specs {
		if name, ok := strings.CutPrefix(spec, "@"); ok {
			f, err := os.Open(name)
			if err != nil {
				fmt.Fprintln(o.stderr, err)
				return 2
			}
			js, err := campaign.ReadJobs(f, def)
			f.Close()
			if err != nil {
				fmt.Fprintf(o.stderr, "%s: %v\n", name, err)
				return 2
			}
			jobs = append(jobs, js...)
			continue
		}
		j, err := campaign.ParseJob(spec, def)
		if err != nil {
			fmt.Fprintln(o.stderr, err)
			return 2
		}
		jobs = append(jobs, j)
	}

	// Default local fleet size: enough workers to saturate the widest
	// job, as the coordinator mode defaults to its shard count.
	procs := o.procs
	if procs <= 0 {
		for _, j := range jobs {
			if j.Shards > procs {
				procs = j.Shards
			}
		}
	}
	perWorker := o.perWorkerFanout(procs)
	if o.reportDir != "" {
		if err := os.MkdirAll(o.reportDir, 0o755); err != nil {
			fmt.Fprintln(o.stderr, err)
			return 1
		}
	}
	t, err := o.buildTransport(procs, perWorker)
	if err != nil {
		fmt.Fprintln(o.stderr, err)
		return 1
	}

	// The control plane reads immutable snapshots and funnels mutations
	// through the coordinator's event loop, so serving it — even under
	// aggressive scraping — cannot perturb the campaign's determinism.
	var control *cluster.Control
	if o.statAddr != "" {
		control = cluster.NewControl()
		ctl, err := ctlplane.Start(o.statAddr, ctlplane.Config{
			Service: "hintshard",
			Control: control,
			Submit: func(spec string) (int, error) {
				j, err := campaign.ParseJob(spec, def)
				if err != nil {
					return 0, err
				}
				return control.Submit(cluster.Job{Experiment: j.Experiment, Seed: j.Seed, Scale: j.Scale, Shards: j.Shards})
			},
			Cancel: control.Cancel,
			Token:  o.token,
			Logf:   o.logf(),
		})
		if err != nil {
			fmt.Fprintln(o.stderr, err)
			return 1
		}
		defer ctl.Close()
		fmt.Fprintf(o.stderr, "hintshard: control plane on %s\n", ctl.Addr())
		if o.statFile != "" {
			if err := atomicfile.WriteFile(o.statFile, []byte(ctl.Addr()), 0o644); err != nil {
				fmt.Fprintln(o.stderr, err)
				return 1
			}
		}
	}

	failed := 0
	_, stats, err := campaign.Run(o.withChaos(t), jobs, campaign.Options{
		Control:           control,
		ShardWorkers:      perWorker,
		MergeWorkers:      o.workers,
		Retries:           o.retries,
		NoSteal:           o.noSteal,
		NoWarm:            o.noWarm,
		Verify:            o.verify,
		Token:             o.token,
		HeartbeatInterval: o.heartbeat,
		HeartbeatMisses:   o.hbMisses,
		Logf:              o.logf(),
		Emit: func(ji int, j campaign.Job, rep *experiments.Report) error {
			if o.reportDir != "" {
				// j, not jobs[ji]: the control plane can submit jobs past
				// the initial list, and their reports land here too.
				path := filepath.Join(o.reportDir, fmt.Sprintf("job%d-%s.out", ji+1, j.Experiment))
				if err := os.WriteFile(path, []byte(rep.String()+"\n"), 0o644); err != nil {
					return err
				}
			}
			fmt.Fprintln(o.stdout, rep)
			failed += len(rep.Failed())
			return nil
		},
	})
	if err != nil {
		fmt.Fprintln(o.stderr, err)
		var we *cluster.WorkerExitError
		if errors.As(err, &we) {
			return we.Code
		}
		return 1
	}
	if o.verbose {
		fmt.Fprintf(o.stderr, "campaign: %d jobs done (workers=%d assigned=%d stolen=%d requeued=%d discarded=%d verified=%d)\n",
			len(jobs), stats.Workers, stats.Assigned, stats.Stolen, stats.Requeued, stats.Discarded, stats.Verified)
	}
	if failed > 0 {
		fmt.Fprintf(o.stderr, "%d shape check(s) failed\n", failed)
		return 1
	}
	return 0
}

// mergeFiles decodes one-shot worker partials, merges them, and prints
// the report.
func (o *options) mergeFiles(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(o.stderr, "no partial files to merge")
		return 2
	}
	parts := make([]*experiments.Partial, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(o.stderr, err)
			return 1
		}
		p, err := experiments.DecodePartial(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(o.stderr, "%s: %v\n", path, err)
			return 1
		}
		parts = append(parts, p)
	}
	rep, err := experiments.MergeShards(parts, o.workers)
	if err != nil {
		fmt.Fprintln(o.stderr, err)
		return 1
	}
	return o.printReport(rep)
}

// printReport renders the report exactly as hintbench does (the smoke
// tests diff the two) and folds shape-check failures into the exit code.
func (o *options) printReport(rep *experiments.Report) int {
	fmt.Fprintln(o.stdout, rep)
	if failed := rep.Failed(); len(failed) > 0 {
		fmt.Fprintf(o.stderr, "%d shape check(s) failed\n", len(failed))
		return 1
	}
	return 0
}
