// Command hintshard runs one experiment sharded across processes and
// merges the partial results into a report that is bit-identical to the
// single-process hintbench output for any shard count.
//
// It runs in three modes:
//
//	coordinator (spawn): split the trial space into K shards, run each
//	as a worker process (this binary re-executed with -shard k/K),
//	collect the partial-result files and merge them in shard order.
//
//	    hintshard -run fig3-5 -shards 4 [-scale S] [-seed N] [-workers W]
//
//	worker: run one shard's slice of every trial range and write the
//	partial (unmerged per-trial accumulators) as JSON to -o or stdout.
//
//	    hintshard -run fig3-5 -shard 2/4 -o part2.json [-scale S] [-seed N]
//
//	merge: consume partial files produced by workers anywhere (any
//	order; the shard set must be complete and agree on seed/scale) and
//	print the merged report.
//
//	    hintshard -merge part0.json part1.json part2.json part3.json
//
// The determinism contract (internal/parallel/README.md) extends across
// the process boundary: per-trial seeds derive from the root seed by
// global trial index, shards own contiguous trial ranges, and the
// coordinator absorbs per-trial results in global trial order — so
// -shards, like -workers, only changes how fast the report appears.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	run := flag.String("run", "", "experiment id (see 'hintshard -list')")
	scale := flag.Float64("scale", 1.0, "experiment scale (1.0 = paper scale, smaller = faster)")
	seed := flag.Int64("seed", 42, "random seed for deterministic runs")
	workers := flag.Int("workers", 0, "worker goroutines per process (0 = one per CPU)")
	shardSpec := flag.String("shard", "", "run as a worker for shard `k/K` and emit a partial result")
	shards := flag.Int("shards", 0, "run as coordinator: spawn `K` worker processes and merge their partials")
	merge := flag.Bool("merge", false, "merge partial-result files given as arguments and print the report")
	out := flag.String("o", "", "worker mode: write the partial to `file` instead of stdout")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return 0
	}

	switch {
	case *merge:
		return mergeFiles(flag.Args(), *workers)
	case *shardSpec != "":
		return worker(*run, experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers}, *shardSpec, *out)
	case *shards > 0:
		return coordinate(*run, *scale, *seed, *workers, *shards)
	}
	fmt.Fprintln(os.Stderr, "usage: hintshard -run <id> -shards K   (coordinator)")
	fmt.Fprintln(os.Stderr, "       hintshard -run <id> -shard k/K  (worker)")
	fmt.Fprintln(os.Stderr, "       hintshard -merge part.json...   (merge worker output)")
	return 2
}

// worker runs one shard and writes the partial result.
func worker(id string, cfg experiments.Config, shardSpec, out string) int {
	shard, err := parallel.ParseShard(shardSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	p, err := experiments.RunShard(id, cfg, shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := p.Encode(w); err != nil {
		fmt.Fprintf(os.Stderr, "writing partial: %v\n", err)
		return 1
	}
	return 0
}

// coordinate spawns one worker process per shard, waits for all of
// them, and merges their partial files. Workers run concurrently;
// completion order cannot matter because the merge orders partials by
// shard index.
func coordinate(id string, scale float64, seed int64, workers, k int) int {
	if id == "" {
		fmt.Fprintln(os.Stderr, "coordinator needs -run <experiment-id>")
		return 2
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "locating own binary: %v\n", err)
		return 1
	}
	// All K workers run on this machine at once; the "one goroutine per
	// CPU" default would oversubscribe it K-fold, so split the CPUs
	// across the workers instead. An explicit -workers value passes
	// through untouched (useful when the shards are I/O-bound or the
	// invocation is being rehearsed for a multi-machine run).
	perWorker := workers
	if perWorker == 0 {
		perWorker = runtime.NumCPU() / k
		if perWorker < 1 {
			perWorker = 1
		}
	}
	dir, err := os.MkdirTemp("", "hintshard-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer os.RemoveAll(dir)

	files := make([]string, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for _, shard := range parallel.NewShardPlan(k).Shards() {
		shard := shard
		files[shard.Index] = filepath.Join(dir, fmt.Sprintf("part%d.json", shard.Index))
		wg.Add(1)
		go func() {
			defer wg.Done()
			cmd := exec.Command(self,
				"-run", id,
				"-shard", shard.String(),
				"-scale", fmt.Sprintf("%g", scale),
				"-seed", fmt.Sprintf("%d", seed),
				"-workers", fmt.Sprintf("%d", perWorker),
				"-o", files[shard.Index],
			)
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				errs[shard.Index] = fmt.Errorf("worker %v: %w", shard, err)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return mergeFiles(files, workers)
}

// mergeFiles decodes worker partials, merges them, and prints the
// report. Like hintbench, the exit code reflects the shape checks.
func mergeFiles(paths []string, workers int) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "no partial files to merge")
		return 2
	}
	parts := make([]*experiments.Partial, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		p, err := experiments.DecodePartial(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			return 1
		}
		parts = append(parts, p)
	}
	rep, err := experiments.MergeShards(parts, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(rep)
	if failed := rep.Failed(); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "%d shape check(s) failed\n", len(failed))
		return 1
	}
	return 0
}
