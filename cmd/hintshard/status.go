package main

// The -status client: a one-shot reader (and, with -submit/-cancel,
// mutator) for the control plane a coordinator serves via -status-addr.
// The summary renderer prints one key=value line per entity so shell
// pipelines can grep for conditions ("worker=.* loops=[1-9]") without
// parsing JSON.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/ctlplane"
)

// statusClient performs the selected one-shot request against the
// control plane at -status's address.
func (o *options) statusClient() int {
	base := o.statQuery
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}
	switch {
	case o.submit != "":
		return o.statusPost(client, base+"/jobs", o.submit)
	case o.cancel >= 0:
		return o.statusPost(client, fmt.Sprintf("%s/jobs/%d/cancel", base, o.cancel), "")
	case o.metrics:
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			fmt.Fprintln(o.stderr, err)
			return 1
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return o.statusHTTPError(resp)
		}
		io.Copy(o.stdout, resp.Body)
		return 0
	default:
		resp, err := client.Get(base + "/status")
		if err != nil {
			fmt.Fprintln(o.stderr, err)
			return 1
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return o.statusHTTPError(resp)
		}
		var st ctlplane.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			fmt.Fprintf(o.stderr, "decoding status: %v\n", err)
			return 1
		}
		o.renderStatus(&st)
		return 0
	}
}

// statusPost sends one mutation (submit or cancel) and relays the
// server's JSON answer or error text. With -token the request carries
// the control-plane MAC (see ctlplane.Sign); a token-gated coordinator
// answers 401 without it.
func (o *options) statusPost(client *http.Client, url, body string) int {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		fmt.Fprintln(o.stderr, err)
		return 1
	}
	req.Header.Set("Content-Type", "text/plain")
	if o.token != "" {
		req.Header.Set(ctlplane.MACHeader, ctlplane.Sign(o.token, req.Method, req.URL.Path, []byte(body)))
	}
	resp, err := client.Do(req)
	if err != nil {
		fmt.Fprintln(o.stderr, err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return o.statusHTTPError(resp)
	}
	io.Copy(o.stdout, resp.Body)
	return 0
}

func (o *options) statusHTTPError(resp *http.Response) int {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	fmt.Fprintf(o.stderr, "%s: %s\n", resp.Status, strings.TrimSpace(string(msg)))
	return 1
}

// renderStatus prints the status document as grep-friendly lines.
func (o *options) renderStatus(st *ctlplane.Status) {
	fmt.Fprintf(o.stdout, "service=%s now=%s\n", st.Service, st.Now.Format(time.RFC3339))
	if c := st.Campaign; c != nil {
		s := c.Stats
		fmt.Fprintf(o.stdout, "campaign: done=%v uptime=%.1fs queue_depth=%d workers=%d assigned=%d stolen=%d requeued=%d discarded=%d verified=%d rejected=%d hung=%d corrupt=%d submitted=%d cancelled=%d\n",
			c.Done, c.At.Sub(c.StartedAt).Seconds(), c.QueueDepth,
			s.Workers, s.Assigned, s.Stolen, s.Requeued, s.Discarded, s.Verified, s.Rejected, s.Hung, s.CorruptFrames, s.Submitted, s.Cancelled)
		for _, j := range c.Jobs {
			fmt.Fprintf(o.stdout, "job=%d experiment=%s seed=%d scale=%g shards=%d state=%s queued=%d inflight=%d completed=%d verify=%d/%d failures=%d map=%s\n",
				j.Index, j.Experiment, j.Seed, j.Scale, j.Shards, j.State,
				j.Queued, j.InFlight, j.Completed, j.Verified, j.VerifySampled, j.Failures, j.ShardStates)
		}
		for _, w := range c.Workers {
			fmt.Fprintf(o.stdout, "worker=%d name=%s state=%s job=%d shard=%d verify=%v shards_done=%d loops=%d loops_per_sec=%.1f uptime=%.1fs last_seen=%.1fs\n",
				w.ID, w.Name, w.State, w.Job, w.Shard, w.Verify, w.ShardsDone, w.LoopsDone, w.LoopsPerSec, w.UptimeSec, w.LastSeenSec)
		}
		if len(c.Workers) == 0 {
			fmt.Fprintln(o.stdout, "workers: none connected yet")
		}
	} else {
		fmt.Fprintln(o.stdout, "campaign: no campaign feed at this endpoint")
	}
	if sv := st.Serve; sv != nil {
		fmt.Fprintf(o.stdout, "serve: packets=%d short_drops=%d bad_frames=%d data_frames=%d hints=%d acks=%d switches=%d admitted=%d evicted=%d rejected=%d write_errors=%d batches=%d live_clients=%d\n",
			sv.Packets, sv.ShortDrops, sv.BadFrames, sv.DataFrames, sv.Hints, sv.Acks, sv.Switches, sv.Admitted, sv.Evicted, sv.Rejected, sv.WriteErrors, sv.Batches, sv.LiveClients)
	}
}
