// Command hintnode demonstrates the Hint Protocol over real sockets: two
// processes exchange 802.11-style frames over UDP, one acting as a
// mobile client whose movement hint (derived live from a synthetic
// accelerometer via the §2.2.1 jerk algorithm) rides on its data frames,
// the other as an access point that switches its rate adaptation
// strategy on the received hints.
//
// Run the AP, then the client:
//
//	hintnode -listen 127.0.0.1:9999
//	hintnode -connect 127.0.0.1:9999 -duration 10s
//
// Or run both in one process for a self-contained demo:
//
//	hintnode -demo
//
// -workers N runs N concurrent client streams (each with its own MAC
// address and mobility schedule), exercising the AP's per-source hint
// routing under load.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/hintproto"
	"repro/internal/hints"
	"repro/internal/parallel"
	"repro/internal/rate"
	"repro/internal/sensors"
)

func main() {
	listen := flag.String("listen", "", "run as AP, listening on this UDP address")
	connect := flag.String("connect", "", "run as client, sending to this UDP address")
	duration := flag.Duration("duration", 10*time.Second, "client run length")
	workers := flag.Int("workers", 1, "concurrent client streams")
	demo := flag.Bool("demo", false, "run AP and client in one process")
	flag.Parse()

	switch {
	case *demo:
		addr := "127.0.0.1:0"
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			log.Fatal(err)
		}
		go runAP(pc)
		runClients(pc.LocalAddr().String(), *duration, *workers)
	case *listen != "":
		pc, err := net.ListenPacket("udp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("AP listening on", pc.LocalAddr())
		runAP(pc)
	case *connect != "":
		runClients(*connect, *duration, *workers)
	default:
		fmt.Fprintln(os.Stderr, "usage: hintnode -demo | -listen addr | -connect addr")
		os.Exit(2)
	}
}

// runClients drives n concurrent client streams against the AP through
// a worker pool, so a huge -workers value degrades gracefully instead of
// opening unbounded sockets at once.
func runClients(to string, total time.Duration, n int) {
	if n < 1 {
		n = 1
	}
	pool := parallel.NewPool(min(n, 64))
	for id := 0; id < n; id++ {
		id := id
		if err := pool.Submit(func() { runClient(to, total, id) }); err != nil {
			log.Fatal(err)
		}
	}
	pool.Close()
}

// runAP receives frames, ingests their hints into a hint bus, and drives
// one hint-aware rate adapter per client (the per-destination state a
// real AP keeps), ACKing every data frame (with the AP's own movement
// bit — here always clear, the AP is static).
func runAP(pc net.PacketConn) {
	bus := core.NewBus()
	adapters := map[dot11.Addr]*rate.HintAware{}
	adapterFor := func(addr dot11.Addr) *rate.HintAware {
		a := adapters[addr]
		if a == nil {
			a = rate.NewHintAware(1)
			adapters[addr] = a
		}
		return a
	}
	apAddr := dot11.AddrFromInt(1)
	start := time.Now()

	// Strategy switches are logged as they happen, per client.
	bus.Subscribe(hintproto.HintMovement, func(ev core.Event) {
		moving := ev.Hint.Value != 0
		adapter := adapterFor(ev.Source.Addr)
		if adapter.Moving() != moving {
			adapter.SetMoving(moving)
			state := "static -> SampleRate"
			if moving {
				state = "moving -> RapidSample"
			}
			fmt.Printf("[ap] %6.2fs hint from %v: %s\n",
				time.Since(start).Seconds(), ev.Source.Addr, state)
		}
	})

	buf := make([]byte, 4096)
	var frames, hintsSeen int
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		f, err := dot11.Unmarshal(buf[:n])
		if err != nil {
			fmt.Printf("[ap] dropping bad frame from %v: %v\n", from, err)
			continue
		}
		frames++
		hintsSeen += bus.IngestFrame(f, time.Since(start))
		if f.Type == dot11.TypeData {
			// Exercise the client's adapter as a real AP would per packet.
			adapter := adapterFor(f.Src)
			r := adapter.PickRate(time.Since(start))
			adapter.Observe(rate.Feedback{At: time.Since(start), Rate: r, Acked: true, SNR: rate.NoSNR()})
			ack := dot11.Ack(f, apAddr)
			hintproto.SetMovementBit(ack, false)
			b, err := ack.Marshal()
			if err == nil {
				if _, err := pc.WriteTo(b, from); err != nil {
					return
				}
			}
		}
		if frames%200 == 0 {
			fmt.Printf("[ap] %6.2fs %d frames, %d hints ingested\n",
				time.Since(start).Seconds(), frames, hintsSeen)
		}
	}
}

// runClient streams data frames with a live movement hint derived from a
// synthetic accelerometer: the device rests, walks, and rests again. id
// distinguishes concurrent streams: each gets its own MAC address and a
// phase-shifted mobility schedule so the AP sees staggered hints.
func runClient(to string, total time.Duration, id int) {
	conn, err := net.Dial("udp", to)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	clientAddr := dot11.AddrFromInt(2 + id)
	apAddr := dot11.AddrFromInt(1)

	// Mobility ground truth: rest, walk for total/2, rest again. The walk
	// window slides by id (wrapping every 4 streams) so concurrent
	// clients do not move in lockstep, while Start < End holds for any id.
	walkStart := total/4 + time.Duration(id%4)*total/16
	sched := sensors.Schedule{{Start: walkStart, End: walkStart + total/2, Mode: sensors.Walk}}
	accel := sensors.NewAccelerometer(sensors.DefaultAccelConfig(), time.Now().UnixNano()+int64(id))
	samples := accel.Generate(sched, total)
	det := hints.NewMovementDetector(hints.MovementConfig{})

	// Drain ACKs in the background so the socket buffer stays empty.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	start := time.Now()
	var seq uint16
	sampleIdx := 0
	lastHint := false
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for now := range ticker.C {
		elapsed := now.Sub(start)
		if elapsed >= total {
			break
		}
		// Feed all accelerometer reports due by now.
		for sampleIdx < len(samples) && samples[sampleIdx].T <= elapsed {
			det.Update(samples[sampleIdx])
			sampleIdx++
		}
		moving := det.Moving()
		if moving != lastHint {
			fmt.Printf("[client %d] %6.2fs movement hint -> %v (truth: %v)\n",
				id, elapsed.Seconds(), moving, sched.MovingAt(elapsed))
			lastHint = moving
		}
		f := &dot11.Frame{Type: dot11.TypeData, Seq: seq, Src: clientAddr, Dst: apAddr,
			Payload: []byte("sensor-hints demo payload")}
		seq++
		hintproto.SetMovementBit(f, moving)
		if err := hintproto.AppendTrailer(f, []hintproto.Hint{
			{Type: hintproto.HintMovement, Value: b2f(moving)},
			{Type: hintproto.HintSpeed, Value: 1.4 * b2f(moving)},
		}); err != nil {
			log.Fatal(err)
		}
		b, err := f.Marshal()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := conn.Write(b); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("[client %d] sent %d frames over %v\n", id, seq, total)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
