// Command hintnode demonstrates the Hint Protocol over real sockets:
// processes exchange 802.11-style frames over UDP, one side acting as
// mobile clients whose movement hints (derived live from a synthetic
// accelerometer via the §2.2.1 jerk algorithm) ride on their data
// frames, the other as an access point that switches its rate
// adaptation strategy on the received hints.
//
// The AP side runs on internal/hintserve: a sharded, batched serving
// plane with a bounded per-client state table and an allocation-free
// per-packet path, so one AP process scales to thousands of clients
// (drive it with cmd/hintload for raw load).
//
// Run the AP, then the client:
//
//	hintnode -listen 127.0.0.1:9999
//	hintnode -connect 127.0.0.1:9999 -duration 10s
//
// Or run both in one process for a self-contained demo:
//
//	hintnode -demo
//
// -workers N runs N concurrent client streams (each with its own MAC
// address and mobility schedule), exercising the AP's per-source hint
// routing under load.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/ctlplane"
	"repro/internal/dot11"
	"repro/internal/hintproto"
	"repro/internal/hints"
	"repro/internal/hintserve"
	"repro/internal/parallel"
	"repro/internal/sensors"
)

func main() {
	listen := flag.String("listen", "", "run as AP, listening on this UDP address")
	connect := flag.String("connect", "", "run as client, sending to this UDP address")
	duration := flag.Duration("duration", 10*time.Second, "client run length")
	workers := flag.Int("workers", 1, "concurrent client streams")
	shards := flag.Int("shards", 0, "AP serving shards (0 = GOMAXPROCS)")
	clientsPerShard := flag.Int("clients-per-shard", 0, "AP client-table slots per shard (0 = default)")
	idle := flag.Duration("idle-timeout", 0, "AP idle client eviction threshold (0 = default)")
	statsEvery := flag.Duration("stats", 2*time.Second, "AP stats logging interval (0 disables)")
	addrFile := flag.String("addr-file", "", "write the AP's bound address to this file")
	statusAddr := flag.String("status-addr", "", "AP: serve the HTTP control plane (/status, /metrics) on this address")
	statusAddrFile := flag.String("status-addr-file", "", "write the resolved -status-addr address to this file")
	logSwitches := flag.Bool("log-switches", false, "log every per-client strategy switch (noisy at scale; default on with -demo)")
	demo := flag.Bool("demo", false, "run AP and client in one process")
	flag.Parse()

	// The demo is about watching switches happen, so it logs them unless
	// the flag says otherwise explicitly.
	logSwitchesSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "log-switches" {
			logSwitchesSet = true
		}
	})
	cfg := hintserve.Config{
		Shards:          *shards,
		ClientsPerShard: *clientsPerShard,
		IdleTimeout:     *idle,
	}
	if *logSwitches || (*demo && !logSwitchesSet) {
		cfg.OnSwitch = logSwitch(time.Now())
	}

	if *statusAddrFile != "" && *statusAddr == "" {
		fmt.Fprintln(os.Stderr, "-status-addr-file publishes a -status-addr address; it needs -status-addr")
		os.Exit(2)
	}
	switch {
	case *demo:
		srv, err := startAP("127.0.0.1:0", cfg, *statsEvery, *addrFile)
		if err != nil {
			log.Fatal(err)
		}
		stopStatus, err := startStatus(*statusAddr, *statusAddrFile, srv)
		if err != nil {
			log.Fatal(err)
		}
		ok := runClients(srv.LocalAddr().String(), *duration, *workers)
		stopStatus()
		srv.Close()
		fmt.Println("[ap]", srv.Stats())
		if !ok {
			os.Exit(1)
		}
	case *listen != "":
		srv, err := startAP(*listen, cfg, *statsEvery, *addrFile)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := startStatus(*statusAddr, *statusAddrFile, srv); err != nil {
			log.Fatal(err)
		}
		fmt.Println("AP listening on", srv.LocalAddr())
		if err := srv.serveErr(); err != nil {
			log.Fatal(err)
		}
	case *connect != "":
		if !runClients(*connect, *duration, *workers) {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: hintnode -demo | -listen addr | -connect addr")
		os.Exit(2)
	}
}

// logSwitch renders strategy switches as they happen, per client.
func logSwitch(start time.Time) func(dot11.Addr, bool) {
	return func(addr dot11.Addr, moving bool) {
		state := "static -> SampleRate"
		if moving {
			state = "moving -> RapidSample"
		}
		fmt.Printf("[ap] %6.2fs hint from %v: %s\n", time.Since(start).Seconds(), addr, state)
	}
}

// startStatus serves the AP's counters on the shared control-plane
// endpoint shape (/status, /metrics) when -status-addr is given; the
// returned stop function closes the endpoint. Reads go through
// hintserve's consistent per-shard stats collection, so scraping never
// touches the packet path.
func startStatus(addr, addrFile string, srv *apHandle) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	cp, err := ctlplane.Start(addr, ctlplane.Config{Service: "hintnode", ServeStats: srv.Stats})
	if err != nil {
		return nil, err
	}
	fmt.Println("AP control plane on", cp.Addr())
	if addrFile != "" {
		if err := atomicfile.WriteFile(addrFile, []byte(cp.Addr()+"\n"), 0o644); err != nil {
			cp.Close()
			return nil, err
		}
	}
	return func() { cp.Close() }, nil
}

// apHandle pairs a serving plane with its background Serve goroutine.
type apHandle struct {
	*hintserve.Server
	done chan error
}

// serveErr blocks until Serve returns (socket closed or fatal error).
func (h *apHandle) serveErr() error { return <-h.done }

// startAP boots the serving plane on addr and starts serving in the
// background, optionally logging stats and writing the bound address to
// a file for scripted harnesses.
func startAP(addr string, cfg hintserve.Config, statsEvery time.Duration, addrFile string) (*apHandle, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	srv := hintserve.New(conn, cfg)
	if addrFile != "" {
		// Atomic write: launch scripts poll for this file, and a torn
		// read of half an address must be impossible.
		if err := atomicfile.WriteFile(addrFile, []byte(srv.LocalAddr().String()+"\n"), 0o644); err != nil {
			conn.Close()
			return nil, err
		}
	}
	h := &apHandle{Server: srv, done: make(chan error, 1)}
	go func() { h.done <- srv.Serve() }()
	if statsEvery > 0 {
		go func() {
			t := time.NewTicker(statsEvery)
			defer t.Stop()
			start := time.Now()
			for range t.C {
				fmt.Printf("[ap] %6.2fs %s\n", time.Since(start).Seconds(), srv.Stats())
			}
		}()
	}
	return h, nil
}

// runClients drives n concurrent client streams against the AP through
// a worker pool, so a huge -workers value degrades gracefully instead
// of opening unbounded sockets at once. A failing stream is logged and
// the rest keep running; the run as a whole fails only when every
// stream failed.
func runClients(to string, total time.Duration, n int) bool {
	if n < 1 {
		n = 1
	}
	var failed atomic.Int64
	var mu sync.Mutex
	var firstErr error
	pool := parallel.NewPool(min(n, 64))
	for id := 0; id < n; id++ {
		id := id
		if err := pool.Submit(func() {
			if err := runClient(to, total, id); err != nil {
				log.Printf("[client %d] stream failed: %v", id, err)
				failed.Add(1)
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}); err != nil {
			log.Printf("[client %d] submit failed: %v", id, err)
			failed.Add(1)
		}
	}
	pool.Close()
	if nf := failed.Load(); nf > 0 {
		log.Printf("%d/%d client streams failed (first error: %v)", nf, n, firstErr)
		return nf < int64(n)
	}
	return true
}

// maxConsecutiveWriteErrs is how many back-to-back send failures a
// client stream tolerates before declaring its path dead.
const maxConsecutiveWriteErrs = 10

// runClient streams data frames with a live movement hint derived from
// a synthetic accelerometer: the device rests, walks, and rests again.
// id distinguishes concurrent streams: each gets its own MAC address
// and a phase-shifted mobility schedule so the AP sees staggered hints.
// Errors are returned, not fatal: one bad stream must not kill its
// siblings.
func runClient(to string, total time.Duration, id int) error {
	conn, err := net.Dial("udp", to)
	if err != nil {
		return fmt.Errorf("dial %s: %w", to, err)
	}
	defer conn.Close()

	clientAddr := dot11.AddrFromInt(2 + id)
	apAddr := dot11.AddrFromInt(1)

	// Mobility ground truth: rest, walk for total/2, rest again. The walk
	// window slides by id (wrapping every 4 streams) so concurrent
	// clients do not move in lockstep, while Start < End holds for any id.
	walkStart := total/4 + time.Duration(id%4)*total/16
	sched := sensors.Schedule{{Start: walkStart, End: walkStart + total/2, Mode: sensors.Walk}}
	accel := sensors.NewAccelerometer(sensors.DefaultAccelConfig(), time.Now().UnixNano()+int64(id))
	samples := accel.Generate(sched, total)
	det := hints.NewMovementDetector(hints.MovementConfig{})

	// Drain ACKs in the background so the socket buffer stays empty.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	start := time.Now()
	var seq uint16
	sampleIdx := 0
	lastHint := false
	writeErrs := 0
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for now := range ticker.C {
		elapsed := now.Sub(start)
		if elapsed >= total {
			break
		}
		// Feed all accelerometer reports due by now.
		for sampleIdx < len(samples) && samples[sampleIdx].T <= elapsed {
			det.Update(samples[sampleIdx])
			sampleIdx++
		}
		moving := det.Moving()
		if moving != lastHint {
			fmt.Printf("[client %d] %6.2fs movement hint -> %v (truth: %v)\n",
				id, elapsed.Seconds(), moving, sched.MovingAt(elapsed))
			lastHint = moving
		}
		f := &dot11.Frame{Type: dot11.TypeData, Seq: seq, Src: clientAddr, Dst: apAddr,
			Payload: []byte("sensor-hints demo payload")}
		seq++
		hintproto.SetMovementBit(f, moving)
		if err := hintproto.AppendTrailer(f, []hintproto.Hint{
			{Type: hintproto.HintMovement, Value: b2f(moving)},
			{Type: hintproto.HintSpeed, Value: 1.4 * b2f(moving)},
		}); err != nil {
			return fmt.Errorf("trailer: %w", err)
		}
		b, err := f.Marshal()
		if err != nil {
			return fmt.Errorf("marshal: %w", err)
		}
		if _, err := conn.Write(b); err != nil {
			// Transient send errors (e.g. the AP restarting) are
			// tolerated; a persistently dead path fails the stream.
			writeErrs++
			if writeErrs >= maxConsecutiveWriteErrs {
				return fmt.Errorf("write: %d consecutive failures, last: %w", writeErrs, err)
			}
			continue
		}
		writeErrs = 0
	}
	fmt.Printf("[client %d] sent %d frames over %v\n", id, seq, total)
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
