package sensorhints_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/hintserve"
)

// BenchmarkHintServeBatch is the serving plane's hot-path
// micro-benchmark and the anchor of the BENCH_hintserve.json regression
// gate: one op serves one 64-packet batch through a shard's
// decode→ingest→adapt→ack path on the conn-less harness (no sockets, no
// scheduler noise). The allocs/op column doubles as the allocation
// budget in CI trend data — it must stay 0.
func BenchmarkHintServeBatch(b *testing.B) {
	h, err := hintserve.NewBenchHarness(hintserve.Config{BatchSize: 64}, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	packets := 0
	for i := 0; i < b.N; i++ {
		p, _ := h.ServeBatch()
		packets += p
	}
	if packets > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(packets), "ns/packet")
	}
}

// BenchmarkHintServeUDP is the figure-level measurement: a full serving
// plane on a loopback socket under a closed-loop hintload herd, with
// throughput and ACK latency reported as metrics. It is recorded into
// BENCH_hintserve.json for the trajectory but not gated on ns/op — a
// wall-clock loopback number is too hardware-dependent for a ±25% gate.
func BenchmarkHintServeUDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			b.Fatal(err)
		}
		srv := hintserve.New(conn, hintserve.Config{ClientsPerShard: 8192})
		done := make(chan struct{})
		go func() { defer close(done); srv.Serve() }()

		rep, err := hintserve.RunLoad(hintserve.LoadConfig{
			Target:       srv.LocalAddr().String(),
			Clients:      2000,
			Packets:      100000,
			Senders:      4,
			TogglePeriod: 32,
			Timeout:      3 * time.Minute,
		})
		srv.Close()
		<-done
		if err != nil {
			b.Fatal(err)
		}
		if rep.Acked == 0 {
			b.Fatal("loopback serving plane acked nothing")
		}
		b.ReportMetric(rep.PacketsPerSec, "pps")
		b.ReportMetric(float64(rep.P50.Microseconds()), "p50-us")
		b.ReportMetric(float64(rep.P99.Microseconds()), "p99-us")
		b.ReportMetric(rep.AckRatio, "ack-ratio")
	}
}
