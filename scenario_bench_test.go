// Scenario-engine benchmarks: the registered city-scale run at paper
// scale (1024 APs, 100,000 clients), the idle-link sweep that pins the
// cost-follows-events claim, and the timer-wheel scheduling hot path.
// `make bench` records them to BENCH_scenario.json; `make bench-check`
// gates regressions.
package sensorhints_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// BenchmarkScenarioCity runs the full registered city-grid experiment at
// scale 1 — one 32×32-AP city with 100,000 roaming clients for 40
// simulated seconds, sharded over client chunks — and reports simulated
// events per wall-clock second.
func BenchmarkScenarioCity(b *testing.B) {
	exp, ok := experiments.ByID("city-grid")
	if !ok {
		b.Fatal("city-grid not registered")
	}
	var rep *experiments.Report
	start := time.Now()
	for i := 0; i < b.N; i++ {
		rep = exp.Run(experiments.Config{Scale: 1, Seed: 42})
	}
	elapsed := time.Since(start)
	if fails := rep.Failed(); len(fails) > 0 {
		b.Fatalf("shape checks failed: %v", fails)
	}
	var events float64
	for _, row := range rep.Rows {
		if row.Label == "packet events" {
			events = row.Values[0]
		}
	}
	if events == 0 {
		b.Fatal("no packet events reported")
	}
	b.ReportMetric(events*float64(b.N)/elapsed.Seconds(), "events_per_s")
	b.ReportMetric(events, "events")
}

// BenchmarkScenarioIdle is the idle-link sweep: the same population and
// traffic dropped into ever larger cities (16× the APs and area from
// first to last). Event-driven cost must track traffic, not city size —
// ns/op stays near-flat and the events metric is identical across
// sub-benchmarks.
func BenchmarkScenarioIdle(b *testing.B) {
	for _, side := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("aps=%d", side*side), func(b *testing.B) {
			sc := scenario.Scenario{
				Name: "idle-sweep",
				Grid: scenario.APGrid{Side: side, Spacing: 170},
				Herds: []scenario.Herd{{
					Name: "walkers", Clients: 2000,
					Mobility: scenario.MobilityProfile{SpeedMps: 1.4, SpeedJitter: 0.3, MeanSegment: 80},
					Traffic:  scenario.TrafficMix{{Name: "web", Bytes: 1000, Interval: 250 * time.Millisecond}},
				}},
				Duration: 10 * time.Second,
				Seed:     42,
			}
			var res scenario.Result
			for i := 0; i < b.N; i++ {
				res = scenario.Run(sc)
			}
			b.ReportMetric(float64(res.Events), "events")
			b.ReportMetric(float64(res.APs), "aps")
		})
	}
}

// BenchmarkTimerWheel measures the event engine's scheduling hot path —
// a reschedule-heavy MAC-timer workload — on both backends. The wheel's
// ns/op must not regress against its recorded trajectory; the heap
// sub-benchmark is the comparison baseline.
func BenchmarkTimerWheel(b *testing.B) {
	const nodes = 1024
	run := func(b *testing.B, eng *sim.Engine) {
		b.Helper()
		evs := make([]*sim.Event, nodes)
		for i := 0; i < nodes; i++ {
			evs[i] = eng.At(time.Duration(i)*time.Microsecond, func() {})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % nodes
			evs[j] = eng.Reschedule(evs[j], eng.Now()+time.Duration(nodes+i%97)*time.Microsecond)
			if i%4 == 0 {
				eng.Step()
			}
		}
	}
	b.Run("wheel", func(b *testing.B) { run(b, sim.NewWheel(10*time.Microsecond, 4096)) })
	b.Run("heap", func(b *testing.B) { run(b, sim.New()) })
}
