// Rate adaptation on a mixed-mobility channel (the Chapter 3 scenario):
// a smartphone user alternates between standing still and walking while
// streaming over Wi-Fi. The example replays the same synthetic channel
// trace against every protocol and prints the throughput ranking,
// showing why switching strategies on the movement hint wins.
package main

import (
	"fmt"
	"sort"
	"time"

	sensorhints "repro"
)

func main() {
	const total = 20 * time.Second
	// 10 s static, 10 s walking — the supermarket-aisle pattern from the
	// paper's introduction.
	sched := sensorhints.AlternatingSchedule(total, 10*time.Second, sensorhints.Walk, false)
	tr := sensorhints.GenerateTrace(sensorhints.ChannelConfig{
		Env:   sensorhints.Office,
		Sched: sched,
		Total: total,
		Seed:  7,
	})
	fmt.Printf("trace: %s/%s, %v, %d slots\n", tr.Env, tr.Mode, tr.Duration(), len(tr.Slots))

	adapters := []sensorhints.RateAdapter{
		sensorhints.NewHintAwareRate(1),
		sensorhints.NewRapidSample(),
		sensorhints.NewSampleRate(1),
		sensorhints.NewRRAA(),
		sensorhints.NewRBAR(),
		sensorhints.NewCHARM(),
	}
	type row struct {
		name string
		mbps float64
		avg  float64
	}
	var rows []row
	for _, a := range adapters {
		res := sensorhints.RunRateSim(sensorhints.SimConfig{
			Trace:    tr,
			Adapter:  a,
			Workload: sensorhints.TCP,
			Seed:     99,
		})
		rows = append(rows, row{a.Name(), res.ThroughputMbps, res.AvgRateMbps()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mbps > rows[j].mbps })

	fmt.Printf("%-14s %12s %14s\n", "protocol", "TCP Mbps", "avg bitrate")
	for _, r := range rows {
		fmt.Printf("%-14s %12.2f %14.1f\n", r.name, r.mbps, r.avg)
	}
	fmt.Println("\nthe hint-aware protocol runs SampleRate while static and")
	fmt.Println("RapidSample while moving, switching on the receiver's hint")
}
