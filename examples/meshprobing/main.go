// Topology maintenance with hint-adaptive probing (Chapter 4): a mesh
// node estimates the delivery probability of a link whose other end
// alternates between resting and walking. Fixed 1 probe/s is cheap but
// lags badly while the neighbour moves; fixed 10 probes/s is accurate
// but spends 10x the bandwidth. The hint-adaptive scheduler gets the
// accuracy of fast probing at a fraction of the cost.
package main

import (
	"fmt"
	"time"

	sensorhints "repro"
)

func main() {
	const total = 60 * time.Second
	sched := sensorhints.AlternatingSchedule(total, 10*time.Second, sensorhints.Walk, false)

	// A marginal mesh-scale link: even 6 Mbps delivery fluctuates when
	// the far end moves.
	env := sensorhints.Office.WithBaseSNR(9)
	env.WalkShadowSigma = 11
	env.WalkShadowTau = 5 * time.Second
	env.CoherenceTime = 5 * time.Second
	tr := sensorhints.GenerateTrace(sensorhints.ChannelConfig{
		Env: env, Sched: sched, Total: total, Seed: 3,
	})

	// The hint: the neighbour's movement bit arrives on its frames with
	// ~100 ms detection latency.
	hint := func(now time.Duration) bool { return tr.MovingAt(now - 100*time.Millisecond) }

	schedulers := []sensorhints.ProbeScheduler{
		&sensorhints.FixedProbing{PerSecond: 1},
		&sensorhints.FixedProbing{PerSecond: 10},
		&sensorhints.HintProbing{MovingFn: hint},
	}
	fmt.Printf("%-16s %10s %12s %12s\n", "scheduler", "probes", "mean |err|", "mobile |err|")
	for _, s := range schedulers {
		res := sensorhints.RunProbing(tr, s, 10, 11)
		var mob, mobN, all float64
		for _, smp := range res.Samples {
			all += smp.Error()
			if tr.MovingAt(smp.At) {
				mob += smp.Error()
				mobN++
			}
		}
		fmt.Printf("%-16s %10d %12.3f %12.3f\n",
			s.Name(), res.Probes, all/float64(len(res.Samples)), mob/mobN)
	}
	fmt.Println("\nhint-adaptive probing matches the fast prober's accuracy while")
	fmt.Println("sending close to the slow prober's traffic (paper: a 20x gap in")
	fmt.Println("the probing rate each regime needs)")
}
