// Quickstart: derive the boolean movement hint of §2.2.1 from a raw
// accelerometer stream and measure detection latency.
//
// A synthetic device rests for 5 s, is carried at walking pace for 10 s,
// and rests again. The detector sees only the raw three-axis force
// reports (one per 2 ms, uncalibrated units) and must recover the
// mobility timeline.
package main

import (
	"fmt"
	"time"

	sensorhints "repro"
)

func main() {
	const total = 20 * time.Second
	sched := sensorhints.Schedule{
		{Start: 5 * time.Second, End: 15 * time.Second, Mode: sensorhints.Walk},
	}

	accel := sensorhints.NewAccelerometer(sensorhints.DefaultAccelConfig(), 1)
	samples := accel.Generate(sched, total)
	fmt.Printf("generated %d accelerometer reports (%v at one per 2 ms)\n", len(samples), total)

	det := sensorhints.NewMovementDetector(sensorhints.MovementConfig{})
	var transitions []string
	last := false
	for _, s := range samples {
		m := det.Update(s)
		if m != last {
			transitions = append(transitions,
				fmt.Sprintf("  %6.3fs hint -> moving=%v (truth: %v)", s.T.Seconds(), m, sched.MovingAt(s.T)))
			last = m
		}
	}
	fmt.Println("hint transitions:")
	for _, t := range transitions {
		fmt.Println(t)
	}

	if lat := sensorhints.DetectionLatency(samples, 5*time.Second); lat >= 0 {
		fmt.Printf("motion detected %v after onset (paper: under 100 ms)\n", lat)
	}

	// The hint travels to peers inside ordinary frames: zero-overhead as
	// a header bit, or as a (type, value) trailer on data frames.
	f := &sensorhints.Frame{Type: 0, Payload: []byte("app data")}
	sensorhints.SetMovementBit(f, det.Moving())
	if err := sensorhints.AppendHints(f, []sensorhints.Hint{
		{Type: sensorhints.HintMovement, Value: 0},
		{Type: sensorhints.HintSpeed, Value: 1.4},
	}); err != nil {
		panic(err)
	}
	fmt.Printf("frame carries hints: %v\n", sensorhints.ExtractHints(f))
}
