// Cityscale: declare a city with the Scenario API and run it on the
// event-driven engine.
//
// The program builds a scaled-down version of the city-grid experiment
// city — an AP grid carrying walking, driving and stationary herds with
// a ConCap-style traffic mix — runs it on the timer-wheel engine, checks
// the result against the slot-driven oracle, and then grows the grid at
// fixed population to show that idle links cost nothing: the event
// count tracks traffic, not city size.
package main

import (
	"fmt"
	"time"

	sensorhints "repro"
)

func main() {
	// A 6×6 grid at 170 m spacing (full radio coverage), three herds.
	sc := sensorhints.Scenario{
		Name: "downtown",
		Grid: sensorhints.APGrid{Side: 6, Spacing: 170},
		Herds: []sensorhints.Herd{
			{
				Name: "pedestrians", Clients: 600,
				Mobility: sensorhints.MobilityProfile{SpeedMps: 1.4, SpeedJitter: 0.3, MeanSegment: 80},
				Traffic: sensorhints.TrafficMix{
					{Name: "voip", Bytes: 200, Interval: 250 * time.Millisecond},
					{Name: "web", Bytes: 1400, Interval: time.Second},
				},
			},
			{
				Name: "taxis", Clients: 250,
				Mobility: sensorhints.MobilityProfile{SpeedMps: 9, SpeedJitter: 1.5, MeanSegment: 400, RoadHeadings: 4, RouteJitterDeg: 8},
				Traffic:  sensorhints.TrafficMix{{Name: "telemetry", Bytes: 1000, Interval: 500 * time.Millisecond}},
			},
			{
				Name: "kiosks", Clients: 150,
				Traffic: sensorhints.TrafficMix{{Name: "sensor", Bytes: 600, Interval: time.Second}},
			},
		},
		Duration: 20 * time.Second,
		Seed:     42,
	}

	start := time.Now()
	res := sensorhints.RunScenario(sc)
	elapsed := time.Since(start)
	m := res.Metrics
	fmt.Printf("city: %d APs, %d clients, %v simulated\n", res.APs, res.Clients, sc.Duration)
	fmt.Printf("ran %d packet events in %v (%.0f events/s)\n",
		res.Events, elapsed.Round(time.Millisecond), float64(res.Events)/elapsed.Seconds())
	fmt.Printf("delivery %.1f%%, %d handoffs, %.2f s of airtime\n",
		100*m.DeliveryRate(), m.Handoffs, float64(m.AirtimeNs)/1e9)

	// The slot-driven oracle replays the same city slot by slot with a
	// full AP scan per packet; contention-free results are byte-identical.
	if sensorhints.RunScenarioSlotted(sc).Metrics == m {
		fmt.Println("slot-driven oracle: byte-identical metrics")
	} else {
		fmt.Println("slot-driven oracle: DIVERGED (bug!)")
	}

	// Grow the city 4× in APs and area at fixed population: the event
	// count is unchanged, because idle links generate no events.
	big := sc
	big.Grid.Side *= 2
	bigRes := sensorhints.RunScenario(big)
	fmt.Printf("%d APs -> %d APs at fixed population: %d -> %d events\n",
		res.APs, bigRes.APs, res.Events, bigRes.Events)
}
