// Access-point policies with hints (§5.2): the Figure 5-1 pathology and
// its fix. Two clients share an AP; one walks out of range mid-transfer.
// A legacy AP retransmits open-loop to the departed client for ~10 s,
// collapsing the remaining client's throughput. A hint-aware AP parks
// the client the moment its movement hint plus silence says it left.
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ap"
)

func main() {
	legacy := ap.RunTwoClients(ap.TwoClientConfig{Policy: ap.FrameFair})
	hinted := ap.RunTwoClients(ap.TwoClientConfig{
		Policy: ap.FrameFair,
		Prune:  ap.PruneConfig{Timeout: 10 * time.Second, HintAware: true, ProbeEvery: time.Second},
	})

	fmt.Println("client 1 (static) throughput per second; client 2 departs at 35s")
	fmt.Printf("%4s %14s %14s\n", "t(s)", "legacy AP", "hint-aware AP")
	for i := 0; i < legacy.Client1.Len() && i < hinted.Client1.Len(); i += 2 {
		l := legacy.Client1.Points[i]
		h := hinted.Client1.Points[i]
		bar := strings.Repeat("#", int(l.Y))
		fmt.Printf("%4.0f %10.1f Mbps %10.1f Mbps  %s\n", l.X, l.Y, h.Y, bar)
	}
	fmt.Printf("\nlegacy AP pruned the departed client after %.1fs;\n", legacy.PruneAt.Seconds())
	fmt.Printf("hint-aware AP parked it at %.1fs\n", hinted.PruneAt.Seconds())

	// Association scoring: pick the AP you are walking toward, not the
	// one with momentarily stronger signal that you are leaving.
	score := ap.DefaultAssociationScore()
	cands := []ap.ClientHints{
		{Moving: true, HeadingDeg: 90, SpeedMps: 1.5, BearingToAPDeg: 270, RSSdB: 15}, // behind
		{Moving: true, HeadingDeg: 90, SpeedMps: 1.5, BearingToAPDeg: 90, RSSdB: 12},  // ahead
	}
	fmt.Printf("\nassociation: RSS-only picks AP %d; hint-aware picks AP %d (the one ahead)\n",
		ap.BestAPByRSS(cands), ap.BestAP(score, cands))
}
