// Vehicular mesh routing with heading hints (§5.1): vehicles append
// their compass/GPS heading to neighbour probes; the connection time
// estimate (CTE) metric — the inverse heading difference — predicts how
// long a link will last, so routes built over similar-heading links
// survive several times longer than heading-blind routes.
package main

import (
	"fmt"
	"time"

	sensorhints "repro"
	"repro/internal/vehicular"
)

func main() {
	// Table 5.1 first: median link duration by heading difference.
	fmt.Println("link duration vs heading difference (100 vehicles, 5 min):")
	sim := sensorhints.NewVehicleSim(sensorhints.DefaultVehicleMobility(5))
	links := vehicular.CollectLinks(sim, 5*time.Minute)
	buckets, all := vehicular.MedianDurations(links)
	for i, name := range vehicular.BucketNames {
		fmt.Printf("  heading diff %-9s median %5.1fs\n", name, buckets[i])
	}
	fmt.Printf("  all links          median %5.1fs  (%d links)\n\n", all, len(links))

	// The CTE metric in action.
	for _, d := range []float64{2, 9, 25, 90, 180} {
		fmt.Printf("  CTE(%5.1f deg) = %.4f\n", d, sensorhints.CTE(d))
	}

	// Route stability: 3-hop routes, CTE selection vs hint-free.
	mob := sensorhints.DefaultVehicleMobility(5)
	mob.Vehicles = 150
	cfg := vehicular.StabilityConfig{Mobility: mob, Hops: 3, Trials: 60, Horizon: 150 * time.Second, Seed: 5}
	cte := vehicular.RouteLifetimes(cfg, vehicular.CTESelector{})
	free := vehicular.RouteLifetimes(cfg, vehicular.RandomSelector{})
	med := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := append([]float64(nil), xs...)
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j] < s[i] {
					s[i], s[j] = s[j], s[i]
				}
			}
		}
		return s[len(s)/2]
	}
	fmt.Printf("\nroute lifetimes (median over %d routes):\n", len(cte))
	fmt.Printf("  CTE-selected: %5.1fs\n", med(cte))
	fmt.Printf("  hint-free:    %5.1fs\n", med(free))
	fmt.Printf("  ratio:        %5.1fx  (paper: 4-5x)\n", med(cte)/med(free))
}
