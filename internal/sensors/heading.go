package sensors

import (
	"math"
	"math/rand"
	"time"
)

// CompassSample is one magnetometer heading report in degrees clockwise
// from magnetic north, [0, 360).
type CompassSample struct {
	T          time.Duration
	HeadingDeg float64
}

// GyroSample is one gyroscope report: angular rate about the vertical
// axis in degrees per second (positive = clockwise).
type GyroSample struct {
	T          time.Duration
	RateDegSec float64
}

// CompassConfig tunes the synthetic magnetometer. Indoor environments can
// be magnetically hostile (§2.2.2), modelled as intermittent large-bias
// disturbance episodes on top of baseline noise.
type CompassConfig struct {
	Interval time.Duration
	// Noise is baseline 1-σ heading noise in degrees.
	Noise float64
	// DisturbProb is the per-sample probability of entering a magnetic
	// disturbance episode; DisturbBias its magnitude in degrees;
	// DisturbLen its duration.
	DisturbProb float64
	DisturbBias float64
	DisturbLen  time.Duration
}

// DefaultCompassConfig returns indoor- or outdoor-typical magnetometer
// behaviour.
func DefaultCompassConfig(indoor bool) CompassConfig {
	cfg := CompassConfig{
		Interval: 20 * time.Millisecond,
		Noise:    2,
	}
	if indoor {
		cfg.Noise = 6
		cfg.DisturbProb = 0.002
		cfg.DisturbBias = 55
		cfg.DisturbLen = 2 * time.Second
	}
	return cfg
}

// Compass synthesizes heading reports around a ground-truth heading
// function.
type Compass struct {
	cfg CompassConfig
	rng *rand.Rand
}

// NewCompass returns a generator with the given configuration and seed.
func NewCompass(cfg CompassConfig, seed int64) *Compass {
	if cfg.Interval <= 0 {
		cfg.Interval = 20 * time.Millisecond
	}
	return &Compass{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Generate produces compass samples for the true heading function from
// time 0 to total.
func (c *Compass) Generate(trueHeading func(time.Duration) float64, total time.Duration) []CompassSample {
	var out []CompassSample
	var disturbUntil time.Duration
	var disturbBias float64
	for t := time.Duration(0); t <= total; t += c.cfg.Interval {
		if t >= disturbUntil && c.rng.Float64() < c.cfg.DisturbProb {
			disturbUntil = t + c.cfg.DisturbLen
			disturbBias = c.cfg.DisturbBias * (2*c.rng.Float64() - 1)
		}
		h := trueHeading(t) + c.rng.NormFloat64()*c.cfg.Noise
		if t < disturbUntil {
			h += disturbBias
		}
		out = append(out, CompassSample{T: t, HeadingDeg: normDeg(h)})
	}
	return out
}

// GyroConfig tunes the synthetic gyroscope.
type GyroConfig struct {
	Interval time.Duration
	// Noise is 1-σ rate noise in deg/s.
	Noise float64
	// BiasDrift is the random-walk step of the slowly wandering rate
	// bias, in deg/s per sample — the reason gyros need an absolute
	// reference such as the compass (§2.2.2).
	BiasDrift float64
}

// DefaultGyroConfig returns a MEMS-typical gyro profile.
func DefaultGyroConfig() GyroConfig {
	return GyroConfig{Interval: 10 * time.Millisecond, Noise: 0.4, BiasDrift: 0.003}
}

// Gyro synthesizes angular-rate reports around a true heading function.
type Gyro struct {
	cfg  GyroConfig
	rng  *rand.Rand
	bias float64
}

// NewGyro returns a generator with the given configuration and seed.
func NewGyro(cfg GyroConfig, seed int64) *Gyro {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	return &Gyro{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Generate produces gyro samples for the true heading function from time
// 0 to total. Rates are derived by differentiating the heading.
func (g *Gyro) Generate(trueHeading func(time.Duration) float64, total time.Duration) []GyroSample {
	var out []GyroSample
	prev := trueHeading(0)
	for t := g.cfg.Interval; t <= total; t += g.cfg.Interval {
		cur := trueHeading(t)
		rate := angleDiff(cur, prev) / g.cfg.Interval.Seconds()
		prev = cur
		g.bias += g.rng.NormFloat64() * g.cfg.BiasDrift
		out = append(out, GyroSample{
			T:          t,
			RateDegSec: rate + g.bias + g.rng.NormFloat64()*g.cfg.Noise,
		})
	}
	return out
}

// angleDiff returns the signed smallest difference a−b in degrees,
// in (−180, 180].
func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 360)
	if d > 180 {
		d -= 360
	}
	if d <= -180 {
		d += 360
	}
	return d
}

// AngleDiff returns the signed smallest difference a−b in degrees, in
// (−180, 180]. Exported for hint extractors and the vehicular CTE metric.
func AngleDiff(a, b float64) float64 { return angleDiff(a, b) }

// HeadingSeparation returns the unsigned heading difference between two
// courses in [0, 180], the quantity Table 5.1 buckets links by.
func HeadingSeparation(a, b float64) float64 { return math.Abs(angleDiff(a, b)) }
