package sensors

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleModeAt(t *testing.T) {
	s := Schedule{
		{Start: 10 * time.Second, End: 20 * time.Second, Mode: Walk},
		{Start: 30 * time.Second, End: 40 * time.Second, Mode: Vehicle},
	}
	cases := []struct {
		t    time.Duration
		want MobilityMode
	}{
		{0, Static},
		{10 * time.Second, Walk},
		{19*time.Second + 999*time.Millisecond, Walk},
		{20 * time.Second, Static}, // end is exclusive
		{35 * time.Second, Vehicle},
		{50 * time.Second, Static},
	}
	for _, c := range cases {
		if got := s.ModeAt(c.t); got != c.want {
			t.Errorf("ModeAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if s.End() != 40*time.Second {
		t.Errorf("End = %v", s.End())
	}
	if Schedule(nil).End() != 0 {
		t.Error("empty schedule End should be 0")
	}
}

func TestModeStrings(t *testing.T) {
	if Static.String() != "static" || Walk.String() != "walk" || Vehicle.String() != "vehicle" {
		t.Error("mode names wrong")
	}
	if Static.Moving() || !Walk.Moving() || !Vehicle.Moving() {
		t.Error("Moving() wrong")
	}
}

func TestAlternatingSchedule(t *testing.T) {
	s := AlternatingSchedule(20*time.Second, 5*time.Second, Walk, false)
	if len(s) != 4 {
		t.Fatalf("episodes = %d, want 4", len(s))
	}
	// static, walk, static, walk
	wants := []MobilityMode{Static, Walk, Static, Walk}
	for i, w := range wants {
		if s[i].Mode != w {
			t.Errorf("episode %d mode = %v, want %v", i, s[i].Mode, w)
		}
	}
	// startMoving flips the phase.
	s2 := AlternatingSchedule(20*time.Second, 5*time.Second, Walk, true)
	if s2[0].Mode != Walk {
		t.Error("startMoving should begin with the moving mode")
	}
	// Non-divisible total truncates the last episode.
	s3 := AlternatingSchedule(12*time.Second, 5*time.Second, Walk, false)
	if s3[len(s3)-1].End != 12*time.Second {
		t.Errorf("last episode ends at %v, want 12s", s3[len(s3)-1].End)
	}
}

func TestAccelerometerReportCadence(t *testing.T) {
	acc := NewAccelerometer(DefaultAccelConfig(), 1)
	samples := acc.Generate(nil, 100*time.Millisecond)
	if len(samples) != 50 {
		t.Fatalf("%d samples in 100 ms, want 50 (2 ms cadence)", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].T-samples[i-1].T != ReportInterval {
			t.Fatalf("irregular report interval at %d", i)
		}
	}
}

func TestAccelerometerDeterminism(t *testing.T) {
	sched := Schedule{{Start: 0, End: time.Second, Mode: Walk}}
	a := NewAccelerometer(DefaultAccelConfig(), 7).Generate(sched, time.Second)
	b := NewAccelerometer(DefaultAccelConfig(), 7).Generate(sched, time.Second)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across same-seed runs", i)
		}
	}
}

func TestAccelerometerRestVsMoving(t *testing.T) {
	// Moving samples must have far larger short-window mean shifts than
	// rest samples — the property the jerk detector relies on.
	total := 4 * time.Second
	sched := Schedule{{Start: 2 * time.Second, End: 4 * time.Second, Mode: Walk}}
	samples := NewAccelerometer(DefaultAccelConfig(), 3).Generate(sched, total)

	shift := func(from, to int) float64 {
		sum := 0.0
		n := 0
		for i := from + 10; i < to; i += 10 {
			var a, b [3]float64
			for k := 0; k < 5; k++ {
				s1, s2 := samples[i-k], samples[i-5-k]
				a[0] += s1.X / 5
				a[1] += s1.Y / 5
				a[2] += s1.Z / 5
				b[0] += s2.X / 5
				b[1] += s2.Y / 5
				b[2] += s2.Z / 5
			}
			sum += math.Hypot(math.Hypot(a[0]-b[0], a[1]-b[1]), a[2]-b[2])
			n++
		}
		return sum / float64(n)
	}
	half := len(samples) / 2
	rest := shift(0, half)
	move := shift(half, len(samples))
	if move < 5*rest {
		t.Errorf("moving mean-shift %v not far above rest %v", move, rest)
	}
}

func TestAccelerometerGeneratesThroughScheduleEnd(t *testing.T) {
	sched := Schedule{{Start: 0, End: 3 * time.Second, Mode: Walk}}
	samples := NewAccelerometer(DefaultAccelConfig(), 1).Generate(sched, time.Second)
	if got := samples[len(samples)-1].T; got < 3*time.Second-ReportInterval*2 {
		t.Errorf("generation stopped at %v, want through schedule end 3s", got)
	}
}

func TestGPSIndoorNoLock(t *testing.T) {
	g := NewGPS(DefaultGPSConfig(false), 1)
	for _, s := range g.Generate(LinePath{SpeedMps: 2}, 5*time.Second) {
		if s.Lock {
			t.Fatal("indoor GPS acquired a lock")
		}
	}
}

func TestGPSOutdoorTracksPath(t *testing.T) {
	cfg := DefaultGPSConfig(true)
	cfg.PosNoise = 0.001
	cfg.SpeedNoise = 0.001
	cfg.HeadingNoise = 0.001
	g := NewGPS(cfg, 1)
	path := LinePath{SpeedMps: 10, HeadingDeg: 90} // due east
	fixes := g.Generate(path, 10*time.Second)
	last := fixes[len(fixes)-1]
	if !last.Lock {
		t.Fatal("outdoor GPS has no lock")
	}
	if math.Abs(last.X-100) > 1 || math.Abs(last.Y) > 1 {
		t.Errorf("position (%v, %v), want ≈ (100, 0)", last.X, last.Y)
	}
	if math.Abs(last.SpeedMps-10) > 0.5 {
		t.Errorf("speed %v, want ≈ 10", last.SpeedMps)
	}
	if math.Abs(last.HeadingDeg-90) > 1 {
		t.Errorf("heading %v, want ≈ 90", last.HeadingDeg)
	}
}

func TestStopGoPath(t *testing.T) {
	sched := Schedule{{Start: 10 * time.Second, End: 20 * time.Second, Mode: Walk}}
	p := StopGoPath{Sched: sched, HeadingDeg: 0}
	x0, y0, sp0, _ := p.At(5 * time.Second)
	if x0 != 0 || y0 != 0 || sp0 != 0 {
		t.Errorf("should be halted at 5s: (%v,%v) speed %v", x0, y0, sp0)
	}
	_, yMid, spMid, _ := p.At(15 * time.Second)
	if spMid != 1.4 {
		t.Errorf("walking speed = %v, want default 1.4", spMid)
	}
	if yMid < 5 || yMid > 9 {
		t.Errorf("northward distance at 15s = %v, want ≈ 7", yMid)
	}
	_, yEnd, _, _ := p.At(25 * time.Second)
	if math.Abs(yEnd-14) > 0.5 {
		t.Errorf("total distance = %v, want ≈ 14 (10 s walk at 1.4)", yEnd)
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{10, 350, 20},
		{350, 10, -20},
		{180, 0, 180},
		{0, 180, 180}, // (−180, 180] convention
		{90, 90, 0},
	}
	for _, c := range cases {
		if got := AngleDiff(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AngleDiff(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestHeadingSeparationProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 1e6), math.Mod(b, 1e6)
		d1 := HeadingSeparation(a, b)
		d2 := HeadingSeparation(b, a)
		return d1 >= 0 && d1 <= 180 && math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompassDisturbance(t *testing.T) {
	cfg := DefaultCompassConfig(true)
	cfg.DisturbProb = 1 // enter a disturbance immediately
	c := NewCompass(cfg, 1)
	samples := c.Generate(func(time.Duration) float64 { return 0 }, time.Second)
	// During a disturbance, readings are biased far off true north.
	biased := 0
	for _, s := range samples {
		if HeadingSeparation(s.HeadingDeg, 0) > 15 {
			biased++
		}
	}
	if biased == 0 {
		t.Error("disturbed compass should produce biased headings")
	}
}

func TestCompassOutdoorClean(t *testing.T) {
	c := NewCompass(DefaultCompassConfig(false), 1)
	samples := c.Generate(func(time.Duration) float64 { return 45 }, 2*time.Second)
	for _, s := range samples {
		if HeadingSeparation(s.HeadingDeg, 45) > 10 {
			t.Fatalf("outdoor compass reading %v too far from 45", s.HeadingDeg)
		}
	}
}

func TestGyroTracksRotation(t *testing.T) {
	cfg := DefaultGyroConfig()
	cfg.Noise = 0.001
	cfg.BiasDrift = 0
	g := NewGyro(cfg, 1)
	// Constant 10 deg/s rotation.
	truth := func(t time.Duration) float64 { return math.Mod(10*t.Seconds(), 360) }
	samples := g.Generate(truth, 5*time.Second)
	for _, s := range samples {
		if math.Abs(s.RateDegSec-10) > 0.5 {
			t.Fatalf("gyro rate %v, want ≈ 10", s.RateDegSec)
		}
	}
}

func TestGyroBiasDrifts(t *testing.T) {
	cfg := DefaultGyroConfig()
	cfg.Noise = 0
	cfg.BiasDrift = 0.5
	g := NewGyro(cfg, 1)
	samples := g.Generate(func(time.Duration) float64 { return 0 }, 20*time.Second)
	last := samples[len(samples)-1]
	if last.RateDegSec == 0 {
		t.Error("gyro bias should have wandered from zero")
	}
}
