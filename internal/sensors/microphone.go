package sensors

import (
	"math"
	"math/rand"
	"time"
)

// Microphone model for the §5.6 hint: a changing environment around a
// *static* node (pedestrians, passing cars) induces channel dynamics
// similar to the node itself moving, and ambient acoustic variation is
// highly correlated with that nearby activity. The synthetic microphone
// reports short-window sound levels whose variance rises with the
// activity level of the surroundings.

// MicSample is one microphone level report: the RMS sound level of a
// short capture window, in dB relative to an arbitrary reference.
type MicSample struct {
	T       time.Duration
	LevelDB float64
}

// MicConfig tunes the synthetic microphone.
type MicConfig struct {
	// Interval between level reports (default 100 ms).
	Interval time.Duration
	// QuietLevel is the ambient level of a quiet environment; QuietStd
	// its report-to-report standard deviation.
	QuietLevel, QuietStd float64
	// BusyStd is the report-to-report deviation of a busy environment;
	// BusyBurstDB the extra level of activity bursts.
	BusyStd, BusyBurstDB float64
}

// DefaultMicConfig returns indoor-typical sound statistics.
func DefaultMicConfig() MicConfig {
	return MicConfig{
		Interval:    100 * time.Millisecond,
		QuietLevel:  38,
		QuietStd:    0.8,
		BusyStd:     4,
		BusyBurstDB: 14,
	}
}

// Microphone synthesizes sound-level reports given a time-varying
// activity function in [0, 1] (0 = empty room, 1 = busy corridor).
type Microphone struct {
	cfg MicConfig
	rng *rand.Rand
}

// NewMicrophone returns a generator with the given configuration.
func NewMicrophone(cfg MicConfig, seed int64) *Microphone {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	return &Microphone{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Generate produces level reports from time 0 to total. activity gives
// the surrounding-activity level at each time.
func (m *Microphone) Generate(activity func(time.Duration) float64, total time.Duration) []MicSample {
	var out []MicSample
	for t := time.Duration(0); t <= total; t += m.cfg.Interval {
		a := math.Max(0, math.Min(1, activity(t)))
		std := m.cfg.QuietStd + a*(m.cfg.BusyStd-m.cfg.QuietStd)
		level := m.cfg.QuietLevel + m.rng.NormFloat64()*std
		// Activity bursts: the louder the surroundings, the more often a
		// passing person/car spikes the level.
		if m.rng.Float64() < 0.3*a {
			level += m.cfg.BusyBurstDB * m.rng.Float64()
		}
		out = append(out, MicSample{T: t, LevelDB: level})
	}
	return out
}
