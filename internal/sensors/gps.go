package sensors

import (
	"math"
	"math/rand"
	"time"
)

// GPSSample is one GPS fix. Positions are in a local metric frame
// (metres east/north of an arbitrary origin) rather than lat/lon, which
// is what the vehicular simulator and the hint extractors consume.
type GPSSample struct {
	T time.Duration
	// Lock reports whether the receiver has a satellite fix. GPS does not
	// work indoors, and the paper uses lock acquisition as the
	// indoor/outdoor discriminator (§5.3).
	Lock bool
	// X, Y are metres in the local frame; valid only when Lock.
	X, Y float64
	// SpeedMps is ground speed in metres per second; valid only when Lock.
	SpeedMps float64
	// HeadingDeg is the course over ground in degrees clockwise from
	// north, in [0, 360); valid only when Lock and moving.
	HeadingDeg float64
}

// GPSConfig tunes the synthetic GPS receiver.
type GPSConfig struct {
	// Interval between fixes (typically 1 s).
	Interval time.Duration
	// PosNoise is the 1-σ horizontal position error in metres.
	PosNoise float64
	// SpeedNoise is the 1-σ speed error in m/s.
	SpeedNoise float64
	// HeadingNoise is the 1-σ course error in degrees while moving.
	HeadingNoise float64
	// Outdoors controls lock: an indoor device never acquires a fix.
	Outdoors bool
}

// DefaultGPSConfig returns a typical consumer-GPS error profile.
func DefaultGPSConfig(outdoors bool) GPSConfig {
	return GPSConfig{
		Interval:     time.Second,
		PosNoise:     4,
		SpeedNoise:   0.3,
		HeadingNoise: 5,
		Outdoors:     outdoors,
	}
}

// Path describes ground-truth kinematics for the GPS generator: position,
// speed and heading as a function of time.
type Path interface {
	// At returns position (m), speed (m/s) and heading (deg from north)
	// at time t.
	At(t time.Duration) (x, y, speed, heading float64)
}

// LinePath is a constant-velocity straight-line path.
type LinePath struct {
	X0, Y0     float64
	SpeedMps   float64
	HeadingDeg float64
}

// At implements Path.
func (p LinePath) At(t time.Duration) (x, y, speed, heading float64) {
	rad := p.HeadingDeg * math.Pi / 180
	d := p.SpeedMps * t.Seconds()
	// Heading measured clockwise from north: north = +y, east = +x.
	return p.X0 + d*math.Sin(rad), p.Y0 + d*math.Cos(rad), p.SpeedMps, p.HeadingDeg
}

// StopGoPath alternates between halts and straight segments, following a
// schedule: during Static episodes the device holds position, otherwise
// it moves at the mode's typical speed along the given heading.
type StopGoPath struct {
	Sched      Schedule
	HeadingDeg float64
	WalkSpeed  float64 // m/s, default 1.4 if zero
	CarSpeed   float64 // m/s, default 11 if zero
}

// At implements Path by integrating the schedule up to t.
func (p StopGoPath) At(t time.Duration) (x, y, speed, heading float64) {
	walk := p.WalkSpeed
	if walk == 0 {
		walk = 1.4
	}
	car := p.CarSpeed
	if car == 0 {
		car = 11
	}
	speedFor := func(m MobilityMode) float64 {
		switch m {
		case Walk:
			return walk
		case Vehicle:
			return car
		}
		return 0
	}
	// Integrate distance in 100 ms steps: adequate for 1 Hz GPS fixes.
	const step = 100 * time.Millisecond
	var dist float64
	for u := time.Duration(0); u+step <= t; u += step {
		dist += speedFor(p.Sched.ModeAt(u)) * step.Seconds()
	}
	rad := p.HeadingDeg * math.Pi / 180
	return dist * math.Sin(rad), dist * math.Cos(rad), speedFor(p.Sched.ModeAt(t)), p.HeadingDeg
}

// GPS synthesizes fix streams along a ground-truth path.
type GPS struct {
	cfg GPSConfig
	rng *rand.Rand
}

// NewGPS returns a generator with the given configuration and seed.
func NewGPS(cfg GPSConfig, seed int64) *GPS {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	return &GPS{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Generate produces fixes along path from time 0 to total.
func (g *GPS) Generate(path Path, total time.Duration) []GPSSample {
	var out []GPSSample
	for t := time.Duration(0); t <= total; t += g.cfg.Interval {
		s := GPSSample{T: t, Lock: g.cfg.Outdoors}
		if s.Lock {
			x, y, sp, hd := path.At(t)
			s.X = x + g.rng.NormFloat64()*g.cfg.PosNoise
			s.Y = y + g.rng.NormFloat64()*g.cfg.PosNoise
			s.SpeedMps = math.Max(0, sp+g.rng.NormFloat64()*g.cfg.SpeedNoise)
			s.HeadingDeg = normDeg(hd + g.rng.NormFloat64()*g.cfg.HeadingNoise)
		}
		out = append(out, s)
	}
	return out
}

// normDeg normalises an angle to [0, 360).
func normDeg(d float64) float64 {
	d = math.Mod(d, 360)
	if d < 0 {
		d += 360
	}
	return d
}
