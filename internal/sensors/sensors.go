// Package sensors simulates the commodity device sensors the paper draws
// hints from: a serial accelerometer reporting three-axis force every
// 2 ms in custom (uncalibrated) units, GPS with indoor/outdoor lock state,
// a digital compass subject to indoor magnetic noise, and a gyroscope with
// slow bias drift.
//
// The original system read a Sparkfun serial accelerometer attached to a
// laptop. Here the sensor streams are synthesized from a mobility
// schedule; the generators are calibrated so that the derived jerk
// statistic of §2.2.1 behaves as in the paper's Figure 2-2 — staying below
// the detection threshold at rest and frequently exceeding it while the
// device moves.
package sensors

import (
	"math"
	"math/rand"
	"time"
)

// ReportInterval is the accelerometer report period (one report per 2 ms,
// as in the paper's hardware).
const ReportInterval = 2 * time.Millisecond

// MobilityMode describes what the device carrying the sensors is doing.
type MobilityMode int

// Mobility modes used by the paper's experiments (Figure 3-4).
const (
	// Static: device at rest on a desk or held still.
	Static MobilityMode = iota
	// Walk: carried or wheeled at indoor walking speed.
	Walk
	// Vehicle: in a car at 8–72 km/h.
	Vehicle
)

// String returns the mode name.
func (m MobilityMode) String() string {
	switch m {
	case Static:
		return "static"
	case Walk:
		return "walk"
	case Vehicle:
		return "vehicle"
	}
	return "unknown"
}

// Moving reports whether the mode involves device motion.
func (m MobilityMode) Moving() bool { return m != Static }

// Episode is one contiguous interval of a mobility schedule.
type Episode struct {
	Start, End time.Duration
	Mode       MobilityMode
}

// Schedule is an ordered, non-overlapping list of episodes describing the
// ground-truth mobility of a device over time. Gaps are treated as Static.
type Schedule []Episode

// ModeAt returns the mobility mode at time t.
func (s Schedule) ModeAt(t time.Duration) MobilityMode {
	for _, e := range s {
		if t >= e.Start && t < e.End {
			return e.Mode
		}
	}
	return Static
}

// MovingAt reports whether the device is in motion at time t.
func (s Schedule) MovingAt(t time.Duration) bool { return s.ModeAt(t).Moving() }

// End returns the end time of the last episode, or 0 for an empty
// schedule.
func (s Schedule) End() time.Duration {
	var end time.Duration
	for _, e := range s {
		if e.End > end {
			end = e.End
		}
	}
	return end
}

// AlternatingSchedule builds a schedule of total duration total that
// alternates between Static and the given moving mode, switching every
// period. It models the paper's mixed-mobility traces (Figure 3-5: 50%
// static, 50% mobile). startMoving selects which mode comes first.
func AlternatingSchedule(total, period time.Duration, mode MobilityMode, startMoving bool) Schedule {
	var s Schedule
	moving := startMoving
	for t := time.Duration(0); t < total; t += period {
		end := t + period
		if end > total {
			end = total
		}
		m := Static
		if moving {
			m = mode
		}
		s = append(s, Episode{Start: t, End: end, Mode: m})
		moving = !moving
	}
	return s
}

// AccelSample is one accelerometer report: three-axis force in the
// device's custom units at report time T.
type AccelSample struct {
	T       time.Duration
	X, Y, Z float64
}

// AccelConfig tunes the synthetic accelerometer. The zero value is not
// useful; use DefaultAccelConfig.
type AccelConfig struct {
	// RestBias is the constant force offset (gravity plus mounting) in
	// custom units; the hint algorithm must be invariant to it.
	RestBias [3]float64
	// RestNoise is the standard deviation of per-sample jitter at rest.
	RestNoise float64
	// WalkAmp and WalkHz give the dominant shake amplitude and frequency
	// while carried at walking pace.
	WalkAmp, WalkHz float64
	// VehicleAmp and VehicleHz model road vibration and manoeuvres.
	VehicleAmp, VehicleHz float64
}

// DefaultAccelConfig returns parameters calibrated so that the §2.2.1
// jerk statistic stays below 3 at rest and frequently exceeds 3 during
// movement, matching Figure 2-2.
func DefaultAccelConfig() AccelConfig {
	return AccelConfig{
		RestBias:   [3]float64{12, -7, 249}, // arbitrary custom units; z holds gravity
		RestNoise:  0.45,
		WalkAmp:    9,
		WalkHz:     2.2,
		VehicleAmp: 6,
		VehicleHz:  8,
	}
}

// Accelerometer synthesizes a 2 ms force-report stream for a mobility
// schedule. It is deterministic for a given seed.
type Accelerometer struct {
	cfg   AccelConfig
	rng   *rand.Rand
	phase [3]float64
	// slow per-axis drift while moving, modelling arm swing / turns
	drift [3]float64
}

// NewAccelerometer returns a generator with the given configuration and
// random seed.
func NewAccelerometer(cfg AccelConfig, seed int64) *Accelerometer {
	a := &Accelerometer{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	for i := range a.phase {
		a.phase[i] = a.rng.Float64() * 2 * math.Pi
	}
	return a
}

// Generate produces the accelerometer report stream covering the schedule
// from time 0 to sched.End() (or total if longer), one sample per 2 ms.
func (a *Accelerometer) Generate(sched Schedule, total time.Duration) []AccelSample {
	if end := sched.End(); end > total {
		total = end
	}
	n := int(total / ReportInterval)
	out := make([]AccelSample, 0, n)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * ReportInterval
		out = append(out, a.sample(t, sched.ModeAt(t)))
	}
	return out
}

func (a *Accelerometer) sample(t time.Duration, mode MobilityMode) AccelSample {
	cfg := a.cfg
	s := AccelSample{T: t}
	ts := t.Seconds()
	var amp, hz float64
	switch mode {
	case Walk:
		amp, hz = cfg.WalkAmp, cfg.WalkHz
	case Vehicle:
		amp, hz = cfg.VehicleAmp, cfg.VehicleHz
	}
	axes := [3]*float64{&s.X, &s.Y, &s.Z}
	for i, p := range axes {
		v := cfg.RestBias[i] + a.rng.NormFloat64()*cfg.RestNoise
		if mode.Moving() {
			// Dominant periodic component plus correlated drift and
			// heavier per-sample jitter: produces large short-window mean
			// shifts, i.e. large jerk values.
			a.drift[i] += a.rng.NormFloat64() * amp * 0.08
			a.drift[i] *= 0.995
			v += amp*math.Sin(2*math.Pi*hz*ts+a.phase[i]+float64(i)) +
				a.drift[i] + a.rng.NormFloat64()*amp*0.25
		} else {
			a.drift[i] *= 0.9
		}
		*p = v
	}
	return s
}
