package parallel

import (
	"fmt"
	"sync"
)

// ShardQueue generalizes the static ShardPlan into the dynamic
// work-stealing dispatch state a cluster coordinator holds: the plan
// still fixes the shard set up front (shard k of K always owns the same
// contiguous trial slice, so results are bit-identical no matter who
// runs what, in which order, or how many times), but shards are handed
// out one at a time as workers free up rather than pre-assigned. A
// coordinator keeps K comfortably larger than the worker count so a
// straggling worker holds back one small shard, not 1/Kth of the run.
//
// The queue tracks three facts per shard — queued for dispatch, number
// of outstanding dispatches, completed — and supports the three moves a
// coordinator makes:
//
//	Next     pop the next undispatched shard;
//	Steal    re-dispatch an in-flight shard speculatively (straggler
//	         smoothing: identical inputs produce identical partials, so
//	         whichever copy finishes first is used and the rest are
//	         discarded);
//	Requeue  return a dispatch that died with its worker.
//
// All methods are safe for concurrent use.
type ShardQueue struct {
	mu          sync.Mutex
	count       int
	pending     []int // shard indices awaiting dispatch, FIFO
	outstanding []int // live dispatches per shard
	done        []bool
	remaining   int // shards not yet completed
}

// maxCopies bounds speculative re-dispatch: at most this many live
// copies of one shard. Two copies already smooth a straggler; more just
// burns workers.
const maxCopies = 2

// NewShardQueue returns a queue over the count-shard plan (counts below
// one are clamped to one, matching NewShardPlan).
func NewShardQueue(count int) *ShardQueue {
	if count < 1 {
		count = 1
	}
	q := &ShardQueue{
		count:       count,
		pending:     make([]int, count),
		outstanding: make([]int, count),
		done:        make([]bool, count),
		remaining:   count,
	}
	for k := range q.pending {
		q.pending[k] = k
	}
	return q
}

// Len returns the total shard count K of the plan.
func (q *ShardQueue) Len() int { return q.count }

func (q *ShardQueue) check(k int) {
	if k < 0 || k >= q.count {
		panic(fmt.Sprintf("parallel: shard index %d out of range [0,%d)", k, q.count))
	}
}

// Next pops the next undispatched shard, if any.
func (q *ShardQueue) Next() (Shard, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return Shard{}, false
	}
	k := q.pending[0]
	q.pending = q.pending[1:]
	q.outstanding[k]++
	return Shard{Index: k, Count: q.count}, true
}

// Steal picks an incomplete in-flight shard for speculative re-dispatch:
// the lowest-index shard with the fewest live copies, skipping shards
// already at the copy bound. It returns false while undispatched shards
// remain (drain the queue before duplicating work) and once every shard
// is complete.
func (q *ShardQueue) Steal() (Shard, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) > 0 {
		return Shard{}, false
	}
	best, bestCopies := -1, maxCopies
	for k := 0; k < q.count; k++ {
		if q.done[k] || q.outstanding[k] == 0 {
			continue
		}
		if q.outstanding[k] < bestCopies {
			best, bestCopies = k, q.outstanding[k]
		}
	}
	if best < 0 {
		return Shard{}, false
	}
	q.outstanding[best]++
	return Shard{Index: best, Count: q.count}, true
}

// Requeue returns one dispatch of shard k (a worker died or reported
// failure) and reports how many live copies remain. If that was the
// last live copy of an incomplete shard, the shard goes to the front of
// the queue so the retry happens before any speculation; while another
// copy is still computing, nothing re-enters the queue — speculation is
// already covering the loss.
func (q *ShardQueue) Requeue(k int) (live int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.check(k)
	if q.outstanding[k] > 0 {
		q.outstanding[k]--
	}
	if !q.done[k] && q.outstanding[k] == 0 {
		q.pending = append([]int{k}, q.pending...)
	}
	return q.outstanding[k]
}

// Complete marks shard k complete. It reports whether this was the first
// completion — a false return means another copy of the shard already
// finished and this result must be discarded.
func (q *ShardQueue) Complete(k int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.check(k)
	if q.outstanding[k] > 0 {
		q.outstanding[k]--
	}
	if q.done[k] {
		return false
	}
	q.done[k] = true
	q.remaining--
	// A completed shard never re-enters the pending queue; drop any
	// queued retry that raced with the completion.
	for i, p := range q.pending {
		if p == k {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			break
		}
	}
	return true
}

// Completed reports whether shard k has completed.
func (q *ShardQueue) Completed(k int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.check(k)
	return q.done[k]
}

// Done reports whether every shard has completed.
func (q *ShardQueue) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.remaining == 0
}

// ShardPhase is one shard's dispatch state as reported by States.
type ShardPhase uint8

const (
	ShardQueued ShardPhase = iota
	ShardInFlight
	ShardCompleted
)

// States returns every shard's current phase — queued (undispatched,
// incomplete), in flight (at least one live dispatch), or completed —
// for coordinator status snapshots. A completed shard reports completed
// even while a speculative copy of it is still computing.
func (q *ShardQueue) States() []ShardPhase {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]ShardPhase, q.count)
	for k := 0; k < q.count; k++ {
		switch {
		case q.done[k]:
			out[k] = ShardCompleted
		case q.outstanding[k] > 0:
			out[k] = ShardInFlight
		default:
			out[k] = ShardQueued
		}
	}
	return out
}

// Counts returns the number of queued, in-flight (live dispatches, so
// speculative copies count individually), and completed shards —
// coordinator progress reporting and test assertions.
func (q *ShardQueue) Counts() (pending, inflight, completed int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, o := range q.outstanding {
		inflight += o
	}
	return len(q.pending), inflight, q.count - q.remaining
}
