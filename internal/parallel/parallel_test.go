package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13, 0} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got := Map(workers, 257, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty index range")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				p, ok := v.(*Panic)
				if workers == 1 {
					// The serial fast path runs inline; the raw value
					// propagates unwrapped.
					if v != "boom" {
						t.Fatalf("workers=1: got %v, want raw value", v)
					}
					return
				}
				if !ok || p.Value != "boom" {
					t.Fatalf("workers=%d: got %v, want *Panic{boom}", workers, v)
				}
				if len(p.Stack) == 0 {
					t.Error("panic stack not captured")
				}
			}()
			ForEach(workers, 100, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachPanicStopsRemainingWork(t *testing.T) {
	var ran atomic.Int32
	func() {
		defer func() { recover() }()
		ForEach(2, 10000, func(i int) {
			ran.Add(1)
			panic("early")
		})
	}()
	// Both workers may have had a task in flight, but the abort must
	// prevent anything close to the full range from running.
	if n := ran.Load(); n > 100 {
		t.Fatalf("%d tasks ran after the first panic", n)
	}
}

func TestWorkersNormalisation(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Fatalf("Workers(0, 100) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3", w)
	}
	if w := Workers(-1, 0); w != 1 {
		t.Fatalf("Workers(-1, 0) = %d, want 1", w)
	}
}

func TestPoolRunsSubmittedTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	for i := 1; i <= 100; i++ {
		i := i
		if err := p.Submit(func() { sum.Add(int64(i)) }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	p.Wait()
	if got := sum.Load(); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
}

func TestPoolSubmitAfterCloseFails(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int32
	for i := 0; i < 10; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	p.Close()
	if got := ran.Load(); got != 10 {
		t.Fatalf("Close did not drain: %d/10 tasks ran", got)
	}
	if err := p.Submit(func() {}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolWaitPropagatesPanic(t *testing.T) {
	p := NewPool(2)
	_ = p.Submit(func() { panic("task panic") })
	func() {
		defer func() {
			v := recover()
			pp, ok := v.(*Panic)
			if !ok || pp.Value != "task panic" {
				t.Fatalf("Wait panic = %v, want *Panic{task panic}", v)
			}
		}()
		p.Wait()
	}()
	// The worker survived the panic and keeps serving tasks.
	var ran atomic.Int32
	_ = p.Submit(func() { ran.Add(1) })
	p.inflight.Wait()
	if ran.Load() != 1 {
		t.Fatal("worker dead after task panic")
	}
}

func TestSeedStreamDeterministicAndLabelled(t *testing.T) {
	a := NewSeedStream(42)
	b := NewSeedStream(42)
	for i := 0; i < 100; i++ {
		if a.Seed(i) != b.Seed(i) {
			t.Fatalf("same root, different seed at %d", i)
		}
	}
	if NewSeedStream(42).Seed(0) == NewSeedStream(43).Seed(0) {
		t.Fatal("adjacent roots collide at index 0")
	}
	d1 := a.Derive("traces")
	d2 := a.Derive("adapters")
	if d1.Seed(0) == d2.Seed(0) {
		t.Fatal("derived streams with different labels collide")
	}
	if d1.Seed(0) != a.Derive("traces").Seed(0) {
		t.Fatal("Derive is not deterministic")
	}
}

func TestSeedStreamNoCollisions(t *testing.T) {
	// Seeds across indices, adjacent roots and labelled substreams must
	// be pairwise distinct: a collision would hand two trials the same
	// RNG and silently correlate their results.
	const perStream = 50000
	seen := make(map[int64]struct{}, 4*perStream)
	streams := []SeedStream{
		NewSeedStream(42),
		NewSeedStream(43),
		NewSeedStream(42).Derive("traces"),
		NewSeedStream(42).Derive("adapters"),
	}
	for si, s := range streams {
		for i := 0; i < perStream; i++ {
			v := s.Seed(i)
			if _, dup := seen[v]; dup {
				t.Fatalf("seed collision in stream %d at index %d", si, i)
			}
			seen[v] = struct{}{}
		}
	}
}

func TestSeedStreamRandIndependent(t *testing.T) {
	s := NewSeedStream(7)
	r0, r1 := s.Rand(0), s.Rand(1)
	same := 0
	for i := 0; i < 64; i++ {
		if r0.Int63() == r1.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent trial RNGs emitted %d identical values", same)
	}
}
