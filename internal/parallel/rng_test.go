package parallel

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverge")
		}
	}
	c := NewRNG(100)
	if a.Uint64() == c.Uint64() {
		t.Error("adjacent seeds produced identical next outputs")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(1)
	for i := 0; i < 100000; i++ {
		if f := rng.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

// TestRNGMoments sanity-checks the generator's first two moments: the
// uniform and normal outputs that drive every fade and fate draw must
// not be biased, or trace statistics silently drift from the reference
// implementation's.
func TestRNGMoments(t *testing.T) {
	const n = 1_000_000
	rng := NewRNG(42)
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := rng.Float64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.002 {
		t.Errorf("uniform mean %.4f, want 0.5", mean)
	}
	if v := sum2/n - mean*mean; math.Abs(v-1.0/12) > 0.002 {
		t.Errorf("uniform variance %.4f, want %.4f", v, 1.0/12)
	}

	sum, sum2 = 0, 0
	var lag1 float64
	prev := rng.NormFloat64()
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		sum += x
		sum2 += x * x
		lag1 += x * prev
		prev = x
	}
	mean = sum / n
	if math.Abs(mean) > 0.005 {
		t.Errorf("normal mean %.4f, want 0", mean)
	}
	if v := sum2/n - mean*mean; math.Abs(v-1) > 0.01 {
		t.Errorf("normal variance %.4f, want 1", v)
	}
	if c := lag1 / n; math.Abs(c) > 0.005 {
		t.Errorf("normal lag-1 autocorrelation %.4f, want ~0", c)
	}
}

func TestRNGZeroAllocs(t *testing.T) {
	rng := NewRNG(17)
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		sink += rng.Float64() + rng.NormFloat64()
	})
	if allocs != 0 {
		t.Errorf("RNG draws allocate %v times per pair, want 0", allocs)
	}
	_ = sink
}
