package parallel

import (
	"sync"
	"testing"
)

func TestShardQueueDrainsInOrder(t *testing.T) {
	q := NewShardQueue(4)
	if q.Len() != 4 || q.Done() {
		t.Fatalf("fresh queue: Len=%d Done=%v", q.Len(), q.Done())
	}
	for k := 0; k < 4; k++ {
		sh, ok := q.Next()
		if !ok || sh.Index != k || sh.Count != 4 {
			t.Fatalf("Next() = %v %v, want shard %d/4", sh, ok, k)
		}
	}
	if _, ok := q.Next(); ok {
		t.Fatal("Next() on drained queue succeeded")
	}
	for k := 0; k < 4; k++ {
		if q.Done() {
			t.Fatalf("Done before shard %d completed", k)
		}
		if !q.Complete(k) {
			t.Fatalf("first Complete(%d) returned false", k)
		}
	}
	if !q.Done() {
		t.Fatal("queue not Done after all completions")
	}
}

func TestShardQueueClampsCount(t *testing.T) {
	if got := NewShardQueue(0).Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestShardQueueRequeueFrontOfLine(t *testing.T) {
	q := NewShardQueue(3)
	sh, _ := q.Next() // shard 0 dispatched
	q.Requeue(sh.Index)
	next, ok := q.Next()
	if !ok || next.Index != 0 {
		t.Fatalf("after requeue, Next() = %v, want shard 0 retried first", next)
	}
}

func TestShardQueueStealSemantics(t *testing.T) {
	q := NewShardQueue(2)
	if _, ok := q.Steal(); ok {
		t.Fatal("Steal succeeded while undispatched shards remain")
	}
	a, _ := q.Next()
	b, _ := q.Next()
	// Both in flight: steal picks the lowest index with fewest copies.
	s1, ok := q.Steal()
	if !ok || s1.Index != a.Index {
		t.Fatalf("Steal() = %v %v, want shard %d", s1, ok, a.Index)
	}
	// Shard a now has 2 copies (the bound); next steal must pick b.
	s2, ok := q.Steal()
	if !ok || s2.Index != b.Index {
		t.Fatalf("second Steal() = %v %v, want shard %d", s2, ok, b.Index)
	}
	// Everything at the copy bound: no more stealing.
	if _, ok := q.Steal(); ok {
		t.Fatal("Steal exceeded the per-shard copy bound")
	}
	// Completion frees nothing for stealing.
	q.Complete(a.Index)
	q.Complete(a.Index) // duplicate result
	q.Complete(b.Index)
	if _, ok := q.Steal(); ok {
		t.Fatal("Steal succeeded after completion")
	}
	if !q.Done() {
		t.Fatal("not Done")
	}
}

func TestShardQueueDuplicateCompleteAndLateRequeue(t *testing.T) {
	q := NewShardQueue(2)
	a, _ := q.Next()
	q.Next()
	st, _ := q.Steal() // second copy of a
	if st.Index != a.Index {
		t.Fatalf("stole %v, want %v", st, a)
	}
	if !q.Complete(a.Index) {
		t.Fatal("first completion rejected")
	}
	if q.Complete(a.Index) {
		t.Fatal("duplicate completion accepted")
	}
	// A worker dying while holding an already-completed shard must not
	// resurrect it.
	q.Requeue(a.Index)
	if sh, ok := q.Next(); ok {
		t.Fatalf("completed shard re-entered the queue as %v", sh)
	}
}

func TestShardQueueRequeueThenCompleteDropsPendingRetry(t *testing.T) {
	q := NewShardQueue(2)
	a, _ := q.Next()
	q.Next()
	st, _ := q.Steal() // copy 2 of shard a
	_ = st
	// Copy 1 dies: one live copy remains, so nothing re-enters the
	// queue (speculation covers the loss).
	if live := q.Requeue(a.Index); live != 1 {
		t.Fatalf("Requeue with a live copy returned %d, want 1", live)
	}
	// Copy 2 dies too → no cover left, queued for retry.
	if live := q.Requeue(a.Index); live != 0 {
		t.Fatalf("Requeue of the last copy returned %d, want 0", live)
	}
	pend, _, _ := q.Counts()
	if pend != 1 {
		t.Fatalf("pending = %d, want 1", pend)
	}
	// A third copy (dispatched before the deaths were observed) still
	// completes: the queued retry must evaporate.
	q.Complete(a.Index)
	if sh, ok := q.Next(); ok && sh.Index == a.Index {
		t.Fatal("completed shard still queued for retry")
	}
}

func TestShardQueueStealSkipsCompleted(t *testing.T) {
	q := NewShardQueue(3)
	for i := 0; i < 3; i++ {
		q.Next()
	}
	q.Complete(0)
	q.Complete(2)
	// Only shard 1 is still in flight; a steal must target it, never a
	// completed shard.
	st, ok := q.Steal()
	if !ok || st.Index != 1 {
		t.Fatalf("Steal() = %v %v, want shard 1 (the only incomplete one)", st, ok)
	}
	q.Complete(1)
	if _, ok := q.Steal(); ok {
		t.Fatal("Steal succeeded with every shard complete")
	}
	if !q.Done() {
		t.Fatal("not Done")
	}
}

// TestShardQueueDoubleCompleteKeepsCountsExact: when both copies of a
// speculated shard finish, the loser's completion must neither double
// count the shard nor corrupt the in-flight accounting.
func TestShardQueueDoubleCompleteKeepsCountsExact(t *testing.T) {
	q := NewShardQueue(2)
	a, _ := q.Next()
	q.Next()
	if st, ok := q.Steal(); !ok || st.Index != a.Index {
		t.Fatalf("Steal() = %v %v, want a copy of shard %d", st, ok, a.Index)
	}
	if !q.Complete(a.Index) {
		t.Fatal("first completion rejected")
	}
	if q.Complete(a.Index) {
		t.Fatal("losing copy's completion accepted")
	}
	pend, inflight, completed := q.Counts()
	if pend != 0 || inflight != 1 || completed != 1 {
		t.Fatalf("Counts() = %d/%d/%d, want 0 pending, 1 inflight (shard b), 1 completed",
			pend, inflight, completed)
	}
	if q.Done() {
		t.Fatal("Done with shard b still in flight")
	}
}

// TestShardQueueBothCopiesDieThenRedispatch: a speculated shard losing
// both copies must re-enter the queue exactly once, be redispatched,
// and complete normally — the path a chaotic transport exercises when
// a partition takes out the original and the speculative copy together.
func TestShardQueueBothCopiesDieThenRedispatch(t *testing.T) {
	q := NewShardQueue(2)
	a, _ := q.Next()
	q.Next()
	q.Steal() // copy 2 of shard a
	q.Requeue(a.Index)
	if live := q.Requeue(a.Index); live != 0 {
		t.Fatalf("second Requeue returned %d live copies, want 0", live)
	}
	pend, inflight, _ := q.Counts()
	if pend != 1 || inflight != 1 {
		t.Fatalf("Counts() = %d pending/%d inflight, want 1/1 (a queued, b flying)", pend, inflight)
	}
	re, ok := q.Next()
	if !ok || re.Index != a.Index {
		t.Fatalf("redispatch Next() = %v %v, want shard %d", re, ok, a.Index)
	}
	if _, ok := q.Next(); ok {
		t.Fatal("shard re-entered the queue more than once")
	}
	if !q.Complete(re.Index) {
		t.Fatal("redispatched copy's completion rejected")
	}
	q.Complete(1)
	if !q.Done() {
		t.Fatal("not Done after the redispatched copy completed")
	}
}

func TestShardQueueConcurrentWorkers(t *testing.T) {
	// Hammer the queue from many goroutines; every shard must complete
	// exactly once (first-completion semantics) regardless of schedule.
	const shards = 64
	q := NewShardQueue(shards)
	var wins [shards]int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sh, ok := q.Next()
				if !ok {
					sh, ok = q.Steal()
				}
				if !ok {
					if q.Done() {
						return
					}
					continue
				}
				if q.Complete(sh.Index) {
					mu.Lock()
					wins[sh.Index]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for k, n := range wins {
		if n != 1 {
			t.Errorf("shard %d completed %d times", k, n)
		}
	}
}
