package parallel

import (
	"testing"
)

// TestShardRangePartitions asserts the properties the cross-process
// merge contract needs: for any (n, K) the K ranges are contiguous in
// index order, cover [0, n) exactly, and are balanced to within one
// trial.
func TestShardRangePartitions(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 100, 601, 12345} {
		for _, k := range []int{1, 2, 3, 4, 7, 16, 100} {
			plan := NewShardPlan(k)
			next := 0
			minSize, maxSize := n+1, -1
			for _, s := range plan.Shards() {
				lo, hi := s.Range(n)
				if lo != next {
					t.Fatalf("n=%d K=%d shard %v: range starts at %d, want %d", n, k, s, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d K=%d shard %v: inverted range [%d,%d)", n, k, s, lo, hi)
				}
				if size := hi - lo; size < minSize {
					minSize = size
				} else if size > maxSize {
					maxSize = size
				}
				if size := hi - lo; size > maxSize {
					maxSize = size
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d K=%d: shards cover [0,%d), want [0,%d)", n, k, next, n)
			}
			if n > 0 && maxSize-minSize > 1 {
				t.Fatalf("n=%d K=%d: unbalanced shard sizes (min %d, max %d)", n, k, minSize, maxSize)
			}
		}
	}
}

func TestShardValid(t *testing.T) {
	cases := []struct {
		s    Shard
		want bool
	}{
		{Shard{0, 1}, true},
		{Shard{3, 4}, true},
		{Shard{}, false},
		{Shard{-1, 4}, false},
		{Shard{4, 4}, false},
		{Shard{0, 0}, false},
	}
	for _, c := range cases {
		if got := c.s.Valid(); got != c.want {
			t.Errorf("%+v.Valid() = %v, want %v", c.s, got, c.want)
		}
	}
	if lo, hi := (Shard{}).Range(10); lo != 0 || hi != 0 {
		t.Errorf("invalid shard range = [%d,%d), want empty", lo, hi)
	}
}

func TestShardParseRoundTrip(t *testing.T) {
	for _, s := range []Shard{{0, 1}, {2, 4}, {6, 7}} {
		got, err := ParseShard(s.String())
		if err != nil || got != s {
			t.Errorf("ParseShard(%q) = %v, %v", s.String(), got, err)
		}
	}
	for _, bad := range []string{"", "x", "1", "3/2", "-1/2", "2/0", "a/b", "1/4x", "1/4 2", " 1/4", "1//4"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted malformed input", bad)
		}
	}
}

func TestNewShardPlanClamps(t *testing.T) {
	if p := NewShardPlan(0); p.Count != 1 {
		t.Errorf("NewShardPlan(0).Count = %d, want 1", p.Count)
	}
	if lo, hi := NewShardPlan(3).Range(2, 2); lo > hi {
		t.Errorf("plan range inverted: [%d,%d)", lo, hi)
	}
}
