// Package parallel is the trial-execution engine behind the experiment
// harness: a bounded worker pool, order-preserving fan-out helpers, and
// a SeedStream that derives an independent RNG seed per trial from one
// root seed.
//
// The package exists to uphold one invariant: an experiment's output is
// bit-identical for any worker count. The contract has two halves:
//
//   - Seeding: every trial derives its own seed from the root by trial
//     index (SeedStream.Seed(i)), never from shared mutable RNG state,
//     so the work a trial does cannot depend on which worker ran it or
//     when.
//   - Merging: ForEach/Map deliver results indexed by trial, and callers
//     merge them in index order (or into order-independent accumulators
//     such as stats.Accumulator / stats.Histogram), so the reduction
//     cannot depend on completion order.
//
// See README.md for the recipe for adding a new parallel experiment.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Panic wraps a panic recovered on a worker goroutine so it can be
// rethrown on the caller's goroutine with the worker's stack preserved.
type Panic struct {
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at the time of the panic.
	Stack []byte
}

// Error implements error so a Panic can also travel as one.
func (p *Panic) Error() string {
	return fmt.Sprintf("panic on worker goroutine: %v\n%s", p.Value, p.Stack)
}

// panicBox captures the first panic among a set of tasks and signals the
// rest to stop picking up new work.
type panicBox struct {
	aborted atomic.Bool
	once    sync.Once
	p       *Panic
}

// run executes fn, recording a panic instead of letting it kill the
// process (a panic on a bare goroutine is unrecoverable elsewhere).
func (b *panicBox) run(fn func()) {
	defer func() {
		if v := recover(); v != nil {
			b.once.Do(func() {
				buf := make([]byte, 64<<10)
				b.p = &Panic{Value: v, Stack: buf[:runtime.Stack(buf, false)]}
			})
			b.aborted.Store(true)
		}
	}()
	fn()
}

// rethrow re-panics on the caller's goroutine if any task panicked.
func (b *panicBox) rethrow() {
	if b.p != nil {
		panic(b.p)
	}
}

// Workers normalises a worker-count setting: values ≤ 0 mean "one per
// CPU", and the count never exceeds n, the number of independent tasks.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines. workers ≤ 0 means one per CPU; workers == 1 runs inline on
// the caller's goroutine with no synchronisation at all, so a serial run
// is a true serial baseline (and a panic propagates unwrapped). On the
// concurrent path the first panic is rethrown on the caller's goroutine
// wrapped in *Panic after all in-flight calls finish; remaining indices
// are skipped.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var box panicBox
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !box.aborted.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				box.run(func() { fn(i) })
			}
		}()
	}
	wg.Wait()
	box.rethrow()
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order — the property that makes a merge
// over the result slice independent of completion order. Panic semantics
// match ForEach.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
