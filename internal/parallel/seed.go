package parallel

import (
	"hash/fnv"
	"math/rand"
)

// goldenGamma is the splitmix64 increment: 2^64 / φ, the constant that
// makes the sequence of stream states equidistributed.
const goldenGamma = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 output function: a bijective avalanche mix
// whose outputs pass BigCrush even on sequential inputs, which is what
// lets adjacent trial indices yield statistically independent seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeedStream derives independent per-trial RNG seeds from one root seed.
// Seed(i) is a pure function of (root, labels, i): any worker can compute
// trial i's seed without coordination, which is what makes a parallel
// experiment's output independent of worker count and scheduling order.
//
// Streams are value types; Derive returns a decorrelated child stream so
// an experiment can give each phase ("traces", "adapters") its own index
// space without seed reuse.
type SeedStream struct {
	root uint64
}

// NewSeedStream returns the stream rooted at the given seed. Roots that
// differ in any bit yield unrelated streams.
func NewSeedStream(root int64) SeedStream {
	return SeedStream{root: mix64(uint64(root) + goldenGamma)}
}

// Seed returns the i-th derived seed (i ≥ 0).
func (s SeedStream) Seed(i int) int64 {
	return int64(mix64(s.root + (uint64(i)+1)*goldenGamma))
}

// Derive returns a child stream decorrelated from s by the label, so two
// experiment phases sharing a root never consume the same seeds.
func (s SeedStream) Derive(label string) SeedStream {
	h := fnv.New64a()
	h.Write([]byte(label))
	return SeedStream{root: mix64(s.root ^ h.Sum64())}
}

// Rand returns a fresh math/rand generator seeded with Seed(i). Each
// trial must own its generator; sharing one across goroutines would race
// and destroy reproducibility.
func (s SeedStream) Rand(i int) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed(i)))
}
