package parallel

import "fmt"

// A SubPlan names the internal structure of a trial range whose
// "trials" are really sub-trial work units: Cells independent pieces of
// input (an environment × repetition, a tracked probe rate, a probing
// strategy) each split into Units work units (one MAC protocol replay,
// one time window of a tracker run). Flattening the grid into a single
// range of Cells×Units trials lets the existing shard machinery fan the
// *inside* of a heavy trial across the fleet: Shard.Range slices the
// flattened range, per-unit seeds still derive from the root SeedStream
// by global index, and the trial-index-order merge visits units in
// (cell, unit) row-major order in every mode.
//
// The zero SubPlan means "no sub-trial structure" — a plain trial loop.
type SubPlan struct {
	// Cells is the number of independent input cells, at least 1.
	Cells int
	// Units is the number of work units per cell, at least 1.
	Units int
}

// Valid reports whether the plan is well-formed (a zero plan is not;
// test IsZero first when the plan is optional).
func (p SubPlan) Valid() bool { return p.Cells >= 1 && p.Units >= 1 }

// IsZero reports whether the plan is the "no sub-trial structure"
// marker.
func (p SubPlan) IsZero() bool { return p == SubPlan{} }

// String renders the plan as "cells×units".
func (p SubPlan) String() string { return fmt.Sprintf("%d×%d", p.Cells, p.Units) }

// Trials returns the flattened trial-range size, Cells×Units.
func (p SubPlan) Trials() int { return p.Cells * p.Units }

// Cell maps a flattened trial index back to its (cell, unit)
// coordinates. Indexes are row-major: all units of cell 0, then all
// units of cell 1, so a contiguous shard slice covers whole cells with
// at most two partial cells at its edges.
func (p SubPlan) Cell(idx int) (cell, unit int) {
	return idx / p.Units, idx % p.Units
}

// CellRange returns the flattened index range [lo, hi) of one cell.
func (p SubPlan) CellRange(cell int) (lo, hi int) {
	return cell * p.Units, (cell + 1) * p.Units
}
