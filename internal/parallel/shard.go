package parallel

import (
	"fmt"
	"strconv"
	"strings"
)

// This file extends the engine's determinism contract across process
// boundaries. A Shard names one contiguous slice of every trial range an
// experiment runs; because per-trial seeds derive from the root
// SeedStream by *global* trial index (SeedStream.Seed(i)), the work
// trial i performs is identical whether it runs in-process, on shard
// 0/1, or on shard 3/7 — sharding changes only which process executes
// the trial, never what the trial computes.

// Shard identifies one worker's slice of a trial space: shard Index of
// Count. The zero value is invalid; Shard{Index: 0, Count: 1} is the
// whole range.
type Shard struct {
	// Index is this shard's position, 0 ≤ Index < Count.
	Index int
	// Count is the total number of shards.
	Count int
}

// Valid reports whether the shard is well-formed.
func (s Shard) Valid() bool { return s.Count >= 1 && s.Index >= 0 && s.Index < s.Count }

// String renders the shard as "index/count" (e.g. "2/4").
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// ParseShard parses the "index/count" form emitted by String. The
// whole input must be consumed: a mistyped "1/4x" names no shard and a
// silently wrong slice is worse than an error.
func ParseShard(text string) (Shard, error) {
	index, count, ok := strings.Cut(text, "/")
	if !ok {
		return Shard{}, fmt.Errorf("parallel: malformed shard %q (want k/K)", text)
	}
	var s Shard
	var err error
	if s.Index, err = strconv.Atoi(index); err != nil {
		return Shard{}, fmt.Errorf("parallel: malformed shard %q (want k/K): %v", text, err)
	}
	if s.Count, err = strconv.Atoi(count); err != nil {
		return Shard{}, fmt.Errorf("parallel: malformed shard %q (want k/K): %v", text, err)
	}
	if !s.Valid() {
		return Shard{}, fmt.Errorf("parallel: invalid shard %q (want 0 ≤ k < K)", text)
	}
	return s, nil
}

// Range returns this shard's contiguous sub-range [lo, hi) of a trial
// range [0, n). The K ranges of a count-K plan partition [0, n) in
// index order with sizes differing by at most one, so merging shard
// results in shard order visits trials in exactly global trial order —
// the property the cross-process merge contract relies on.
func (s Shard) Range(n int) (lo, hi int) {
	if n <= 0 || !s.Valid() {
		return 0, 0
	}
	// 64-bit intermediates: k*n must not overflow on 32-bit platforms.
	lo = int(int64(s.Index) * int64(n) / int64(s.Count))
	hi = int(int64(s.Index+1) * int64(n) / int64(s.Count))
	return lo, hi
}

// ShardPlan splits every trial range across a fixed number of shards.
type ShardPlan struct {
	// Count is the number of shards, at least 1.
	Count int
}

// NewShardPlan returns a plan with the given shard count; counts below
// one are clamped to one (the single-process plan).
func NewShardPlan(count int) ShardPlan {
	if count < 1 {
		count = 1
	}
	return ShardPlan{Count: count}
}

// Shards returns the plan's shards in index order.
func (p ShardPlan) Shards() []Shard {
	out := make([]Shard, p.Count)
	for k := range out {
		out[k] = Shard{Index: k, Count: p.Count}
	}
	return out
}

// Range returns shard k's sub-range of [0, n).
func (p ShardPlan) Range(n, k int) (lo, hi int) {
	return Shard{Index: k, Count: p.Count}.Range(n)
}
