package parallel

import "testing"

func TestSubPlanValidity(t *testing.T) {
	cases := []struct {
		plan  SubPlan
		valid bool
	}{
		{SubPlan{}, false},
		{SubPlan{Cells: 1, Units: 0}, false},
		{SubPlan{Cells: 0, Units: 1}, false},
		{SubPlan{Cells: -1, Units: 2}, false},
		{SubPlan{Cells: 1, Units: 1}, true},
		{SubPlan{Cells: 12, Units: 6}, true},
	}
	for _, c := range cases {
		if got := c.plan.Valid(); got != c.valid {
			t.Errorf("%v.Valid() = %v, want %v", c.plan, got, c.valid)
		}
	}
	if !(SubPlan{}).IsZero() {
		t.Error("zero SubPlan should report IsZero")
	}
	if (SubPlan{Cells: 1, Units: 1}).IsZero() {
		t.Error("1×1 SubPlan should not report IsZero")
	}
}

func TestSubPlanCellMappingRoundTrips(t *testing.T) {
	p := SubPlan{Cells: 5, Units: 3}
	if p.Trials() != 15 {
		t.Fatalf("Trials() = %d, want 15", p.Trials())
	}
	seen := map[[2]int]bool{}
	for idx := 0; idx < p.Trials(); idx++ {
		cell, unit := p.Cell(idx)
		if cell < 0 || cell >= p.Cells || unit < 0 || unit >= p.Units {
			t.Fatalf("Cell(%d) = (%d, %d) out of range", idx, cell, unit)
		}
		if seen[[2]int{cell, unit}] {
			t.Fatalf("Cell(%d) = (%d, %d) repeats an earlier index", idx, cell, unit)
		}
		seen[[2]int{cell, unit}] = true
		lo, hi := p.CellRange(cell)
		if idx < lo || idx >= hi {
			t.Fatalf("index %d outside CellRange(%d) = [%d, %d)", idx, cell, lo, hi)
		}
	}
	// Row-major: units of one cell are contiguous, so any contiguous
	// shard slice splits at most two cells.
	for k := 0; k < 4; k++ {
		lo, hi := Shard{Index: k, Count: 4}.Range(p.Trials())
		cLo, _ := p.Cell(lo)
		cHi, _ := p.Cell(hi - 1)
		if cHi < cLo {
			t.Fatalf("shard %d/4 spans cells [%d, %d] out of order", k, cLo, cHi)
		}
	}
}
