package parallel

import "math"

// RNG is the allocation-free random generator for simulation hot loops.
// It wraps the same splitmix64 core SeedStream uses for seed derivation:
// 16 bytes of state that live happily on the caller's stack, versus the
// ~5 KB lagged-Fibonacci state a math/rand.Rand heap-allocates and then
// spends 607 mixing steps seeding. Every method is deterministic in the
// seed, which is what lets the trace generator and MAC simulator keep
// the engine's bit-identical-for-any-worker-count contract while
// generating millions of draws without a single heap allocation.
//
// An RNG must not be shared across goroutines; give each trial its own,
// seeded from a SeedStream.
type RNG struct {
	state uint64
	// spare holds the second output of the last Marsaglia polar pair.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. As with SeedStream, roots
// differing in any bit yield unrelated sequences (the first output is
// already one avalanche step away from the seed).
func NewRNG(seed int64) RNG {
	return RNG{state: uint64(seed)}
}

// Uint64 returns the next 64 uniform random bits.
func (r *RNG) Uint64() uint64 {
	r.state += goldenGamma
	return mix64(r.state)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method, generating values in deterministic pairs. It trades a few
// nanoseconds versus math/rand's ziggurat for zero tables and full
// inlining of the uniform draws.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}
