package parallel

import (
	"errors"
	"sync"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("parallel: pool is closed")

// Pool is a long-lived bounded worker pool for callers that submit work
// incrementally (servers, CLIs) rather than fanning out a known index
// range — for that, use ForEach/Map, which need no pool lifecycle.
//
// A task that panics does not kill its worker: the first panic is
// captured and rethrown (wrapped in *Panic) from the next Wait or Close.
type Pool struct {
	tasks    chan func()
	workers  sync.WaitGroup
	inflight sync.WaitGroup

	mu     sync.Mutex
	closed bool
	box    panicBox
}

// NewPool starts a pool with the given number of worker goroutines
// (≤ 0 means one per CPU).
func NewPool(workers int) *Pool {
	workers = Workers(workers, 1<<30)
	p := &Pool{tasks: make(chan func())}
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.workers.Done()
			for fn := range p.tasks {
				p.box.run(fn)
				p.inflight.Done()
			}
		}()
	}
	return p
}

// Submit enqueues a task, blocking while all workers are busy (the
// bounded-ness of the pool). It returns ErrClosed after Close.
func (p *Pool) Submit(fn func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.inflight.Add(1)
	p.mu.Unlock()
	p.tasks <- fn
	return nil
}

// Wait blocks until every submitted task has finished, then rethrows the
// first panic captured over the pool's lifetime, if any (a poisoned pool
// keeps rethrowing it from every Wait/Close). The pool remains usable
// afterwards.
func (p *Pool) Wait() {
	p.inflight.Wait()
	p.box.rethrow()
}

// Close rejects further submissions, drains the queue, stops the
// workers, and rethrows the first captured panic, if any. Close is
// idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	alreadyClosed := p.closed
	p.closed = true
	p.mu.Unlock()
	if !alreadyClosed {
		p.inflight.Wait()
		close(p.tasks)
	}
	p.workers.Wait()
	p.box.rethrow()
}
