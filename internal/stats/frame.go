package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
)

// This file is the stream-framing half of the wire contract: the binary
// codecs above serialize one collector to bytes, and frames carry those
// byte payloads over any ordered byte stream (a TCP connection, a
// subprocess pipe) with explicit boundaries. The cluster runtime
// (internal/cluster) speaks length-prefixed frames of protocol messages
// whose collector payloads are the bit-exact codecs, so the cross-process
// merge guarantee survives the network unchanged.
//
// Two frame forms exist. The plain form (WriteFrame/ReadFrame) is u32
// little-endian payload length, then payload bytes — it remains the
// canonical in-memory composition format (AppendFrame). The checksummed
// form (WriteFrameSum/ReadFrameSum) appends a u32 CRC32C trailer whose
// value chains across the whole stream: frame i's checksum continues the
// CRC state left by frame i-1, so it commits not just to the payload but
// to the exact sequence of payloads delivered so far. A corrupted,
// duplicated, dropped, or reordered frame therefore breaks the chain and
// surfaces as ErrChecksum at the reader — integrity for the entire
// conversation at the cost of four bytes and one CRC32C pass (hardware
// accelerated on every platform Go targets) per frame.
//
// Reading is defensive to the same standard as the codecs: a forged or
// corrupted length cannot trigger an oversized allocation (the payload
// buffer grows only as bytes actually arrive, and lengths above the
// caller's limit are rejected up front), and malformed input returns an
// error wrapping ErrCodec instead of panicking (FuzzReadFrame,
// FuzzReadFrameSum).

// FrameHeaderLen is the byte length of the frame length prefix;
// FrameTrailerLen the byte length of the checksummed form's CRC32C
// trailer. Exported so fault-injection layers can locate the payload
// region of an encoded frame without re-parsing it.
const (
	FrameHeaderLen  = 4
	FrameTrailerLen = 4
)

// frameHeaderLen is the byte length of the frame length prefix.
const frameHeaderLen = FrameHeaderLen

// ErrChecksum is the typed failure of the checksummed frame form: the
// payload arrived intact as bytes but its rolling CRC32C trailer does
// not match, meaning the stream was corrupted, or a frame was dropped,
// duplicated, or reordered somewhere between the peers. Errors returned
// by ReadFrameSum wrap both ErrChecksum and ErrCodec.
var ErrChecksum = errors.New("stats: frame checksum mismatch")

// castagnoli is the CRC32C polynomial table (iSCSI/ext4's checksum, with
// hardware support via SSE4.2/ARMv8 CRC instructions).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChainSum advances the rolling checksum state over one payload: the
// returned value is both frame's trailer and the seed for the next
// frame's. Chaining is plain CRC continuation, so the state after N
// frames equals the CRC32C of their concatenated payloads.
func ChainSum(prev uint32, payload []byte) uint32 {
	return crc32.Update(prev, castagnoli, payload)
}

// MaxFrame is the largest payload WriteFrame will emit and the largest
// length a reader can opt into; readers normally pass a tighter limit.
const MaxFrame = 1 << 30

// WriteFrame writes one length-prefixed frame. The payload may be empty;
// payloads above MaxFrame are refused (the length prefix could encode
// them, but no peer would accept the frame).
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("stats: frame payload of %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends one length-prefixed frame to dst and returns the
// extended slice — the in-memory form of WriteFrame, for composing
// canonical byte strings out of codec payloads (the campaign
// verification fingerprint frames each collector payload this way, so
// two encodings are byte-equal iff every framed payload is). The same
// MaxFrame bound applies.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return dst, fmt.Errorf("stats: frame payload of %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// ReadFrame reads one frame and returns its payload. max bounds the
// payload length this reader accepts (values out of (0, MaxFrame] are
// clamped to MaxFrame); longer frames return an error wrapping ErrCodec.
// A truncated stream returns io.ErrUnexpectedEOF (or io.EOF when the
// stream ends cleanly before the header), and allocation is bounded by
// the bytes that actually arrive — a forged length on a short stream
// cannot balloon memory.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 || max > MaxFrame {
		max = MaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return nil, codecErr("frame of %d bytes exceeds limit %d", n, max)
	}
	// Grow the buffer chunk by chunk rather than trusting the header:
	// allocation tracks delivered bytes, so truncation costs at most one
	// chunk of slack.
	const chunk = 64 << 10
	payload := make([]byte, 0, min(int(n), chunk))
	for len(payload) < int(n) {
		step := int(n) - len(payload)
		if step > chunk {
			step = chunk
		}
		off := len(payload)
		payload = slices.Grow(payload, step)[:off+step]
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return payload, nil
}

// WriteFrameSum writes one checksummed frame (u32 length, payload, u32
// rolling CRC32C trailer) and returns the advanced chain state the
// caller must feed into the next WriteFrameSum on the same stream. prev
// is the state left by the previous frame (0 for the first).
func WriteFrameSum(w io.Writer, payload []byte, prev uint32) (uint32, error) {
	if err := WriteFrame(w, payload); err != nil {
		return prev, err
	}
	sum := ChainSum(prev, payload)
	var tr [FrameTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	if _, err := w.Write(tr[:]); err != nil {
		return prev, err
	}
	return sum, nil
}

// AppendFrameSum is the in-memory form of WriteFrameSum: it appends one
// checksummed frame to dst and returns the extended slice plus the
// advanced chain state. Fault-injection layers use it to materialize the
// exact bytes WriteFrameSum would emit before mutating them.
func AppendFrameSum(dst, payload []byte, prev uint32) ([]byte, uint32, error) {
	dst, err := AppendFrame(dst, payload)
	if err != nil {
		return dst, prev, err
	}
	sum := ChainSum(prev, payload)
	var tr [FrameTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	return append(dst, tr[:]...), sum, nil
}

// ReadFrameSum reads one checksummed frame, verifies its rolling CRC32C
// trailer against the chain state prev, and returns the payload plus the
// advanced state. A trailer mismatch returns an error wrapping both
// ErrChecksum and ErrCodec — the caller cannot resynchronize after one
// (the chain is broken for good), so the only sound reaction is to drop
// the peer. Length-limit and truncation behavior match ReadFrame.
func ReadFrameSum(r io.Reader, max int, prev uint32) ([]byte, uint32, error) {
	payload, err := ReadFrame(r, max)
	if err != nil {
		return nil, prev, err
	}
	var tr [FrameTrailerLen]byte
	if _, err := io.ReadFull(r, tr[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, prev, err
	}
	sum := ChainSum(prev, payload)
	if got := binary.LittleEndian.Uint32(tr[:]); got != sum {
		return nil, prev, checksumErr(got, sum)
	}
	return payload, sum, nil
}

// checksumErr builds the typed integrity failure: errors.Is matches both
// ErrChecksum (what happened) and ErrCodec (the peer's stream is
// malformed and must be dropped).
func checksumErr(got, want uint32) error {
	return fmt.Errorf("%w (got %08x, want %08x): %w", ErrChecksum, got, want, ErrCodec)
}
