package stats

import (
	"encoding/binary"
	"fmt"
	"io"
	"slices"
)

// This file is the stream-framing half of the wire contract: the binary
// codecs above serialize one collector to bytes, and frames carry those
// byte payloads over any ordered byte stream (a TCP connection, a
// subprocess pipe) with explicit boundaries. The cluster runtime
// (internal/cluster) speaks length-prefixed frames of protocol messages
// whose collector payloads are the bit-exact codecs, so the cross-process
// merge guarantee survives the network unchanged.
//
// Frame layout: u32 little-endian payload length, then payload bytes.
// Reading is defensive to the same standard as the codecs: a forged or
// corrupted length cannot trigger an oversized allocation (the payload
// buffer grows only as bytes actually arrive, and lengths above the
// caller's limit are rejected up front), and malformed input returns an
// error wrapping ErrCodec instead of panicking (FuzzReadFrame).

// frameHeaderLen is the byte length of the frame length prefix.
const frameHeaderLen = 4

// MaxFrame is the largest payload WriteFrame will emit and the largest
// length a reader can opt into; readers normally pass a tighter limit.
const MaxFrame = 1 << 30

// WriteFrame writes one length-prefixed frame. The payload may be empty;
// payloads above MaxFrame are refused (the length prefix could encode
// them, but no peer would accept the frame).
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("stats: frame payload of %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends one length-prefixed frame to dst and returns the
// extended slice — the in-memory form of WriteFrame, for composing
// canonical byte strings out of codec payloads (the campaign
// verification fingerprint frames each collector payload this way, so
// two encodings are byte-equal iff every framed payload is). The same
// MaxFrame bound applies.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return dst, fmt.Errorf("stats: frame payload of %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// ReadFrame reads one frame and returns its payload. max bounds the
// payload length this reader accepts (values out of (0, MaxFrame] are
// clamped to MaxFrame); longer frames return an error wrapping ErrCodec.
// A truncated stream returns io.ErrUnexpectedEOF (or io.EOF when the
// stream ends cleanly before the header), and allocation is bounded by
// the bytes that actually arrive — a forged length on a short stream
// cannot balloon memory.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 || max > MaxFrame {
		max = MaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return nil, codecErr("frame of %d bytes exceeds limit %d", n, max)
	}
	// Grow the buffer chunk by chunk rather than trusting the header:
	// allocation tracks delivered bytes, so truncation costs at most one
	// chunk of slack.
	const chunk = 64 << 10
	payload := make([]byte, 0, min(int(n), chunk))
	for len(payload) < int(n) {
		step := int(n) - len(payload)
		if step > chunk {
			step = chunk
		}
		off := len(payload)
		payload = slices.Grow(payload, step)[:off+step]
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return payload, nil
}
