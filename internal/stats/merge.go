package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file holds the mergeable accumulators the parallel experiment
// engine reduces per-trial results into. The contract they share: Merge
// must be associative, and merging parts produced by independent trials
// in trial-index order yields the same state as one serial pass — which
// is what keeps experiment reports bit-identical for any worker count.

// Accumulator collects scalar samples and merges with other
// accumulators. It keeps the raw values, so exact medians, percentiles
// and confidence intervals survive the merge (a moments-only reducer
// could not recover them).
type Accumulator struct {
	xs []float64
}

// Add appends samples.
func (a *Accumulator) Add(xs ...float64) {
	a.xs = append(a.xs, xs...)
}

// Merge appends every sample of o. Merging in trial-index order
// reproduces the serial pass exactly.
func (a *Accumulator) Merge(o *Accumulator) {
	if o != nil {
		a.xs = append(a.xs, o.xs...)
	}
}

// N returns the number of samples.
func (a *Accumulator) N() int { return len(a.xs) }

// Values returns the samples in insertion order. The slice is shared;
// callers must not modify it.
func (a *Accumulator) Values() []float64 { return a.xs }

// Mean returns the sample mean.
func (a *Accumulator) Mean() float64 { return Mean(a.xs) }

// Median returns the sample median.
func (a *Accumulator) Median() float64 { return Median(a.xs) }

// CI95 returns the half-width of the 95% confidence interval.
func (a *Accumulator) CI95() float64 { return CI95(a.xs) }

// Summary returns the headline statistics of the sample.
func (a *Accumulator) Summary() Summary { return Summarize(a.xs) }

// Histogram is a fixed-width bucketed counter over the reals. Unlike
// Accumulator it is O(buckets) in memory regardless of sample count,
// which suits the link-duration and delivery-probability distributions
// the big sweeps produce. Buckets are indexed by floor(x/Width), so two
// histograms of the same width merge exactly.
type Histogram struct {
	// Width is the bucket width; it must be positive and identical
	// across merged histograms.
	Width  float64
	counts map[int]int64
	n      int64
	sum    float64
}

// NewHistogram returns an empty histogram with the given bucket width.
func NewHistogram(width float64) *Histogram {
	if width <= 0 {
		panic(fmt.Sprintf("stats: non-positive histogram width %g", width))
	}
	return &Histogram{Width: width, counts: map[int]int64{}}
}

// Add counts one sample.
func (h *Histogram) Add(x float64) { h.AddN(x, 1) }

// AddN counts a sample n times.
func (h *Histogram) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	h.counts[h.bucket(x)] += n
	h.n += n
	h.sum += x * float64(n)
}

func (h *Histogram) bucket(x float64) int { return int(math.Floor(x / h.Width)) }

// Merge adds every bucket of o into h. The widths must match — merging
// histograms of different resolutions has no exact meaning.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if o.Width != h.Width {
		panic(fmt.Sprintf("stats: merging histograms of width %g and %g", h.Width, o.Width))
	}
	for b, c := range o.counts {
		h.counts[b] += c
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the exact mean of the added samples (the sum is tracked
// outside the buckets).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Percentile returns the p-th percentile (0–100) approximated by linear
// interpolation inside the bucket holding that rank. The error is
// bounded by Width.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	bs := h.buckets()
	rank := p / 100 * float64(h.n-1)
	if rank < 0 {
		rank = 0
	}
	var below int64
	for _, b := range bs {
		if float64(below+h.counts[b]) > rank {
			frac := (rank - float64(below)) / float64(h.counts[b])
			return (float64(b) + frac) * h.Width
		}
		below += h.counts[b]
	}
	last := bs[len(bs)-1]
	return float64(last+1) * h.Width
}

// buckets returns the occupied bucket indices in ascending order.
func (h *Histogram) buckets() []int {
	bs := make([]int, 0, len(h.counts))
	for b := range h.counts {
		bs = append(bs, b)
	}
	sort.Ints(bs)
	return bs
}

// String renders the histogram compactly for report notes.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g",
		h.n, h.Mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99))
}

// MergeSeries concatenates the parts in argument order and stable-sorts
// the points by X, so per-trial fragments of one curve reassemble into
// the same series regardless of which worker produced which fragment.
func MergeSeries(name string, parts ...*Series) *Series {
	out := &Series{Name: name}
	for _, p := range parts {
		if p != nil {
			out.Points = append(out.Points, p.Points...)
		}
	}
	sort.SliceStable(out.Points, func(i, j int) bool { return out.Points[i].X < out.Points[j].X })
	return out
}
