package stats

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// awkwardFloats exercises every bit pattern class the codec must carry
// exactly: negative zero, infinities, quiet NaN, a NaN with a payload,
// denormals, and extreme magnitudes.
var awkwardFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, -1e-308, 5e-324, math.MaxFloat64,
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.Float64frombits(0x7ff8000000000abc), // NaN with payload
}

func TestAccumulatorCodecRoundTrip(t *testing.T) {
	var a Accumulator
	a.Add(awkwardFloats...)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var b Accumulator
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !a.Equal(&b) {
		t.Fatalf("round trip changed samples: %v -> %v", a.Values(), b.Values())
	}

	var empty, emptyBack Accumulator
	data, _ = empty.MarshalBinary()
	if err := emptyBack.UnmarshalBinary(data); err != nil || emptyBack.N() != 0 {
		t.Fatalf("empty round trip: err=%v n=%d", err, emptyBack.N())
	}
}

func TestHistogramCodecRoundTrip(t *testing.T) {
	h := NewHistogram(0.25)
	for _, x := range []float64{-3, -0.1, 0, 0.1, 0.24, 7.5, 1e6} {
		h.Add(x)
	}
	h.AddN(2.5, 41)
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var g Histogram
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !h.Equal(&g) {
		t.Fatalf("round trip changed histogram: %v -> %v", h, &g)
	}
	// A decoded histogram must be mergeable (its map must be live).
	g.Add(1)
	if g.Count() != h.Count()+1 {
		t.Fatalf("decoded histogram not usable: count %d", g.Count())
	}

	// Canonical: equal histograms encode to equal bytes.
	data2, _ := h.MarshalBinary()
	if string(data) != string(data2) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestSeriesCodecRoundTrip(t *testing.T) {
	s := &Series{Name: "curve α"}
	for i, x := range awkwardFloats {
		s.Add(x, awkwardFloats[len(awkwardFloats)-1-i])
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var g Series
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !s.Equal(&g) {
		t.Fatalf("round trip changed series")
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	var a Accumulator
	a.Add(1, 2, 3)
	good, _ := a.MarshalBinary()

	cases := map[string][]byte{
		"empty":         {},
		"tag only":      {tagAccumulator},
		"wrong tag":     append([]byte{tagSeries}, good[1:]...),
		"wrong version": append([]byte{tagAccumulator, 99}, good[2:]...),
		"truncated":     good[:len(good)-1],
		"trailing":      append(append([]byte{}, good...), 0),
		"huge count": append([]byte{tagAccumulator, codecVersion},
			binary.LittleEndian.AppendUint64(nil, math.MaxUint64)...),
	}
	for name, data := range cases {
		var b Accumulator
		if err := b.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		} else if !errors.Is(err, ErrCodec) {
			t.Errorf("%s: error %v does not wrap ErrCodec", name, err)
		}
		if b.N() != 0 {
			t.Errorf("%s: failed decode mutated the accumulator", name)
		}
	}

	// Histogram-specific corruption: zero width, count mismatch,
	// unordered buckets.
	h := NewHistogram(1)
	h.Add(1)
	h.Add(5)
	hb, _ := h.MarshalBinary()
	zeroWidth := append([]byte{}, hb...)
	binary.LittleEndian.PutUint64(zeroWidth[2:], math.Float64bits(0))
	badN := append([]byte{}, hb...)
	binary.LittleEndian.PutUint64(badN[18:], 7) // header n != bucket total
	for name, data := range map[string][]byte{"zero width": zeroWidth, "count mismatch": badN} {
		var g Histogram
		if err := g.UnmarshalBinary(data); err == nil {
			t.Errorf("histogram %s: decode accepted malformed input", name)
		}
	}
}

// FuzzAccumulatorCodec asserts the two codec invariants on arbitrary
// input: (1) decoding never panics — it either fails cleanly or yields
// a value whose re-encoding is stable; (2) an accumulator built from
// the input's float64s round-trips bit-exactly.
func FuzzAccumulatorCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{tagAccumulator, codecVersion})
	var seedAcc Accumulator
	seedAcc.Add(awkwardFloats...)
	seed, _ := seedAcc.MarshalBinary()
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		// (1) Arbitrary bytes: must not panic; success implies a stable
		// re-encode.
		var a Accumulator
		if err := a.UnmarshalBinary(data); err == nil {
			out, err := a.MarshalBinary()
			if err != nil {
				t.Fatalf("re-encode of decoded value failed: %v", err)
			}
			var b Accumulator
			if err := b.UnmarshalBinary(out); err != nil || !a.Equal(&b) {
				t.Fatalf("re-decode mismatch (err=%v)", err)
			}
		}

		// (2) Interpret the input as samples: exact round trip.
		var src Accumulator
		for i := 0; i+8 <= len(data); i += 8 {
			src.Add(math.Float64frombits(binary.LittleEndian.Uint64(data[i:])))
		}
		enc, err := src.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Accumulator
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatalf("unmarshal of own encoding: %v", err)
		}
		if !src.Equal(&back) {
			t.Fatal("round trip not exact")
		}
	})
}

// FuzzHistogramCodec mirrors FuzzAccumulatorCodec for histograms: no
// panic on arbitrary input, and exact round trips for histograms built
// from the input.
func FuzzHistogramCodec(f *testing.F) {
	f.Add([]byte{})
	h := NewHistogram(0.5)
	h.Add(1)
	h.AddN(-3, 9)
	seed, _ := h.MarshalBinary()
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Histogram
		if err := g.UnmarshalBinary(data); err == nil {
			out, err := g.MarshalBinary()
			if err != nil {
				t.Fatalf("re-encode of decoded value failed: %v", err)
			}
			var g2 Histogram
			if err := g2.UnmarshalBinary(out); err != nil || !g.Equal(&g2) {
				t.Fatalf("re-decode mismatch (err=%v)", err)
			}
			// Decoded histograms must uphold the Merge invariant
			// (positive width), or Merge could panic later.
			if !(g.Width > 0) {
				t.Fatalf("decoded histogram has invalid width %g", g.Width)
			}
		}

		// Build a histogram from the fuzz input: first 8 bytes pick the
		// width, the rest are samples. Skip widths the API itself
		// rejects (NewHistogram panics on non-positive).
		if len(data) < 8 {
			return
		}
		width := math.Abs(math.Float64frombits(binary.LittleEndian.Uint64(data)))
		if !(width > 0) || math.IsInf(width, 1) {
			return
		}
		src := NewHistogram(width)
		for i := 8; i+8 <= len(data); i += 8 {
			x := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
			if math.IsNaN(x) || math.Abs(x/width) > 1e15 {
				continue // bucket index would be meaningless/overflow int
			}
			src.Add(x)
		}
		enc, err := src.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back := NewHistogram(width)
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatalf("unmarshal of own encoding: %v", err)
		}
		if !src.Equal(back) {
			t.Fatal("round trip not exact")
		}
	})
}

// FuzzSeriesCodec: no panic on arbitrary input; series built from the
// input round-trip exactly.
func FuzzSeriesCodec(f *testing.F) {
	f.Add([]byte{})
	s := &Series{Name: "seed"}
	s.Add(1, 2)
	seed, _ := s.MarshalBinary()
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Series
		if err := g.UnmarshalBinary(data); err == nil {
			out, err := g.MarshalBinary()
			if err != nil {
				t.Fatalf("re-encode of decoded value failed: %v", err)
			}
			var g2 Series
			if err := g2.UnmarshalBinary(out); err != nil || !g.Equal(&g2) {
				t.Fatalf("re-decode mismatch (err=%v)", err)
			}
		}

		nameLen := 0
		if len(data) > 0 {
			nameLen = int(data[0]) % 16
		}
		if len(data) < 1+nameLen {
			return
		}
		src := &Series{Name: string(data[1 : 1+nameLen])}
		for i := 1 + nameLen; i+16 <= len(data); i += 16 {
			src.Add(math.Float64frombits(binary.LittleEndian.Uint64(data[i:])),
				math.Float64frombits(binary.LittleEndian.Uint64(data[i+8:])))
		}
		enc, err := src.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Series
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatalf("unmarshal of own encoding: %v", err)
		}
		if !src.Equal(&back) {
			t.Fatal("round trip not exact")
		}
	})
}
