// Package stats provides the summary statistics used throughout the
// experiment harness: means, medians, standard deviations, confidence
// intervals, bucketed aggregation, and simple time-series containers with
// ASCII rendering for figure reproduction.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n−1 denominator),
// or 0 when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// of xs under a normal approximation (1.96 σ/√n). The paper's figures show
// 95% confidence error bars.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles the headline statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Std    float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.Median = Median(xs)
	s.Std = StdDev(xs)
	s.CI95 = CI95(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.3g median=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.CI95, s.Median, s.Min, s.Max)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
