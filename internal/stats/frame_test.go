package stats

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 65536+17), // spans multiple read chunks
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for i, p := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("clean end: err = %v, want io.EOF", err)
	}
}

func TestFrameReadRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(&buf, 1024)
	if !errors.Is(err, ErrCodec) {
		t.Fatalf("oversized frame: err = %v, want ErrCodec", err)
	}
}

func TestFrameReadTruncated(t *testing.T) {
	// Header promises 100 bytes; only 10 arrive.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 100)
	in := append(hdr[:], make([]byte, 10)...)
	if _, err := ReadFrame(bytes.NewReader(in), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: err = %v, want ErrUnexpectedEOF", err)
	}
	// Truncated header.
	if _, err := ReadFrame(bytes.NewReader(hdr[:2]), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated header: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestFrameForgedLengthBoundedAllocation(t *testing.T) {
	// A maximal length prefix on a near-empty stream must error out
	// without allocating anything close to the advertised size; the
	// test passes by not OOMing and by the error coming back quickly.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(MaxFrame))
	in := append(hdr[:], []byte("short")...)
	if _, err := ReadFrame(bytes.NewReader(in), MaxFrame); err == nil {
		t.Fatal("forged length decoded without error")
	}
}

// FuzzReadFrame asserts the decoder's safety contract on arbitrary
// streams: never panic, never allocate beyond the limit, and round-trip
// whatever it accepts.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 'x'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	var seed bytes.Buffer
	WriteFrame(&seed, []byte("hello"))
	f.Add(seed.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), 1<<20)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		got, err := ReadFrame(&buf, 1<<20)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}
