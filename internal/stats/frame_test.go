package stats

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 65536+17), // spans multiple read chunks
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for i, p := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("clean end: err = %v, want io.EOF", err)
	}
}

func TestFrameReadRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(&buf, 1024)
	if !errors.Is(err, ErrCodec) {
		t.Fatalf("oversized frame: err = %v, want ErrCodec", err)
	}
}

func TestFrameReadTruncated(t *testing.T) {
	// Header promises 100 bytes; only 10 arrive.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 100)
	in := append(hdr[:], make([]byte, 10)...)
	if _, err := ReadFrame(bytes.NewReader(in), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: err = %v, want ErrUnexpectedEOF", err)
	}
	// Truncated header.
	if _, err := ReadFrame(bytes.NewReader(hdr[:2]), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated header: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestFrameForgedLengthBoundedAllocation(t *testing.T) {
	// A maximal length prefix on a near-empty stream must error out
	// without allocating anything close to the advertised size; the
	// test passes by not OOMing and by the error coming back quickly.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(MaxFrame))
	in := append(hdr[:], []byte("short")...)
	if _, err := ReadFrame(bytes.NewReader(in), MaxFrame); err == nil {
		t.Fatal("forged length decoded without error")
	}
}

// TestFrameSumRoundTrip streams several checksummed frames through one
// rolling chain and reads them back; the chain state must thread
// identically on both sides.
func TestFrameSumRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 65536+17),
	}
	var buf bytes.Buffer
	var wsum uint32
	for _, p := range payloads {
		var err error
		if wsum, err = WriteFrameSum(&buf, p, wsum); err != nil {
			t.Fatalf("WriteFrameSum(%d bytes): %v", len(p), err)
		}
	}
	var rsum uint32
	for i, p := range payloads {
		got, sum, err := ReadFrameSum(&buf, 0, rsum)
		if err != nil {
			t.Fatalf("ReadFrameSum %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
		rsum = sum
	}
	if rsum != wsum {
		t.Fatalf("chains diverge after a clean stream: read %08x, wrote %08x", rsum, wsum)
	}
	if _, _, err := ReadFrameSum(&buf, 0, rsum); err != io.EOF {
		t.Fatalf("clean end: err = %v, want io.EOF", err)
	}
}

// TestAppendFrameSumMatchesWriter: the in-memory form must be
// byte-identical to the writer form — fault injection depends on it.
func TestAppendFrameSumMatchesWriter(t *testing.T) {
	payload := []byte("the same bytes either way")
	var buf bytes.Buffer
	wsum, err := WriteFrameSum(&buf, payload, 7)
	if err != nil {
		t.Fatal(err)
	}
	frame, asum, err := AppendFrameSum(nil, payload, 7)
	if err != nil {
		t.Fatal(err)
	}
	if wsum != asum {
		t.Errorf("chains diverge: writer %08x, append %08x", wsum, asum)
	}
	if !bytes.Equal(buf.Bytes(), frame) {
		t.Errorf("frames differ:\nwriter %x\nappend %x", buf.Bytes(), frame)
	}
	if len(frame) != FrameHeaderLen+len(payload)+FrameTrailerLen {
		t.Errorf("frame length %d, want header+payload+trailer = %d",
			len(frame), FrameHeaderLen+len(payload)+FrameTrailerLen)
	}
}

// TestFrameSumDetectsCorruption: flipping any single payload or trailer
// bit must surface as ErrChecksum (which is also an ErrCodec).
func TestFrameSumDetectsCorruption(t *testing.T) {
	frame, _, err := AppendFrameSum(nil, []byte("precious payload"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for off := FrameHeaderLen; off < len(frame); off++ {
		bad := bytes.Clone(frame)
		bad[off] ^= 0x01
		_, _, err := ReadFrameSum(bytes.NewReader(bad), 0, 0)
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: err = %v, want ErrChecksum", off, err)
		}
		if !errors.Is(err, ErrCodec) {
			t.Fatalf("flip at %d: ErrChecksum does not wrap ErrCodec", off)
		}
	}
}

// TestFrameSumDetectsDropAndDup: the rolling chain catches stream-level
// faults that leave every individual frame intact — a missing frame and
// a replayed frame both break the chain at the next read.
func TestFrameSumDetectsDropAndDup(t *testing.T) {
	frames := make([][]byte, 3)
	var sum uint32
	for i := range frames {
		var err error
		frames[i], sum, err = AppendFrameSum(nil, []byte{'a' + byte(i)}, sum)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Drop frame 1: frame 2's trailer no longer continues the chain.
	dropped := bytes.NewReader(append(bytes.Clone(frames[0]), frames[2]...))
	_, sum0, err := ReadFrameSum(dropped, 0, 0)
	if err != nil {
		t.Fatalf("frame 0: %v", err)
	}
	if _, _, err := ReadFrameSum(dropped, 0, sum0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("dropped frame: err = %v, want ErrChecksum at the next frame", err)
	}
	// Duplicate frame 0: the second copy's trailer restates a chain the
	// reader has already advanced past.
	duped := bytes.NewReader(append(bytes.Clone(frames[0]), frames[0]...))
	_, sum0, err = ReadFrameSum(duped, 0, 0)
	if err != nil {
		t.Fatalf("first copy: %v", err)
	}
	if _, _, err := ReadFrameSum(duped, 0, sum0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("duplicated frame: err = %v, want ErrChecksum at the second copy", err)
	}
}

// TestFrameSumTruncatedTrailer: a frame cut off inside its trailer is a
// framing error, not a silent success.
func TestFrameSumTruncatedTrailer(t *testing.T) {
	frame, _, err := AppendFrameSum(nil, []byte("abc"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(frame) - FrameTrailerLen; cut < len(frame); cut++ {
		if _, _, err := ReadFrameSum(bytes.NewReader(frame[:cut]), 0, 0); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// FuzzReadFrame asserts the decoder's safety contract on arbitrary
// streams: never panic, never allocate beyond the limit, and round-trip
// whatever it accepts. The checksummed reader is held to the same
// contract over the same corpus: it must never panic, and anything it
// accepts must carry a valid chain trailer.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 'x'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	var seed bytes.Buffer
	WriteFrame(&seed, []byte("hello"))
	f.Add(seed.Bytes())
	var sumSeed bytes.Buffer
	WriteFrameSum(&sumSeed, []byte("hello"), 0)
	f.Add(sumSeed.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		if sp, sum, err := ReadFrameSum(bytes.NewReader(data), 1<<20, 0); err == nil {
			if want := ChainSum(0, sp); sum != want {
				t.Fatalf("accepted frame advances chain to %08x, want %08x", sum, want)
			}
		}
		payload, err := ReadFrame(bytes.NewReader(data), 1<<20)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		got, err := ReadFrame(&buf, 1<<20)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}

// FuzzReadFrameSum fuzzes the checksummed reader with arbitrary chain
// origins: corruption anywhere must yield ErrChecksum or a framing
// error — never a panic, never a bogus acceptance.
func FuzzReadFrameSum(f *testing.F) {
	frame, _, _ := AppendFrameSum(nil, []byte("seed payload"), 0)
	f.Add(frame, uint32(0))
	frame2, _, _ := AppendFrameSum(nil, []byte("chained"), 12345)
	f.Add(frame2, uint32(12345))
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{3, 0, 0, 0, 'a', 'b', 'c'}, uint32(9))
	f.Fuzz(func(t *testing.T, data []byte, prev uint32) {
		payload, sum, err := ReadFrameSum(bytes.NewReader(data), 1<<20, prev)
		if err != nil {
			return
		}
		if want := ChainSum(prev, payload); sum != want {
			t.Fatalf("accepted frame advances chain to %08x, want %08x", sum, want)
		}
		// Re-emit from the same chain origin and read it back.
		var buf bytes.Buffer
		wsum, err := WriteFrameSum(&buf, payload, prev)
		if err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		got, rsum, err := ReadFrameSum(&buf, 1<<20, prev)
		if err != nil || !bytes.Equal(got, payload) || rsum != wsum {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}
