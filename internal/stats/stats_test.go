package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{4}) != 0 {
		t.Error("StdDev of < 2 samples should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ≈ 2.138 (sample std)", got)
	}
}

func TestMedianAndPercentile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if got := Median(xs); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
	// Median must not mutate the input.
	if xs[0] != 9 {
		t.Error("Median mutated its input")
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Errorf("P100 = %v, want 9", got)
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("P50 of {1,2} = %v, want 1.5 (interpolated)", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty should be 0")
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		pp := math.Mod(math.Abs(p), 100)
		v := Percentile(clean, pp)
		min, max := clean[0], clean[0]
		for _, x := range clean {
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		return v >= min && v <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Error("CI of one sample should be 0")
	}
	xs := []float64{10, 12, 9, 11, 10, 12, 9, 11}
	ci := CI95(xs)
	if ci <= 0 || ci > StdDev(xs)*2 {
		t.Errorf("CI95 = %v out of plausible range", ci)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Mean != 2 || s.Median != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("Summary.String() = %q", s.String())
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should have N=0")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-5, 0, 10, 0}, {15, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSeriesAddAt(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(0, 10)
	s.Add(5, 20)
	s.Add(10, 30)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	cases := []struct{ x, want float64 }{
		{-1, 10}, {0, 10}, {2, 10}, {5, 20}, {7, 20}, {10, 30}, {99, 30},
	}
	for _, c := range cases {
		if got := s.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if (&Series{}).At(3) != 0 {
		t.Error("At on empty series should be 0")
	}
}

func TestSeriesYs(t *testing.T) {
	s := &Series{}
	s.Add(0, 1)
	s.Add(1, 2)
	ys := s.Ys()
	if len(ys) != 2 || ys[0] != 1 || ys[1] != 2 {
		t.Errorf("Ys = %v", ys)
	}
}

func TestSeriesBucketed(t *testing.T) {
	s := &Series{}
	for i := 0; i < 10; i++ {
		s.Add(float64(i)*0.1, float64(i)) // x in [0, 0.9]
	}
	b := s.Bucketed(0.5)
	if b.Len() != 2 {
		t.Fatalf("bucketed len = %d, want 2", b.Len())
	}
	if b.Points[0].Y != 2 { // mean of 0..4
		t.Errorf("bucket 0 mean = %v, want 2", b.Points[0].Y)
	}
	if b.Points[1].Y != 7 { // mean of 5..9
		t.Errorf("bucket 1 mean = %v, want 7", b.Points[1].Y)
	}
	if (&Series{}).Bucketed(1).Len() != 0 {
		t.Error("bucketing empty series should be empty")
	}
	if s.Bucketed(0).Len() != 0 {
		t.Error("zero-width buckets should yield empty")
	}
}

func TestChart(t *testing.T) {
	s := &Series{Name: "line"}
	s.Add(0, 0)
	s.Add(1, 1)
	out := Chart(20, 5, s)
	if !strings.Contains(out, "line") {
		t.Error("chart must include the series legend")
	}
	if !strings.Contains(out, "*") {
		t.Error("chart must plot glyphs")
	}
	if got := Chart(20, 5); !strings.Contains(got, "empty") {
		t.Error("chart of nothing should say empty")
	}
	// A constant series must not divide by zero.
	c := &Series{Name: "const"}
	c.Add(0, 5)
	c.Add(1, 5)
	if out := Chart(10, 4, c); out == "" {
		t.Error("constant series chart empty")
	}
}
