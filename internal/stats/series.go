package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is an ordered sequence of points with a name, used by the
// experiment harness to carry one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Ys returns the y values in order.
func (s *Series) Ys() []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

// At returns the y value at the largest x not exceeding the query, using
// step interpolation; it returns the first point's y for queries before
// the series start, and 0 for an empty series.
func (s *Series) At(x float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].X > x })
	if i == 0 {
		return s.Points[0].Y
	}
	return s.Points[i-1].Y
}

// Bucketed aggregates the series into buckets of the given x width,
// averaging y within each bucket. Used for per-second delivery ratios.
func (s *Series) Bucketed(width float64) *Series {
	if width <= 0 || len(s.Points) == 0 {
		return &Series{Name: s.Name}
	}
	out := &Series{Name: s.Name}
	type acc struct {
		sum float64
		n   int
	}
	buckets := map[int]*acc{}
	minB, maxB := math.MaxInt32, math.MinInt32
	for _, p := range s.Points {
		b := int(math.Floor(p.X / width))
		a := buckets[b]
		if a == nil {
			a = &acc{}
			buckets[b] = a
		}
		a.sum += p.Y
		a.n++
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	for b := minB; b <= maxB; b++ {
		if a := buckets[b]; a != nil {
			out.Add(float64(b)*width, a.sum/float64(a.n))
		}
	}
	return out
}

// Chart renders one or more series as a fixed-width ASCII chart, one
// column per x step, suitable for printing figure reproductions in a
// terminal. Each series is drawn with a distinct glyph.
func Chart(width, height int, series ...*Series) string {
	glyphs := []byte{'*', '+', 'x', 'o', '#', '@'}
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range series {
		for _, p := range s.Points {
			if first {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if first || width < 2 || height < 2 {
		return "(empty chart)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			cx := int((p.X - minX) / (maxX - minX) * float64(width-1))
			cy := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y: [%.3g, %.3g]  x: [%.3g, %.3g]\n", minY, maxY, minX, maxX)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}
