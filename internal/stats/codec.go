package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file is the serialization half of the cross-process merge
// contract: stable, version-tagged binary codecs for the mergeable
// accumulators, exact to the bit. Floats travel as raw IEEE-754 bits
// (math.Float64bits), so every value — including -0, ±Inf, NaN
// payloads and denormals — survives a round trip unchanged; a shard's
// partial accumulator deserializes into exactly the state it had in the
// worker process. Decoding arbitrary bytes never panics: every length
// is checked against the remaining input before it is trusted (fuzzed
// by FuzzAccumulatorCodec / FuzzHistogramCodec / FuzzSeriesCodec).
//
// Wire layout (all integers little-endian):
//
//	header:      tag byte ('A'/'H'/'S'), version byte (1)
//	Accumulator: u64 count, then count × f64 bits in insertion order
//	Histogram:   f64 width bits, f64 sum bits, u64 n,
//	             u64 buckets, then buckets × (i64 bucket, i64 count)
//	             in ascending bucket order (canonical: two equal
//	             histograms encode to equal bytes)
//	Series:      u32 name length, name bytes, u64 points,
//	             then points × (f64 x bits, f64 y bits) in order

// Codec tags and version.
const (
	codecVersion = 1

	tagAccumulator = 'A'
	tagHistogram   = 'H'
	tagSeries      = 'S'
)

// ErrCodec wraps every decode failure so callers can distinguish
// malformed input from other errors.
var ErrCodec = errors.New("stats: malformed codec input")

func codecErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCodec, fmt.Sprintf(format, args...))
}

// reader is a bounds-checked cursor over an encoded payload.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, codecErr("need %d bytes, have %d", n, r.remaining())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) f64() (float64, error) {
	u, err := r.u64()
	return math.Float64frombits(u), err
}

// count reads a u64 element count and validates it against the bytes
// each element occupies, so a forged count cannot force a huge
// allocation before the shortfall is noticed.
func (r *reader) count(elemBytes int) (int, error) {
	n, err := r.u64()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining())/uint64(elemBytes) {
		return 0, codecErr("count %d exceeds remaining input (%d bytes)", n, r.remaining())
	}
	return int(n), nil
}

func (r *reader) header(tag byte) error {
	b, err := r.bytes(2)
	if err != nil {
		return err
	}
	if b[0] != tag {
		return codecErr("tag %q, want %q", b[0], tag)
	}
	if b[1] != codecVersion {
		return codecErr("version %d, want %d", b[1], codecVersion)
	}
	return nil
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

// MarshalBinary encodes the accumulator's samples in insertion order.
func (a *Accumulator) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 2+8+8*len(a.xs))
	out = append(out, tagAccumulator, codecVersion)
	out = appendU64(out, uint64(len(a.xs)))
	for _, x := range a.xs {
		out = appendF64(out, x)
	}
	return out, nil
}

// UnmarshalBinary replaces the accumulator's contents with the encoded
// samples. Malformed input returns an error wrapping ErrCodec and
// leaves the accumulator unchanged.
func (a *Accumulator) UnmarshalBinary(data []byte) error {
	r := &reader{buf: data}
	if err := r.header(tagAccumulator); err != nil {
		return err
	}
	n, err := r.count(8)
	if err != nil {
		return err
	}
	xs := make([]float64, n)
	for i := range xs {
		if xs[i], err = r.f64(); err != nil {
			return err
		}
	}
	if r.remaining() != 0 {
		return codecErr("%d trailing bytes", r.remaining())
	}
	a.xs = xs
	return nil
}

// MarshalBinary encodes the histogram with buckets in ascending index
// order, so equal histograms encode to equal bytes.
func (h *Histogram) MarshalBinary() ([]byte, error) {
	bs := h.buckets()
	out := make([]byte, 0, 2+8*3+8+16*len(bs))
	out = append(out, tagHistogram, codecVersion)
	out = appendF64(out, h.Width)
	out = appendF64(out, h.sum)
	out = appendU64(out, uint64(h.n))
	out = appendU64(out, uint64(len(bs)))
	for _, b := range bs {
		out = appendU64(out, uint64(int64(b)))
		out = appendU64(out, uint64(h.counts[b]))
	}
	return out, nil
}

// UnmarshalBinary replaces the histogram's contents. The width must be
// positive and finite (the invariant NewHistogram enforces), bucket
// counts must be positive, buckets strictly ascending, and the total
// must equal the stored n — so a decoded histogram is always safe to
// Merge. Malformed input returns an error wrapping ErrCodec.
func (h *Histogram) UnmarshalBinary(data []byte) error {
	r := &reader{buf: data}
	if err := r.header(tagHistogram); err != nil {
		return err
	}
	width, err := r.f64()
	if err != nil {
		return err
	}
	if !(width > 0) || math.IsInf(width, 1) {
		return codecErr("non-positive or non-finite width %g", width)
	}
	sum, err := r.f64()
	if err != nil {
		return err
	}
	nu, err := r.u64()
	if err != nil {
		return err
	}
	n := int64(nu)
	if n < 0 {
		return codecErr("negative sample count %d", n)
	}
	buckets, err := r.count(16)
	if err != nil {
		return err
	}
	counts := make(map[int]int64, buckets)
	var total int64
	prev := int64(math.MinInt64)
	first := true
	for i := 0; i < buckets; i++ {
		bu, err := r.u64()
		if err != nil {
			return err
		}
		cu, err := r.u64()
		if err != nil {
			return err
		}
		b, c := int64(bu), int64(cu)
		if !first && b <= prev {
			return codecErr("bucket %d out of order after %d", b, prev)
		}
		if b != int64(int(b)) {
			return codecErr("bucket %d overflows int", b)
		}
		if c <= 0 {
			return codecErr("non-positive count %d in bucket %d", c, b)
		}
		if total > math.MaxInt64-c {
			return codecErr("bucket counts overflow")
		}
		total += c
		counts[int(b)] = c
		prev, first = b, false
	}
	if total != n {
		return codecErr("bucket counts sum to %d, header says %d", total, n)
	}
	if r.remaining() != 0 {
		return codecErr("%d trailing bytes", r.remaining())
	}
	h.Width = width
	h.sum = sum
	h.n = n
	h.counts = counts
	return nil
}

// MarshalBinary encodes the series name and points in order.
func (s *Series) MarshalBinary() ([]byte, error) {
	if len(s.Name) > math.MaxUint32 {
		return nil, fmt.Errorf("stats: series name of %d bytes exceeds the wire format", len(s.Name))
	}
	out := make([]byte, 0, 2+4+len(s.Name)+8+16*len(s.Points))
	out = append(out, tagSeries, codecVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Name)))
	out = append(out, s.Name...)
	out = appendU64(out, uint64(len(s.Points)))
	for _, p := range s.Points {
		out = appendF64(out, p.X)
		out = appendF64(out, p.Y)
	}
	return out, nil
}

// UnmarshalBinary replaces the series' contents. Malformed input
// returns an error wrapping ErrCodec and leaves the series unchanged.
func (s *Series) UnmarshalBinary(data []byte) error {
	r := &reader{buf: data}
	if err := r.header(tagSeries); err != nil {
		return err
	}
	nameLen, err := r.u32()
	if err != nil {
		return err
	}
	name, err := r.bytes(int(nameLen))
	if err != nil {
		return err
	}
	n, err := r.count(16)
	if err != nil {
		return err
	}
	pts := make([]Point, n)
	for i := range pts {
		if pts[i].X, err = r.f64(); err != nil {
			return err
		}
		if pts[i].Y, err = r.f64(); err != nil {
			return err
		}
	}
	if r.remaining() != 0 {
		return codecErr("%d trailing bytes", r.remaining())
	}
	s.Name = string(name)
	s.Points = pts
	return nil
}

// Equal reports whether two accumulators hold bit-identical sample
// sequences (NaNs compare by bit pattern, so a round-tripped
// accumulator always equals its source).
func (a *Accumulator) Equal(o *Accumulator) bool {
	if len(a.xs) != len(o.xs) {
		return false
	}
	for i, x := range a.xs {
		if math.Float64bits(x) != math.Float64bits(o.xs[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether two histograms hold bit-identical state.
func (h *Histogram) Equal(o *Histogram) bool {
	if math.Float64bits(h.Width) != math.Float64bits(o.Width) ||
		math.Float64bits(h.sum) != math.Float64bits(o.sum) ||
		h.n != o.n || len(h.counts) != len(o.counts) {
		return false
	}
	for b, c := range h.counts {
		if o.counts[b] != c {
			return false
		}
	}
	return true
}

// Equal reports whether two series hold bit-identical names and points.
func (s *Series) Equal(o *Series) bool {
	if s.Name != o.Name || len(s.Points) != len(o.Points) {
		return false
	}
	for i, p := range s.Points {
		if math.Float64bits(p.X) != math.Float64bits(o.Points[i].X) ||
			math.Float64bits(p.Y) != math.Float64bits(o.Points[i].Y) {
			return false
		}
	}
	return true
}
