package stats

import (
	"math"
	"testing"
)

func TestAccumulatorMergeEqualsSerial(t *testing.T) {
	// Three per-trial accumulators merged in trial order must equal one
	// serial pass over the same samples.
	serial := &Accumulator{}
	parts := []*Accumulator{{}, {}, {}}
	vals := [][]float64{{3, 1}, {4, 1, 5}, {9, 2, 6}}
	for ti, xs := range vals {
		for _, x := range xs {
			serial.Add(x)
			parts[ti].Add(x)
		}
	}
	merged := &Accumulator{}
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != serial.N() {
		t.Fatalf("N: merged %d serial %d", merged.N(), serial.N())
	}
	for i, v := range merged.Values() {
		if v != serial.Values()[i] {
			t.Fatalf("value %d: merged %g serial %g", i, v, serial.Values()[i])
		}
	}
	if merged.Mean() != serial.Mean() || merged.Median() != serial.Median() || merged.CI95() != serial.CI95() {
		t.Fatal("summary statistics differ after merge")
	}
	merged.Merge(nil) // nil-safe
}

func TestHistogramMergeAndPercentiles(t *testing.T) {
	serial := NewHistogram(1)
	a, b := NewHistogram(1), NewHistogram(1)
	for i := 0; i < 100; i++ {
		x := float64(i) + 0.5
		serial.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != serial.Count() {
		t.Fatalf("count: merged %d serial %d", a.Count(), serial.Count())
	}
	if math.Abs(a.Mean()-serial.Mean()) > 1e-9 {
		t.Fatalf("mean: merged %g serial %g", a.Mean(), serial.Mean())
	}
	for _, p := range []float64{0, 25, 50, 90, 100} {
		if a.Percentile(p) != serial.Percentile(p) {
			t.Fatalf("p%g: merged %g serial %g", p, a.Percentile(p), serial.Percentile(p))
		}
	}
	// Percentile error is bounded by the bucket width.
	if d := math.Abs(a.Percentile(50) - 50); d > 1 {
		t.Fatalf("p50 = %g, want within 1 of 50", a.Percentile(50))
	}
}

func TestHistogramNegativeValuesAndAddN(t *testing.T) {
	h := NewHistogram(0.5)
	h.Add(-1.2)
	h.AddN(3.0, 4)
	h.AddN(7, 0) // no-op
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	want := (-1.2 + 4*3.0) / 5
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", h.Mean(), want)
	}
	if p := h.Percentile(100); p < 3 || p > 3.5 {
		t.Fatalf("p100 = %g, want in [3, 3.5]", p)
	}
	if p := h.Percentile(0); p < -1.5 || p > -1 {
		t.Fatalf("p0 = %g, want in [-1.5, -1]", p)
	}
}

func TestHistogramMergeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched widths did not panic")
		}
	}()
	NewHistogram(1).Merge(NewHistogram(2))
}

func TestMergeSeriesSortsByX(t *testing.T) {
	a := &Series{}
	a.Add(3, 30)
	a.Add(1, 10)
	b := &Series{}
	b.Add(2, 20)
	m := MergeSeries("merged", a, b, nil)
	if m.Name != "merged" || m.Len() != 3 {
		t.Fatalf("merged series %q len %d", m.Name, m.Len())
	}
	for i, want := range []Point{{1, 10}, {2, 20}, {3, 30}} {
		if m.Points[i] != want {
			t.Fatalf("point %d = %v, want %v", i, m.Points[i], want)
		}
	}
}
