package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events fired in order %v", got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("clock at %v, want 30ms", e.Now())
	}
}

func TestFIFOTies(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order %v, want FIFO", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(time.Millisecond, func() { fired = true })
	ev.Cancel()
	ev.Cancel() // double cancel is a no-op
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	var nilEv *Event
	nilEv.Cancel() // nil cancel must not panic
}

func TestAfter(t *testing.T) {
	e := New()
	var at time.Duration
	e.At(10*time.Millisecond, func() {
		e.After(5*time.Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 15*time.Millisecond {
		t.Errorf("After fired at %v, want 15ms", at)
	}
}

func TestSchedulingInPast(t *testing.T) {
	e := New()
	var at time.Duration
	e.At(10*time.Millisecond, func() {
		// Scheduling before now must not rewind the clock.
		e.At(1*time.Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want clamped to 10ms", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.At(5*time.Millisecond, func() { fired++ })
	e.At(15*time.Millisecond, func() { fired++ })
	e.RunUntil(10 * time.Millisecond)
	if fired != 1 {
		t.Errorf("fired %d events before deadline, want 1", fired)
	}
	if e.Now() != 10*time.Millisecond {
		t.Errorf("clock at %v, want deadline", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Errorf("remaining event lost: fired=%d", fired)
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	e := New()
	ev := e.At(time.Millisecond, func() { t.Error("cancelled event fired") })
	ev.Cancel()
	e.RunUntil(2 * time.Millisecond)
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty engine should return false")
	}
	if e.Pending() != 0 {
		t.Error("empty engine has pending events")
	}
}

func TestNestedScheduling(t *testing.T) {
	// An event chain built during execution runs to completion.
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(time.Millisecond, tick)
		}
	}
	e.After(time.Millisecond, tick)
	e.Run()
	if count != 10 {
		t.Errorf("chain ran %d times, want 10", count)
	}
	if e.Now() != 10*time.Millisecond {
		t.Errorf("clock = %v, want 10ms", e.Now())
	}
}
