package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// engines returns one heap engine and a set of wheel engines with
// deliberately awkward geometries (tiny horizon forcing overflow, slot
// width coarser than typical gaps, fine slots), all of which must
// behave identically.
func wheelGeometries() []struct {
	name string
	mk   func() *Engine
} {
	return []struct {
		name string
		mk   func() *Engine
	}{
		{"slot=1ms,n=16", func() *Engine { return NewWheel(time.Millisecond, 16) }},
		{"slot=100us,n=1024", func() *Engine { return NewWheel(100*time.Microsecond, 1024) }},
		{"slot=1s,n=2", func() *Engine { return NewWheel(time.Second, 2) }},
		{"slot=7ms,n=64", func() *Engine { return NewWheel(7*time.Millisecond, 64) }},
	}
}

// fireLog records one event firing: its identity and the clock when it
// ran.
type fireLog struct {
	id int
	at time.Duration
}

// runScript drives one engine through a randomized schedule /
// cancel / reschedule workload and returns the firing sequence. All
// randomness comes from the engine's own firing order feeding a
// deterministic PRNG, so two engines produce identical logs exactly
// when they fire events in the identical order.
func runScript(e *Engine, seed int64) []fireLog {
	rng := rand.New(rand.NewSource(seed))
	var log []fireLog
	var pending []*Event
	nextID := 0
	var schedule func(at time.Duration)
	schedule = func(at time.Duration) {
		id := nextID
		nextID++
		var ev *Event
		ev = e.At(at, func() {
			log = append(log, fireLog{id: id, at: e.Now()})
			// Each firing randomly schedules successors, cancels a
			// pending event, or reschedules one — the reschedule-heavy
			// mix the wheel exists for.
			switch rng.Intn(5) {
			case 0, 1:
				schedule(e.Now() + time.Duration(rng.Intn(40_000_000)))
			case 2:
				if len(pending) > 0 {
					pending[rng.Intn(len(pending))].Cancel()
				}
			case 3:
				if len(pending) > 0 {
					i := rng.Intn(len(pending))
					pending[i] = e.Reschedule(pending[i], e.Now()+time.Duration(rng.Intn(40_000_000)))
				}
			}
		})
		pending = append(pending, ev)
	}
	// Seed load: a burst of events spread over ~100ms, including exact
	// ties and events far beyond any wheel horizon.
	for i := 0; i < 60; i++ {
		schedule(time.Duration(rng.Intn(100_000_000)))
	}
	for i := 0; i < 5; i++ {
		schedule(3 * time.Millisecond) // exact FIFO ties
		schedule(77 * time.Second)     // deep overflow
	}
	// Interleave RunUntil with scheduling to exercise mid-run inserts
	// into the drained region.
	e.RunUntil(10 * time.Millisecond)
	schedule(e.Now())      // insert at the current instant
	schedule(e.Now() + 10) // 10ns: same slot as "now" on every geometry
	e.Run()
	return log
}

// TestWheelMatchesHeap is the wheel-vs-heap differential: randomized
// schedules (with ties, cancels, reschedules, overflow, and mid-run
// inserts) must fire in the identical order with identical clocks on
// the heap backend and on every wheel geometry.
func TestWheelMatchesHeap(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		want := runScript(New(), seed)
		if len(want) < 60 {
			t.Fatalf("seed %d: degenerate script, only %d firings", seed, len(want))
		}
		for _, g := range wheelGeometries() {
			g := g
			t.Run(fmt.Sprintf("seed=%d/%s", seed, g.name), func(t *testing.T) {
				got := runScript(g.mk(), seed)
				if len(got) != len(want) {
					t.Fatalf("fired %d events, heap fired %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("firing %d: wheel saw %+v, heap saw %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestCancelPendingAndFired covers the Cancel edge cases the wheel must
// preserve: cancelling a pending event suppresses it, cancelling an
// already-fired event is a no-op, and cancelling an event from inside
// the very slot batch being drained still suppresses it.
func TestCancelPendingAndFired(t *testing.T) {
	for _, g := range append(wheelGeometries(), struct {
		name string
		mk   func() *Engine
	}{"heap", New}) {
		g := g
		t.Run(g.name, func(t *testing.T) {
			e := g.mk()
			var fired []string

			// Pending cancel.
			ev := e.At(time.Millisecond, func() { fired = append(fired, "cancelled") })
			ev.Cancel()

			// Cancel of a later same-slot event from an earlier one:
			// victim is already sorted into the ready batch when the
			// canceller runs.
			victim := e.At(2*time.Millisecond+10, func() { fired = append(fired, "victim") })
			e.At(2*time.Millisecond, func() {
				fired = append(fired, "canceller")
				victim.Cancel()
			})

			// Fired cancel: cancelling after the fact must not disturb
			// anything else.
			done := e.At(3*time.Millisecond, func() { fired = append(fired, "done") })
			e.At(4*time.Millisecond, func() {
				done.Cancel() // already fired: no-op
				fired = append(fired, "after")
			})

			e.Run()
			want := []string{"canceller", "done", "after"}
			if len(fired) != len(want) {
				t.Fatalf("fired %v, want %v", fired, want)
			}
			for i := range want {
				if fired[i] != want[i] {
					t.Fatalf("fired %v, want %v", fired, want)
				}
			}
		})
	}
}

// TestFIFOTieOrderUnderReschedule pins the tie rule: a rescheduled
// event takes a fresh sequence number, so among events at the same
// instant it fires after everything already queued — on both backends.
func TestFIFOTieOrderUnderReschedule(t *testing.T) {
	for _, g := range append(wheelGeometries(), struct {
		name string
		mk   func() *Engine
	}{"heap", New}) {
		g := g
		t.Run(g.name, func(t *testing.T) {
			e := g.mk()
			var got []string
			a := e.At(5*time.Millisecond, func() { got = append(got, "a") })
			e.At(5*time.Millisecond, func() { got = append(got, "b") })
			e.At(5*time.Millisecond, func() { got = append(got, "c") })
			// Reschedule a to the same instant: it moves behind b and c.
			e.Reschedule(a, 5*time.Millisecond)
			e.Run()
			if fmt.Sprint(got) != "[b c a]" {
				t.Fatalf("tie order after reschedule: %v, want [b c a]", got)
			}
		})
	}
}

// TestWheelRunUntil checks the deadline semantics on the wheel: events
// past the deadline stay queued, the clock lands exactly on the
// deadline, and scheduling into the already-drained region afterwards
// still fires in time order.
func TestWheelRunUntil(t *testing.T) {
	e := NewWheel(time.Millisecond, 8)
	var got []int
	e.At(time.Millisecond, func() { got = append(got, 1) })
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.RunUntil(10 * time.Millisecond)
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v after RunUntil(10ms)", e.Now())
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("fired %v before the deadline, want [1]", got)
	}
	if e.Pending() != 1 {
		t.Fatalf("%d pending after RunUntil, want 1", e.Pending())
	}
	// Now is mid-wheel: this lands in the drained region of the ring.
	e.At(12*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("fired %v, want [1 2 3]", got)
	}
}

// TestWheelDeepOverflow schedules events many horizons beyond the
// wheel, with nothing in between, and expects the cursor to jump
// rather than walk: completing quickly IS the assertion (a linear walk
// over ~10^9 empty slots would time out), firing order the check.
func TestWheelDeepOverflow(t *testing.T) {
	e := NewWheel(time.Microsecond, 4)
	var got []int
	e.At(2*time.Hour, func() { got = append(got, 2) })
	e.At(time.Hour, func() { got = append(got, 1) })
	e.At(3*time.Hour, func() { got = append(got, 3) })
	e.Run()
	if fmt.Sprint(got) != "[1 2 3]" || e.Now() != 3*time.Hour {
		t.Fatalf("fired %v with clock %v", got, e.Now())
	}
}

// BenchmarkWheelReschedule measures the reschedule-heavy MAC-timer
// pattern on both backends: one long-lived timer per node, constantly
// cancelled and pushed back before it fires.
func BenchmarkWheelReschedule(b *testing.B) {
	bench := func(b *testing.B, e *Engine) {
		const nodes = 1024
		evs := make([]*Event, nodes)
		for i := range evs {
			evs[i] = e.At(time.Duration(i)*time.Microsecond+time.Millisecond, func() {})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := i % nodes
			evs[n] = e.Reschedule(evs[n], e.Now()+time.Millisecond+time.Duration(i%977)*time.Microsecond)
			if i%nodes == nodes-1 {
				e.Step()
			}
		}
	}
	b.Run("heap", func(b *testing.B) { bench(b, New()) })
	b.Run("wheel", func(b *testing.B) { bench(b, NewWheel(64*time.Microsecond, 4096)) })
}
