package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// wheel is the indexed timer-wheel backend (cf. ndn-dpdk's
// container/mintmr). Simulated time divides into fixed-width slots;
// an event whose slot lies within the wheel's horizon (nslots slots
// ahead of the drain cursor) is appended to its ring slot in O(1),
// while farther events overflow into the engine's heap and migrate
// into slots as the cursor advances. Draining one slot sorts its
// events by (at, seq) into the ready batch, which reproduces the heap
// backend's firing order exactly: events in different slots are
// already time-ordered, events in one slot are ordered by the sort,
// and FIFO ties break on the scheduling sequence number in both
// backends.
//
// Cancellation stays lazy (Event.dead), so Cancel and Reschedule are
// O(1); dead events are discarded when their slot drains.
type wheel struct {
	slotDur time.Duration
	slots   [][]*Event
	// cur is the absolute index of the next slot to drain. Slots below
	// cur are empty; events scheduled into the drained region (their
	// time is ≥ now, but now's slot is already draining) insert into
	// ready instead.
	cur int64
	// count is the number of events (live or dead) sitting in slots.
	count int
	// ready is the sorted unfired remainder of the drained slot(s);
	// ready[0] is the engine's next event.
	ready []*Event
}

// NewWheel returns an engine whose queue is a timer wheel of nslots
// slots of slotDur each — the horizon within which scheduling is O(1).
// Events beyond the horizon overflow to a heap and migrate into slots
// as the wheel turns, so any (slotDur, nslots) is correct; the choice
// only tunes constants. Firing order is identical to New's heap engine.
func NewWheel(slotDur time.Duration, nslots int) *Engine {
	if slotDur <= 0 || nslots < 1 {
		panic(fmt.Sprintf("sim: NewWheel(%v, %d): slot duration and count must be positive", slotDur, nslots))
	}
	return &Engine{w: &wheel{slotDur: slotDur, slots: make([][]*Event, nslots)}}
}

// slot maps an absolute time to its absolute slot index.
func (w *wheel) slot(t time.Duration) int64 { return int64(t / w.slotDur) }

func (w *wheel) pending() int { return w.count + len(w.ready) }

// schedule routes one freshly created event (at ≥ engine now).
func (w *wheel) schedule(e *Engine, ev *Event) {
	idx := w.slot(ev.at)
	switch {
	case idx < w.cur:
		// The event's slot is already draining (or drained): it belongs
		// in the ready batch, ordered by (at, seq).
		w.insertReady(ev)
	case idx < w.cur+int64(len(w.slots)):
		w.slots[idx%int64(len(w.slots))] = append(w.slots[idx%int64(len(w.slots))], ev)
		w.count++
	default:
		heap.Push(&e.queue, ev)
	}
}

// insertReady places ev into the sorted ready batch.
func (w *wheel) insertReady(ev *Event) {
	i := sort.Search(len(w.ready), func(i int) bool {
		r := w.ready[i]
		if r.at != ev.at {
			return r.at > ev.at
		}
		return r.seq > ev.seq
	})
	w.ready = append(w.ready, nil)
	copy(w.ready[i+1:], w.ready[i:])
	w.ready[i] = ev
}

// migrate moves overflow-heap events whose slot has entered the wheel
// horizon into their slots (or straight into ready when the cursor has
// already passed their slot).
func (w *wheel) migrate(e *Engine) {
	horizon := w.cur + int64(len(w.slots))
	for len(e.queue) > 0 {
		idx := w.slot(e.queue[0].at)
		if idx >= horizon {
			return
		}
		ev := heap.Pop(&e.queue).(*Event)
		if idx < w.cur {
			w.insertReady(ev)
		} else {
			w.slots[idx%int64(len(w.slots))] = append(w.slots[idx%int64(len(w.slots))], ev)
			w.count++
		}
	}
}

// peekLive returns the next live event without removing it, draining
// slots forward (and discarding dead events) as needed.
func (w *wheel) peekLive(e *Engine) *Event {
	for {
		// Trim fired-over dead events off the ready batch.
		for len(w.ready) > 0 && w.ready[0].dead {
			w.popHead()
		}
		if len(w.ready) > 0 {
			return w.ready[0]
		}
		if w.count == 0 {
			if len(e.queue) == 0 {
				return nil
			}
			// The wheel is empty: jump the cursor straight to the
			// overflow heap's earliest slot instead of walking every
			// empty slot in between.
			if idx := w.slot(e.queue[0].at); idx > w.cur {
				w.cur = idx
			}
		}
		w.migrate(e)
		if w.count == 0 && len(w.ready) == 0 {
			if len(e.queue) == 0 {
				return nil
			}
			continue
		}
		// Drain the cursor slot into ready, sorted by (at, seq).
		ring := w.cur % int64(len(w.slots))
		if s := w.slots[ring]; len(s) > 0 {
			w.ready = append(w.ready[:0], s...)
			for i := range s {
				s[i] = nil
			}
			w.slots[ring] = s[:0]
			w.count -= len(w.ready)
			sort.Slice(w.ready, func(i, j int) bool {
				if w.ready[i].at != w.ready[j].at {
					return w.ready[i].at < w.ready[j].at
				}
				return w.ready[i].seq < w.ready[j].seq
			})
		}
		w.cur++
	}
}

// popHead removes ready[0] (the event peekLive returned, or a dead
// event being trimmed).
func (w *wheel) popHead() {
	w.ready[0] = nil
	w.ready = w.ready[1:]
}
