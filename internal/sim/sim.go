// Package sim provides a small deterministic discrete-event simulation
// engine: a virtual clock and a priority event queue. The MAC-level rate
// adaptation harness, the access-point simulator, and the vehicular
// network simulator all run on top of it.
package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. Events fire in time order; ties fire in
// scheduling (FIFO) order, which keeps runs deterministic.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use
// with the clock at zero.
type Engine struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn to run at the absolute simulated time t. Scheduling in
// the past (t < Now) fires the event at the current time instead, never
// rewinding the clock.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.queue) > 0 {
		// Peek at the earliest live event.
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }
