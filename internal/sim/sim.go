// Package sim provides a small deterministic discrete-event simulation
// engine: a virtual clock and a priority event queue. The MAC-level rate
// adaptation harness, the access-point simulator, the vehicular network
// simulator, and the city-scale scenario engine all run on top of it.
//
// Two queue backends share the one Engine API:
//
//   - New returns the binary-heap engine: O(log n) schedule, simple,
//     and the behavioural oracle.
//   - NewWheel returns the timer-wheel engine (cf. ndn-dpdk's
//     container/mintmr): events within the wheel horizon land in a
//     ring slot in O(1), far events overflow to the heap and migrate
//     into slots as the wheel turns. Cancel+reschedule — the dominant
//     operation of MAC retry/backoff timers — is O(1) amortised.
//
// Both backends fire events in identical (time, scheduling-FIFO) order;
// TestWheelMatchesHeap drives randomized schedules, cancels, and
// reschedules through both and requires the same firing sequence.
package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. Events fire in time order; ties fire in
// scheduling (FIFO) order, which keeps runs deterministic.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use
// with the clock at zero and the heap backend.
type Engine struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
	// w is the optional timer wheel; nil selects the pure-heap backend.
	// With a wheel, queue holds only beyond-horizon overflow events.
	w *wheel
}

// New returns a fresh heap-backed engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn to run at the absolute simulated time t. Scheduling in
// the past (t < Now) fires the event at the current time instead, never
// rewinding the clock.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	if e.w != nil {
		e.w.schedule(e, ev)
	} else {
		heap.Push(&e.queue, ev)
	}
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Reschedule cancels ev and schedules its callback anew at time t,
// returning the new event. The new event takes a fresh scheduling
// sequence number, so among events with equal times it fires after
// those already queued — exactly as a Cancel followed by At. On the
// wheel backend this is O(1). Reschedule of a nil, fired, or cancelled
// event just schedules the callback (nil ev panics on nil fn access
// like any misuse would).
func (e *Engine) Reschedule(ev *Event, t time.Duration) *Event {
	ev.Cancel()
	return e.At(t, ev.fn)
}

// peekLive returns the earliest live queued event without firing it,
// discarding dead events it passes over; nil when the queue is empty.
func (e *Engine) peekLive() *Event {
	if e.w != nil {
		return e.w.peekLive(e)
	}
	for len(e.queue) > 0 {
		if next := e.queue[0]; !next.dead {
			return next
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	ev := e.peekLive()
	if ev == nil {
		return false
	}
	if e.w != nil {
		e.w.popHead()
	} else {
		heap.Pop(&e.queue)
	}
	e.now = ev.at
	ev.fn()
	return true
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	for {
		next := e.peekLive()
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int {
	n := len(e.queue)
	if e.w != nil {
		n += e.w.pending()
	}
	return n
}
