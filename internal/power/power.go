// Package power implements the movement-based radio power saving of
// §5.4: a client that cannot find an access point powers its radio down
// until a movement hint arrives (no point rescanning from the same dead
// spot), and a client moving too fast for useful Wi-Fi (vehicular speed)
// powers down until it slows. The package provides the policy state
// machine and an energy model to quantify the savings.
package power

import (
	"time"
)

// RadioState is the Wi-Fi radio's power state.
type RadioState int

// Radio states.
const (
	// RadioOff draws minimal power.
	RadioOff RadioState = iota
	// RadioScanning searches for access points.
	RadioScanning
	// RadioAssociated is connected and usable.
	RadioAssociated
)

// String names the state.
func (s RadioState) String() string {
	switch s {
	case RadioOff:
		return "off"
	case RadioScanning:
		return "scanning"
	case RadioAssociated:
		return "associated"
	}
	return "unknown"
}

// EnergyModel gives the power draw of each state in milliwatts. Values
// default to typical smartphone Wi-Fi figures.
type EnergyModel struct {
	OffMW, ScanMW, AssociatedMW float64
}

// DefaultEnergyModel returns smartphone-typical draws.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{OffMW: 5, ScanMW: 900, AssociatedMW: 300}
}

// Draw returns the power draw of state s.
func (m EnergyModel) Draw(s RadioState) float64 {
	switch s {
	case RadioOff:
		return m.OffMW
	case RadioScanning:
		return m.ScanMW
	default:
		return m.AssociatedMW
	}
}

// Policy is the hint-aware power manager.
type Policy struct {
	// MaxUsefulSpeed is the speed (m/s) above which Wi-Fi is considered
	// useless and the radio sleeps (default 20 — highway speed).
	MaxUsefulSpeed float64
	// ScanBudget is how long a scan runs before concluding no AP is
	// available (default 3 s).
	ScanBudget time.Duration
	// HintAware enables the §5.4 behaviour; when false, the radio
	// rescans periodically regardless of hints (RescanEvery).
	HintAware bool
	// RescanEvery is the hint-oblivious rescan period (default 30 s).
	RescanEvery time.Duration

	state     RadioState
	scanSince time.Duration
	offSince  time.Duration
	started   bool
}

// NewPolicy returns a policy with defaults.
func NewPolicy(hintAware bool) *Policy {
	return &Policy{
		MaxUsefulSpeed: 20,
		ScanBudget:     3 * time.Second,
		HintAware:      hintAware,
		RescanEvery:    30 * time.Second,
	}
}

// Input is the environment at one policy step.
type Input struct {
	Now time.Duration
	// Moving is the movement hint.
	Moving bool
	// SpeedMps is the speed hint.
	SpeedMps float64
	// APAvailable is whether a scan would find an access point.
	APAvailable bool
}

// State returns the current radio state.
func (p *Policy) State() RadioState { return p.state }

// Step advances the policy and returns the new state.
//
// Hint-aware rules (§5.4): scanning with no AP found and no movement →
// power down until a movement hint; speed above MaxUsefulSpeed → power
// down until it drops. Hint-oblivious: rescan every RescanEvery.
func (p *Policy) Step(in Input) RadioState {
	if !p.started {
		p.started = true
		p.state = RadioScanning
		p.scanSince = in.Now
	}
	tooFast := in.SpeedMps > p.MaxUsefulSpeed
	switch p.state {
	case RadioAssociated:
		switch {
		case p.HintAware && tooFast:
			p.toOff(in.Now)
		case !in.APAvailable:
			p.toScan(in.Now)
		}
	case RadioScanning:
		switch {
		case p.HintAware && tooFast:
			p.toOff(in.Now)
		case in.APAvailable:
			p.state = RadioAssociated
		case in.Now-p.scanSince >= p.ScanBudget:
			// Scan exhausted with no AP.
			p.toOff(in.Now)
		}
	case RadioOff:
		switch {
		case p.HintAware:
			// Wake on movement hint (position changed, so an AP may now
			// be reachable) — but not while moving too fast.
			if in.Moving && !tooFast {
				p.toScan(in.Now)
			}
		case in.Now-p.offSince >= p.RescanEvery:
			p.toScan(in.Now)
		}
	}
	return p.state
}

func (p *Policy) toOff(now time.Duration) {
	p.state = RadioOff
	p.offSince = now
}

func (p *Policy) toScan(now time.Duration) {
	p.state = RadioScanning
	p.scanSince = now
}

// SimResult summarises one policy simulation.
type SimResult struct {
	// EnergyMJ is total energy in millijoules.
	EnergyMJ float64
	// TimeIn accumulates time per state.
	TimeIn [3]time.Duration
	// MissedConnectivity is time an AP was reachable (at usable speed)
	// while the radio was off or still scanning — the cost side of the
	// §5.4 trade-off.
	MissedConnectivity time.Duration
}

// Simulate runs the policy over a scenario sampled at the given step,
// charging energy per the model.
func Simulate(p *Policy, model EnergyModel, step time.Duration, total time.Duration, scenario func(time.Duration) Input) SimResult {
	var res SimResult
	if step <= 0 {
		step = 100 * time.Millisecond
	}
	for now := time.Duration(0); now < total; now += step {
		in := scenario(now)
		in.Now = now
		st := p.Step(in)
		res.TimeIn[st] += step
		res.EnergyMJ += model.Draw(st) * step.Seconds()
		if in.APAvailable && in.SpeedMps <= p.MaxUsefulSpeed && st != RadioAssociated {
			res.MissedConnectivity += step
		}
	}
	return res
}
