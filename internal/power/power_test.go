package power

import (
	"testing"
	"time"
)

func TestRadioStateString(t *testing.T) {
	if RadioOff.String() != "off" || RadioScanning.String() != "scanning" ||
		RadioAssociated.String() != "associated" {
		t.Error("state names wrong")
	}
}

func TestEnergyModelDraw(t *testing.T) {
	m := DefaultEnergyModel()
	if m.Draw(RadioScanning) <= m.Draw(RadioAssociated) {
		t.Error("scanning should draw more than associated")
	}
	if m.Draw(RadioOff) >= m.Draw(RadioAssociated) {
		t.Error("off should draw least")
	}
}

func TestPolicyAssociatesWhenAPAvailable(t *testing.T) {
	p := NewPolicy(true)
	st := p.Step(Input{Now: 0, APAvailable: true})
	if st != RadioAssociated {
		t.Errorf("state = %v, want associated", st)
	}
}

func TestHintAwareSleepsOnFailedScan(t *testing.T) {
	p := NewPolicy(true)
	now := time.Duration(0)
	for i := 0; i < 50; i++ {
		p.Step(Input{Now: now, APAvailable: false})
		now += 100 * time.Millisecond
	}
	if p.State() != RadioOff {
		t.Errorf("state after exhausted scan = %v, want off", p.State())
	}
	// Still off while nothing moves.
	for i := 0; i < 50; i++ {
		p.Step(Input{Now: now, APAvailable: true}) // AP reachable but no hint
		now += 100 * time.Millisecond
	}
	if p.State() != RadioOff {
		t.Errorf("hint-aware radio woke without a movement hint: %v", p.State())
	}
	// A movement hint wakes it.
	p.Step(Input{Now: now, Moving: true, APAvailable: true})
	if p.State() != RadioScanning {
		t.Errorf("state after movement hint = %v, want scanning", p.State())
	}
}

func TestHintAwareSleepsAtSpeed(t *testing.T) {
	p := NewPolicy(true)
	p.Step(Input{Now: 0, APAvailable: true}) // associated
	p.Step(Input{Now: time.Second, Moving: true, SpeedMps: 30, APAvailable: true})
	if p.State() != RadioOff {
		t.Errorf("state at 30 m/s = %v, want off", p.State())
	}
	// Stays off while fast even though moving.
	p.Step(Input{Now: 2 * time.Second, Moving: true, SpeedMps: 30, APAvailable: true})
	if p.State() != RadioOff {
		t.Error("woke at highway speed")
	}
	// Slows down → movement hint wakes it.
	p.Step(Input{Now: 3 * time.Second, Moving: true, SpeedMps: 1.5, APAvailable: true})
	if p.State() != RadioScanning {
		t.Errorf("state after slowing = %v, want scanning", p.State())
	}
}

func TestObliviousPolicyRescans(t *testing.T) {
	p := NewPolicy(false)
	p.RescanEvery = 5 * time.Second
	now := time.Duration(0)
	// Exhaust the initial scan.
	for p.State() != RadioOff {
		p.Step(Input{Now: now, APAvailable: false})
		now += 500 * time.Millisecond
	}
	offAt := now
	// The oblivious policy wakes by timer, no hint needed.
	woke := false
	for now < offAt+10*time.Second {
		if p.Step(Input{Now: now, APAvailable: false}) == RadioScanning {
			woke = true
			break
		}
		now += 500 * time.Millisecond
	}
	if !woke {
		t.Error("hint-oblivious policy never rescanned")
	}
}

func TestSimulateAccounting(t *testing.T) {
	p := NewPolicy(true)
	model := DefaultEnergyModel()
	res := Simulate(p, model, 100*time.Millisecond, 10*time.Second, func(time.Duration) Input {
		return Input{APAvailable: true}
	})
	var total time.Duration
	for _, d := range res.TimeIn {
		total += d
	}
	if total != 10*time.Second {
		t.Errorf("state times sum to %v, want 10s", total)
	}
	// Always-available AP at walking speed: mostly associated, tiny
	// energy relative to scanning the whole time.
	if res.TimeIn[RadioAssociated] < 9*time.Second {
		t.Errorf("associated only %v", res.TimeIn[RadioAssociated])
	}
	wantMax := model.ScanMW * 10 // all-scanning upper bound in mJ
	if res.EnergyMJ <= 0 || res.EnergyMJ >= wantMax {
		t.Errorf("energy = %v mJ", res.EnergyMJ)
	}
	if res.MissedConnectivity > time.Second {
		t.Errorf("missed connectivity %v with an always-available AP", res.MissedConnectivity)
	}
}

func TestHintAwareSavesEnergyInDeadSpot(t *testing.T) {
	scenario := func(time.Duration) Input {
		return Input{Moving: false, APAvailable: false}
	}
	model := DefaultEnergyModel()
	aware := Simulate(NewPolicy(true), model, 100*time.Millisecond, 5*time.Minute, scenario)
	naive := Simulate(NewPolicy(false), model, 100*time.Millisecond, 5*time.Minute, scenario)
	if aware.EnergyMJ >= naive.EnergyMJ {
		t.Errorf("hint-aware %v mJ not below oblivious %v mJ", aware.EnergyMJ, naive.EnergyMJ)
	}
}
