package scenario

import (
	"math"
	"testing"
	"time"

	"repro/internal/ap"
	"repro/internal/channel"
	"repro/internal/parallel"
	"repro/internal/rate"
	"repro/internal/ratesim"
	"repro/internal/sensors"
)

// testScenarios is the paper-scale differential suite: small enough to
// run the slot-driven oracle, varied enough to cover static herds,
// walking and vehicular mobility, multi-class mixes, route jitter, and
// coverage gaps.
func testScenarios() []Scenario {
	return []Scenario{
		{
			Name: "static-office",
			Grid: APGrid{Side: 3, Spacing: 160},
			Herds: []Herd{{
				Name: "desks", Clients: 40,
				Traffic: TrafficMix{{Name: "web", Bytes: 1000, Interval: 200 * time.Millisecond}},
			}},
			Duration: 10 * time.Second,
			Seed:     7,
		},
		{
			Name: "walkers",
			Grid: APGrid{Side: 4, Spacing: 180},
			Herds: []Herd{
				{
					Name: "pedestrians", Clients: 30,
					Mobility: MobilityProfile{SpeedMps: 1.4, SpeedJitter: 0.3, MeanSegment: 60},
					Traffic: TrafficMix{
						{Name: "voip", Bytes: 200, Interval: 60 * time.Millisecond},
						{Name: "web", Bytes: 1400, Interval: 400 * time.Millisecond},
					},
				},
				{
					Name: "kiosks", Clients: 10,
					Traffic: TrafficMix{{Name: "telemetry", Bytes: 600, Interval: 500 * time.Millisecond}},
				},
			},
			Duration: 12 * time.Second,
			Seed:     11,
		},
		{
			Name: "taxis-manhattan",
			Grid: APGrid{Side: 5, Spacing: 240}, // sparse: real coverage gaps
			Herds: []Herd{{
				Name: "taxis", Clients: 25,
				Mobility: MobilityProfile{SpeedMps: 9, SpeedJitter: 1.5, MeanSegment: 300, RoadHeadings: 4, RouteJitterDeg: 10},
				Traffic:  TrafficMix{{Name: "probe", Bytes: 1000, Interval: 100 * time.Millisecond}},
			}},
			Duration: 15 * time.Second,
			Seed:     23,
		},
	}
}

// TestEventedMatchesSlotted is the tentpole differential: on
// contention-free scenarios the event-driven engine and the slot-driven
// oracle must produce byte-identical Metrics.
func TestEventedMatchesSlotted(t *testing.T) {
	for _, sc := range testScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			ev := Run(sc)
			sl := RunSlotted(sc)
			if ev.Metrics != sl.Metrics {
				t.Fatalf("engines diverge:\nevented: %+v\nslotted: %+v", ev.Metrics, sl.Metrics)
			}
			if ev.Events != sl.Events {
				t.Fatalf("evented processed %d arrivals, slotted %d", ev.Events, sl.Events)
			}
			if ev.Metrics.Arrivals == 0 || ev.Metrics.Delivered == 0 {
				t.Fatalf("degenerate scenario: %+v", ev.Metrics)
			}
		})
	}
}

// TestEventedDeterministic pins seeding: same seed → identical result,
// different seed → different result.
func TestEventedDeterministic(t *testing.T) {
	sc := testScenarios()[1]
	a, b := Run(sc), Run(sc)
	if a.Metrics != b.Metrics {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	sc.Seed++
	c := Run(sc)
	if a.Metrics == c.Metrics {
		t.Fatalf("seed change did not move the metrics: %+v", a.Metrics)
	}
}

// TestContentionStatistical compares the engines on a contended
// scenario: medium-acquisition order differs between them, so the
// comparison is statistical — totals within a few percent, deferral
// observed by both.
func TestContentionStatistical(t *testing.T) {
	sc := testScenarios()[1]
	sc.Name = "walkers-contended"
	sc.Contention = true
	ev := Run(sc)
	sl := RunSlotted(sc)
	if ev.Metrics.DeferredNs == 0 || sl.Metrics.DeferredNs == 0 {
		t.Fatalf("expected medium deferral on both engines: evented %d ns, slotted %d ns",
			ev.Metrics.DeferredNs, sl.Metrics.DeferredNs)
	}
	if ev.Metrics.Arrivals != sl.Metrics.Arrivals {
		t.Fatalf("arrival schedules must still agree: %d vs %d", ev.Metrics.Arrivals, sl.Metrics.Arrivals)
	}
	rel := func(a, b int64) float64 {
		return math.Abs(float64(a)-float64(b)) / math.Max(float64(b), 1)
	}
	if d := rel(ev.Metrics.Delivered, sl.Metrics.Delivered); d > 0.05 {
		t.Fatalf("delivered diverged %.1f%%: evented %d, slotted %d", 100*d, ev.Metrics.Delivered, sl.Metrics.Delivered)
	}
	if d := rel(ev.Metrics.AirtimeNs, sl.Metrics.AirtimeNs); d > 0.05 {
		t.Fatalf("airtime diverged %.1f%%: evented %d, slotted %d", 100*d, ev.Metrics.AirtimeNs, sl.Metrics.AirtimeNs)
	}
}

// TestChunkUnionMatchesRun is the sharding differential: running any
// disjoint chunk cover of the client population and merging in chunk
// order must reproduce the full run byte-for-byte. This is the property
// that lets one city-scale trial split into fleet sub-trials.
func TestChunkUnionMatchesRun(t *testing.T) {
	for _, sc := range testScenarios() {
		want := Run(sc)
		n := sc.ClientCount()
		for _, chunks := range []int{1, 3, 7} {
			var got Metrics
			var events int64
			for c := 0; c < chunks; c++ {
				lo, hi := c*n/chunks, (c+1)*n/chunks
				res := RunChunk(sc, lo, hi)
				got.Merge(res.Metrics)
				events += res.Events
			}
			if got != want.Metrics || events != want.Events {
				t.Fatalf("%s in %d chunks diverged from full run:\nchunked: %+v (%d events)\nfull:    %+v (%d events)",
					sc.Name, chunks, got, events, want.Metrics, want.Events)
			}
		}
	}
}

// TestChunkRefusesContention pins the guard: chunking a contended
// scenario would silently decouple clients, so it must panic.
func TestChunkRefusesContention(t *testing.T) {
	sc := testScenarios()[0]
	sc.Contention = true
	defer func() {
		if recover() == nil {
			t.Fatal("RunChunk on a contended scenario did not panic")
		}
	}()
	RunChunk(sc, 0, 10)
}

// TestHandoffsOnMobileScenarios checks the mobility → handoff pipeline:
// moving herds hand off, static herds never do.
func TestHandoffsOnMobileScenarios(t *testing.T) {
	scs := testScenarios()
	if hs := Run(scs[0]).Metrics.Handoffs; hs != 0 {
		t.Fatalf("static scenario produced %d handoffs", hs)
	}
	if hs := Run(scs[2]).Metrics.Handoffs; hs == 0 {
		t.Fatal("vehicular scenario produced no handoffs")
	}
}

// TestGridMatchesLinear drives the spatial index against the full
// linear scan at random query points, including points in coverage
// gaps.
func TestGridMatchesLinear(t *testing.T) {
	for _, g := range []struct {
		grid  APGrid
		radio Radio
	}{
		{APGrid{Side: 8, Spacing: 180}, DefaultRadio()},
		{APGrid{Side: 3, Spacing: 300}, DefaultRadio()}, // sparse, gaps
		{APGrid{Side: 1, Spacing: 100}, DefaultRadio()}, // degenerate 1-cell wheel
		{APGrid{Side: 20, Spacing: 60}, Radio{RangeM: 90, RefSNR: 68, PathLossExp: 3, SNRNoise: 1.5, RetryLimit: 3}},
	} {
		ix := newAPIndex(g.grid, g.radio)
		rng := parallel.NewRNG(99)
		area := float64(g.grid.Side) * g.grid.Spacing
		for i := 0; i < 5000; i++ {
			x := rng.Float64() * area
			y := rng.Float64() * area
			gb, gd := ix.best(x, y)
			lb, ld := ix.bestLinear(x, y)
			if gb != lb || gd != ld {
				t.Fatalf("grid %dx%d spacing %g at (%.2f, %.2f): grid picked AP %d (d²=%g), linear AP %d (d²=%g)",
					g.grid.Side, g.grid.Side, g.grid.Spacing, x, y, gb, gd, lb, ld)
			}
		}
	}
}

// TestReplayLinkMatchesRatesim proves the event engine hosts the
// paper's exact MAC loop: for every Chapter 3 adapter, on office and
// vehicular traces, under UDP and TCP, ReplayLink's Result equals
// ratesim.Run's byte for byte.
func TestReplayLinkMatchesRatesim(t *testing.T) {
	mk := func(name string, seed int64) rate.Adapter {
		switch name {
		case "HintAware":
			return rate.NewHintAware(seed)
		case "RapidSample":
			return rate.NewRapidSample()
		case "SampleRate":
			return rate.NewSampleRate(seed)
		case "RRAA":
			return rate.NewRRAA()
		case "RBAR":
			return rate.NewRBAR()
		case "CHARM":
			return rate.NewCHARM()
		}
		panic(name)
	}
	traces := []struct {
		name string
		cfg  channel.Config
	}{
		{"office-mixed", channel.Config{
			Env:   channel.Office,
			Sched: sensors.AlternatingSchedule(8*time.Second, 4*time.Second, sensors.Walk, false),
			Total: 8 * time.Second,
			Seed:  41,
		}},
		{"vehicular", channel.Config{
			Env:   channel.Vehicular,
			Sched: sensors.Schedule{{Start: 0, End: 6 * time.Second, Mode: sensors.Vehicle}},
			Total: 6 * time.Second,
			Seed:  43,
		}},
	}
	for _, trc := range traces {
		tr := channel.Generate(trc.cfg)
		for _, proto := range []string{"HintAware", "RapidSample", "SampleRate", "RRAA", "RBAR", "CHARM"} {
			for _, wl := range []ratesim.Workload{ratesim.UDP, ratesim.TCP} {
				base := ratesim.Config{Trace: tr, Workload: wl, Seed: 5}
				base.Adapter = mk(proto, 17)
				want := ratesim.Run(base)
				base.Adapter = mk(proto, 17) // fresh adapter, same state
				got := ReplayLink(base)
				if got != want {
					t.Fatalf("%s/%s/%s: replay diverged\nratesim: %+v\nreplay:  %+v", trc.name, proto, wl, want, got)
				}
				if want.Sent == 0 {
					t.Fatalf("%s/%s/%s: degenerate run", trc.name, proto, wl)
				}
			}
		}
	}
}

// TestReplayTwoClientsMatchesAP proves the same for the Chapter 5 AP
// loop across every policy × prune combination: totals, prune time,
// and each per-second series point must be identical.
func TestReplayTwoClientsMatchesAP(t *testing.T) {
	for _, pol := range []ap.SchedulerPolicy{ap.FrameFair, ap.TimeFair, ap.MobileFavored} {
		for _, hint := range []bool{false, true} {
			cfg := ap.TwoClientConfig{Policy: pol}
			if hint {
				cfg.Prune = ap.PruneConfig{Timeout: 10 * time.Second, HintAware: true, ProbeEvery: time.Second}
			}
			want := ap.RunTwoClients(cfg)
			got := ReplayTwoClients(cfg)
			if got.Total1 != want.Total1 || got.Total2 != want.Total2 || got.PruneAt != want.PruneAt {
				t.Fatalf("%v hint=%v: totals diverged: got (%.6f, %.6f, %v), want (%.6f, %.6f, %v)",
					pol, hint, got.Total1, got.Total2, got.PruneAt, want.Total1, want.Total2, want.PruneAt)
			}
			for i, s := range []struct{ got, want interface{ Len() int } }{
				{got.Client1, want.Client1},
				{got.Client2, want.Client2},
			} {
				if s.got.Len() != s.want.Len() {
					t.Fatalf("%v hint=%v: series %d length %d vs %d", pol, hint, i, s.got.Len(), s.want.Len())
				}
			}
			for i := range want.Client1.Points {
				if got.Client1.Points[i] != want.Client1.Points[i] || got.Client2.Points[i] != want.Client2.Points[i] {
					t.Fatalf("%v hint=%v: series point %d diverged", pol, hint, i)
				}
			}
			if want.Total1 == 0 {
				t.Fatalf("%v hint=%v: degenerate run", pol, hint)
			}
		}
	}
}

// TestIdleLinksAreFree pins the event-engine scaling claim: growing the
// city (more APs, more area) at fixed population and traffic leaves the
// processed event count unchanged — idle links generate no events.
func TestIdleLinksAreFree(t *testing.T) {
	base := Scenario{
		Name: "sweep",
		Grid: APGrid{Side: 4, Spacing: 180},
		Herds: []Herd{{
			Name: "walkers", Clients: 50,
			Mobility: MobilityProfile{SpeedMps: 1.4, MeanSegment: 80},
			Traffic:  TrafficMix{{Name: "web", Bytes: 1000, Interval: 250 * time.Millisecond}},
		}},
		Duration: 5 * time.Second,
		Seed:     3,
	}
	small := Run(base)
	big := base
	big.Grid.Side = 16 // 16× the APs, same population
	large := Run(big)
	if small.Events != large.Events {
		t.Fatalf("event count should track traffic, not APs: %d events with %d APs, %d with %d",
			small.Events, small.APs, large.Events, large.APs)
	}
}
