package scenario

import (
	"math"
	"time"

	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sim"
)

// compiledClass is one traffic class with its phy tables resolved.
type compiledClass struct {
	interval time.Duration
	table    *phy.ErrorTable
	airt     *phy.Airtimes
}

// compiledHerd is one herd with profile and classes resolved.
type compiledHerd struct {
	prof    MobilityProfile
	classes []compiledClass
}

// state is everything a run shares across clients: the spec, the AP
// index, and (with contention) the per-AP medium occupancy.
type state struct {
	sc    Scenario
	herds []compiledHerd
	ix    *apIndex
	// look resolves the serving AP: the grid index in the event engine,
	// the full linear scan in the slot-driven oracle.
	look func(x, y float64) (int32, float64)
	// busy[ap] is when the AP's medium frees (contention only).
	busy []time.Duration
}

// client is one roaming station. All its randomness comes from its own
// splitmix64 stream, and its arrivals are processed in time order by
// both engines, so its entire trajectory — movement, rate picks, packet
// fates — is a pure function of its seed, independent of every other
// client (until contention couples them through state.busy).
type client struct {
	rng   parallel.RNG
	herd  int32
	ap    int32
	x, y  float64
	hdg   float64 // heading, radians clockwise from north
	speed float64 // m/s on the current leg
	togo  float64 // metres remaining on the current leg
	at    time.Duration
	// next[k] is class k's next arrival time.
	next []time.Duration
	m    Metrics
}

// compile applies defaults and builds the shared state and the clients
// with global index in [lo, hi); every client's seed and init draws
// come from its own stream keyed by global index, so a chunk's clients
// are bit-identical to the same clients of a full compile.
func compile(sc Scenario, lo, hi int) (*state, []client) {
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	if sc.Duration <= 0 {
		sc.Duration = 30 * time.Second
	}
	if sc.SlotDur <= 0 {
		sc.SlotDur = 100 * time.Millisecond
	}
	if sc.Radio.RangeM <= 0 {
		sc.Radio = DefaultRadio()
	}
	st := &state{sc: sc, ix: newAPIndex(sc.Grid, sc.Radio)}
	if sc.Contention {
		st.busy = make([]time.Duration, sc.APCount())
	}
	for _, h := range sc.Herds {
		ch := compiledHerd{prof: h.Mobility}
		for _, tc := range h.Traffic {
			ch.classes = append(ch.classes, compiledClass{
				interval: tc.Interval,
				table:    phy.ErrorTableFor(tc.Bytes),
				airt:     phy.AirtimesFor(tc.Bytes),
			})
		}
		st.herds = append(st.herds, ch)
	}

	area := sc.Area()
	stream := parallel.NewSeedStream(sc.Seed).Derive("scenario/" + sc.Name + "/clients")
	clients := make([]client, 0, hi-lo)
	i := 0
	for hix, h := range sc.Herds {
		for j := 0; j < h.Clients; j++ {
			gi := i
			i++
			if gi < lo || gi >= hi {
				continue
			}
			clients = append(clients, client{})
			c := &clients[len(clients)-1]
			c.rng = parallel.NewRNG(stream.Seed(gi))
			c.herd = int32(hix)
			c.ap = -1
			c.x = c.rng.Float64() * area.Width
			c.y = c.rng.Float64() * area.Height
			if !h.Mobility.Static() {
				c.hdg = c.newHeading(&st.herds[hix].prof)
				c.speed = c.newSpeed(&st.herds[hix].prof)
				c.togo = c.newLeg(&st.herds[hix].prof)
			}
			c.next = make([]time.Duration, len(h.Traffic))
			for k, tc := range h.Traffic {
				// Random phase inside the first interval, so a herd's
				// clients do not transmit in lockstep.
				c.next[k] = time.Duration(c.rng.Float64() * float64(tc.Interval))
			}
		}
	}
	return st, clients
}

// newHeading draws a road azimuth per the profile: continuous, or
// quantised with route jitter.
func (c *client) newHeading(p *MobilityProfile) float64 {
	if p.RoadHeadings > 0 {
		road := float64(int(c.rng.Float64()*float64(p.RoadHeadings))) * (2 * math.Pi / float64(p.RoadHeadings))
		if p.RouteJitterDeg > 0 {
			road += (c.rng.Float64() - 0.5) * p.RouteJitterDeg * math.Pi / 180
		}
		return road
	}
	return c.rng.Float64() * 2 * math.Pi
}

// newSpeed draws the leg speed, floored at walking pace like
// internal/vehicular.
func (c *client) newSpeed(p *MobilityProfile) float64 {
	return math.Max(2, p.SpeedMps+c.rng.NormFloat64()*p.SpeedJitter)
}

// newLeg draws an exponential leg length (parallel.RNG has no
// ExpFloat64; inverse transform of the uniform does the same).
func (c *client) newLeg(p *MobilityProfile) float64 {
	return -math.Log(1-c.rng.Float64()) * p.MeanSegment
}

// advance moves the client to time to: straight along its current leg,
// turning onto fresh legs as they end, wrapping toroidally. The draw
// sequence depends only on the client's own arrival times, which both
// engines visit identically.
func (c *client) advance(to time.Duration, p *MobilityProfile, area Area) {
	if p.Static() || to <= c.at {
		c.at = to
		return
	}
	dist := c.speed * (to - c.at).Seconds()
	c.at = to
	for dist > 0 {
		move := dist
		if move > c.togo {
			move = c.togo
		}
		c.x = wrap(c.x+move*math.Sin(c.hdg), area.Width)
		c.y = wrap(c.y+move*math.Cos(c.hdg), area.Height)
		c.togo -= move
		dist -= move
		if c.togo <= 0 {
			c.hdg = c.newHeading(p)
			c.speed = c.newSpeed(p)
			c.togo = c.newLeg(p)
		}
	}
}

func wrap(x, max float64) float64 {
	x = math.Mod(x, max)
	if x < 0 {
		x += max
	}
	return x
}

// nextArrival returns the client's earliest pending arrival and its
// class (lowest class wins ties), the one total order both engines
// walk.
func (c *client) nextArrival() (time.Duration, int) {
	bt, bk := c.next[0], 0
	for k := 1; k < len(c.next); k++ {
		if c.next[k] < bt {
			bt, bk = c.next[k], k
		}
	}
	return bt, bk
}

// step processes one packet arrival of class k at time t: move, pick
// the serving AP, run the MAC exchange, schedule the class's next
// arrival.
func (c *client) step(t time.Duration, k int, st *state) {
	h := &st.herds[c.herd]
	c.advance(t, &h.prof, st.sc.Area())
	best, d2 := st.look(c.x, c.y)
	if best != c.ap {
		if best >= 0 && c.ap >= 0 {
			c.m.Handoffs++
		}
		c.ap = best
	}
	cl := &h.classes[k]
	c.m.Arrivals++
	if best < 0 {
		c.m.OutOfRange++
		c.m.Lost++
	} else {
		radio := &st.sc.Radio
		snr := radio.RefSNR - 10*radio.PathLossExp*math.Log10(math.Max(math.Sqrt(d2), 1))
		meas := snr + c.rng.NormFloat64()*radio.SNRNoise
		r := cl.table.BestRate(meas)
		p := cl.table.DeliveryProb(r, snr)
		tx := t
		if st.busy != nil {
			if b := st.busy[best]; b > tx {
				c.m.DeferredNs += int64(b - tx)
				tx = b
			}
		}
		delivered := false
		for a := 0; a <= radio.RetryLimit; a++ {
			c.m.Attempts++
			c.m.RateCounts[r]++
			if c.rng.Float64() < p {
				c.m.AirtimeNs += int64(cl.airt.Frame[r])
				tx += cl.airt.Frame[r]
				delivered = true
				break
			}
			c.m.AirtimeNs += int64(cl.airt.Failed[r])
			tx += cl.airt.Failed[r]
		}
		if st.busy != nil {
			st.busy[best] = tx
		}
		if delivered {
			c.m.Delivered++
		} else {
			c.m.Lost++
		}
	}
	c.next[k] = t + cl.interval
}

// finish merges per-client metrics in client order — identical grouping
// in both engines — into the Result.
func finish(st *state, clients []client, events int64) Result {
	res := Result{Events: events, APs: st.sc.APCount(), Clients: len(clients)}
	for i := range clients {
		res.Metrics.add(&clients[i].m)
	}
	return res
}

// NetDisplacement measures the mean toroidal net displacement of n
// independent walkers following profile p for dur. The oracle
// differential uses it to compare the scenario road model against
// internal/vehicular's slot-stepped one: with matched speed and
// segment parameters the two must produce statistically
// indistinguishable displacement.
func NetDisplacement(p MobilityProfile, area Area, seed int64, n int, dur time.Duration) float64 {
	stream := parallel.NewSeedStream(seed).Derive("scenario/netdisp")
	var sum float64
	for i := 0; i < n; i++ {
		c := client{rng: parallel.NewRNG(stream.Seed(i))}
		c.x = c.rng.Float64() * area.Width
		c.y = c.rng.Float64() * area.Height
		x0, y0 := c.x, c.y
		c.hdg = c.newHeading(&p)
		c.speed = c.newSpeed(&p)
		c.togo = c.newLeg(&p)
		c.advance(dur, &p, area)
		dx := toroidalDelta(c.x-x0, area.Width)
		dy := toroidalDelta(c.y-y0, area.Height)
		sum += math.Sqrt(dx*dx + dy*dy)
	}
	return sum / float64(n)
}

// toroidalDelta folds a coordinate difference onto the torus' shortest
// arc.
func toroidalDelta(d, size float64) float64 {
	if d > size/2 {
		d -= size
	}
	if d < -size/2 {
		d += size
	}
	return d
}

// wheelFor sizes the timer wheel to the scenario's traffic: slots
// around a quarter of the shortest inter-arrival, a horizon of a few
// thousand slots, overflow handling the rest.
func wheelFor(sc Scenario) *sim.Engine {
	min := time.Duration(math.MaxInt64)
	for _, h := range sc.Herds {
		for _, tc := range h.Traffic {
			if tc.Interval < min {
				min = tc.Interval
			}
		}
	}
	slot := min / 4
	if slot < 100*time.Microsecond {
		slot = 100 * time.Microsecond
	}
	if slot > 10*time.Millisecond {
		slot = 10 * time.Millisecond
	}
	return sim.NewWheel(slot, 4096)
}

// Run executes the scenario on the event-driven engine: every client
// self-schedules its next arrival on the timer wheel and resolves its
// AP through the spatial grid index. Cost is proportional to packet
// events — APs and clients that exchange no traffic contribute nothing
// but memory.
func Run(sc Scenario) Result {
	return RunChunk(sc, 0, sc.ClientCount())
}

// RunChunk runs only the clients with global index in [lo, hi) on the
// event engine. Because every client's randomness is its own indexed
// stream, merging the Metrics of any disjoint chunk cover of
// [0, ClientCount()) — in chunk order — reproduces Run's Metrics
// byte-for-byte. That is what lets a single city-scale trial shard
// across fleet workers as sub-trials. Contention couples clients
// through the shared medium, so chunking a contended scenario would
// silently change its physics; it panics instead.
func RunChunk(sc Scenario, lo, hi int) Result {
	if sc.Contention && (lo != 0 || hi != sc.ClientCount()) {
		panic("scenario: RunChunk on a contended scenario (clients are coupled; chunks would not compose)")
	}
	st, clients := compile(sc, lo, hi)
	st.look = st.ix.best
	eng := wheelFor(st.sc)
	var events int64
	fns := make([]func(), len(clients))
	for i := range clients {
		c := &clients[i]
		fns[i] = func() {
			t, k := c.nextArrival()
			c.step(t, k, st)
			events++
			if nt, _ := c.nextArrival(); nt < st.sc.Duration {
				eng.At(nt, fns[i])
			}
		}
	}
	for i := range clients {
		if t, _ := clients[i].nextArrival(); t < st.sc.Duration {
			eng.At(t, fns[i])
		}
	}
	eng.RunUntil(st.sc.Duration)
	return finish(st, clients, events)
}

// RunSlotted executes the scenario on the slot-driven oracle: an outer
// loop over fixed slots, an inner loop over every client per slot, and
// a full linear AP scan per packet — cost scales with time × clients ×
// APs, the paper-scale structure the event engine exists to escape.
// For contention-free scenarios its Metrics are byte-identical to
// Run's.
func RunSlotted(sc Scenario) Result {
	st, clients := compile(sc, 0, sc.ClientCount())
	st.look = st.ix.bestLinear
	var events int64
	for start := time.Duration(0); start < st.sc.Duration; start += st.sc.SlotDur {
		end := start + st.sc.SlotDur
		if end > st.sc.Duration {
			end = st.sc.Duration
		}
		for i := range clients {
			c := &clients[i]
			for {
				t, k := c.nextArrival()
				if t >= end {
					break
				}
				c.step(t, k, st)
				events++
			}
		}
	}
	return finish(st, clients, events)
}
