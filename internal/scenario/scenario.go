// Package scenario is the declarative city-scale scenario engine: a
// small DSL (AP grid, client herds, mobility profiles, ConCap-style
// traffic mixes) compiled onto the discrete-event core of internal/sim.
//
// The same compiled scenario runs on two engines:
//
//   - Run is the event-driven engine. Each client self-schedules its
//     next packet arrival on a timer wheel (sim.NewWheel) and resolves
//     its serving AP through a toroidal spatial grid index, so cost
//     scales with packet events, not with simulated time × nodes ×
//     APs — idle links generate no work at all.
//   - RunSlotted is the slot-driven oracle in the style of the paper's
//     runners (internal/ratesim, internal/ap, internal/vehicular): an
//     outer loop over fixed time slots, an inner loop over every
//     client, and a linear scan over every AP per packet.
//
// Every client draws all its randomness from its own splitmix64 stream
// seeded by global client index, and every metric inside Metrics is an
// integer counter, so for contention-free scenarios the two engines
// produce byte-identical Metrics even though they process clients in
// different orders (TestEventedMatchesSlotted). Contention couples
// clients through the shared per-AP medium, whose acquisition order is
// engine-dependent, so contended runs are compared statistically
// instead.
//
// ReplayLink and ReplayTwoClients are event-driven ports of
// ratesim.Run and ap.RunTwoClients that reproduce the originals
// byte-for-byte — the differential proof that the event core can host
// the paper's exact MAC loops, not just an approximation of them.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/phy"
)

// Area is the toroidal simulation region in metres. Like
// internal/vehicular, the region wraps so client density stays constant
// without boundary effects.
type Area struct {
	Width, Height float64
}

// APGrid places Side×Side access points on a uniform grid with the
// given spacing; AP i sits at ((i%Side+0.5)·Spacing, (i/Side+0.5)·Spacing).
// The scenario's area is the grid's footprint (Side·Spacing square).
type APGrid struct {
	// Side is the number of APs along each axis.
	Side int
	// Spacing is the distance between adjacent APs in metres.
	Spacing float64
}

// Radio models every link in the scenario with log-distance path loss:
// SNR(d) = RefSNR − 10·PathLossExp·log10(max(d, 1 m)). Rates, delivery
// probabilities, and airtimes then come from the phy error tables, the
// same model the paper-scale runners use.
type Radio struct {
	// RangeM is the association range: an AP farther than this is not a
	// candidate and generates no events.
	RangeM float64
	// RefSNR is the SNR (dB) at 1 m.
	RefSNR float64
	// PathLossExp is the path-loss exponent (≈3 urban).
	PathLossExp float64
	// SNRNoise is the 1-σ measurement noise (dB) on the SNR the rate
	// selection sees; the channel fate uses the true SNR.
	SNRNoise float64
	// RetryLimit is the MAC retransmission limit per packet.
	RetryLimit int
}

// DefaultRadio returns an urban microcell radio: ~130 m useful range
// with the 6 Mbps edge marginal, matching the phy error tables.
func DefaultRadio() Radio {
	return Radio{RangeM: 130, RefSNR: 68, PathLossExp: 3, SNRNoise: 1.5, RetryLimit: 3}
}

// MobilityProfile gives a herd its movement model: the road-constrained
// random-segment walk of internal/vehicular (straight legs of
// exponential length, a fresh heading and speed per leg) with speed and
// route jitter knobs. SpeedMps = 0 is a static herd that draws nothing.
type MobilityProfile struct {
	// SpeedMps and SpeedJitter draw each leg's speed as
	// max(2, SpeedMps + N(0,1)·SpeedJitter) m/s.
	SpeedMps, SpeedJitter float64
	// MeanSegment is the mean leg length in metres before a turn.
	MeanSegment float64
	// RoadHeadings, when non-zero, quantises headings to this many road
	// azimuths (4 = Manhattan grid); 0 leaves them continuous.
	RoadHeadings int
	// RouteJitterDeg perturbs each quantised heading by ±RouteJitterDeg/2,
	// modelling lane changes and curved blocks. Ignored when
	// RoadHeadings is 0 (continuous headings are already jittered).
	RouteJitterDeg float64
}

// Static reports whether the profile never moves.
func (p MobilityProfile) Static() bool { return p.SpeedMps <= 0 }

// TrafficClass is one ConCap-style application class: every client of
// the herd sends one Bytes-sized packet per Interval, with a random
// phase so herds do not transmit in lockstep.
type TrafficClass struct {
	Name  string
	Bytes int
	// Interval is the per-client inter-arrival time.
	Interval time.Duration
}

// TrafficMix is the set of classes every client of a herd runs
// concurrently.
type TrafficMix []TrafficClass

// Herd is a population of identically configured clients.
type Herd struct {
	Name    string
	Clients int
	// Mobility moves the herd; the zero value is static.
	Mobility MobilityProfile
	Traffic  TrafficMix
}

// Scenario is the full declarative spec. The zero values of most fields
// fall back to sensible defaults (see compile); Grid and at least one
// herd with traffic are required.
type Scenario struct {
	Name  string
	Grid  APGrid
	Radio Radio
	Herds []Herd
	// Duration is the simulated time (default 30 s).
	Duration time.Duration
	// SlotDur is the slot width of the slot-driven oracle engine
	// (default 100 ms). The event-driven engine ignores it.
	SlotDur time.Duration
	// Contention serialises transmissions per AP: a packet arriving
	// while its AP's medium is busy defers until the medium frees. This
	// couples clients, so contended runs are engine-order dependent and
	// compared statistically rather than byte-for-byte.
	Contention bool
	Seed       int64
}

// Area returns the toroidal region the grid spans.
func (sc Scenario) Area() Area {
	side := float64(sc.Grid.Side) * sc.Grid.Spacing
	return Area{Width: side, Height: side}
}

// APCount returns the number of access points.
func (sc Scenario) APCount() int { return sc.Grid.Side * sc.Grid.Side }

// ClientCount returns the total population across herds.
func (sc Scenario) ClientCount() int {
	n := 0
	for _, h := range sc.Herds {
		n += h.Clients
	}
	return n
}

// FrameBytes returns the sorted distinct packet sizes the scenario's
// traffic mixes send — the phy tables a fleet should warm before
// running it.
func (sc Scenario) FrameBytes() []int {
	set := map[int]bool{}
	for _, h := range sc.Herds {
		for _, tc := range h.Traffic {
			set[tc.Bytes] = true
		}
	}
	out := make([]int, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Validate reports the first structural problem with the spec, nil if
// it is runnable.
func (sc Scenario) Validate() error {
	if sc.Grid.Side < 1 || sc.Grid.Spacing <= 0 {
		return fmt.Errorf("scenario %q: AP grid needs Side ≥ 1 and positive Spacing (got %d, %g)", sc.Name, sc.Grid.Side, sc.Grid.Spacing)
	}
	if len(sc.Herds) == 0 {
		return fmt.Errorf("scenario %q: no herds", sc.Name)
	}
	for _, h := range sc.Herds {
		if h.Clients < 1 {
			return fmt.Errorf("scenario %q: herd %q has no clients", sc.Name, h.Name)
		}
		if len(h.Traffic) == 0 {
			return fmt.Errorf("scenario %q: herd %q has no traffic classes", sc.Name, h.Name)
		}
		for _, tc := range h.Traffic {
			if tc.Bytes <= 0 || tc.Interval <= 0 {
				return fmt.Errorf("scenario %q: herd %q class %q needs positive Bytes and Interval", sc.Name, h.Name, tc.Name)
			}
		}
	}
	return nil
}

// Metrics is the integer outcome of a run. Every field is an
// order-independent sum over per-client counters, which is what lets
// the two engines be compared with ==; event counts and wall-clock
// live in Result, outside the compared struct.
type Metrics struct {
	// Arrivals counts packet arrivals (one per client per class per
	// interval); Attempts counts MAC transmissions including retries.
	Arrivals, Attempts int64
	// Delivered and Lost partition arrivals; OutOfRange is the subset of
	// Lost where no AP was in range (counted in both).
	Delivered, Lost, OutOfRange int64
	// Handoffs counts serving-AP changes between consecutive arrivals of
	// one client (both APs in range).
	Handoffs int64
	// RateCounts histograms attempts by bit rate.
	RateCounts [phy.NumRates]int64
	// AirtimeNs sums the airtime of every attempt; DeferredNs sums the
	// time packets waited for a busy medium (contention only).
	AirtimeNs, DeferredNs int64
}

// add accumulates o into m.
func (m *Metrics) add(o *Metrics) {
	m.Arrivals += o.Arrivals
	m.Attempts += o.Attempts
	m.Delivered += o.Delivered
	m.Lost += o.Lost
	m.OutOfRange += o.OutOfRange
	m.Handoffs += o.Handoffs
	for i := range m.RateCounts {
		m.RateCounts[i] += o.RateCounts[i]
	}
	m.AirtimeNs += o.AirtimeNs
	m.DeferredNs += o.DeferredNs
}

// Merge accumulates o into m. Merging the Results of a disjoint
// RunChunk cover in chunk order reproduces Run's Metrics exactly —
// every field is an integer count, so the merge is associative and
// order only matters for readability.
func (m *Metrics) Merge(o Metrics) { m.add(&o) }

// DeliveryRate returns the fraction of arrivals delivered.
func (m Metrics) DeliveryRate() float64 {
	if m.Arrivals == 0 {
		return 0
	}
	return float64(m.Delivered) / float64(m.Arrivals)
}

// Result is one engine run's output.
type Result struct {
	Metrics Metrics
	// Events counts the packet arrivals the engine processed — the unit
	// the event-driven engine's cost scales in.
	Events int64
	// APs and Clients echo the compiled population.
	APs, Clients int
}
