package scenario

import "math"

// apIndex is the toroidal spatial index over the AP grid. Cells are at
// least one radio range wide in each axis, so every AP within range of
// a point lies in the 3×3 cell neighbourhood around it — a best-AP
// query scans a constant number of APs no matter how large the city
// grows, which is what makes idle links free in the event engine.
//
// Selection is min (distance², AP id) over in-range APs, a total order
// with no float ties to break, so the grid scan and the oracle's full
// linear scan return the identical AP (TestGridMatchesLinear).
type apIndex struct {
	w, h       float64
	cols, rows int
	cellW      float64
	cellH      float64
	xs, ys     []float64
	cells      [][]int32
	rangeSq    float64
}

// newAPIndex lays out the scenario's AP grid and buckets it.
func newAPIndex(grid APGrid, radio Radio) *apIndex {
	area := float64(grid.Side) * grid.Spacing
	ix := &apIndex{w: area, h: area, rangeSq: radio.RangeM * radio.RangeM}
	// floor(area/range) cells keeps each cell ≥ one range wide; tiny
	// areas collapse to a single cell.
	ix.cols = int(area / radio.RangeM)
	if ix.cols < 1 {
		ix.cols = 1
	}
	ix.rows = ix.cols
	ix.cellW = area / float64(ix.cols)
	ix.cellH = area / float64(ix.rows)
	n := grid.Side * grid.Side
	ix.xs = make([]float64, n)
	ix.ys = make([]float64, n)
	ix.cells = make([][]int32, ix.cols*ix.rows)
	for i := 0; i < n; i++ {
		ix.xs[i] = (float64(i%grid.Side) + 0.5) * grid.Spacing
		ix.ys[i] = (float64(i/grid.Side) + 0.5) * grid.Spacing
		c := ix.cellOf(ix.xs[i], ix.ys[i])
		ix.cells[c] = append(ix.cells[c], int32(i))
	}
	return ix
}

func (ix *apIndex) cellOf(x, y float64) int {
	cx := int(x / ix.cellW)
	if cx >= ix.cols {
		cx = ix.cols - 1
	}
	cy := int(y / ix.cellH)
	if cy >= ix.rows {
		cy = ix.rows - 1
	}
	return cy*ix.cols + cx
}

// dist2 returns the toroidal squared distance from (x, y) to AP i.
func (ix *apIndex) dist2(i int32, x, y float64) float64 {
	dx := math.Abs(ix.xs[i] - x)
	if dx > ix.w/2 {
		dx = ix.w - dx
	}
	dy := math.Abs(ix.ys[i] - y)
	if dy > ix.h/2 {
		dy = ix.h - dy
	}
	return dx*dx + dy*dy
}

// consider folds AP i into the running (best id, best dist²) pair.
func (ix *apIndex) consider(i int32, x, y float64, best int32, bd float64) (int32, float64) {
	d2 := ix.dist2(i, x, y)
	if d2 > ix.rangeSq {
		return best, bd
	}
	if best < 0 || d2 < bd || (d2 == bd && i < best) {
		return i, d2
	}
	return best, bd
}

// best returns the in-range AP minimising (dist², id) via the 3×3 cell
// neighbourhood, or (-1, 0) when none is in range. Wrapping may visit a
// cell twice on degenerate 1–2 cell grids; min selection makes the
// duplicate scan harmless.
func (ix *apIndex) best(x, y float64) (int32, float64) {
	cx := int(x / ix.cellW)
	if cx >= ix.cols {
		cx = ix.cols - 1
	}
	cy := int(y / ix.cellH)
	if cy >= ix.rows {
		cy = ix.rows - 1
	}
	best, bd := int32(-1), 0.0
	for dy := -1; dy <= 1; dy++ {
		ny := (cy + dy + ix.rows) % ix.rows
		for dx := -1; dx <= 1; dx++ {
			nx := (cx + dx + ix.cols) % ix.cols
			for _, i := range ix.cells[ny*ix.cols+nx] {
				best, bd = ix.consider(i, x, y, best, bd)
			}
		}
	}
	return best, bd
}

// bestLinear is the oracle's selection: the same min over a full scan
// of every AP.
func (ix *apIndex) bestLinear(x, y float64) (int32, float64) {
	best, bd := int32(-1), 0.0
	for i := range ix.xs {
		best, bd = ix.consider(int32(i), x, y, best, bd)
	}
	return best, bd
}
