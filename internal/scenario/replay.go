package scenario

import (
	"math"
	"time"

	"repro/internal/ap"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/rate"
	"repro/internal/ratesim"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file hosts the exact-replay ports: the paper-scale slot-driven
// loops of ratesim.Run and ap.RunTwoClients restructured as event
// chains on the sim engine. Each port performs the identical sequence
// of RNG draws, adapter calls, and float operations as its original, so
// the results compare with == — the strongest form of the oracle
// differential (TestReplayLinkMatchesRatesim,
// TestReplayTwoClientsMatchesAP). Where the originals advance `now`
// inside a loop body, the ports advance the engine clock by scheduling
// the continuation at the advanced time.

// linkReplay is the event-chain state of one ReplayLink run; its
// fields mirror ratesim.Run's locals.
type linkReplay struct {
	eng *sim.Engine
	cfg ratesim.Config
	rng parallel.RNG

	bytes    int
	retry    int
	hintLat  time.Duration
	snrStale time.Duration
	snrNoise float64
	airt     *phy.Airtimes
	end      time.Duration

	setter      ratesim.MovingSetter
	hasHint     bool
	snrUpd      rate.SNRUpdater
	hasSNR      bool
	rtsOverhead time.Duration

	res       ratesim.Result
	cwnd      float64
	consLost  int
	attempt   int
	delivered bool
}

const (
	replayRTT = 20 * time.Millisecond
	replayRTO = 200 * time.Millisecond
)

// ReplayLink is the event-driven port of ratesim.Run: one event per MAC
// attempt, one per packet completion, chained on a timer wheel. Given
// the same Config (and a fresh adapter in the same state), it returns a
// Result byte-identical to ratesim.Run's.
func ReplayLink(cfg ratesim.Config) ratesim.Result {
	s := &linkReplay{cfg: cfg, cwnd: 2}
	s.bytes = cfg.PacketBytes
	if s.bytes <= 0 {
		s.bytes = 1000
	}
	s.retry = cfg.RetryLimit
	if s.retry <= 0 {
		s.retry = 7
	}
	s.hintLat = cfg.HintLatency
	if s.hintLat == 0 {
		s.hintLat = 100 * time.Millisecond
	}
	s.snrStale = cfg.SNRStale
	if s.snrStale == 0 {
		s.snrStale = cfg.Trace.SlotDur
	}
	s.snrNoise = cfg.SNRNoise
	if s.snrNoise == 0 {
		s.snrNoise = 1.5
	}
	s.rng = parallel.NewRNG(cfg.Seed)
	s.airt = phy.AirtimesFor(s.bytes)
	s.end = cfg.Trace.Duration()
	s.setter, s.hasHint = cfg.Adapter.(ratesim.MovingSetter)
	s.snrUpd, s.hasSNR = cfg.Adapter.(rate.SNRUpdater)
	if ru, ok := cfg.Adapter.(rate.RTSUser); ok && ru.UsesRTS() {
		s.rtsOverhead = phy.RTSCTSAirtime()
	}

	s.eng = sim.NewWheel(time.Millisecond, 1024)
	s.eng.At(0, s.startPacket)
	s.eng.Run()

	dur := s.end.Seconds()
	if dur > 0 {
		s.res.ThroughputMbps = float64(s.res.Delivered) * float64(s.bytes) * 8 / dur / 1e6
	}
	return s.res
}

// startPacket is ratesim.Run's outer loop head: the now < end check,
// the hint refresh, and entry into the retry chain.
func (s *linkReplay) startPacket() {
	now := s.eng.Now()
	if now >= s.end {
		return
	}
	if s.hasHint {
		s.setter.SetMoving(s.cfg.Trace.MovingAt(now - s.hintLat))
	}
	s.delivered = false
	s.attempt = 0
	s.tryAttempt()
}

// tryAttempt is one iteration of the retry loop: the original's draws
// and clock advances in the original order, with the continuation (next
// attempt or packet completion) scheduled at the advanced time.
func (s *linkReplay) tryAttempt() {
	now := s.eng.Now()
	if s.attempt > s.retry || now >= s.end {
		s.finishPacket()
		return
	}
	tr := s.cfg.Trace
	if s.hasSNR {
		s.snrUpd.UpdateSNR(now, tr.At(now-s.snrStale).SNR+s.rng.NormFloat64()*s.snrNoise)
	}
	r := s.cfg.Adapter.PickRate(now)
	ok := s.rng.Float64() < tr.At(now).Prob[r]
	s.res.Sent++
	s.res.RateHistogram[r]++
	fb := rate.Feedback{At: now, Rate: r, Acked: ok, SNR: math.NaN()}
	now += s.rtsOverhead + phy.RetryBackoff(s.attempt)
	if ok {
		fb.SNR = tr.At(now-s.snrStale).SNR + s.rng.NormFloat64()*s.snrNoise
		now += s.airt.Frame[r]
	} else {
		now += s.airt.Failed[r]
	}
	s.cfg.Adapter.Observe(fb)
	s.attempt++
	if ok {
		s.delivered = true
		s.eng.At(now, s.finishPacket)
		return
	}
	s.eng.At(now, s.tryAttempt)
}

// finishPacket is the tail of the outer loop body: delivery accounting,
// the TCP window/timeout logic, and the pacing gap, then the next
// packet.
func (s *linkReplay) finishPacket() {
	now := s.eng.Now()
	if s.delivered {
		s.res.Delivered++
	} else {
		s.res.LostPackets++
	}
	if s.cfg.Workload == ratesim.TCP {
		if s.delivered {
			s.consLost = 0
			s.cwnd += 1 / s.cwnd
			if s.cwnd > 64 {
				s.cwnd = 64
			}
		} else {
			s.consLost++
			s.cwnd /= 2
			if s.cwnd < 1 {
				s.cwnd = 1
			}
			if s.consLost >= 3 {
				s.res.Timeouts++
				now += replayRTO
				s.cwnd = 1
				s.consLost = 0
			}
		}
		gap := time.Duration(float64(replayRTT) / s.cwnd)
		if min := s.airt.Frame[phy.Rate54]; gap < min {
			gap = 0
		} else {
			gap -= min
		}
		now += gap
	}
	s.eng.At(now, s.startPacket)
}

// twoClientReplay is the event-chain state of one ReplayTwoClients run;
// its fields mirror ap.RunTwoClients's locals.
type twoClientReplay struct {
	eng *sim.Engine
	cfg ap.TwoClientConfig
	res ap.TwoClientResult

	bits      float64
	airt      *phy.Airtimes
	frame1    time.Duration
	probeCost time.Duration

	delivered1, delivered2 float64
	bucketEnd              time.Duration
	sent2                  int
	rate2                  phy.Rate
	consFail2              int
	client2Parked          bool
	client2Gone            bool
	lastFailStart          time.Duration
	nextProbe2             time.Duration
	turn                   int
}

// ReplayTwoClients is the event-driven port of ap.RunTwoClients: one
// event per scheduling decision. Given the same config it returns a
// TwoClientResult byte-identical to the original — totals, prune time,
// and every per-second series point.
func ReplayTwoClients(cfg ap.TwoClientConfig) ap.TwoClientResult {
	if cfg.Total <= 0 {
		cfg.Total = 60 * time.Second
	}
	if cfg.DepartAt <= 0 {
		cfg.DepartAt = 35 * time.Second
	}
	if cfg.PacketBytes <= 0 {
		cfg.PacketBytes = 1000
	}
	if cfg.Rate1 == 0 {
		cfg.Rate1 = phy.Rate54
	}
	if cfg.Rate2 == 0 {
		cfg.Rate2 = phy.Rate36
	}
	if cfg.MobileShare == 0 {
		cfg.MobileShare = 0.75
	}
	if cfg.Prune.Timeout == 0 {
		cfg.Prune = ap.DefaultPruneConfig()
	}
	if cfg.HintLatency == 0 {
		cfg.HintLatency = 200 * time.Millisecond
	}
	if cfg.DepartWarning == 0 {
		cfg.DepartWarning = 2 * time.Second
	}
	if cfg.Prune.ProbeEvery <= 0 {
		cfg.Prune.ProbeEvery = time.Second
	}

	s := &twoClientReplay{
		cfg: cfg,
		res: ap.TwoClientResult{
			Client1: &stats.Series{Name: "client 1 (static)"},
			Client2: &stats.Series{Name: "client 2 (departs)"},
			PruneAt: -1,
		},
		bits:          float64(8 * cfg.PacketBytes),
		airt:          phy.AirtimesFor(cfg.PacketBytes),
		bucketEnd:     time.Second,
		rate2:         cfg.Rate2,
		lastFailStart: -1,
	}
	s.frame1 = s.airt.Frame[cfg.Rate1]
	s.probeCost = phy.PayloadAirtime(phy.Rate6, phy.RTSBytes) + phy.SIFS

	s.eng = sim.NewWheel(time.Millisecond, 1024)
	s.eng.At(0, s.serveOne)
	s.eng.Run()
	return s.res
}

// flushBuckets closes per-second series buckets up to now, exactly as
// the original's closure does.
func (s *twoClientReplay) flushBuckets(now time.Duration) {
	for now >= s.bucketEnd {
		t := (s.bucketEnd - time.Second).Seconds()
		s.res.Client1.Add(t, s.delivered1/1e6)
		s.res.Client2.Add(t, s.delivered2/1e6)
		s.delivered1, s.delivered2 = 0, 0
		s.bucketEnd += time.Second
	}
}

func (s *twoClientReplay) client2Backlogged() bool {
	if s.client2Gone {
		return false
	}
	if s.cfg.Client2Finite > 0 && s.sent2 >= s.cfg.Client2Finite {
		return false
	}
	return true
}

// serveOne is one iteration of the original's scheduling loop: prune
// checks, policy pick, one frame (or probe) of airtime, then the next
// iteration at the advanced clock. The terminal event performs the
// original's final bucket flush.
func (s *twoClientReplay) serveOne() {
	now := s.eng.Now()
	cfg := &s.cfg
	if now >= cfg.Total {
		s.flushBuckets(now)
		return
	}
	s.flushBuckets(now)
	departed := now >= cfg.DepartAt
	hintUp := now >= cfg.DepartAt-cfg.DepartWarning+cfg.HintLatency

	if cfg.Prune.HintAware && departed && hintUp && !s.client2Parked {
		s.client2Parked = true
		s.res.PruneAt = now
		s.nextProbe2 = now + cfg.Prune.ProbeEvery
	}
	if !s.client2Parked && !s.client2Gone && s.lastFailStart >= 0 && now-s.lastFailStart >= cfg.Prune.Timeout {
		s.client2Gone = true
		if s.res.PruneAt < 0 {
			s.res.PruneAt = now
		}
	}

	serve2 := s.client2Backlogged() && !s.client2Parked && !s.client2Gone
	if s.client2Parked && now >= s.nextProbe2 {
		now += s.probeCost
		s.nextProbe2 = now + cfg.Prune.ProbeEvery
		s.eng.At(now, s.serveOne)
		return
	}

	target := 1
	if serve2 {
		switch cfg.Policy {
		case ap.FrameFair:
			target = 1 + s.turn%2
			s.turn++
		case ap.TimeFair:
			a1 := s.frame1
			a2 := s.airt.Frame[s.rate2]
			period := int(a2/a1) + 1
			if s.turn%(period+1) < period {
				target = 1
			} else {
				target = 2
			}
			s.turn++
		case ap.MobileFavored:
			mobile := hintUp && !departed
			if mobile {
				if float64(s.turn%100) < cfg.MobileShare*100 {
					target = 2
				}
			} else {
				target = 1 + s.turn%2
			}
			s.turn++
		}
	}

	if target == 1 {
		now += s.frame1
		s.delivered1 += s.bits
		s.res.Total1 += s.bits / 1e6
		s.eng.At(now, s.serveOne)
		return
	}

	if !departed {
		now += s.airt.Frame[s.rate2]
		s.delivered2 += s.bits
		s.res.Total2 += s.bits / 1e6
		s.sent2++
		s.consFail2 = 0
		s.lastFailStart = -1
		s.eng.At(now, s.serveOne)
		return
	}
	if s.lastFailStart < 0 {
		s.lastFailStart = now
	}
	now += s.airt.Failed[s.rate2]
	s.consFail2++
	if s.consFail2%4 == 0 && s.rate2 > phy.Rate6 {
		s.rate2--
	}
	s.eng.At(now, s.serveOne)
}
