package ap

import (
	"time"

	"repro/internal/phy"
	"repro/internal/stats"
)

// Two-client AP simulation reproducing Figure 5-1 and evaluating the
// §5.2.2/§5.2.3 policies. Client 1 is static and in range throughout;
// client 2 departs at a configurable time. The AP serves both from
// infinite backlogs under the selected fairness policy and prune config.

// TwoClientConfig parameterises the run.
type TwoClientConfig struct {
	// Total is the experiment length (default 60 s).
	Total time.Duration
	// DepartAt is when client 2 leaves range (default 35 s).
	DepartAt time.Duration
	// Client2Finite, when positive, bounds client 2's backlog in packets
	// (the §5.2.2 finite-batch scenario); zero means infinite backlog.
	Client2Finite int
	// Policy is the scheduling policy.
	Policy SchedulerPolicy
	// MobileShare is the fraction of transmissions given to the mobile
	// client under MobileFavored (default 0.75).
	MobileShare float64
	// Prune is the disassociation policy.
	Prune PruneConfig
	// PacketBytes is the frame payload (default 1000).
	PacketBytes int
	// Rate1 and Rate2 are the link rates while in range (default 54 and
	// 36 Mbps).
	Rate1, Rate2 phy.Rate
	// HintLatency is the delay before the AP learns client 2 is moving
	// when Prune.HintAware (default 200 ms: detection plus delivery).
	HintLatency time.Duration
	// DepartWarning is how long before physical departure the client's
	// movement hint rises (it starts walking away inside coverage;
	// default 2 s).
	DepartWarning time.Duration
}

// TwoClientResult carries the per-client throughput time series and
// totals.
type TwoClientResult struct {
	// Client1, Client2 are per-second delivered throughput (Mbps) — the
	// two curves of Figure 5-1.
	Client1, Client2 *stats.Series
	// Total1, Total2 are delivered megabits.
	Total1, Total2 float64
	// PruneAt is when the AP stopped serving the departed client.
	PruneAt time.Duration
}

// RunTwoClients executes the simulation.
func RunTwoClients(cfg TwoClientConfig) TwoClientResult {
	if cfg.Total <= 0 {
		cfg.Total = 60 * time.Second
	}
	if cfg.DepartAt <= 0 {
		cfg.DepartAt = 35 * time.Second
	}
	if cfg.PacketBytes <= 0 {
		cfg.PacketBytes = 1000
	}
	if cfg.Rate1 == 0 {
		cfg.Rate1 = phy.Rate54
	}
	if cfg.Rate2 == 0 {
		cfg.Rate2 = phy.Rate36
	}
	if cfg.MobileShare == 0 {
		cfg.MobileShare = 0.75
	}
	if cfg.Prune.Timeout == 0 {
		cfg.Prune = DefaultPruneConfig()
	}
	if cfg.HintLatency == 0 {
		cfg.HintLatency = 200 * time.Millisecond
	}
	if cfg.DepartWarning == 0 {
		cfg.DepartWarning = 2 * time.Second
	}
	if cfg.Prune.ProbeEvery <= 0 {
		cfg.Prune.ProbeEvery = time.Second
	}

	res := TwoClientResult{
		Client1: &stats.Series{Name: "client 1 (static)"},
		Client2: &stats.Series{Name: "client 2 (departs)"},
		PruneAt: -1,
	}
	bits := float64(8 * cfg.PacketBytes)
	// Loop invariants hoisted out of the per-frame scheduling loop: the
	// memoized airtime table for the configured payload (client 2's rate
	// changes as its retry chain collapses, so its costs are indexed per
	// frame) and the fixed probe cost.
	airt := phy.AirtimesFor(cfg.PacketBytes)
	frame1 := airt.Frame[cfg.Rate1]
	probeCost := phy.PayloadAirtime(phy.Rate6, phy.RTSBytes) + phy.SIFS

	now := time.Duration(0)
	var delivered1, delivered2 float64 // bits in current 1 s bucket
	bucketEnd := time.Second
	var sent2 int
	// Rate the AP uses toward client 2: collapses toward the floor as
	// retransmissions fail after departure.
	rate2 := cfg.Rate2
	var consFail2 int
	var client2Parked bool
	var client2Gone bool
	var lastFailStart time.Duration = -1
	var nextProbe2 time.Duration
	turn := 0 // round-robin turn: 0 → client 1, 1 → client 2

	flushBuckets := func() {
		for now >= bucketEnd {
			t := (bucketEnd - time.Second).Seconds()
			res.Client1.Add(t, delivered1/1e6)
			res.Client2.Add(t, delivered2/1e6)
			delivered1, delivered2 = 0, 0
			bucketEnd += time.Second
		}
	}

	client2Backlogged := func() bool {
		if client2Gone {
			return false
		}
		if cfg.Client2Finite > 0 && sent2 >= cfg.Client2Finite {
			return false
		}
		return true
	}

	for now < cfg.Total {
		flushBuckets()
		departed := now >= cfg.DepartAt
		hintUp := now >= cfg.DepartAt-cfg.DepartWarning+cfg.HintLatency

		// Hint-aware pruning: once the movement hint is up and frames
		// stop being acknowledged, park the client.
		if cfg.Prune.HintAware && departed && hintUp && !client2Parked {
			client2Parked = true
			res.PruneAt = now
			nextProbe2 = now + cfg.Prune.ProbeEvery
		}
		// Timeout pruning: after Timeout of continuous failure, give up.
		if !client2Parked && !client2Gone && lastFailStart >= 0 && now-lastFailStart >= cfg.Prune.Timeout {
			client2Gone = true
			if res.PruneAt < 0 {
				res.PruneAt = now
			}
		}

		serve2 := client2Backlogged() && !client2Parked && !client2Gone
		if client2Parked && now >= nextProbe2 {
			// Occasional short probe to see if the client returned; it
			// costs one control-frame airtime.
			now += probeCost
			nextProbe2 = now + cfg.Prune.ProbeEvery
			continue
		}

		// Pick the next client per policy.
		target := 1
		if serve2 {
			switch cfg.Policy {
			case FrameFair:
				target = 1 + turn%2
				turn++
			case TimeFair:
				// Give each client equal airtime: serve the slower
				// client less often in frames. Approximate by weighting
				// turns with the airtime ratio.
				a1 := frame1
				a2 := airt.Frame[rate2]
				period := int(a2/a1) + 1
				if turn%(period+1) < period {
					target = 1
				} else {
					target = 2
				}
				turn++
			case MobileFavored:
				mobile := hintUp && !departed // moving but still in range
				if mobile {
					// Dedicate MobileShare of frames to the mobile
					// client while it can still receive.
					if float64(turn%100) < cfg.MobileShare*100 {
						target = 2
					}
				} else {
					target = 1 + turn%2
				}
				turn++
			}
		}

		if target == 1 {
			now += frame1
			delivered1 += bits
			res.Total1 += bits / 1e6
			continue
		}

		// Serving client 2.
		if !departed {
			now += airt.Frame[rate2]
			delivered2 += bits
			res.Total2 += bits / 1e6
			sent2++
			consFail2 = 0
			lastFailStart = -1
			continue
		}
		// Departed: the frame fails; the AP retries open-loop, its rate
		// adaptation stepping down toward the floor.
		if lastFailStart < 0 {
			lastFailStart = now
		}
		now += airt.Failed[rate2]
		consFail2++
		if consFail2%4 == 0 && rate2 > lowestRate {
			rate2--
		}
	}
	flushBuckets()
	return res
}
