package ap

import (
	"testing"
	"time"
)

func TestAssociationScoreStaticBonus(t *testing.T) {
	s := DefaultAssociationScore()
	still := ClientHints{Moving: false, RSSdB: 10}
	moving := ClientHints{Moving: true, HeadingDeg: 0, BearingToAPDeg: 180, SpeedMps: 2, RSSdB: 10}
	if s.Score(still) <= s.Score(moving) {
		t.Error("a static client should score above one walking away")
	}
}

func TestAssociationScoreHeading(t *testing.T) {
	s := DefaultAssociationScore()
	toward := ClientHints{Moving: true, HeadingDeg: 45, BearingToAPDeg: 45, SpeedMps: 2, RSSdB: 10}
	away := ClientHints{Moving: true, HeadingDeg: 45, BearingToAPDeg: 225, SpeedMps: 2, RSSdB: 10}
	perp := ClientHints{Moving: true, HeadingDeg: 45, BearingToAPDeg: 135, SpeedMps: 2, RSSdB: 10}
	if !(s.Score(toward) > s.Score(perp) && s.Score(perp) > s.Score(away)) {
		t.Errorf("ordering broken: toward %.1f perp %.1f away %.1f",
			s.Score(toward), s.Score(perp), s.Score(away))
	}
}

func TestBestAPSelection(t *testing.T) {
	s := DefaultAssociationScore()
	cands := []ClientHints{
		{Moving: true, HeadingDeg: 0, BearingToAPDeg: 180, SpeedMps: 2, RSSdB: 20},
		{Moving: true, HeadingDeg: 0, BearingToAPDeg: 0, SpeedMps: 2, RSSdB: 15},
	}
	if got := BestAP(s, cands); got != 1 {
		t.Errorf("BestAP = %d, want the approached AP", got)
	}
	if got := BestAPByRSS(cands); got != 0 {
		t.Errorf("BestAPByRSS = %d, want the stronger AP", got)
	}
}

func TestPolicyString(t *testing.T) {
	if FrameFair.String() != "frame-fair" || TimeFair.String() != "time-fair" ||
		MobileFavored.String() != "mobile-favored" {
		t.Error("policy names wrong")
	}
}

func TestTwoClientsFairBeforeDeparture(t *testing.T) {
	res := RunTwoClients(TwoClientConfig{Policy: ap0FrameFair()})
	// Before departure both clients receive similar frame counts, so the
	// slower client 2 gets similar Mbps·(rate2/rate1)… frame fairness
	// means equal packet counts: throughputs equal.
	c1 := res.Client1.At(20)
	c2 := res.Client2.At(20)
	if c1 <= 0 || c2 <= 0 {
		t.Fatal("no throughput before departure")
	}
	ratio := c1 / c2
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("frame fairness broken: c1 %.1f vs c2 %.1f", c1, c2)
	}
}

func ap0FrameFair() SchedulerPolicy { return FrameFair }

func TestTwoClientsFigureShape(t *testing.T) {
	res := RunTwoClients(TwoClientConfig{Policy: FrameFair})
	before := res.Client1.At(30)
	during := res.Client1.At(40)
	after := res.Client1.At(55)
	if during >= before*0.6 {
		t.Errorf("no collapse during open-loop retries: %.1f -> %.1f", before, during)
	}
	if after <= before*1.5 {
		t.Errorf("no recovery to full channel after prune: %.1f (before %.1f)", after, before)
	}
	// Client 2 receives nothing after departing.
	if res.Client2.At(50) != 0 {
		t.Error("departed client still receiving")
	}
	if res.PruneAt < 44*time.Second || res.PruneAt > 46*time.Second {
		t.Errorf("prune at %v, want ≈ depart+10s", res.PruneAt)
	}
}

func TestHintAwarePruningAvoidsCollapse(t *testing.T) {
	res := RunTwoClients(TwoClientConfig{
		Policy: FrameFair,
		Prune:  PruneConfig{Timeout: 10 * time.Second, HintAware: true, ProbeEvery: time.Second},
	})
	during := res.Client1.At(40)
	before := res.Client1.At(30)
	if during < before*1.2 {
		t.Errorf("hint-aware AP should hand the channel to client 1: %.1f -> %.1f", before, during)
	}
	if res.PruneAt > 37*time.Second {
		t.Errorf("hint-aware prune at %v, want shortly after departure", res.PruneAt)
	}
}

func TestTimeFairGivesAirtimeShares(t *testing.T) {
	// Under time fairness the faster client moves more bytes.
	res := RunTwoClients(TwoClientConfig{Policy: TimeFair, Total: 30 * time.Second, DepartAt: 29 * time.Second})
	c1 := res.Client1.At(15)
	c2 := res.Client2.At(15)
	if c1 <= c2 {
		t.Errorf("time fairness should favour the faster client: c1 %.1f vs c2 %.1f", c1, c2)
	}
}

func TestMobileFavoredShifts(t *testing.T) {
	base := TwoClientConfig{
		Total:         40 * time.Second,
		DepartAt:      20 * time.Second,
		DepartWarning: 10 * time.Second,
		MobileShare:   0.85,
	}
	fair := RunTwoClients(func() TwoClientConfig { c := base; c.Policy = FrameFair; return c }())
	fav := RunTwoClients(func() TwoClientConfig { c := base; c.Policy = MobileFavored; return c }())
	if fav.Total2 <= fair.Total2 {
		t.Errorf("favoring the mobile client did not raise its total: %.0f vs %.0f",
			fav.Total2, fair.Total2)
	}
}

func TestFiniteBacklogStops(t *testing.T) {
	res := RunTwoClients(TwoClientConfig{
		Policy:        FrameFair,
		Client2Finite: 100,
		Total:         30 * time.Second,
		DepartAt:      29 * time.Second,
	})
	// 100 packets ≈ 0.8 Mb total for client 2.
	if res.Total2 > 0.9 {
		t.Errorf("client 2 received %.2f Mb, want ≤ 0.8 (finite backlog)", res.Total2)
	}
}

func TestDefaultPruneConfig(t *testing.T) {
	c := DefaultPruneConfig()
	if c.Timeout != 10*time.Second || c.HintAware || c.ProbeEvery != time.Second {
		t.Errorf("defaults = %+v", c)
	}
}
