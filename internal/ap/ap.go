// Package ap implements the access-point policies of §5.2 and the
// simulation behind Figure 5-1: adaptive association scoring, adaptive
// packet scheduling between static and mobile clients, and adaptive
// disassociation (pruning) of clients that move out of range.
//
// The Figure 5-1 pathology: a commercial AP keeps open-loop
// retransmitting to a departed client for ~10 seconds before pruning it.
// Because the departed client's rate adaptation has collapsed to the
// lowest rate and the AP enforces frame-level fairness, the *remaining*
// static client's throughput collapses too. A movement hint lets the AP
// park the departing client instead.
package ap

import (
	"math"
	"time"

	"repro/internal/phy"
	"repro/internal/sensors"
)

// AssociationScore predicts the association lifetime of a client from
// its hints plus signal strength, per §5.2.1. It is a trained linear
// scorer: signal strength sets the baseline; movement shortens the
// expected lifetime; heading toward the AP lengthens it and heading away
// shortens it; speed scales the heading effect.
type AssociationScore struct {
	// RSSWeight converts signal strength (dB above sensitivity) into
	// score seconds (default 4 s/dB — stronger signal, longer useful
	// association).
	RSSWeight float64
	// StaticBonus is added when the client reports it is not moving
	// (default 120 s: static clients keep associations).
	StaticBonus float64
	// ApproachGain scales the effect of closing speed in s per m/s
	// (default 15).
	ApproachGain float64
}

// DefaultAssociationScore returns the trained weights used by the
// examples and benches.
func DefaultAssociationScore() AssociationScore {
	return AssociationScore{RSSWeight: 4, StaticBonus: 120, ApproachGain: 15}
}

// ClientHints carries the §5.2.1 probe-request hints: movement, heading
// and speed, plus the geometry the AP knows (bearing from client to AP).
type ClientHints struct {
	// Moving is the movement hint.
	Moving bool
	// HeadingDeg is the travel heading; meaningful only when Moving.
	HeadingDeg float64
	// SpeedMps is the speed hint; meaningful only when Moving.
	SpeedMps float64
	// BearingToAPDeg is the bearing from the client's position to the
	// AP.
	BearingToAPDeg float64
	// RSSdB is the received signal strength above sensitivity.
	RSSdB float64
}

// Score returns the predicted association lifetime in seconds.
func (a AssociationScore) Score(h ClientHints) float64 {
	s := a.RSSWeight * h.RSSdB
	if !h.Moving {
		return s + a.StaticBonus
	}
	// Closing speed: positive when heading toward the AP.
	diff := sensors.HeadingSeparation(h.HeadingDeg, h.BearingToAPDeg)
	closing := h.SpeedMps * math.Cos(diff*math.Pi/180)
	return s + a.ApproachGain*closing
}

// BestAP returns the index of the candidate with the highest predicted
// association lifetime — the client-side selection rule of §5.2.1.
// Hint-free clients pick by signal strength alone; pass scoreByRSS to
// compare.
func BestAP(score AssociationScore, cands []ClientHints) int {
	best, bestScore := 0, math.Inf(-1)
	for i, c := range cands {
		if s := score.Score(c); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// BestAPByRSS returns the strongest-signal candidate, the default
// association rule of deployed clients.
func BestAPByRSS(cands []ClientHints) int {
	best, bestRSS := 0, math.Inf(-1)
	for i, c := range cands {
		if c.RSSdB > bestRSS {
			best, bestRSS = i, c.RSSdB
		}
	}
	return best
}

// SchedulerPolicy selects how the AP divides transmissions among
// clients (§5.2.2).
type SchedulerPolicy int

// Scheduling policies.
const (
	// FrameFair sends an equal number of frames to each backlogged
	// client — the commercial default that Figure 5-1 exposes.
	FrameFair SchedulerPolicy = iota
	// TimeFair divides airtime equally (Tan & Guttag).
	TimeFair
	// MobileFavored gives a configurable extra share to clients whose
	// movement hint is raised — §5.2.2's observation that favouring the
	// soon-to-depart mobile client raises aggregate throughput without
	// reducing the static client's total.
	MobileFavored
)

// String names the policy.
func (p SchedulerPolicy) String() string {
	switch p {
	case FrameFair:
		return "frame-fair"
	case TimeFair:
		return "time-fair"
	case MobileFavored:
		return "mobile-favored"
	}
	return "unknown"
}

// PruneConfig controls the disassociation policy (§5.2.3).
type PruneConfig struct {
	// Timeout is how long the AP keeps retrying an unresponsive client
	// before pruning (default 10 s, the commercial behaviour observed in
	// Figure 5-1).
	Timeout time.Duration
	// HintAware parks a client as soon as its movement hint is raised
	// and its frames stop being acknowledged, probing it only
	// occasionally instead of retransmitting open-loop.
	HintAware bool
	// ProbeEvery is the parked-client probe interval (default 1 s).
	ProbeEvery time.Duration
}

// DefaultPruneConfig returns the commercial-AP behaviour.
func DefaultPruneConfig() PruneConfig {
	return PruneConfig{Timeout: 10 * time.Second, ProbeEvery: time.Second}
}

// lowestRate is where a departed client's rate adaptation ends up after
// repeated failures — the paper's trace shows the AP falling to 1 Mbps;
// in our 802.11a model the floor is 6 Mbps.
const lowestRate = phy.Rate6
