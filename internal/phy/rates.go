// Package phy models the 802.11a OFDM physical layer: the bit-rate table,
// frame airtime computation, and the SNR → BER → packet-error-rate curves
// that the channel simulator and the SNR-based rate adaptation protocols
// (RBAR, CHARM) rely on.
//
// The model follows the standard 802.11a parameters: 20 MHz channels,
// 4 µs OFDM symbols (3.2 µs data + 0.8 µs cyclic prefix), 16 µs PLCP
// preamble and a 4 µs SIGNAL field. It is intentionally a simulation-grade
// model — it reproduces the relative behaviour of the eight OFDM rates,
// which is what rate adaptation protocols key on, not hardware-exact
// absolute error rates.
//
// The package exposes two implementations of the error and cost models.
// The analytic functions (BER, PER, DeliveryProb, the *Airtime family)
// are the reference implementation. The table-driven layer in lut.go
// (ErrorTableFor, AirtimesFor) precomputes them per frame length on a
// fine SNR grid with linear interpolation; it is what the channel
// generator and MAC simulators use per packet, and it matches the
// analytic curves to within 1e-3 absolute (see DESIGN.md, "Table-driven
// error model").
package phy

import (
	"fmt"
	"time"
)

// Rate identifies one of the eight 802.11a OFDM bit rates by index,
// ordered from slowest (0 = 6 Mbps) to fastest (7 = 54 Mbps).
type Rate int

// The eight 802.11a OFDM rates.
const (
	Rate6 Rate = iota
	Rate9
	Rate12
	Rate18
	Rate24
	Rate36
	Rate48
	Rate54

	// NumRates is the number of 802.11a OFDM bit rates.
	NumRates = 8
)

// Modulation enumerates the OFDM subcarrier modulations used by 802.11a.
type Modulation int

// Modulations in increasing constellation density.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String returns the conventional name of the modulation.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// RateInfo describes the PHY parameters of one OFDM rate.
type RateInfo struct {
	// Mbps is the nominal data rate in megabits per second.
	Mbps int
	// Modulation is the subcarrier modulation.
	Modulation Modulation
	// CodingNum and CodingDen give the convolutional coding rate
	// (e.g. 1/2, 3/4) as a fraction CodingNum/CodingDen.
	CodingNum, CodingDen int
	// BitsPerSymbol is N_DBPS, the number of data bits carried by one
	// 4 µs OFDM symbol.
	BitsPerSymbol int
}

// rateTable holds the 802.11a rate set in index order.
var rateTable = [NumRates]RateInfo{
	{6, BPSK, 1, 2, 24},
	{9, BPSK, 3, 4, 36},
	{12, QPSK, 1, 2, 48},
	{18, QPSK, 3, 4, 72},
	{24, QAM16, 1, 2, 96},
	{36, QAM16, 3, 4, 144},
	{48, QAM64, 2, 3, 192},
	{54, QAM64, 3, 4, 216},
}

// Info returns the PHY parameters of r. It panics if r is out of range;
// use Valid to check untrusted values first.
func (r Rate) Info() RateInfo {
	return rateTable[r]
}

// Valid reports whether r is one of the eight defined OFDM rates.
func (r Rate) Valid() bool {
	return r >= 0 && r < NumRates
}

// Mbps returns the nominal data rate of r in megabits per second.
func (r Rate) Mbps() int { return rateTable[r].Mbps }

// String returns a short human-readable name such as "54Mbps".
func (r Rate) String() string {
	if !r.Valid() {
		return fmt.Sprintf("Rate(%d)", int(r))
	}
	return fmt.Sprintf("%dMbps", rateTable[r].Mbps)
}

// Rates lists the rates in increasing speed order. It is the
// allocation-free way to iterate the rate set (`for _, r := range
// phy.Rates`): ranging over the array copies eight ints on the stack,
// where AllRates allocates a fresh slice per call. Treat it as
// read-only.
var Rates = [NumRates]Rate{Rate6, Rate9, Rate12, Rate18, Rate24, Rate36, Rate48, Rate54}

// AllRates returns the rates in increasing speed order. The returned slice
// is freshly allocated and may be modified by the caller; hot loops should
// range over Rates instead.
func AllRates() []Rate {
	rs := make([]Rate, NumRates)
	copy(rs, Rates[:])
	return rs
}

// 802.11a MAC/PHY timing constants.
const (
	// SymbolDuration is the duration of one OFDM symbol.
	SymbolDuration = 4 * time.Microsecond
	// PreambleDuration covers the PLCP preamble (16 µs) plus the
	// SIGNAL field (4 µs).
	PreambleDuration = 20 * time.Microsecond
	// SIFS is the short interframe space for 802.11a.
	SIFS = 16 * time.Microsecond
	// DIFS is the DCF interframe space for 802.11a.
	DIFS = 34 * time.Microsecond
	// SlotTime is the 802.11a backoff slot duration.
	SlotTime = 9 * time.Microsecond
	// ServiceBits and TailBits are the PLCP service and convolutional
	// tail bits prepended/appended to the PSDU.
	ServiceBits = 16
	TailBits    = 6
	// ACKBytes is the length of an 802.11 ACK control frame.
	ACKBytes = 14
)

// PayloadAirtime returns the on-air time of the data portion of a frame
// with the given MPDU length in bytes at rate r: preamble + SIGNAL plus
// the ceiling number of OFDM symbols for service+payload+tail bits.
func PayloadAirtime(r Rate, bytes int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	bits := ServiceBits + 8*bytes + TailBits
	ndbps := rateTable[r].BitsPerSymbol
	symbols := (bits + ndbps - 1) / ndbps
	return PreambleDuration + time.Duration(symbols)*SymbolDuration
}

// ControlRate returns the mandatory control-response rate used to send an
// ACK for a data frame at rate r: the highest basic rate (6, 12, 24 Mbps)
// that does not exceed r, per the 802.11 control-response rules.
func ControlRate(r Rate) Rate {
	switch {
	case r >= Rate24:
		return Rate24
	case r >= Rate12:
		return Rate12
	default:
		return Rate6
	}
}

// FrameExchangeAirtime returns the total channel time consumed by one
// DATA/ACK exchange at rate r with the given payload size: DIFS + average
// contention backoff + data frame + SIFS + ACK. It is the cost model used
// by the trace-driven MAC simulator and by SampleRate's expected
// transmission-time metric.
func FrameExchangeAirtime(r Rate, bytes int) time.Duration {
	const avgBackoffSlots = 8 // mean of CWmin/2 for CWmin=15
	backoff := time.Duration(avgBackoffSlots) * SlotTime
	data := PayloadAirtime(r, bytes)
	ack := PayloadAirtime(ControlRate(r), ACKBytes)
	return DIFS + backoff + data + SIFS + ack
}

// FailedExchangeAirtime returns the channel time wasted by a transmission
// that receives no ACK: DIFS + backoff + data frame + ACK timeout.
func FailedExchangeAirtime(r Rate, bytes int) time.Duration {
	const avgBackoffSlots = 8
	const ackTimeout = 50 * time.Microsecond
	backoff := time.Duration(avgBackoffSlots) * SlotTime
	return DIFS + backoff + PayloadAirtime(r, bytes) + ackTimeout
}

// RTSBytes and CTSBytes are the 802.11 control frame lengths used by the
// RTS/CTS exchange.
const (
	RTSBytes = 20
	CTSBytes = 14
)

// RetryBackoff returns the additional mean contention backoff a
// retransmission attempt suffers beyond the first attempt's, per the
// 802.11 DCF exponential backoff: the contention window doubles each
// retry (CWmin 15, CWmax 1023), so the mean backoff grows from ~8 slots
// to ~512.
func RetryBackoff(attempt int) time.Duration {
	if attempt <= 0 {
		return 0
	}
	cw := 15 << attempt
	if cw > 1023 {
		cw = 1023
	}
	meanSlots := cw / 2
	return time.Duration(meanSlots-8) * SlotTime
}

// RTSCTSAirtime returns the extra channel time an RTS/CTS exchange adds
// in front of a data frame: RTS + SIFS + CTS + SIFS, with both control
// frames at the lowest mandatory rate.
func RTSCTSAirtime() time.Duration {
	return PayloadAirtime(Rate6, RTSBytes) + SIFS + PayloadAirtime(Rate6, CTSBytes) + SIFS
}
