package phy

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRateTable(t *testing.T) {
	want := []struct {
		r    Rate
		mbps int
		mod  Modulation
		ndbp int
	}{
		{Rate6, 6, BPSK, 24},
		{Rate9, 9, BPSK, 36},
		{Rate12, 12, QPSK, 48},
		{Rate18, 18, QPSK, 72},
		{Rate24, 24, QAM16, 96},
		{Rate36, 36, QAM16, 144},
		{Rate48, 48, QAM64, 192},
		{Rate54, 54, QAM64, 216},
	}
	for _, w := range want {
		info := w.r.Info()
		if info.Mbps != w.mbps {
			t.Errorf("%v: Mbps = %d, want %d", w.r, info.Mbps, w.mbps)
		}
		if info.Modulation != w.mod {
			t.Errorf("%v: modulation = %v, want %v", w.r, info.Modulation, w.mod)
		}
		if info.BitsPerSymbol != w.ndbp {
			t.Errorf("%v: NDBPS = %d, want %d", w.r, info.BitsPerSymbol, w.ndbp)
		}
		// NDBPS must equal Mbps × 4 µs symbol.
		if info.BitsPerSymbol != info.Mbps*4 {
			t.Errorf("%v: NDBPS %d inconsistent with rate", w.r, info.BitsPerSymbol)
		}
	}
}

func TestRateValid(t *testing.T) {
	for i := 0; i < NumRates; i++ {
		if !Rate(i).Valid() {
			t.Errorf("rate %d should be valid", i)
		}
	}
	for _, r := range []Rate{-1, NumRates, 100} {
		if r.Valid() {
			t.Errorf("rate %d should be invalid", r)
		}
	}
}

func TestRateString(t *testing.T) {
	if got := Rate54.String(); got != "54Mbps" {
		t.Errorf("Rate54.String() = %q", got)
	}
	if got := Rate(-3).String(); got != "Rate(-3)" {
		t.Errorf("invalid rate String() = %q", got)
	}
}

func TestAllRates(t *testing.T) {
	rs := AllRates()
	if len(rs) != NumRates {
		t.Fatalf("AllRates returned %d rates", len(rs))
	}
	for i, r := range rs {
		if int(r) != i {
			t.Errorf("AllRates[%d] = %v", i, r)
		}
	}
}

func TestPayloadAirtime(t *testing.T) {
	// 1000-byte frame at 54 Mbps: 16+8000+6 = 8022 bits over 216
	// bits/symbol = 38 symbols = 152 µs, plus 20 µs preamble.
	if got, want := PayloadAirtime(Rate54, 1000), 172*time.Microsecond; got != want {
		t.Errorf("airtime(54, 1000) = %v, want %v", got, want)
	}
	// 6 Mbps: 8022/24 = 335 symbols (ceil) = 1340 µs + 20.
	if got, want := PayloadAirtime(Rate6, 1000), 1360*time.Microsecond; got != want {
		t.Errorf("airtime(6, 1000) = %v, want %v", got, want)
	}
	// Zero and negative payloads must not panic and must cover the
	// service/tail bits.
	if PayloadAirtime(Rate6, 0) <= PreambleDuration {
		t.Error("zero payload should still need at least one symbol")
	}
	if PayloadAirtime(Rate6, -5) != PayloadAirtime(Rate6, 0) {
		t.Error("negative payload should clamp to zero")
	}
}

func TestAirtimeMonotonicInRate(t *testing.T) {
	for i := 1; i < NumRates; i++ {
		lo, hi := Rate(i-1), Rate(i)
		if PayloadAirtime(hi, 1000) >= PayloadAirtime(lo, 1000) {
			t.Errorf("airtime at %v should be below %v", hi, lo)
		}
	}
}

func TestControlRate(t *testing.T) {
	cases := []struct{ data, ctrl Rate }{
		{Rate6, Rate6}, {Rate9, Rate6},
		{Rate12, Rate12}, {Rate18, Rate12},
		{Rate24, Rate24}, {Rate36, Rate24}, {Rate48, Rate24}, {Rate54, Rate24},
	}
	for _, c := range cases {
		if got := ControlRate(c.data); got != c.ctrl {
			t.Errorf("ControlRate(%v) = %v, want %v", c.data, got, c.ctrl)
		}
	}
}

func TestFrameExchangeAirtime(t *testing.T) {
	// A full exchange must exceed the bare payload airtime (DIFS,
	// backoff, SIFS, ACK all add).
	for i := 0; i < NumRates; i++ {
		r := Rate(i)
		if FrameExchangeAirtime(r, 1000) <= PayloadAirtime(r, 1000) {
			t.Errorf("exchange airtime at %v too small", r)
		}
		if FailedExchangeAirtime(r, 1000) <= PayloadAirtime(r, 1000) {
			t.Errorf("failed exchange airtime at %v too small", r)
		}
	}
}

func TestRetryBackoff(t *testing.T) {
	if RetryBackoff(0) != 0 {
		t.Error("first attempt has no extra backoff")
	}
	prev := time.Duration(0)
	for a := 1; a <= 6; a++ {
		b := RetryBackoff(a)
		if b < prev {
			t.Errorf("backoff must be non-decreasing: attempt %d %v < %v", a, b, prev)
		}
		prev = b
	}
	// Saturation at CWmax.
	if RetryBackoff(10) != RetryBackoff(20) {
		t.Error("backoff must saturate at CWmax")
	}
}

func TestRTSCTSAirtime(t *testing.T) {
	if RTSCTSAirtime() <= 2*SIFS {
		t.Error("RTS/CTS exchange must cost more than the interframe spaces")
	}
}

func TestQuickAirtimePositive(t *testing.T) {
	f := func(rr uint8, bytes uint16) bool {
		r := Rate(int(rr) % NumRates)
		return PayloadAirtime(r, int(bytes)) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
