package phy

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPERBounds(t *testing.T) {
	f := func(rr uint8, snr float64, bytes uint16) bool {
		if math.IsNaN(snr) || math.IsInf(snr, 0) {
			return true
		}
		r := Rate(int(rr) % NumRates)
		p := PER(r, math.Mod(snr, 100), int(bytes)%3000)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPERMonotonicInSNR(t *testing.T) {
	for i := 0; i < NumRates; i++ {
		r := Rate(i)
		prev := 1.1
		for snr := -5.0; snr <= 40; snr += 0.5 {
			p := PER(r, snr, 1000)
			if p > prev+1e-9 {
				t.Errorf("%v: PER increased with SNR at %v dB (%v -> %v)", r, snr, prev, p)
			}
			prev = p
		}
	}
}

func TestPERMonotonicInLength(t *testing.T) {
	// Longer frames fail more at the same SNR.
	for _, snr := range []float64{5, 10, 15, 18} {
		for i := 0; i < NumRates; i++ {
			r := Rate(i)
			if PER(r, snr, 100) > PER(r, snr, 1500)+1e-9 {
				t.Errorf("%v at %v dB: short frame worse than long", r, snr)
			}
		}
	}
}

func TestFasterRatesNeedMoreSNR(t *testing.T) {
	// The SNR needed for 10% PER must not decrease as the rate rises.
	prev := -100.0
	for i := 0; i < NumRates; i++ {
		need := MinSNRFor(Rate(i), 1000, 0.1)
		if need < prev-0.5 { // small tolerance for the search resolution
			t.Errorf("rate %v needs %v dB, below slower rate's %v", Rate(i), need, prev)
		}
		if need > prev {
			prev = need
		}
	}
}

func TestDeliveryProbComplement(t *testing.T) {
	for i := 0; i < NumRates; i++ {
		for snr := 0.0; snr < 30; snr += 3 {
			p, q := PER(Rate(i), snr, 1000), DeliveryProb(Rate(i), snr, 1000)
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("PER + DeliveryProb != 1 at rate %v snr %v", Rate(i), snr)
			}
		}
	}
}

func TestBestRateForSNRExtremes(t *testing.T) {
	if got := BestRateForSNR(40, 1000); got != Rate54 {
		t.Errorf("at 40 dB best rate = %v, want 54", got)
	}
	if got := BestRateForSNR(-10, 1000); got != Rate6 {
		t.Errorf("at -10 dB best rate = %v, want 6", got)
	}
}

func TestBestRateForSNRNondecreasing(t *testing.T) {
	prev := Rate6
	for snr := -5.0; snr <= 35; snr += 0.25 {
		r := BestRateForSNR(snr, 1000)
		if r < prev {
			t.Errorf("best rate decreased from %v to %v at %v dB", prev, r, snr)
		}
		prev = r
	}
}

func TestBERUselessAtVeryLowSNR(t *testing.T) {
	// At -40 dB every modulation is effectively a coin flip; the exact
	// ceiling differs per constellation but a 1000-byte frame must be
	// undeliverable.
	for i := 0; i < NumRates; i++ {
		if b := BER(Rate(i), -40); b < 0.25 {
			t.Errorf("%v: BER at -40 dB = %v, want ≥ 0.25", Rate(i), b)
		}
		if p := PER(Rate(i), -40, 1000); p < 0.999999 {
			t.Errorf("%v: PER at -40 dB = %v, want ≈ 1", Rate(i), p)
		}
	}
}

func TestGuardIntervalDurations(t *testing.T) {
	want := map[GuardInterval]time.Duration{
		GI400:  400 * time.Nanosecond,
		GI800:  800 * time.Nanosecond,
		GI1600: 1600 * time.Nanosecond,
		GI3200: 3200 * time.Nanosecond,
	}
	for g, d := range want {
		if g.Duration() != d {
			t.Errorf("%v duration = %v, want %v", g, g.Duration(), d)
		}
	}
}

func TestISIPenalty(t *testing.T) {
	// No penalty when the delay spread fits inside the guard.
	if p := GI800.ISIPenaltyDB(500 * time.Nanosecond); p != 0 {
		t.Errorf("covered delay spread should cost nothing, got %v dB", p)
	}
	// Growing penalty beyond the guard.
	p1 := GI800.ISIPenaltyDB(1200 * time.Nanosecond)
	p2 := GI800.ISIPenaltyDB(2000 * time.Nanosecond)
	if !(p1 > 0 && p2 > p1) {
		t.Errorf("penalty should grow with excess delay: %v, %v", p1, p2)
	}
	// Longer guard covers more.
	if GI3200.ISIPenaltyDB(2000*time.Nanosecond) != 0 {
		t.Error("GI3200 should cover a 2 µs spread")
	}
}

func TestGuardIntervalTradeoff(t *testing.T) {
	// Indoors (short delay spread) the standard prefix beats the long
	// one because the long prefix wastes symbol time.
	in := EffectiveThroughputMbps(Rate54, GI800, 25, 200*time.Nanosecond, 1000)
	inLong := EffectiveThroughputMbps(Rate54, GI3200, 25, 200*time.Nanosecond, 1000)
	if in <= inLong {
		t.Errorf("indoors standard prefix %v should beat long prefix %v", in, inLong)
	}
	// Outdoors (long delay spread) the relationship flips.
	out := EffectiveThroughputMbps(Rate54, GI800, 21, 1500*time.Nanosecond, 1000)
	outLong := EffectiveThroughputMbps(Rate54, GI1600, 21, 1500*time.Nanosecond, 1000)
	if outLong <= out {
		t.Errorf("outdoors long prefix %v should beat standard %v", outLong, out)
	}
}

func TestGuardIntervalForEnvironment(t *testing.T) {
	if GuardIntervalForEnvironment(false) != GI800 {
		t.Error("indoor hint should pick the standard prefix")
	}
	if GuardIntervalForEnvironment(true) != GI1600 {
		t.Error("outdoor hint should pick the long prefix")
	}
}

func TestBestGuardIntervalMatchesHint(t *testing.T) {
	best := BestGuardInterval(Rate54, 21, 1500*time.Nanosecond, 1000)
	if best != GI1600 {
		t.Errorf("exhaustive search picked %v, expected GI1600 for a 1.5 µs spread", best)
	}
}
