package phy

import (
	"sync"
	"time"
)

// This file is the table-driven fast path over the analytic error model
// and airtime cost model. The analytic functions in error.go and
// rates.go remain the reference implementation; the tables here
// precompute them once per frame length so the per-packet hot loops of
// the channel generator and the MAC simulators do table lookups instead
// of Erfc/Pow evaluations and time.Duration arithmetic. This is the
// standard discrete-event-simulator trick (ns-2/ns-3 precompute their
// error-model tables the same way).
//
// Quantization: delivery probability is tabulated on a uniform SNR grid
// from lutMinSNR to lutMaxSNR in steps of 1/64 dB and linearly
// interpolated between grid points. Outside the grid the curves are
// flat (PER = 1 below, PER = 0 above for every rate), so lookups clamp.
// The measured max absolute error of the interpolated curves versus the
// analytic PER over the full range is below 1e-4 (asserted, with bound
// 1e-3, by TestErrorTableAccuracy).

const (
	// lutMinSNR/lutMaxSNR bound the tabulated SNR range (dB). Below
	// −20 dB every rate's analytic PER is 1; above 40 dB every rate's
	// BER has hit the model's numerical floor and PER is exactly 0.
	lutMinSNR = -20.0
	lutMaxSNR = 40.0
	// lutStepsPerDB is the quantization: 1/64 dB grid spacing.
	lutStepsPerDB = 64
	// lutN is the number of grid points.
	lutN = int((lutMaxSNR-lutMinSNR)*lutStepsPerDB) + 1
)

// ErrorTable holds the precomputed SNR→delivery-probability curves of
// all eight rates for one frame length, plus the matching
// throughput-optimal rate per SNR bin. Obtain one with ErrorTableFor;
// tables are immutable after construction and safe for concurrent use.
type ErrorTable struct {
	// Bytes is the frame length the table was built for.
	Bytes int
	// dp[r][i] is DeliveryProb(r, lutMinSNR + i/lutStepsPerDB, Bytes).
	dp [NumRates][lutN]float64
	// best[i] is BestRateForSNR at grid point i, computed from the
	// tabulated curves.
	best [lutN]int8
}

// errorTables caches one ErrorTable per frame length. Simulations use a
// handful of sizes (1000-byte data frames, ACK/RTS/CTS control sizes),
// so the cache stays tiny.
var errorTables sync.Map // int → *ErrorTable

// ErrorTableFor returns the (cached) error table for the given frame
// length, building it from the analytic curves on first use.
func ErrorTableFor(bytes int) *ErrorTable {
	if bytes <= 0 {
		bytes = DefaultFrameBytes
	}
	if t, ok := errorTables.Load(bytes); ok {
		return t.(*ErrorTable)
	}
	t := newErrorTable(bytes)
	actual, _ := errorTables.LoadOrStore(bytes, t)
	return actual.(*ErrorTable)
}

func newErrorTable(bytes int) *ErrorTable {
	t := &ErrorTable{Bytes: bytes}
	for r := 0; r < NumRates; r++ {
		for i := 0; i < lutN; i++ {
			t.dp[r][i] = DeliveryProb(Rate(r), snrAt(i), bytes)
		}
	}
	for i := 0; i < lutN; i++ {
		best, bestTput := 0, -1.0
		for r := 0; r < NumRates; r++ {
			if tput := float64(rateTable[r].Mbps) * t.dp[r][i]; tput > bestTput {
				bestTput = tput
				best = r
			}
		}
		t.best[i] = int8(best)
	}
	return t
}

// snrAt returns the SNR (dB) of grid point i.
func snrAt(i int) float64 {
	return lutMinSNR + float64(i)/lutStepsPerDB
}

// DeliveryProb returns the interpolated delivery probability of a frame
// of the table's length at rate r under the given SNR. It matches the
// analytic DeliveryProb to within 1e-3 absolute everywhere and costs a
// couple of array reads instead of Erfc and two Pow calls.
func (t *ErrorTable) DeliveryProb(r Rate, snrDB float64) float64 {
	x := (snrDB - lutMinSNR) * lutStepsPerDB
	// Negated comparisons so a NaN SNR clamps to the low edge instead
	// of reaching int(NaN) and indexing out of range.
	if !(x > 0) {
		return t.dp[r][0]
	}
	if x >= float64(lutN-1) {
		return t.dp[r][lutN-1]
	}
	i := int(x)
	row := &t.dp[r]
	return row[i] + (x-float64(i))*(row[i+1]-row[i])
}

// DeliveryProbs fills out[r] with the interpolated delivery probability
// of every rate at the given SNR, sharing one grid-index computation
// across all eight rows — the per-slot shape of the channel generator's
// inner loop.
func (t *ErrorTable) DeliveryProbs(snrDB float64, out *[NumRates]float64) {
	x := (snrDB - lutMinSNR) * lutStepsPerDB
	i, f := 0, 0.0
	switch {
	case !(x > 0): // includes NaN: clamp rather than index with int(NaN)
	case x >= float64(lutN-1):
		i = lutN - 2
		f = 1
	default:
		i = int(x)
		f = x - float64(i)
	}
	for r := range out {
		row := &t.dp[r]
		out[r] = row[i] + f*(row[i+1]-row[i])
	}
}

// PER returns the interpolated packet error rate, 1 − DeliveryProb.
func (t *ErrorTable) PER(r Rate, snrDB float64) float64 {
	return 1 - t.DeliveryProb(r, snrDB)
}

// BestRate returns the throughput-optimal rate at the given SNR per the
// tabulated curves — the table-driven counterpart of BestRateForSNR,
// used by the SNR-based adapters on every pick. Quantization moves the
// rate-switch thresholds by at most half a grid step (1/128 dB).
func (t *ErrorTable) BestRate(snrDB float64) Rate {
	x := (snrDB-lutMinSNR)*lutStepsPerDB + 0.5
	if !(x > 0) { // includes NaN: clamp rather than index with int(NaN)
		return Rate(t.best[0])
	}
	if x >= float64(lutN-1) {
		return Rate(t.best[lutN-1])
	}
	return Rate(t.best[int(x)])
}

// Airtimes memoizes the frame-exchange cost model for one payload size:
// the per-rate payload, successful-exchange and failed-exchange
// airtimes the MAC simulators charge on every attempt. Obtain one with
// AirtimesFor; tables are immutable and safe for concurrent use.
type Airtimes struct {
	// Bytes is the payload length the table was built for.
	Bytes int
	// Payload[r] is PayloadAirtime(r, Bytes).
	Payload [NumRates]time.Duration
	// Frame[r] is FrameExchangeAirtime(r, Bytes).
	Frame [NumRates]time.Duration
	// Failed[r] is FailedExchangeAirtime(r, Bytes).
	Failed [NumRates]time.Duration
}

// airtimes caches one Airtimes per payload size.
var airtimes sync.Map // int → *Airtimes

// DefaultFrameBytes is the payload length the simulations use unless an
// experiment says otherwise (the same default ErrorTableFor/AirtimesFor
// substitute for non-positive sizes). Warm-worker preparation warms it
// when the caller has no better list.
const DefaultFrameBytes = 1000

// Warm pre-builds the error and airtime tables for the given payload
// lengths (DefaultFrameBytes when none are given), so a worker can pay
// the LUT construction once, before its first assignment's trial
// fan-out would otherwise race to build the same tables inside the hot
// loop. The tables land in the process-global caches and stay warm for
// every later assignment.
func Warm(bytes ...int) {
	if len(bytes) == 0 {
		bytes = []int{DefaultFrameBytes}
	}
	for _, b := range bytes {
		ErrorTableFor(b)
		AirtimesFor(b)
	}
}

// AirtimesFor returns the (cached) airtime table for the given payload
// size, computing it via the analytic airtime functions on first use.
func AirtimesFor(bytes int) *Airtimes {
	if bytes <= 0 {
		bytes = DefaultFrameBytes
	}
	if t, ok := airtimes.Load(bytes); ok {
		return t.(*Airtimes)
	}
	t := &Airtimes{Bytes: bytes}
	for r := 0; r < NumRates; r++ {
		t.Payload[r] = PayloadAirtime(Rate(r), bytes)
		t.Frame[r] = FrameExchangeAirtime(Rate(r), bytes)
		t.Failed[r] = FailedExchangeAirtime(Rate(r), bytes)
	}
	actual, _ := airtimes.LoadOrStore(bytes, t)
	return actual.(*Airtimes)
}
