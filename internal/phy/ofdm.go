package phy

import "time"

// Guard-interval (cyclic prefix) model for §5.3 of the paper: 802.11a/g
// performs poorly outdoors because the delay spread of outdoor multipath
// exceeds the 0.8 µs cyclic prefix, inducing inter-symbol interference. A
// node that knows (via a GPS-lock hint) that it is outdoors can select a
// longer cyclic prefix to tolerate the longer delay spread, at the cost of
// symbol-rate overhead.

// GuardInterval is a selectable cyclic-prefix length.
type GuardInterval int

// Available guard intervals. GI800 is the 802.11a standard 0.8 µs prefix;
// the longer options model the hint-driven PHY reconfiguration of §5.3.
const (
	GI400  GuardInterval = iota // 0.4 µs (short guard, indoor only)
	GI800                       // 0.8 µs (802.11a standard)
	GI1600                      // 1.6 µs (outdoor)
	GI3200                      // 3.2 µs (long-range outdoor)
)

// Duration returns the cyclic-prefix duration.
func (g GuardInterval) Duration() time.Duration {
	switch g {
	case GI400:
		return 400 * time.Nanosecond
	case GI800:
		return 800 * time.Nanosecond
	case GI1600:
		return 1600 * time.Nanosecond
	case GI3200:
		return 3200 * time.Nanosecond
	}
	return 800 * time.Nanosecond
}

// String returns a short name such as "GI0.8us".
func (g GuardInterval) String() string {
	switch g {
	case GI400:
		return "GI0.4us"
	case GI800:
		return "GI0.8us"
	case GI1600:
		return "GI1.6us"
	case GI3200:
		return "GI3.2us"
	}
	return "GI?"
}

// SymbolOverhead returns the fraction of each OFDM symbol spent on the
// cyclic prefix rather than data (the throughput cost of a longer guard).
// The useful symbol body is fixed at 3.2 µs.
func (g GuardInterval) SymbolOverhead() float64 {
	gi := g.Duration().Seconds()
	return gi / (gi + 3.2e-6)
}

// ISIPenaltyDB returns the effective SNR degradation (dB) caused by
// inter-symbol interference when the channel delay spread exceeds the
// guard interval. Below the guard there is no penalty; above, the penalty
// grows with the uncovered excess delay, saturating at a deep fade. This
// captures the §5.3 observation that 802.11a works poorly outdoors with
// the standard 0.8 µs prefix.
func (g GuardInterval) ISIPenaltyDB(delaySpread time.Duration) float64 {
	gi := g.Duration()
	if delaySpread <= gi {
		return 0
	}
	excess := float64(delaySpread-gi) / float64(time.Microsecond)
	penalty := 6 * excess // ~6 dB per µs of uncovered delay spread
	if penalty > 25 {
		penalty = 25
	}
	return penalty
}

// EffectiveThroughputMbps returns the data throughput of rate r under
// guard interval g at the given SNR and delay spread, accounting for both
// the guard-interval symbol overhead and the ISI-induced SNR penalty. The
// §5.3 experiment sweeps guard intervals to show that a hint ("node is
// outdoors") lets the PHY pick the best prefix without searching.
func EffectiveThroughputMbps(r Rate, g GuardInterval, snrDB float64, delaySpread time.Duration, bytes int) float64 {
	effSNR := snrDB - g.ISIPenaltyDB(delaySpread)
	// Scale nominal rate by the data fraction of each symbol relative to
	// the standard 0.8 µs prefix the rate table assumes.
	std := GI800.SymbolOverhead()
	scale := (1 - g.SymbolOverhead()) / (1 - std)
	return float64(r.Mbps()) * scale * DeliveryProb(r, effSNR, bytes)
}

// BestGuardInterval returns the guard interval that maximises effective
// throughput at the given conditions — the search a hint-free node would
// have to perform empirically, per the paper's footnote in §5.3.
func BestGuardInterval(r Rate, snrDB float64, delaySpread time.Duration, bytes int) GuardInterval {
	best := GI800
	bestTput := -1.0
	for _, g := range []GuardInterval{GI400, GI800, GI1600, GI3200} {
		if tput := EffectiveThroughputMbps(r, g, snrDB, delaySpread, bytes); tput > bestTput {
			bestTput = tput
			best = g
		}
	}
	return best
}

// GuardIntervalForEnvironment returns the guard interval a hint-aware node
// selects directly from a location hint: indoor delay spreads (< 0.3 µs)
// are covered by the standard prefix, outdoor spreads need a longer one.
func GuardIntervalForEnvironment(outdoors bool) GuardInterval {
	if outdoors {
		return GI1600
	}
	return GI800
}
