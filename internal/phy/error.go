package phy

import "math"

// The error model maps SNR (dB) to bit error rate per modulation using the
// standard AWGN Q-function approximations, then applies an effective coding
// gain for the convolutional code and converts to packet error rate for a
// given frame length. The resulting per-rate PER curves have the familiar
// waterfall shape with the correct relative ordering and ~2-4 dB spacing
// between adjacent rates, which is what SNR-based adaptation (RBAR/CHARM)
// and the channel simulator need.

// qFunc is the Gaussian tail probability Q(x).
func qFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// codingGainDB approximates the SNR advantage (dB) conferred by the
// convolutional code at each coding rate. Values are standard soft-decision
// Viterbi asymptotic gains, slightly derated for finite block lengths.
func codingGainDB(num, den int) float64 {
	switch {
	case num == 1 && den == 2:
		return 5.0
	case num == 2 && den == 3:
		return 4.0
	case num == 3 && den == 4:
		return 3.5
	default:
		return 3.0
	}
}

// rawBER returns the uncoded bit error rate of the modulation at the given
// per-bit SNR ratio (linear, not dB).
func rawBER(m Modulation, ebno float64) float64 {
	if ebno <= 0 {
		return 0.5
	}
	switch m {
	case BPSK:
		return qFunc(math.Sqrt(2 * ebno))
	case QPSK:
		return qFunc(math.Sqrt(2 * ebno))
	case QAM16:
		// Gray-coded rectangular 16-QAM approximation.
		return 0.75 * qFunc(math.Sqrt(0.8*ebno))
	case QAM64:
		// Gray-coded rectangular 64-QAM approximation.
		return (7.0 / 12.0) * qFunc(math.Sqrt(ebno*6.0/21.0))
	}
	return 0.5
}

// bitsPerModSymbol returns bits carried per modulated subcarrier symbol.
func bitsPerModSymbol(m Modulation) float64 {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	return 1
}

// BER returns the post-coding bit error rate at rate r for the given SNR in
// dB. The convolutional code is modelled as an effective SNR gain plus an
// error-floor steepening exponent, a common simulation shortcut that
// preserves the waterfall shape.
func BER(r Rate, snrDB float64) float64 {
	info := rateTable[r]
	effSNR := snrDB + codingGainDB(info.CodingNum, info.CodingDen)
	// Convert channel SNR to per-bit Eb/N0: divide by bits per symbol.
	snrLin := math.Pow(10, effSNR/10)
	ebno := snrLin / bitsPerModSymbol(info.Modulation)
	ber := rawBER(info.Modulation, ebno)
	// Viterbi decoding steepens the BER curve; square the raw BER (bounded
	// below by a numerical floor) to model the post-decoding slope.
	post := ber * ber * 4
	if post > 0.5 {
		post = 0.5
	}
	if post < 1e-12 {
		post = 0
	}
	return post
}

// PER returns the packet error rate for a frame of the given length in
// bytes sent at rate r under the given SNR in dB, assuming independent bit
// errors after decoding.
func PER(r Rate, snrDB float64, bytes int) float64 {
	ber := BER(r, snrDB)
	if ber == 0 {
		return 0
	}
	bits := float64(8 * bytes)
	per := 1 - math.Pow(1-ber, bits)
	if per > 1 {
		per = 1
	}
	return per
}

// DeliveryProb returns 1 − PER, the probability a frame of the given
// length at rate r is delivered at the given SNR.
func DeliveryProb(r Rate, snrDB float64, bytes int) float64 {
	return 1 - PER(r, snrDB, bytes)
}

// MinSNRFor returns the lowest SNR in dB (to 0.25 dB resolution) at which
// rate r delivers frames of the given length with at most the target packet
// error rate. It is the training step SNR-based protocols perform for an
// operating environment.
func MinSNRFor(r Rate, bytes int, targetPER float64) float64 {
	lo, hi := -10.0, 60.0
	for hi-lo > 0.25 {
		mid := (lo + hi) / 2
		if PER(r, mid, bytes) > targetPER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// BestRateForSNR returns the fastest rate whose expected throughput
// (Mbps × delivery probability) is maximal at the given SNR for frames of
// the given length. It is the analytic reference picker; per-attempt
// callers (the SNR-based adapters) use ErrorTable.BestRate, its
// table-driven counterpart.
func BestRateForSNR(snrDB float64, bytes int) Rate {
	best := Rate6
	bestTput := -1.0
	for _, r := range Rates {
		tput := float64(r.Mbps()) * DeliveryProb(r, snrDB, bytes)
		if tput > bestTput {
			bestTput = tput
			best = r
		}
	}
	return best
}
