package phy

import (
	"math"
	"testing"
	"time"
)

// TestErrorTableAccuracy asserts the headline contract of the LUT layer:
// the interpolated PER/DeliveryProb curves match the analytic reference
// to within 1e-3 absolute over the full SNR range, for both the standard
// 1000-byte data frame and a short control-frame length. The sweep step
// is deliberately incommensurate with the table grid so almost every
// probe lands between grid points.
func TestErrorTableAccuracy(t *testing.T) {
	for _, bytes := range []int{1000, 256, 14} {
		et := ErrorTableFor(bytes)
		maxErr := 0.0
		for _, r := range Rates {
			for snr := -25.0; snr <= 45.0; snr += 0.0137 {
				got := et.PER(r, snr)
				want := PER(r, snr, bytes)
				if err := math.Abs(got - want); err > maxErr {
					maxErr = err
				}
				if got < 0 || got > 1 {
					t.Fatalf("PER out of range: %v at rate %v snr %.2f bytes %d", got, r, snr, bytes)
				}
			}
		}
		t.Logf("bytes=%d max |LUT-analytic| PER error: %.2e", bytes, maxErr)
		if maxErr > 1e-3 {
			t.Errorf("bytes=%d: max LUT error %.2e exceeds 1e-3 bound", bytes, maxErr)
		}
	}
}

// TestErrorTableClamps checks behaviour outside the tabulated range:
// every rate's PER is 1 far below the grid and 0 far above it, matching
// the analytic model's saturation.
func TestErrorTableClamps(t *testing.T) {
	et := ErrorTableFor(1000)
	for _, r := range Rates {
		if per := et.PER(r, -60); per != 1 {
			t.Errorf("rate %v PER(-60 dB) = %v, want 1", r, per)
		}
		if per := et.PER(r, 80); per != 0 {
			t.Errorf("rate %v PER(80 dB) = %v, want 0", r, per)
		}
	}
}

// TestErrorTableCached asserts table identity per frame length — the
// point of the cache is that hot loops hit the same immutable table.
func TestErrorTableCached(t *testing.T) {
	if ErrorTableFor(1000) != ErrorTableFor(1000) {
		t.Error("ErrorTableFor(1000) not cached")
	}
	if ErrorTableFor(1000) == ErrorTableFor(999) {
		t.Error("distinct frame lengths share a table")
	}
	if ErrorTableFor(0) != ErrorTableFor(1000) {
		t.Error("bytes<=0 should default to the 1000-byte table")
	}
}

// TestBestRateNearOptimal: the table-driven picker may shift a
// rate-switch threshold by up to half a grid step, but the rate it
// picks must always be throughput-competitive with the analytic
// optimum.
func TestBestRateNearOptimal(t *testing.T) {
	const bytes = 1000
	et := ErrorTableFor(bytes)
	for snr := -15.0; snr <= 42.0; snr += 0.0213 {
		lut := et.BestRate(snr)
		ref := BestRateForSNR(snr, bytes)
		tputLUT := float64(lut.Mbps()) * DeliveryProb(lut, snr, bytes)
		tputRef := float64(ref.Mbps()) * DeliveryProb(ref, snr, bytes)
		if tputLUT < tputRef*0.99-1e-9 {
			t.Fatalf("BestRate(%.3f) = %v (%.3f Mbps expected) vs analytic %v (%.3f Mbps)",
				snr, lut, tputLUT, ref, tputRef)
		}
	}
}

// TestAirtimesMatchAnalytic: the memoized airtime tables must be
// bit-identical to the analytic airtime functions — they are a cache,
// not an approximation.
func TestAirtimesMatchAnalytic(t *testing.T) {
	for _, bytes := range []int{1000, 1500, 256, ACKBytes, RTSBytes} {
		at := AirtimesFor(bytes)
		for _, r := range Rates {
			if got, want := at.Payload[r], PayloadAirtime(r, bytes); got != want {
				t.Errorf("Payload[%v] bytes=%d: %v != %v", r, bytes, got, want)
			}
			if got, want := at.Frame[r], FrameExchangeAirtime(r, bytes); got != want {
				t.Errorf("Frame[%v] bytes=%d: %v != %v", r, bytes, got, want)
			}
			if got, want := at.Failed[r], FailedExchangeAirtime(r, bytes); got != want {
				t.Errorf("Failed[%v] bytes=%d: %v != %v", r, bytes, got, want)
			}
		}
	}
	if AirtimesFor(1000) != AirtimesFor(1000) {
		t.Error("AirtimesFor(1000) not cached")
	}
}

// TestLUTLookupsAllocationFree pins the hot-path lookups at zero heap
// allocations per call.
func TestLUTLookupsAllocationFree(t *testing.T) {
	et := ErrorTableFor(1000)
	at := AirtimesFor(1000)
	var sinkF float64
	var sinkD time.Duration
	var sinkR Rate
	allocs := testing.AllocsPerRun(1000, func() {
		sinkF += et.DeliveryProb(Rate54, 17.3)
		sinkR = et.BestRate(21.9)
		sinkD += at.Frame[Rate24]
	})
	if allocs != 0 {
		t.Errorf("LUT lookups allocate %v times per call, want 0", allocs)
	}
	_, _, _ = sinkF, sinkD, sinkR
}

// TestRatesArray: the package-level rate array matches AllRates and
// iterating it does not allocate.
func TestRatesArray(t *testing.T) {
	rs := AllRates()
	if len(rs) != NumRates {
		t.Fatalf("AllRates length %d", len(rs))
	}
	for i, r := range Rates {
		if rs[i] != r {
			t.Errorf("Rates[%d] = %v, AllRates()[%d] = %v", i, r, i, rs[i])
		}
	}
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		for _, r := range Rates {
			sink += r.Mbps()
		}
	})
	if allocs != 0 {
		t.Errorf("ranging over Rates allocates %v times, want 0", allocs)
	}
	_ = sink
}
