package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ctlplane"
	"repro/internal/experiments"
)

// TestCampaignGoldenUnderScraping is the golden determinism test with
// the control plane live: the canonical three-job campaign runs while a
// goroutine scrapes /status and /metrics as fast as it can, and every
// report must still match the standalone run byte for byte. The scraper
// also asserts the counters it sees never go backwards — each snapshot
// is an internally consistent view of some loop state.
func TestCampaignGoldenUnderScraping(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	// The first job is deliberately heavy (~half a second standalone) so
	// the scraper provably overlaps live dispatch — the canonical
	// testJobs() campaign finishes before a scrape completes.
	jobs := []Job{
		{Experiment: "fig3-5", Scale: 0.5, Seed: 42, Shards: 4},
		{Experiment: "fig2-2", Scale: 0.1, Seed: 42, Shards: 3},
		{Experiment: "fig3-1", Scale: 0.1, Seed: 7, Shards: 2},
	}
	var bases []string
	for _, j := range jobs {
		bases = append(bases, standalone(t, j))
	}

	ctl := cluster.NewControl()
	srv, err := ctlplane.Start("127.0.0.1:0", ctlplane.Config{Service: "hintshard", Control: ctl})
	if err != nil {
		t.Fatalf("ctlplane: %v", err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	var scrapeErr error
	statusScrapes, metricScrapes := 0, 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 5 * time.Second}
		var prev cluster.RunStats
		for {
			select {
			case <-ctl.Done():
				return
			default:
			}
			resp, err := client.Get("http://" + srv.Addr() + "/status")
			if err != nil {
				scrapeErr = err
				return
			}
			var st ctlplane.Status
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				scrapeErr = err
				return
			}
			if st.Campaign != nil {
				s := st.Campaign.Stats
				if s.Workers < prev.Workers || s.Assigned < prev.Assigned ||
					s.Stolen < prev.Stolen || s.Requeued < prev.Requeued ||
					s.Verified < prev.Verified || s.Discarded < prev.Discarded {
					scrapeErr = fmt.Errorf("counters went backwards: %+v then %+v", prev, s)
					return
				}
				prev = s
			}
			statusScrapes++
			resp, err = client.Get("http://" + srv.Addr() + "/metrics")
			if err != nil {
				scrapeErr = err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if st.Campaign != nil && !strings.Contains(string(body), "hintshard_workers_total") {
				scrapeErr = fmt.Errorf("metrics missing workers_total:\n%s", body)
				return
			}
			metricScrapes++
		}
	}()

	tr := startTransport(t, "inproc", 2, false)
	results, stats, err := Run(tr, jobs, Options{
		ShardWorkers: 1,
		Retries:      3,
		Verify:       0.5,
		Control:      ctl,
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("campaign under scraping: %v", err)
	}
	if scrapeErr != nil {
		t.Fatalf("scraper: %v", scrapeErr)
	}
	if statusScrapes < 5 || metricScrapes < 5 {
		t.Fatalf("scraper barely ran (status=%d metrics=%d); the campaign must overlap many scrapes", statusScrapes, metricScrapes)
	}
	for ji, res := range results {
		if got := res.Report.String(); got != bases[ji] {
			t.Errorf("job %d (%s) differs from standalone run under live scraping:\n--- standalone ---\n%s\n--- campaign ---\n%s",
				ji, res.Job.Experiment, bases[ji], got)
		}
	}
	if stats.Verified == 0 {
		t.Error("verification sample was empty; scraping test lost its verify leg")
	}
	t.Logf("%d status + %d metrics scrapes during the campaign", statusScrapes, metricScrapes)
}

// gatedCampaignTransport delays worker arrival until the gate closes,
// so HTTP mutations land on a campaign that provably has not dispatched
// anything yet.
type gatedCampaignTransport struct {
	inner cluster.Transport
	gate  chan struct{}
}

func (g *gatedCampaignTransport) Accept() (cluster.Conn, error) {
	<-g.gate
	return g.inner.Accept()
}

func (g *gatedCampaignTransport) Close() error { return g.inner.Close() }

// TestCampaignMutationsViaHTTP is the end-to-end control-plane test:
// jobs submitted and cancelled through the HTTP endpoints take effect
// on the running scheduler — the submitted job's report is emitted
// byte-identical to its standalone run, the cancelled job never emits,
// and the admission errors surface as HTTP conflicts.
func TestCampaignMutationsViaHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	def := Job{Scale: 0.1, Seed: 42, Shards: 3}
	jobs := []Job{{Experiment: "fig2-2", Scale: 0.1, Seed: 42, Shards: 3}}

	ctl := cluster.NewControl()
	srv, err := ctlplane.Start("127.0.0.1:0", ctlplane.Config{
		Service: "hintshard",
		Control: ctl,
		Submit: func(spec string) (int, error) {
			j, err := ParseJob(spec, def)
			if err != nil {
				return 0, err
			}
			return ctl.Submit(cluster.Job{Experiment: j.Experiment, Seed: j.Seed, Scale: j.Scale, Shards: j.Shards})
		},
		Cancel: ctl.Cancel,
	})
	if err != nil {
		t.Fatalf("ctlplane: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	gate := make(chan struct{})
	tr := &gatedCampaignTransport{inner: startTransport(t, "inproc", 2, false), gate: gate}

	type emit struct {
		ji  int
		job Job
		rep string
	}
	var emits []emit
	var stats cluster.RunStats
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, stats, runErr = Run(tr, jobs, Options{
			ShardWorkers: 1,
			Retries:      3,
			Control:      ctl,
			Emit: func(ji int, j Job, rep *experiments.Report) error {
				emits = append(emits, emit{ji, j, rep.String()})
				return nil
			},
		})
	}()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Submit one job that will run, one that will be cancelled, and
	// exercise the rejection paths — all while the gate holds every
	// worker out.
	code, body := post("/jobs", "fig3-1:seed=42:shards=2")
	if code != http.StatusOK || !strings.Contains(body, `"job": 1`) {
		t.Fatalf("submit = %d %q", code, body)
	}
	code, body = post("/jobs", "fig2-2:seed=9")
	if code != http.StatusOK || !strings.Contains(body, `"job": 2`) {
		t.Fatalf("second submit = %d %q", code, body)
	}
	if code, body = post("/jobs/2/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel = %d %q", code, body)
	}
	if code, body = post("/jobs", "not-an-experiment"); code != http.StatusConflict {
		t.Fatalf("bad spec submit = %d %q, want 409", code, body)
	}
	if code, body = post("/jobs", ""); code != http.StatusBadRequest {
		t.Fatalf("empty spec submit = %d %q, want 400", code, body)
	}
	if code, body = post("/jobs/99/cancel", ""); code != http.StatusConflict {
		t.Fatalf("cancel of unknown job = %d %q, want 409", code, body)
	}
	if code, body = post("/jobs/x/cancel", ""); code != http.StatusBadRequest {
		t.Fatalf("non-numeric cancel = %d %q, want 400", code, body)
	}

	close(gate)
	<-done
	if runErr != nil {
		t.Fatalf("campaign: %v", runErr)
	}
	if stats.Submitted != 2 || stats.Cancelled != 1 {
		t.Errorf("stats submitted=%d cancelled=%d, want 2/1", stats.Submitted, stats.Cancelled)
	}
	if len(emits) != 2 || emits[0].ji != 0 || emits[1].ji != 1 {
		t.Fatalf("emitted %+v, want jobs 0 and 1 in order (cancelled job 2 absent)", emits)
	}
	wantSubmitted := Job{Experiment: "fig3-1", Scale: 0.1, Seed: 42, Shards: 2}
	if emits[1].job != wantSubmitted {
		t.Errorf("submitted job emitted as %+v, want %+v", emits[1].job, wantSubmitted)
	}
	for _, e := range emits {
		if e.rep != standalone(t, e.job) {
			t.Errorf("job %d (%s) report differs from standalone run", e.ji, e.job.Experiment)
		}
	}
}
