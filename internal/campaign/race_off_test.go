//go:build !race

package campaign

const underRace = false
