// Package campaign is the experiment-level scheduler: it queues a whole
// evaluation campaign — an ordered list of (experiment, scale, seed,
// shards) jobs — through one warm cluster fleet, instead of paying
// worker startup and LUT construction once per experiment. Jobs run
// through cluster.RunCampaign's multi-queue (one parallel.ShardQueue
// per job), so the stragglers of one experiment overlap the start of
// the next, workers stay connected across assignments with their phy
// tables cached (the warm-worker prepare step), and every report is
// emitted in submission order the moment its last shard merges — each
// byte-identical to the standalone single-process run of the same
// (experiment, scale, seed).
//
// The package adds two policies on top of the cluster runtime: the job
// spec format (ParseJob/ReadJobs — what cmd/hintshard -campaign
// accepts) and the deterministic verification sample (VerifySample —
// which shards get re-executed on a second worker and byte-compared
// when verification is on).
package campaign

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/parallel"
)

// Job is one campaign entry: reproduce Experiment at Scale with Seed,
// split into Shards queued shards.
type Job struct {
	Experiment string
	Scale      float64
	Seed       int64
	Shards     int
}

// String renders the job in the spec form ParseJob accepts.
func (j Job) String() string {
	return fmt.Sprintf("%s:scale=%g:seed=%d:shards=%d", j.Experiment, j.Scale, j.Seed, j.Shards)
}

// Options configures one campaign run.
type Options struct {
	// ShardWorkers bounds the goroutines each assignment fans across
	// inside its worker (0 = the worker decides); MergeWorkers bounds
	// each merged finish phase's in-process parallelism (0 = one per
	// CPU).
	ShardWorkers int
	MergeWorkers int
	// Retries is the failure budget per shard before the campaign
	// aborts; NoSteal disables speculative re-dispatch of in-flight
	// shards.
	Retries int
	NoSteal bool
	// NoWarm skips the warm-worker prepare step (sent by default: one
	// tiny message per worker that pre-builds the phy tables every
	// assignment of the campaign will read). WarmFrames overrides the
	// frame lengths it names; nil derives the list from the campaign's
	// own experiments (experiments.FrameSizes over the job list), so
	// workers warm exactly the tables the jobs will read.
	NoWarm     bool
	WarmFrames []int
	// Verify is the verification sampling fraction: 0 (the default)
	// trusts worker results like a plain cluster run; any positive
	// fraction re-executes a deterministic sample of at least one shard
	// per job — VerifySample — on a second worker and byte-compares the
	// partials. A divergence aborts the campaign with a hard fault
	// (*cluster.VerifyError): under the determinism contract it can
	// only mean a corrupt worker or corrupt hardware.
	Verify float64
	// DrainTimeout bounds the post-completion drain of speculative
	// stragglers (0 = one minute).
	DrainTimeout time.Duration
	// Token is the shared secret workers must prove in the hello
	// handshake; HeartbeatInterval/HeartbeatMisses set the liveness
	// cadence and budget (zero = cluster defaults, negative interval
	// disables). All three pass through to cluster.CampaignOptions
	// unchanged.
	Token             string
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...any)
	// Emit, if set, receives each report in submission order the moment
	// it is ready — while later jobs are still executing. The Job is
	// passed alongside the index because a control plane (Control) can
	// submit jobs beyond the initial list; for those, Emit is the only
	// delivery (Run's Results cover the initial jobs only). Returning an
	// error aborts the campaign.
	Emit func(job int, j Job, rep *experiments.Report) error
	// Control, if set, attaches a cluster control plane to the run: live
	// status snapshots plus job submission/cancellation against the
	// running fleet (see cluster.Control and internal/ctlplane).
	// Dynamically submitted jobs verify under the same Verify fraction
	// as initial jobs, with the same deterministic VerifySample.
	Control *cluster.Control
}

// Result pairs one job with its merged report.
type Result struct {
	Job    Job
	Report *experiments.Report
}

// Run executes the campaign over the transport's workers and returns
// one result per job, in submission order. Every report is
// byte-identical to the standalone single-process run of its job; see
// cluster.RunCampaign for the scheduling and failure story.
func Run(t cluster.Transport, jobs []Job, o Options) ([]Result, cluster.RunStats, error) {
	var stats cluster.RunStats
	if len(jobs) == 0 {
		return nil, stats, errors.New("campaign: no jobs")
	}
	// Negated form so NaN (for which every comparison is false) is
	// rejected too.
	if !(o.Verify >= 0 && o.Verify <= 1) {
		return nil, stats, fmt.Errorf("campaign: verification fraction %g outside [0, 1]", o.Verify)
	}
	cjobs := make([]cluster.Job, len(jobs))
	for ji, j := range jobs {
		if _, ok := experiments.Default.ByID(j.Experiment); !ok {
			return nil, stats, fmt.Errorf("campaign: job %d names unknown experiment %q", ji, j.Experiment)
		}
		if j.Shards < 1 {
			return nil, stats, fmt.Errorf("campaign: job %d (%s) has no shard count", ji, j.Experiment)
		}
		cjobs[ji] = cluster.Job{
			Experiment: j.Experiment,
			Seed:       j.Seed,
			Scale:      j.Scale,
			Shards:     j.Shards,
		}
	}
	results := make([]Result, len(jobs))
	for ji, j := range jobs {
		results[ji].Job = j
	}
	warmFrames := o.WarmFrames
	if warmFrames == nil && !o.NoWarm {
		// Derive the prepare list from what the campaign will actually
		// run. Jobs submitted later through the control plane warm their
		// tables lazily on first use, like any uncovered size.
		ids := make([]string, len(jobs))
		for ji, j := range jobs {
			ids[ji] = j.Experiment
		}
		warmFrames = experiments.Default.FrameSizes(ids...)
	}
	co := cluster.CampaignOptions{
		ShardWorkers:      o.ShardWorkers,
		MergeWorkers:      o.MergeWorkers,
		Retries:           o.Retries,
		NoSteal:           o.NoSteal,
		DrainTimeout:      o.DrainTimeout,
		Token:             o.Token,
		HeartbeatInterval: o.HeartbeatInterval,
		HeartbeatMisses:   o.HeartbeatMisses,
		Logf:              o.Logf,
		Warm:              !o.NoWarm,
		WarmFrames:        warmFrames,
		Control:           o.Control,
		OnReport: func(ji int, cj cluster.Job, rep *experiments.Report) error {
			// Jobs submitted through the control plane land beyond the
			// initial list: Emit is their only delivery.
			if ji < len(results) {
				results[ji].Report = rep
			}
			if o.Emit != nil {
				return o.Emit(ji, fromCluster(cj), rep)
			}
			return nil
		},
	}
	if o.Verify > 0 {
		co.VerifyShards = func(ji int, cj cluster.Job) []int {
			return VerifySample(fromCluster(cj), ji, o.Verify)
		}
	}
	stats, err := cluster.RunCampaign(t, cjobs, co)
	if err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// fromCluster mirrors a cluster job back into the campaign's Job form —
// the two carry identical fields, so the deterministic verification
// sample of a dynamically submitted job matches what an initial job
// with the same spec would get.
func fromCluster(cj cluster.Job) Job {
	return Job{Experiment: cj.Experiment, Scale: cj.Scale, Seed: cj.Seed, Shards: cj.Shards}
}

// VerifySample picks the shard indices of one job that verification
// re-executes: a pure function of (job, index, fraction), so the
// coordinator, logs, and tests always agree on the sample and reruns of
// the same campaign verify the same shards. Each shard is included
// with probability fraction (drawn from the job's own seed stream,
// decorrelated from every trial seed by the derivation label); a
// positive fraction always verifies at least one shard, so opting in
// can never silently verify nothing.
func VerifySample(job Job, index int, fraction float64) []int {
	if fraction <= 0 || job.Shards < 1 {
		return nil
	}
	if fraction >= 1 {
		out := make([]int, job.Shards)
		for k := range out {
			out[k] = k
		}
		return out
	}
	stream := parallel.NewSeedStream(job.Seed).Derive(fmt.Sprintf("campaign-verify/%d/%s", index, job.Experiment))
	var out []int
	for k := 0; k < job.Shards; k++ {
		// Top 53 bits of the derived seed as a uniform draw in [0, 1).
		u := float64(uint64(stream.Seed(k))>>11) / (1 << 53)
		if u < fraction {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		out = append(out, int(uint64(stream.Seed(job.Shards))%uint64(job.Shards)))
	}
	return out
}
