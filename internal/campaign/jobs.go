package campaign

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// This file is the job spec format of cmd/hintshard -campaign: a
// campaign is written as one spec per job, either as command-line
// arguments or as lines of a job file.
//
//	fig3-1
//	fig3-5:scale=0.2
//	fig3-5:scale=0.2:seed=7:shards=12
//
// The experiment id comes first; options follow as colon-separated
// key=value pairs and default to the caller's Job (the CLI's -scale,
// -seed, -shards flags). Job files additionally allow blank lines and
// #-comments.

// ParseJob parses one job spec, filling unspecified fields from def.
// The experiment id must be registered — a campaign that aborts on its
// fifth job because the first misspelled id only surfaced at dispatch
// would waste the whole fleet's work.
func ParseJob(spec string, def Job) (Job, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	j := def
	j.Experiment = parts[0]
	if j.Experiment == "" {
		return Job{}, fmt.Errorf("campaign: job spec %q names no experiment", spec)
	}
	if _, ok := experiments.Default.ByID(j.Experiment); !ok {
		return Job{}, fmt.Errorf("campaign: job spec %q names unknown experiment %q", spec, j.Experiment)
	}
	for _, opt := range parts[1:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Job{}, fmt.Errorf("campaign: malformed option %q in job spec %q (want key=value)", opt, spec)
		}
		switch key {
		case "scale":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return Job{}, fmt.Errorf("campaign: job spec %q: invalid scale %q", spec, val)
			}
			j.Scale = f
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Job{}, fmt.Errorf("campaign: job spec %q: invalid seed %q", spec, val)
			}
			j.Seed = n
		case "shards":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Job{}, fmt.Errorf("campaign: job spec %q: invalid shard count %q", spec, val)
			}
			j.Shards = n
		default:
			return Job{}, fmt.Errorf("campaign: job spec %q: unknown option %q (want scale, seed, or shards)", spec, key)
		}
	}
	if j.Shards < 1 {
		return Job{}, fmt.Errorf("campaign: job spec %q has no shard count (set shards=K or a -shards default)", spec)
	}
	return j, nil
}

// ReadJobs reads a job file: one spec per line, with blank lines and
// #-comments (whole-line or trailing) ignored.
func ReadJobs(r io.Reader, def Job) ([]Job, error) {
	var jobs []Job
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		j, err := ParseJob(text, def)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: reading job file: %w", err)
	}
	return jobs, nil
}
