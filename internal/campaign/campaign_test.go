package campaign

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/parallel"
)

// testJobs is the canonical small campaign the golden tests run: three
// cheap experiments with differing scales and seeds, so interleaving
// mixes genuinely different jobs (and the second job is larger than the
// third, so submission-order emission has something to gate).
func testJobs() []Job {
	return []Job{
		{Experiment: "fig2-2", Scale: 0.1, Seed: 42, Shards: 3},
		{Experiment: "fig3-1", Scale: 0.1, Seed: 42, Shards: 5},
		{Experiment: "fig2-2", Scale: 0.1, Seed: 7, Shards: 2},
	}
}

// standalone computes the single-process report each campaign job must
// reproduce byte for byte.
func standalone(t *testing.T, j Job) string {
	t.Helper()
	exp, ok := experiments.ByID(j.Experiment)
	if !ok {
		t.Fatalf("experiment %q not registered", j.Experiment)
	}
	return exp.Run(experiments.Config{Scale: j.Scale, Seed: j.Seed, Workers: 1}).String()
}

// TestStdioWorkerHelper is not a test: it is the subprocess-transport
// worker body the campaign tests spawn (the test binary re-executed
// with CAMPAIGN_STDIO_WORKER set). It exits the process directly so the
// test framework's "PASS" never reaches the protocol stream.
func TestStdioWorkerHelper(t *testing.T) {
	if os.Getenv("CAMPAIGN_STDIO_WORKER") == "" {
		t.Skip("subprocess worker helper; spawned by the campaign tests")
	}
	so := cluster.ServeOptions{Name: fmt.Sprintf("helper/%d", os.Getpid()), Workers: 1}
	if os.Getenv("CAMPAIGN_DIE_AFTER_2") != "" {
		seen := 0
		so.OnAssign = func(cluster.Assign) error {
			seen++
			if seen >= 2 {
				os.Exit(3) // abrupt mid-campaign death on the second assignment
			}
			return nil
		}
	}
	if err := cluster.ServeStdio(so); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// killSecond makes worker 0 die on its second assignment — mid-campaign,
// after contributing real work to the first job.
func startTransport(t *testing.T, kind string, workers int, killSecond bool) cluster.Transport {
	t.Helper()
	serveOpts := func(i int) cluster.ServeOptions {
		so := cluster.ServeOptions{Name: fmt.Sprintf("w%d", i), Workers: 1}
		if killSecond && i == 0 {
			seen := 0
			so.OnAssign = func(cluster.Assign) error {
				seen++
				if seen >= 2 {
					return errors.New("injected mid-campaign death")
				}
				return nil
			}
		}
		return so
	}
	switch kind {
	case "inproc":
		return cluster.NewInProcess(workers, func(i int, c cluster.Conn) {
			cluster.Serve(c, serveOpts(i))
		})
	case "subprocess":
		return cluster.NewSubprocess(workers, func(i int) *exec.Cmd {
			cmd := exec.Command(os.Args[0], "-test.run=TestStdioWorkerHelper$")
			cmd.Env = append(os.Environ(), "CAMPAIGN_STDIO_WORKER=1")
			if killSecond && i == 0 {
				cmd.Env = append(cmd.Env, "CAMPAIGN_DIE_AFTER_2=1")
			}
			return cmd
		})
	case "tcp":
		lt, err := cluster.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		for i := 0; i < workers; i++ {
			go func(i int) {
				c, err := cluster.DialTCP(lt.Addr())
				if err != nil {
					return
				}
				cluster.Serve(c, serveOpts(i))
			}(i)
		}
		return lt
	}
	t.Fatalf("unknown transport %q", kind)
	return nil
}

// TestCampaignReportsIdenticalAcrossTransportsAndWorkers is the
// campaign golden test: a three-job campaign through one fleet must
// reproduce every job's standalone single-process report byte for byte,
// for every transport × worker count, with reports emitted in
// submission order — whatever interleaving, stealing, or speculative
// duplication happened underneath.
func TestCampaignReportsIdenticalAcrossTransportsAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	jobs := testJobs()
	var bases []string
	for _, j := range jobs {
		bases = append(bases, standalone(t, j))
	}
	transports := []string{"inproc", "subprocess", "tcp"}
	workerCounts := []int{1, 2, runtime.NumCPU()}
	if underRace {
		workerCounts = []int{2}
	}
	seen := map[int]bool{}
	var counts []int
	for _, w := range workerCounts {
		if !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	for _, transport := range transports {
		for _, workers := range counts {
			t.Run(fmt.Sprintf("%s/workers=%d", transport, workers), func(t *testing.T) {
				var emitted []int
				tr := startTransport(t, transport, workers, false)
				results, _, err := Run(tr, jobs, Options{
					ShardWorkers: 1,
					Retries:      3,
					Emit: func(ji int, _ Job, rep *experiments.Report) error {
						emitted = append(emitted, ji)
						return nil
					},
				})
				if err != nil {
					t.Fatalf("campaign run: %v", err)
				}
				for ji, res := range results {
					if got := res.Report.String(); got != bases[ji] {
						t.Errorf("job %d (%s) differs from standalone run:\n--- standalone ---\n%s\n--- campaign ---\n%s",
							ji, res.Job.Experiment, bases[ji], got)
					}
				}
				for i, ji := range emitted {
					if i != ji {
						t.Fatalf("reports emitted out of submission order: %v", emitted)
					}
				}
				if len(emitted) != len(jobs) {
					t.Fatalf("emitted %d of %d reports", len(emitted), len(jobs))
				}
			})
		}
	}
}

// TestCampaignWithWorkerKilledMidCampaign completes the golden matrix's
// failure leg: one worker dies on its second assignment — inside the
// campaign, holding a shard — on every transport, and every report must
// still match the standalone run byte for byte.
func TestCampaignWithWorkerKilledMidCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	jobs := testJobs()
	var bases []string
	for _, j := range jobs {
		bases = append(bases, standalone(t, j))
	}
	transports := []string{"inproc", "subprocess", "tcp"}
	if underRace {
		transports = []string{"inproc"}
	}
	for _, transport := range transports {
		t.Run(transport, func(t *testing.T) {
			tr := startTransport(t, transport, 2, true)
			results, stats, err := Run(tr, jobs, Options{ShardWorkers: 1, Retries: 3})
			if err != nil {
				t.Fatalf("campaign run with killed worker: %v", err)
			}
			for ji, res := range results {
				if got := res.Report.String(); got != bases[ji] {
					t.Errorf("job %d (%s) differs after mid-campaign kill via %s:\n--- standalone ---\n%s\n--- campaign ---\n%s",
						ji, res.Job.Experiment, transport, bases[ji], got)
				}
			}
			// The dead worker's shard is recovered by requeue or steal.
			if stats.Requeued+stats.Stolen < 1 {
				t.Errorf("%s: killed worker's shard was neither requeued nor stolen (stats %+v)", transport, stats)
			}
		})
	}
}

// TestCampaignSubTrialJobsSurviveWorkerDeath: a campaign of the heavy
// sub-trial experiments (one trace-grid runner, one windowed tracker)
// with a worker dying on its second assignment — mid-sub-trial from the
// campaign's point of view. The requeued chunk must regenerate its
// traces and replay to byte-identical reports.
func TestCampaignSubTrialJobsSurviveWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	jobs := []Job{
		{Experiment: "fig3-7", Scale: 0.1, Seed: 42, Shards: 4},
		{Experiment: "fig4-6", Scale: 0.1, Seed: 42, Shards: 4},
	}
	var bases []string
	for _, j := range jobs {
		bases = append(bases, standalone(t, j))
	}
	tr := startTransport(t, "inproc", 3, true)
	results, stats, err := Run(tr, jobs, Options{ShardWorkers: 1, Retries: 3})
	if err != nil {
		t.Fatalf("sub-trial campaign with killed worker: %v", err)
	}
	for ji, res := range results {
		if got := res.Report.String(); got != bases[ji] {
			t.Errorf("job %d (%s) differs after mid-sub-trial kill:\n--- standalone ---\n%s\n--- campaign ---\n%s",
				ji, res.Job.Experiment, bases[ji], got)
		}
	}
	if stats.Requeued+stats.Stolen < 1 {
		t.Errorf("killed worker's sub-trial chunk was neither requeued nor stolen (stats %+v)", stats)
	}
	if stats.Assigned < 2 {
		t.Errorf("campaign dispatched only %d assignments; sub-trial shards are not spreading", stats.Assigned)
	}
}

// TestVerificationPassesCleanCampaign: with full verification on and
// honest workers, every sampled shard re-executes and byte-matches, the
// campaign completes, and the reports still match the standalone runs.
func TestVerificationPassesCleanCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	jobs := testJobs()
	tr := startTransport(t, "inproc", 2, false)
	results, stats, err := Run(tr, jobs, Options{ShardWorkers: 1, Retries: 3, Verify: 1})
	if err != nil {
		t.Fatalf("verified campaign: %v", err)
	}
	var want int
	for _, j := range jobs {
		want += j.Shards
	}
	if stats.Verified != want {
		t.Errorf("stats.Verified = %d, want %d (full sample)", stats.Verified, want)
	}
	for ji, res := range results {
		if got := res.Report.String(); got != standalone(t, res.Job) {
			t.Errorf("job %d differs under verification:\n%s", ji, got)
		}
	}
}

// corruptOnceServe is a worker that silently corrupts the first shard
// result with anything in it — it blanks one trial's emissions — and
// behaves honestly afterwards (a shard whose slice of the trial space
// is empty has nothing to corrupt and is passed through). Without
// verification this would poison the report; with it, the re-run must
// expose the divergence as a hard fault. corrupted reports whether the
// sabotage happened.
func corruptOnceServe(c cluster.Conn, corrupted *bool) {
	if err := cluster.Handshake(c, "corrupt", ""); err != nil {
		return
	}
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		switch a := m.(type) {
		case *cluster.Stop:
			return
		case *cluster.Prepare:
			// ignore: warming is advisory
		case *cluster.Assign:
			cfg := experiments.Config{Scale: a.Scale, Seed: a.Seed, Workers: 1}
			p, err := experiments.RunShard(a.Experiment, cfg, parallel.Shard{Index: a.Shard, Count: a.Shards})
			if err != nil {
				c.Send(&cluster.ShardError{Job: a.Job, Shard: a.Shard, Msg: err.Error()})
				continue
			}
			if !*corrupted {
			corrupt:
				for _, lp := range p.Loops {
					for ti := range lp.Trials {
						tp := &lp.Trials[ti]
						if len(tp.Accs) > 0 || len(tp.Hists) > 0 || len(tp.Series) > 0 {
							lp.Trials[ti] = experiments.TrialPartial{}
							*corrupted = true
							break corrupt
						}
					}
				}
			}
			for _, lp := range p.Loops {
				if err := c.Send(&cluster.LoopResult{Job: a.Job, Shard: a.Shard, Loop: lp}); err != nil {
					return
				}
			}
			if err := c.Send(&cluster.ShardDone{Job: a.Job, Shard: a.Shard}); err != nil {
				return
			}
		}
	}
}

// TestVerificationDetectsCorruptPartial is the acceptance test of the
// verification mode: a worker that corrupts one shard result must be
// caught by the byte-compare of the re-executed shard, aborting the
// campaign with a *cluster.VerifyError instead of publishing a report
// built from the corrupt partial.
func TestVerificationDetectsCorruptPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	jobs := []Job{{Experiment: "fig2-2", Scale: 0.1, Seed: 42, Shards: 2}}
	corrupted := false
	tr := cluster.NewInProcess(1, func(i int, c cluster.Conn) {
		corruptOnceServe(c, &corrupted)
	})
	_, _, err := Run(tr, jobs, Options{ShardWorkers: 1, Retries: 3, Verify: 1})
	if !corrupted {
		t.Fatal("fault injection never fired: no shard had a non-empty trial to corrupt")
	}
	if err == nil {
		t.Fatal("campaign with a corrupt worker and full verification succeeded")
	}
	var ve *cluster.VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("error %v is not a VerifyError", err)
	}
	if ve.Experiment != "fig2-2" || ve.Job != 0 {
		t.Errorf("fault names job %d (%s), want job 0 (fig2-2)", ve.Job, ve.Experiment)
	}
	if !strings.Contains(err.Error(), "verification failed") {
		t.Errorf("error %q does not describe the verification failure", err)
	}
}

// TestVerifySampleDeterministicAndNonEmpty pins the sampling policy:
// pure function of (job, index, fraction), at least one shard whenever
// the fraction is positive, everything at 1, nothing at 0.
func TestVerifySampleDeterministicAndNonEmpty(t *testing.T) {
	j := Job{Experiment: "fig3-1", Scale: 0.2, Seed: 42, Shards: 12}
	a := VerifySample(j, 1, 0.25)
	b := VerifySample(j, 1, 0.25)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("sample not deterministic: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Errorf("positive fraction sampled nothing")
	}
	for _, k := range a {
		if k < 0 || k >= j.Shards {
			t.Errorf("sample %v contains out-of-range shard %d", a, k)
		}
	}
	if got := VerifySample(j, 1, 1); len(got) != j.Shards {
		t.Errorf("fraction 1 sampled %d of %d shards", len(got), j.Shards)
	}
	if got := VerifySample(j, 1, 0); got != nil {
		t.Errorf("fraction 0 sampled %v", got)
	}
	if got := VerifySample(Job{Experiment: "x", Seed: 1, Shards: 3}, 0, 0.01); len(got) != 1 {
		t.Errorf("tiny fraction over 3 shards sampled %v, want exactly one forced pick", got)
	}
	// Different jobs draw different samples (decorrelation smoke check).
	other := VerifySample(Job{Experiment: "fig3-1", Scale: 0.2, Seed: 43, Shards: 12}, 1, 0.25)
	if fmt.Sprint(a) == fmt.Sprint(other) && len(a) == len(other) {
		// Identical small samples can collide; only flag the pathological
		// full match of every index at a larger fraction.
		big := VerifySample(j, 2, 0.5)
		bigOther := VerifySample(Job{Experiment: "fig3-1", Scale: 0.2, Seed: 43, Shards: 12}, 2, 0.5)
		if fmt.Sprint(big) == fmt.Sprint(bigOther) {
			t.Logf("note: seed-42 and seed-43 samples coincide (%v); not failing, but suspicious", big)
		}
	}
}

// TestRunValidatesJobs covers the campaign-level input checks.
func TestRunValidatesJobs(t *testing.T) {
	tr := cluster.NewInProcess(0, nil)
	if _, _, err := Run(tr, nil, Options{}); err == nil {
		t.Error("empty campaign accepted")
	}
	if _, _, err := Run(tr, []Job{{Experiment: "no-such", Shards: 2}}, Options{}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment accepted: %v", err)
	}
	if _, _, err := Run(tr, []Job{{Experiment: "fig2-2"}}, Options{}); err == nil || !strings.Contains(err.Error(), "no shard count") {
		t.Errorf("zero shard count accepted: %v", err)
	}
	if _, _, err := Run(tr, []Job{{Experiment: "fig2-2", Shards: 1}}, Options{Verify: 1.5}); err == nil || !strings.Contains(err.Error(), "verification fraction") {
		t.Errorf("out-of-range verification fraction accepted: %v", err)
	}
}

// TestParseJob pins the spec grammar.
func TestParseJob(t *testing.T) {
	def := Job{Scale: 1, Seed: 42, Shards: 4}
	good := []struct {
		spec string
		want Job
	}{
		{"fig3-1", Job{Experiment: "fig3-1", Scale: 1, Seed: 42, Shards: 4}},
		{"fig3-1:scale=0.2", Job{Experiment: "fig3-1", Scale: 0.2, Seed: 42, Shards: 4}},
		{"fig3-1:scale=0.2:seed=7:shards=9", Job{Experiment: "fig3-1", Scale: 0.2, Seed: 7, Shards: 9}},
		{"  fig2-2:seed=-3  ", Job{Experiment: "fig2-2", Scale: 1, Seed: -3, Shards: 4}},
	}
	for _, c := range good {
		got, err := ParseJob(c.spec, def)
		if err != nil {
			t.Errorf("ParseJob(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseJob(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	bad := []struct{ spec, want string }{
		{"", "names no experiment"},
		{"no-such-exp", "unknown experiment"},
		{"fig3-1:scale", "malformed option"},
		{"fig3-1:scale=0", "invalid scale"},
		{"fig3-1:seed=x", "invalid seed"},
		{"fig3-1:shards=0", "invalid shard count"},
		{"fig3-1:flux=9", "unknown option"},
		{"fig3-1:shards=2:bogus=1", "unknown option"},
	}
	for _, c := range bad {
		if _, err := ParseJob(c.spec, def); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseJob(%q) error %v, want mention of %q", c.spec, err, c.want)
		}
	}
	if _, err := ParseJob("fig3-1", Job{Scale: 1, Seed: 42}); err == nil || !strings.Contains(err.Error(), "no shard count") {
		t.Errorf("spec without any shard count accepted: %v", err)
	}
}

// TestReadJobs pins the job-file form: comments, blanks, defaults, and
// line numbers in errors.
func TestReadJobs(t *testing.T) {
	def := Job{Scale: 1, Seed: 42, Shards: 4}
	in := `# campaign for the full figure set
fig2-2
fig3-1:scale=0.2   # faster

fig2-2:seed=7:shards=2
`
	jobs, err := ReadJobs(strings.NewReader(in), def)
	if err != nil {
		t.Fatalf("ReadJobs: %v", err)
	}
	want := []Job{
		{Experiment: "fig2-2", Scale: 1, Seed: 42, Shards: 4},
		{Experiment: "fig3-1", Scale: 0.2, Seed: 42, Shards: 4},
		{Experiment: "fig2-2", Scale: 1, Seed: 7, Shards: 2},
	}
	if len(jobs) != len(want) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(want))
	}
	for i := range want {
		if jobs[i] != want[i] {
			t.Errorf("job %d = %+v, want %+v", i, jobs[i], want[i])
		}
	}
	if _, err := ReadJobs(strings.NewReader("fig2-2\nnot-an-experiment\n"), def); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("bad line not located: %v", err)
	}
}

// TestJobStringRoundTrips keeps the rendered form parseable.
func TestJobStringRoundTrips(t *testing.T) {
	j := Job{Experiment: "fig3-1", Scale: 0.25, Seed: -9, Shards: 6}
	got, err := ParseJob(j.String(), Job{})
	if err != nil {
		t.Fatalf("ParseJob(%q): %v", j.String(), err)
	}
	if got != j {
		t.Errorf("round trip %q = %+v, want %+v", j.String(), got, j)
	}
}

// recordPrepareServe is an honest worker that additionally records the
// frame list of every Prepare it receives.
func recordPrepareServe(c cluster.Conn, name string, record func([]int)) {
	if err := cluster.Handshake(c, name, ""); err != nil {
		return
	}
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		switch a := m.(type) {
		case *cluster.Stop:
			return
		case *cluster.Prepare:
			record(append([]int(nil), a.Frames...))
		case *cluster.Assign:
			cfg := experiments.Config{Scale: a.Scale, Seed: a.Seed, Workers: 1}
			p, err := experiments.RunShard(a.Experiment, cfg, parallel.Shard{Index: a.Shard, Count: a.Shards})
			if err != nil {
				c.Send(&cluster.ShardError{Job: a.Job, Shard: a.Shard, Msg: err.Error()})
				continue
			}
			for _, lp := range p.Loops {
				if err := c.Send(&cluster.LoopResult{Job: a.Job, Shard: a.Shard, Loop: lp}); err != nil {
					return
				}
			}
			if err := c.Send(&cluster.ShardDone{Job: a.Job, Shard: a.Shard}); err != nil {
				return
			}
		}
	}
}

// TestCampaignDerivesWarmFrames: with no WarmFrames override, the
// prepare list every worker receives is derived from the campaign's own
// experiments (experiments.FrameSizes over the job list), not a fixed
// guess.
func TestCampaignDerivesWarmFrames(t *testing.T) {
	jobs := []Job{{Experiment: "fig2-2", Scale: 0.1, Seed: 1, Shards: 2}}
	var mu sync.Mutex
	var prepares [][]int
	tr := cluster.NewInProcess(2, func(i int, c cluster.Conn) {
		recordPrepareServe(c, fmt.Sprintf("warm%d", i), func(frames []int) {
			mu.Lock()
			prepares = append(prepares, frames)
			mu.Unlock()
		})
	})
	if _, _, err := Run(tr, jobs, Options{ShardWorkers: 1}); err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(prepares) != 2 {
		t.Fatalf("recorded %d prepare messages, want one per worker (2)", len(prepares))
	}
	want := experiments.FrameSizes("fig2-2")
	for i, frames := range prepares {
		if !reflect.DeepEqual(frames, want) {
			t.Errorf("worker %d warmed %v, want the derived list %v", i, frames, want)
		}
	}
}
