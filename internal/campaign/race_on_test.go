//go:build race

package campaign

// underRace lets the campaign determinism matrix shrink when the race
// detector (≈10× slowdown) is on: the interleavings the detector needs
// happen at any scale.
const underRace = true
