// Package trace defines the trace containers the evaluation harness runs
// on, mirroring the paper's methodology: channel fate traces that record,
// for each 5 ms timeslot, the fate of a packet sent at each of the eight
// 802.11a bit rates during that slot. The MAC simulator bypasses any
// propagation model and simply references the trace — the same
// architecture as the paper's modified ns-3 harness.
//
// Traces serialise through the version-tagged bit-exact binary codec in
// codec.go for storage and exchange between cmd/tracegen, the
// benchmarks, and the fleet.
package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"time"

	"repro/internal/phy"
)

// DefaultSlot is the paper's trace timeslot width.
const DefaultSlot = 5 * time.Millisecond

// Slot records the channel state during one timeslot.
type Slot struct {
	// SNR is the channel signal-to-noise ratio (dB) during the slot.
	SNR float64
	// Moving is the ground-truth mobility state of the receiver.
	Moving bool
	// Delivered records whether a packet sent at each rate during this
	// slot is received (every packet of the same rate in one slot shares
	// this fate, as in the paper's trace playback).
	Delivered [phy.NumRates]bool
	// Prob is the ground-truth delivery probability at each rate, used
	// as the "actual" curve in the probing experiments.
	Prob [phy.NumRates]float64
}

// FateTrace is a complete channel trace.
type FateTrace struct {
	// Env and Mode label the trace (e.g. "office", "mixed").
	Env, Mode string
	// SlotDur is the slot width (DefaultSlot unless stated).
	SlotDur time.Duration
	// Seed reproduces the trace via the channel generator.
	Seed int64
	// ExtraLoss is the rate-independent per-packet loss probability
	// (collisions/interference) the MAC simulator applies on top of the
	// per-slot channel fates. Slot probabilities already include it.
	ExtraLoss float64
	Slots     []Slot

	// invSlot/invMax implement SlotIndex's division-free fast path (see
	// Prepare); both zero means "divide". They are derived state, so the
	// codec skips them and decoding recomputes them.
	invSlot uint64
	invMax  int64
}

// Prepare precomputes the fixed-point reciprocal that lets SlotIndex
// map a time to its slot with a multiply instead of a 64-bit division —
// the last division in the MAC simulator's per-attempt path (ratesim.Run
// calls At twice per attempt). The channel generator and the trace
// reader call it on every trace they produce; hand-assembled traces work
// without it, on the dividing path.
//
// The fast path computes floor(at/d) as the high 64 bits of
// at · m where m = floor(2⁶⁴/d)+1. Writing e = m·d − 2⁶⁴ (so
// 0 ≤ e ≤ d), the product is at/d + at·e/(d·2⁶⁴); the error term stays
// below 1/d — too small to cross the next multiple of d — whenever
// at·e < 2⁶⁴. invMax is the largest such at: below it the multiply is
// exactly the division (proven over the whole range by
// TestSlotIndexReciprocalExact), and beyond it (traces longer than
// ~2⁶⁴/d ns, about an hour at the 5 ms slot) SlotIndex falls back to
// dividing.
func (t *FateTrace) Prepare() {
	t.invSlot, t.invMax = 0, 0
	if t.SlotDur < 2 {
		// d = 1 ns would need m = 2⁶⁴+1; the plain division is a no-op
		// for such traces anyway.
		return
	}
	d := uint64(t.SlotDur)
	m := ^uint64(0)/d + 1 // floor(2⁶⁴/d) + 1 (exactly 2⁶⁴/d when d is a power of two)
	e := m * d            // wraps to m·d − 2⁶⁴ = e, 0 ≤ e ≤ d
	max := int64(math.MaxInt64)
	if e != 0 {
		if lim := ^uint64(0) / e; lim < uint64(max) {
			max = int64(lim)
		}
	}
	t.invSlot = m
	t.invMax = max
}

// Duration returns the trace length.
func (t *FateTrace) Duration() time.Duration {
	return time.Duration(len(t.Slots)) * t.SlotDur
}

// SlotIndex returns the slot index covering time at, clamped to the
// trace bounds. On a Prepared trace the index comes from one 128-bit
// multiply by the precomputed reciprocal — bit-identical to the
// division for every at below invMax (about an hour at the default
// slot width).
func (t *FateTrace) SlotIndex(at time.Duration) int {
	if at < 0 {
		return 0
	}
	var i int
	if t.invSlot != 0 && int64(at) <= t.invMax {
		hi, _ := bits.Mul64(uint64(at), t.invSlot)
		i = int(hi)
	} else {
		i = int(at / t.SlotDur)
	}
	if i >= len(t.Slots) {
		i = len(t.Slots) - 1
	}
	return i
}

// At returns the slot covering time at.
func (t *FateTrace) At(at time.Duration) *Slot {
	return &t.Slots[t.SlotIndex(at)]
}

// Delivered reports the fate of a packet sent at rate r at time at.
func (t *FateTrace) Delivered(at time.Duration, r phy.Rate) bool {
	return t.At(at).Delivered[r]
}

// MovingAt reports ground-truth receiver mobility at time at.
func (t *FateTrace) MovingAt(at time.Duration) bool { return t.At(at).Moving }

// WindowProb returns the mean delivery probability at rate r over the
// window [at−window, at]. The probing experiments use this as the
// "actual" delivery probability, matching the paper's definition (the
// ground truth is itself a 10-packet sliding window over the 200/s
// reference stream, i.e. a ~50 ms average).
func (t *FateTrace) WindowProb(at, window time.Duration, r phy.Rate) float64 {
	if window <= 0 {
		return t.At(at).Prob[r]
	}
	from := t.SlotIndex(at - window)
	to := t.SlotIndex(at)
	sum := 0.0
	for i := from; i <= to; i++ {
		sum += t.Slots[i].Prob[r]
	}
	return sum / float64(to-from+1)
}

// Validate checks structural invariants: positive slot width, at least
// one slot, probabilities within [0, 1].
func (t *FateTrace) Validate() error {
	if t.SlotDur <= 0 {
		return errors.New("trace: non-positive slot duration")
	}
	if len(t.Slots) == 0 {
		return errors.New("trace: no slots")
	}
	for i, s := range t.Slots {
		for r := 0; r < phy.NumRates; r++ {
			if p := s.Prob[r]; p < 0 || p > 1 {
				return fmt.Errorf("trace: slot %d rate %d probability %v out of range", i, r, p)
			}
		}
	}
	return nil
}

// Encode serialises the trace as one framed record of the binary codec
// (see codec.go); Read is its inverse.
func (t *FateTrace) Encode(w io.Writer) error {
	return t.WriteBinary(w)
}

// Read deserialises a trace written by Encode: the trace is validated
// and its derived replay state prepared.
func Read(r io.Reader) (*FateTrace, error) {
	return ReadBinary(r)
}

// PacketTrace is a fine-grained per-packet fate record used by the
// conditional-loss analysis (Figure 3-1), where back-to-back packets at
// one rate are sent far faster than the 5 ms slot width. Packet fates
// live in a packed bitset — the form the analysis consumes — so
// generators emit words directly (8× smaller than the former []bool and
// no repacking pass per analysis); NewPacketTrace sizes it and
// SetLost/Lost address single packets.
type PacketTrace struct {
	Rate phy.Rate
	// Interval is the inter-packet spacing.
	Interval time.Duration
	// n is the packet count; words holds one bit per packet (1 = lost),
	// packet i at words[i/64] bit i%64. Bits at n and above stay zero.
	n     int
	words []uint64
}

// NewPacketTrace returns a trace of n packets, all initially delivered.
func NewPacketTrace(rate phy.Rate, interval time.Duration, n int) *PacketTrace {
	if n < 0 {
		n = 0
	}
	return &PacketTrace{Rate: rate, Interval: interval, n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of packets in the trace.
func (p *PacketTrace) Len() int { return p.n }

// Lost reports whether packet i was lost; out-of-range indices read as
// delivered.
func (p *PacketTrace) Lost(i int) bool {
	if i < 0 || i >= p.n {
		return false
	}
	return p.words[i>>6]&(1<<(i&63)) != 0
}

// SetLost records packet i's fate.
func (p *PacketTrace) SetLost(i int, lost bool) {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("trace: packet %d out of range [0,%d)", i, p.n))
	}
	if lost {
		p.words[i>>6] |= 1 << (i & 63)
	} else {
		p.words[i>>6] &^= 1 << (i & 63)
	}
}

// LossRate returns the unconditional packet loss probability.
func (p *PacketTrace) LossRate() float64 {
	if p.n == 0 {
		return 0
	}
	lost := 0
	for _, w := range p.words {
		lost += bits.OnesCount64(w)
	}
	return float64(lost) / float64(p.n)
}

// ConditionalLoss returns P(packet i+k lost | packet i lost) for each lag
// k in 1..maxLag — the quantity plotted in Figure 3-1.
//
// The computation is the dominant analysis cost on multi-minute packet
// streams (100 lags × ~10⁵ packets), so it runs directly on the packed
// loss bitset: for each lag the joint-loss count is
// popcount(bits & bits>>k) taken word at a time, 64 packets per step,
// rather than a per-packet scan.
func (p *PacketTrace) ConditionalLoss(maxLag int) []float64 {
	out := make([]float64, maxLag+1)
	n := p.n
	if n == 0 {
		return out
	}
	words := (n + 63) / 64
	// Pad with zero words so the shifted reads below never go out of
	// range (they read up to maxLag bits past the end).
	packed := make([]uint64, words+maxLag/64+2)
	copy(packed, p.words)
	// prefix[w] = set bits in words [0, w), for O(1) "losses before
	// index m" queries.
	prefix := make([]int, words+1)
	for w := 0; w < words; w++ {
		prefix[w+1] = prefix[w] + bits.OnesCount64(packed[w])
	}
	for k := 1; k <= maxLag && k < n; k++ {
		m := n - k // conditioning packets are i ∈ [0, m)
		lw, lr := m>>6, m&63
		lost := prefix[lw]
		if lr > 0 {
			lost += bits.OnesCount64(packed[lw] & (1<<lr - 1))
		}
		if lost == 0 {
			continue
		}
		q, r := k>>6, k&63
		both := 0
		for w := 0; w <= lw; w++ {
			var shifted uint64
			if r == 0 {
				shifted = packed[w+q]
			} else {
				shifted = packed[w+q]>>r | packed[w+q+1]<<(64-r)
			}
			word := packed[w] & shifted
			if w == lw {
				if lr == 0 {
					break
				}
				word &= 1<<lr - 1
			}
			both += bits.OnesCount64(word)
		}
		out[k] = float64(both) / float64(lost)
	}
	return out
}
