package trace_test

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/sensors"
	"repro/internal/trace"
)

func generated(t *testing.T, seed int64) *trace.FateTrace {
	t.Helper()
	total := 2 * time.Second
	return channel.Generate(channel.Config{
		Env:   channel.Office,
		Sched: sensors.AlternatingSchedule(total, total/2, sensors.Walk, seed%2 == 1),
		Total: total,
		Seed:  seed,
	})
}

func tracesEqual(a, b *trace.FateTrace) bool {
	if a.Env != b.Env || a.Mode != b.Mode || a.SlotDur != b.SlotDur ||
		a.Seed != b.Seed || a.ExtraLoss != b.ExtraLoss || len(a.Slots) != len(b.Slots) {
		return false
	}
	for i := range a.Slots {
		x, y := &a.Slots[i], &b.Slots[i]
		if math.Float64bits(x.SNR) != math.Float64bits(y.SNR) || x.Moving != y.Moving ||
			x.Delivered != y.Delivered {
			return false
		}
		for r := 0; r < phy.NumRates; r++ {
			if math.Float64bits(x.Prob[r]) != math.Float64bits(y.Prob[r]) {
				return false
			}
		}
	}
	return true
}

func TestFateTraceCodecRoundTripsBitExactly(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		orig := generated(t, seed)
		enc, err := orig.MarshalBinary()
		if err != nil {
			t.Fatalf("seed %d: MarshalBinary: %v", seed, err)
		}
		var dec trace.FateTrace
		if err := dec.UnmarshalBinary(enc); err != nil {
			t.Fatalf("seed %d: UnmarshalBinary: %v", seed, err)
		}
		if !tracesEqual(orig, &dec) {
			t.Fatalf("seed %d: decoded trace differs from original", seed)
		}
		// Canonical: re-encoding the decoded trace reproduces the bytes.
		enc2, err := dec.MarshalBinary()
		if err != nil {
			t.Fatalf("seed %d: re-encoding: %v", seed, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("seed %d: re-encoded bytes differ", seed)
		}
		// Decoded traces must replay identically: the fast-path slot
		// lookup state is rebuilt by UnmarshalBinary.
		for _, at := range []time.Duration{0, 7 * time.Millisecond, orig.Duration() - 1} {
			if orig.SlotIndex(at) != dec.SlotIndex(at) {
				t.Fatalf("seed %d: SlotIndex(%v) differs after round trip", seed, at)
			}
		}
	}
}

func TestFateTraceCodecReusesSlotCapacity(t *testing.T) {
	orig := generated(t, 1)
	enc, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec := trace.FateTrace{Slots: make([]trace.Slot, 0, len(orig.Slots)+10)}
	backing := &dec.Slots[:1][0]
	if err := dec.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if &dec.Slots[0] != backing {
		t.Error("decode into a trace with capacity reallocated the slot array")
	}
}

func TestFateTraceCodecStreamForm(t *testing.T) {
	orig := generated(t, 2)
	var buf bytes.Buffer
	if err := orig.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(orig, dec) {
		t.Fatal("stream round trip altered the trace")
	}
}

func TestFateTraceCodecRejectsMalformedInput(t *testing.T) {
	valid, err := generated(t, 3).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"bad tag":       append([]byte{'X'}, valid[1:]...),
		"bad version":   append([]byte{'T', 99}, valid[2:]...),
		"truncated":     valid[:len(valid)/2],
		"trailing":      append(append([]byte{}, valid...), 0),
		"bad moving":    corrupt(valid, envModeLen(valid)+2+8+8+8+8+8, 7),
		"count bomb":    corrupt(valid, envModeLen(valid)+2+8+8+8+7, 0xff),
		"prob range":    corrupt(valid, envModeLen(valid)+2+8+8+8+8+8+2+7, 0x40),
		"half header":   {'T'},
		"string length": corrupt(valid, 5, 0xff),
	}
	for name, data := range cases {
		var tr trace.FateTrace
		err := tr.UnmarshalBinary(data)
		if err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
			continue
		}
		if !errors.Is(err, trace.ErrCodec) {
			t.Errorf("%s: error %v does not wrap ErrCodec", name, err)
		}
	}
}

// envModeLen returns the byte length of the two string fields (with
// their length prefixes) in a valid encoding, so corruption offsets can
// target fields after them.
func envModeLen(enc []byte) int {
	envLen := int(uint32(enc[2]) | uint32(enc[3])<<8 | uint32(enc[4])<<16 | uint32(enc[5])<<24)
	off := 2 + 4 + envLen
	modeLen := int(uint32(enc[off]) | uint32(enc[off+1])<<8 | uint32(enc[off+2])<<16 | uint32(enc[off+3])<<24)
	return 4 + envLen + 4 + modeLen
}

func corrupt(enc []byte, off int, val byte) []byte {
	out := append([]byte{}, enc...)
	out[off] = val
	return out
}

func TestFateTraceCodecRejectsInvalidTraceOnEncode(t *testing.T) {
	bad := &trace.FateTrace{SlotDur: time.Millisecond} // no slots
	if _, err := bad.MarshalBinary(); err == nil {
		t.Error("MarshalBinary accepted a trace Validate rejects")
	}
}

func FuzzFateTraceCodec(f *testing.F) {
	total := 500 * time.Millisecond
	for seed := int64(0); seed < 3; seed++ {
		tr := channel.Generate(channel.Config{
			Env:   channel.Office,
			Sched: sensors.AlternatingSchedule(total, total/2, sensors.Walk, false),
			Total: total,
			Seed:  seed,
		})
		enc, err := tr.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{'T', 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr trace.FateTrace
		if err := tr.UnmarshalBinary(data); err != nil {
			if !errors.Is(err, trace.ErrCodec) {
				t.Fatalf("malformed input error %v does not wrap ErrCodec", err)
			}
			return
		}
		// Accepted input must re-encode canonically and round-trip.
		enc, err := tr.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded trace fails to re-encode: %v", err)
		}
		var again trace.FateTrace
		if err := again.UnmarshalBinary(enc); err != nil {
			t.Fatalf("re-encoded trace fails to decode: %v", err)
		}
		if !bytes.Equal(data, enc) {
			t.Fatalf("accepted input is not canonical: %d in, %d out", len(data), len(enc))
		}
	})
}
