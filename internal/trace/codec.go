package trace

// Version-tagged bit-exact binary codec for FateTrace, mirroring the
// internal/stats codec idiom: a tag+version header, little-endian
// fixed-width integers, floats as their IEEE 754 bit patterns (so a
// decoded trace replays float-op for float-op identically to the
// generated one — NaN payloads, signed zeros and all), and a decoder
// that answers malformed input with an error wrapping ErrCodec, never
// a panic. This replaces the original gob serialisation (Encode/Read
// now route through it): the encoding is canonical — one valid byte
// string per trace — so two fleets proving they generated the same
// trace can compare bytes, and sub-trial shards can ship or check
// traces without gob's self-describing framing or its reflection cost.
//
// Layout, all integers little-endian:
//
//	'T' version        — header, version 1
//	u32 len, bytes     — Env
//	u32 len, bytes     — Mode
//	u64                — SlotDur (nanoseconds, int64 bits)
//	u64                — Seed (int64 bits)
//	f64                — ExtraLoss
//	u64                — slot count
//	per slot:
//	  f64              — SNR
//	  byte             — Moving (0 or 1, strictly)
//	  byte             — Delivered bitmask, bit r = rate r delivered
//	  f64 × NumRates   — Prob
//
// Decoding validates the structural invariants (Validate) and prepares
// the derived fast-path state (Prepare), so a decoded trace is ready to
// replay.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/phy"
	"repro/internal/stats"
)

// CodecVersion tags the FateTrace binary codec; decoders refuse any
// other version.
const CodecVersion = 1

const codecTag = 'T'

// slotBytes is the fixed wire size of one slot record.
const slotBytes = 8 + 1 + 1 + 8*phy.NumRates

// The Delivered bitmask is a single byte; this fails to compile if the
// rate table ever outgrows it.
var _ [8 - phy.NumRates]struct{}

// ErrCodec is the sentinel wrapped by every malformed-input error the
// decoder returns.
var ErrCodec = errors.New("trace: malformed codec input")

func codecErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCodec, fmt.Sprintf(format, args...))
}

// AppendBinary appends the canonical encoding of the trace to dst and
// returns the extended slice. The trace must be structurally valid —
// encoding a trace the decoder would reject is an error, not a way to
// smuggle invalid state across a process boundary.
func (t *FateTrace) AppendBinary(dst []byte) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: encoding invalid trace: %w", err)
	}
	need := 2 + 4 + len(t.Env) + 4 + len(t.Mode) + 8 + 8 + 8 + 8 + len(t.Slots)*slotBytes
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, codecTag, CodecVersion)
	dst = appendString(dst, t.Env)
	dst = appendString(dst, t.Mode)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.SlotDur))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.Seed))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.ExtraLoss))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(t.Slots)))
	for i := range t.Slots {
		s := &t.Slots[i]
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.SNR))
		var moving byte
		if s.Moving {
			moving = 1
		}
		var mask byte
		for r := 0; r < phy.NumRates; r++ {
			if s.Delivered[r] {
				mask |= 1 << r
			}
		}
		dst = append(dst, moving, mask)
		for r := 0; r < phy.NumRates; r++ {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Prob[r]))
		}
	}
	return dst, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// MarshalBinary returns the canonical encoding of the trace.
func (t *FateTrace) MarshalBinary() ([]byte, error) {
	return t.AppendBinary(nil)
}

// UnmarshalBinary decodes an encoding produced by AppendBinary,
// validates it, and prepares the derived replay state. The existing
// Slots backing array is reused when it has capacity, so pooled traces
// decode without allocating on the hot path. Malformed input yields an
// error wrapping ErrCodec; the decoder never panics.
func (t *FateTrace) UnmarshalBinary(data []byte) error {
	r := codecReader{buf: data}
	if err := r.header(); err != nil {
		return err
	}
	env, err := r.str("env")
	if err != nil {
		return err
	}
	mode, err := r.str("mode")
	if err != nil {
		return err
	}
	slotDur, err := r.u64()
	if err != nil {
		return err
	}
	seed, err := r.u64()
	if err != nil {
		return err
	}
	extraLoss, err := r.f64()
	if err != nil {
		return err
	}
	n, err := r.count(slotBytes)
	if err != nil {
		return err
	}
	slots := t.Slots
	if cap(slots) >= n {
		slots = slots[:n]
	} else {
		slots = make([]Slot, n)
	}
	for i := 0; i < n; i++ {
		s := &slots[i]
		if s.SNR, err = r.f64(); err != nil {
			return err
		}
		flags, err := r.bytes(2)
		if err != nil {
			return err
		}
		switch flags[0] {
		case 0:
			s.Moving = false
		case 1:
			s.Moving = true
		default:
			return codecErr("slot %d moving flag %#x (want 0 or 1)", i, flags[0])
		}
		if uint(flags[1])>>phy.NumRates != 0 {
			return codecErr("slot %d delivered mask %#x has bits beyond rate %d", i, flags[1], phy.NumRates-1)
		}
		for rt := 0; rt < phy.NumRates; rt++ {
			s.Delivered[rt] = flags[1]&(1<<rt) != 0
			if s.Prob[rt], err = r.f64(); err != nil {
				return err
			}
		}
	}
	if r.remaining() != 0 {
		return codecErr("%d trailing bytes", r.remaining())
	}
	t.Env, t.Mode = env, mode
	t.SlotDur = time.Duration(slotDur)
	t.Seed = int64(seed)
	t.ExtraLoss = extraLoss
	t.Slots = slots
	if err := t.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrCodec, err)
	}
	t.Prepare()
	return nil
}

// WriteBinary writes the trace as one stats frame (u32 length prefix),
// the streaming form shard transports use.
func (t *FateTrace) WriteBinary(w io.Writer) error {
	payload, err := t.MarshalBinary()
	if err != nil {
		return err
	}
	return stats.WriteFrame(w, payload)
}

// ReadBinary reads one frame written by WriteBinary into a fresh trace.
func ReadBinary(r io.Reader) (*FateTrace, error) {
	payload, err := stats.ReadFrame(r, stats.MaxFrame)
	if err != nil {
		return nil, err
	}
	var t FateTrace
	if err := t.UnmarshalBinary(payload); err != nil {
		return nil, err
	}
	return &t, nil
}

// codecReader is a bounds-checked cursor over an encoded trace.
type codecReader struct {
	buf []byte
	off int
}

func (r *codecReader) remaining() int { return len(r.buf) - r.off }

func (r *codecReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, codecErr("truncated input: need %d bytes, have %d", n, r.remaining())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *codecReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *codecReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *codecReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

// count reads a u64 element count and rejects values whose elements
// cannot fit in the remaining input — the standard defence against
// allocation bombs in length-prefixed formats.
func (r *codecReader) count(elemBytes int) (int, error) {
	v, err := r.u64()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()/elemBytes) {
		return 0, codecErr("count %d exceeds remaining input (%d bytes)", v, r.remaining())
	}
	return int(v), nil
}

func (r *codecReader) str(what string) (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if uint64(n) > uint64(r.remaining()) {
		return "", codecErr("%s length %d exceeds remaining input (%d bytes)", what, n, r.remaining())
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *codecReader) header() error {
	b, err := r.bytes(2)
	if err != nil {
		return err
	}
	if b[0] != codecTag {
		return codecErr("tag %#x, want %#x", b[0], codecTag)
	}
	if b[1] != CodecVersion {
		return codecErr("version %d, want %d", b[1], CodecVersion)
	}
	return nil
}
