package trace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/phy"
)

func mkTrace(n int) *FateTrace {
	tr := &FateTrace{Env: "test", Mode: "static", SlotDur: DefaultSlot, Slots: make([]Slot, n)}
	for i := range tr.Slots {
		tr.Slots[i].SNR = float64(i)
		for r := 0; r < phy.NumRates; r++ {
			tr.Slots[i].Prob[r] = float64(i % 2) // alternating 0/1
			tr.Slots[i].Delivered[r] = i%2 == 1
		}
	}
	return tr
}

func TestSlotIndexClamping(t *testing.T) {
	tr := mkTrace(10)
	if tr.SlotIndex(-time.Second) != 0 {
		t.Error("negative time should clamp to slot 0")
	}
	if tr.SlotIndex(0) != 0 {
		t.Error("time 0 should be slot 0")
	}
	if tr.SlotIndex(7*DefaultSlot+DefaultSlot/2) != 7 {
		t.Error("mid-slot time should land in slot 7")
	}
	if tr.SlotIndex(time.Hour) != 9 {
		t.Error("beyond-end time should clamp to last slot")
	}
}

func TestDuration(t *testing.T) {
	tr := mkTrace(10)
	if tr.Duration() != 10*DefaultSlot {
		t.Errorf("Duration = %v", tr.Duration())
	}
}

func TestDeliveredAndMoving(t *testing.T) {
	tr := mkTrace(4)
	tr.Slots[2].Moving = true
	if tr.Delivered(0, phy.Rate6) {
		t.Error("slot 0 should not deliver")
	}
	if !tr.Delivered(DefaultSlot, phy.Rate54) {
		t.Error("slot 1 should deliver")
	}
	if !tr.MovingAt(2*DefaultSlot) || tr.MovingAt(0) {
		t.Error("MovingAt wrong")
	}
}

func TestWindowProb(t *testing.T) {
	tr := mkTrace(10) // probs alternate 0, 1, 0, 1...
	// A window covering exactly slots 0..3 averages 0.5.
	got := tr.WindowProb(3*DefaultSlot, 3*DefaultSlot, phy.Rate6)
	if got != 0.5 {
		t.Errorf("window mean = %v, want 0.5", got)
	}
	// Zero window degenerates to the instantaneous probability.
	if tr.WindowProb(3*DefaultSlot, 0, phy.Rate6) != 1 {
		t.Error("zero window should be instantaneous")
	}
	// Window extending before the trace clamps.
	if v := tr.WindowProb(0, time.Hour, phy.Rate6); v != 0 {
		t.Errorf("clamped window = %v", v)
	}
}

func TestValidate(t *testing.T) {
	tr := mkTrace(3)
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := mkTrace(3)
	bad.SlotDur = 0
	if bad.Validate() == nil {
		t.Error("zero slot duration accepted")
	}
	bad2 := &FateTrace{SlotDur: DefaultSlot}
	if bad2.Validate() == nil {
		t.Error("empty trace accepted")
	}
	bad3 := mkTrace(3)
	bad3.Slots[1].Prob[2] = 1.5
	if bad3.Validate() == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := mkTrace(20)
	tr.Seed = 99
	tr.ExtraLoss = 0.02
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Env != tr.Env || got.Seed != 99 || got.ExtraLoss != 0.02 || len(got.Slots) != 20 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Slots[7] != tr.Slots[7] {
		t.Error("slot content mismatch")
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	tr := mkTrace(2)
	tr.Slots[0].Prob[0] = -1
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("invalid trace decoded without error")
	}
	if _, err := Read(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("garbage decoded without error")
	}
}

func TestPacketTraceLossRate(t *testing.T) {
	pt := &PacketTrace{Lost: []bool{true, false, true, false}}
	if pt.LossRate() != 0.5 {
		t.Errorf("loss rate = %v", pt.LossRate())
	}
	if (&PacketTrace{}).LossRate() != 0 {
		t.Error("empty trace loss should be 0")
	}
}

func TestConditionalLossBursty(t *testing.T) {
	// Losses in pairs: P(loss at k=1 | loss) should be ~0.5 (every first
	// of a pair is followed by a loss; every second by a success).
	lost := make([]bool, 400)
	for i := 0; i < 400; i += 10 {
		lost[i], lost[i+1] = true, true
	}
	pt := &PacketTrace{Lost: lost}
	cond := pt.ConditionalLoss(10)
	if math.Abs(cond[1]-0.5) > 0.05 {
		t.Errorf("cond[1] = %v, want ≈ 0.5", cond[1])
	}
	if cond[5] > 0.05 {
		t.Errorf("cond[5] = %v, want ≈ 0 for paired losses", cond[5])
	}
}

func TestConditionalLossIndependent(t *testing.T) {
	// Deterministic alternation: a loss is never followed by a loss at
	// odd lags, always at even lags.
	lost := make([]bool, 100)
	for i := 0; i < 100; i += 2 {
		lost[i] = true
	}
	pt := &PacketTrace{Lost: lost}
	cond := pt.ConditionalLoss(4)
	if cond[1] != 0 || cond[2] != 1 {
		t.Errorf("cond = %v", cond[:3])
	}
}

func TestConditionalLossNoLosses(t *testing.T) {
	pt := &PacketTrace{Lost: make([]bool, 50)}
	for k, v := range pt.ConditionalLoss(5) {
		if v != 0 {
			t.Errorf("cond[%d] = %v with no losses", k, v)
		}
	}
}

// TestConditionalLossMatchesNaive cross-checks the bitset implementation
// against the straightforward per-packet scan on random streams,
// including lengths around word boundaries and lags past the stream end.
func TestConditionalLossMatchesNaive(t *testing.T) {
	naive := func(lost []bool, maxLag int) []float64 {
		out := make([]float64, maxLag+1)
		for k := 1; k <= maxLag; k++ {
			nLost, both := 0, 0
			for i := 0; i+k < len(lost); i++ {
				if lost[i] {
					nLost++
					if lost[i+k] {
						both++
					}
				}
			}
			if nLost > 0 {
				out[k] = float64(both) / float64(nLost)
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 1000, 4096, 5000} {
		for _, density := range []float64{0, 0.1, 0.5, 0.9} {
			lost := make([]bool, n)
			for i := range lost {
				lost[i] = rng.Float64() < density
			}
			pt := &PacketTrace{Lost: lost}
			maxLag := 130
			got := pt.ConditionalLoss(maxLag)
			want := naive(lost, maxLag)
			for k := range want {
				if math.Abs(got[k]-want[k]) > 1e-12 {
					t.Fatalf("n=%d density=%.1f lag=%d: bitset %v, naive %v", n, density, k, got[k], want[k])
				}
			}
		}
	}
}
