package trace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/phy"
)

func mkTrace(n int) *FateTrace {
	tr := &FateTrace{Env: "test", Mode: "static", SlotDur: DefaultSlot, Slots: make([]Slot, n)}
	for i := range tr.Slots {
		tr.Slots[i].SNR = float64(i)
		for r := 0; r < phy.NumRates; r++ {
			tr.Slots[i].Prob[r] = float64(i % 2) // alternating 0/1
			tr.Slots[i].Delivered[r] = i%2 == 1
		}
	}
	return tr
}

func TestSlotIndexClamping(t *testing.T) {
	tr := mkTrace(10)
	if tr.SlotIndex(-time.Second) != 0 {
		t.Error("negative time should clamp to slot 0")
	}
	if tr.SlotIndex(0) != 0 {
		t.Error("time 0 should be slot 0")
	}
	if tr.SlotIndex(7*DefaultSlot+DefaultSlot/2) != 7 {
		t.Error("mid-slot time should land in slot 7")
	}
	if tr.SlotIndex(time.Hour) != 9 {
		t.Error("beyond-end time should clamp to last slot")
	}
}

func TestDuration(t *testing.T) {
	tr := mkTrace(10)
	if tr.Duration() != 10*DefaultSlot {
		t.Errorf("Duration = %v", tr.Duration())
	}
}

func TestDeliveredAndMoving(t *testing.T) {
	tr := mkTrace(4)
	tr.Slots[2].Moving = true
	if tr.Delivered(0, phy.Rate6) {
		t.Error("slot 0 should not deliver")
	}
	if !tr.Delivered(DefaultSlot, phy.Rate54) {
		t.Error("slot 1 should deliver")
	}
	if !tr.MovingAt(2*DefaultSlot) || tr.MovingAt(0) {
		t.Error("MovingAt wrong")
	}
}

func TestWindowProb(t *testing.T) {
	tr := mkTrace(10) // probs alternate 0, 1, 0, 1...
	// A window covering exactly slots 0..3 averages 0.5.
	got := tr.WindowProb(3*DefaultSlot, 3*DefaultSlot, phy.Rate6)
	if got != 0.5 {
		t.Errorf("window mean = %v, want 0.5", got)
	}
	// Zero window degenerates to the instantaneous probability.
	if tr.WindowProb(3*DefaultSlot, 0, phy.Rate6) != 1 {
		t.Error("zero window should be instantaneous")
	}
	// Window extending before the trace clamps.
	if v := tr.WindowProb(0, time.Hour, phy.Rate6); v != 0 {
		t.Errorf("clamped window = %v", v)
	}
}

func TestValidate(t *testing.T) {
	tr := mkTrace(3)
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := mkTrace(3)
	bad.SlotDur = 0
	if bad.Validate() == nil {
		t.Error("zero slot duration accepted")
	}
	bad2 := &FateTrace{SlotDur: DefaultSlot}
	if bad2.Validate() == nil {
		t.Error("empty trace accepted")
	}
	bad3 := mkTrace(3)
	bad3.Slots[1].Prob[2] = 1.5
	if bad3.Validate() == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := mkTrace(20)
	tr.Seed = 99
	tr.ExtraLoss = 0.02
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Env != tr.Env || got.Seed != 99 || got.ExtraLoss != 0.02 || len(got.Slots) != 20 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Slots[7] != tr.Slots[7] {
		t.Error("slot content mismatch")
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	tr := mkTrace(2)
	tr.Slots[0].Prob[0] = -1
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err == nil {
		t.Error("invalid trace encoded without error")
	}
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage decoded without error")
	}
}

// fromBools packs a []bool fixture into a PacketTrace, keeping the
// table-style test cases readable now that the trace itself is a packed
// bitset.
func fromBools(lost []bool) *PacketTrace {
	pt := NewPacketTrace(0, 0, len(lost))
	for i, l := range lost {
		if l {
			pt.SetLost(i, true)
		}
	}
	return pt
}

func TestPacketTraceLossRate(t *testing.T) {
	pt := fromBools([]bool{true, false, true, false})
	if pt.LossRate() != 0.5 {
		t.Errorf("loss rate = %v", pt.LossRate())
	}
	if (&PacketTrace{}).LossRate() != 0 {
		t.Error("empty trace loss should be 0")
	}
}

func TestConditionalLossBursty(t *testing.T) {
	// Losses in pairs: P(loss at k=1 | loss) should be ~0.5 (every first
	// of a pair is followed by a loss; every second by a success).
	lost := make([]bool, 400)
	for i := 0; i < 400; i += 10 {
		lost[i], lost[i+1] = true, true
	}
	pt := fromBools(lost)
	cond := pt.ConditionalLoss(10)
	if math.Abs(cond[1]-0.5) > 0.05 {
		t.Errorf("cond[1] = %v, want ≈ 0.5", cond[1])
	}
	if cond[5] > 0.05 {
		t.Errorf("cond[5] = %v, want ≈ 0 for paired losses", cond[5])
	}
}

func TestConditionalLossIndependent(t *testing.T) {
	// Deterministic alternation: a loss is never followed by a loss at
	// odd lags, always at even lags.
	lost := make([]bool, 100)
	for i := 0; i < 100; i += 2 {
		lost[i] = true
	}
	pt := fromBools(lost)
	cond := pt.ConditionalLoss(4)
	if cond[1] != 0 || cond[2] != 1 {
		t.Errorf("cond = %v", cond[:3])
	}
}

func TestConditionalLossNoLosses(t *testing.T) {
	pt := NewPacketTrace(0, 0, 50)
	for k, v := range pt.ConditionalLoss(5) {
		if v != 0 {
			t.Errorf("cond[%d] = %v with no losses", k, v)
		}
	}
}

// TestConditionalLossEdgeCases pins the packed-bitset implementation on
// the boundaries the differential test only samples: empty and
// single-packet traces, all-lost traces, lags at or past the stream
// end, and loss patterns confined to the trailing partial word of the
// bitset (where the final word's mask and the shifted read past the
// data end are the code paths under test). Expectations here are exact,
// not differential.
func TestConditionalLossEdgeCases(t *testing.T) {
	allZero := func(t *testing.T, cond []float64, wantLen int) {
		t.Helper()
		if len(cond) != wantLen {
			t.Fatalf("len = %d, want %d", len(cond), wantLen)
		}
		for k, v := range cond {
			if v != 0 {
				t.Errorf("cond[%d] = %v, want 0", k, v)
			}
		}
	}

	t.Run("empty trace", func(t *testing.T) {
		pt := &PacketTrace{}
		allZero(t, pt.ConditionalLoss(5), 6)
		allZero(t, pt.ConditionalLoss(0), 1)
	})

	t.Run("single packet", func(t *testing.T) {
		// One packet has no (i, i+k) pair at any lag — even when it is
		// itself lost.
		allZero(t, fromBools([]bool{false}).ConditionalLoss(3), 4)
		allZero(t, fromBools([]bool{true}).ConditionalLoss(3), 4)
	})

	t.Run("all lost", func(t *testing.T) {
		// Every conditioning packet's successor is lost: exactly 1 for
		// each lag with a pair in range, 0 once k ≥ n.
		for _, n := range []int{2, 63, 64, 65, 130} {
			lost := make([]bool, n)
			for i := range lost {
				lost[i] = true
			}
			cond := fromBools(lost).ConditionalLoss(n + 10)
			for k := 1; k <= n+10; k++ {
				want := 0.0
				if k < n {
					want = 1
				}
				if cond[k] != want {
					t.Fatalf("n=%d: cond[%d] = %v, want %v", n, k, cond[k], want)
				}
			}
		}
	})

	t.Run("lag past stream end", func(t *testing.T) {
		pt := fromBools([]bool{true, true, true})
		cond := pt.ConditionalLoss(64)
		if cond[1] != 1 || cond[2] != 1 {
			t.Errorf("in-range lags = %v %v, want 1 1", cond[1], cond[2])
		}
		for k := 3; k <= 64; k++ {
			if cond[k] != 0 {
				t.Errorf("cond[%d] = %v past the stream end, want 0", k, cond[k])
			}
		}
	})

	t.Run("trailing partial word", func(t *testing.T) {
		// 70 packets: one full 64-bit word plus a 6-bit tail. Put the
		// only losses in the tail (indices 65 and 68, lag 3 apart) so
		// both the conditioning mask and the shifted join run entirely
		// in the partial word.
		lost := make([]bool, 70)
		lost[65], lost[68] = true, true
		cond := fromBools(lost).ConditionalLoss(10)
		// Lag 3: conditioning packets are [0, 67): only index 65 is
		// lost, and 65+3 = 68 is lost → exactly 1.
		if cond[3] != 1 {
			t.Errorf("cond[3] = %v, want 1", cond[3])
		}
		// Lag 5: conditioning packets are [0, 65): no losses at all →
		// defined as 0.
		if cond[5] != 0 {
			t.Errorf("cond[5] = %v, want 0 (no conditioning losses)", cond[5])
		}
		// Lag 2: 65 is conditioning, 67 is delivered → 0; 68 is outside
		// the conditioning range [0, 68) boundary check: 68 < 68 is
		// false, so it must not condition on itself.
		if cond[2] != 0 {
			t.Errorf("cond[2] = %v, want 0", cond[2])
		}

		// A loss on the very last packet must count as a successor but
		// never as a conditioner at positive lags beyond its reach.
		lost2 := make([]bool, 65)
		lost2[0], lost2[64] = true, true
		cond2 := fromBools(lost2).ConditionalLoss(64)
		if cond2[64] != 1 {
			t.Errorf("cond[64] = %v, want 1 (0 → 64 joint loss)", cond2[64])
		}
		if cond2[1] != 0 {
			t.Errorf("cond[1] = %v, want 0", cond2[1])
		}
	})

	t.Run("word-boundary conditioning cutoff", func(t *testing.T) {
		// n−k landing exactly on a word boundary exercises the lr == 0
		// early break: with n = 65 and k = 1 the conditioning range is
		// [0, 64) — one full word, nothing from the partial word.
		lost := make([]bool, 65)
		lost[63], lost[64] = true, true
		cond := fromBools(lost).ConditionalLoss(1)
		if cond[1] != 1 {
			t.Errorf("cond[1] = %v, want 1 (63 → 64)", cond[1])
		}
	})
}

// TestConditionalLossMatchesNaive cross-checks the bitset implementation
// against the straightforward per-packet scan on random streams,
// including lengths around word boundaries and lags past the stream end.
func TestConditionalLossMatchesNaive(t *testing.T) {
	naive := func(lost []bool, maxLag int) []float64 {
		out := make([]float64, maxLag+1)
		for k := 1; k <= maxLag; k++ {
			nLost, both := 0, 0
			for i := 0; i+k < len(lost); i++ {
				if lost[i] {
					nLost++
					if lost[i+k] {
						both++
					}
				}
			}
			if nLost > 0 {
				out[k] = float64(both) / float64(nLost)
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 1000, 4096, 5000} {
		for _, density := range []float64{0, 0.1, 0.5, 0.9} {
			lost := make([]bool, n)
			for i := range lost {
				lost[i] = rng.Float64() < density
			}
			pt := fromBools(lost)
			maxLag := 130
			got := pt.ConditionalLoss(maxLag)
			want := naive(lost, maxLag)
			for k := range want {
				if math.Abs(got[k]-want[k]) > 1e-12 {
					t.Fatalf("n=%d density=%.1f lag=%d: bitset %v, naive %v", n, density, k, got[k], want[k])
				}
			}
		}
	}
}

// TestSlotIndexReciprocalExact is the bit-identity check for the
// division-free SlotIndex: over adversarial slot widths (powers of two,
// primes, the default) and times — every slot boundary ±1 plus random
// draws across the trace and far past its end — the prepared fast path
// must agree with the plain 64-bit division everywhere.
func TestSlotIndexReciprocalExact(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	durs := []time.Duration{
		2, 3, 7, 1000, 4096, 5*time.Millisecond - 1, 5 * time.Millisecond,
		5*time.Millisecond + 1, 8 * time.Millisecond, 1 << 20, 333333333, time.Second,
	}
	for _, d := range durs {
		n := 1000
		fast := &FateTrace{SlotDur: d, Slots: make([]Slot, n)}
		fast.Prepare()
		if fast.invSlot == 0 {
			t.Fatalf("SlotDur %d: fast path not armed", d)
		}
		slow := &FateTrace{SlotDur: d, Slots: make([]Slot, n)} // unprepared: divides
		check := func(at time.Duration) {
			t.Helper()
			if got, want := fast.SlotIndex(at), slow.SlotIndex(at); got != want {
				t.Fatalf("SlotDur %d at %d: fast %d, divide %d", d, at, got, want)
			}
		}
		for k := 0; k <= n+2; k++ {
			at := time.Duration(k) * d
			check(at - 1)
			check(at)
			check(at + 1)
		}
		span := time.Duration(n) * d
		for i := 0; i < 2000; i++ {
			check(time.Duration(rng.Int63n(int64(3*span) + 1)))
		}
		check(-time.Second)
		check(fast.Duration() * 1000)
	}
}

// TestSlotIndexFallbackBeyondReciprocalRange pins the guard: times past
// invMax take the dividing path and still agree.
func TestSlotIndexFallbackBeyondReciprocalRange(t *testing.T) {
	tr := &FateTrace{SlotDur: 5 * time.Millisecond, Slots: make([]Slot, 10)}
	tr.Prepare()
	huge := time.Duration(tr.invMax) + time.Hour
	if got := tr.SlotIndex(huge); got != 9 {
		t.Fatalf("SlotIndex far past the end = %d, want clamp to 9", got)
	}
	// A 1 ns slot width declines the fast path entirely.
	tiny := &FateTrace{SlotDur: 1, Slots: make([]Slot, 4)}
	tiny.Prepare()
	if tiny.invSlot != 0 {
		t.Fatal("1 ns slot width armed the reciprocal")
	}
	if got := tiny.SlotIndex(3); got != 3 {
		t.Fatalf("SlotIndex(3) = %d, want 3", got)
	}
}

// BenchmarkSlotIndex measures the division-free lookup against the
// dividing baseline (the same trace, unprepared) — the last 64-bit
// division in ratesim.Run's per-attempt path.
func BenchmarkSlotIndex(b *testing.B) {
	mk := func(prepare bool) *FateTrace {
		tr := &FateTrace{SlotDur: DefaultSlot, Slots: make([]Slot, 4000)}
		if prepare {
			tr.Prepare()
		}
		return tr
	}
	span := int64(4000 * DefaultSlot)
	bench := func(b *testing.B, tr *FateTrace) {
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += tr.SlotIndex(time.Duration((int64(i) * 2654435761) % span))
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	}
	b.Run("reciprocal", func(b *testing.B) { bench(b, mk(true)) })
	b.Run("divide", func(b *testing.B) { bench(b, mk(false)) })
}
