package rate

import (
	"time"

	"repro/internal/phy"
)

// HintAware is the paper's hint-aware rate adaptation protocol (§3.2):
// it runs SampleRate while the receiver is static and RapidSample while
// the receiver moves, switching on the movement hint the receiver shares
// through the Hint Protocol. On each switch the newly activated
// protocol's history is cleared: the channel statistics accumulated in
// the other mobility regime are exactly the kind of stale state the
// paper argues protocols must not carry across regimes.
//
// The hint arrives via SetMoving, typically wired to a core.Bus
// subscription on the remote movement hint; the harness can also drive
// it directly with a configurable detection+delivery latency.
type HintAware struct {
	static Adapter // SampleRate
	mobile Adapter // RapidSample
	moving bool
	// switches counts strategy switches, exposed for tests and reports.
	switches int
}

// NewHintAware builds the paper's configuration: SampleRate for static,
// RapidSample for mobile. seed drives SampleRate's sampling.
func NewHintAware(seed int64) *HintAware {
	return &HintAware{static: NewSampleRate(seed), mobile: NewRapidSample()}
}

// NewHintAwareWith builds a switcher over arbitrary static and mobile
// adapters, for ablation experiments.
func NewHintAwareWith(static, mobile Adapter) *HintAware {
	return &HintAware{static: static, mobile: mobile}
}

// Name implements Adapter.
func (h *HintAware) Name() string { return "HintAware" }

// Reset implements Adapter.
func (h *HintAware) Reset() {
	h.static.Reset()
	h.mobile.Reset()
	h.moving = false
	h.switches = 0
}

// SetMoving delivers the receiver's movement hint. A change of state
// activates the other protocol with fresh history.
func (h *HintAware) SetMoving(moving bool) {
	if moving == h.moving {
		return
	}
	h.moving = moving
	h.switches++
	h.active().Reset()
}

// Moving returns the current hint state.
func (h *HintAware) Moving() bool { return h.moving }

// Switches returns how many strategy switches have occurred.
func (h *HintAware) Switches() int { return h.switches }

func (h *HintAware) active() Adapter {
	if h.moving {
		return h.mobile
	}
	return h.static
}

// PickRate implements Adapter, delegating to the active protocol.
func (h *HintAware) PickRate(now time.Duration) phy.Rate {
	return h.active().PickRate(now)
}

// Observe implements Adapter, delegating to the active protocol.
func (h *HintAware) Observe(fb Feedback) {
	h.active().Observe(fb)
}
