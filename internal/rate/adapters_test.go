package rate

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/phy"
)

func allAdapters(seed int64) []Adapter {
	return []Adapter{
		NewRapidSample(),
		NewSampleRate(seed),
		NewRRAA(),
		NewRBAR(),
		NewCHARM(),
		NewHintAware(seed),
	}
}

// TestAdaptersAlwaysReturnValidRates drives every adapter through random
// feedback sequences and checks the core safety invariant: PickRate
// always returns a defined OFDM rate.
func TestAdaptersAlwaysReturnValidRates(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, a := range allAdapters(seed) {
			at := time.Duration(0)
			for i := 0; i < int(steps)%200+20; i++ {
				if ha, ok := a.(*HintAware); ok && rng.Intn(20) == 0 {
					ha.SetMoving(rng.Intn(2) == 0)
				}
				if su, ok := a.(SNRUpdater); ok && rng.Intn(3) == 0 {
					su.UpdateSNR(at, rng.Float64()*40-5)
				}
				r := a.PickRate(at)
				if !r.Valid() {
					return false
				}
				a.Observe(Feedback{At: at, Rate: r, Acked: rng.Intn(2) == 0, SNR: NoSNR()})
				at += time.Duration(rng.Intn(2000)) * time.Microsecond
				if rng.Intn(50) == 0 {
					a.Reset()
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSampleRateSettlesOnBestRate(t *testing.T) {
	sr := NewSampleRate(1)
	// 36 Mbps always works, everything above always fails: SampleRate
	// must converge to 36.
	at := time.Duration(0)
	for i := 0; i < 400; i++ {
		r := sr.PickRate(at)
		ok := r <= phy.Rate36
		sr.Observe(Feedback{At: at, Rate: r, Acked: ok, SNR: NoSNR()})
		at += 500 * time.Microsecond
	}
	// Count the steady-state distribution over another stretch.
	uses := map[phy.Rate]int{}
	for i := 0; i < 200; i++ {
		r := sr.PickRate(at)
		uses[r]++
		ok := r <= phy.Rate36
		sr.Observe(Feedback{At: at, Rate: r, Acked: ok, SNR: NoSNR()})
		at += 500 * time.Microsecond
	}
	if uses[phy.Rate36] < 150 {
		t.Errorf("steady-state usage of 36 Mbps = %d/200, want dominant (%v)", uses[phy.Rate36], uses)
	}
}

func TestSampleRateWindowExpiry(t *testing.T) {
	sr := NewSampleRate(1)
	sr.Window = 100 * time.Millisecond
	// Load history at 54 then advance past the window: old events must
	// not influence the average.
	at := time.Duration(0)
	for i := 0; i < 50; i++ {
		sr.Observe(Feedback{At: at, Rate: phy.Rate54, Acked: true, SNR: NoSNR()})
		at += time.Millisecond
	}
	if _, ok := sr.avgTxTime(phy.Rate54); !ok {
		t.Fatal("recent history invisible")
	}
	sr.expire(at + time.Second)
	if _, ok := sr.avgTxTime(phy.Rate54); ok {
		t.Error("expired history still visible")
	}
}

func TestSampleRateConsFailSwitchAway(t *testing.T) {
	sr := NewSampleRate(1)
	at := time.Duration(0)
	// Establish 54 as current with history, then fail it repeatedly.
	for i := 0; i < 20; i++ {
		sr.Observe(Feedback{At: at, Rate: phy.Rate54, Acked: true, SNR: NoSNR()})
		at += time.Millisecond
	}
	for i := 0; i < 4; i++ {
		sr.Observe(Feedback{At: at, Rate: phy.Rate54, Acked: false, SNR: NoSNR()})
		at += time.Millisecond
	}
	if got := sr.PickRate(at); got == phy.Rate54 {
		t.Error("SampleRate kept a rate with 4 consecutive failures")
	}
}

func TestSampleRateSamplingCandidates(t *testing.T) {
	sr := NewSampleRate(1)
	sr.SampleEvery = 2
	at := time.Duration(0)
	// Establish 48 as the best-known rate.
	for i := 0; i < 30; i++ {
		sr.Observe(Feedback{At: at, Rate: phy.Rate48, Acked: true, SNR: NoSNR()})
		at += time.Millisecond
	}
	// With every second pick a sample, samples must only target rates
	// whose lossless tx time beats 48's average — i.e. only 54.
	for i := 0; i < 20; i++ {
		r := sr.PickRate(at)
		if r != phy.Rate48 && r != phy.Rate54 {
			t.Fatalf("sampled %v; only 54 can beat a clean 48", r)
		}
		sr.Observe(Feedback{At: at, Rate: r, Acked: true, SNR: NoSNR()})
		at += time.Millisecond
	}
}

func TestSampleRateName(t *testing.T) {
	sr := NewSampleRate(1)
	if sr.Name() != "SampleRate" {
		t.Errorf("name = %q", sr.Name())
	}
	sr.Window = time.Second
	if sr.Name() != "SampleRate(1s)" {
		t.Errorf("name with window = %q", sr.Name())
	}
}

func TestRRAAStartsFastAndStepsDown(t *testing.T) {
	r := NewRRAA()
	if got := r.PickRate(0); got != phy.Rate54 {
		t.Errorf("initial = %v", got)
	}
	// Continuous loss forces a step down (early exit).
	at := time.Duration(0)
	for i := 0; i < 10; i++ {
		cur := r.PickRate(at)
		r.Observe(Feedback{At: at, Rate: cur, Acked: false, SNR: NoSNR()})
		at += time.Millisecond
		if r.PickRate(at) < phy.Rate54 {
			return
		}
	}
	t.Error("RRAA never stepped down under continuous loss")
}

func TestRRAAStepsUpWhenClean(t *testing.T) {
	r := NewRRAA()
	r.PickRate(0)
	// Force down to a low rate.
	at := time.Duration(0)
	for i := 0; i < 200; i++ {
		cur := r.PickRate(at)
		r.Observe(Feedback{At: at, Rate: cur, Acked: cur <= phy.Rate12, SNR: NoSNR()})
		at += time.Millisecond
	}
	low := r.PickRate(at)
	if low > phy.Rate18 {
		t.Fatalf("did not descend: %v", low)
	}
	// Now everything succeeds: RRAA must climb.
	for i := 0; i < 2000; i++ {
		cur := r.PickRate(at)
		r.Observe(Feedback{At: at, Rate: cur, Acked: true, SNR: NoSNR()})
		at += time.Millisecond
	}
	if got := r.PickRate(at); got <= low {
		t.Errorf("did not climb from %v (now %v)", low, got)
	}
}

func TestRRAAIgnoresStaleFeedback(t *testing.T) {
	r := NewRRAA()
	r.PickRate(0)
	// Feedback for a rate other than current must not perturb the window.
	r.Observe(Feedback{At: 0, Rate: phy.Rate6, Acked: false, SNR: NoSNR()})
	if got := r.PickRate(time.Millisecond); got != phy.Rate54 {
		t.Errorf("stale feedback moved the rate to %v", got)
	}
}

func TestRBARFollowsSNR(t *testing.T) {
	r := NewRBAR()
	if got := r.PickRate(0); got != phy.Rate6 {
		t.Errorf("rate without SNR = %v, want conservative 6", got)
	}
	r.UpdateSNR(0, 30)
	if got := r.PickRate(0); got != phy.Rate54 {
		t.Errorf("rate at 30 dB = %v, want 54", got)
	}
	r.UpdateSNR(time.Millisecond, 3)
	if got := r.PickRate(time.Millisecond); got > phy.Rate12 {
		t.Errorf("rate at 3 dB = %v, want low", got)
	}
}

func TestRBARBacksOffOnConsecutiveFailures(t *testing.T) {
	r := NewRBAR()
	r.UpdateSNR(0, 25)
	first := r.PickRate(0)
	for i := 0; i < 4; i++ {
		r.Observe(Feedback{At: 0, Rate: first, Acked: false, SNR: NoSNR()})
	}
	after := r.PickRate(0)
	if after >= first {
		t.Errorf("no backoff after 4 failures: %v -> %v", first, after)
	}
	// A success clears the backoff.
	r.Observe(Feedback{At: 0, Rate: after, Acked: true, SNR: NoSNR()})
	if got := r.PickRate(0); got != first {
		t.Errorf("backoff not cleared: %v", got)
	}
}

func TestRBARUsesRTS(t *testing.T) {
	if !NewRBAR().UsesRTS() {
		t.Error("RBAR must declare RTS/CTS usage")
	}
}

func TestCHARMAveragesSNR(t *testing.T) {
	c := NewCHARM()
	if got := c.PickRate(0); got != phy.Rate6 {
		t.Errorf("rate without SNR = %v", got)
	}
	// Noisy reports around 20 dB: the average should select a high rate
	// even though individual reports dip.
	at := time.Duration(0)
	vals := []float64{20, 16, 24, 19, 21, 17, 23, 20}
	for _, v := range vals {
		c.UpdateSNR(at, v)
		at += 10 * time.Millisecond
	}
	if got := c.PickRate(at); got < phy.Rate48 {
		t.Errorf("rate for ≈20 dB average = %v, want ≥ 48", got)
	}
}

func TestCHARMWindowExpiry(t *testing.T) {
	c := NewCHARM()
	c.Window = 100 * time.Millisecond
	c.UpdateSNR(0, 30)
	// Long after the report expires, CHARM has no estimate again.
	if got := c.PickRate(10 * time.Second); got != phy.Rate6 {
		t.Errorf("rate after window expiry = %v, want 6", got)
	}
}

func TestCHARMOffsetRaisesConservatism(t *testing.T) {
	c := NewCHARM()
	c.UpdateSNR(0, 20)
	before := c.PickRate(0)
	for i := 0; i < 6; i++ {
		c.Observe(Feedback{At: 0, Rate: before, Acked: false, SNR: NoSNR()})
	}
	after := c.PickRate(0)
	if after >= before {
		t.Errorf("loss calibration did not lower the rate: %v -> %v", before, after)
	}
}

func TestHintAwareSwitchesAndResets(t *testing.T) {
	h := NewHintAware(1)
	if h.Moving() {
		t.Error("starts moving")
	}
	if h.Name() != "HintAware" {
		t.Error("name wrong")
	}
	// While static it behaves like SampleRate (starts at 54, settles by
	// tx-time); while moving like RapidSample.
	h.SetMoving(true)
	if !h.Moving() || h.Switches() != 1 {
		t.Error("switch not recorded")
	}
	h.SetMoving(true) // idempotent
	if h.Switches() != 1 {
		t.Error("redundant hint counted as a switch")
	}
	// Pollute the mobile protocol with failures, switch out and back:
	// history must be cleared on activation.
	feed(h, 0, false)
	feed(h, time.Millisecond, false)
	h.SetMoving(false)
	h.SetMoving(true)
	if got := h.PickRate(2 * time.Millisecond); got != phy.Rate54 {
		t.Errorf("activated RapidSample did not start fresh: %v", got)
	}
}

func TestHintAwareWithCustomAdapters(t *testing.T) {
	h := NewHintAwareWith(NewRRAA(), NewRapidSample())
	h.PickRate(0)
	h.SetMoving(true)
	if got := h.PickRate(0); !got.Valid() {
		t.Error("custom hint-aware broken")
	}
	h.Reset()
	if h.Moving() || h.Switches() != 0 {
		t.Error("Reset did not clear state")
	}
}
