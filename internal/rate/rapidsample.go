package rate

import (
	"time"

	"repro/internal/phy"
)

// RapidSample default timing parameters (§3.1): δ_success is the run of
// success needed before sampling a faster rate; δ_fail is the back-off
// before a recently failed rate (or anything above it) may be sampled
// again. δ_fail matches the ~10 ms channel coherence time measured for a
// walking receiver, and δ_success is deliberately smaller.
const (
	DefaultDeltaSuccess = 5 * time.Millisecond
	DefaultDeltaFail    = 10 * time.Millisecond
)

// RapidSample is the paper's frame-based rate adaptation protocol for
// rapidly changing (mobile) channels, transcribed from Figure 3-2.
//
// It starts at the fastest rate. On a loss it immediately steps down one
// rate (losses are strongly correlated in the short term when moving, so
// persisting would lose more packets). After δ_success of success at the
// current rate it samples the fastest rate such that neither that rate
// nor any slower rate has failed within δ_fail — allowing opportunistic
// multi-rate jumps rather than one-step increases. If the sample fails,
// it reverts to the rate used before the sample.
type RapidSample struct {
	// DeltaSuccess and DeltaFail override the defaults when positive.
	DeltaSuccess, DeltaFail time.Duration
	// StepOnly disables opportunistic jumps, limiting upward samples to
	// one rate above the current — the ablation of the paper's fourth
	// design idea.
	StepOnly bool

	lastBR     phy.Rate
	failedTime [phy.NumRates]time.Duration
	pickedTime [phy.NumRates]time.Duration
	sample     bool
	oldBR      phy.Rate
	started    bool
}

// NewRapidSample returns a RapidSample instance with the paper's
// parameters.
func NewRapidSample() *RapidSample { return &RapidSample{} }

// Name implements Adapter.
func (rs *RapidSample) Name() string { return "RapidSample" }

// Reset implements Adapter, clearing all rate history.
func (rs *RapidSample) Reset() {
	*rs = RapidSample{DeltaSuccess: rs.DeltaSuccess, DeltaFail: rs.DeltaFail, StepOnly: rs.StepOnly}
}

func (rs *RapidSample) dSuccess() time.Duration {
	if rs.DeltaSuccess > 0 {
		return rs.DeltaSuccess
	}
	return DefaultDeltaSuccess
}

func (rs *RapidSample) dFail() time.Duration {
	if rs.DeltaFail > 0 {
		return rs.DeltaFail
	}
	return DefaultDeltaFail
}

// PickRate implements Adapter. The decision logic runs in Observe (as in
// the paper's per-packet callback); PickRate reports the chosen rate.
func (rs *RapidSample) PickRate(now time.Duration) phy.Rate {
	if !rs.started {
		rs.started = true
		rs.lastBR = phy.Rate(phy.NumRates - 1) // start at the fastest rate
		rs.pickedTime[rs.lastBR] = now
		// Initialise failure times to the distant past.
		for i := range rs.failedTime {
			rs.failedTime[i] = -time.Hour
		}
	}
	return rs.lastBR
}

// Observe implements Adapter, applying the Figure 3-2 update.
func (rs *RapidSample) Observe(fb Feedback) {
	now := fb.At
	lastbr := fb.Rate
	br := lastbr
	if !fb.Acked {
		rs.failedTime[lastbr] = now
		if rs.sample {
			br = rs.oldBR
		} else if lastbr > 0 {
			br = lastbr - 1
		}
		rs.sample = false
	} else {
		rs.sample = false
		if now-rs.pickedTime[lastbr] > rs.dSuccess() {
			if cand, ok := rs.eligible(now); ok && cand != lastbr {
				if rs.StepOnly && cand > lastbr+1 {
					cand = lastbr + 1
				}
				rs.sample = true
				rs.oldBR = lastbr
				br = cand
			}
		}
	}
	if br != lastbr {
		rs.pickedTime[br] = now
	}
	rs.lastBR = br
}

// eligible returns the fastest rate i such that no rate j ≤ i failed
// within δ_fail, and whether any rate qualifies.
func (rs *RapidSample) eligible(now time.Duration) (phy.Rate, bool) {
	dFail := rs.dFail()
	best := phy.Rate(-1)
	for i := 0; i < phy.NumRates; i++ {
		if now-rs.failedTime[i] <= dFail {
			break // rate i failed recently: i and everything above is out
		}
		best = phy.Rate(i)
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
