package rate

import (
	"time"

	"repro/internal/phy"
)

// RRAA (Robust Rate Adaptation Algorithm, Wong et al. 2006) adapts on
// short-term loss ratios: it counts losses over a per-rate estimation
// window and compares the loss ratio against two thresholds derived from
// transmission times — P_MTL (maximum tolerable loss: above it, step
// down) and P_ORI (opportunistic rate increase: below it, step up). The
// window is short (tens of frames), making RRAA more opportunistic than
// SampleRate but still slower than RapidSample under mobility, as the
// paper observes. The adaptive RTS filter of the original (a collision
// defence) is out of scope: the harness models a single contention-free
// link.
type RRAA struct {
	// PacketBytes is the frame size for threshold derivation (default
	// 1000).
	PacketBytes int
	// WindowFrames overrides the per-rate estimation window when > 0.
	// By default the window follows the original's design: shorter
	// windows (more responsive) at faster rates, longer (more stable) at
	// slower ones, within the 5–40 frame range.
	WindowFrames int

	started bool
	current phy.Rate
	lost    int
	sent    int
	pmtl    [phy.NumRates]float64
	pori    [phy.NumRates]float64
}

// NewRRAA returns an RRAA instance with default parameters.
func NewRRAA() *RRAA { return &RRAA{} }

// Name implements Adapter.
func (r *RRAA) Name() string { return "RRAA" }

// Reset implements Adapter.
func (r *RRAA) Reset() {
	r.started = false
	r.lost, r.sent = 0, 0
}

func (r *RRAA) bytes() int {
	if r.PacketBytes > 0 {
		return r.PacketBytes
	}
	return 1000
}

func (r *RRAA) windowFrames() int {
	if r.WindowFrames > 0 {
		return r.WindowFrames
	}
	// Per the original's table: longer estimation windows at the fast
	// rates (up to 40 frames), shorter at the slow ones. The early-exit
	// rule still reacts to loss bursts quickly; the long window is what
	// makes climbing back sluggish on a recovering mobile channel.
	return 12 + 4*int(r.current)
}

// init computes the per-rate thresholds. P_MTL for rate i is the loss
// ratio at which dropping to rate i−1 becomes worthwhile:
// 1 − txTime(i)/txTime(i−1). P_ORI for rate i is P_MTL(i+1)/α with α=2,
// the original's heuristic.
func (r *RRAA) init() {
	b := r.bytes()
	for i := 1; i < phy.NumRates; i++ {
		hi := losslessTxTime(phy.Rate(i), b).Seconds()
		lo := losslessTxTime(phy.Rate(i-1), b).Seconds()
		r.pmtl[i] = 1 - hi/lo
	}
	r.pmtl[0] = 1 // never step below the lowest rate
	const alpha = 2
	for i := 0; i < phy.NumRates-1; i++ {
		r.pori[i] = r.pmtl[i+1] / alpha
	}
	r.pori[phy.NumRates-1] = 0 // cannot step above the highest rate
}

// PickRate implements Adapter.
func (r *RRAA) PickRate(now time.Duration) phy.Rate {
	if !r.started {
		r.started = true
		r.current = phy.Rate(phy.NumRates - 1)
		r.init()
	}
	return r.current
}

// Observe implements Adapter: accumulate the window, then compare the
// loss ratio against the thresholds. The original also short-circuits a
// window early when the loss already exceeds P_MTL; we implement that
// too, since it matters under bursty mobile loss.
func (r *RRAA) Observe(fb Feedback) {
	if fb.Rate != r.current {
		return // stale feedback from before a rate change
	}
	r.sent++
	if !fb.Acked {
		r.lost++
	}
	loss := float64(r.lost) / float64(r.sent)
	w := r.windowFrames()
	// Early exit: even if every remaining frame succeeded, the loss
	// ratio would still exceed P_MTL.
	if r.lost > 0 && float64(r.lost)/float64(w) > r.pmtl[r.current] {
		r.stepDown()
		return
	}
	if r.sent < w {
		return
	}
	switch {
	case loss > r.pmtl[r.current]:
		r.stepDown()
	case loss < r.pori[r.current]:
		r.stepUp()
	default:
		r.lost, r.sent = 0, 0
	}
}

func (r *RRAA) stepDown() {
	if r.current > 0 {
		r.current--
	}
	r.lost, r.sent = 0, 0
}

func (r *RRAA) stepUp() {
	if r.current < phy.NumRates-1 {
		r.current++
	}
	r.lost, r.sent = 0, 0
}
