// Package rate implements the bit-rate adaptation protocols evaluated in
// Chapter 3: the paper's RapidSample (designed for mobile channels), the
// frame-based baselines SampleRate and RRAA, the SNR-based baselines RBAR
// and CHARM, and the hint-aware protocol that switches between
// RapidSample and SampleRate on the receiver's movement hint.
//
// All protocols implement Adapter: the MAC asks for a rate before each
// transmission attempt and reports the attempt's fate afterwards. This is
// the same per-packet call structure as the paper's Figure 3-2
// pseudocode.
package rate

import (
	"math"
	"time"

	"repro/internal/phy"
)

// Feedback reports the fate of one transmission attempt to an adapter.
type Feedback struct {
	// At is the time of the attempt.
	At time.Duration
	// Rate is the bit rate the attempt used.
	Rate phy.Rate
	// Acked reports whether a link-layer ACK was received.
	Acked bool
	// SNR is the receiver-side SNR learned from this exchange when
	// Acked (e.g. via the RTS/CTS or reciprocity mechanisms RBAR and
	// CHARM rely on); NaN when no fresh SNR was learned.
	SNR float64
}

// NoSNR is the Feedback.SNR value meaning no SNR was learned.
func NoSNR() float64 { return math.NaN() }

// SNRUpdater is implemented by SNR-based adapters (RBAR, CHARM). The
// harness feeds them the latest receiver-SNR report before each pick,
// reflecting the paper's evaluation assumption that "the sender has
// up-to-date knowledge about the receiver SNR" (§3.4); the report is
// still one measurement interval stale, which is what makes instantaneous
// SNR unreliable on a fast-changing mobile channel.
type SNRUpdater interface {
	UpdateSNR(at time.Duration, snr float64)
}

// RTSUser is implemented by adapters whose mechanism requires an
// RTS/CTS exchange before every data frame (RBAR). The MAC harness
// charges them the control-exchange airtime — the overhead CHARM was
// designed to avoid.
type RTSUser interface {
	UsesRTS() bool
}

// Adapter is a bit-rate adaptation protocol.
type Adapter interface {
	// Name identifies the protocol in reports.
	Name() string
	// PickRate returns the rate for the next transmission attempt.
	PickRate(now time.Duration) phy.Rate
	// Observe reports the fate of the attempt.
	Observe(fb Feedback)
	// Reset clears protocol history, as when a strategy switch makes the
	// accumulated channel state invalid.
	Reset()
}

// losslessTxTime returns the per-packet lossless transmission time at r
// for the harness packet size — the quantity SampleRate and RRAA compare
// rates by. It reads the memoized airtime table: adapters evaluate it
// per attempt, inside the MAC simulator's hot loop.
func losslessTxTime(r phy.Rate, bytes int) time.Duration {
	return phy.AirtimesFor(bytes).Frame[r]
}
