package rate

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/phy"
)

// SampleRate is Bicket's frame-based protocol: send most packets at the
// rate with the lowest average per-packet transmission time over a
// trailing window (10 s by default), and periodically spend a packet
// sampling a different rate that could plausibly do better. It smooths
// over short-term fading, which makes it the strongest baseline in static
// settings (Figure 3-7) — and slow to track a mobile channel
// (Figure 3-6).
//
// Window is the protocol's tuning parameter. The paper post-processes
// each trace to pick the best window for SampleRate, biasing comparisons
// in its favour; the harness supports that by sweeping Window.
type SampleRate struct {
	// Window is the averaging window (default 10 s).
	Window time.Duration
	// PacketBytes is the frame size used for transmission-time
	// bookkeeping (default 1000).
	PacketBytes int
	// SampleEvery controls how often a sample packet is sent (default
	// every 10th packet).
	SampleEvery int
	// Rand drives sample-rate selection; a deterministic source is
	// injected by the harness.
	Rand *rand.Rand

	started bool
	count   int
	// events is a ring buffer of the attempts inside the window; agg
	// holds the matching per-rate running totals so rate selection is
	// O(1). The ring is sized once per (window, frame length) — the
	// window divided by the fastest possible frame exchange bounds the
	// attempts a window can hold — so a run never grows it: see
	// TestSampleRateSweepAllocations in internal/ratesim.
	events []srEvent
	head   int // index of the oldest live event
	live   int // number of live events
	agg    [phy.NumRates]srAgg
	// consFail counts consecutive failures per rate (4+ disqualifies the
	// rate until it succeeds again or the count goes stale).
	consFail [phy.NumRates]int
	// lastAttempt tracks when each rate was last tried, so stale failure
	// counts can be forgiven.
	lastAttempt [phy.NumRates]time.Duration
	current     phy.Rate
	sampling    bool
	// airt caches the airtime table for PacketBytes across Observe
	// calls (one per transmission attempt).
	airt *phy.Airtimes
}

type srEvent struct {
	at      time.Duration
	rate    phy.Rate
	txTime  time.Duration
	success bool
}

type srAgg struct {
	totalTx time.Duration
	succ    int
	n       int
}

// NewSampleRate returns a SampleRate with the standard 10 s window.
func NewSampleRate(seed int64) *SampleRate {
	return &SampleRate{Rand: rand.New(rand.NewSource(seed))}
}

// Name implements Adapter, including the window when non-standard.
func (sr *SampleRate) Name() string {
	if sr.Window > 0 && sr.Window != 10*time.Second {
		return fmt.Sprintf("SampleRate(%v)", sr.Window)
	}
	return "SampleRate"
}

// Reset implements Adapter. The ring buffer keeps its capacity: a
// reset adapter replays with zero event-storage allocations.
func (sr *SampleRate) Reset() {
	sr.started = false
	sr.count = 0
	sr.head = 0
	sr.live = 0
	sr.agg = [phy.NumRates]srAgg{}
	sr.consFail = [phy.NumRates]int{}
	sr.lastAttempt = [phy.NumRates]time.Duration{}
	sr.sampling = false
}

func (sr *SampleRate) window() time.Duration {
	if sr.Window > 0 {
		return sr.Window
	}
	return 10 * time.Second
}

func (sr *SampleRate) bytes() int {
	if sr.PacketBytes > 0 {
		return sr.PacketBytes
	}
	return 1000
}

func (sr *SampleRate) sampleEvery() int {
	if sr.SampleEvery > 0 {
		return sr.SampleEvery
	}
	return 10
}

// PickRate implements Adapter.
func (sr *SampleRate) PickRate(now time.Duration) phy.Rate {
	if !sr.started {
		sr.started = true
		sr.current = phy.Rate(phy.NumRates - 1)
	}
	sr.expire(now)
	// Forgive consecutive-failure counts that have gone stale: the
	// channel has likely changed since the rate last failed.
	for i := range sr.consFail {
		if sr.consFail[i] >= 4 && now-sr.lastAttempt[i] > time.Second {
			sr.consFail[i] = 0
		}
	}
	best := sr.bestRate()
	sr.current = best
	sr.count++
	sr.sampling = false
	if sr.count%sr.sampleEvery() == 0 {
		if s, ok := sr.pickSample(best); ok {
			sr.sampling = true
			return s
		}
	}
	return best
}

// Observe implements Adapter. Airtime bookkeeping reads the memoized
// per-size tables — Observe runs once per transmission attempt.
func (sr *SampleRate) Observe(fb Feedback) {
	if sr.airt == nil || sr.airt.Bytes != sr.bytes() {
		sr.airt = phy.AirtimesFor(sr.bytes())
	}
	airt := sr.airt
	var tx time.Duration
	if fb.Acked {
		tx = airt.Frame[fb.Rate]
		sr.consFail[fb.Rate] = 0
	} else {
		tx = airt.Failed[fb.Rate]
		sr.consFail[fb.Rate]++
	}
	sr.lastAttempt[fb.Rate] = fb.At
	sr.push(srEvent{at: fb.At, rate: fb.Rate, txTime: tx, success: fb.Acked})
	a := &sr.agg[fb.Rate]
	a.totalTx += tx
	a.n++
	if fb.Acked {
		a.succ++
	}
	sr.expire(fb.At)
}

// ringCapacity bounds the events a window can ever hold: the MAC clock
// advances by at least the fastest frame exchange per attempt, so the
// window divided by the cheapest airtime (plus slack for the attempt
// entering as the oldest leaves) is a hard ceiling. Sizing the ring
// once from this bound is what keeps a replay allocation-free.
func (sr *SampleRate) ringCapacity() int {
	if sr.airt == nil || sr.airt.Bytes != sr.bytes() {
		sr.airt = phy.AirtimesFor(sr.bytes())
	}
	min := sr.airt.Frame[0]
	for _, arr := range [2]*[phy.NumRates]time.Duration{&sr.airt.Frame, &sr.airt.Failed} {
		for _, d := range arr {
			if d > 0 && d < min {
				min = d
			}
		}
	}
	if min <= 0 {
		return 1024
	}
	return int(sr.window()/min) + 64
}

// push appends an event to the ring, growing only in the (unreachable
// by construction) case of overflow.
func (sr *SampleRate) push(e srEvent) {
	if len(sr.events) == 0 {
		sr.events = make([]srEvent, sr.ringCapacity())
	}
	if sr.live == len(sr.events) {
		// Defensive: a workload attempting faster than any frame
		// exchange would violate the capacity bound; double rather than
		// silently dropping window history.
		grown := make([]srEvent, 2*len(sr.events))
		for i := 0; i < sr.live; i++ {
			grown[i] = sr.events[(sr.head+i)%len(sr.events)]
		}
		sr.events = grown
		sr.head = 0
	}
	sr.events[(sr.head+sr.live)%len(sr.events)] = e
	sr.live++
}

// expire drops events older than the window, keeping the aggregates in
// step. The ring advances its head in place; memory stays at the
// capacity fixed by ringCapacity for the life of the adapter.
func (sr *SampleRate) expire(now time.Duration) {
	cut := now - sr.window()
	for sr.live > 0 && sr.events[sr.head].at < cut {
		e := sr.events[sr.head]
		a := &sr.agg[e.rate]
		a.totalTx -= e.txTime
		a.n--
		if e.success {
			a.succ--
		}
		sr.head++
		if sr.head == len(sr.events) {
			sr.head = 0
		}
		sr.live--
	}
}

// avgTxTime returns the average transmission time per *successful*
// packet at rate r over the window, and whether any success exists.
func (sr *SampleRate) avgTxTime(r phy.Rate) (time.Duration, bool) {
	a := sr.agg[r]
	if a.succ <= 0 {
		return 0, false
	}
	return a.totalTx / time.Duration(a.succ), true
}

// bestRate returns the rate minimising average tx time among rates
// without four or more consecutive failures (Bicket's switch-away rule:
// a rate that keeps failing must be abandoned even if its windowed
// average still looks good).
func (sr *SampleRate) bestRate() phy.Rate {
	best := phy.Rate(-1)
	var bestTx time.Duration
	for i := 0; i < phy.NumRates; i++ {
		if sr.consFail[i] >= 4 {
			continue
		}
		if tx, ok := sr.avgTxTime(phy.Rate(i)); ok {
			if best < 0 || tx < bestTx {
				best, bestTx = phy.Rate(i), tx
			}
		}
	}
	if best >= 0 {
		return best
	}
	if sr.agg[sr.current].n == 0 && sr.consFail[sr.current] < 4 {
		// No history at all yet: stay at the optimistic starting rate.
		return sr.current
	}
	// Every rate with history is failing repeatedly: fall back to the
	// most robust rate, as the madwifi retry chain does.
	return phy.Rate6
}

// pickSample selects a random candidate rate other than current that
// could beat it: its lossless transmission time must be below current's
// average, and it must not have 4+ consecutive failures.
func (sr *SampleRate) pickSample(current phy.Rate) (phy.Rate, bool) {
	curAvg, okCur := sr.avgTxTime(current)
	if sr.airt == nil || sr.airt.Bytes != sr.bytes() {
		sr.airt = phy.AirtimesFor(sr.bytes())
	}
	// Fixed-size candidate buffer: pickSample runs every sampleEvery-th
	// attempt and must not allocate.
	var cands [phy.NumRates]phy.Rate
	n := 0
	for _, r := range phy.Rates {
		if r == current || sr.consFail[r] >= 4 {
			continue
		}
		if okCur && sr.airt.Frame[r] >= curAvg {
			continue // cannot possibly beat the current rate
		}
		cands[n] = r
		n++
	}
	if n == 0 {
		return 0, false
	}
	if sr.Rand == nil {
		sr.Rand = rand.New(rand.NewSource(1))
	}
	return cands[sr.Rand.Intn(n)], true
}

// Sampling reports whether the most recent PickRate returned a sample
// (exposed for tests).
func (sr *SampleRate) Sampling() bool { return sr.sampling }
