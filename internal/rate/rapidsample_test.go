package rate

import (
	"testing"
	"time"

	"repro/internal/phy"
)

// feed drives an adapter through one attempt at the given time with the
// given outcome, returning the rate it picked.
func feed(a Adapter, at time.Duration, acked bool) phy.Rate {
	r := a.PickRate(at)
	a.Observe(Feedback{At: at, Rate: r, Acked: acked, SNR: NoSNR()})
	return r
}

func TestRapidSampleStartsFastest(t *testing.T) {
	rs := NewRapidSample()
	if got := rs.PickRate(0); got != phy.Rate54 {
		t.Errorf("initial rate = %v, want 54", got)
	}
}

func TestRapidSampleStepsDownOnLoss(t *testing.T) {
	rs := NewRapidSample()
	feed(rs, 0, false)
	if got := rs.PickRate(time.Millisecond); got != phy.Rate48 {
		t.Errorf("after one loss rate = %v, want 48", got)
	}
	feed(rs, time.Millisecond, false)
	if got := rs.PickRate(2 * time.Millisecond); got != phy.Rate36 {
		t.Errorf("after two losses rate = %v, want 36", got)
	}
}

func TestRapidSampleFloorsAtLowestRate(t *testing.T) {
	rs := NewRapidSample()
	at := time.Duration(0)
	for i := 0; i < 20; i++ {
		feed(rs, at, false)
		at += 100 * time.Microsecond
	}
	if got := rs.PickRate(at); got != phy.Rate6 {
		t.Errorf("rate = %v, want floor 6", got)
	}
}

func TestRapidSampleSamplesUpAfterSuccessRun(t *testing.T) {
	rs := NewRapidSample()
	// Drop to 48, then succeed past δ_success with no recent failures
	// anywhere else: the next pick jumps opportunistically.
	feed(rs, 0, false) // 54 fails at t=0
	at := time.Millisecond
	var sawJump bool
	for i := 0; i < 40; i++ {
		r := feed(rs, at, true)
		if r > phy.Rate48 {
			sawJump = true
			break
		}
		at += 500 * time.Microsecond
	}
	if !sawJump {
		t.Error("never sampled a higher rate despite sustained success")
	}
}

func TestRapidSampleRevertsOnFailedSample(t *testing.T) {
	rs := NewRapidSample()
	feed(rs, 0, false)          // 54 fails → at 48
	at := 20 * time.Millisecond // past δ_fail, everything eligible
	for i := 0; i < 40; i++ {   // succeed at 48 until a sample fires
		r := rs.PickRate(at)
		if r != phy.Rate48 {
			// This is the sample. Fail it: the protocol must revert to 48.
			rs.Observe(Feedback{At: at, Rate: r, Acked: false, SNR: NoSNR()})
			if got := rs.PickRate(at + time.Microsecond); got != phy.Rate48 {
				t.Fatalf("after failed sample at %v, rate = %v, want revert to 48", r, got)
			}
			return
		}
		rs.Observe(Feedback{At: at, Rate: r, Acked: true, SNR: NoSNR()})
		at += 400 * time.Microsecond
	}
	t.Fatal("no sample fired")
}

func TestRapidSampleAdoptsSuccessfulSample(t *testing.T) {
	rs := NewRapidSample()
	feed(rs, 0, false)
	at := 20 * time.Millisecond
	for i := 0; i < 40; i++ {
		r := rs.PickRate(at)
		rs.Observe(Feedback{At: at, Rate: r, Acked: true, SNR: NoSNR()})
		if r > phy.Rate48 {
			// The sample succeeded; the next pick keeps the faster rate.
			if got := rs.PickRate(at + time.Microsecond); got != r {
				t.Fatalf("successful sample at %v not adopted (next = %v)", r, got)
			}
			return
		}
		at += 400 * time.Microsecond
	}
	t.Fatal("no sample fired")
}

func TestRapidSampleEligibilityBlocksAboveFailedLower(t *testing.T) {
	// Paper rule (b): no rate above a recently failed slower rate may be
	// sampled.
	rs := NewRapidSample()
	rs.PickRate(0)
	// Fail at 12 Mbps "recently".
	rs.Observe(Feedback{At: 50 * time.Millisecond, Rate: phy.Rate12, Acked: false, SNR: NoSNR()})
	// Succeeding at 9 for a while: the sample target must not exceed 9,
	// because 12 failed within δ_fail.
	at := 52 * time.Millisecond
	for i := 0; i < 20; i++ {
		r := rs.PickRate(at)
		if r > phy.Rate9 {
			t.Fatalf("sampled %v while 12 Mbps failure was fresh", r)
		}
		rs.Observe(Feedback{At: at, Rate: phy.Rate9, Acked: true, SNR: NoSNR()})
		at += 300 * time.Microsecond
	}
}

func TestRapidSampleOpportunisticJump(t *testing.T) {
	// With every failure stale, the sample target is the fastest rate —
	// a multi-rate jump, not a single step.
	rs := NewRapidSample()
	feed(rs, 0, false)                // at 48
	feed(rs, time.Millisecond, false) // at 36
	// Wait out δ_fail, then succeed at 36 past δ_success.
	at := 30 * time.Millisecond
	for i := 0; i < 30; i++ {
		r := rs.PickRate(at)
		if r != phy.Rate36 {
			if r != phy.Rate54 {
				t.Fatalf("jump target = %v, want 54 (opportunistic)", r)
			}
			return
		}
		rs.Observe(Feedback{At: at, Rate: r, Acked: true, SNR: NoSNR()})
		at += 400 * time.Microsecond
	}
	t.Fatal("no sample fired")
}

func TestRapidSampleStepOnlyAblation(t *testing.T) {
	rs := &RapidSample{StepOnly: true}
	feed(rs, 0, false)
	feed(rs, time.Millisecond, false) // at 36
	at := 30 * time.Millisecond
	for i := 0; i < 30; i++ {
		r := rs.PickRate(at)
		if r != phy.Rate36 {
			if r != phy.Rate48 {
				t.Fatalf("StepOnly jump target = %v, want 48 (one step)", r)
			}
			return
		}
		rs.Observe(Feedback{At: at, Rate: r, Acked: true, SNR: NoSNR()})
		at += 400 * time.Microsecond
	}
	t.Fatal("no sample fired")
}

func TestRapidSampleReset(t *testing.T) {
	rs := NewRapidSample()
	feed(rs, 0, false)
	feed(rs, time.Millisecond, false)
	rs.Reset()
	if got := rs.PickRate(2 * time.Millisecond); got != phy.Rate54 {
		t.Errorf("after Reset rate = %v, want fresh start at 54", got)
	}
}

func TestRapidSampleCustomDeltas(t *testing.T) {
	rs := &RapidSample{DeltaSuccess: time.Millisecond, DeltaFail: 2 * time.Millisecond}
	if rs.dSuccess() != time.Millisecond || rs.dFail() != 2*time.Millisecond {
		t.Error("custom deltas ignored")
	}
	var def RapidSample
	if def.dSuccess() != DefaultDeltaSuccess || def.dFail() != DefaultDeltaFail {
		t.Error("defaults wrong")
	}
}

func TestRapidSampleName(t *testing.T) {
	if NewRapidSample().Name() != "RapidSample" {
		t.Error("name wrong")
	}
}
