package rate

import (
	"math"
	"time"

	"repro/internal/phy"
)

// The two SNR-based baselines of §3.4. Both map a receiver-SNR estimate
// to the throughput-optimal rate through the trained phy curves (the
// harness grants them ideal training, as the paper did). They differ only
// in the estimate: RBAR uses the single most recent SNR observation
// (fresh but noisy), CHARM a windowed average (smooth but stale). The
// paper finds RBAR slightly ahead when mobile — instantaneous SNR tracks
// a fast channel better — and CHARM slightly ahead when static, and our
// implementations inherit exactly that trade-off.

// RBAR picks the rate from the most recent receiver SNR, learned here
// from the last acknowledged exchange (standing in for the original's
// RTS/CTS probe).
type RBAR struct {
	// PacketBytes is the frame size for the rate picker (default 1000).
	PacketBytes int

	haveSNR bool
	lastSNR float64
	// consFail counts consecutive failures. In the original, a fade that
	// outruns the SNR estimate makes the RTS exchange itself fail and the
	// receiver quotes ever more conservative rates; we model that as a
	// per-consecutive-failure SNR back-off that clears on success.
	consFail int
	// et caches the error LUT for PacketBytes; PickRate runs once per
	// transmission attempt.
	et *phy.ErrorTable
}

// NewRBAR returns an RBAR instance.
func NewRBAR() *RBAR { return &RBAR{} }

// Name implements Adapter.
func (r *RBAR) Name() string { return "RBAR" }

// Reset implements Adapter.
func (r *RBAR) Reset() {
	r.haveSNR = false
	r.consFail = 0
}

func (r *RBAR) bytes() int {
	if r.PacketBytes > 0 {
		return r.PacketBytes
	}
	return 1000
}

// PickRate implements Adapter: the throughput-optimal rate for the last
// known SNR (via the table-driven picker); the lowest rate until an SNR
// is known.
func (r *RBAR) PickRate(now time.Duration) phy.Rate {
	if !r.haveSNR {
		return phy.Rate6
	}
	if r.et == nil || r.et.Bytes != r.bytes() {
		r.et = phy.ErrorTableFor(r.bytes())
	}
	return r.et.BestRate(r.lastSNR - 2.5*float64(r.consFail))
}

// UsesRTS implements RTSUser: RBAR's receiver-side rate selection rides
// on an RTS/CTS exchange before every data frame.
func (r *RBAR) UsesRTS() bool { return true }

// Observe implements Adapter, recording any fresh SNR and tracking the
// consecutive-failure back-off.
func (r *RBAR) Observe(fb Feedback) {
	if fb.Acked {
		r.consFail = 0
	} else {
		r.consFail++
	}
	if !math.IsNaN(fb.SNR) {
		r.lastSNR = fb.SNR
		r.haveSNR = true
	}
}

// UpdateSNR implements SNRUpdater: RBAR replaces its estimate with the
// newest report.
func (r *RBAR) UpdateSNR(at time.Duration, snr float64) {
	r.lastSNR = snr
	r.haveSNR = true
}

// CHARM estimates the receiver SNR by averaging recent observations
// (exploiting channel reciprocity in the original), making it robust to
// short-term SNR fluctuation but slower to follow a changing channel.
type CHARM struct {
	// PacketBytes is the frame size for the rate picker (default 1000).
	PacketBytes int
	// Window is the SNR averaging window (default 1 s).
	Window time.Duration

	// obs[head:] is the FIFO of in-window observations; sum is their
	// running total. PickRate and expire run once per transmission
	// attempt, so both must be O(1) amortised: the head index advances
	// past expired entries (compacting occasionally to bound memory)
	// and the mean comes from the running sum instead of a rescan.
	obs  []snrObs
	head int
	sum  float64
	// offset is CHARM's dynamic calibration (dB): the original adjusts
	// its SNR thresholds when observed losses disagree with the
	// SNR-predicted outcome. Failures raise the offset (pick lower
	// rates); successes let it decay.
	offset float64
	// et caches the error LUT for PacketBytes; PickRate runs once per
	// transmission attempt.
	et *phy.ErrorTable
}

type snrObs struct {
	at  time.Duration
	snr float64
}

// NewCHARM returns a CHARM instance with the default window.
func NewCHARM() *CHARM { return &CHARM{} }

// Name implements Adapter.
func (c *CHARM) Name() string { return "CHARM" }

// Reset implements Adapter.
func (c *CHARM) Reset() {
	c.obs = c.obs[:0]
	c.head = 0
	c.sum = 0
	c.offset = 0
}

func (c *CHARM) bytes() int {
	if c.PacketBytes > 0 {
		return c.PacketBytes
	}
	return 1000
}

func (c *CHARM) window() time.Duration {
	if c.Window > 0 {
		return c.Window
	}
	return time.Second
}

// PickRate implements Adapter: the throughput-optimal rate for the
// windowed average SNR (via the table-driven picker); the lowest rate
// until an SNR is known.
func (c *CHARM) PickRate(now time.Duration) phy.Rate {
	c.expire(now)
	n := len(c.obs) - c.head
	if n == 0 {
		return phy.Rate6
	}
	if c.et == nil || c.et.Bytes != c.bytes() {
		c.et = phy.ErrorTableFor(c.bytes())
	}
	return c.et.BestRate(c.sum/float64(n) - c.offset)
}

// Observe implements Adapter, recording any fresh SNR and applying the
// dynamic threshold calibration: each loss raises the offset, each
// success lets it decay, so a fade the averaged SNR cannot see still
// pushes CHARM to a surviving rate within a few attempts.
func (c *CHARM) Observe(fb Feedback) {
	if fb.Acked {
		c.offset *= 0.99
		if c.offset < 0.01 {
			c.offset = 0
		}
	} else {
		c.offset += 1.2
		if c.offset > 12 {
			c.offset = 12
		}
	}
	if !math.IsNaN(fb.SNR) {
		c.add(fb.At, fb.SNR)
	}
}

// UpdateSNR implements SNRUpdater: CHARM appends the report to its
// averaging window.
func (c *CHARM) UpdateSNR(at time.Duration, snr float64) {
	c.add(at, snr)
}

func (c *CHARM) add(at time.Duration, snr float64) {
	c.obs = append(c.obs, snrObs{at: at, snr: snr})
	c.sum += snr
	c.expire(at)
}

func (c *CHARM) expire(now time.Duration) {
	cut := now - c.window()
	for c.head < len(c.obs) && c.obs[c.head].at < cut {
		c.sum -= c.obs[c.head].snr
		c.head++
	}
	// Compact once the dead prefix dominates, amortising the copy; the
	// buffer then stays at roughly twice the window population.
	if c.head > 1024 && c.head*2 > len(c.obs) {
		c.obs = append(c.obs[:0], c.obs[c.head:]...)
		c.head = 0
	}
}
