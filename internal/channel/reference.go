package channel

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/phy"
	"repro/internal/trace"
)

// This file preserves the pre-LUT trace generator verbatim: the same SNR
// process driven by math/rand and mapped through the analytic
// phy.DeliveryProb curves per slot. It is not used by the experiments —
// it exists as the oracle the table-driven fast path is validated and
// benchmarked against (TestGenerateMatchesReferenceStatistics,
// BenchmarkGenerate/reference).

// refSNRProcess is the reference twin of snrProcess, differing only in
// its RNG.
type refSNRProcess struct {
	cfg Environment
	rng *rand.Rand

	shadow     float64
	walkShadow float64
	hRe, hIm   float64
	fadeLeft   time.Duration
	fadeDepth  float64
	pos        float64
	dir        float64
}

func newRefSNRProcess(cfg Environment, rng *rand.Rand) *refSNRProcess {
	p := &refSNRProcess{cfg: cfg, rng: rng}
	p.hRe = rng.NormFloat64() / math.Sqrt2
	p.hIm = rng.NormFloat64() / math.Sqrt2
	if cfg.Vehicular {
		p.pos = -50
		p.dir = 1
	}
	return p
}

func (p *refSNRProcess) step(dt time.Duration, moving bool) float64 {
	cfg := p.cfg
	if cfg.ShadowTau > 0 {
		a := math.Exp(-dt.Seconds() / cfg.ShadowTau.Seconds())
		p.shadow = a*p.shadow + math.Sqrt(1-a*a)*p.rng.NormFloat64()*cfg.ShadowSigma
	}
	if moving && cfg.WalkShadowSigma > 0 {
		tau := cfg.WalkShadowTau
		if tau <= 0 {
			tau = time.Second
		}
		a := math.Exp(-dt.Seconds() / tau.Seconds())
		p.walkShadow = a*p.walkShadow + math.Sqrt(1-a*a)*p.rng.NormFloat64()*cfg.WalkShadowSigma
	}
	snr := cfg.BaseSNR + p.shadow + p.walkShadow

	if cfg.Vehicular && moving {
		p.pos += p.dir * cfg.PassSpeed * dt.Seconds()
		if p.pos > 50 {
			p.dir = -1
		} else if p.pos < -50 {
			p.dir = 1
		}
		d := math.Hypot(p.pos, cfg.PassDistance)
		snr -= 28 * math.Log10(d/cfg.PassDistance)
	}

	if moving {
		tc := cfg.CoherenceTime
		if tc <= 0 {
			tc = 10 * time.Millisecond
		}
		rho := math.Exp(-dt.Seconds() / tc.Seconds())
		s := math.Sqrt(1 - rho*rho)
		p.hRe = rho*p.hRe + s*p.rng.NormFloat64()/math.Sqrt2
		p.hIm = rho*p.hIm + s*p.rng.NormFloat64()/math.Sqrt2
		k := cfg.RicianK
		losAmp := math.Sqrt(k / (1 + k))
		scale := math.Sqrt(1 / (1 + k))
		re := losAmp + scale*p.hRe
		im := scale * p.hIm
		gain := re*re + im*im
		if gain < 1e-6 {
			gain = 1e-6
		}
		snr += 10 * math.Log10(gain)
	} else {
		if p.fadeLeft > 0 {
			p.fadeLeft -= dt
			snr -= p.fadeDepth
		} else if p.rng.Float64() < cfg.StaticFadeRate*dt.Seconds() {
			p.fadeLeft = time.Duration(float64(cfg.StaticFadeLen) * (0.5 + p.rng.Float64()))
			p.fadeDepth = cfg.StaticFadeDepth * (0.5 + p.rng.Float64())
		}
	}
	return snr
}

// GenerateReference produces a fate trace through the analytic error
// curves and math/rand — the pre-LUT implementation. Its RNG stream
// differs from Generate's, so individual slots differ between the two;
// trace-level statistics (SNR moments, delivery probabilities given SNR)
// agree, which the channel tests assert.
func GenerateReference(cfg Config) *trace.FateTrace {
	slotDur := cfg.SlotDur
	if slotDur <= 0 {
		slotDur = trace.DefaultSlot
	}
	bytes := cfg.PacketBytes
	if bytes <= 0 {
		bytes = 1000
	}
	total := cfg.Total
	if end := cfg.Sched.End(); end > total {
		total = end
	}
	n := int(total / slotDur)
	rng := rand.New(rand.NewSource(cfg.Seed))
	proc := newRefSNRProcess(cfg.Env, rng)

	tr := &trace.FateTrace{
		Env:       cfg.Env.Name,
		SlotDur:   slotDur,
		Seed:      cfg.Seed,
		ExtraLoss: cfg.Env.ExtraLossProb,
		Slots:     make([]trace.Slot, n),
	}
	for i := 0; i < n; i++ {
		at := time.Duration(i) * slotDur
		moving := cfg.Sched.MovingAt(at)
		snr := proc.step(slotDur, moving)
		s := &tr.Slots[i]
		s.SNR = snr
		s.Moving = moving
		for r := 0; r < phy.NumRates; r++ {
			pChan := phy.DeliveryProb(phy.Rate(r), snr, bytes)
			s.Prob[r] = pChan * (1 - cfg.Env.ExtraLossProb)
			s.Delivered[r] = rng.Float64() < pChan
		}
	}
	tr.Mode = modeLabel(cfg.Sched, total)
	tr.Prepare()
	return tr
}
