package channel

import (
	"math"
	"testing"
	"time"

	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sensors"
	"repro/internal/stats"
)

func staticSched(total time.Duration) sensors.Schedule {
	return sensors.Schedule{{Start: 0, End: total, Mode: sensors.Static}}
}

func mobileSched(total time.Duration) sensors.Schedule {
	return sensors.Schedule{{Start: 0, End: total, Mode: sensors.Walk}}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := Config{Env: Office, Sched: mobileSched(2 * time.Second), Total: 2 * time.Second, Seed: 5}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Slots) != len(b.Slots) {
		t.Fatal("lengths differ")
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			t.Fatalf("slot %d differs across same-seed runs", i)
		}
	}
	c := Generate(Config{Env: Office, Sched: mobileSched(2 * time.Second), Total: 2 * time.Second, Seed: 6})
	same := true
	for i := range a.Slots {
		if a.Slots[i] != c.Slots[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidates(t *testing.T) {
	tr := Generate(Config{Env: Hallway, Sched: staticSched(time.Second), Total: time.Second, Seed: 1})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Env != "hallway" || tr.Mode != "static" {
		t.Errorf("labels: %s/%s", tr.Env, tr.Mode)
	}
	if tr.ExtraLoss != Hallway.ExtraLossProb {
		t.Error("ExtraLoss not recorded")
	}
}

func TestMovingFlagsMatchSchedule(t *testing.T) {
	total := 4 * time.Second
	sched := sensors.AlternatingSchedule(total, time.Second, sensors.Walk, false)
	tr := Generate(Config{Env: Office, Sched: sched, Total: total, Seed: 2})
	for i, s := range tr.Slots {
		at := time.Duration(i) * tr.SlotDur
		if s.Moving != sched.MovingAt(at) {
			t.Fatalf("slot %d moving=%v, schedule says %v", i, s.Moving, sched.MovingAt(at))
		}
	}
	if tr.Mode != "mixed" {
		t.Errorf("mode = %s, want mixed", tr.Mode)
	}
}

func TestMobileMoreVariable(t *testing.T) {
	// The core premise: mobile SNR (and hence delivery probability at a
	// marginal rate) varies much more than static.
	total := 10 * time.Second
	st := Generate(Config{Env: Office, Sched: staticSched(total), Total: total, Seed: 3})
	mo := Generate(Config{Env: Office, Sched: mobileSched(total), Total: total, Seed: 3})
	var stSNR, moSNR []float64
	for i := range st.Slots {
		stSNR = append(stSNR, st.Slots[i].SNR)
		moSNR = append(moSNR, mo.Slots[i].SNR)
	}
	if stats.StdDev(moSNR) < 2*stats.StdDev(stSNR) {
		t.Errorf("mobile SNR std %.2f not ≫ static %.2f",
			stats.StdDev(moSNR), stats.StdDev(stSNR))
	}
}

func TestProbConsistentWithSNR(t *testing.T) {
	tr := Generate(Config{Env: Office, Sched: staticSched(time.Second), Total: time.Second, Seed: 4})
	et := phy.ErrorTableFor(1000)
	for i, s := range tr.Slots {
		for _, r := range phy.Rates {
			// Slot probabilities come from the error LUT exactly...
			lut := et.DeliveryProb(r, s.SNR) * (1 - Office.ExtraLossProb)
			if math.Abs(s.Prob[r]-lut) > 1e-12 {
				t.Fatalf("slot %d rate %v prob %v, want LUT %v", i, r, s.Prob[r], lut)
			}
			// ...and hence match the analytic curves within the LUT's
			// documented error bound.
			want := phy.DeliveryProb(r, s.SNR, 1000) * (1 - Office.ExtraLossProb)
			if math.Abs(s.Prob[r]-want) > 1e-3 {
				t.Fatalf("slot %d rate %v prob %v, analytic %v", i, r, s.Prob[r], want)
			}
		}
	}
}

// TestGenerateMatchesReferenceStatistics checks the fast path against
// the retained pre-LUT generator. The two use different RNG streams, so
// individual realizations differ; the channel statistics the
// experiments depend on — SNR moments and mean delivery probability per
// rate — must agree once averaged over enough seeds to wash out the
// slow shadowing process (τ = 4 s, so one 30 s trace holds only ~8
// independent shadow samples).
func TestGenerateMatchesReferenceStatistics(t *testing.T) {
	total := 30 * time.Second
	const seeds = 40
	for _, mode := range []string{"static", "mobile"} {
		sched := staticSched(total)
		if mode == "mobile" {
			sched = mobileSched(total)
		}
		var fSNR, rSNR, fSNR2, rSNR2 float64
		var fProb, rProb [phy.NumRates]float64
		var n float64
		for s := int64(0); s < seeds; s++ {
			cfg := Config{Env: Office, Sched: sched, Total: total, Seed: 500 + s}
			fast := Generate(cfg)
			ref := GenerateReference(cfg)
			for i := range fast.Slots {
				f, r := fast.Slots[i].SNR, ref.Slots[i].SNR
				fSNR, fSNR2 = fSNR+f, fSNR2+f*f
				rSNR, rSNR2 = rSNR+r, rSNR2+r*r
				for rt := 0; rt < phy.NumRates; rt++ {
					fProb[rt] += fast.Slots[i].Prob[rt]
					rProb[rt] += ref.Slots[i].Prob[rt]
				}
				n++
			}
		}
		fMean, rMean := fSNR/n, rSNR/n
		fStd := math.Sqrt(fSNR2/n - fMean*fMean)
		rStd := math.Sqrt(rSNR2/n - rMean*rMean)
		if math.Abs(fMean-rMean) > 0.3 {
			t.Errorf("%s: SNR mean %.2f (fast) vs %.2f (reference)", mode, fMean, rMean)
		}
		if math.Abs(fStd-rStd) > 0.15*rStd {
			t.Errorf("%s: SNR std %.2f (fast) vs %.2f (reference)", mode, fStd, rStd)
		}
		for _, r := range []phy.Rate{phy.Rate6, phy.Rate24, phy.Rate54} {
			fp, rp := fProb[r]/n, rProb[r]/n
			if math.Abs(fp-rp) > 0.04 {
				t.Errorf("%s: mean delivery prob at %v: %.3f (fast) vs %.3f (reference)", mode, r, fp, rp)
			}
		}
	}
}

// TestGenerateIntoMatchesGenerate: the buffer-reusing entry point must
// produce bit-identical traces, even into a dirty recycled buffer.
func TestGenerateIntoMatchesGenerate(t *testing.T) {
	cfg := Config{Env: Outdoor, Sched: mobileSched(2 * time.Second), Total: 2 * time.Second, Seed: 33}
	want := Generate(cfg)
	// Dirty, over-sized buffer from a different config.
	recycled := Generate(Config{Env: Vehicular, Sched: mobileSched(5 * time.Second), Total: 5 * time.Second, Seed: 9})
	GenerateInto(cfg, recycled)
	if recycled.Env != want.Env || recycled.Mode != want.Mode || len(recycled.Slots) != len(want.Slots) {
		t.Fatalf("labels/length differ: %s/%s/%d vs %s/%s/%d",
			recycled.Env, recycled.Mode, len(recycled.Slots), want.Env, want.Mode, len(want.Slots))
	}
	for i := range want.Slots {
		if recycled.Slots[i] != want.Slots[i] {
			t.Fatalf("slot %d differs between Generate and GenerateInto", i)
		}
	}
}

// TestGenerateIntoAllocationFree pins the regenerating hot path at zero
// heap allocations once the slot buffer exists.
func TestGenerateIntoAllocationFree(t *testing.T) {
	cfg := Config{Env: Office, Sched: mobileSched(time.Second), Total: time.Second, Seed: 2}
	tr := Generate(cfg) // warm buffer and LUT cache
	allocs := testing.AllocsPerRun(10, func() {
		GenerateInto(cfg, tr)
	})
	if allocs != 0 {
		t.Errorf("GenerateInto allocates %v times per trace, want 0", allocs)
	}
}

// TestTracePool: pooled generation returns correct traces and recycles
// buffers.
func TestTracePool(t *testing.T) {
	var pool TracePool
	cfg := Config{Env: Hallway, Sched: staticSched(time.Second), Total: time.Second, Seed: 12}
	want := Generate(cfg)
	tr := pool.Generate(cfg)
	for i := range want.Slots {
		if tr.Slots[i] != want.Slots[i] {
			t.Fatalf("pooled trace slot %d differs", i)
		}
	}
	pool.Put(tr)
	tr2 := pool.Generate(cfg)
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
	pool.Put(nil) // must not panic
}

func TestWithBaseSNR(t *testing.T) {
	e := Office.WithBaseSNR(5)
	if e.BaseSNR != 5 {
		t.Error("WithBaseSNR did not set")
	}
	if Office.BaseSNR == 5 {
		t.Error("WithBaseSNR mutated the original")
	}
}

func TestEnvironments(t *testing.T) {
	envs := Environments()
	if len(envs) != 3 {
		t.Fatalf("%d environments, want 3", len(envs))
	}
	names := map[string]bool{}
	for _, e := range envs {
		names[e.Name] = true
	}
	for _, want := range []string{"office", "hallway", "outdoor"} {
		if !names[want] {
			t.Errorf("missing environment %s", want)
		}
	}
}

func TestPacketStreamLossCorrelation(t *testing.T) {
	// Figure 3-1's premise at the generator level: mobile losses are
	// short-range correlated, static ones much less so.
	const interval = 200 * time.Microsecond
	const total = 20 * time.Second
	st := GeneratePacketStream(Office, sensors.Static, phy.Rate54, interval, total, 1000, 9)
	mo := GeneratePacketStream(Office, sensors.Walk, phy.Rate54, interval, total, 1000, 9)

	moCond := mo.ConditionalLoss(60)
	stBase, moBase := st.LossRate(), mo.LossRate()
	// Mobile losses are strongly correlated at short lag...
	if moCond[1] < moBase+0.1 {
		t.Errorf("mobile cond[1] %v not well above baseline %v", moCond[1], moBase)
	}
	// ...and the correlation decays with lag (coherence-time structure).
	if moCond[50] >= moCond[1] {
		t.Errorf("mobile conditional loss did not decay: k=1 %.3f vs k=50 %.3f",
			moCond[1], moCond[50])
	}
	// Fading makes the mobile channel lossier overall at the top rate.
	if moBase <= stBase {
		t.Errorf("mobile baseline loss %.3f not above static %.3f", moBase, stBase)
	}
}

func TestPacketStreamDeterminism(t *testing.T) {
	a := GeneratePacketStream(Outdoor, sensors.Walk, phy.Rate24, time.Millisecond, time.Second, 1000, 7)
	b := GeneratePacketStream(Outdoor, sensors.Walk, phy.Rate24, time.Millisecond, time.Second, 7_000, 7)
	_ = b
	c := GeneratePacketStream(Outdoor, sensors.Walk, phy.Rate24, time.Millisecond, time.Second, 1000, 7)
	for i := 0; i < a.Len(); i++ {
		if a.Lost(i) != c.Lost(i) {
			t.Fatal("same-seed packet streams differ")
		}
	}
}

func TestVehicularSweep(t *testing.T) {
	// The drive-by path loss must produce large SNR dynamic range over a
	// full pass.
	total := 15 * time.Second
	sched := sensors.Schedule{{Start: 0, End: total, Mode: sensors.Vehicle}}
	tr := Generate(Config{Env: Vehicular, Sched: sched, Total: total, Seed: 8})
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range tr.Slots {
		min = math.Min(min, s.SNR)
		max = math.Max(max, s.SNR)
	}
	if max-min < 15 {
		t.Errorf("vehicular SNR range %.1f dB, want > 15 (drive-by sweep)", max-min)
	}
}

func TestWalkShadowOnlyWhileMoving(t *testing.T) {
	env := Office.WithBaseSNR(10)
	env.WalkShadowSigma = 10
	env.WalkShadowTau = time.Second
	env.StaticFadeRate = 0 // isolate the walk shadow
	total := 20 * time.Second
	st := Generate(Config{Env: env, Sched: staticSched(total), Total: total, Seed: 11})
	var snrs []float64
	for _, s := range st.Slots {
		snrs = append(snrs, s.SNR)
	}
	// Static: walk shadow frozen at zero, so variance stays small.
	if stats.StdDev(snrs) > env.ShadowSigma*2 {
		t.Errorf("static trace shows walk shadow: std %.2f", stats.StdDev(snrs))
	}
}

// TestGeneratePacketStreamMatchesBoolPath is the differential test for
// the packed-bitset emission: the former implementation materialized a
// []bool and the analysis repacked it; the current one writes packed
// words directly. The RNG draw sequence is identical, so every packet
// fate — and everything derived from them — must match the bool
// reference bit for bit.
func TestGeneratePacketStreamMatchesBoolPath(t *testing.T) {
	// The old implementation, verbatim except for emitting into []bool.
	boolPath := func(env Environment, mode sensors.MobilityMode, r phy.Rate, interval, total time.Duration, bytes int, seed int64) []bool {
		if bytes <= 0 {
			bytes = 1000
		}
		rng := parallel.NewRNG(seed)
		proc := newSNRProcess(env, &rng)
		et := phy.ErrorTableFor(bytes)
		extraScale := 1 - env.ExtraLossProb
		moving := mode.Moving()
		n := int(total / interval)
		lost := make([]bool, n)
		for i := 0; i < n; i++ {
			snr := proc.step(interval, moving)
			p := et.DeliveryProb(r, snr) * extraScale
			lost[i] = rng.Float64() >= p
		}
		return lost
	}
	for _, env := range []Environment{Office, Hallway, Outdoor} {
		for _, mode := range []sensors.MobilityMode{sensors.Static, sensors.Walk} {
			for _, rate := range []phy.Rate{phy.Rate6, phy.Rate54} {
				seed := int64(1000*int(rate) + 10*int(mode))
				got := GeneratePacketStream(env, mode, rate, 200*time.Microsecond, 2*time.Second, 1000, seed)
				want := boolPath(env, mode, rate, 200*time.Microsecond, 2*time.Second, 1000, seed)
				if got.Len() != len(want) {
					t.Fatalf("%s/%v/%v: Len = %d, want %d", env.Name, mode, rate, got.Len(), len(want))
				}
				for i, w := range want {
					if got.Lost(i) != w {
						t.Fatalf("%s/%v/%v: packet %d fate %v, bool path %v", env.Name, mode, rate, i, got.Lost(i), w)
					}
				}
				// LossRate over the packed words must equal the bool count.
				lost := 0
				for _, l := range want {
					if l {
						lost++
					}
				}
				wantRate := 0.0
				if len(want) > 0 {
					wantRate = float64(lost) / float64(len(want))
				}
				if got.LossRate() != wantRate {
					t.Fatalf("%s/%v/%v: LossRate %v, want %v", env.Name, mode, rate, got.LossRate(), wantRate)
				}
			}
		}
	}
}
