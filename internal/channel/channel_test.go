package channel

import (
	"math"
	"testing"
	"time"

	"repro/internal/phy"
	"repro/internal/sensors"
	"repro/internal/stats"
)

func staticSched(total time.Duration) sensors.Schedule {
	return sensors.Schedule{{Start: 0, End: total, Mode: sensors.Static}}
}

func mobileSched(total time.Duration) sensors.Schedule {
	return sensors.Schedule{{Start: 0, End: total, Mode: sensors.Walk}}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := Config{Env: Office, Sched: mobileSched(2 * time.Second), Total: 2 * time.Second, Seed: 5}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Slots) != len(b.Slots) {
		t.Fatal("lengths differ")
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			t.Fatalf("slot %d differs across same-seed runs", i)
		}
	}
	c := Generate(Config{Env: Office, Sched: mobileSched(2 * time.Second), Total: 2 * time.Second, Seed: 6})
	same := true
	for i := range a.Slots {
		if a.Slots[i] != c.Slots[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidates(t *testing.T) {
	tr := Generate(Config{Env: Hallway, Sched: staticSched(time.Second), Total: time.Second, Seed: 1})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Env != "hallway" || tr.Mode != "static" {
		t.Errorf("labels: %s/%s", tr.Env, tr.Mode)
	}
	if tr.ExtraLoss != Hallway.ExtraLossProb {
		t.Error("ExtraLoss not recorded")
	}
}

func TestMovingFlagsMatchSchedule(t *testing.T) {
	total := 4 * time.Second
	sched := sensors.AlternatingSchedule(total, time.Second, sensors.Walk, false)
	tr := Generate(Config{Env: Office, Sched: sched, Total: total, Seed: 2})
	for i, s := range tr.Slots {
		at := time.Duration(i) * tr.SlotDur
		if s.Moving != sched.MovingAt(at) {
			t.Fatalf("slot %d moving=%v, schedule says %v", i, s.Moving, sched.MovingAt(at))
		}
	}
	if tr.Mode != "mixed" {
		t.Errorf("mode = %s, want mixed", tr.Mode)
	}
}

func TestMobileMoreVariable(t *testing.T) {
	// The core premise: mobile SNR (and hence delivery probability at a
	// marginal rate) varies much more than static.
	total := 10 * time.Second
	st := Generate(Config{Env: Office, Sched: staticSched(total), Total: total, Seed: 3})
	mo := Generate(Config{Env: Office, Sched: mobileSched(total), Total: total, Seed: 3})
	var stSNR, moSNR []float64
	for i := range st.Slots {
		stSNR = append(stSNR, st.Slots[i].SNR)
		moSNR = append(moSNR, mo.Slots[i].SNR)
	}
	if stats.StdDev(moSNR) < 2*stats.StdDev(stSNR) {
		t.Errorf("mobile SNR std %.2f not ≫ static %.2f",
			stats.StdDev(moSNR), stats.StdDev(stSNR))
	}
}

func TestProbConsistentWithSNR(t *testing.T) {
	tr := Generate(Config{Env: Office, Sched: staticSched(time.Second), Total: time.Second, Seed: 4})
	for i, s := range tr.Slots {
		for r := 0; r < phy.NumRates; r++ {
			want := phy.DeliveryProb(phy.Rate(r), s.SNR, 1000) * (1 - Office.ExtraLossProb)
			if math.Abs(s.Prob[r]-want) > 1e-9 {
				t.Fatalf("slot %d rate %d prob %v, want %v", i, r, s.Prob[r], want)
			}
		}
	}
}

func TestWithBaseSNR(t *testing.T) {
	e := Office.WithBaseSNR(5)
	if e.BaseSNR != 5 {
		t.Error("WithBaseSNR did not set")
	}
	if Office.BaseSNR == 5 {
		t.Error("WithBaseSNR mutated the original")
	}
}

func TestEnvironments(t *testing.T) {
	envs := Environments()
	if len(envs) != 3 {
		t.Fatalf("%d environments, want 3", len(envs))
	}
	names := map[string]bool{}
	for _, e := range envs {
		names[e.Name] = true
	}
	for _, want := range []string{"office", "hallway", "outdoor"} {
		if !names[want] {
			t.Errorf("missing environment %s", want)
		}
	}
}

func TestPacketStreamLossCorrelation(t *testing.T) {
	// Figure 3-1's premise at the generator level: mobile losses are
	// short-range correlated, static ones much less so.
	const interval = 200 * time.Microsecond
	const total = 20 * time.Second
	st := GeneratePacketStream(Office, sensors.Static, phy.Rate54, interval, total, 1000, 9)
	mo := GeneratePacketStream(Office, sensors.Walk, phy.Rate54, interval, total, 1000, 9)

	moCond := mo.ConditionalLoss(60)
	stBase, moBase := st.LossRate(), mo.LossRate()
	// Mobile losses are strongly correlated at short lag...
	if moCond[1] < moBase+0.1 {
		t.Errorf("mobile cond[1] %v not well above baseline %v", moCond[1], moBase)
	}
	// ...and the correlation decays with lag (coherence-time structure).
	if moCond[50] >= moCond[1] {
		t.Errorf("mobile conditional loss did not decay: k=1 %.3f vs k=50 %.3f",
			moCond[1], moCond[50])
	}
	// Fading makes the mobile channel lossier overall at the top rate.
	if moBase <= stBase {
		t.Errorf("mobile baseline loss %.3f not above static %.3f", moBase, stBase)
	}
}

func TestPacketStreamDeterminism(t *testing.T) {
	a := GeneratePacketStream(Outdoor, sensors.Walk, phy.Rate24, time.Millisecond, time.Second, 1000, 7)
	b := GeneratePacketStream(Outdoor, sensors.Walk, phy.Rate24, time.Millisecond, time.Second, 7_000, 7)
	_ = b
	c := GeneratePacketStream(Outdoor, sensors.Walk, phy.Rate24, time.Millisecond, time.Second, 1000, 7)
	for i := range a.Lost {
		if a.Lost[i] != c.Lost[i] {
			t.Fatal("same-seed packet streams differ")
		}
	}
}

func TestVehicularSweep(t *testing.T) {
	// The drive-by path loss must produce large SNR dynamic range over a
	// full pass.
	total := 15 * time.Second
	sched := sensors.Schedule{{Start: 0, End: total, Mode: sensors.Vehicle}}
	tr := Generate(Config{Env: Vehicular, Sched: sched, Total: total, Seed: 8})
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range tr.Slots {
		min = math.Min(min, s.SNR)
		max = math.Max(max, s.SNR)
	}
	if max-min < 15 {
		t.Errorf("vehicular SNR range %.1f dB, want > 15 (drive-by sweep)", max-min)
	}
}

func TestWalkShadowOnlyWhileMoving(t *testing.T) {
	env := Office.WithBaseSNR(10)
	env.WalkShadowSigma = 10
	env.WalkShadowTau = time.Second
	env.StaticFadeRate = 0 // isolate the walk shadow
	total := 20 * time.Second
	st := Generate(Config{Env: env, Sched: staticSched(total), Total: total, Seed: 11})
	var snrs []float64
	for _, s := range st.Slots {
		snrs = append(snrs, s.SNR)
	}
	// Static: walk shadow frozen at zero, so variance stays small.
	if stats.StdDev(snrs) > env.ShadowSigma*2 {
		t.Errorf("static trace shows walk shadow: std %.2f", stats.StdDev(snrs))
	}
}
