package channel

import (
	"math"
	"testing"
	"time"
)

func TestGilbertElliottLossRate(t *testing.T) {
	g := DefaultGilbertElliott()
	pt := g.GeneratePacketStream(200*time.Microsecond, 60*time.Second, 1)
	want := g.StationaryLossRate()
	if got := pt.LossRate(); math.Abs(got-want) > 0.03 {
		t.Errorf("loss rate %.3f, stationary expectation %.3f", got, want)
	}
}

func TestGilbertElliottBurstStructure(t *testing.T) {
	// The cross-check property: conditional loss at short lag far above
	// the baseline, decaying with lag — the Figure 3-1 shape from a
	// completely different channel model.
	g := DefaultGilbertElliott()
	pt := g.GeneratePacketStream(200*time.Microsecond, 60*time.Second, 2)
	cond := pt.ConditionalLoss(100)
	base := pt.LossRate()
	if cond[1] < 3*base {
		t.Errorf("cond[1] = %.3f, want ≫ baseline %.3f", cond[1], base)
	}
	if cond[100] > cond[1]/2 {
		t.Errorf("no decay: cond[1]=%.3f cond[100]=%.3f", cond[1], cond[100])
	}
}

func TestGilbertElliottDeterminism(t *testing.T) {
	g := DefaultGilbertElliott()
	a := g.GeneratePacketStream(time.Millisecond, time.Second, 3)
	b := g.GeneratePacketStream(time.Millisecond, time.Second, 3)
	for i := 0; i < a.Len(); i++ {
		if a.Lost(i) != b.Lost(i) {
			t.Fatal("same-seed streams differ")
		}
	}
}
