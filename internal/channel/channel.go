// Package channel simulates the wireless channel and generates the fate
// traces the evaluation runs on, replacing the paper's real-world 802.11a
// measurement campaign (Click/MadWiFi/Atheros), which is hardware we do
// not have.
//
// The generator models the channel as an SNR process sampled per trace
// slot, mapped to per-rate delivery through the phy package's error
// curves:
//
//   - Static receivers see a slowly wandering SNR (shadowing) with
//     occasional brief short-term fades — channel conditions are
//     relatively stable, as the paper describes.
//   - Mobile receivers additionally see Rayleigh-style fast fading with a
//     coherence time around 10 ms, the figure the paper measures for a
//     walking receiver (Figure 3-1). This produces the bursty, rapidly
//     outdated loss behaviour that defeats long-history protocols.
//   - Vehicular receivers see a path-loss sweep as the car drives past
//     the roadside sender, plus fast fading with an even shorter
//     coherence time.
//
// A small rate-independent loss probability models contention/collision
// losses, present in every environment.
//
// Generation is the per-trial hot path of every multi-trial experiment,
// so it is table-driven and allocation-lean: per-rate delivery comes
// from the phy error LUT (phy.ErrorTableFor) rather than per-packet
// Erfc/Pow evaluation, randomness from an inline splitmix64 generator
// (parallel.RNG) rather than a heap-allocated math/rand state, and
// GenerateInto/TracePool let trial loops recycle slot buffers. The
// pre-LUT implementation is retained as GenerateReference (the accuracy
// and speedup oracle); see DESIGN.md, "Table-driven error model".
package channel

import (
	"math"
	"sync"
	"time"

	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sensors"
	"repro/internal/trace"
)

// Environment holds the channel parameters of one of the paper's four
// experiment settings (Figure 3-4 and §3.3).
type Environment struct {
	// Name labels traces generated for this environment.
	Name string
	// BaseSNR is the mean SNR (dB) of the link.
	BaseSNR float64
	// ShadowSigma is the 1-σ amplitude (dB) of slow shadowing.
	ShadowSigma float64
	// ShadowTau is the shadowing correlation time.
	ShadowTau time.Duration
	// StaticFadeRate is the mean rate (events per second) of brief
	// short-term fades while static; StaticFadeDepth their mean depth
	// (dB); StaticFadeLen their mean length.
	StaticFadeRate  float64
	StaticFadeDepth float64
	StaticFadeLen   time.Duration
	// CoherenceTime is the fast-fading coherence time while the receiver
	// moves (~10 ms walking, shorter in vehicles).
	CoherenceTime time.Duration
	// WalkShadowSigma and WalkShadowTau add a medium-scale shadowing
	// process active only while moving: walking through a building
	// changes the path obstruction on a timescale of about a second.
	// The state freezes when the walker stops (the obstruction stays
	// where it is). Long mesh-scale links (the Chapter 4 experiments)
	// set this large; the short Chapter 3 links leave it 0.
	WalkShadowSigma float64
	WalkShadowTau   time.Duration
	// RicianK is the ratio (linear) of line-of-sight to scattered power
	// in the mobile fading process; 0 = pure Rayleigh (no LOS).
	RicianK float64
	// ExtraLossProb is a rate-independent per-packet loss probability
	// modelling collisions and interference.
	ExtraLossProb float64
	// Vehicular enables the drive-by path-loss sweep.
	Vehicular bool
	// PassSpeed and PassDistance parameterise the vehicular pass: speed
	// of the car (m/s) and closest approach to the sender (m).
	PassSpeed    float64
	PassDistance float64
}

// The paper's four environments (§3.3): an office with no line of sight,
// a hallway with line of sight, a lightly crowded outdoor pavement, and a
// roadside vehicular setting.
var (
	Office = Environment{
		Name:            "office",
		BaseSNR:         18.2,
		ShadowSigma:     1.5,
		ShadowTau:       4 * time.Second,
		StaticFadeRate:  0.8,
		StaticFadeDepth: 7,
		StaticFadeLen:   40 * time.Millisecond,
		CoherenceTime:   10 * time.Millisecond,
		RicianK:         0, // no LOS: Rayleigh
		ExtraLossProb:   0.03,
	}
	Hallway = Environment{
		Name:            "hallway",
		BaseSNR:         19.5,
		ShadowSigma:     1.2,
		ShadowTau:       5 * time.Second,
		StaticFadeRate:  0.4,
		StaticFadeDepth: 5,
		StaticFadeLen:   30 * time.Millisecond,
		CoherenceTime:   10 * time.Millisecond,
		RicianK:         0.8, // mild LOS component
		ExtraLossProb:   0.02,
	}
	Outdoor = Environment{
		Name:            "outdoor",
		BaseSNR:         18.6,
		ShadowSigma:     2.0,
		ShadowTau:       3 * time.Second,
		StaticFadeRate:  1.0,
		StaticFadeDepth: 6,
		StaticFadeLen:   50 * time.Millisecond,
		CoherenceTime:   9 * time.Millisecond,
		RicianK:         0.3,
		ExtraLossProb:   0.03,
	}
	Vehicular = Environment{
		Name:          "vehicular",
		BaseSNR:       24,
		ShadowSigma:   2.0,
		ShadowTau:     2 * time.Second,
		CoherenceTime: 12 * time.Millisecond,
		RicianK:       0.3,
		ExtraLossProb: 0.02,
		Vehicular:     true,
		PassSpeed:     11, // ~40 km/h, mid-range of the paper's 8–72
		PassDistance:  12,
	}
)

// Environments returns the three mixed-mobility evaluation environments
// of Figures 3-5/3-6/3-7 (office, hallway, outdoor).
func Environments() []Environment {
	return []Environment{Office, Hallway, Outdoor}
}

// WithBaseSNR returns a copy of e with the mean SNR replaced — used by
// the topology-maintenance experiments, which study a marginal
// (mesh-scale) link where even 6 Mbps delivery fluctuates.
func (e Environment) WithBaseSNR(snr float64) Environment {
	e.BaseSNR = snr
	return e
}

// snrProcess produces the SNR sample path. step advances the process by
// dt and returns the SNR (dB). The process shares the caller's inline
// RNG, holds a few dozen bytes of state, and lives on the caller's
// stack — one trial's trace generation performs no per-slot heap
// allocation.
type snrProcess struct {
	cfg Environment
	rng *parallel.RNG

	shadow float64
	// medium-scale walking shadow; frozen while static
	walkShadow float64
	// complex fading tap for the mobile case
	hRe, hIm float64
	// static short-term fade state
	fadeLeft  time.Duration
	fadeDepth float64
	// vehicular geometry
	pos float64 // metres along the road, sender at 0
	dir float64 // +1 or −1

	// Cached AR(1) coefficients for the step size coDt. Trace slots are
	// fixed-width, so the exp/sqrt evaluations are loop-invariant and
	// hoisted here instead of being recomputed every step.
	coDt                 time.Duration
	coShadowA, coShadowB float64 // shadow: x' = A·x + B·N(0,1)
	coWalkA, coWalkB     float64 // walking shadow
	coFadeRho, coFadeS   float64 // fading tap: h' = ρ·h + S·N(0,1) per axis
	coLosAmp, coScale    float64 // Rician LOS/scatter amplitudes (k-dependent)
}

// refreshCoeffs recomputes the per-dt AR(1) coefficients; callers pass a
// constant dt, so this runs once per trace rather than once per step.
func (p *snrProcess) refreshCoeffs(dt time.Duration) {
	cfg := &p.cfg
	p.coDt = dt
	if cfg.ShadowTau > 0 {
		a := math.Exp(-dt.Seconds() / cfg.ShadowTau.Seconds())
		p.coShadowA = a
		p.coShadowB = math.Sqrt(1-a*a) * cfg.ShadowSigma
	}
	if cfg.WalkShadowSigma > 0 {
		tau := cfg.WalkShadowTau
		if tau <= 0 {
			tau = time.Second
		}
		a := math.Exp(-dt.Seconds() / tau.Seconds())
		p.coWalkA = a
		p.coWalkB = math.Sqrt(1-a*a) * cfg.WalkShadowSigma
	}
	tc := cfg.CoherenceTime
	if tc <= 0 {
		tc = 10 * time.Millisecond
	}
	rho := math.Exp(-dt.Seconds() / tc.Seconds())
	p.coFadeRho = rho
	p.coFadeS = math.Sqrt(1-rho*rho) / math.Sqrt2
}

func newSNRProcess(cfg Environment, rng *parallel.RNG) snrProcess {
	p := snrProcess{cfg: cfg, rng: rng}
	// Start fading tap at steady state.
	p.hRe = rng.NormFloat64() / math.Sqrt2
	p.hIm = rng.NormFloat64() / math.Sqrt2
	if cfg.Vehicular {
		p.pos = -50
		p.dir = 1
	}
	k := cfg.RicianK
	p.coLosAmp = math.Sqrt(k / (1 + k))
	p.coScale = math.Sqrt(1 / (1 + k))
	return p
}

// step advances by dt and returns the channel SNR in dB.
func (p *snrProcess) step(dt time.Duration, moving bool) float64 {
	cfg := &p.cfg
	if dt != p.coDt {
		p.refreshCoeffs(dt)
	}
	// Slow shadowing: AR(1) toward zero with time constant ShadowTau.
	if cfg.ShadowTau > 0 {
		p.shadow = p.coShadowA*p.shadow + p.coShadowB*p.rng.NormFloat64()
	}
	if moving && cfg.WalkShadowSigma > 0 {
		p.walkShadow = p.coWalkA*p.walkShadow + p.coWalkB*p.rng.NormFloat64()
	}
	snr := cfg.BaseSNR + p.shadow + p.walkShadow

	if cfg.Vehicular && moving {
		// Drive-by sweep: free-space-like path loss relative to the
		// closest approach, with the car shuttling past the sender.
		p.pos += p.dir * cfg.PassSpeed * dt.Seconds()
		if p.pos > 50 {
			p.dir = -1
		} else if p.pos < -50 {
			p.dir = 1
		}
		d := math.Hypot(p.pos, cfg.PassDistance)
		snr -= 28 * math.Log10(d/cfg.PassDistance) // ~n=2.8 path loss exponent
	}

	if moving {
		// Fast fading: complex AR(1) tap with the environment's
		// coherence time, optionally with a Rician LOS component.
		p.hRe = p.coFadeRho*p.hRe + p.coFadeS*p.rng.NormFloat64()
		p.hIm = p.coFadeRho*p.hIm + p.coFadeS*p.rng.NormFloat64()
		// Rician fading: a constant LOS phasor plus the scattered tap,
		// added in amplitude so destructive interference can produce deep
		// fades even with a LOS component. Power normalised to mean 1.
		re := p.coLosAmp + p.coScale*p.hRe
		im := p.coScale * p.hIm
		gain := re*re + im*im
		if gain < 1e-6 {
			gain = 1e-6
		}
		snr += 10 * math.Log10(gain)
	} else {
		// Static short-term fades (passers-by, doors): brief dips.
		if p.fadeLeft > 0 {
			p.fadeLeft -= dt
			snr -= p.fadeDepth
		} else if p.rng.Float64() < cfg.StaticFadeRate*dt.Seconds() {
			p.fadeLeft = time.Duration(float64(cfg.StaticFadeLen) * (0.5 + p.rng.Float64()))
			p.fadeDepth = cfg.StaticFadeDepth * (0.5 + p.rng.Float64())
		}
	}
	return snr
}

// Config controls one trace generation run.
type Config struct {
	Env Environment
	// Sched gives ground-truth mobility over time.
	Sched sensors.Schedule
	// Total is the trace length; extended to the schedule end if shorter.
	Total time.Duration
	// SlotDur defaults to trace.DefaultSlot.
	SlotDur time.Duration
	// PacketBytes is the frame size used for the PER ground truth
	// (default 1000, the paper's packet size).
	PacketBytes int
	// Seed makes generation deterministic.
	Seed int64
}

// Generate produces a fate trace: one slot per SlotDur, each slot holding
// the SNR, the mobility ground truth, the per-rate delivery probability,
// and a sampled per-rate fate.
func Generate(cfg Config) *trace.FateTrace {
	tr := new(trace.FateTrace)
	GenerateInto(cfg, tr)
	return tr
}

// GenerateInto regenerates tr in place, reusing its slot buffer when
// capacity allows. A trial loop that recycles one FateTrace per worker
// (see TracePool) generates traces with zero heap allocations; the
// result is identical to Generate with the same Config.
func GenerateInto(cfg Config, tr *trace.FateTrace) {
	slotDur := cfg.SlotDur
	if slotDur <= 0 {
		slotDur = trace.DefaultSlot
	}
	bytes := cfg.PacketBytes
	if bytes <= 0 {
		bytes = 1000
	}
	total := cfg.Total
	if end := cfg.Sched.End(); end > total {
		total = end
	}
	n := int(total / slotDur)
	rng := parallel.NewRNG(cfg.Seed)
	proc := newSNRProcess(cfg.Env, &rng)
	et := phy.ErrorTableFor(bytes)
	extraScale := 1 - cfg.Env.ExtraLossProb

	tr.Env = cfg.Env.Name
	tr.SlotDur = slotDur
	tr.Seed = cfg.Seed
	tr.ExtraLoss = cfg.Env.ExtraLossProb
	if cap(tr.Slots) >= n {
		tr.Slots = tr.Slots[:n]
	} else {
		tr.Slots = make([]trace.Slot, n)
	}
	tr.Prepare()
	var dp [phy.NumRates]float64
	for i := 0; i < n; i++ {
		at := time.Duration(i) * slotDur
		moving := cfg.Sched.MovingAt(at)
		snr := proc.step(slotDur, moving)
		s := &tr.Slots[i]
		s.SNR = snr
		s.Moving = moving
		// The slot fate reflects only the channel (SNR) state, which is
		// coherent across a slot; the rate-independent contention loss
		// is per-packet and applied by the MAC simulator. The ground
		// truth probability includes both.
		et.DeliveryProbs(snr, &dp)
		for r := 0; r < phy.NumRates; r++ {
			s.Prob[r] = dp[r] * extraScale
			s.Delivered[r] = rng.Float64() < dp[r]
		}
	}
	tr.Mode = modeLabel(cfg.Sched, total)
}

// TracePool recycles FateTrace slot buffers across trials. Experiment
// fan-outs that generate one throwaway trace per trial Get/Generate/Put
// through a pool so per-trial garbage stops throttling the worker pool.
// Pooling only recycles memory: trace contents are fully regenerated, so
// results remain bit-identical for any worker count.
type TracePool struct {
	p sync.Pool
}

// Generate returns a trace for cfg, reusing a pooled slot buffer when
// one is available.
func (tp *TracePool) Generate(cfg Config) *trace.FateTrace {
	tr, _ := tp.p.Get().(*trace.FateTrace)
	if tr == nil {
		tr = new(trace.FateTrace)
	}
	GenerateInto(cfg, tr)
	return tr
}

// Put returns a trace obtained from Generate to the pool once the trial
// is done with it.
func (tp *TracePool) Put(tr *trace.FateTrace) {
	if tr != nil {
		tp.p.Put(tr)
	}
}

func modeLabel(s sensors.Schedule, total time.Duration) string {
	anyMoving, anyStatic := false, false
	const probe = 50 * time.Millisecond
	for t := time.Duration(0); t < total; t += probe {
		if s.MovingAt(t) {
			anyMoving = true
		} else {
			anyStatic = true
		}
	}
	switch {
	case anyMoving && anyStatic:
		return "mixed"
	case anyMoving:
		return "mobile"
	default:
		return "static"
	}
}

// GeneratePacketStream produces a per-packet fate trace of back-to-back
// packets at one rate, for the conditional-loss analysis of Figure 3-1.
// The SNR process is sampled at the packet interval, so loss correlation
// directly reflects the channel coherence time. Fates are emitted
// straight into the trace's packed bitset — the form ConditionalLoss
// consumes — with no per-packet bool intermediate; the RNG draw sequence
// is unchanged, so streams are bit-identical to the unpacked
// implementation (asserted by TestGeneratePacketStreamMatchesBoolPath).
func GeneratePacketStream(env Environment, mode sensors.MobilityMode, r phy.Rate, interval, total time.Duration, bytes int, seed int64) *trace.PacketTrace {
	if bytes <= 0 {
		bytes = 1000
	}
	rng := parallel.NewRNG(seed)
	proc := newSNRProcess(env, &rng)
	et := phy.ErrorTableFor(bytes)
	extraScale := 1 - env.ExtraLossProb
	moving := mode.Moving()
	n := int(total / interval)
	pt := trace.NewPacketTrace(r, interval, n)
	for i := 0; i < n; i++ {
		snr := proc.step(interval, moving)
		p := et.DeliveryProb(r, snr) * extraScale
		if rng.Float64() >= p {
			pt.SetLost(i, true)
		}
	}
	return pt
}
