package channel

import (
	"math/rand"
	"time"

	"repro/internal/trace"
)

// GilbertElliott is the classic two-state burst-loss channel, provided
// as a cross-check for the SNR-process generator: the paper's central
// channel observation (Figure 3-1's short-range loss dependence) is a
// property any bursty channel shares, so the rate adaptation results
// should be qualitatively reproducible on this much simpler model too.
//
// The chain alternates between a Good state (low loss) and a Bad state
// (high loss); the mean Bad-state dwell time plays the role of the
// channel coherence time.
type GilbertElliott struct {
	// PGood and PBad are the per-packet loss probabilities in each
	// state.
	PGood, PBad float64
	// MeanGood and MeanBad are the mean dwell times of each state.
	MeanGood, MeanBad time.Duration
}

// DefaultGilbertElliott returns parameters tuned to resemble the walking
// channel at a high bit rate: rare losses in Good, near-certain losses
// in Bad, ~10 ms fade bursts a few times a second.
func DefaultGilbertElliott() GilbertElliott {
	return GilbertElliott{
		PGood:    0.03,
		PBad:     0.9,
		MeanGood: 120 * time.Millisecond,
		MeanBad:  10 * time.Millisecond,
	}
}

// GeneratePacketStream produces a per-packet fate trace from the chain,
// comparable to the SNR-process GeneratePacketStream.
func (g GilbertElliott) GeneratePacketStream(interval, total time.Duration, seed int64) *trace.PacketTrace {
	rng := rand.New(rand.NewSource(seed))
	n := int(total / interval)
	pt := trace.NewPacketTrace(0, interval, n)
	bad := false
	// Per-step transition probabilities from the dwell times.
	pEnterBad := float64(interval) / float64(g.MeanGood)
	pExitBad := float64(interval) / float64(g.MeanBad)
	for i := 0; i < n; i++ {
		if bad {
			if rng.Float64() < pExitBad {
				bad = false
			}
		} else if rng.Float64() < pEnterBad {
			bad = true
		}
		p := g.PGood
		if bad {
			p = g.PBad
		}
		if rng.Float64() < p {
			pt.SetLost(i, true)
		}
	}
	return pt
}

// StationaryLossRate returns the chain's long-run loss probability.
func (g GilbertElliott) StationaryLossRate() float64 {
	good := float64(g.MeanGood)
	bad := float64(g.MeanBad)
	return (g.PGood*good + g.PBad*bad) / (good + bad)
}
