package hintproto

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dot11"
)

func TestValueRoundTrip(t *testing.T) {
	cases := []struct {
		typ HintType
		in  float64
		out float64 // after quantisation
	}{
		{HintMovement, 0, 0},
		{HintMovement, 1, 1},
		{HintMovement, 0.3, 1}, // any non-zero is moving
		{HintHeading, 0, 0},
		{HintHeading, 90, 90},
		{HintHeading, 359, 358.59375}, // 256-step quantisation
		{HintSpeed, 0, 0},
		{HintSpeed, 1.4, 1.5}, // 0.5 m/s steps
		{HintSpeed, 300, 127.5},
		{HintNoise, 42, 42},
		{HintNoise, 999, 255},
	}
	for _, c := range cases {
		b := EncodeValue(c.typ, c.in)
		got := DecodeValue(c.typ, b)
		if math.Abs(got-c.out) > 1e-9 {
			t.Errorf("%v(%v) -> %v, want %v", c.typ, c.in, got, c.out)
		}
	}
}

func TestHeadingQuantisationProperty(t *testing.T) {
	f := func(deg float64) bool {
		if math.IsNaN(deg) || math.IsInf(deg, 0) {
			return true
		}
		deg = math.Mod(deg, 100000)
		got := DecodeValue(HintHeading, EncodeValue(HintHeading, deg))
		want := math.Mod(deg, 360)
		if want < 0 {
			want += 360
		}
		// Quantisation error ≤ half a step (360/256 ≈ 1.4°), modulo wrap.
		d := math.Abs(got - want)
		if d > 180 {
			d = 360 - d
		}
		return d <= 360.0/256/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrailerRoundTrip(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("user payload")}
	hs := []Hint{
		{Type: HintMovement, Value: 1},
		{Type: HintHeading, Value: 90},
		{Type: HintSpeed, Value: 2},
	}
	if err := AppendTrailer(f, hs); err != nil {
		t.Fatal(err)
	}
	if f.Flags&dot11.FlagHintTrailer == 0 {
		t.Error("trailer flag not set")
	}
	got, payload, err := ParseTrailer(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, []byte("user payload")) {
		t.Errorf("payload = %q", payload)
	}
	if len(got) != 3 || got[0].Type != HintMovement || got[1].Type != HintHeading || got[2].Type != HintSpeed {
		t.Errorf("hints = %v", got)
	}
	if got[2].Value != 2 {
		t.Errorf("speed = %v", got[2].Value)
	}
}

func TestTrailerEmptyHints(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("x")}
	if err := AppendTrailer(f, nil); err != nil {
		t.Fatal(err)
	}
	hs, payload, err := ParseTrailer(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 0 || !bytes.Equal(payload, []byte("x")) {
		t.Errorf("hs=%v payload=%q", hs, payload)
	}
}

func TestTrailerSurvivesMarshal(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeData, Src: dot11.AddrFromInt(1), Payload: []byte("data")}
	if err := AppendTrailer(f, []Hint{{Type: HintSpeed, Value: 5}}); err != nil {
		t.Fatal(err)
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := dot11.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	hs, _, err := ParseTrailer(g)
	if err != nil || len(hs) != 1 || hs[0].Value != 5 {
		t.Errorf("hints after wire round trip: %v, %v", hs, err)
	}
}

func TestParseTrailerOnPlainFrame(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("no trailer here")}
	if _, _, err := ParseTrailer(f); !errors.Is(err, ErrNoTrailer) {
		t.Errorf("err = %v, want ErrNoTrailer", err)
	}
}

func TestParseTrailerCorrupt(t *testing.T) {
	// Flag set but the payload has no valid trailer.
	f := &dot11.Frame{Type: dot11.TypeData, Flags: dot11.FlagHintTrailer, Payload: []byte("xx")}
	if _, _, err := ParseTrailer(f); !errors.Is(err, ErrTrailerCorrupt) {
		t.Errorf("short payload: err = %v", err)
	}
	f.Payload = []byte("garbage but long enough")
	if _, _, err := ParseTrailer(f); !errors.Is(err, ErrTrailerCorrupt) {
		t.Errorf("bad magic: err = %v", err)
	}
	// Count byte claiming more pairs than the payload holds.
	f.Payload = []byte{200, 'H', '!'}
	f.Payload = append([]byte{1, 2}, f.Payload...)
	if _, _, err := ParseTrailer(f); !errors.Is(err, ErrTrailerCorrupt) {
		t.Errorf("overlong count: err = %v", err)
	}
}

func TestMovementBit(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeAck}
	if MovementBit(f) {
		t.Error("fresh frame has movement bit set")
	}
	SetMovementBit(f, true)
	if !MovementBit(f) {
		t.Error("bit not set")
	}
	SetMovementBit(f, false)
	if MovementBit(f) {
		t.Error("bit not cleared")
	}
}

func TestHintFrameRoundTrip(t *testing.T) {
	hs := []Hint{{Type: HintMovement, Value: 1}, {Type: HintHeading, Value: 180}}
	f, err := NewHintFrame(dot11.AddrFromInt(1), dot11.AddrFromInt(2), hs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != dot11.TypeHint {
		t.Error("wrong frame type")
	}
	got, err := ParseHintFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Value != 180 {
		t.Errorf("hints = %v", got)
	}
}

func TestParseHintFrameErrors(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeData}
	if _, err := ParseHintFrame(f); err == nil {
		t.Error("non-hint frame accepted")
	}
	bad := &dot11.Frame{Type: dot11.TypeHint, Payload: []byte{5, 1}}
	if _, err := ParseHintFrame(bad); !errors.Is(err, ErrTrailerCorrupt) {
		t.Errorf("truncated hint frame: err = %v", err)
	}
}

func TestExtractAll(t *testing.T) {
	// Mechanism 1: bit only.
	f := &dot11.Frame{Type: dot11.TypeAck}
	SetMovementBit(f, true)
	hs := ExtractAll(f)
	if len(hs) != 1 || hs[0].Type != HintMovement || hs[0].Value != 1 {
		t.Errorf("bit extraction: %v", hs)
	}

	// Mechanism 2: trailer plus bit.
	f2 := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("d")}
	SetMovementBit(f2, true)
	if err := AppendTrailer(f2, []Hint{{Type: HintSpeed, Value: 3}}); err != nil {
		t.Fatal(err)
	}
	hs2 := ExtractAll(f2)
	if len(hs2) != 2 {
		t.Errorf("trailer extraction: %v", hs2)
	}

	// Mechanism 3: standalone hint frame.
	f3, _ := NewHintFrame(dot11.AddrFromInt(1), dot11.Broadcast, []Hint{{Type: HintHeading, Value: 45}})
	hs3 := ExtractAll(f3)
	if len(hs3) != 1 || hs3[0].Type != HintHeading {
		t.Errorf("hint frame extraction: %v", hs3)
	}

	// Legacy frame: nothing to extract, no error.
	legacy := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("old node")}
	if hs := ExtractAll(legacy); len(hs) != 0 {
		t.Errorf("legacy frame produced hints: %v", hs)
	}

	// Corrupt trailer: hints dropped silently, not fatal.
	broken := &dot11.Frame{Type: dot11.TypeData, Flags: dot11.FlagHintTrailer, Payload: []byte("zz")}
	if hs := ExtractAll(broken); len(hs) != 0 {
		t.Errorf("corrupt trailer produced hints: %v", hs)
	}
}

func TestPairEncoding(t *testing.T) {
	h := Hint{Type: HintSpeed, Value: 4.5}
	p := EncodePair(h)
	got := DecodePair(p)
	if got.Type != HintSpeed || got.Value != 4.5 {
		t.Errorf("pair round trip: %v", got)
	}
	var buf [2]byte
	PutPair(buf[:], h)
	if buf != p {
		t.Error("PutPair differs from EncodePair")
	}
	if PairFromUint16(Uint16FromPair(p)) != p {
		t.Error("uint16 conversion not inverse")
	}
}

func TestTooManyHints(t *testing.T) {
	many := make([]Hint, 256)
	f := &dot11.Frame{Type: dot11.TypeData}
	if err := AppendTrailer(f, many); !errors.Is(err, ErrTooManyHints) {
		t.Errorf("err = %v, want ErrTooManyHints", err)
	}
	if _, err := NewHintFrame(dot11.Addr{}, dot11.Addr{}, many); !errors.Is(err, ErrTooManyHints) {
		t.Errorf("err = %v, want ErrTooManyHints", err)
	}
}

func TestHintTypeString(t *testing.T) {
	if HintMovement.String() != "movement" || HintHeading.String() != "heading" ||
		HintSpeed.String() != "speed" || HintNoise.String() != "noise" {
		t.Error("hint type names wrong")
	}
	if HintType(200).String() != "unknown" {
		t.Error("unknown type name")
	}
}
