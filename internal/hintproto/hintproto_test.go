package hintproto

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dot11"
)

func TestValueRoundTrip(t *testing.T) {
	cases := []struct {
		typ HintType
		in  float64
		out float64 // after quantisation
	}{
		{HintMovement, 0, 0},
		{HintMovement, 1, 1},
		{HintMovement, 0.3, 1}, // any non-zero is moving
		{HintHeading, 0, 0},
		{HintHeading, 90, 90},
		{HintHeading, 359, 358.59375}, // 256-step quantisation
		{HintSpeed, 0, 0},
		{HintSpeed, 1.4, 1.5}, // 0.5 m/s steps
		{HintSpeed, 300, 127.5},
		{HintNoise, 42, 42},
		{HintNoise, 999, 255},
	}
	for _, c := range cases {
		b := EncodeValue(c.typ, c.in)
		got := DecodeValue(c.typ, b)
		if math.Abs(got-c.out) > 1e-9 {
			t.Errorf("%v(%v) -> %v, want %v", c.typ, c.in, got, c.out)
		}
	}
}

// TestHeadingEncodeBoundaries pins the wrap behaviour at the top of the
// heading circle: values within half a step of 360° quantise to step 256,
// which must wrap to step 0 in integer space. The pre-fix code converted
// the out-of-range float 256 straight to byte — Go leaves that conversion
// unspecified, so the result was platform-dependent.
func TestHeadingEncodeBoundaries(t *testing.T) {
	cases := []struct {
		in   float64
		want byte
	}{
		{359.3, 0},   // 255.50… rounds to 256 -> wraps to 0
		{359.9, 0},   // even closer to the wrap
		{360, 0},     // exactly one full turn
		{720, 0},     // two turns
		{-360, 0},    // negative full turn
		{-0.1, 0},    // tiny negative: 359.9 after wrap -> step 0
		{-90, 192},   // 270 after wrap
		{359.0, 255}, // 255.28… rounds down: last real step
		{358.6, 255}, // nearest to step 255 centre
		{0.7, 0},     // rounds down to step 0 without wrapping
		{0.71, 1},    // first value rounding up to step 1
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := EncodeValue(HintHeading, c.in); got != c.want {
			t.Errorf("EncodeValue(heading, %v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestHeadingAllStepsRoundTrip proves encode/decode is the identity on
// the full 256-step wire grid.
func TestHeadingAllStepsRoundTrip(t *testing.T) {
	for step := 0; step < 256; step++ {
		deg := DecodeValue(HintHeading, byte(step))
		if got := EncodeValue(HintHeading, deg); got != byte(step) {
			t.Errorf("step %d decodes to %v° but re-encodes to %d", step, deg, got)
		}
	}
}

// TestEncodeValueNaN: quantisation of NaN must not reach Go's
// unspecified float->byte conversion for any hint type.
func TestEncodeValueNaN(t *testing.T) {
	for _, typ := range []HintType{HintMovement, HintHeading, HintSpeed, HintNoise, HintType(99)} {
		if got := EncodeValue(typ, math.NaN()); typ != HintMovement && got != 0 {
			t.Errorf("EncodeValue(%v, NaN) = %d, want 0", typ, got)
		}
	}
}

// TestEncodeDecodeStableOnWire: for every hint type, decoding any wire
// byte and re-encoding it is the identity — the codec is canonical, so
// a relay can decode and re-emit hints without drift.
func TestEncodeDecodeStableOnWire(t *testing.T) {
	for _, typ := range []HintType{HintMovement, HintHeading, HintSpeed, HintNoise, HintType(77)} {
		for b := 0; b < 256; b++ {
			if typ == HintMovement && b > 1 {
				continue // movement collapses all non-zero to 1 by design
			}
			v := DecodeValue(typ, byte(b))
			if got := EncodeValue(typ, v); got != byte(b) {
				t.Errorf("%v: byte %d -> %v -> %d", typ, b, v, got)
			}
		}
	}
}

func TestHeadingQuantisationProperty(t *testing.T) {
	f := func(deg float64) bool {
		if math.IsNaN(deg) || math.IsInf(deg, 0) {
			return true
		}
		deg = math.Mod(deg, 100000)
		got := DecodeValue(HintHeading, EncodeValue(HintHeading, deg))
		want := math.Mod(deg, 360)
		if want < 0 {
			want += 360
		}
		// Quantisation error ≤ half a step (360/256 ≈ 1.4°), modulo wrap.
		d := math.Abs(got - want)
		if d > 180 {
			d = 360 - d
		}
		return d <= 360.0/256/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrailerRoundTrip(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("user payload")}
	hs := []Hint{
		{Type: HintMovement, Value: 1},
		{Type: HintHeading, Value: 90},
		{Type: HintSpeed, Value: 2},
	}
	if err := AppendTrailer(f, hs); err != nil {
		t.Fatal(err)
	}
	if f.Flags&dot11.FlagHintTrailer == 0 {
		t.Error("trailer flag not set")
	}
	got, payload, err := ParseTrailer(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, []byte("user payload")) {
		t.Errorf("payload = %q", payload)
	}
	if len(got) != 3 || got[0].Type != HintMovement || got[1].Type != HintHeading || got[2].Type != HintSpeed {
		t.Errorf("hints = %v", got)
	}
	if got[2].Value != 2 {
		t.Errorf("speed = %v", got[2].Value)
	}
}

func TestTrailerEmptyHints(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("x")}
	if err := AppendTrailer(f, nil); err != nil {
		t.Fatal(err)
	}
	hs, payload, err := ParseTrailer(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 0 || !bytes.Equal(payload, []byte("x")) {
		t.Errorf("hs=%v payload=%q", hs, payload)
	}
}

func TestTrailerSurvivesMarshal(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeData, Src: dot11.AddrFromInt(1), Payload: []byte("data")}
	if err := AppendTrailer(f, []Hint{{Type: HintSpeed, Value: 5}}); err != nil {
		t.Fatal(err)
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := dot11.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	hs, _, err := ParseTrailer(g)
	if err != nil || len(hs) != 1 || hs[0].Value != 5 {
		t.Errorf("hints after wire round trip: %v, %v", hs, err)
	}
}

func TestParseTrailerOnPlainFrame(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("no trailer here")}
	if _, _, err := ParseTrailer(f); !errors.Is(err, ErrNoTrailer) {
		t.Errorf("err = %v, want ErrNoTrailer", err)
	}
}

func TestParseTrailerCorrupt(t *testing.T) {
	// Flag set but the payload has no valid trailer.
	f := &dot11.Frame{Type: dot11.TypeData, Flags: dot11.FlagHintTrailer, Payload: []byte("xx")}
	if _, _, err := ParseTrailer(f); !errors.Is(err, ErrTrailerCorrupt) {
		t.Errorf("short payload: err = %v", err)
	}
	f.Payload = []byte("garbage but long enough")
	if _, _, err := ParseTrailer(f); !errors.Is(err, ErrTrailerCorrupt) {
		t.Errorf("bad magic: err = %v", err)
	}
	// Count byte claiming more pairs than the payload holds.
	f.Payload = []byte{200, 'H', '!'}
	f.Payload = append([]byte{1, 2}, f.Payload...)
	if _, _, err := ParseTrailer(f); !errors.Is(err, ErrTrailerCorrupt) {
		t.Errorf("overlong count: err = %v", err)
	}
}

func TestMovementBit(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeAck}
	if MovementBit(f) {
		t.Error("fresh frame has movement bit set")
	}
	SetMovementBit(f, true)
	if !MovementBit(f) {
		t.Error("bit not set")
	}
	SetMovementBit(f, false)
	if MovementBit(f) {
		t.Error("bit not cleared")
	}
}

func TestHintFrameRoundTrip(t *testing.T) {
	hs := []Hint{{Type: HintMovement, Value: 1}, {Type: HintHeading, Value: 180}}
	f, err := NewHintFrame(dot11.AddrFromInt(1), dot11.AddrFromInt(2), hs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != dot11.TypeHint {
		t.Error("wrong frame type")
	}
	got, err := ParseHintFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Value != 180 {
		t.Errorf("hints = %v", got)
	}
}

func TestParseHintFrameErrors(t *testing.T) {
	f := &dot11.Frame{Type: dot11.TypeData}
	if _, err := ParseHintFrame(f); err == nil {
		t.Error("non-hint frame accepted")
	}
	bad := &dot11.Frame{Type: dot11.TypeHint, Payload: []byte{5, 1}}
	if _, err := ParseHintFrame(bad); !errors.Is(err, ErrTrailerCorrupt) {
		t.Errorf("truncated hint frame: err = %v", err)
	}
}

func TestExtractAll(t *testing.T) {
	// Mechanism 1: bit only.
	f := &dot11.Frame{Type: dot11.TypeAck}
	SetMovementBit(f, true)
	hs := ExtractAll(f)
	if len(hs) != 1 || hs[0].Type != HintMovement || hs[0].Value != 1 {
		t.Errorf("bit extraction: %v", hs)
	}

	// Mechanism 2: trailer plus bit.
	f2 := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("d")}
	SetMovementBit(f2, true)
	if err := AppendTrailer(f2, []Hint{{Type: HintSpeed, Value: 3}}); err != nil {
		t.Fatal(err)
	}
	hs2 := ExtractAll(f2)
	if len(hs2) != 2 {
		t.Errorf("trailer extraction: %v", hs2)
	}

	// Mechanism 3: standalone hint frame.
	f3, _ := NewHintFrame(dot11.AddrFromInt(1), dot11.Broadcast, []Hint{{Type: HintHeading, Value: 45}})
	hs3 := ExtractAll(f3)
	if len(hs3) != 1 || hs3[0].Type != HintHeading {
		t.Errorf("hint frame extraction: %v", hs3)
	}

	// Legacy frame: nothing to extract, no error.
	legacy := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("old node")}
	if hs := ExtractAll(legacy); len(hs) != 0 {
		t.Errorf("legacy frame produced hints: %v", hs)
	}

	// Corrupt trailer: hints dropped silently, not fatal.
	broken := &dot11.Frame{Type: dot11.TypeData, Flags: dot11.FlagHintTrailer, Payload: []byte("zz")}
	if hs := ExtractAll(broken); len(hs) != 0 {
		t.Errorf("corrupt trailer produced hints: %v", hs)
	}
}

// TestAppendAllMatchesExtractAll: the caller-owned-storage variant must
// extract exactly what ExtractAll does, and reuse of the slice must not
// allocate once capacity is established.
func TestAppendAllMatchesExtractAll(t *testing.T) {
	frames := make([]*dot11.Frame, 0, 4)

	bit := &dot11.Frame{Type: dot11.TypeAck}
	SetMovementBit(bit, true)
	frames = append(frames, bit)

	tr := &dot11.Frame{Type: dot11.TypeData, Payload: []byte("d")}
	SetMovementBit(tr, true)
	if err := AppendTrailer(tr, []Hint{{Type: HintSpeed, Value: 3}, {Type: HintHeading, Value: 90}}); err != nil {
		t.Fatal(err)
	}
	frames = append(frames, tr)

	hf, _ := NewHintFrame(dot11.AddrFromInt(1), dot11.Broadcast, []Hint{{Type: HintNoise, Value: 9}})
	frames = append(frames, hf)

	broken := &dot11.Frame{Type: dot11.TypeData, Flags: dot11.FlagHintTrailer, Payload: []byte("zz")}
	frames = append(frames, broken)

	var buf []Hint
	for _, f := range frames {
		want := ExtractAll(f)
		buf = AppendAll(buf[:0], f)
		if len(buf) != len(want) {
			t.Fatalf("AppendAll(%v frame) = %v, ExtractAll = %v", f.Type, buf, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Errorf("hint %d: AppendAll %v != ExtractAll %v", i, buf[i], want[i])
			}
		}
	}

	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range frames {
			buf = AppendAll(buf[:0], f)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendAll with reused storage allocates %.0f times, want 0", allocs)
	}
}

func TestPairEncoding(t *testing.T) {
	h := Hint{Type: HintSpeed, Value: 4.5}
	p := EncodePair(h)
	got := DecodePair(p)
	if got.Type != HintSpeed || got.Value != 4.5 {
		t.Errorf("pair round trip: %v", got)
	}
	var buf [2]byte
	PutPair(buf[:], h)
	if buf != p {
		t.Error("PutPair differs from EncodePair")
	}
	if PairFromUint16(Uint16FromPair(p)) != p {
		t.Error("uint16 conversion not inverse")
	}
}

func TestTooManyHints(t *testing.T) {
	many := make([]Hint, 256)
	f := &dot11.Frame{Type: dot11.TypeData}
	if err := AppendTrailer(f, many); !errors.Is(err, ErrTooManyHints) {
		t.Errorf("err = %v, want ErrTooManyHints", err)
	}
	if _, err := NewHintFrame(dot11.Addr{}, dot11.Addr{}, many); !errors.Is(err, ErrTooManyHints) {
		t.Errorf("err = %v, want ErrTooManyHints", err)
	}
}

func TestHintTypeString(t *testing.T) {
	if HintMovement.String() != "movement" || HintHeading.String() != "heading" ||
		HintSpeed.String() != "speed" || HintNoise.String() != "noise" {
		t.Error("hint type names wrong")
	}
	if HintType(200).String() != "unknown" {
		t.Error("unknown type name")
	}
}
