package hintproto

import (
	"bytes"
	"testing"

	"repro/internal/dot11"
)

// FuzzParseTrailer throws arbitrary payloads at the trailer parser. It
// must never panic; on success the parse must be internally consistent
// (re-encoding the stripped payload plus hints and re-parsing yields the
// same hints and payload — encode∘parse is idempotent), and the
// allocation-free AppendAll walk must agree with it.
func FuzzParseTrailer(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x48, 0x21})            // bare magic, no count
	f.Add([]byte{0, 0x48, 0x21})         // empty trailer, no body
	f.Add([]byte{1, 2, 200, 0x48, 0x21}) // count larger than payload
	f.Add([]byte{3, 1, 1, 0x48, 0x21})   // magic-colliding pair bytes
	f.Add([]byte("payload.H!"))          // magic collision inside text
	f.Add([]byte{byte(HintHeading), 255, 1, 0x48, 0x21})
	f.Add([]byte{byte(HintMovement), 1, byte(HintSpeed), 3, 2, 0x48, 0x21})
	f.Add([]byte{0x48, 0x21, 0x48}) // truncated/rotated magic
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr := &dot11.Frame{Type: dot11.TypeData, Flags: dot11.FlagHintTrailer, Payload: payload}
		hs, rest, err := ParseTrailer(fr)
		got := AppendAll(nil, fr)
		if err != nil {
			// A corrupt trailer must be dropped, not surfaced, by the
			// advisory extraction path.
			if len(got) != 0 {
				t.Fatalf("ParseTrailer rejects (%v) but AppendAll extracted %v", err, got)
			}
			return
		}
		if len(got) != len(hs) {
			t.Fatalf("AppendAll extracted %d hints, ParseTrailer %d", len(got), len(hs))
		}
		for i := range hs {
			if got[i] != hs[i] {
				t.Fatalf("hint %d: AppendAll %v != ParseTrailer %v", i, got[i], hs[i])
			}
		}
		if len(rest)+trailerFixed+2*len(hs) != len(payload) {
			t.Fatalf("sizes inconsistent: rest %d + trailer(%d hints) != payload %d", len(rest), len(hs), len(payload))
		}
		// Re-encode the parse result and re-parse: hints and payload
		// must be stable. (Byte-exact reproduction of the input is too
		// strong: e.g. a movement hint with wire byte 5 decodes to 1 and
		// canonically re-encodes to 1.)
		if len(payload) > dot11.MaxPayload {
			// Parseable but not re-encodable: AppendTrailer enforces the
			// wire limit, ParseTrailer accepts any in-memory frame.
			return
		}
		re := &dot11.Frame{Type: dot11.TypeData, Payload: rest}
		if err := AppendTrailer(re, hs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		hs2, rest2, err2 := ParseTrailer(re)
		if err2 != nil {
			t.Fatalf("re-parse failed: %v", err2)
		}
		if !bytes.Equal(rest2, rest) {
			t.Fatalf("payload drifted: %x -> %x", rest, rest2)
		}
		if len(hs2) != len(hs) {
			t.Fatalf("hint count drifted: %d -> %d", len(hs), len(hs2))
		}
		for i := range hs {
			if hs2[i] != hs[i] {
				t.Fatalf("hint %d drifted: %v -> %v", i, hs[i], hs2[i])
			}
		}
	})
}

// FuzzParseHintFrame throws arbitrary payloads at the standalone hint
// frame parser: no panics, and successful parses re-encode to the exact
// input payload.
func FuzzParseHintFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{5, 1}) // count overruns payload
	f.Add([]byte{1, byte(HintMovement)})
	f.Add([]byte{1, byte(HintMovement), 1})
	f.Add([]byte{2, byte(HintHeading), 255, byte(HintSpeed), 7})
	f.Add([]byte{255, 0x48, 0x21})
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr := &dot11.Frame{Type: dot11.TypeHint, Payload: payload}
		hs, err := ParseHintFrame(fr)
		got := AppendAll(nil, fr)
		if err != nil {
			if len(got) != 0 {
				t.Fatalf("ParseHintFrame rejects (%v) but AppendAll extracted %v", err, got)
			}
			return
		}
		if len(got) != len(hs) {
			t.Fatalf("AppendAll extracted %d hints, ParseHintFrame %d", len(got), len(hs))
		}
		re, err := NewHintFrame(fr.Src, fr.Dst, hs)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		hs2, err2 := ParseHintFrame(re)
		if err2 != nil {
			t.Fatalf("re-parse failed: %v", err2)
		}
		if len(hs2) != len(hs) {
			t.Fatalf("hint count drifted: %d -> %d", len(hs), len(hs2))
		}
		for i := range hs {
			if hs2[i] != hs[i] {
				t.Fatalf("hint %d drifted: %v -> %v", i, hs[i], hs2[i])
			}
		}
	})
}
