package hintproto_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/hintproto"
)

// TestHintProtocolOverUDP exercises the full stack over real sockets:
// a client marshals data frames carrying hints (header bit + trailer),
// a receiver unmarshals them, ingests the hints into a bus, and ACKs
// with its own movement bit — the cmd/hintnode data path as a test.
func TestHintProtocolOverUDP(t *testing.T) {
	ap, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()

	bus := core.NewBus()
	clientAddr := dot11.AddrFromInt(2)
	apAddr := dot11.AddrFromInt(1)

	// AP loop: read frames, ingest hints, ACK data.
	done := make(chan int, 1)
	go func() {
		buf := make([]byte, 4096)
		ingested := 0
		for {
			ap.SetReadDeadline(time.Now().Add(2 * time.Second))
			n, from, err := ap.ReadFrom(buf)
			if err != nil {
				done <- ingested
				return
			}
			f, err := dot11.Unmarshal(buf[:n])
			if err != nil {
				continue
			}
			ingested += bus.IngestFrame(f, time.Duration(ingested)*time.Millisecond)
			if f.Type == dot11.TypeData {
				ack := dot11.Ack(f, apAddr)
				hintproto.SetMovementBit(ack, false)
				if b, err := ack.Marshal(); err == nil {
					ap.WriteTo(b, from)
				}
			}
			if ingested >= 20 {
				done <- ingested
				return
			}
		}
	}()

	conn, err := net.Dial("udp", ap.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	acks := make(chan *dot11.Frame, 32)
	go func() {
		buf := make([]byte, 4096)
		for {
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			n, err := conn.Read(buf)
			if err != nil {
				close(acks)
				return
			}
			if f, err := dot11.Unmarshal(buf[:n]); err == nil {
				acks <- f
			}
		}
	}()

	// Send 10 data frames, each carrying the movement bit plus a
	// (movement, speed) trailer.
	for seq := uint16(0); seq < 10; seq++ {
		f := &dot11.Frame{Type: dot11.TypeData, Seq: seq, Src: clientAddr, Dst: apAddr,
			Payload: []byte("integration payload")}
		hintproto.SetMovementBit(f, true)
		if err := hintproto.AppendTrailer(f, []hintproto.Hint{
			{Type: hintproto.HintMovement, Value: 1},
			{Type: hintproto.HintSpeed, Value: 1.5},
		}); err != nil {
			t.Fatal(err)
		}
		b, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(b); err != nil {
			t.Fatal(err)
		}
	}

	select {
	case n := <-done:
		// 10 frames × (bit + 2 trailer hints) = 30 published hints; the
		// AP stops at ≥ 20. UDP may drop locally, so require most.
		if n < 20 {
			t.Errorf("AP ingested only %d hints", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AP never ingested the hints")
	}

	// The bus must now report the client as moving with a speed hint.
	moving, known := bus.MovingRemote(clientAddr)
	if !known || !moving {
		t.Error("AP bus missing the client's movement hint")
	}
	src := core.Source{Remote: true, Addr: clientAddr}
	if ev, ok := bus.Latest(hintproto.HintSpeed, src); !ok || ev.Hint.Value != 1.5 {
		t.Errorf("speed hint = %+v ok=%v", ev, ok)
	}

	// The client received ACKs carrying the AP's (clear) movement bit.
	gotAck := false
	timeout := time.After(2 * time.Second)
	for !gotAck {
		select {
		case f, ok := <-acks:
			if !ok {
				timeout = time.After(0)
				continue
			}
			if f.Type == dot11.TypeAck {
				gotAck = true
				if hintproto.MovementBit(f) {
					t.Error("static AP's ACK claims movement")
				}
			}
		case <-timeout:
			t.Fatal("no ACK received")
		}
	}
}
