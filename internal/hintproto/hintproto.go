// Package hintproto implements the Hint Protocol of §2.3: the wire
// encodings that let a node share its sensor hints with neighbours and
// access points, so that a sender adapting its strategy can learn the
// receiver's mobility state.
//
// Three mechanisms are provided, mirroring the paper:
//
//  1. A binary movement hint stuffed into an unused header bit of any
//     frame (ACKs, probe requests, data) — zero overhead, fully
//     compatible with legacy nodes.
//  2. A generalised (hintType, hintValue) two-byte pair, carried in a
//     trailer piggy-backed on data frames; multiple pairs may be stacked.
//  3. A standalone hint frame for nodes with no traffic to piggy-back on,
//     recognised only by hint-protocol peers.
//
// Legacy (hint-oblivious) receivers ignore the header bit and never see
// TypeHint frames, so hint-aware and legacy nodes coexist.
package hintproto

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/dot11"
)

// HintType identifies the kind of hint carried in a (type, value) pair.
type HintType byte

// Hint types used by the protocols in this repository. The space is
// open-ended by design: the paper argues for a broad class of sensor
// hints.
const (
	// HintMovement is the boolean movement hint (value 0 or 1).
	HintMovement HintType = iota + 1
	// HintHeading is a heading in degrees, quantised to 256 steps of
	// 360/256 ≈ 1.4°.
	HintHeading
	// HintSpeed is a speed in m/s, quantised to 0.5 m/s steps, capped at
	// 127.5 m/s.
	HintSpeed
	// HintNoise is a microphone ambient-variation level 0–255 (§5.6).
	HintNoise
)

// String names the hint type.
func (t HintType) String() string {
	switch t {
	case HintMovement:
		return "movement"
	case HintHeading:
		return "heading"
	case HintSpeed:
		return "speed"
	case HintNoise:
		return "noise"
	}
	return "unknown"
}

// Hint is one decoded hint: a type plus its natural-unit value.
type Hint struct {
	Type  HintType
	Value float64
}

// EncodeValue quantises a natural-unit value into the one-byte wire
// value for the hint type.
func EncodeValue(t HintType, v float64) byte {
	switch t {
	case HintMovement:
		if v != 0 {
			return 1
		}
		return 0
	case HintHeading:
		d := math.Mod(v, 360)
		if math.IsNaN(d) { // NaN input, or Mod of ±Inf
			return 0
		}
		if d < 0 {
			d += 360
		}
		// Quantise in integer space and mask before the byte conversion:
		// headings within half a step of 360° round to step 256, which
		// must wrap to step 0. Converting the out-of-range float straight
		// to byte would hit Go's unspecified out-of-range conversion.
		return byte(int(math.Round(d/360*256)) & 0xff)
	case HintSpeed:
		steps := math.Round(v * 2)
		if !(steps > 0) { // negative, zero, or NaN
			return 0
		}
		if steps > 255 {
			steps = 255
		}
		return byte(steps)
	default:
		x := math.Round(v)
		if !(x > 0) { // negative, zero, or NaN
			return 0
		}
		if x > 255 {
			x = 255
		}
		return byte(x)
	}
}

// DecodeValue converts a wire byte back to natural units for the hint
// type.
func DecodeValue(t HintType, b byte) float64 {
	switch t {
	case HintMovement:
		if b != 0 {
			return 1
		}
		return 0
	case HintHeading:
		return float64(b) * 360 / 256
	case HintSpeed:
		return float64(b) / 2
	default:
		return float64(b)
	}
}

// Trailer wire format, anchored at the end of the payload so it parses
// deterministically: payload ... | count × (type, value) pairs | count(1)
// | magic(2). The magic lets a hint-aware receiver detect the trailer; a
// legacy receiver treats the bytes as payload padding.
var trailerMagic = [2]byte{0x48, 0x21} // "H!"

const trailerFixed = 3

// Trailer encoding errors.
var (
	ErrNoTrailer      = errors.New("hintproto: frame has no hint trailer")
	ErrTrailerCorrupt = errors.New("hintproto: hint trailer corrupt")
	ErrTooManyHints   = errors.New("hintproto: more hints than a trailer can carry")
)

// AppendTrailer appends an encoded hint trailer to a data frame's payload
// and sets FlagHintTrailer. Hints are written in the order given.
func AppendTrailer(f *dot11.Frame, hs []Hint) error {
	if len(hs) > 255 {
		return ErrTooManyHints
	}
	t := make([]byte, 0, trailerFixed+2*len(hs))
	for _, h := range hs {
		t = append(t, byte(h.Type), EncodeValue(h.Type, h.Value))
	}
	t = append(t, byte(len(hs)), trailerMagic[0], trailerMagic[1])
	if len(f.Payload)+len(t) > dot11.MaxPayload {
		return dot11.ErrPayloadTooLarge
	}
	f.Payload = append(append([]byte(nil), f.Payload...), t...)
	f.Flags |= dot11.FlagHintTrailer
	return nil
}

// ParseTrailer extracts the hint trailer from a frame carrying one,
// returning the hints and the original payload with the trailer stripped.
func ParseTrailer(f *dot11.Frame) ([]Hint, []byte, error) {
	if f.Flags&dot11.FlagHintTrailer == 0 {
		return nil, f.Payload, ErrNoTrailer
	}
	p := f.Payload
	if len(p) < trailerFixed {
		return nil, p, ErrTrailerCorrupt
	}
	if p[len(p)-2] != trailerMagic[0] || p[len(p)-1] != trailerMagic[1] {
		return nil, p, ErrTrailerCorrupt
	}
	n := int(p[len(p)-3])
	start := len(p) - trailerFixed - 2*n
	if start < 0 {
		return nil, p, ErrTrailerCorrupt
	}
	hints := make([]Hint, 0, n)
	for i := 0; i < n; i++ {
		ht := HintType(p[start+2*i])
		hv := p[start+2*i+1]
		hints = append(hints, Hint{Type: ht, Value: DecodeValue(ht, hv)})
	}
	return hints, p[:start], nil
}

// SetMovementBit sets or clears the zero-overhead movement bit on any
// frame (mechanism 1). Works on ACKs and probe requests exactly as §2.3
// describes.
func SetMovementBit(f *dot11.Frame, moving bool) {
	if moving {
		f.Flags |= dot11.FlagMovement
	} else {
		f.Flags &^= dot11.FlagMovement
	}
}

// MovementBit reads the zero-overhead movement bit from a frame.
func MovementBit(f *dot11.Frame) bool {
	return f.Flags&dot11.FlagMovement != 0
}

// NewHintFrame builds a standalone hint frame (mechanism 3) carrying the
// given hints from src to dst. The payload is the bare TLV list: a
// one-byte count followed by count (type, value) pairs, the same pairs
// the trailer carries (the trailer instead writes its count, then the
// magic, after the pairs — see ParseTrailer).
func NewHintFrame(src, dst dot11.Addr, hs []Hint) (*dot11.Frame, error) {
	if len(hs) > 255 {
		return nil, ErrTooManyHints
	}
	payload := make([]byte, 1, 1+2*len(hs))
	payload[0] = byte(len(hs))
	for _, h := range hs {
		payload = append(payload, byte(h.Type), EncodeValue(h.Type, h.Value))
	}
	return &dot11.Frame{Type: dot11.TypeHint, Src: src, Dst: dst, Payload: payload}, nil
}

// ParseHintFrame decodes a standalone hint frame's payload.
func ParseHintFrame(f *dot11.Frame) ([]Hint, error) {
	if f.Type != dot11.TypeHint {
		return nil, ErrNoTrailer
	}
	p := f.Payload
	if len(p) < 1 {
		return nil, ErrTrailerCorrupt
	}
	n := int(p[0])
	if len(p) != 1+2*n {
		return nil, ErrTrailerCorrupt
	}
	hints := make([]Hint, 0, n)
	for i := 0; i < n; i++ {
		ht := HintType(p[1+2*i])
		hints = append(hints, Hint{Type: ht, Value: DecodeValue(ht, p[2+2*i])})
	}
	return hints, nil
}

// ExtractAll gathers every hint a frame carries through any mechanism:
// the movement bit, a trailer, or a standalone hint frame body. It never
// fails: frames without hints yield an empty slice, and corrupt trailers
// are skipped (a hint is advisory; a broken one is dropped, not an
// error). The uint16 pair form of §2.3 — a single (hintType, hintVal)
// field — is representable as a one-element trailer.
func ExtractAll(f *dot11.Frame) []Hint {
	return AppendAll(nil, f)
}

// AppendAll is ExtractAll with caller-owned storage: it appends the
// frame's hints to dst and returns the extended slice. A serving loop
// that passes the same slice back (truncated to zero length) extracts
// hints with no per-frame allocation once the slice has grown to the
// largest hint count seen — the buffer-reuse discipline of the serve
// hot path (see internal/hintserve).
func AppendAll(dst []Hint, f *dot11.Frame) []Hint {
	// Movement bit is meaningful on every frame type; report it only
	// when set, since a clear bit on a legacy frame is indistinguishable
	// from "no hint". Hint-aware peers that want explicit "not moving"
	// use the trailer.
	if MovementBit(f) {
		dst = append(dst, Hint{Type: HintMovement, Value: 1})
	}
	if f.Type == dot11.TypeHint {
		return appendHintFrame(dst, f.Payload)
	}
	if f.Flags&dot11.FlagHintTrailer != 0 {
		dst = appendTrailer(dst, f.Payload)
	}
	return dst
}

// appendTrailer appends the hints of a valid trailer in p to dst; a
// corrupt trailer appends nothing. Allocation-free within dst's
// capacity, unlike ParseTrailer's fresh slice.
func appendTrailer(dst []Hint, p []byte) []Hint {
	if len(p) < trailerFixed || p[len(p)-2] != trailerMagic[0] || p[len(p)-1] != trailerMagic[1] {
		return dst
	}
	n := int(p[len(p)-3])
	start := len(p) - trailerFixed - 2*n
	if start < 0 {
		return dst
	}
	for i := 0; i < n; i++ {
		t := HintType(p[start+2*i])
		dst = append(dst, Hint{Type: t, Value: DecodeValue(t, p[start+2*i+1])})
	}
	return dst
}

// appendHintFrame appends the hints of a valid standalone hint-frame
// payload to dst; a corrupt payload appends nothing.
func appendHintFrame(dst []Hint, p []byte) []Hint {
	if len(p) < 1 {
		return dst
	}
	n := int(p[0])
	if len(p) != 1+2*n {
		return dst
	}
	for i := 0; i < n; i++ {
		t := HintType(p[1+2*i])
		dst = append(dst, Hint{Type: t, Value: DecodeValue(t, p[2+2*i])})
	}
	return dst
}

// pairEncoding provides the compact two-byte (hintType, hintVal) field of
// §2.3 for protocols that extend the frame format directly.

// EncodePair packs one hint into the two-byte field.
func EncodePair(h Hint) [2]byte {
	return [2]byte{byte(h.Type), EncodeValue(h.Type, h.Value)}
}

// DecodePair unpacks the two-byte field.
func DecodePair(b [2]byte) Hint {
	t := HintType(b[0])
	return Hint{Type: t, Value: DecodeValue(t, b[1])}
}

// PutPair writes the two-byte field into buf, which must have length ≥ 2.
func PutPair(buf []byte, h Hint) {
	p := EncodePair(h)
	buf[0], buf[1] = p[0], p[1]
}

// PairFromUint16 and Uint16FromPair convert between the two-byte field
// and a host uint16, for stacks that treat the field as an integer.

// Uint16FromPair returns the big-endian integer form of the pair.
func Uint16FromPair(p [2]byte) uint16 { return binary.BigEndian.Uint16(p[:]) }

// PairFromUint16 returns the pair form of the big-endian integer.
func PairFromUint16(v uint16) [2]byte {
	var p [2]byte
	binary.BigEndian.PutUint16(p[:], v)
	return p
}
