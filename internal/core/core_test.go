package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/hintproto"
)

func TestSubscribePublish(t *testing.T) {
	b := NewBus()
	var got []Event
	cancel := b.Subscribe(hintproto.HintMovement, func(ev Event) { got = append(got, ev) })
	b.PublishLocal(hintproto.HintMovement, 1, time.Second)
	b.PublishLocal(hintproto.HintSpeed, 3, time.Second) // different type: not delivered
	if len(got) != 1 || got[0].Hint.Value != 1 {
		t.Fatalf("got %v", got)
	}
	cancel()
	b.PublishLocal(hintproto.HintMovement, 0, 2*time.Second)
	if len(got) != 1 {
		t.Error("event delivered after unsubscribe")
	}
}

func TestSubscribeAll(t *testing.T) {
	b := NewBus()
	n := 0
	cancel := b.SubscribeAll(func(Event) { n++ })
	b.PublishLocal(hintproto.HintMovement, 1, 0)
	b.PublishLocal(hintproto.HintSpeed, 2, 0)
	if n != 2 {
		t.Errorf("SubscribeAll saw %d events, want 2", n)
	}
	cancel()
	b.PublishLocal(hintproto.HintHeading, 3, 0)
	if n != 2 {
		t.Error("event after cancel")
	}
}

func TestLatest(t *testing.T) {
	b := NewBus()
	if _, ok := b.Latest(hintproto.HintMovement, Local); ok {
		t.Error("fresh bus should have no latest")
	}
	b.PublishLocal(hintproto.HintMovement, 1, 5*time.Second)
	b.PublishLocal(hintproto.HintMovement, 0, 9*time.Second)
	ev, ok := b.Latest(hintproto.HintMovement, Local)
	if !ok || ev.Hint.Value != 0 || ev.At != 9*time.Second {
		t.Errorf("latest = %+v", ev)
	}
}

func TestLatestFresh(t *testing.T) {
	b := NewBus()
	b.PublishLocal(hintproto.HintMovement, 1, 5*time.Second)
	if _, ok := b.LatestFresh(hintproto.HintMovement, Local, 5500*time.Millisecond, time.Second); !ok {
		t.Error("hint 0.5 s old rejected with 1 s budget")
	}
	if _, ok := b.LatestFresh(hintproto.HintMovement, Local, 7*time.Second, time.Second); ok {
		t.Error("hint 2 s old accepted with 1 s budget")
	}
}

func TestIngestFrame(t *testing.T) {
	b := NewBus()
	src := dot11.AddrFromInt(42)
	f := &dot11.Frame{Type: dot11.TypeData, Src: src, Payload: []byte("d")}
	hintproto.SetMovementBit(f, true)
	if err := hintproto.AppendTrailer(f, []hintproto.Hint{{Type: hintproto.HintSpeed, Value: 2.5}}); err != nil {
		t.Fatal(err)
	}
	n := b.IngestFrame(f, 3*time.Second)
	if n != 2 {
		t.Fatalf("ingested %d hints, want 2", n)
	}
	moving, known := b.MovingRemote(src)
	if !known || !moving {
		t.Error("remote movement hint not recorded")
	}
	ev, ok := b.Latest(hintproto.HintSpeed, Source{Remote: true, Addr: src})
	if !ok || ev.Hint.Value != 2.5 {
		t.Errorf("remote speed = %+v ok=%v", ev, ok)
	}
	// Local state must be untouched by remote hints.
	if b.MovingLocal() {
		t.Error("remote hint leaked into local state")
	}
}

func TestMovingLocal(t *testing.T) {
	b := NewBus()
	if b.MovingLocal() {
		t.Error("fresh bus reports moving")
	}
	b.PublishLocal(hintproto.HintMovement, 1, 0)
	if !b.MovingLocal() {
		t.Error("local movement not reported")
	}
	b.PublishLocal(hintproto.HintMovement, 0, time.Second)
	if b.MovingLocal() {
		t.Error("stale movement reported")
	}
}

func TestMovingRemoteUnknown(t *testing.T) {
	b := NewBus()
	if moving, known := b.MovingRemote(dot11.AddrFromInt(1)); moving || known {
		t.Error("unknown remote should be (false, false)")
	}
}

func TestSourcesAreDistinct(t *testing.T) {
	b := NewBus()
	a1, a2 := dot11.AddrFromInt(1), dot11.AddrFromInt(2)
	b.Publish(Event{Hint: hintproto.Hint{Type: hintproto.HintMovement, Value: 1}, Source: Source{Remote: true, Addr: a1}})
	if moving, known := b.MovingRemote(a2); moving || known {
		t.Error("hint from a1 visible under a2")
	}
}

func TestConcurrentPublish(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	count := 0
	b.Subscribe(hintproto.HintMovement, func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.PublishLocal(hintproto.HintMovement, float64(j%2), time.Duration(j))
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != 800 {
		t.Errorf("delivered %d events, want 800", count)
	}
}

func TestZeroValueBusUsable(t *testing.T) {
	var b Bus
	b.PublishLocal(hintproto.HintMovement, 1, 0)
	if !b.MovingLocal() {
		t.Error("zero-value bus not usable")
	}
}
