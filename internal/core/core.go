// Package core implements the hint-aware wireless architecture of
// Figure 2-1: a hint bus through which sensor-derived hints flow into
// every layer of the wireless networking stack.
//
// Hints arrive from two directions. Local hints are published by the
// device's own sensor pipelines (e.g. the §2.2.1 movement detector).
// Remote hints arrive inside link-layer frames via the Hint Protocol and
// are published with the originating node's address as the source.
// Protocols at any layer subscribe to the hint types they care about, or
// poll the most recent value; both interfaces appear in the paper ("when
// queried, the movement hint service returns the most recently calculated
// hint value").
package core

import (
	"sync"
	"time"

	"repro/internal/dot11"
	"repro/internal/hintproto"
)

// Source identifies where a hint came from: the local device or a remote
// node's MAC address.
type Source struct {
	// Remote is true for hints received over the air.
	Remote bool
	// Addr is the originating node for remote hints.
	Addr dot11.Addr
}

// Local is the source of locally generated hints.
var Local = Source{}

// Event is one hint delivery: the hint, its source, and when it was
// produced (simulation or wall-clock time, at the publisher's choice —
// the bus only compares these values against each other).
type Event struct {
	Hint   hintproto.Hint
	Source Source
	At     time.Duration
}

// Subscriber receives hint events. Callbacks run synchronously on the
// publishing goroutine; subscribers needing isolation should hand off to
// their own goroutine.
type Subscriber func(Event)

// Bus is the hint distribution fabric. The zero value is ready to use.
// All methods are safe for concurrent use.
type Bus struct {
	mu     sync.RWMutex
	nextID int
	subs   map[hintproto.HintType]map[int]Subscriber
	all    map[int]Subscriber
	latest map[latestKey]Event
}

type latestKey struct {
	typ hintproto.HintType
	src Source
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

func (b *Bus) init() {
	if b.subs == nil {
		b.subs = make(map[hintproto.HintType]map[int]Subscriber)
	}
	if b.all == nil {
		b.all = make(map[int]Subscriber)
	}
	if b.latest == nil {
		b.latest = make(map[latestKey]Event)
	}
}

// Subscribe registers fn for one hint type and returns an unsubscribe
// function.
func (b *Bus) Subscribe(t hintproto.HintType, fn Subscriber) (cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.init()
	id := b.nextID
	b.nextID++
	m := b.subs[t]
	if m == nil {
		m = make(map[int]Subscriber)
		b.subs[t] = m
	}
	m[id] = fn
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.subs[t], id)
	}
}

// SubscribeAll registers fn for every hint type.
func (b *Bus) SubscribeAll(fn Subscriber) (cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.init()
	id := b.nextID
	b.nextID++
	b.all[id] = fn
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.all, id)
	}
}

// Publish delivers a hint event to subscribers and records it as the
// latest value for its (type, source).
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	b.init()
	b.latest[latestKey{ev.Hint.Type, ev.Source}] = ev
	var fns []Subscriber
	for _, fn := range b.subs[ev.Hint.Type] {
		fns = append(fns, fn)
	}
	for _, fn := range b.all {
		fns = append(fns, fn)
	}
	b.mu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// PublishLocal publishes a locally generated hint.
func (b *Bus) PublishLocal(t hintproto.HintType, value float64, at time.Duration) {
	b.Publish(Event{Hint: hintproto.Hint{Type: t, Value: value}, Source: Local, At: at})
}

// IngestFrame extracts every hint a received frame carries (header bit,
// trailer, or standalone hint frame) and publishes them with the frame's
// source address. It returns the number of hints published. This is the
// coupling point between the Hint Protocol and the stack.
func (b *Bus) IngestFrame(f *dot11.Frame, at time.Duration) int {
	hs := hintproto.ExtractAll(f)
	src := Source{Remote: true, Addr: f.Src}
	for _, h := range hs {
		b.Publish(Event{Hint: h, Source: src, At: at})
	}
	return len(hs)
}

// Latest returns the most recent event for a (type, source) and whether
// one exists.
func (b *Bus) Latest(t hintproto.HintType, src Source) (Event, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	ev, ok := b.latest[latestKey{t, src}]
	return ev, ok
}

// LatestFresh returns the most recent event only if it is no older than
// maxAge relative to now; stale hints are worse than no hints, since a
// protocol could hold a mobility-tuned strategy long after the device
// stopped.
func (b *Bus) LatestFresh(t hintproto.HintType, src Source, now, maxAge time.Duration) (Event, bool) {
	ev, ok := b.Latest(t, src)
	if !ok || now-ev.At > maxAge {
		return Event{}, false
	}
	return ev, true
}

// MovingLocal is a convenience accessor for the local movement hint: it
// returns false when no hint has been published.
func (b *Bus) MovingLocal() bool {
	ev, ok := b.Latest(hintproto.HintMovement, Local)
	return ok && ev.Hint.Value != 0
}

// MovingRemote reports the last movement hint received from addr, and
// whether any hint from that node is known.
func (b *Bus) MovingRemote(addr dot11.Addr) (moving, known bool) {
	ev, ok := b.Latest(hintproto.HintMovement, Source{Remote: true, Addr: addr})
	return ok && ev.Hint.Value != 0, ok
}
