package probing

import (
	"math/rand"
	"time"

	"repro/internal/trace"
)

// RunResult is the timeline of one scheduler-driven probing run.
type RunResult struct {
	// Samples holds the estimate and ground truth after each probe.
	Samples []ErrorSample
	// Probes is the number of probes sent — the bandwidth cost the
	// hint-aware scheduler saves.
	Probes int
}

// MeanError returns the average estimate error over the run, considering
// only samples taken after the estimation window first filled.
func (r RunResult) MeanError() float64 { return MeanError(r.Samples) }

// RunScheduler drives a probe scheduler over a fate trace: probes are
// sent when the scheduler dictates, each outcome drawn from the slot's
// ground-truth delivery probability, and the sliding-window estimate is
// recorded after every probe. This is the simulation behind Figure 4-6.
func RunScheduler(tr *trace.FateTrace, sched Scheduler, windowProbes int, seed int64) RunResult {
	rng := rand.New(rand.NewSource(seed))
	est := &Estimator{WindowProbes: windowProbes}
	var res RunResult
	for now := time.Duration(0); now < tr.Duration(); now = sched.Next(now) {
		ok := rng.Float64() < tr.At(now).Prob[ProbeRate]
		est.Add(ok)
		res.Probes++
		res.Samples = append(res.Samples, ErrorSample{
			At:       now,
			Observed: est.Estimate(),
			Actual:   tr.WindowProb(now, ActualWindow, ProbeRate),
		})
	}
	return res
}

// MovementHintFn adapts a trace's ground-truth mobility into the hint
// signal a HintScheduler consumes, with the given detection latency
// (§2.2.1 detects within 100 ms; hint-protocol delivery adds at most a
// probe interval).
func MovementHintFn(tr *trace.FateTrace, latency time.Duration) func(time.Duration) bool {
	return func(now time.Duration) bool {
		return tr.MovingAt(now - latency)
	}
}
