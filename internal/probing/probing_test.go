package probing

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/phy"
	"repro/internal/trace"
)

// constTrace has a constant delivery probability at the probe rate.
func constTrace(n int, p float64) *trace.FateTrace {
	tr := &trace.FateTrace{Env: "unit", Mode: "static", SlotDur: trace.DefaultSlot, Slots: make([]trace.Slot, n)}
	for i := range tr.Slots {
		for r := 0; r < phy.NumRates; r++ {
			tr.Slots[i].Prob[r] = p
		}
	}
	return tr
}

// stepTrace switches probability from p1 to p2 halfway through.
func stepTrace(n int, p1, p2 float64) *trace.FateTrace {
	tr := constTrace(n, p1)
	for i := n / 2; i < n; i++ {
		for r := 0; r < phy.NumRates; r++ {
			tr.Slots[i].Prob[r] = p2
		}
	}
	return tr
}

func TestEstimatorWindow(t *testing.T) {
	e := NewEstimator()
	for i := 0; i < 9; i++ {
		e.Add(true)
		if e.Ready() {
			t.Fatalf("ready after %d probes", i+1)
		}
	}
	e.Add(true)
	if !e.Ready() || e.Estimate() != 1 {
		t.Errorf("estimate = %v ready = %v", e.Estimate(), e.Ready())
	}
	// Slide: 5 failures drop the estimate to 0.5.
	for i := 0; i < 5; i++ {
		e.Add(false)
	}
	if e.Estimate() != 0.5 {
		t.Errorf("estimate = %v, want 0.5", e.Estimate())
	}
	// Full window of failures → 0.
	for i := 0; i < 5; i++ {
		e.Add(false)
	}
	if e.Estimate() != 0 {
		t.Errorf("estimate = %v, want 0", e.Estimate())
	}
}

func TestEstimatorPartialWindow(t *testing.T) {
	e := NewEstimator()
	if e.Estimate() != 0 {
		t.Error("empty estimator should report 0")
	}
	e.Add(true)
	e.Add(false)
	if e.Estimate() != 0.5 {
		t.Errorf("partial estimate = %v, want 0.5", e.Estimate())
	}
}

func TestEstimatorReset(t *testing.T) {
	e := NewEstimator()
	for i := 0; i < 15; i++ {
		e.Add(true)
	}
	e.Reset()
	if e.Ready() || e.Estimate() != 0 {
		t.Error("Reset did not clear the window")
	}
}

func TestEstimatorBoundsProperty(t *testing.T) {
	f := func(outcomes []bool) bool {
		e := NewEstimator()
		for _, ok := range outcomes {
			e.Add(ok)
			if v := e.Estimate(); v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollectStreamCadenceAndBias(t *testing.T) {
	tr := constTrace(2000, 0.7) // 10 s
	s := CollectStream(tr, 200, 1)
	if len(s.Probes) != 2000 {
		t.Fatalf("%d probes, want 2000 at 200/s over 10 s", len(s.Probes))
	}
	ok := 0
	for _, p := range s.Probes {
		if p.OK {
			ok++
		}
	}
	frac := float64(ok) / float64(len(s.Probes))
	if math.Abs(frac-0.7) > 0.04 {
		t.Errorf("delivery fraction %.3f, want ≈ 0.7", frac)
	}
}

func TestSubSample(t *testing.T) {
	tr := constTrace(400, 1)
	s := CollectStream(tr, 200, 1)
	sub := s.SubSample(20) // 10 probes/s
	if len(sub.Probes) != len(s.Probes)/20 {
		t.Errorf("sub-sampled %d probes", len(sub.Probes))
	}
	if sub.Interval != s.Interval*20 {
		t.Errorf("interval = %v", sub.Interval)
	}
	if s.SubSample(1) != s {
		t.Error("k=1 should return the same stream")
	}
	// Sub-sampled probes keep their original outcomes and times.
	for i, p := range sub.Probes {
		if p != s.Probes[i*20] {
			t.Fatalf("sub-sample reordered probes at %d", i)
		}
	}
}

func TestErrorSampleError(t *testing.T) {
	s := ErrorSample{Observed: 0.3, Actual: 0.8}
	if s.Error() != 0.5 {
		t.Errorf("error = %v", s.Error())
	}
}

func TestMeanError(t *testing.T) {
	if MeanError(nil) != 0 {
		t.Error("empty mean error should be 0")
	}
	samples := []ErrorSample{{Observed: 1, Actual: 0}, {Observed: 0.5, Actual: 0.5}}
	if MeanError(samples) != 0.5 {
		t.Errorf("mean = %v", MeanError(samples))
	}
}

func TestEstimateSeriesTracksStep(t *testing.T) {
	// After the step the fast stream's estimates converge to the new
	// probability.
	tr := stepTrace(4000, 1, 0) // 20 s: 10 s at 1.0, 10 s at 0.0
	s := CollectStream(tr, 200, 2)
	series := EstimateSeries(tr, s, 10)
	// Look at estimates near the end: they must be ≈ 0.
	tail := series[len(series)-100:]
	if m := MeanError(tail); m > 0.05 {
		t.Errorf("tail error = %v after a step the estimator had 10 s to learn", m)
	}
}

func TestErrorVsRateMonotoneOnFastChannel(t *testing.T) {
	// On a channel with a mid-trace step, faster probing cannot be worse.
	tr := stepTrace(8000, 0.9, 0.3)
	errs := ErrorVsRate(tr, []float64{0.5, 10}, 10, 3)
	if errs[10] > errs[0.5]+0.02 {
		t.Errorf("10/s error %.3f above 0.5/s %.3f", errs[10], errs[0.5])
	}
}

func TestFixedSchedulerSpacing(t *testing.T) {
	f := &FixedScheduler{PerSecond: 4}
	if got := f.Next(0); got != 250*time.Millisecond {
		t.Errorf("next = %v, want 250ms", got)
	}
	var zero FixedScheduler
	if got := zero.Next(0); got != time.Second {
		t.Errorf("default rate next = %v, want 1s", got)
	}
}

func TestHintSchedulerRates(t *testing.T) {
	moving := false
	h := &HintScheduler{MovingFn: func(time.Duration) bool { return moving }}
	// Static: 1 probe/s.
	if got := h.Next(0); got != time.Second {
		t.Errorf("static next = %v, want 1s", got)
	}
	// Moving: 10 probes/s.
	moving = true
	if got := h.Next(10 * time.Second); got != 10*time.Second+100*time.Millisecond {
		t.Errorf("mobile next = %v, want +100ms", got)
	}
	// Linger: just after movement stops the fast rate persists.
	moving = false
	if got := h.Next(10*time.Second + 500*time.Millisecond); got != 10*time.Second+600*time.Millisecond {
		t.Errorf("linger next = %v, want fast rate within linger", got)
	}
	// Well after the linger expires, back to slow.
	if got := h.Next(30 * time.Second); got != 31*time.Second {
		t.Errorf("post-linger next = %v, want +1s", got)
	}
}

func TestHintSchedulerCustomRatesAndLinger(t *testing.T) {
	h := &HintScheduler{
		StaticPerSecond: 2, MobilePerSecond: 20,
		Linger:   2 * time.Second,
		MovingFn: func(at time.Duration) bool { return at < time.Second },
	}
	if got := h.Next(0); got != 50*time.Millisecond {
		t.Errorf("mobile custom next = %v", got)
	}
	// 1.5 s: movement stopped at 1 s but the 2 s linger holds.
	if got := h.Next(1500 * time.Millisecond); got != 1550*time.Millisecond {
		t.Errorf("linger next = %v", got)
	}
	// 4 s: linger expired.
	if got := h.Next(4 * time.Second); got != 4500*time.Millisecond {
		t.Errorf("slow next = %v", got)
	}
}

func TestRunSchedulerCountsProbes(t *testing.T) {
	tr := constTrace(2000, 1) // 10 s
	res := RunScheduler(tr, &FixedScheduler{PerSecond: 5}, 10, 4)
	if res.Probes < 48 || res.Probes > 52 {
		t.Errorf("probes = %d, want ≈ 50", res.Probes)
	}
	if res.MeanError() > 0.25 {
		t.Errorf("mean error %v on a constant perfect channel", res.MeanError())
	}
}

func TestMovementHintFn(t *testing.T) {
	tr := constTrace(400, 1)
	for i := 200; i < 400; i++ {
		tr.Slots[i].Moving = true
	}
	fn := MovementHintFn(tr, 100*time.Millisecond)
	movingStart := time.Duration(200) * tr.SlotDur
	if fn(movingStart) {
		t.Error("hint should lag ground truth by the latency")
	}
	if !fn(movingStart + 150*time.Millisecond) {
		t.Error("hint should be up after the latency")
	}
}
