// Package probing implements the topology-maintenance machinery of
// Chapter 4: delivery-probability estimation from periodic probes, the
// error analysis of probing rate versus estimate accuracy (Figures 4-2
// through 4-5), and the hint-aware probe scheduler that probes fast only
// while a node (or its neighbour) is moving (Figure 4-6).
//
// The methodology mirrors the paper's measurement: a sender probes at an
// aggressive reference rate (200 probes/s); lower probing rates are
// obtained by sub-sampling that stream, and each delivery-probability
// estimate aggregates a sliding window of probe outcomes.
package probing

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/phy"
	"repro/internal/trace"
)

// ReferenceRate is the aggressive probe rate (probes per second) used to
// collect ground-truth streams, as in §4.1.
const ReferenceRate = 200

// ActualWindow is the averaging window defining the "actual" delivery
// probability: 10 packets of the 200/s reference stream, i.e. 50 ms, as
// in §4.1.
const ActualWindow = 50 * time.Millisecond

// ProbeRate is the paper's probe bit rate for the topology experiments.
const ProbeRate = phy.Rate6

// Probe is one probe transmission outcome.
type Probe struct {
	At time.Duration
	OK bool
}

// Stream is a sequence of probe outcomes at a fixed sending rate.
type Stream struct {
	// Interval is the inter-probe spacing.
	Interval time.Duration
	Probes   []Probe
}

// CollectStream sends probes at the given rate (probes/s) against the
// trace at ProbeRate, drawing each outcome from the slot's ground-truth
// delivery probability. Outcomes are deterministic for a seed.
func CollectStream(tr *trace.FateTrace, perSecond float64, seed int64) *Stream {
	if perSecond <= 0 {
		perSecond = ReferenceRate
	}
	interval := time.Duration(float64(time.Second) / perSecond)
	rng := rand.New(rand.NewSource(seed))
	s := &Stream{Interval: interval}
	for at := time.Duration(0); at < tr.Duration(); at += interval {
		p := tr.At(at).Prob[ProbeRate]
		s.Probes = append(s.Probes, Probe{At: at, OK: rng.Float64() < p})
	}
	return s
}

// SubSample returns the stream obtained by keeping every k-th probe,
// modelling a sender that probes k times less often (§4.1's methodology
// for comparing probing rates without separate experiments).
func (s *Stream) SubSample(k int) *Stream {
	if k <= 1 {
		return s
	}
	out := &Stream{Interval: s.Interval * time.Duration(k)}
	for i := 0; i < len(s.Probes); i += k {
		out.Probes = append(out.Probes, s.Probes[i])
	}
	return out
}

// Estimator computes the delivery probability over a sliding window of
// the last W probe outcomes (the paper uses W = 10).
type Estimator struct {
	// WindowProbes is the number of probes aggregated per estimate
	// (default 10).
	WindowProbes int

	window []bool
	head   int
	filled bool
	ones   int
}

// NewEstimator returns an estimator with the paper's 10-probe window.
func NewEstimator() *Estimator { return &Estimator{} }

func (e *Estimator) size() int {
	if e.WindowProbes > 0 {
		return e.WindowProbes
	}
	return 10
}

// Add ingests one probe outcome.
func (e *Estimator) Add(ok bool) {
	n := e.size()
	if e.window == nil {
		e.window = make([]bool, n)
	}
	if e.filled && e.window[e.head] {
		e.ones--
	}
	e.window[e.head] = ok
	if ok {
		e.ones++
	}
	e.head++
	if e.head == n {
		e.head = 0
		e.filled = true
	}
}

// Ready reports whether a full window has been observed.
func (e *Estimator) Ready() bool { return e.filled }

// Estimate returns the current delivery-probability estimate in [0, 1].
// Before the window fills it averages what has been seen (0 with no
// probes).
func (e *Estimator) Estimate() float64 {
	n := e.size()
	if !e.filled {
		if e.head == 0 {
			return 0
		}
		return float64(e.ones) / float64(e.head)
	}
	return float64(e.ones) / float64(n)
}

// Reset clears the window.
func (e *Estimator) Reset() {
	e.head = 0
	e.filled = false
	e.ones = 0
	for i := range e.window {
		e.window[i] = false
	}
}

// ErrorSample is one |observed − actual| error at a point in time.
type ErrorSample struct {
	At       time.Duration
	Observed float64
	Actual   float64
}

// Error returns |observed − actual|, the paper's error definition.
func (s ErrorSample) Error() float64 { return math.Abs(s.Observed - s.Actual) }

// EstimateSeries runs the estimator over a probe stream, sampling the
// estimate and the trace's ground truth after every probe once the
// window is full.
func EstimateSeries(tr *trace.FateTrace, s *Stream, windowProbes int) []ErrorSample {
	est := &Estimator{WindowProbes: windowProbes}
	var out []ErrorSample
	for _, p := range s.Probes {
		est.Add(p.OK)
		if !est.Ready() {
			continue
		}
		out = append(out, ErrorSample{
			At:       p.At,
			Observed: est.Estimate(),
			Actual:   tr.WindowProb(p.At, ActualWindow, ProbeRate),
		})
	}
	return out
}

// MeanError returns the average |observed − actual| over the samples.
func MeanError(samples []ErrorSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		sum += s.Error()
	}
	return sum / float64(len(samples))
}

// ErrorVsRate computes the mean estimate error at each probing rate by
// sub-sampling a reference stream — the analysis behind Figures 4-2 and
// 4-3. Rates are probes/second and must divide the reference rate.
func ErrorVsRate(tr *trace.FateTrace, rates []float64, windowProbes int, seed int64) map[float64]float64 {
	ref := CollectStream(tr, ReferenceRate, seed)
	out := make(map[float64]float64, len(rates))
	for _, r := range rates {
		k := int(math.Round(ReferenceRate / r))
		if k < 1 {
			k = 1
		}
		sub := ref.SubSample(k)
		out[r] = MeanError(EstimateSeries(tr, sub, windowProbes))
	}
	return out
}
