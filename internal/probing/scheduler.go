package probing

import (
	"fmt"
	"time"
)

// Scheduler decides when the next probe should be sent. Implementations
// are consulted after every probe with the current time and return the
// time of the next probe.
type Scheduler interface {
	// Name identifies the strategy in reports.
	Name() string
	// Next returns the next probe time strictly after now.
	Next(now time.Duration) time.Duration
}

// FixedScheduler probes at a constant rate — the "1 probe per second"
// default of many deployed wireless networks that Figure 4-6 shows
// lagging badly under movement.
type FixedScheduler struct {
	// PerSecond is the probing rate.
	PerSecond float64
}

// Name implements Scheduler.
func (f *FixedScheduler) Name() string {
	return fmt.Sprintf("fixed-%g/s", f.PerSecond)
}

// Next implements Scheduler.
func (f *FixedScheduler) Next(now time.Duration) time.Duration {
	rate := f.PerSecond
	if rate <= 0 {
		rate = 1
	}
	return now + time.Duration(float64(time.Second)/rate)
}

// HintScheduler is the hint-aware protocol of §4.2: probe slowly while
// everything is static, jump to the fast rate the moment a movement hint
// arrives (locally or from the neighbour), and keep probing fast for a
// linger period after movement stops so that every probe in the
// estimation window reflects the settled channel.
type HintScheduler struct {
	// StaticPerSecond and MobilePerSecond are the two probing rates
	// (defaults 1 and 10, the values §4.2 implements).
	StaticPerSecond, MobilePerSecond float64
	// Linger keeps the fast rate for this long after movement stops
	// (default 1 s).
	Linger time.Duration
	// MovingFn reports whether a movement hint is currently asserted for
	// either end of the link.
	MovingFn func(now time.Duration) bool

	movingTill time.Duration
	everMoved  bool
}

// Name implements Scheduler.
func (h *HintScheduler) Name() string { return "hint-adaptive" }

func (h *HintScheduler) linger() time.Duration {
	if h.Linger > 0 {
		return h.Linger
	}
	return time.Second
}

// FastUntil returns the time until which the fast rate applies given the
// movement hint history observed so far.
func (h *HintScheduler) fast(now time.Duration) bool {
	if h.MovingFn != nil && h.MovingFn(now) {
		h.movingTill = now + h.linger()
		h.everMoved = true
	}
	return h.everMoved && now < h.movingTill
}

// Next implements Scheduler.
func (h *HintScheduler) Next(now time.Duration) time.Duration {
	static := h.StaticPerSecond
	if static <= 0 {
		static = 1
	}
	mobile := h.MobilePerSecond
	if mobile <= 0 {
		mobile = 10
	}
	rate := static
	if h.fast(now) {
		rate = mobile
	}
	return now + time.Duration(float64(time.Second)/rate)
}
