package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// chaosCoordPlan is the coordinator-side fault schedule the golden
// chaos matrix injects on every accepted connection's outbound frames:
// a mix of every fault kind, with the kill budget capped so the run
// converges well inside the retry budget.
func chaosCoordPlan(seed int64, conns, kills int) *FaultPlan {
	return &FaultPlan{
		Seed:           seed,
		Corrupt:        0.02,
		Drop:           0.02,
		Dup:            0.02,
		Delay:          0.15,
		DelayBy:        time.Millisecond,
		PartitionAfter: 25,
		Conns:          conns,
		MaxKills:       kills,
	}
}

// chaosServeTCP runs count workers against addr with reconnect enabled;
// worker 0's outbound frames additionally run under a corrupt-frame
// plan, so the coordinator's checksum path sees real corruption from a
// real worker. Returns a join function bounded by the workers'
// reconnect budgets.
func chaosServeTCP(addr string, count int) func() {
	wplan := &FaultPlan{Seed: 99, Corrupt: 0.05, MaxKills: 2}
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			do := DialOptions{Attempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
			if i == 0 {
				do.Wrap = func(c Conn) Conn {
					InjectFaults(c, wplan.conn())
					return c
				}
			}
			// Errors are expected here: a worker whose final Stop was
			// eaten by a fault dials a closed listener until its budget
			// runs out. The coordinator's report is the arbiter.
			ServeTCP(addr, ServeOptions{Name: fmt.Sprintf("chaos-w%d", i), Workers: 1}, do)
		}(i)
	}
	return wg.Wait
}

// TestChaosReportsByteIdentical is the golden chaos matrix: for every
// registered experiment, a run whose transport injects drops, delays,
// duplicates, corruption, and partitions — healed by checksum-driven
// conn drops, shard requeue, and (on TCP) worker reconnect — must
// produce the byte-identical report of the clean single-process run.
// The clean legs of the same matrix are TestReportsIdenticalAcross-
// TransportsAndWorkers; this test is their adversarial complement.
func TestChaosReportsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	const workers, shards = 3, 5
	for _, exp := range experiments.All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()

			// TCP leg: faults on both directions, partitions healed by
			// reconnect. The short heartbeat bounds how long a dropped
			// frame's chain break stays undetected.
			lt, err := ListenTCP("127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			join := chaosServeTCP(lt.Addr(), workers)
			rep, stats, err := Run(WithChaos(lt, chaosCoordPlan(7, 2, 3)), Options{
				Experiment:        exp.ID,
				Seed:              42,
				Scale:             0.1,
				Shards:            shards,
				ShardWorkers:      1,
				Retries:           30,
				HeartbeatInterval: 100 * time.Millisecond,
				HeartbeatMisses:   10,
			})
			if err != nil {
				t.Fatalf("chaotic tcp run: %v (stats %+v)", err, stats)
			}
			if got := rep.String(); got != base {
				t.Errorf("tcp report differs under chaos (stats %+v):\n--- clean ---\n%s\n--- chaotic ---\n%s", stats, base, got)
			}
			join()

			// Subprocess leg: faults restricted to the first conn (a
			// subprocess worker cannot reconnect — killing every conn
			// would just exhaust the pool), so the surviving workers
			// absorb the requeued shards.
			sp := &FaultPlan{
				Seed:     11,
				Corrupt:  0.03,
				Drop:     0.02,
				Dup:      0.02,
				Delay:    0.1,
				DelayBy:  time.Millisecond,
				Conns:    1,
				MaxKills: 2,
			}
			rep, stats, err = Run(WithChaos(NewSubprocess(workers, helperCommand(false)), sp), Options{
				Experiment:        exp.ID,
				Seed:              42,
				Scale:             0.1,
				Shards:            shards,
				ShardWorkers:      1,
				Retries:           30,
				HeartbeatInterval: 100 * time.Millisecond,
				HeartbeatMisses:   10,
			})
			if err != nil {
				t.Fatalf("chaotic subprocess run: %v (stats %+v)", err, stats)
			}
			if got := rep.String(); got != base {
				t.Errorf("subprocess report differs under chaos (stats %+v):\n--- clean ---\n%s\n--- chaotic ---\n%s", stats, base, got)
			}
		})
	}
}

// TestChaosCampaignPartitionHealedByReconnect forces hard mid-campaign
// partitions on both initial worker connections and requires the
// campaign to finish byte-identically because the workers reconnect
// (fresh conns run clean under the plan's conn limit) and the
// coordinator requeues whatever the severed conns were holding.
func TestChaosCampaignPartitionHealedByReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	jobs := []Job{
		{Experiment: "fig2-2", Seed: 42, Scale: 0.1, Shards: 4},
		{Experiment: "fig3-1", Seed: 7, Scale: 0.1, Shards: 3},
	}
	bases := make([]string, len(jobs))
	for ji, j := range jobs {
		exp, ok := experiments.ByID(j.Experiment)
		if !ok {
			t.Fatalf("unknown experiment %q", j.Experiment)
		}
		bases[ji] = exp.Run(experiments.Config{Scale: j.Scale, Seed: j.Seed, Workers: 1}).String()
	}

	// The campaign's conns carry few frames (challenge, prepare, a
	// handful of assigns, stop), so the partition threshold sits right
	// past the handshake exemption to guarantee it actually fires.
	plan := &FaultPlan{Seed: 3, PartitionAfter: 4, Conns: 2, MaxKills: 2}
	lt, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var dials atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ServeTCP(lt.Addr(), ServeOptions{Name: fmt.Sprintf("part-w%d", i), Workers: 1}, DialOptions{
				Attempts:  8,
				BaseDelay: 10 * time.Millisecond,
				MaxDelay:  100 * time.Millisecond,
				Wrap: func(c Conn) Conn {
					dials.Add(1)
					return c
				},
			})
		}(i)
	}
	defer wg.Wait()

	got := make([]string, len(jobs))
	stats, err := RunCampaign(WithChaos(lt, plan), jobs, CampaignOptions{
		ShardWorkers:      1,
		Retries:           10,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatMisses:   20,
		OnReport: func(ji int, _ Job, rep *experiments.Report) error {
			got[ji] = rep.String()
			return nil
		},
	})
	if err != nil {
		t.Fatalf("partitioned campaign: %v (stats %+v)", err, stats)
	}
	for ji := range jobs {
		if got[ji] != bases[ji] {
			t.Errorf("job %d report differs after partitions (stats %+v):\n--- clean ---\n%s\n--- chaotic ---\n%s", ji, stats, bases[ji], got[ji])
		}
	}
	if kills := plan.kills.Load(); kills < 1 {
		t.Errorf("no partition actually fired (kills %d) — the test proved nothing", kills)
	}
	if d := dials.Load(); d <= 2 {
		t.Errorf("dials = %d, want > 2 (no worker ever reconnected)", d)
	}
}

// TestCorruptFrameDetectedAndSalvaged scripts the integrity failure
// end to end, deterministically. Worker 0 runs alone and owns both
// shards; its outbound frames are Hello(1), shard 0's Loop(2) and
// Done(3) — all inside the handshake exemption — and then shard 1's
// Loop as frame 4, the first faultable frame, which the Corrupt=1 plan
// flips. The coordinator must classify it as a checksum failure (typed
// stats.ErrChecksum → CorruptFrames), drop the peer, requeue shard 1,
// and finish byte-identically on worker 1, which only dials in after
// worker 0 dies.
func TestCorruptFrameDetectedAndSalvaged(t *testing.T) {
	exp, _ := experiments.ByID("fig3-1")
	base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
	plan := &FaultPlan{Seed: 1, Corrupt: 1, MaxKills: 1}
	w0dead := make(chan struct{})
	w0err := make(chan error, 1)
	tr := NewInProcess(2, func(i int, c Conn) {
		if i == 0 {
			InjectFaults(c, plan.conn())
			w0err <- Serve(c, ServeOptions{Name: "corruptor", Workers: 1})
			close(w0dead)
			return
		}
		<-w0dead
		Serve(c, ServeOptions{Name: "honest", Workers: 1})
	})
	rep, stats, err := Run(tr, Options{
		Experiment:        "fig3-1",
		Seed:              42,
		Scale:             0.1,
		Shards:            2,
		ShardWorkers:      1,
		Retries:           2,
		NoSteal:           true,
		HeartbeatInterval: -1, // no pings: worker 0's frame order is exact
	})
	if err != nil {
		t.Fatalf("run with a corrupting worker: %v (stats %+v)", err, stats)
	}
	if got := rep.String(); got != base {
		t.Errorf("report differs after corrupt frame (stats %+v):\n--- clean ---\n%s\n--- cluster ---\n%s", stats, base, got)
	}
	if stats.CorruptFrames < 1 {
		t.Errorf("stats.CorruptFrames = %d, want ≥ 1 (checksum failure was not classified)", stats.CorruptFrames)
	}
	if stats.Requeued < 1 {
		t.Errorf("stats.Requeued = %d, want ≥ 1 (corrupted shard was not salvaged)", stats.Requeued)
	}
	// The corruptor's own session ends with the coordinator hanging up.
	if werr := <-w0err; werr == nil {
		t.Error("corrupting worker finished cleanly; its conn should have been dropped")
	}
}

// TestUnauthenticatedWorkerRejected: with a token set on the
// coordinator, a worker holding the wrong token is refused with a typed
// rejection and counted, while the authenticated worker completes the
// run byte-identically.
func TestUnauthenticatedWorkerRejected(t *testing.T) {
	exp, _ := experiments.ByID("fig2-2")
	base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
	intruderErr := make(chan error, 1)
	tr := NewInProcess(2, func(i int, c Conn) {
		if i == 0 {
			intruderErr <- Serve(c, ServeOptions{Name: "intruder", Workers: 1, Token: "wrong"})
			return
		}
		Serve(c, ServeOptions{Name: "trusted", Workers: 1, Token: "s3cret"})
	})
	rep, stats, err := Run(tr, Options{
		Experiment:   "fig2-2",
		Seed:         42,
		Scale:        0.1,
		Shards:       2,
		ShardWorkers: 1,
		Retries:      2,
		Token:        "s3cret",
	})
	if err != nil {
		t.Fatalf("run with an intruder: %v", err)
	}
	if got := rep.String(); got != base {
		t.Errorf("report differs:\n--- clean ---\n%s\n--- cluster ---\n%s", base, got)
	}
	if stats.Rejected != 1 {
		t.Errorf("stats.Rejected = %d, want 1", stats.Rejected)
	}
	if stats.Workers != 1 {
		t.Errorf("stats.Workers = %d, want 1 (only the trusted worker)", stats.Workers)
	}
	var rej *RejectedError
	if werr := <-intruderErr; !errors.As(werr, &rej) {
		t.Errorf("intruder's error = %v, want a *RejectedError", werr)
	}
}

// TestWedgedWorkerConvertedToRetry is the hung-worker regression test:
// a worker that accepts a shard and then goes silent — connection open,
// no frames, no pongs — must be reaped by the heartbeat budget and its
// shard re-dispatched, with the report unchanged. Before heartbeats,
// exactly this scenario stalled the coordinator until the drain
// deadline of a run that could never finish.
func TestWedgedWorkerConvertedToRetry(t *testing.T) {
	exp, _ := experiments.ByID("fig2-2")
	base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
	assigned := make(chan struct{})
	unwedge := make(chan struct{})
	defer close(unwedge)
	tr := NewInProcess(2, func(i int, c Conn) {
		if i == 0 {
			// Wedged: handshakes, accepts its assignment, then consumes
			// frames forever without ever sending one.
			if err := Handshake(c, "wedged", ""); err != nil {
				return
			}
			for {
				m, err := c.Recv()
				if err != nil {
					return
				}
				if _, ok := m.(*Assign); ok {
					select {
					case <-assigned:
					default:
						close(assigned)
					}
				}
			}
		}
		<-assigned
		Serve(c, ServeOptions{Name: "healthy", Workers: 1})
	})
	rep, stats, err := Run(tr, Options{
		Experiment:        "fig2-2",
		Seed:              42,
		Scale:             0.1,
		Shards:            2,
		ShardWorkers:      1,
		Retries:           1,
		NoSteal:           true, // the requeue, not a steal, must recover the shard
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatMisses:   8,
	})
	if err != nil {
		t.Fatalf("run with a wedged worker: %v (stats %+v)", err, stats)
	}
	if got := rep.String(); got != base {
		t.Errorf("report differs after wedged worker (stats %+v):\n--- clean ---\n%s\n--- cluster ---\n%s", stats, base, got)
	}
	if stats.Hung < 1 {
		t.Errorf("stats.Hung = %d, want ≥ 1 (the wedge was never classified)", stats.Hung)
	}
	if stats.Requeued < 1 {
		t.Errorf("stats.Requeued = %d, want ≥ 1 (the wedged shard was not re-dispatched)", stats.Requeued)
	}
}
