package cluster

import (
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/phy"
)

// ServeOptions configures one worker.
type ServeOptions struct {
	// Name identifies the worker to the coordinator (logs only).
	Name string
	// Workers bounds the goroutines a shard's trials fan across when the
	// coordinator's Assign leaves the choice to the worker (0 = one per
	// CPU).
	Workers int
	// OnAssign, if set, runs before each assignment executes. Returning
	// an error abandons the connection without touching the shard —
	// fault injection for the failure-path tests (a subprocess worker's
	// hook can exit the process outright, a goroutine worker's can drop
	// the connection, both leaving the shard assigned but never
	// finished).
	OnAssign func(Assign) error
}

// Serve runs the worker side of the protocol on conn until the
// coordinator sends Stop (returning nil) or the connection breaks
// (returning the error). Each Assign executes through
// experiments.RunShardStream, forwarding every completed trial loop as
// it finishes; an experiment error is reported with ShardError and the
// worker stays available for other shards.
func Serve(conn Conn, o ServeOptions) error {
	defer conn.Close()
	name := o.Name
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if err := conn.Send(&Hello{Version: ProtoVersion, Name: name}); err != nil {
		return err
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("cluster: worker %s: coordinator connection: %w", name, err)
		}
		switch a := m.(type) {
		case *Stop:
			return nil
		case *Prepare:
			// Warm-worker step: build the named phy tables now, while no
			// assignment is running, so they are cached for every shard
			// this connection will execute.
			phy.Warm(a.Frames...)
		case *Assign:
			if o.OnAssign != nil {
				if err := o.OnAssign(*a); err != nil {
					return err
				}
			}
			workers := a.Workers
			if workers <= 0 {
				workers = o.Workers
			}
			cfg := experiments.Config{Scale: a.Scale, Seed: a.Seed, Workers: workers}
			shard := parallel.Shard{Index: a.Shard, Count: a.Shards}
			var sinkErr error
			runErr := experiments.RunShardStream(a.Experiment, cfg, shard, func(lp *experiments.LoopPartial) error {
				if err := conn.Send(&LoopResult{Job: a.Job, Shard: a.Shard, Loop: lp}); err != nil {
					sinkErr = err
					return err
				}
				return nil
			})
			if sinkErr != nil {
				// The connection is gone; nothing can be reported.
				return sinkErr
			}
			if runErr != nil {
				if err := conn.Send(&ShardError{Job: a.Job, Shard: a.Shard, Msg: runErr.Error()}); err != nil {
					return err
				}
				continue
			}
			if err := conn.Send(&ShardDone{Job: a.Job, Shard: a.Shard}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cluster: worker %s: unexpected %T from coordinator", name, m)
		}
	}
}

// ServeStdio runs a worker over this process's stdin/stdout — the mode
// the subprocess transport spawns. The caller must not write anything
// else to stdout.
func ServeStdio(o ServeOptions) error {
	return Serve(newStreamConn(os.Stdin, os.Stdout, nil), o)
}
