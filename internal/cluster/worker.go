package cluster

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/phy"
)

// ServeOptions configures one worker.
type ServeOptions struct {
	// Name identifies the worker to the coordinator (logs only).
	Name string
	// Workers bounds the goroutines a shard's trials fan across when the
	// coordinator's Assign leaves the choice to the worker (0 = one per
	// CPU).
	Workers int
	// Token is the shared secret the hello's challenge MAC is computed
	// under; it must match the coordinator's or the session is rejected.
	// Empty matches an empty coordinator token.
	Token string
	// OnAssign, if set, runs before each assignment executes. Returning
	// an error abandons the connection without touching the shard —
	// fault injection for the failure-path tests (a subprocess worker's
	// hook can exit the process outright, a goroutine worker's can drop
	// the connection, both leaving the shard assigned but never
	// finished).
	OnAssign func(Assign) error
}

// RejectedError is returned by Serve/ServeTCP when the coordinator
// refused the session (authentication failure, handshake timeout).
// Reconnecting cannot help — ServeTCP gives up immediately on it.
type RejectedError struct {
	Reason string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("cluster: session rejected by coordinator: %s", e.Reason)
}

// handshakeTimeout bounds how long a worker waits for the coordinator's
// challenge (and the coordinator's sessions wait for the answering
// hello, via its heartbeat cutoff). Generous: it only has to beat
// operator patience, not round-trip time.
const handshakeTimeout = 30 * time.Second

// Handshake runs the worker side of the session handshake on a fresh
// connection: receive the coordinator's challenge, answer it with a
// hello carrying the token MAC, and arm the conn's per-message
// deadlines from the challenge's heartbeat parameters. Exported so
// hand-rolled protocol peers (tests, external tooling) can join a
// coordinator without reimplementing the MAC.
func Handshake(conn Conn, name, token string) error {
	if ts, ok := conn.(timeoutSetter); ok {
		ts.SetTimeouts(handshakeTimeout, handshakeTimeout)
	}
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("cluster: worker %s: awaiting challenge: %w", name, err)
	}
	ch, ok := m.(*Challenge)
	if !ok {
		return fmt.Errorf("cluster: worker %s: expected challenge, got %T", name, m)
	}
	if err := conn.Send(&Hello{Version: ProtoVersion, Name: name, MAC: helloMAC(token, ch.Nonce, name)}); err != nil {
		return fmt.Errorf("cluster: worker %s: sending hello: %w", name, err)
	}
	if ts, ok := conn.(timeoutSetter); ok {
		if ch.CutoffMs > 0 {
			// The coordinator pings every PingMs; if nothing arrives for
			// two cutoffs the coordinator is gone (or the path is), and
			// blocking longer helps nobody.
			cutoff := time.Duration(ch.CutoffMs) * time.Millisecond
			ts.SetTimeouts(2*cutoff, cutoff)
		} else {
			ts.SetTimeouts(0, 0)
		}
	}
	return nil
}

// Serve runs the worker side of the protocol on conn until the
// coordinator sends Stop (returning nil) or the connection breaks
// (returning the error). Each Assign executes through
// experiments.RunShardStream, forwarding every completed trial loop as
// it finishes; an experiment error is reported with ShardError and the
// worker stays available for other shards. A dedicated reader goroutine
// answers heartbeat pings even while a shard is computing, so a busy
// worker never reads as dead.
func Serve(conn Conn, o ServeOptions) error {
	defer conn.Close()
	return serve(conn, o, nil)
}

// serve is Serve without the Close, so ServeTCP can interleave retries;
// established, when non-nil, is set to true once the handshake
// completes (the signal that a live coordinator was reached, which
// resets the reconnect failure budget).
func serve(conn Conn, o ServeOptions, established *bool) error {
	name := o.Name
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if err := Handshake(conn, name, o.Token); err != nil {
		return err
	}
	if established != nil {
		*established = true
	}

	// The reader goroutine owns Recv: it answers pings inline (Send is
	// safe for concurrent senders) and forwards everything else to the
	// main loop. The done channel unblocks it at teardown so it never
	// outlives the session.
	type inbound struct {
		m   Message
		err error
	}
	msgs := make(chan inbound)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			m, err := conn.Recv()
			if err == nil {
				if p, ok := m.(*Ping); ok {
					if perr := conn.Send(&Pong{Seq: p.Seq}); perr != nil {
						m, err = nil, perr
					} else {
						continue
					}
				}
			}
			select {
			case msgs <- inbound{m, err}:
			case <-done:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	for {
		in := <-msgs
		if in.err != nil {
			return fmt.Errorf("cluster: worker %s: coordinator connection: %w", name, in.err)
		}
		switch a := in.m.(type) {
		case *Stop:
			return nil
		case *Reject:
			return &RejectedError{Reason: a.Reason}
		case *Prepare:
			// Warm-worker step: build the named phy tables now, while no
			// assignment is running, so they are cached for every shard
			// this connection will execute.
			phy.Warm(a.Frames...)
		case *Assign:
			if o.OnAssign != nil {
				if err := o.OnAssign(*a); err != nil {
					return err
				}
			}
			workers := a.Workers
			if workers <= 0 {
				workers = o.Workers
			}
			cfg := experiments.Config{Scale: a.Scale, Seed: a.Seed, Workers: workers}
			shard := parallel.Shard{Index: a.Shard, Count: a.Shards}
			var sinkErr error
			runErr := experiments.RunShardStream(a.Experiment, cfg, shard, func(lp *experiments.LoopPartial) error {
				if err := conn.Send(&LoopResult{Job: a.Job, Shard: a.Shard, Loop: lp}); err != nil {
					sinkErr = err
					return err
				}
				return nil
			})
			if sinkErr != nil {
				// The connection is gone; nothing can be reported.
				return sinkErr
			}
			if runErr != nil {
				if err := conn.Send(&ShardError{Job: a.Job, Shard: a.Shard, Msg: runErr.Error()}); err != nil {
					return err
				}
				continue
			}
			if err := conn.Send(&ShardDone{Job: a.Job, Shard: a.Shard}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cluster: worker %s: unexpected %T from coordinator", name, in.m)
		}
	}
}

// ServeStdio runs a worker over this process's stdin/stdout — the mode
// the subprocess transport spawns. The caller must not write anything
// else to stdout.
func ServeStdio(o ServeOptions) error {
	return Serve(newStreamConn(os.Stdin, os.Stdout, nil), o)
}

// DialOptions configures ServeTCP's reconnect behavior.
type DialOptions struct {
	// Attempts is the consecutive-failure budget: after this many dials
	// or handshakes fail in a row without an established session in
	// between, ServeTCP gives up (0 = 5). The budget resets every time a
	// session is established, so a long-lived worker survives any number
	// of mid-campaign partitions.
	Attempts int
	// BaseDelay/MaxDelay bound the jittered exponential backoff between
	// attempts (0 = 100ms / 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Wrap, if set, transforms each freshly dialed conn before use —
	// the hook chaos testing uses to fault the worker side.
	Wrap func(Conn) Conn
	// Logf receives reconnect diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

// ServeTCP dials a coordinator and serves on the connection,
// reconnecting with jittered exponential backoff whenever an
// established session breaks — the worker re-enters the running
// campaign as a fresh conn (its in-flight shard was already requeued by
// the coordinator when the old conn died). It returns nil on a clean
// Stop, the rejection immediately if the coordinator refuses the
// session, and the last error once the consecutive-failure budget is
// spent.
func ServeTCP(addr string, o ServeOptions, d DialOptions) error {
	attempts := d.Attempts
	if attempts <= 0 {
		attempts = 5
	}
	base := d.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxDelay := d.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	logf := d.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Jitter only needs to decorrelate workers, not be reproducible, so
	// seed from wall clock and pid.
	rng := parallel.NewRNG(time.Now().UnixNano() ^ int64(os.Getpid())<<32)
	backoff := func(failures int) time.Duration {
		delay := base << min(failures-1, 20)
		if delay <= 0 || delay > maxDelay {
			delay = maxDelay
		}
		// Full jitter: uniform in (0, delay] avoids reconnect stampedes.
		return time.Duration(rng.Float64()*float64(delay)) + time.Millisecond
	}

	failures := 0
	for {
		conn, err := DialTCP(addr)
		if err == nil {
			if d.Wrap != nil {
				conn = d.Wrap(conn)
			}
			established := false
			err = func() error {
				defer conn.Close()
				return serve(conn, o, &established)
			}()
			if err == nil {
				return nil
			}
			var rej *RejectedError
			if errors.As(err, &rej) {
				return err
			}
			if established {
				failures = 0
			}
		}
		failures++
		if failures >= attempts {
			return fmt.Errorf("cluster: giving up on %s after %d consecutive failures: %w", addr, failures, err)
		}
		delay := backoff(failures)
		logf("cluster: worker: session to %s failed (%v); reconnecting in %v (attempt %d/%d)", addr, err, delay, failures, attempts)
		time.Sleep(delay)
	}
}
