package cluster

import (
	"errors"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	istats "repro/internal/stats"
)

// pipeConns builds a connected streamConn pair over net.Pipe (the same
// plumbing the in-process transport uses).
func pipeConns() (*streamConn, *streamConn) {
	a, b := net.Pipe()
	return newStreamConn(a, a, a.Close), newStreamConn(b, b, b.Close)
}

// drive sends n hello frames from c while the other side receives until
// an error; used to walk a fault schedule deterministically.
func drive(t *testing.T, send, recv Conn, n int) (sendErrs []error, recvErr error, received int) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := recv.Recv(); err != nil {
				recvErr = err
				return
			}
			received++
		}
	}()
	for i := 0; i < n; i++ {
		if err := send.Send(&Hello{Version: ProtoVersion, Name: "x"}); err != nil {
			sendErrs = append(sendErrs, err)
		}
	}
	send.Close()
	<-done
	return sendErrs, recvErr, received
}

// TestFaultScheduleDeterministic: two ConnFaults carved from plans with
// the same seed must produce the identical fault sequence.
func TestFaultScheduleDeterministic(t *testing.T) {
	mk := func() []faultKind {
		p := &FaultPlan{Seed: 42, Corrupt: 0.2, Drop: 0.2, Dup: 0.2, Delay: 0.2, DelayBy: time.Nanosecond}
		f := p.conn()
		kinds := make([]faultKind, 0, 64)
		for i := 0; i < 64; i++ {
			k, _ := f.next()
			kinds = append(kinds, k)
		}
		return kinds
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at frame %d: %v vs %v", i, a[i], b[i])
		}
	}
	// The first handshakeExempt frames must always run clean.
	for i := 0; i < handshakeExempt; i++ {
		if a[i] != faultNone {
			t.Errorf("frame %d faulted during the handshake exemption", i)
		}
	}
}

// TestCorruptFaultBreaksChecksum: a corrupted frame must surface at the
// receiver as stats.ErrChecksum (and ErrCodec), not as a decode error
// or a silent success.
func TestCorruptFaultBreaksChecksum(t *testing.T) {
	cs, cr := pipeConns()
	p := &FaultPlan{Seed: 1, Corrupt: 1}
	InjectFaults(cs, p.conn())
	_, recvErr, received := drive(t, cs, cr, handshakeExempt+1)
	if received != handshakeExempt {
		t.Errorf("received %d clean frames, want %d", received, handshakeExempt)
	}
	if !errors.Is(recvErr, istats.ErrChecksum) {
		t.Errorf("receiver error %v, want stats.ErrChecksum", recvErr)
	}
	if !errors.Is(recvErr, istats.ErrCodec) {
		t.Errorf("receiver error %v does not wrap stats.ErrCodec", recvErr)
	}
}

// TestDropFaultBreaksChainAtNextFrame: a dropped frame is invisible at
// drop time but must break the rolling chain at the next delivered
// frame.
func TestDropFaultBreaksChainAtNextFrame(t *testing.T) {
	cs, cr := pipeConns()
	p := &FaultPlan{Seed: 1, Drop: 1, MaxKills: 1} // exactly one drop, then clean
	InjectFaults(cs, p.conn())
	_, recvErr, received := drive(t, cs, cr, handshakeExempt+2)
	if received != handshakeExempt {
		t.Errorf("received %d clean frames, want %d", received, handshakeExempt)
	}
	if !errors.Is(recvErr, istats.ErrChecksum) {
		t.Errorf("receiver error %v, want stats.ErrChecksum (the frame after the drop)", recvErr)
	}
}

// TestDupFaultBreaksChainAtSecondCopy: the duplicated copy's trailer
// continues a chain the receiver already advanced past.
func TestDupFaultBreaksChainAtSecondCopy(t *testing.T) {
	cs, cr := pipeConns()
	p := &FaultPlan{Seed: 1, Dup: 1, MaxKills: 1}
	InjectFaults(cs, p.conn())
	_, recvErr, received := drive(t, cs, cr, handshakeExempt+1)
	if received != handshakeExempt+1 {
		t.Errorf("received %d frames, want %d (the first copy is chain-valid)", received, handshakeExempt+1)
	}
	if !errors.Is(recvErr, istats.ErrChecksum) {
		t.Errorf("receiver error %v, want stats.ErrChecksum (the duplicate copy)", recvErr)
	}
}

// TestPartitionFaultClosesConn: the partition fault severs the conn;
// the sender sees a typed closed-network error and the receiver EOF.
func TestPartitionFaultClosesConn(t *testing.T) {
	cs, cr := pipeConns()
	p := &FaultPlan{Seed: 1, PartitionAfter: handshakeExempt}
	InjectFaults(cs, p.conn())
	sendErrs, _, received := drive(t, cs, cr, handshakeExempt+1)
	if received != handshakeExempt {
		t.Errorf("received %d frames before the partition, want %d", received, handshakeExempt)
	}
	if len(sendErrs) != 1 || !errors.Is(sendErrs[0], net.ErrClosed) {
		t.Errorf("sender errors %v, want exactly one wrapping net.ErrClosed", sendErrs)
	}
}

// TestMaxKillsCapsChainBreaks: with the kill budget at zero remaining,
// chain-breaking faults stop firing and traffic flows clean.
func TestMaxKillsCapsChainBreaks(t *testing.T) {
	p := &FaultPlan{Seed: 9, Corrupt: 1, MaxKills: 2}
	f := p.conn()
	kills := 0
	for i := 0; i < 100; i++ {
		if k, _ := f.next(); k != faultNone {
			kills++
		}
	}
	if kills != 2 {
		t.Errorf("%d chain-breaking faults fired, want exactly MaxKills=2", kills)
	}
}

// TestFaultPlanConnLimit: conns beyond the plan's limit run clean (nil
// schedule), which is what lets reconnected workers finish a chaos run.
func TestFaultPlanConnLimit(t *testing.T) {
	p := &FaultPlan{Seed: 1, Corrupt: 1, Conns: 2}
	if p.conn() == nil || p.conn() == nil {
		t.Fatal("first two conns should be faulted")
	}
	if p.conn() != nil {
		t.Error("third conn should run clean under Conns: 2")
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("drop=0.01,dup=0.02,corrupt=0.03,delay=0.1:2ms,partition=40,conns=2,kills=3", 7)
	if err != nil {
		t.Fatalf("ParseFaultPlan: %v", err)
	}
	if p.Seed != 7 || p.Drop != 0.01 || p.Dup != 0.02 || p.Corrupt != 0.03 ||
		p.Delay != 0.1 || p.DelayBy != 2*time.Millisecond ||
		p.PartitionAfter != 40 || p.Conns != 2 || p.MaxKills != 3 {
		t.Errorf("parsed plan %+v does not match the spec", p)
	}
	for _, bad := range []string{
		"drop",            // not key=value
		"drop=1.5",        // probability out of range
		"drop=x",          // not a number
		"delay=0.1",       // missing duration
		"delay=0.1:-2ms",  // non-positive duration
		"partition=-1",    // negative count
		"teleport=0.5",    // unknown key
		"drop=0.6,dup=.6", // probabilities over 1
	} {
		if _, err := ParseFaultPlan(bad, 1); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
	if p, err := ParseFaultPlan("", 1); err != nil || p == nil {
		t.Errorf("empty spec should yield an inert plan, got %v, %v", p, err)
	}
}

// TestReadDeadlineUnsticksReader: with a read timeout armed, a silent
// peer surfaces as a deadline error instead of blocking forever — the
// conversion that turns a hung worker into a retriable event.
func TestReadDeadlineUnsticksReader(t *testing.T) {
	ca, cb := pipeConns()
	defer ca.Close()
	defer cb.Close()
	ca.SetTimeouts(50*time.Millisecond, 0)
	start := time.Now()
	_, err := ca.Recv()
	if err == nil {
		t.Fatal("Recv from a silent peer succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("Recv error %v, want os.ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Recv blocked %v despite the deadline", elapsed)
	}
}

// TestWriteDeadlineUnsticksSender: a peer that never reads cannot wedge
// the sender when a write timeout is armed (net.Pipe is unbuffered, so
// the Send blocks until the deadline fires).
func TestWriteDeadlineUnsticksSender(t *testing.T) {
	ca, cb := pipeConns()
	defer ca.Close()
	defer cb.Close()
	ca.SetTimeouts(0, 50*time.Millisecond)
	err := ca.Send(&Hello{Version: ProtoVersion, Name: strings.Repeat("x", 1<<16)})
	if err == nil {
		t.Fatal("Send to a never-reading peer succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("Send error %v, want os.ErrDeadlineExceeded", err)
	}
}
