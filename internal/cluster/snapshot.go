package cluster

import (
	"errors"
	"sync/atomic"
	"time"
)

// This file is the coordinator's control plane: the immutable status
// snapshots the event loop publishes after every event, and the Control
// handle through which outside observers read them and submit or cancel
// jobs on the running fleet.
//
// The design keeps the determinism contract trivially intact. All
// coordinator state stays owned by the single-threaded event loop;
// scrapers never lock or touch it. Instead the loop builds a fresh
// Snapshot value at the end of each iteration and stores it in an
// atomic.Pointer, so a reader sees a complete, internally consistent
// view of some recent loop state — reads cannot block, slow, or reorder
// anything the loop does. Mutations (Submit/Cancel) enter the loop as
// ordinary events through a forwarder goroutine, so they serialize with
// dispatch exactly like a worker message.

// Snapshot is one immutable view of a running campaign, published by
// the coordinator loop. Readers must not mutate it.
type Snapshot struct {
	// StartedAt is when the campaign loop started; At when this snapshot
	// was built.
	StartedAt time.Time `json:"started_at"`
	At        time.Time `json:"at"`
	// Done marks the final snapshot, published after the loop exits.
	Done bool `json:"done"`
	// Stats is the live RunStats counter set (monotone while running).
	Stats RunStats `json:"stats"`
	// QueueDepth is the total number of undispatched fresh shards across
	// all live (non-cancelled) jobs.
	QueueDepth int `json:"queue_depth"`
	// Jobs has one entry per campaign job, initial and submitted, in
	// submission order; Workers one entry per connection ever accepted.
	Jobs    []JobStatus    `json:"jobs"`
	Workers []WorkerStatus `json:"workers"`
}

// JobStatus is one job's lifecycle view inside a Snapshot.
type JobStatus struct {
	Index      int     `json:"index"`
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Shards     int     `json:"shards"`
	// State is one of queued, running, merging, done, cancelled.
	State string `json:"state"`
	// Queued/InFlight/Completed count shards (in-flight counts live
	// dispatches, so speculative copies count individually).
	Queued    int `json:"queued"`
	InFlight  int `json:"in_flight"`
	Completed int `json:"completed"`
	// ShardStates is one byte per shard: q(ueued), f (in flight),
	// d(one) — the per-shard map behind the counts.
	ShardStates string `json:"shard_states"`
	// VerifySampled counts shards in the verification sample, Verified
	// those already confirmed.
	VerifySampled int `json:"verify_sampled"`
	Verified      int `json:"verified"`
	// Failures is the failure-budget charge summed across shards.
	Failures int `json:"failures"`
}

// WorkerStatus is one connection's view inside a Snapshot.
type WorkerStatus struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// State is one of handshake, idle, busy, stopped, dead.
	State string `json:"state"`
	// Job/Shard are the in-flight assignment (-1 when idle); Verify
	// marks it a verification re-run.
	Job    int  `json:"job"`
	Shard  int  `json:"shard"`
	Verify bool `json:"verify,omitempty"`
	// ShardsDone/LoopsDone count everything this worker finished or
	// streamed over the campaign; LoopsPerSec is the resulting
	// throughput over the connection's lifetime.
	ShardsDone  int     `json:"shards_done"`
	LoopsDone   int     `json:"loops_done"`
	LoopsPerSec float64 `json:"loops_per_sec"`
	UptimeSec   float64 `json:"uptime_sec"`
	LastSeenSec float64 `json:"last_seen_sec"`
}

// ErrNotRunning is returned by Control mutations once the campaign has
// finished (or before it attached).
var ErrNotRunning = errors.New("cluster: campaign is not running")

// ctlReq is one control mutation entering the event loop: submit (a new
// job) or cancel (a job index). reply is buffered so the loop never
// blocks answering.
type ctlReq struct {
	submit *Job
	cancel int
	reply  chan ctlReply
}

type ctlReply struct {
	job int
	err error
}

// Control is the handle a control plane holds on one campaign: a
// lock-free snapshot feed plus job submission and cancellation against
// the running scheduler. Create it with NewControl, pass it in
// CampaignOptions.Control (or Options.Control), and share it with the
// status server. A Control attaches to at most one campaign.
type Control struct {
	snap     atomic.Pointer[Snapshot]
	reqs     chan ctlReq
	done     chan struct{}
	attached atomic.Bool
	ended    atomic.Bool
}

// NewControl returns an unattached Control.
func NewControl() *Control {
	return &Control{reqs: make(chan ctlReq), done: make(chan struct{})}
}

// Snapshot returns the most recently published campaign snapshot, or
// nil if the campaign has not published one yet. The returned value is
// immutable and safe to retain.
func (c *Control) Snapshot() *Snapshot { return c.snap.Load() }

// Done is closed when the attached campaign finishes (successfully or
// not); mutations fail with ErrNotRunning from then on.
func (c *Control) Done() <-chan struct{} { return c.done }

// Submit queues a new job on the running campaign and returns its job
// index. The job dispatches after every earlier job's fresh shards,
// like any campaign entry, and its report is delivered through OnReport
// in submission order. Submission is rejected once the campaign is
// draining (all existing work done) — the fleet is already stopping.
func (c *Control) Submit(j Job) (int, error) {
	return c.roundTrip(ctlReq{submit: &j, reply: make(chan ctlReply, 1)})
}

// Cancel withdraws job index job: its undispatched shards never run,
// in-flight results are discarded, and no report is emitted for it.
// Cancelling a job whose report is already merged (or emitted) fails.
func (c *Control) Cancel(job int) error {
	_, err := c.roundTrip(ctlReq{cancel: job, submit: nil, reply: make(chan ctlReply, 1)})
	return err
}

func (c *Control) roundTrip(r ctlReq) (int, error) {
	select {
	case c.reqs <- r:
	case <-c.done:
		return 0, ErrNotRunning
	}
	select {
	case rep := <-r.reply:
		return rep.job, rep.err
	case <-c.done:
		return 0, ErrNotRunning
	}
}

// attach claims the Control for one campaign; false if already claimed.
func (c *Control) attach() bool { return c.attached.CompareAndSwap(false, true) }

// finish marks the campaign over, unblocking all pending and future
// mutations with ErrNotRunning.
func (c *Control) finish() {
	if c.ended.CompareAndSwap(false, true) {
		close(c.done)
	}
}
