// Package cluster is the transport-abstracted, work-stealing execution
// runtime for sharded experiments. A coordinator (Run for one
// experiment, RunCampaign for an ordered sequence of them) owns one
// dynamic shard queue (parallel.ShardQueue) per job and a set of worker
// connections delivered by a Transport; workers (Serve) run shards
// through experiments.RunShardStream and stream the per-loop partial
// records back. Three transports exist — in-process goroutines,
// subprocess pipes, and TCP — and every job's report is byte-identical
// across all of them, for any worker count, assignment order,
// speculative duplication, or worker death, because every shard's
// content is a pure function of (experiment, seed, scale, shard k/K)
// and the coordinator feeds the completed shard set through the
// experiments.MergeShards contract unchanged.
//
// The wire protocol is a small typed message set carried in the
// length-prefixed frames of internal/stats: one kind byte, then a JSON
// body whose collector payloads are the bit-exact binary codecs
// (base64-wrapped by encoding/json). Decoding arbitrary bytes returns
// errors, never panics (FuzzDecodeMessage).
package cluster

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

// ProtoVersion tags the message set; a coordinator refuses workers
// speaking any other version. Version 2 added campaign-aware
// assignment (the job id on assign and every worker reply) and the
// warm-worker prepare step. Version 3 hardened the session: the
// coordinator opens with a challenge (nonce + heartbeat parameters),
// the hello answers it with an HMAC over the shared token, frames carry
// a rolling CRC32C trailer, and ping/pong heartbeats keep liveness
// observable between assignments.
const ProtoVersion = 3

// Message kinds (the first payload byte of every frame).
const (
	kindChallenge = 'C' // coordinator → worker: version + auth nonce + heartbeat params, first frame of every conn
	kindHello     = 'H' // worker → coordinator: version + name + challenge MAC, sent once in answer
	kindReject    = 'R' // coordinator → worker: session refused (bad MAC, handshake timeout); conn closes after
	kindPrepare   = 'P' // coordinator → worker: pre-build LUTs before the first assignment
	kindAssign    = 'A' // coordinator → worker: run shard k/K of a job's experiment
	kindLoop      = 'L' // worker → coordinator: one completed trial loop of the current shard
	kindShardDone = 'D' // worker → coordinator: current shard finished, all loops streamed
	kindShardErr  = 'E' // worker → coordinator: current shard failed
	kindStop      = 'S' // coordinator → worker: no more work, disconnect
	kindPing      = 'p' // coordinator → worker: liveness probe
	kindPong      = 'q' // worker → coordinator: liveness answer, echoing the ping's seq
)

// Message is one protocol message; the concrete types below are the
// complete set.
type Message interface {
	kind() byte
}

// Challenge is the coordinator's opening message on every connection:
// it announces the protocol version, carries the nonce the worker's
// hello must MAC, and tells the worker the heartbeat cadence so both
// sides agree on liveness deadlines. PingMs/CutoffMs of 0 mean
// heartbeats are disabled for the session.
type Challenge struct {
	Version  int    `json:"version"`
	Nonce    string `json:"nonce"`
	PingMs   int    `json:"ping_ms"`
	CutoffMs int    `json:"cutoff_ms"`
}

// Hello answers the challenge: protocol version, the worker's name, and
// the HMAC-SHA256 of the challenge nonce and the name under the shared
// token. An empty token on both sides still produces matching MACs, so
// unauthenticated deployments pay nothing; a token mismatch (or a
// replayed hello — the nonce is fresh per conn) yields a reject.
type Hello struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	MAC     string `json:"mac,omitempty"`
}

// Reject refuses a session; the coordinator closes the conn after
// sending it. Reason is human-readable and deliberately vague about
// auth specifics.
type Reject struct {
	Reason string `json:"reason"`
}

// Ping is the coordinator's liveness probe; a responsive worker answers
// with a Pong echoing Seq even while a shard is computing (the worker's
// reader goroutine answers out of band).
type Ping struct {
	Seq int `json:"seq"`
}

// Pong answers a ping.
type Pong struct {
	Seq int `json:"seq"`
}

// helloMAC computes the challenge answer: HMAC-SHA256 over nonce and
// worker name under the shared token, hex-encoded. The name is bound in
// so a MAC cannot be replayed for a different identity even within the
// nonce's lifetime.
func helloMAC(token, nonce, name string) string {
	mac := hmac.New(sha256.New, []byte(token))
	mac.Write([]byte(nonce))
	mac.Write([]byte{0})
	mac.Write([]byte(name))
	return hex.EncodeToString(mac.Sum(nil))
}

// verifyHello checks a hello's MAC against the nonce this conn was
// challenged with, in constant time.
func verifyHello(token, nonce string, h *Hello) bool {
	return hmac.Equal([]byte(h.MAC), []byte(helloMAC(token, nonce, h.Name)))
}

// Prepare is the warm-worker step of a campaign: sent right after the
// hello, before the first assignment, it names the frame lengths whose
// phy tables (SNR→PER curves, airtime costs) the worker should build
// now. The tables live in process-global caches, so one prepare warms
// every assignment the worker will run in the campaign; without it each
// first-touch trial pays the LUT construction inside its hot loop.
// Prepare is advisory — a worker that ignores it is merely slower.
type Prepare struct {
	// Frames lists payload lengths in bytes.
	Frames []int `json:"frames"`
}

// Assign hands one shard of one job to a worker. Job identifies the
// campaign job the shard belongs to (0 for single-experiment runs);
// every reply about the shard echoes it, so one worker can interleave
// shards of different experiments within a campaign. Workers bounds the
// goroutines the worker fans the shard's trials across (0 = worker's
// choice).
type Assign struct {
	Job        int     `json:"job"`
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Workers    int     `json:"workers"`
	Shard      int     `json:"shard"`
	Shards     int     `json:"shards"`
}

// LoopResult streams one completed trial loop of the shard a worker is
// executing; loops arrive in execution order and ShardDone follows the
// last one.
type LoopResult struct {
	Job   int                      `json:"job"`
	Shard int                      `json:"shard"`
	Loop  *experiments.LoopPartial `json:"loop"`
}

// ShardDone reports the current shard complete (every loop streamed).
type ShardDone struct {
	Job   int `json:"job"`
	Shard int `json:"shard"`
}

// ShardError reports the current shard failed; the coordinator decides
// whether to retry it elsewhere.
type ShardError struct {
	Job   int    `json:"job"`
	Shard int    `json:"shard"`
	Msg   string `json:"msg"`
}

// Stop tells a worker the run is over.
type Stop struct{}

func (*Challenge) kind() byte  { return kindChallenge }
func (*Hello) kind() byte      { return kindHello }
func (*Reject) kind() byte     { return kindReject }
func (*Prepare) kind() byte    { return kindPrepare }
func (*Assign) kind() byte     { return kindAssign }
func (*LoopResult) kind() byte { return kindLoop }
func (*ShardDone) kind() byte  { return kindShardDone }
func (*ShardError) kind() byte { return kindShardErr }
func (*Stop) kind() byte       { return kindStop }
func (*Ping) kind() byte       { return kindPing }
func (*Pong) kind() byte       { return kindPong }

// EncodeMessage serializes a message to a frame payload (kind byte +
// JSON body).
func EncodeMessage(m Message) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding %T: %w", m, err)
	}
	out := make([]byte, 0, 1+len(body))
	out = append(out, m.kind())
	return append(out, body...), nil
}

// DecodeMessage parses a frame payload. Malformed input — unknown kind,
// broken JSON, structurally invalid fields — returns an error; decoding
// never panics, whatever the bytes.
func DecodeMessage(payload []byte) (Message, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("cluster: empty message")
	}
	body := payload[1:]
	switch payload[0] {
	case kindChallenge:
		var m Challenge
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding challenge: %w", err)
		}
		if m.Version != ProtoVersion {
			return nil, fmt.Errorf("cluster: protocol version %d, want %d", m.Version, ProtoVersion)
		}
		if m.PingMs < 0 || m.CutoffMs < 0 {
			return nil, fmt.Errorf("cluster: challenge carries negative heartbeat params %d/%d", m.PingMs, m.CutoffMs)
		}
		return &m, nil
	case kindHello:
		var m Hello
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding hello: %w", err)
		}
		if m.Version != ProtoVersion {
			return nil, fmt.Errorf("cluster: protocol version %d, want %d", m.Version, ProtoVersion)
		}
		return &m, nil
	case kindPrepare:
		var m Prepare
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding prepare: %w", err)
		}
		for _, f := range m.Frames {
			if f <= 0 {
				return nil, fmt.Errorf("cluster: prepare names non-positive frame length %d", f)
			}
		}
		return &m, nil
	case kindAssign:
		var m Assign
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding assign: %w", err)
		}
		if m.Experiment == "" {
			return nil, fmt.Errorf("cluster: assign names no experiment")
		}
		if m.Job < 0 {
			return nil, fmt.Errorf("cluster: assign carries negative job %d", m.Job)
		}
		if sh := (parallel.Shard{Index: m.Shard, Count: m.Shards}); !sh.Valid() {
			return nil, fmt.Errorf("cluster: assign carries invalid shard %d/%d", m.Shard, m.Shards)
		}
		return &m, nil
	case kindLoop:
		var m LoopResult
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding loop result: %w", err)
		}
		if m.Job < 0 {
			return nil, fmt.Errorf("cluster: loop result for negative job %d", m.Job)
		}
		if m.Shard < 0 {
			return nil, fmt.Errorf("cluster: loop result for negative shard %d", m.Shard)
		}
		if m.Loop == nil {
			return nil, fmt.Errorf("cluster: loop result carries no loop")
		}
		return &m, nil
	case kindShardDone:
		var m ShardDone
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding shard done: %w", err)
		}
		if m.Job < 0 {
			return nil, fmt.Errorf("cluster: done for negative job %d", m.Job)
		}
		if m.Shard < 0 {
			return nil, fmt.Errorf("cluster: done for negative shard %d", m.Shard)
		}
		return &m, nil
	case kindShardErr:
		var m ShardError
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding shard error: %w", err)
		}
		if m.Job < 0 {
			return nil, fmt.Errorf("cluster: error for negative job %d", m.Job)
		}
		if m.Shard < 0 {
			return nil, fmt.Errorf("cluster: error for negative shard %d", m.Shard)
		}
		return &m, nil
	case kindStop:
		var m Stop
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding stop: %w", err)
		}
		return &m, nil
	case kindReject:
		var m Reject
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding reject: %w", err)
		}
		return &m, nil
	case kindPing:
		var m Ping
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding ping: %w", err)
		}
		return &m, nil
	case kindPong:
		var m Pong
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("cluster: decoding pong: %w", err)
		}
		return &m, nil
	}
	return nil, fmt.Errorf("cluster: unknown message kind %q", payload[0])
}
