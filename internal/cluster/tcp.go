package cluster

import (
	"fmt"
	"net"
)

// TCPTransport accepts workers over TCP: the coordinator listens, each
// worker process dials in (DialTCP + Serve, or `hintshard -connect`),
// and frames flow over the connection. Unlike the fixed-size local
// transports, Accept keeps accepting until Close — a fleet can grow
// mid-run and late workers simply start stealing from the queue.
type TCPTransport struct {
	ln net.Listener
}

// ListenTCP starts a coordinator listener on addr (e.g. ":7432" or
// "127.0.0.1:0" to pick a free port; see Addr).
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	return &TCPTransport{ln: ln}, nil
}

// Addr returns the bound address (the resolved port when addr ended in
// ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) Accept() (Conn, error) {
	c, err := t.ln.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newStreamConn(c, c, c.Close), nil
}

func (t *TCPTransport) Close() error { return t.ln.Close() }

// DialTCP connects a worker to a coordinator at addr.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: connect %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newStreamConn(c, c, c.Close), nil
}
