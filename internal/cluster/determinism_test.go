package cluster

import (
	"runtime"
	"testing"

	"repro/internal/experiments"
)

// TestReportsIdenticalAcrossTransportsAndWorkers is the cluster
// runtime's golden test, extending the engine's determinism contract to
// its final form: for every registered experiment, running through the
// work-stealing coordinator must reproduce the single-process report
// byte for byte across every transport {in-process, subprocess, TCP} ×
// worker count {1, 2, 3, NumCPU} — with the shard queue deliberately
// longer than the worker pool so assignment order, steal decisions, and
// speculative duplicates all vary run to run. Nothing but wall-clock
// may depend on any of it.
func TestReportsIdenticalAcrossTransportsAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	transports := []string{"inproc", "subprocess", "tcp"}
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	if underRace {
		// One concurrent configuration per transport suffices for the
		// detector.
		workerCounts = []int{2}
	}
	seen := map[int]bool{}
	var counts []int
	for _, w := range workerCounts {
		if !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	for _, exp := range experiments.All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
			for _, workers := range counts {
				// More shards than workers: the queue is always deep
				// enough that work-stealing and dynamic assignment have
				// room to happen.
				shards := 2*workers + 1
				for _, transport := range transports {
					rep, _ := clusterRun(t, transport, exp.ID, workers, shards, false)
					if got := rep.String(); got != base {
						t.Errorf("report differs from single-process run via %s with %d workers, %d shards:\n--- single ---\n%s\n--- cluster ---\n%s",
							transport, workers, shards, base, got)
					}
				}
			}
		})
	}
}

// TestReportsIdenticalWithWorkerKilledMidShard completes the golden
// matrix's failure leg: one worker dies mid-shard (assignment received,
// never answered) on every transport, its shard is stolen back and
// re-dispatched, and the report still must not drift by a byte.
func TestReportsIdenticalWithWorkerKilledMidShard(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	transports := []string{"inproc", "subprocess", "tcp"}
	if underRace {
		transports = []string{"inproc"}
	}
	for _, exp := range experiments.All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
			for _, transport := range transports {
				rep, stats := clusterRun(t, transport, exp.ID, 2, 5, true)
				if got := rep.String(); got != base {
					t.Errorf("report differs after mid-shard kill via %s:\n--- single ---\n%s\n--- cluster ---\n%s",
						transport, base, got)
				}
				// The orphaned shard is recovered one of two ways: requeued
				// after the death is observed, or already stolen by a
				// worker that drained the queue first.
				if stats.Requeued+stats.Stolen < 1 {
					t.Errorf("%s: killed worker's shard was neither requeued nor stolen (stats %+v)", transport, stats)
				}
			}
		})
	}
}
