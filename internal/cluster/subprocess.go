package cluster

import (
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"
)

// subprocessTransport spawns worker processes on this machine and talks
// frames over their stdin/stdout pipes — the successor of the original
// hintshard spawn path, reframed: instead of one process per shard fixed
// up front, each process is a long-lived worker that pulls shards from
// the coordinator's queue until the run completes.
type subprocessTransport struct {
	n       int
	command func(i int) *exec.Cmd

	mu      sync.Mutex
	spawned int
	procs   []*procConn
	closed  bool
}

// NewSubprocess returns a transport of n worker processes; command
// builds the i-th worker invocation (typically this binary re-executed
// in its stdio-worker mode, with Stderr already wired through).
// Processes spawn lazily, one per Accept; after n accepts, Accept
// returns io.EOF.
func NewSubprocess(n int, command func(i int) *exec.Cmd) Transport {
	return &subprocessTransport{n: n, command: command}
}

func (t *subprocessTransport) Accept() (Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.spawned >= t.n {
		return nil, io.EOF
	}
	i := t.spawned
	t.spawned++
	cmd := t.command(i)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %d stdin: %w", i, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %d stdout: %w", i, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: starting worker %d: %w", i, err)
	}
	p := &procConn{cmd: cmd, stdin: stdin}
	p.streamConn = newStreamConn(stdout, stdin, p.shutdown)
	t.procs = append(t.procs, p)
	return p, nil
}

func (t *subprocessTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	// Close in parallel: each close may wait out the stop grace of a
	// still-live worker, and those waits must not serialize.
	var wg sync.WaitGroup
	for _, p := range t.procs {
		wg.Add(1)
		go func(p *procConn) {
			defer wg.Done()
			p.Close()
		}(p)
	}
	wg.Wait()
	return nil
}

// procConn is a subprocess-backed connection. Closing it reaps the
// process; ExitCode then reports how it died, so a coordinator can
// propagate a failed worker's exit status.
type procConn struct {
	*streamConn
	cmd   *exec.Cmd
	stdin io.WriteCloser

	waitOnce sync.Once
	exit     int
}

// stopGrace is how long a worker gets to exit on its own after its
// stdin closes before it is killed. A stopped worker exits immediately
// (it has already read the Stop frame, or sees the stdin EOF on its
// next Recv); the grace only runs out on a hung one.
const stopGrace = 3 * time.Second

// shutdown closes the worker's stdin (its cue to exit if it is still
// alive and well-behaved), waits briefly for a clean exit, kills it if
// that does not happen, and reaps it.
func (p *procConn) shutdown() error {
	p.waitOnce.Do(func() {
		p.stdin.Close()
		done := make(chan struct{})
		go func() {
			p.cmd.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(stopGrace):
			if p.cmd.Process != nil {
				p.cmd.Process.Kill()
			}
			<-done
		}
		p.exit = p.cmd.ProcessState.ExitCode()
	})
	return nil
}

// ExitCode returns the worker process's exit code, reaping it first if
// needed (-1 while unstarted or when killed by signal).
func (p *procConn) ExitCode() int {
	p.shutdown()
	return p.exit
}
