package cluster

import (
	"bufio"
	"io"
	"sync"

	"repro/internal/stats"
)

// maxFrame bounds one protocol message on the wire, deferring to the
// frame layer's own limit as the single source of truth. Loop records
// carry per-trial collector payloads, so they can reach megabytes at
// paper scale; a gigabyte means a corrupted length prefix, not a bigger
// experiment.
const maxFrame = stats.MaxFrame

// Conn is one bidirectional, ordered protocol stream between a
// coordinator and a worker. Send and Recv are each safe for one
// concurrent caller (the runtime uses one sender and one reader per
// connection); Close unblocks both.
type Conn interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

// Transport delivers worker connections to a coordinator.
type Transport interface {
	// Accept blocks until the next worker connects. It returns io.EOF
	// when no further workers can ever arrive (a fixed-size local or
	// subprocess pool is exhausted, or the transport was closed).
	Accept() (Conn, error)
	// Close releases the transport (listeners, spawned processes).
	// Connections already accepted stay open until individually closed.
	Close() error
}

// streamConn frames messages over any ordered byte stream — a TCP
// connection, a subprocess pipe pair, stdio. Every transport routes
// through it, so the frame and message codecs are exercised identically
// everywhere.
type streamConn struct {
	r  *bufio.Reader
	w  *bufio.Writer
	wg sync.Mutex

	closeOnce sync.Once
	closeErr  error
	close     func() error
}

// newStreamConn wraps a read stream, a write stream, and a close
// function (which must unblock pending reads) into a Conn.
func newStreamConn(r io.Reader, w io.Writer, close func() error) *streamConn {
	return &streamConn{r: bufio.NewReader(r), w: bufio.NewWriter(w), close: close}
}

func (c *streamConn) Send(m Message) error {
	payload, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	c.wg.Lock()
	defer c.wg.Unlock()
	if err := stats.WriteFrame(c.w, payload); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *streamConn) Recv() (Message, error) {
	payload, err := stats.ReadFrame(c.r, maxFrame)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(payload)
}

func (c *streamConn) Close() error {
	c.closeOnce.Do(func() {
		if c.close != nil {
			c.closeErr = c.close()
		}
	})
	return c.closeErr
}
