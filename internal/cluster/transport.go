package cluster

import (
	"bufio"
	"io"
	"sync"
	"time"

	"repro/internal/stats"
)

// maxFrame bounds one protocol message on the wire, deferring to the
// frame layer's own limit as the single source of truth. Loop records
// carry per-trial collector payloads, so they can reach megabytes at
// paper scale; a gigabyte means a corrupted length prefix, not a bigger
// experiment.
const maxFrame = stats.MaxFrame

// Conn is one bidirectional, ordered protocol stream between a
// coordinator and a worker. Send is safe for concurrent callers (the
// worker's reader goroutine answers pings while the main loop streams
// results); Recv is safe for one concurrent caller; Close unblocks
// both.
type Conn interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

// Transport delivers worker connections to a coordinator.
type Transport interface {
	// Accept blocks until the next worker connects. It returns io.EOF
	// when no further workers can ever arrive (a fixed-size local or
	// subprocess pool is exhausted, or the transport was closed).
	Accept() (Conn, error)
	// Close releases the transport (listeners, spawned processes).
	// Connections already accepted stay open until individually closed.
	Close() error
}

// readDeadliner / writeDeadliner are satisfied by every underlying
// stream the transports use: net.Conn (TCP), net.Pipe (in-process), and
// *os.File pipes (subprocess stdio, pollable on Linux). Streams that
// lack deadline support — or return os.ErrNoDeadline — simply run
// without per-message timeouts; the heartbeat layer still bounds how
// long a silent peer is tolerated.
type readDeadliner interface {
	SetReadDeadline(time.Time) error
}

type writeDeadliner interface {
	SetWriteDeadline(time.Time) error
}

// timeoutSetter is the optional Conn capability the coordinator and
// worker use to arm per-message deadlines; streamConn (and everything
// embedding it) implements it.
type timeoutSetter interface {
	// SetTimeouts arms per-message read/write deadlines (0 disables
	// either). Must be called before concurrent Send/Recv traffic
	// starts — in practice, during the handshake.
	SetTimeouts(read, write time.Duration)
}

// streamConn frames messages over any ordered byte stream — a TCP
// connection, a subprocess pipe pair, stdio. Every transport routes
// through it, so the frame and message codecs are exercised identically
// everywhere. Each direction carries an independent rolling CRC32C
// chain (stats.WriteFrameSum/ReadFrameSum): rsum/wsum thread the chain
// state frame to frame, so corruption, drops, duplicates, and reorders
// on the stream all surface as stats.ErrChecksum at the reader.
type streamConn struct {
	r    *bufio.Reader
	w    *bufio.Writer
	wg   sync.Mutex
	rsum uint32 // reader-side chain state (single reader, no lock)
	wsum uint32 // writer-side chain state (guarded by wg)

	rd readDeadliner // non-nil when the read stream supports deadlines
	wd writeDeadliner

	readTimeout  time.Duration // per-message budgets; 0 = no deadline
	writeTimeout time.Duration

	faults *ConnFaults // non-nil when fault injection is active (guarded by wg)

	closeOnce sync.Once
	closeErr  error
	close     func() error
}

// newStreamConn wraps a read stream, a write stream, and a close
// function (which must unblock pending reads) into a Conn. Deadline
// support is detected by interface assertion on the raw streams.
func newStreamConn(r io.Reader, w io.Writer, close func() error) *streamConn {
	c := &streamConn{r: bufio.NewReader(r), w: bufio.NewWriter(w), close: close}
	c.rd, _ = r.(readDeadliner)
	c.wd, _ = w.(writeDeadliner)
	return c
}

// stream exposes the underlying streamConn; embedding types (procConn)
// inherit it, which is how InjectFaults reaches the frame layer of any
// transport's conns.
func (c *streamConn) stream() *streamConn { return c }

// SetTimeouts arms per-message deadlines. Not safe concurrently with
// in-flight Send/Recv; both runtimes call it during the handshake, with
// one goroutine touching the conn.
func (c *streamConn) SetTimeouts(read, write time.Duration) {
	c.readTimeout, c.writeTimeout = read, write
}

func (c *streamConn) Send(m Message) error {
	payload, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	c.wg.Lock()
	defer c.wg.Unlock()
	if c.wd != nil && c.writeTimeout > 0 {
		c.wd.SetWriteDeadline(time.Now().Add(c.writeTimeout))
		defer c.wd.SetWriteDeadline(time.Time{})
	}
	if c.faults != nil {
		return c.sendFaulty(payload)
	}
	sum, err := stats.WriteFrameSum(c.w, payload, c.wsum)
	if err != nil {
		return err
	}
	c.wsum = sum
	return c.w.Flush()
}

func (c *streamConn) Recv() (Message, error) {
	if c.rd != nil && c.readTimeout > 0 {
		c.rd.SetReadDeadline(time.Now().Add(c.readTimeout))
	}
	payload, sum, err := stats.ReadFrameSum(c.r, maxFrame, c.rsum)
	if err != nil {
		return nil, err
	}
	c.rsum = sum
	return DecodeMessage(payload)
}

func (c *streamConn) Close() error {
	c.closeOnce.Do(func() {
		if c.close != nil {
			c.closeErr = c.close()
		}
	})
	return c.closeErr
}
