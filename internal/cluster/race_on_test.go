//go:build race

package cluster

// underRace lets the registry-wide determinism matrix shrink when the
// race detector (≈10× slowdown) is on: the interleavings the detector
// needs happen at any scale.
const underRace = true
