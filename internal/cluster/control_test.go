package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// gatedTransport delays worker arrival until gate is closed, so tests
// can mutate a running campaign while the scheduler is provably
// quiescent (no dispatch can race the mutation: there is nobody to
// dispatch to).
type gatedTransport struct {
	inner Transport
	gate  chan struct{}
}

func (g *gatedTransport) Accept() (Conn, error) {
	<-g.gate
	return g.inner.Accept()
}

func (g *gatedTransport) Close() error { return g.inner.Close() }

// waitSnapshot polls the control's snapshot feed until cond holds; the
// loop publishes after every event, so anything acknowledged through a
// mutation reply becomes visible promptly.
func waitSnapshot(t *testing.T, ctl *Control, what string, cond func(*Snapshot) bool) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := ctl.Snapshot(); s != nil && cond(s) {
			return s
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("snapshot never showed %s (last: %+v)", what, ctl.Snapshot())
	return nil
}

// TestControlSubmitCancelLifecycle drives the full mutation surface
// against a live campaign: validation rejections, a successful submit
// and cancel while no worker has connected yet, then — after the fleet
// is released — completion with the cancelled job never emitted, and
// ErrNotRunning for every mutation after the end.
func TestControlSubmitCancelLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	inner := NewInProcess(2, func(i int, c Conn) {
		Serve(c, ServeOptions{Name: fmt.Sprintf("w%d", i), Workers: 1})
	})
	gate := make(chan struct{})
	tr := &gatedTransport{inner: inner, gate: gate}
	ctl := NewControl()

	jobs := []Job{{Experiment: "fig2-2", Scale: 0.1, Seed: 42, Shards: 3}}
	type emit struct {
		ji  int
		exp string
		rep string
	}
	var emits []emit
	var stats RunStats
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		stats, runErr = RunCampaign(tr, jobs, CampaignOptions{
			ShardWorkers: 1,
			Retries:      3,
			Control:      ctl,
			OnReport: func(ji int, j Job, rep *experiments.Report) error {
				emits = append(emits, emit{ji, j.Experiment, rep.String()})
				return nil
			},
		})
	}()

	// Validation rejections answer through the loop without changing it.
	if _, err := ctl.Submit(Job{Experiment: "no-such", Shards: 2}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown experiment submit: %v", err)
	}
	if _, err := ctl.Submit(Job{Experiment: "fig2-2", Scale: 0.1, Seed: 7}); err == nil || !strings.Contains(err.Error(), "shard count") {
		t.Fatalf("zero-shard submit: %v", err)
	}
	if err := ctl.Cancel(5); err == nil || !strings.Contains(err.Error(), "no job 5") {
		t.Fatalf("cancel of unknown job: %v", err)
	}

	// Real mutations: one job admitted, a second admitted then
	// withdrawn, all before any worker exists.
	ji, err := ctl.Submit(Job{Experiment: "fig3-1", Scale: 0.1, Seed: 42, Shards: 2})
	if err != nil || ji != 1 {
		t.Fatalf("submit = (%d, %v), want job 1", ji, err)
	}
	ji, err = ctl.Submit(Job{Experiment: "fig2-2", Scale: 0.1, Seed: 7, Shards: 2})
	if err != nil || ji != 2 {
		t.Fatalf("second submit = (%d, %v), want job 2", ji, err)
	}
	if err := ctl.Cancel(2); err != nil {
		t.Fatalf("cancel job 2: %v", err)
	}
	if err := ctl.Cancel(2); err == nil || !strings.Contains(err.Error(), "already cancelled") {
		t.Fatalf("double cancel: %v", err)
	}

	snap := waitSnapshot(t, ctl, "3 jobs with job 2 cancelled", func(s *Snapshot) bool {
		return len(s.Jobs) == 3 && s.Jobs[2].State == "cancelled"
	})
	if snap.Stats.Submitted != 2 || snap.Stats.Cancelled != 1 {
		t.Errorf("live stats submitted=%d cancelled=%d, want 2/1", snap.Stats.Submitted, snap.Stats.Cancelled)
	}
	if snap.Jobs[1].State != "queued" || snap.Jobs[1].Queued != 2 {
		t.Errorf("submitted job not queued in snapshot: %+v", snap.Jobs[1])
	}

	// Release the fleet; the campaign must now run jobs 0 and 1 to
	// completion and never emit the cancelled job 2.
	close(gate)
	<-done
	if runErr != nil {
		t.Fatalf("campaign: %v", runErr)
	}
	if len(emits) != 2 || emits[0].ji != 0 || emits[1].ji != 1 || emits[1].exp != "fig3-1" {
		t.Fatalf("emitted %+v, want jobs 0 and 1 in order", emits)
	}
	for _, e := range emits {
		var j Job
		if e.ji == 0 {
			j = jobs[0]
		} else {
			j = Job{Experiment: "fig3-1", Scale: 0.1, Seed: 42, Shards: 2}
		}
		exp, _ := experiments.ByID(j.Experiment)
		want := exp.Run(experiments.Config{Scale: j.Scale, Seed: j.Seed, Workers: 1}).String()
		if e.rep != want {
			t.Errorf("job %d report differs from standalone run", e.ji)
		}
	}
	if stats.Submitted != 2 || stats.Cancelled != 1 {
		t.Errorf("final stats submitted=%d cancelled=%d, want 2/1", stats.Submitted, stats.Cancelled)
	}

	// The control is now a closed valve: Done fired, the final snapshot
	// is marked, and every further mutation fails fast.
	select {
	case <-ctl.Done():
	default:
		t.Error("Done() not closed after the campaign finished")
	}
	final := ctl.Snapshot()
	if final == nil || !final.Done {
		t.Errorf("final snapshot not marked done: %+v", final)
	}
	if final.Jobs[0].State != "done" || final.Jobs[1].State != "done" || final.Jobs[2].State != "cancelled" {
		t.Errorf("final job states %q %q %q, want done/done/cancelled",
			final.Jobs[0].State, final.Jobs[1].State, final.Jobs[2].State)
	}
	if _, err := ctl.Submit(Job{Experiment: "fig2-2", Scale: 0.1, Seed: 1, Shards: 1}); !errors.Is(err, ErrNotRunning) {
		t.Errorf("submit after end: %v, want ErrNotRunning", err)
	}
	if err := ctl.Cancel(0); !errors.Is(err, ErrNotRunning) {
		t.Errorf("cancel after end: %v, want ErrNotRunning", err)
	}

	// A Control binds to exactly one campaign.
	if _, err := RunCampaign(NewInProcess(0, nil), jobs, CampaignOptions{ShardWorkers: 1, Control: ctl}); err == nil || !strings.Contains(err.Error(), "already attached") {
		t.Errorf("control reuse: %v, want attach error", err)
	}
}

// TestControlUnattachedMutationsDoNotHang pins the failure mode of a
// control plane wired to a campaign that already exited (or never
// started): mutations must fail fast once finish ran, not block on the
// unserviced request channel.
func TestControlUnattachedMutationsDoNotHang(t *testing.T) {
	ctl := NewControl()
	ctl.finish()
	if _, err := ctl.Submit(Job{Experiment: "fig2-2", Shards: 1}); !errors.Is(err, ErrNotRunning) {
		t.Errorf("submit on finished control: %v", err)
	}
	if err := ctl.Cancel(0); !errors.Is(err, ErrNotRunning) {
		t.Errorf("cancel on finished control: %v", err)
	}
	if ctl.Snapshot() != nil {
		t.Error("unattached control has a snapshot")
	}
}
