package cluster

import (
	"testing"

	"repro/internal/experiments"
)

// subTrialExperiments are the heavy runners that used to pin a whole
// trial (or the whole experiment) to one worker; since the sub-trial
// decomposition their trial spaces are Cells×Units grids that genuinely
// spread across a fleet. The generic golden tests already sweep them as
// part of the registry; the tests here pin the intra-trial claims from
// the issue — real multi-shard dispatch on a four-worker fleet, and
// byte-identity surviving a worker killed while holding a sub-trial
// chunk.
var subTrialExperiments = []string{"fig3-5", "fig3-6", "fig3-7", "fig4-4", "fig4-5", "fig4-6"}

// TestSubTrialExperimentsSpreadAcrossFleet: each restructured heavy
// experiment, run over a four-worker in-process fleet with four shards,
// must dispatch more than one shard (the fleet actually divides the
// former single trial) and still reproduce the single-process report
// byte for byte.
func TestSubTrialExperimentsSpreadAcrossFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, id := range subTrialExperiments {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			exp, ok := experiments.ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %q", id)
			}
			base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
			rep, stats := clusterRun(t, "inproc", id, 4, 4, false)
			if got := rep.String(); got != base {
				t.Errorf("report differs from single-process run on a 4-worker fleet:\n--- single ---\n%s\n--- cluster ---\n%s", base, got)
			}
			if stats.Assigned < 2 {
				t.Errorf("%s dispatched %d shard assignments on a 4-worker fleet; the sub-trial plan is not spreading", id, stats.Assigned)
			}
		})
	}
}

// TestSubTrialReportsIdenticalWithWorkerKilledMidSubTrial: a worker
// dies holding a sub-trial chunk (assignment received, never answered)
// on every transport; the chunk is re-dispatched and the report must
// not drift by a byte — the regenerate-and-replay recovery path costs
// wall clock only.
func TestSubTrialReportsIdenticalWithWorkerKilledMidSubTrial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	transports := []string{"inproc", "subprocess", "tcp"}
	if underRace {
		transports = []string{"inproc"}
	}
	// One windowed tracker and one protocol-grid experiment cover both
	// sub-trial shapes; the registry-wide kill test sweeps the rest.
	for _, id := range []string{"fig3-7", "fig4-6"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			exp, ok := experiments.ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %q", id)
			}
			base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
			for _, transport := range transports {
				rep, stats := clusterRun(t, transport, id, 4, 4, true)
				if got := rep.String(); got != base {
					t.Errorf("report differs after mid-sub-trial kill via %s:\n--- single ---\n%s\n--- cluster ---\n%s",
						transport, base, got)
				}
				if stats.Requeued+stats.Stolen < 1 {
					t.Errorf("%s: killed worker's sub-trial chunk was neither requeued nor stolen (stats %+v)", transport, stats)
				}
			}
		})
	}
}
