package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

// Options configures one coordinated run.
type Options struct {
	// Experiment, Seed, Scale identify the run; every assignment carries
	// them, so any worker's shard k/K output is interchangeable with any
	// other worker's.
	Experiment string
	Seed       int64
	Scale      float64
	// Shards is the queue length K. Keep it a few times the worker count
	// so a straggler holds back one small shard, not 1/workers of the
	// run; the report is byte-identical for every K ≥ 1.
	Shards int
	// ShardWorkers bounds the goroutines each assignment fans across
	// inside its worker (0 = the worker decides).
	ShardWorkers int
	// MergeWorkers bounds the merged finish phase's in-process
	// parallelism (0 = one per CPU).
	MergeWorkers int
	// Retries is the failure budget per shard: a shard abandoned by a
	// dying worker or reported failed re-dispatches up to Retries times
	// before the run aborts. Negative means no retries.
	Retries int
	// NoSteal disables speculative re-dispatch of in-flight shards to
	// idle workers. Stealing is on by default: a duplicate costs only
	// wasted cycles (bytes are identical either way and the first result
	// wins) and caps straggler latency.
	NoSteal bool
	// DrainTimeout bounds how long the coordinator waits, after the last
	// shard completes, for speculative losers to finish their shard and
	// exit the protocol cleanly; a worker still busy past the deadline
	// is cut off (its result was already discarded). 0 means a minute.
	DrainTimeout time.Duration
	// Logf, if set, receives progress lines (dispatches, steals, worker
	// deaths).
	Logf func(format string, args ...any)
}

// RunStats summarizes the dispatch history of one run.
type RunStats struct {
	// Workers counts connections that completed the hello handshake.
	Workers int
	// Assigned counts ordinary dispatches; Stolen counts speculative
	// re-dispatches of in-flight shards; Requeued counts failures
	// charged to shards by worker death or error; Discarded counts
	// shard results that lost a speculation race and were thrown away.
	Assigned, Stolen, Requeued, Discarded int
}

// WorkerExitError reports that the run failed after a worker process
// exited abnormally; cmd/hintshard propagates the code so the operator
// sees the worker's exit status, not a generic failure.
type WorkerExitError struct {
	Code int
	Err  error
}

func (e *WorkerExitError) Error() string { return e.Err.Error() }
func (e *WorkerExitError) Unwrap() error { return e.Err }

// exitCoder is implemented by connections that can report how their
// worker process exited (the subprocess transport).
type exitCoder interface{ ExitCode() int }

// workerState is the coordinator's view of one connection. All fields
// are owned by the coordinator loop; the sender and reader goroutines
// touch only conn and out.
type workerState struct {
	conn Conn
	id   int
	name string
	// cur is the in-flight shard index, -1 when idle.
	cur   int
	loops []*experiments.LoopPartial
	// out feeds the connection's sender goroutine; closed on teardown.
	// The sender closes conn after draining, so a Stop queued before
	// teardown still reaches the worker.
	out     chan Message
	helloed bool
	stopped bool
	dead    bool
}

// event is one input to the coordinator's single-threaded state
// machine: a new connection (msg and err nil), a message, a dead
// connection (err set), or the end of the accept loop (w nil).
type event struct {
	w   *workerState
	msg Message
	err error
}

// Run executes one experiment over the transport's workers and returns
// the merged report. The shard queue holds Options.Shards shards; each
// worker pulls the next shard when it goes idle, shards lost to dying
// workers re-dispatch within the retry budget, and idle workers steal
// in-flight shards from stragglers. Because every shard's partial is a
// pure function of (experiment, seed, scale, k/K) and the completed
// shard set feeds experiments.MergeShards unchanged, the report is
// byte-identical to the single-process run whatever the transport,
// worker count, assignment order, or failure history.
func Run(t Transport, o Options) (*experiments.Report, RunStats, error) {
	var stats RunStats
	if o.Experiment == "" {
		return nil, stats, errors.New("cluster: no experiment to run")
	}
	if o.Shards < 1 {
		return nil, stats, fmt.Errorf("cluster: invalid shard count %d", o.Shards)
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	retries := o.Retries
	if retries < 0 {
		retries = 0
	}

	queue := parallel.NewShardQueue(o.Shards)
	partials := make([]*experiments.Partial, o.Shards)
	failures := make([]int, o.Shards)
	events := make(chan event, 256)
	var workers []*workerState
	var idle []*workerState
	acceptDone := false
	var acceptErr error
	var lastExit *WorkerExitError

	// Every producer goroutine (accept loop, per-connection reader and
	// sender) registers here; the drain phase at the end keeps consuming
	// events until all of them have exited, so none leaks blocked on the
	// channel.
	var producers sync.WaitGroup
	spawn := func(fn func()) {
		producers.Add(1)
		go func() {
			defer producers.Done()
			fn()
		}()
	}

	spawn(func() {
		id := 0
		for {
			c, err := t.Accept()
			if err != nil {
				events <- event{err: err}
				return
			}
			w := &workerState{conn: c, id: id, cur: -1, out: make(chan Message, 4)}
			id++
			events <- event{w: w}
		}
	})

	startWorker := func(w *workerState) {
		workers = append(workers, w)
		spawn(func() { // sender: owns the conn's write side and final close
			defer w.conn.Close()
			for m := range w.out {
				if err := w.conn.Send(m); err != nil {
					events <- event{w: w, err: err}
					return
				}
			}
		})
		spawn(func() { // reader
			for {
				m, err := w.conn.Recv()
				if err != nil {
					events <- event{w: w, err: err}
					return
				}
				events <- event{w: w, msg: m}
			}
		})
	}

	// teardown removes a worker from service. Graceful teardown lets the
	// sender flush queued messages (the Stop) before it closes the
	// connection; abrupt teardown closes immediately — off the event
	// loop, because closing a live subprocess worker waits out a stop
	// grace before killing it, and dispatch must not stall behind that.
	teardown := func(w *workerState, graceful bool) {
		if w.dead {
			return
		}
		w.dead = true
		close(w.out)
		if !graceful {
			go w.conn.Close()
		}
		for i, iw := range idle {
			if iw == w {
				idle = append(idle[:i], idle[i+1:]...)
				break
			}
		}
	}

	alive := func() int {
		n := 0
		for _, w := range workers {
			if !w.dead {
				n++
			}
		}
		return n
	}

	send := func(w *workerState, m Message) {
		if !w.dead {
			w.out <- m
		}
	}

	var abortErr error
	abort := func(err error) {
		if abortErr == nil {
			abortErr = err
		}
	}

	// The merge starts the moment the last shard completes, overlapping
	// the drain of speculative stragglers (workers still computing a
	// copy that already lost the race): they exit the protocol cleanly
	// while the finish phase runs, instead of serializing behind it.
	type mergeResult struct {
		rep *experiments.Report
		err error
	}
	mergeCh := make(chan mergeResult, 1)
	mergeStarted := false
	startMerge := func() {
		if mergeStarted {
			return
		}
		mergeStarted = true
		parts := make([]*experiments.Partial, 0, o.Shards)
		for k, p := range partials {
			if p == nil {
				mergeCh <- mergeResult{err: fmt.Errorf("cluster: internal error: shard %d/%d completed without a partial", k, o.Shards)}
				return
			}
			parts = append(parts, p)
		}
		go func() {
			rep, err := experiments.MergeShards(parts, o.MergeWorkers)
			mergeCh <- mergeResult{rep: rep, err: err}
		}()
	}

	// fail returns one lost dispatch of shard k to the queue. The
	// failure budget is charged — and, when exhausted, the run aborted —
	// only when no speculative copy of the shard is still computing: a
	// loss that stealing already covers is not a loss of progress.
	fail := func(k int, cause error) {
		// The dispatch always comes back, even for a completed shard —
		// Requeue on a done shard only fixes the live-copy accounting.
		live := queue.Requeue(k)
		if queue.Completed(k) {
			return
		}
		if live > 0 {
			logf("cluster: a copy of shard %d/%d failed, %d live copies remain: %v", k, o.Shards, live, cause)
			return
		}
		failures[k]++
		stats.Requeued++
		if failures[k] > retries {
			abort(fmt.Errorf("cluster: shard %d/%d failed %d times, last: %w", k, o.Shards, failures[k], cause))
			return
		}
		logf("cluster: requeueing shard %d/%d after failure %d/%d: %v", k, o.Shards, failures[k], retries, cause)
	}

	stopWorker := func(w *workerState) {
		if !w.stopped && !w.dead {
			w.stopped = true
			send(w, &Stop{})
		}
	}

	// dispatch hands the next shard to a free worker — from the queue
	// first, then by stealing from a straggler — or parks it idle.
	dispatch := func(w *workerState) {
		if w.dead || w.stopped || abortErr != nil {
			return
		}
		if queue.Done() {
			stopWorker(w)
			return
		}
		shard, ok := queue.Next()
		stolen := false
		if !ok && !o.NoSteal {
			shard, ok = queue.Steal()
			stolen = ok
		}
		if !ok {
			idle = append(idle, w)
			return
		}
		w.cur = shard.Index
		w.loops = nil
		if stolen {
			stats.Stolen++
			logf("cluster: worker %s stealing in-flight shard %v", w.name, shard)
		} else {
			stats.Assigned++
		}
		send(w, &Assign{
			Experiment: o.Experiment,
			Seed:       o.Seed,
			Scale:      o.Scale,
			Workers:    o.ShardWorkers,
			Shard:      shard.Index,
			Shards:     shard.Count,
		})
	}

	// pump re-dispatches parked workers after the queue refills.
	pump := func() {
		for len(idle) > 0 {
			w := idle[0]
			idle = idle[1:]
			before := len(idle)
			dispatch(w)
			if len(idle) > before {
				return // parked again: nothing left to hand out
			}
		}
	}

	// recordExit captures a dead worker process's exit code for error
	// propagation.
	recordExit := func(w *workerState) {
		if ec, ok := w.conn.(exitCoder); ok {
			if code := ec.ExitCode(); code > 0 {
				lastExit = &WorkerExitError{Code: code}
			}
		}
	}

	// violation drops a worker that broke the protocol and salvages its
	// shard.
	violation := func(w *workerState, why string) {
		logf("cluster: dropping worker %s: %s", w.name, why)
		cur := w.cur
		w.cur = -1
		teardown(w, false)
		if cur >= 0 {
			fail(cur, fmt.Errorf("worker %s dropped: %s", w.name, why))
			pump()
		}
	}

	// finished reports run completion: every shard merged and no live
	// worker still computing (speculative stragglers drain out cleanly
	// rather than seeing their connection vanish mid-shard).
	finished := func() bool {
		if !queue.Done() {
			return false
		}
		for _, w := range workers {
			if !w.dead && w.cur >= 0 {
				return false
			}
		}
		return true
	}

	// The drain deadline arms when the last shard completes: speculative
	// losers get that long to finish cleanly; a hung straggler cannot
	// hold the (already merged) run hostage.
	var drainDeadline <-chan time.Time
	armDrainDeadline := func() {
		if drainDeadline != nil {
			return
		}
		d := o.DrainTimeout
		if d <= 0 {
			d = time.Minute
		}
		drainDeadline = time.NewTimer(d).C
	}

	for abortErr == nil && !finished() {
		var ev event
		select {
		case ev = <-events:
		case <-drainDeadline:
			for _, w := range workers {
				if !w.dead && w.cur >= 0 {
					logf("cluster: cutting off straggler %s still computing discarded shard %d/%d after drain timeout", w.name, w.cur, o.Shards)
					queue.Requeue(w.cur) // completed shard: only returns the live copy
					w.cur = -1
					teardown(w, false)
				}
			}
			continue
		}
		switch {
		case ev.w == nil:
			// Accept loop ended. A fixed-size pool exhausting itself
			// (io.EOF) or the final transport Close are expected; a real
			// accept or spawn failure is kept for the stall diagnosis —
			// it is the root cause when no worker ever appears.
			acceptDone = true
			if ev.err != nil && ev.err != io.EOF && !errors.Is(ev.err, net.ErrClosed) {
				acceptErr = ev.err
				logf("cluster: transport stopped accepting workers: %v", ev.err)
			}
		case ev.err != nil:
			if ev.w.dead {
				break
			}
			cur := ev.w.cur
			ev.w.cur = -1
			teardown(ev.w, false)
			recordExit(ev.w)
			if cur >= 0 {
				logf("cluster: worker %s died holding shard %d/%d: %v", ev.w.name, cur, o.Shards, ev.err)
				fail(cur, fmt.Errorf("worker %s died: %w", ev.w.name, ev.err))
				pump()
			} else {
				logf("cluster: worker %s disconnected: %v", ev.w.name, ev.err)
			}
		case ev.msg == nil:
			startWorker(ev.w)
		default:
			w := ev.w
			if w.dead {
				break
			}
			switch m := ev.msg.(type) {
			case *Hello:
				if w.helloed {
					violation(w, "second hello")
					break
				}
				w.helloed = true
				w.name = m.Name
				stats.Workers++
				logf("cluster: worker %s connected", w.name)
				dispatch(w)
			case *LoopResult:
				if !w.helloed || m.Shard != w.cur {
					violation(w, fmt.Sprintf("loop result for shard %d while holding %d", m.Shard, w.cur))
					break
				}
				w.loops = append(w.loops, m.Loop)
			case *ShardDone:
				if !w.helloed || m.Shard != w.cur {
					violation(w, fmt.Sprintf("done for shard %d while holding %d", m.Shard, w.cur))
					break
				}
				loops := w.loops
				w.cur = -1
				w.loops = nil
				if queue.Complete(m.Shard) {
					partials[m.Shard] = &experiments.Partial{
						Version:    experiments.PartialVersion,
						Experiment: o.Experiment,
						Shard:      m.Shard,
						Shards:     o.Shards,
						Seed:       o.Seed,
						Scale:      o.Scale,
						Loops:      loops,
					}
				} else {
					stats.Discarded++
					logf("cluster: discarding duplicate result for shard %d/%d from %s", m.Shard, o.Shards, w.name)
				}
				if queue.Done() {
					startMerge()
					armDrainDeadline()
					// Release everyone who is not still draining a
					// speculative copy.
					for _, ww := range workers {
						if !ww.dead && ww.cur < 0 && ww != w {
							stopWorker(ww)
						}
					}
				}
				dispatch(w)
			case *ShardError:
				if !w.helloed || m.Shard != w.cur {
					violation(w, fmt.Sprintf("error for shard %d while holding %d", m.Shard, w.cur))
					break
				}
				w.cur = -1
				fail(m.Shard, fmt.Errorf("worker %s: %s", w.name, m.Msg))
				pump()
				dispatch(w)
			default:
				violation(w, fmt.Sprintf("unexpected %T", ev.msg))
			}
		}
		// Stall check: no shard can ever complete if every worker is
		// gone and no more can arrive.
		if abortErr == nil && acceptDone && alive() == 0 && !queue.Done() {
			pend, inflight, completed := queue.Counts()
			stall := fmt.Errorf("cluster: all workers gone with %d of %d shards incomplete (%d queued, %d in flight)",
				o.Shards-completed, o.Shards, pend, inflight)
			if acceptErr != nil {
				stall = fmt.Errorf("%w; transport stopped accepting workers: %w", stall, acceptErr)
			}
			abort(stall)
		}
	}

	graceful := abortErr == nil
	for _, w := range workers {
		stopWorker(w)
		teardown(w, graceful)
	}
	t.Close()
	// Drain events until every producer goroutine has exited, so none
	// stays blocked on the channel.
	allDone := make(chan struct{})
	go func() {
		producers.Wait()
		close(allDone)
	}()
	for draining := true; draining; {
		select {
		case <-events:
		case <-allDone:
			draining = false
		}
	}

	if abortErr != nil {
		if lastExit != nil {
			lastExit.Err = abortErr
			return nil, stats, lastExit
		}
		return nil, stats, abortErr
	}
	startMerge() // defensive: normally started by the final ShardDone
	m := <-mergeCh
	if m.err != nil {
		return nil, stats, m.err
	}
	return m.rep, stats, nil
}
