package cluster

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/phy"
	istats "repro/internal/stats"
)

// Job is one entry of a campaign: reproduce Experiment at Scale with
// Seed, its trial space split into Shards queued shards. Jobs run in
// submission order in the sense that fresh shards of job i always
// dispatch before fresh shards of job i+1 — but the moment job i's
// queue drains, idle workers flow into job i+1, so one job's stragglers
// overlap the next job's start instead of idling the fleet.
type Job struct {
	Experiment string
	Seed       int64
	Scale      float64
	// Shards is this job's queue length K. Keep it a few times the
	// worker count; the report is byte-identical for every K ≥ 1.
	Shards int
}

// Options configures one single-experiment coordinated run (Run); a
// campaign of several experiments through one fleet goes through
// RunCampaign.
type Options struct {
	// Experiment, Seed, Scale identify the run; every assignment carries
	// them, so any worker's shard k/K output is interchangeable with any
	// other worker's.
	Experiment string
	Seed       int64
	Scale      float64
	// Shards is the queue length K. Keep it a few times the worker count
	// so a straggler holds back one small shard, not 1/workers of the
	// run; the report is byte-identical for every K ≥ 1.
	Shards int
	// ShardWorkers bounds the goroutines each assignment fans across
	// inside its worker (0 = the worker decides).
	ShardWorkers int
	// MergeWorkers bounds the merged finish phase's in-process
	// parallelism (0 = one per CPU).
	MergeWorkers int
	// Retries is the failure budget per shard: a shard abandoned by a
	// dying worker or reported failed re-dispatches up to Retries times
	// before the run aborts. Negative means no retries.
	Retries int
	// NoSteal disables speculative re-dispatch of in-flight shards to
	// idle workers. Stealing is on by default: a duplicate costs only
	// wasted cycles (bytes are identical either way and the first result
	// wins) and caps straggler latency.
	NoSteal bool
	// DrainTimeout bounds how long the coordinator waits, after the last
	// shard completes, for speculative losers to finish their shard and
	// exit the protocol cleanly; a worker still busy past the deadline
	// is cut off (its result was already discarded). 0 means a minute.
	DrainTimeout time.Duration
	// Token is the shared secret workers must prove knowledge of in the
	// hello handshake (HMAC over the per-conn challenge nonce). Empty
	// admits workers with an empty token — the trusted-LAN default.
	Token string
	// HeartbeatInterval is the coordinator→worker ping cadence, and
	// HeartbeatMisses the budget of intervals a worker may stay silent
	// (no frame of any kind) before it is declared hung and its shard
	// requeued. Zero means the defaults (2s × 15); a negative interval
	// disables heartbeats and liveness cutoffs entirely.
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	// Logf, if set, receives progress lines (dispatches, steals, worker
	// deaths).
	Logf func(format string, args ...any)
	// Control, if set, attaches a control plane to the run: the loop
	// publishes immutable status snapshots after every event and accepts
	// Submit/Cancel mutations as loop events. See Control.
	Control *Control
}

// CampaignOptions configures one RunCampaign: the per-fleet knobs of
// Options plus the campaign-only hooks (report delivery, warm-worker
// preparation, result verification).
type CampaignOptions struct {
	// ShardWorkers, MergeWorkers, Retries, NoSteal, DrainTimeout,
	// Token, HeartbeatInterval, HeartbeatMisses and Logf mean exactly
	// what they mean on Options, applied to every job.
	ShardWorkers      int
	MergeWorkers      int
	Retries           int
	NoSteal           bool
	DrainTimeout      time.Duration
	Token             string
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	Logf              func(format string, args ...any)
	// Warm sends each worker a Prepare message right after its hello,
	// naming the frame lengths of WarmFrames (the phy default when nil),
	// so the worker builds its SNR/airtime tables once — before the
	// first assignment's trial fan-out would race to build them — and
	// keeps them cached across every assignment of the campaign.
	Warm       bool
	WarmFrames []int
	// VerifyShards, if set, selects for each job a sample of shard
	// indices whose results are re-executed (preferably on a different
	// worker) and byte-compared against the first result through
	// experiments.CanonicalLoops. The determinism contract makes any
	// divergence a hard fault: the run aborts with a *VerifyError. It is
	// called once per job — including jobs submitted later through the
	// Control, which is why it receives the Job itself rather than an
	// index into the initial job list.
	VerifyShards func(job int, j Job) []int
	// OnReport receives each job's merged report in submission order: a
	// report is delivered the moment its last shard has merged (and its
	// verification sample, if any, confirmed), gated only behind the
	// delivery of every earlier job's report. Cancelled jobs are skipped.
	// The Job is passed alongside the index so dynamically submitted
	// jobs (beyond the initial list) can be identified. Returning an
	// error aborts the campaign.
	OnReport func(job int, j Job, rep *experiments.Report) error
	// Control, if set, attaches a control plane to the campaign: the
	// loop publishes immutable status snapshots after every event
	// (lock-free for scrapers) and accepts job submission/cancellation
	// as loop events. A Control attaches to at most one campaign.
	Control *Control
}

// RunStats summarizes the dispatch history of one run.
type RunStats struct {
	// Workers counts connections that completed the hello handshake.
	Workers int
	// Assigned counts ordinary dispatches; Stolen counts speculative
	// re-dispatches of in-flight shards; Requeued counts failures
	// charged to shards by worker death or error; Discarded counts
	// shard results that lost a speculation race and were thrown away.
	Assigned, Stolen, Requeued, Discarded int
	// Verified counts verification re-runs that byte-matched the first
	// result (a mismatch aborts the run, so it never counts here).
	Verified int
	// Rejected counts connections refused in the handshake (bad or
	// missing token MAC); Hung counts workers dropped for exhausting the
	// heartbeat miss budget while holding an open connection; and
	// CorruptFrames counts connections dropped because a frame failed
	// the rolling CRC32C check (corruption, loss, or duplication on the
	// stream).
	Rejected, Hung, CorruptFrames int
	// Submitted counts jobs admitted through the control plane after
	// the campaign started; Cancelled counts jobs withdrawn through it.
	Submitted, Cancelled int
}

// Heartbeat defaults: generous enough that a worker grinding through a
// heavy shard on a loaded box never trips them (the worker's reader
// goroutine answers pings even mid-shard, so only a truly wedged or
// unreachable worker goes silent for the full budget).
const (
	defaultHeartbeatInterval = 2 * time.Second
	defaultHeartbeatMisses   = 15
)

// WorkerExitError reports that the run failed after a worker process
// exited abnormally; cmd/hintshard propagates the code so the operator
// sees the worker's exit status, not a generic failure.
type WorkerExitError struct {
	Code int
	Err  error
}

func (e *WorkerExitError) Error() string { return e.Err.Error() }
func (e *WorkerExitError) Unwrap() error { return e.Err }

// VerifyError is the hard fault of the verification mode: a shard was
// executed twice and the two canonical partial encodings differ. Under
// the determinism contract that can only mean corruption — a broken
// worker build, bad hardware, or a tampering peer — so the campaign
// aborts instead of publishing a report built from either copy.
type VerifyError struct {
	Job           int
	Experiment    string
	Shard, Shards int
	// First and Second name the workers whose results disagree.
	First, Second string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("cluster: verification failed: job %d (%s) shard %d/%d diverges between workers %s and %s (determinism contract broken: corrupt worker or hardware)",
		e.Job, e.Experiment, e.Shard, e.Shards, e.First, e.Second)
}

// exitCoder is implemented by connections that can report how their
// worker process exited (the subprocess transport).
type exitCoder interface{ ExitCode() int }

// workerState is the coordinator's view of one connection. All fields
// are owned by the coordinator loop; the sender and reader goroutines
// touch only conn and out.
type workerState struct {
	conn Conn
	id   int
	name string
	// curJob/curShard are the in-flight assignment, -1 when idle;
	// curVerify marks it as a verification re-run of a completed shard.
	curJob    int
	curShard  int
	curVerify bool
	loops     []*experiments.LoopPartial
	// out feeds the connection's sender goroutine; closed on teardown.
	// The sender closes conn after draining, so a Stop queued before
	// teardown still reaches the worker.
	out     chan Message
	helloed bool
	stopped bool
	dead    bool
	// nonce is the challenge this conn's hello must MAC; lastSeen the
	// loop time of the conn's most recent frame (any kind), which the
	// heartbeat tick compares against the miss budget.
	nonce    string
	lastSeen time.Time
	pingSeq  int
	// connectedAt, shardsDone, and loopsDone feed the status snapshots:
	// when the connection arrived, how many shard results (of any kind,
	// including discarded speculation losers) it delivered, and how many
	// loop partials it streamed — the worker's throughput history.
	connectedAt time.Time
	shardsDone  int
	loopsDone   int
}

// verifyState tracks one sampled shard's verification: the canonical
// encoding of the first completed result, who produced it, and the
// dispatch state of the re-run.
type verifyState struct {
	first     []byte
	firstID   int
	firstName string
	// inFlight counts live re-run dispatches (speculation allows two);
	// resolved marks the verification confirmed.
	inFlight int
	resolved bool
	// skipped marks that the preferred-different-worker rule already
	// passed the task over once; after that any worker may take it, so
	// a fleet that shrank to the original worker still makes progress.
	skipped bool
}

// jobState is the per-job half of the coordinator state: the dynamic
// shard queue, the completed partials, the failure ledger, and the
// verification sample.
type jobState struct {
	job      Job
	queue    *parallel.ShardQueue
	partials []*experiments.Partial
	failures []int
	// verify maps sampled shard index → verification state; sampled
	// lists the sampled indices in ascending order (the deterministic
	// iteration order for speculative re-dispatch); verifyLeft counts
	// samples not yet confirmed, verifyQueue the samples whose first
	// result arrived and whose re-run awaits a worker.
	verify       map[int]*verifyState
	sampled      []int
	verifyLeft   int
	verifyQueue  []int
	merged       *experiments.Report
	mergeStarted bool
	// cancelled marks a job withdrawn through the control plane: its
	// shards no longer dispatch, in-flight results are discarded, and
	// report delivery skips it.
	cancelled bool
}

// mergeDone carries one job's finished merge back into the event loop.
type mergeDone struct {
	job int
	rep *experiments.Report
	err error
}

// event is one input to the coordinator's single-threaded state
// machine: a new connection (msg, err and merge nil), a message, a dead
// connection (err set), the end of the accept loop (w nil), a completed
// background merge (merge set), a heartbeat tick (tick set), or a
// control-plane mutation (ctl set).
type event struct {
	w     *workerState
	msg   Message
	err   error
	merge *mergeDone
	tick  bool
	ctl   *ctlReq
}

// newNonce draws a fresh challenge nonce. crypto/rand cannot fail on
// any supported platform; if it somehow does, the nonce degrades to a
// counter-free constant and auth still requires the token (a replayed
// MAC would also need the same worker name).
func newNonce() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "norand"
	}
	return hex.EncodeToString(b[:])
}

// Run executes one experiment over the transport's workers and returns
// the merged report: a single-job campaign. See RunCampaign for the
// scheduling, stealing, retry, and determinism story.
func Run(t Transport, o Options) (*experiments.Report, RunStats, error) {
	if o.Experiment == "" {
		return nil, RunStats{}, errors.New("cluster: no experiment to run")
	}
	if o.Shards < 1 {
		return nil, RunStats{}, fmt.Errorf("cluster: invalid shard count %d", o.Shards)
	}
	var rep *experiments.Report
	stats, err := RunCampaign(t, []Job{{
		Experiment: o.Experiment,
		Seed:       o.Seed,
		Scale:      o.Scale,
		Shards:     o.Shards,
	}}, CampaignOptions{
		ShardWorkers:      o.ShardWorkers,
		MergeWorkers:      o.MergeWorkers,
		Retries:           o.Retries,
		NoSteal:           o.NoSteal,
		DrainTimeout:      o.DrainTimeout,
		Token:             o.Token,
		HeartbeatInterval: o.HeartbeatInterval,
		HeartbeatMisses:   o.HeartbeatMisses,
		Logf:              o.Logf,
		Control:           o.Control,
		OnReport: func(job int, _ Job, r *experiments.Report) error {
			if job == 0 {
				rep = r
			}
			return nil
		},
	})
	if err != nil {
		return nil, stats, err
	}
	if rep == nil {
		return nil, stats, errors.New("cluster: internal error: campaign finished without delivering the report")
	}
	return rep, stats, nil
}

// RunCampaign executes an ordered set of jobs over one fleet. Every job
// owns a shard queue; a worker going idle takes the next fresh shard of
// the earliest incomplete job, then a pending verification re-run, then
// a speculative copy stolen from a straggler — so shards of different
// experiments interleave in one multi-queue and the tail of job i
// overlaps the head of job i+1. Shards lost to dying workers
// re-dispatch within the per-shard retry budget, the first completion
// of each shard wins, and each job's completed shard set feeds
// experiments.MergeShards unchanged — so every report is byte-identical
// to the single-process run of its job, whatever the transport, worker
// count, assignment order, interleaving, or failure history. Reports
// are delivered through o.OnReport in submission order, each the moment
// its merge (and verification sample) completes and its predecessors
// are out.
func RunCampaign(t Transport, jobs []Job, o CampaignOptions) (RunStats, error) {
	var stats RunStats
	if len(jobs) == 0 {
		return stats, errors.New("cluster: empty campaign")
	}
	for ji, j := range jobs {
		if j.Experiment == "" {
			return stats, fmt.Errorf("cluster: campaign job %d names no experiment", ji)
		}
		if j.Shards < 1 {
			return stats, fmt.Errorf("cluster: campaign job %d (%s) has invalid shard count %d", ji, j.Experiment, j.Shards)
		}
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	retries := o.Retries
	if retries < 0 {
		retries = 0
	}
	hbInterval := o.HeartbeatInterval
	if hbInterval == 0 {
		hbInterval = defaultHeartbeatInterval
	}
	hbMisses := o.HeartbeatMisses
	if hbMisses <= 0 {
		hbMisses = defaultHeartbeatMisses
	}
	heartbeats := hbInterval > 0
	var cutoff time.Duration
	if heartbeats {
		cutoff = hbInterval * time.Duration(hbMisses)
	}

	states := make([]*jobState, len(jobs))
	for ji, j := range jobs {
		states[ji] = &jobState{
			job:      j,
			queue:    parallel.NewShardQueue(j.Shards),
			partials: make([]*experiments.Partial, j.Shards),
			failures: make([]int, j.Shards),
			verify:   map[int]*verifyState{},
		}
	}
	if o.VerifyShards != nil {
		for ji, js := range states {
			for _, k := range o.VerifyShards(ji, js.job) {
				if k < 0 || k >= js.job.Shards {
					return stats, fmt.Errorf("cluster: verification sample names shard %d of job %d (%d shards)", k, ji, js.job.Shards)
				}
				if js.verify[k] == nil {
					js.verify[k] = &verifyState{}
					js.sampled = append(js.sampled, k)
					js.verifyLeft++
				}
			}
			sort.Ints(js.sampled)
		}
	}

	ctl := o.Control
	if ctl != nil {
		if !ctl.attach() {
			return stats, errors.New("cluster: Control already attached to a campaign")
		}
		// finish unblocks every pending and future Submit/Cancel with
		// ErrNotRunning once the campaign is over (including all early
		// error returns below).
		defer ctl.finish()
	}
	startedAt := time.Now()

	events := make(chan event, 256)
	var workers []*workerState
	var idle []*workerState
	acceptDone := false
	var acceptErr error
	var lastExit *WorkerExitError
	nextEmit := 0

	// Every producer goroutine (accept loop, per-connection reader and
	// sender, background merges) registers here; the drain phase at the
	// end keeps consuming events until all of them have exited, so none
	// leaks blocked on the channel.
	var producers sync.WaitGroup
	spawn := func(fn func()) {
		producers.Add(1)
		go func() {
			defer producers.Done()
			fn()
		}()
	}

	spawn(func() {
		id := 0
		for {
			c, err := t.Accept()
			if err != nil {
				events <- event{err: err}
				return
			}
			w := &workerState{conn: c, id: id, curJob: -1, curShard: -1, out: make(chan Message, 4)}
			id++
			events <- event{w: w}
		}
	})

	// The heartbeat ticker feeds the loop; loopDone stops it once the
	// campaign's event loop exits (the drain below consumes any tick
	// already in flight).
	loopDone := make(chan struct{})
	if ctl != nil {
		// Control mutations become loop events through this forwarder, so
		// they serialize with dispatch exactly like worker messages. The
		// buffered reply channel means answering never blocks the loop.
		spawn(func() {
			for {
				select {
				case r := <-ctl.reqs:
					select {
					case events <- event{ctl: &r}:
					case <-loopDone:
						r.reply <- ctlReply{err: ErrNotRunning}
						return
					}
				case <-loopDone:
					return
				}
			}
		})
	}
	if heartbeats {
		spawn(func() {
			tick := time.NewTicker(hbInterval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					select {
					case events <- event{tick: true}:
					case <-loopDone:
						return
					}
				case <-loopDone:
					return
				}
			}
		})
	}

	startWorker := func(w *workerState) {
		workers = append(workers, w)
		spawn(func() { // sender: owns the conn's write side and final close
			defer w.conn.Close()
			failed := false
			for m := range w.out {
				if failed {
					continue // drain so the loop's send() never blocks on a broken conn
				}
				if err := w.conn.Send(m); err != nil {
					failed = true
					events <- event{w: w, err: err}
				}
			}
		})
		spawn(func() { // reader
			for {
				m, err := w.conn.Recv()
				if err != nil {
					events <- event{w: w, err: err}
					return
				}
				events <- event{w: w, msg: m}
			}
		})
	}

	// teardown removes a worker from service. Graceful teardown lets the
	// sender flush queued messages (the Stop) before it closes the
	// connection; abrupt teardown closes immediately — off the event
	// loop, because closing a live subprocess worker waits out a stop
	// grace before killing it, and dispatch must not stall behind that.
	teardown := func(w *workerState, graceful bool) {
		if w.dead {
			return
		}
		w.dead = true
		close(w.out)
		if !graceful {
			go w.conn.Close()
		}
		for i, iw := range idle {
			if iw == w {
				idle = append(idle[:i], idle[i+1:]...)
				break
			}
		}
	}

	alive := func() int {
		n := 0
		for _, w := range workers {
			if !w.dead {
				n++
			}
		}
		return n
	}

	send := func(w *workerState, m Message) {
		if !w.dead {
			w.out <- m
		}
	}

	var abortErr error
	abort := func(err error) {
		if abortErr == nil {
			abortErr = err
		}
	}

	// allDone reports whether no further worker-side work can exist:
	// every live job's queue is complete and every verification
	// confirmed (cancelled jobs owe nothing). Merges and report delivery
	// may still be outstanding.
	allDone := func() bool {
		for _, js := range states {
			if js.cancelled {
				continue
			}
			if !js.queue.Done() || js.verifyLeft > 0 {
				return false
			}
		}
		return true
	}

	// tryEmit delivers merged reports in submission order: the head job
	// goes out the moment it is merged and verified, then the next, so a
	// late-merging early job is the only thing that can hold a finished
	// later report back.
	tryEmit := func() {
		for nextEmit < len(states) {
			js := states[nextEmit]
			if js.cancelled {
				// A cancelled job emits nothing; it must not hold later
				// reports back either.
				nextEmit++
				continue
			}
			if js.merged == nil || js.verifyLeft > 0 {
				return
			}
			if o.OnReport != nil {
				if err := o.OnReport(nextEmit, js.job, js.merged); err != nil {
					abort(fmt.Errorf("cluster: delivering job %d (%s) report: %w", nextEmit, js.job.Experiment, err))
					return
				}
			}
			nextEmit++
		}
	}

	// Each job's merge starts the moment its last shard completes,
	// overlapping later jobs' execution and the drain of speculative
	// stragglers; the result comes back as an event so delivery happens
	// on the loop, in submission order.
	startMerge := func(ji int) {
		js := states[ji]
		if js.mergeStarted {
			return
		}
		js.mergeStarted = true
		parts := make([]*experiments.Partial, 0, js.job.Shards)
		for k, p := range js.partials {
			if p == nil {
				abort(fmt.Errorf("cluster: internal error: job %d shard %d/%d completed without a partial", ji, k, js.job.Shards))
				return
			}
			parts = append(parts, p)
		}
		spawn(func() {
			rep, err := experiments.MergeShards(parts, o.MergeWorkers)
			events <- event{merge: &mergeDone{job: ji, rep: rep, err: err}}
		})
	}

	// fail returns one lost dispatch of job ji's shard k to its queue.
	// The failure budget is charged — and, when exhausted, the run
	// aborted — only when no speculative copy of the shard is still
	// computing: a loss that stealing already covers is not a loss of
	// progress.
	fail := func(ji, k int, cause error) {
		js := states[ji]
		// The dispatch always comes back, even for a completed shard —
		// Requeue on a done shard only fixes the live-copy accounting.
		live := js.queue.Requeue(k)
		if js.cancelled {
			// A cancelled job charges no budget: the loss costs nothing
			// because the result would have been discarded anyway.
			return
		}
		if js.queue.Completed(k) {
			return
		}
		if live > 0 {
			logf("cluster: a copy of job %d shard %d/%d failed, %d live copies remain: %v", ji, k, js.job.Shards, live, cause)
			return
		}
		js.failures[k]++
		stats.Requeued++
		if js.failures[k] > retries {
			abort(fmt.Errorf("cluster: job %d (%s): shard %d/%d failed %d times, last: %w", ji, js.job.Experiment, k, js.job.Shards, js.failures[k], cause))
			return
		}
		logf("cluster: requeueing job %d shard %d/%d after failure %d/%d: %v", ji, k, js.job.Shards, js.failures[k], retries, cause)
	}

	// verifyFail returns a lost verification re-run to the verify queue,
	// charged against the same per-shard failure budget. Like fail, a
	// loss that a live speculative copy already covers charges nothing.
	verifyFail := func(ji, k int, cause error) {
		js := states[ji]
		vs := js.verify[k]
		if vs.inFlight > 0 {
			vs.inFlight--
		}
		if js.cancelled || vs.resolved {
			return
		}
		if vs.inFlight > 0 {
			logf("cluster: a copy of job %d shard %d/%d's verification failed, %d live copies remain: %v", ji, k, js.job.Shards, vs.inFlight, cause)
			return
		}
		js.failures[k]++
		stats.Requeued++
		if js.failures[k] > retries {
			abort(fmt.Errorf("cluster: job %d (%s): verification of shard %d/%d failed %d times, last: %w", ji, js.job.Experiment, k, js.job.Shards, js.failures[k], cause))
			return
		}
		logf("cluster: requeueing verification of job %d shard %d/%d after failure %d/%d: %v", ji, k, js.job.Shards, js.failures[k], retries, cause)
		js.verifyQueue = append(js.verifyQueue, k)
	}

	stopWorker := func(w *workerState) {
		if !w.stopped && !w.dead {
			w.stopped = true
			send(w, &Stop{})
		}
	}

	assign := func(w *workerState, ji, k int, verify bool) {
		js := states[ji]
		w.curJob, w.curShard, w.curVerify = ji, k, verify
		w.loops = nil
		send(w, &Assign{
			Job:        ji,
			Experiment: js.job.Experiment,
			Seed:       js.job.Seed,
			Scale:      js.job.Scale,
			Workers:    o.ShardWorkers,
			Shard:      k,
			Shards:     js.job.Shards,
		})
	}

	// dispatch hands the next unit of work to a free worker — the
	// earliest incomplete job's next fresh shard, then a pending
	// verification re-run, then a speculative copy stolen from a
	// straggler — or parks it idle. Fresh shards of job i always beat
	// fresh shards of job i+1, so the campaign progresses in submission
	// order while never idling a worker that job i can no longer feed.
	dispatch := func(w *workerState) {
		if w.dead || w.stopped || abortErr != nil {
			return
		}
		if allDone() {
			stopWorker(w)
			return
		}
		for ji, js := range states {
			if js.cancelled {
				continue
			}
			if shard, ok := js.queue.Next(); ok {
				stats.Assigned++
				assign(w, ji, shard.Index, false)
				return
			}
			for qi, k := range js.verifyQueue {
				vs := js.verify[k]
				if vs.firstID == w.id && alive() > 1 && !vs.skipped {
					// Prefer a genuinely second worker; pass over once,
					// then let anyone take it so a shrunken fleet still
					// finishes.
					vs.skipped = true
					continue
				}
				js.verifyQueue = append(js.verifyQueue[:qi], js.verifyQueue[qi+1:]...)
				vs.inFlight++
				logf("cluster: worker %s re-executing job %d shard %d/%d for verification (first by %s)", w.name, ji, k, js.job.Shards, vs.firstName)
				assign(w, ji, k, true)
				return
			}
		}
		if !o.NoSteal {
			for ji, js := range states {
				if js.cancelled {
					continue
				}
				if shard, ok := js.queue.Steal(); ok {
					stats.Stolen++
					logf("cluster: worker %s stealing in-flight job %d shard %v", w.name, ji, shard)
					assign(w, ji, shard.Index, false)
					return
				}
			}
		}
		// Speculative verification copy: with nothing else assignable,
		// duplicate an in-flight re-run (two live copies max, first
		// resolution wins) so a hung holder cannot stall the campaign —
		// the verification analogue of stealing. This is a liveness
		// mechanism, so it ignores NoSteal; any worker qualifies (the
		// different-worker preference already had its chance when the
		// re-run was first dispatched).
		for ji, js := range states {
			if js.cancelled || js.verifyLeft == 0 {
				continue
			}
			for _, k := range js.sampled {
				vs := js.verify[k]
				if vs.resolved || vs.first == nil || vs.inFlight != 1 {
					continue
				}
				vs.inFlight++
				stats.Stolen++
				logf("cluster: worker %s speculatively duplicating the verification re-run of job %d shard %d/%d", w.name, ji, k, js.job.Shards)
				assign(w, ji, k, true)
				return
			}
		}
		idle = append(idle, w)
	}

	// pump re-dispatches parked workers after a queue refills.
	pump := func() {
		for len(idle) > 0 {
			w := idle[0]
			idle = idle[1:]
			before := len(idle)
			dispatch(w)
			if len(idle) > before {
				return // parked again: nothing left to hand out
			}
		}
	}

	// recordExit captures a dead worker process's exit code for error
	// propagation.
	recordExit := func(w *workerState) {
		if ec, ok := w.conn.(exitCoder); ok {
			if code := ec.ExitCode(); code > 0 {
				lastExit = &WorkerExitError{Code: code}
			}
		}
	}

	// salvage recovers the assignment a worker abandoned (death or
	// protocol violation): fresh shards go back to their queue,
	// verification re-runs back to the verify queue.
	salvage := func(w *workerState, cause error) {
		ji, k, verify := w.curJob, w.curShard, w.curVerify
		w.curJob, w.curShard, w.curVerify = -1, -1, false
		if k < 0 {
			return
		}
		if verify {
			verifyFail(ji, k, cause)
		} else {
			fail(ji, k, cause)
		}
		pump()
	}

	// violation drops a worker that broke the protocol and salvages its
	// assignment.
	violation := func(w *workerState, why string) {
		logf("cluster: dropping worker %s: %s", w.name, why)
		teardown(w, false)
		salvage(w, fmt.Errorf("worker %s dropped: %s", w.name, why))
	}

	// release stops every live worker with nothing in flight once no
	// assignable work remains; stragglers still computing a speculative
	// copy drain out cleanly (bounded by the drain deadline).
	release := func() {
		for _, w := range workers {
			if !w.dead && w.curShard < 0 {
				stopWorker(w)
			}
		}
	}

	// finished reports campaign completion: every report delivered and
	// no live worker still computing (speculative stragglers drain out
	// cleanly rather than seeing their connection vanish mid-shard).
	finished := func() bool {
		if nextEmit < len(states) {
			return false
		}
		for _, w := range workers {
			if !w.dead && w.curShard >= 0 {
				return false
			}
		}
		return true
	}

	// The drain deadline arms when the last assignable work completes:
	// speculative losers get that long to finish cleanly; a hung
	// straggler cannot hold the (already merged) campaign hostage.
	var drainDeadline <-chan time.Time
	armDrainDeadline := func() {
		if drainDeadline != nil {
			return
		}
		d := o.DrainTimeout
		if d <= 0 {
			d = time.Minute
		}
		drainDeadline = time.NewTimer(d).C
	}

	// warmFrames is what Prepare asks workers to pre-build.
	warmFrames := o.WarmFrames
	if len(warmFrames) == 0 {
		warmFrames = []int{phy.DefaultFrameBytes}
	}

	// publish builds a fresh immutable Snapshot of the loop's state and
	// swaps it into the Control — the entire read path of the control
	// plane. It runs at the end of every loop iteration, so scrapers
	// always see a complete post-event view and never touch loop state.
	publish := func(done bool) {
		if ctl == nil {
			return
		}
		now := time.Now()
		s := &Snapshot{StartedAt: startedAt, At: now, Done: done, Stats: stats}
		s.Jobs = make([]JobStatus, 0, len(states))
		for ji, js := range states {
			pend, inflight, completed := js.queue.Counts()
			st := JobStatus{
				Index:         ji,
				Experiment:    js.job.Experiment,
				Seed:          js.job.Seed,
				Scale:         js.job.Scale,
				Shards:        js.job.Shards,
				Queued:        pend,
				InFlight:      inflight,
				Completed:     completed,
				VerifySampled: len(js.sampled),
				Verified:      len(js.sampled) - js.verifyLeft,
			}
			for _, n := range js.failures {
				st.Failures += n
			}
			phases := js.queue.States()
			b := make([]byte, len(phases))
			for k, ph := range phases {
				switch ph {
				case parallel.ShardCompleted:
					b[k] = 'd'
				case parallel.ShardInFlight:
					b[k] = 'f'
				default:
					b[k] = 'q'
				}
			}
			st.ShardStates = string(b)
			switch {
			case js.cancelled:
				st.State = "cancelled"
			case ji < nextEmit:
				st.State = "done"
			case js.mergeStarted:
				st.State = "merging"
			case completed == 0 && inflight == 0:
				st.State = "queued"
			default:
				st.State = "running"
			}
			if !js.cancelled {
				s.QueueDepth += pend
			}
			s.Jobs = append(s.Jobs, st)
		}
		s.Workers = make([]WorkerStatus, 0, len(workers))
		for _, w := range workers {
			ws := WorkerStatus{
				ID:         w.id,
				Name:       w.name,
				Job:        w.curJob,
				Shard:      w.curShard,
				Verify:     w.curVerify,
				ShardsDone: w.shardsDone,
				LoopsDone:  w.loopsDone,
			}
			switch {
			case w.dead:
				ws.State = "dead"
			case !w.helloed:
				ws.State = "handshake"
			case w.curShard >= 0:
				ws.State = "busy"
			case w.stopped:
				ws.State = "stopped"
			default:
				ws.State = "idle"
			}
			if !w.connectedAt.IsZero() {
				ws.UptimeSec = now.Sub(w.connectedAt).Seconds()
				if ws.UptimeSec > 0 {
					ws.LoopsPerSec = float64(w.loopsDone) / ws.UptimeSec
				}
				ws.LastSeenSec = now.Sub(w.lastSeen).Seconds()
			}
			s.Workers = append(s.Workers, ws)
		}
		ctl.snap.Store(s)
	}
	publish(false) // initial snapshot: jobs visible before the first event

	for abortErr == nil && !finished() {
		var ev event
		select {
		case ev = <-events:
		case <-drainDeadline:
			for _, w := range workers {
				if !w.dead && w.curShard >= 0 {
					logf("cluster: cutting off straggler %s still computing discarded job %d shard %d/%d after drain timeout", w.name, w.curJob, w.curShard, states[w.curJob].job.Shards)
					if !w.curVerify {
						states[w.curJob].queue.Requeue(w.curShard) // completed shard: only returns the live copy
					}
					w.curJob, w.curShard, w.curVerify = -1, -1, false
					teardown(w, false)
				}
			}
			continue
		}
		switch {
		case ev.ctl != nil:
			r := ev.ctl
			switch {
			case r.submit != nil:
				j := *r.submit
				if _, ok := experiments.ByID(j.Experiment); !ok {
					r.reply <- ctlReply{err: fmt.Errorf("cluster: submit: unknown experiment %q", j.Experiment)}
					break
				}
				if j.Shards < 1 {
					r.reply <- ctlReply{err: fmt.Errorf("cluster: submit: job %s has invalid shard count %d", j.Experiment, j.Shards)}
					break
				}
				if allDone() {
					// All existing work is finished and the fleet is
					// stopping (or already stopped): a job admitted now
					// could never dispatch. The operator starts a fresh
					// campaign instead.
					r.reply <- ctlReply{err: errors.New("cluster: submit: campaign already draining")}
					break
				}
				ji := len(states)
				js := &jobState{
					job:      j,
					queue:    parallel.NewShardQueue(j.Shards),
					partials: make([]*experiments.Partial, j.Shards),
					failures: make([]int, j.Shards),
					verify:   map[int]*verifyState{},
				}
				states = append(states, js)
				if o.VerifyShards != nil {
					for _, k := range o.VerifyShards(ji, j) {
						if k < 0 || k >= j.Shards {
							continue
						}
						if js.verify[k] == nil {
							js.verify[k] = &verifyState{}
							js.sampled = append(js.sampled, k)
							js.verifyLeft++
						}
					}
					sort.Ints(js.sampled)
				}
				stats.Submitted++
				logf("cluster: control: submitted job %d (%s, %d shards)", ji, j.Experiment, j.Shards)
				r.reply <- ctlReply{job: ji}
				pump()
			default:
				ji := r.cancel
				if ji < 0 || ji >= len(states) {
					r.reply <- ctlReply{err: fmt.Errorf("cluster: cancel: no job %d", ji)}
					break
				}
				js := states[ji]
				switch {
				case js.cancelled:
					r.reply <- ctlReply{err: fmt.Errorf("cluster: cancel: job %d already cancelled", ji)}
				case js.mergeStarted || ji < nextEmit:
					r.reply <- ctlReply{err: fmt.Errorf("cluster: cancel: job %d (%s) already completed", ji, js.job.Experiment)}
				default:
					js.cancelled = true
					js.verifyLeft = 0
					js.verifyQueue = nil
					stats.Cancelled++
					logf("cluster: control: cancelled job %d (%s)", ji, js.job.Experiment)
					r.reply <- ctlReply{job: ji}
					// The cancellation may have been the last thing the
					// campaign was waiting on.
					tryEmit()
					if allDone() {
						release()
						armDrainDeadline()
					}
				}
			}
		case ev.merge != nil:
			if ev.merge.err != nil {
				abort(fmt.Errorf("cluster: job %d (%s): %w", ev.merge.job, states[ev.merge.job].job.Experiment, ev.merge.err))
				break
			}
			states[ev.merge.job].merged = ev.merge.rep
			tryEmit()
		case ev.tick:
			now := time.Now()
			for _, w := range workers {
				if w.dead {
					continue
				}
				if silent := now.Sub(w.lastSeen); silent > cutoff {
					if !w.helloed {
						stats.Rejected++
						logf("cluster: dropping connection %d: no hello within %v", w.id, cutoff)
						teardown(w, false)
						continue
					}
					stats.Hung++
					logf("cluster: worker %s silent for %v (heartbeat budget %d×%v): dropping as hung", w.name, silent, hbMisses, hbInterval)
					teardown(w, false)
					salvage(w, fmt.Errorf("worker %s hung: no frames for %v", w.name, silent))
					continue
				}
				if w.helloed && !w.stopped {
					w.pingSeq++
					send(w, &Ping{Seq: w.pingSeq})
				}
			}
		case ev.w == nil:
			// Accept loop ended. A fixed-size pool exhausting itself
			// (io.EOF) or the final transport Close are expected; a real
			// accept or spawn failure is kept for the stall diagnosis —
			// it is the root cause when no worker ever appears.
			acceptDone = true
			if ev.err != nil && ev.err != io.EOF && !errors.Is(ev.err, net.ErrClosed) {
				acceptErr = ev.err
				logf("cluster: transport stopped accepting workers: %v", ev.err)
			}
		case ev.err != nil:
			if ev.w.dead {
				break
			}
			if errors.Is(ev.err, istats.ErrChecksum) {
				// The conn's rolling chain broke: a frame was corrupted,
				// dropped, or duplicated in flight. Resynchronizing is
				// impossible, so the peer is dropped like any dead worker
				// and its shard salvaged — the typed count is the audit
				// trail.
				stats.CorruptFrames++
				logf("cluster: integrity failure on worker %s's connection: %v", ev.w.name, ev.err)
			}
			busy := ev.w.curShard >= 0
			if busy {
				logf("cluster: worker %s died holding job %d shard %d/%d: %v", ev.w.name, ev.w.curJob, ev.w.curShard, states[ev.w.curJob].job.Shards, ev.err)
			} else {
				logf("cluster: worker %s disconnected: %v", ev.w.name, ev.err)
			}
			teardown(ev.w, false)
			recordExit(ev.w)
			salvage(ev.w, fmt.Errorf("worker %s died: %w", ev.w.name, ev.err))
		case ev.msg == nil:
			// Fresh connection: arm its per-message deadlines, start its
			// goroutines, and open the session with the challenge. The
			// hello must answer before the heartbeat cutoff or the tick
			// handler reaps the conn.
			if ts, ok := ev.w.conn.(timeoutSetter); ok && heartbeats {
				ts.SetTimeouts(2*cutoff, cutoff)
			}
			ev.w.nonce = newNonce()
			ev.w.lastSeen = time.Now()
			ev.w.connectedAt = ev.w.lastSeen
			startWorker(ev.w)
			ch := &Challenge{Version: ProtoVersion, Nonce: ev.w.nonce}
			if heartbeats {
				ch.PingMs = int(hbInterval / time.Millisecond)
				ch.CutoffMs = int(cutoff / time.Millisecond)
			}
			send(ev.w, ch)
		default:
			w := ev.w
			if w.dead {
				break
			}
			w.lastSeen = time.Now()
			switch m := ev.msg.(type) {
			case *Hello:
				if w.helloed {
					violation(w, "second hello")
					break
				}
				if !verifyHello(o.Token, w.nonce, m) {
					stats.Rejected++
					logf("cluster: rejecting worker %q: bad or missing token MAC", m.Name)
					send(w, &Reject{Reason: "authentication failed"})
					teardown(w, true)
					break
				}
				w.helloed = true
				w.name = m.Name
				stats.Workers++
				logf("cluster: worker %s connected", w.name)
				if o.Warm {
					send(w, &Prepare{Frames: warmFrames})
				}
				dispatch(w)
			case *Pong:
				// Liveness answer; lastSeen is already refreshed above.
			case *LoopResult:
				if !w.helloed || m.Job != w.curJob || m.Shard != w.curShard {
					violation(w, fmt.Sprintf("loop result for job %d shard %d while holding job %d shard %d", m.Job, m.Shard, w.curJob, w.curShard))
					break
				}
				w.loopsDone++
				if !states[w.curJob].cancelled {
					w.loops = append(w.loops, m.Loop)
				}
			case *ShardDone:
				if !w.helloed || m.Job != w.curJob || m.Shard != w.curShard {
					violation(w, fmt.Sprintf("done for job %d shard %d while holding job %d shard %d", m.Job, m.Shard, w.curJob, w.curShard))
					break
				}
				ji := w.curJob
				js := states[ji]
				loops := w.loops
				wasVerify := w.curVerify
				w.curJob, w.curShard, w.curVerify = -1, -1, false
				w.loops = nil
				w.shardsDone++
				if js.cancelled {
					// The job was withdrawn while this shard was in
					// flight: keep the copy accounting coherent, throw the
					// result away, and put the worker back to work.
					if wasVerify {
						if vs := js.verify[m.Shard]; vs != nil && vs.inFlight > 0 {
							vs.inFlight--
						}
					} else {
						js.queue.Complete(m.Shard)
					}
					stats.Discarded++
					logf("cluster: discarding result for cancelled job %d shard %d/%d from %s", ji, m.Shard, js.job.Shards, w.name)
					dispatch(w)
					break
				}
				if wasVerify {
					vs := js.verify[m.Shard]
					if vs.inFlight > 0 {
						vs.inFlight--
					}
					enc, err := experiments.CanonicalLoops(loops)
					if err != nil {
						abort(fmt.Errorf("cluster: encoding verification re-run of job %d shard %d/%d: %w", ji, m.Shard, js.job.Shards, err))
						break
					}
					if !bytes.Equal(enc, vs.first) {
						abort(&VerifyError{Job: ji, Experiment: js.job.Experiment, Shard: m.Shard, Shards: js.job.Shards, First: vs.firstName, Second: w.name})
						break
					}
					if vs.resolved {
						// A speculative duplicate of an already-confirmed
						// re-run; it matched too, nothing more to record.
						stats.Discarded++
						logf("cluster: discarding duplicate verification of job %d shard %d/%d from %s", ji, m.Shard, js.job.Shards, w.name)
					} else {
						vs.resolved = true
						js.verifyLeft--
						stats.Verified++
						logf("cluster: job %d shard %d/%d verified: %s matches %s byte for byte", ji, m.Shard, js.job.Shards, w.name, vs.firstName)
						tryEmit()
						if allDone() {
							release()
							armDrainDeadline()
						}
					}
					dispatch(w)
					break
				}
				if js.queue.Complete(m.Shard) {
					js.partials[m.Shard] = &experiments.Partial{
						Version:    experiments.PartialVersion,
						Job:        ji,
						Experiment: js.job.Experiment,
						Shard:      m.Shard,
						Shards:     js.job.Shards,
						Seed:       js.job.Seed,
						Scale:      js.job.Scale,
						Loops:      loops,
					}
					if vs := js.verify[m.Shard]; vs != nil {
						enc, err := experiments.CanonicalLoops(loops)
						if err != nil {
							abort(fmt.Errorf("cluster: encoding job %d shard %d/%d for verification: %w", ji, m.Shard, js.job.Shards, err))
							break
						}
						vs.first = enc
						vs.firstID = w.id
						vs.firstName = w.name
						js.verifyQueue = append(js.verifyQueue, m.Shard)
						pump() // an idle second worker can start the re-run now
					}
					if js.queue.Done() {
						startMerge(ji)
					}
					if allDone() {
						release()
						armDrainDeadline()
					}
				} else {
					stats.Discarded++
					logf("cluster: discarding duplicate result for job %d shard %d/%d from %s", ji, m.Shard, js.job.Shards, w.name)
				}
				dispatch(w)
			case *ShardError:
				if !w.helloed || m.Job != w.curJob || m.Shard != w.curShard {
					violation(w, fmt.Sprintf("error for job %d shard %d while holding job %d shard %d", m.Job, m.Shard, w.curJob, w.curShard))
					break
				}
				salvage(w, fmt.Errorf("worker %s: %s", w.name, m.Msg))
				dispatch(w)
			default:
				violation(w, fmt.Sprintf("unexpected %T", ev.msg))
			}
		}
		// Stall check: no shard or verification can ever complete if
		// every worker is gone and no more can arrive.
		if abortErr == nil && acceptDone && alive() == 0 && !allDone() {
			var pend, inflight, completed, total, verLeft int
			for _, js := range states {
				if js.cancelled {
					continue
				}
				p, i, c := js.queue.Counts()
				pend += p
				inflight += i
				completed += c
				total += js.job.Shards
				verLeft += js.verifyLeft
			}
			stall := fmt.Errorf("cluster: all workers gone with %d of %d shards incomplete (%d queued, %d in flight, %d verifications outstanding)",
				total-completed, total, pend, inflight, verLeft)
			if acceptErr != nil {
				stall = fmt.Errorf("%w; transport stopped accepting workers: %w", stall, acceptErr)
			}
			abort(stall)
		}
		publish(false)
	}
	publish(true)

	close(loopDone)
	graceful := abortErr == nil
	for _, w := range workers {
		stopWorker(w)
		teardown(w, graceful)
	}
	t.Close()
	// Drain events until every producer goroutine has exited, so none
	// stays blocked on the channel.
	allExited := make(chan struct{})
	go func() {
		producers.Wait()
		close(allExited)
	}()
	for draining := true; draining; {
		select {
		case <-events:
		case <-allExited:
			draining = false
		}
	}

	if abortErr != nil {
		if lastExit != nil {
			lastExit.Err = abortErr
			return stats, lastExit
		}
		return stats, abortErr
	}
	return stats, nil
}
