package cluster

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// Deterministic fault injection for the transport layer. A FaultPlan is
// a seeded schedule of frame-level faults — drop, duplicate, corrupt,
// delay, partition — applied on the *send* side of a connection, where
// the exact bytes of the outgoing frame are known. Determinism comes
// from splitmix64: each connection index draws its own RNG from the
// plan's seed, so the same plan against the same traffic pattern
// produces the same fault sequence, and a failing chaos run can be
// replayed from its seed alone.
//
// The faults model a hostile byte stream, and the checksummed frame
// layer is what converts each of them into a *detectable* event:
//
//   - corrupt flips a payload byte after the CRC trailer is computed —
//     the receiver fails the trailer check on that frame;
//   - drop advances the sender's rolling chain without emitting the
//     frame — the receiver's chain no longer matches at the *next*
//     frame (heartbeat pings bound how long that takes);
//   - dup emits the frame twice — the second copy's trailer continues a
//     chain the receiver has already advanced past, so it mismatches;
//   - delay stalls the sender, exercising read deadlines and heartbeat
//     misses without breaking the chain;
//   - partition closes the connection outright, exercising dead-peer
//     salvage and worker reconnect.
//
// All chain-breaking faults kill the connection (the peer must drop a
// conn whose chain broke), so MaxKills caps them globally across the
// plan — a chaos run converges instead of eating the retry budget.

// FaultPlan is one seeded schedule of connection faults. Probabilities
// are per-frame and evaluated in the order corrupt, drop, dup, delay;
// the first match wins. The zero value injects nothing.
type FaultPlan struct {
	Seed    int64   // root seed; each conn derives its own stream from it
	Corrupt float64 // probability a frame's payload is corrupted in flight
	Drop    float64 // probability a frame is silently dropped
	Dup     float64 // probability a frame is delivered twice
	Delay   float64 // probability a frame is delayed by DelayBy
	DelayBy time.Duration

	// PartitionAfter, when > 0, hard-closes a faulted connection once it
	// has carried that many frames (once per conn index, so a
	// reconnected worker's fresh conn starts clean).
	PartitionAfter int

	// Conns, when > 0, limits faults to the first Conns accepted
	// connections; later conns (including reconnects) run clean. 0
	// faults every conn.
	Conns int

	// MaxKills, when > 0, caps the total number of connection-killing
	// faults (corrupt, drop, dup, partition) across the whole plan. 0
	// means unlimited.
	MaxKills int

	conns atomic.Int64 // connections handed out so far
	kills atomic.Int64 // connection-killing faults spent so far
}

// handshakeExempt is how many leading frames per connection run clean:
// challenge/hello (and the first reply) must survive, or chaos reduces
// to "nothing ever connects" and proves nothing.
const handshakeExempt = 3

// conn allocates the fault schedule for the next connection, or nil if
// that connection runs clean under this plan.
func (p *FaultPlan) conn() *ConnFaults {
	idx := int(p.conns.Add(1)) - 1
	if p.Conns > 0 && idx >= p.Conns {
		return nil
	}
	seed := parallel.NewSeedStream(p.Seed).Derive("chaos").Seed(idx)
	return &ConnFaults{plan: p, rng: parallel.NewRNG(seed)}
}

// NextConn allocates the fault schedule for the next connection — the
// worker-side (DialOptions.Wrap + InjectFaults) counterpart of wrapping
// a listener with WithChaos.
func (p *FaultPlan) NextConn() *ConnFaults { return p.conn() }

// takeKill spends one unit of the plan's kill budget; false means the
// budget is exhausted and the fault must not fire.
func (p *FaultPlan) takeKill() bool {
	if p.MaxKills <= 0 {
		return true
	}
	for {
		n := p.kills.Load()
		if n >= int64(p.MaxKills) {
			return false
		}
		if p.kills.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// ConnFaults is one connection's slice of a FaultPlan: a private RNG
// and frame counter. It is consulted from inside streamConn.Send under
// the send mutex, so it needs no locking of its own.
type ConnFaults struct {
	plan        *FaultPlan
	rng         parallel.RNG
	frames      int
	partitioned bool
}

type faultKind int

const (
	faultNone faultKind = iota
	faultCorrupt
	faultDrop
	faultDup
	faultPartition
)

// next decides the fate of the connection's next outgoing frame and the
// delay (if any) to apply before sending it.
func (f *ConnFaults) next() (faultKind, time.Duration) {
	f.frames++
	if f.frames <= handshakeExempt {
		return faultNone, 0
	}
	p := f.plan
	if p.PartitionAfter > 0 && !f.partitioned && f.frames > p.PartitionAfter {
		f.partitioned = true
		if p.takeKill() {
			return faultPartition, 0
		}
	}
	// One draw decides the frame's fate via cumulative thresholds, so
	// the RNG consumption per frame is fixed and the schedule replays
	// exactly.
	u := f.rng.Float64()
	var delay time.Duration
	switch {
	case u < p.Corrupt:
		if p.takeKill() {
			return faultCorrupt, 0
		}
	case u < p.Corrupt+p.Drop:
		if p.takeKill() {
			return faultDrop, 0
		}
	case u < p.Corrupt+p.Drop+p.Dup:
		if p.takeKill() {
			return faultDup, 0
		}
	case u < p.Corrupt+p.Drop+p.Dup+p.Delay:
		delay = p.DelayBy
	}
	return faultNone, delay
}

// InjectFaults attaches a fault schedule to a connection. It returns
// false when the conn does not route through the stream framing layer
// (no current transport does that) or when f is nil.
func InjectFaults(c Conn, f *ConnFaults) bool {
	if f == nil {
		return false
	}
	s, ok := c.(interface{ stream() *streamConn })
	if !ok {
		return false
	}
	sc := s.stream()
	sc.wg.Lock()
	sc.faults = f
	sc.wg.Unlock()
	return true
}

// WithChaos wraps a transport so every accepted connection is subjected
// to the plan. The same plan value can simultaneously drive worker-side
// wrapping (DialOptions.Wrap) — the conn index sequence is shared.
func WithChaos(t Transport, p *FaultPlan) Transport {
	if p == nil {
		return t
	}
	return &faultTransport{inner: t, plan: p}
}

type faultTransport struct {
	inner Transport
	plan  *FaultPlan
}

func (t *faultTransport) Accept() (Conn, error) {
	c, err := t.inner.Accept()
	if err != nil {
		return c, err
	}
	InjectFaults(c, t.plan.conn())
	return c, nil
}

func (t *faultTransport) Close() error { return t.inner.Close() }

// sendFaulty is streamConn.Send's detour when a fault schedule is
// attached: called under the send mutex with the deadline already
// armed. Whatever happens to the bytes, the sender's rolling chain
// advances as if the frame was sent cleanly — that is what makes drops
// and duplicates visible to the receiver.
func (c *streamConn) sendFaulty(payload []byte) error {
	kind, delay := c.faults.next()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch kind {
	case faultDrop:
		c.wsum = stats.ChainSum(c.wsum, payload)
		return nil
	case faultPartition:
		c.Close()
		return fmt.Errorf("cluster: injected partition: %w", net.ErrClosed)
	case faultCorrupt:
		frame, sum, err := stats.AppendFrameSum(nil, payload, c.wsum)
		if err != nil {
			return err
		}
		// Flip one bit past the length prefix (payload or trailer): the
		// receiver must catch it by checksum, not by framing.
		off := stats.FrameHeaderLen + int(c.rngOff(len(frame)-stats.FrameHeaderLen))
		frame[off] ^= 0x80
		c.wsum = sum
		if _, err := c.w.Write(frame); err != nil {
			return err
		}
		return c.w.Flush()
	case faultDup:
		frame, sum, err := stats.AppendFrameSum(nil, payload, c.wsum)
		if err != nil {
			return err
		}
		c.wsum = sum
		for range 2 {
			if _, err := c.w.Write(frame); err != nil {
				return err
			}
		}
		return c.w.Flush()
	default:
		sum, err := stats.WriteFrameSum(c.w, payload, c.wsum)
		if err != nil {
			return err
		}
		c.wsum = sum
		return c.w.Flush()
	}
}

// rngOff draws a deterministic offset in [0, n) from the conn's fault
// schedule RNG.
func (c *streamConn) rngOff(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return c.faults.rng.Uint64() % uint64(n)
}

// ParseFaultPlan parses the -chaos-plan flag grammar: a comma-separated
// list of key=value settings. Probabilities are in [0,1]; delay takes
// prob:duration.
//
//	drop=0.01,dup=0.01,corrupt=0.02,delay=0.1:2ms,partition=40,conns=2,kills=3
//
// An empty spec yields a plan that injects nothing (but still counts
// conns), which is useful only for testing the plumbing.
func ParseFaultPlan(spec string, seed int64) (*FaultPlan, error) {
	p := &FaultPlan{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("cluster: chaos plan field %q is not key=value", field)
		}
		switch key {
		case "drop", "dup", "corrupt":
			prob, err := parseProb(key, val)
			if err != nil {
				return nil, err
			}
			switch key {
			case "drop":
				p.Drop = prob
			case "dup":
				p.Dup = prob
			case "corrupt":
				p.Corrupt = prob
			}
		case "delay":
			probStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("cluster: chaos delay wants prob:duration, got %q", val)
			}
			prob, err := parseProb(key, probStr)
			if err != nil {
				return nil, err
			}
			dur, err := time.ParseDuration(durStr)
			if err != nil || dur <= 0 {
				return nil, fmt.Errorf("cluster: chaos delay duration %q invalid", durStr)
			}
			p.Delay, p.DelayBy = prob, dur
		case "partition", "conns", "kills":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("cluster: chaos %s wants a non-negative integer, got %q", key, val)
			}
			switch key {
			case "partition":
				p.PartitionAfter = n
			case "conns":
				p.Conns = n
			case "kills":
				p.MaxKills = n
			}
		default:
			return nil, fmt.Errorf("cluster: unknown chaos plan key %q", key)
		}
	}
	if sum := p.Corrupt + p.Drop + p.Dup + p.Delay; sum > 1 {
		return nil, fmt.Errorf("cluster: chaos probabilities sum to %g > 1", sum)
	}
	return p, nil
}

func parseProb(key, val string) (float64, error) {
	prob, err := strconv.ParseFloat(val, 64)
	if err != nil || prob < 0 || prob > 1 {
		return 0, fmt.Errorf("cluster: chaos %s wants a probability in [0,1], got %q", key, val)
	}
	return prob, nil
}
