package cluster

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		&Challenge{Version: ProtoVersion, Nonce: "a1b2", PingMs: 2000, CutoffMs: 30000},
		&Hello{Version: ProtoVersion, Name: "w0"},
		&Hello{Version: ProtoVersion, Name: "w1", MAC: helloMAC("tok", "a1b2", "w1")},
		&Reject{Reason: "authentication failed"},
		&Ping{Seq: 7},
		&Pong{Seq: 7},
		&Prepare{Frames: []int{1000, 1500}},
		&Assign{Job: 2, Experiment: "fig3-1", Seed: 42, Scale: 0.5, Workers: 2, Shard: 3, Shards: 7},
		&LoopResult{Job: 2, Shard: 3, Loop: &experiments.LoopPartial{Label: "x", N: 10, Lo: 4}},
		&ShardDone{Job: 2, Shard: 3},
		&ShardError{Job: 2, Shard: 3, Msg: "boom"},
		&Stop{},
	}
	for _, m := range msgs {
		b, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T: got %+v, want %+v", m, got, m)
		}
	}
}

func TestDecodeMessageRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"empty", nil, "empty"},
		{"unknown kind", []byte("Z{}"), "unknown message kind"},
		{"broken json", []byte("H{not json"), "decoding hello"},
		{"wrong version", []byte(`H{"version":99,"name":"w"}`), "protocol version"},
		{"challenge wrong version", []byte(`C{"version":2,"nonce":"n"}`), "protocol version"},
		{"challenge negative ping", []byte(`C{"version":3,"nonce":"n","ping_ms":-1}`), "negative heartbeat"},
		{"challenge negative cutoff", []byte(`C{"version":3,"nonce":"n","cutoff_ms":-5}`), "negative heartbeat"},
		{"assign no experiment", []byte(`A{"seed":1,"shard":0,"shards":1}`), "names no experiment"},
		{"assign bad shard", []byte(`A{"experiment":"x","shard":5,"shards":2}`), "invalid shard"},
		{"assign negative job", []byte(`A{"job":-1,"experiment":"x","shard":0,"shards":1}`), "negative job"},
		{"loop without body", []byte(`L{"shard":1}`), "no loop"},
		{"loop negative shard", []byte(`L{"shard":-1,"loop":{}}`), "negative shard"},
		{"loop negative job", []byte(`L{"job":-3,"shard":1,"loop":{}}`), "negative job"},
		{"done negative shard", []byte(`D{"shard":-2}`), "negative shard"},
		{"done negative job", []byte(`D{"job":-1,"shard":0}`), "negative job"},
		{"error negative job", []byte(`E{"job":-1,"shard":0}`), "negative job"},
		{"prepare zero frame", []byte(`P{"frames":[1000,0]}`), "non-positive frame"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := DecodeMessage(c.in)
			if err == nil {
				t.Fatalf("decoded %+v from malformed input", m)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// FuzzDecodeMessage asserts the decoder's safety contract: arbitrary
// frame payloads never panic, and anything accepted re-encodes and
// decodes to the same message.
func FuzzDecodeMessage(f *testing.F) {
	seedMsgs := []Message{
		&Challenge{Version: ProtoVersion, Nonce: "n0", PingMs: 2000, CutoffMs: 30000},
		&Hello{Version: ProtoVersion, Name: "w", MAC: helloMAC("", "n0", "w")},
		&Reject{Reason: "nope"},
		&Prepare{Frames: []int{1000}},
		&Assign{Job: 1, Experiment: "fig3-1", Shard: 0, Shards: 1},
		&LoopResult{Job: 1, Shard: 0, Loop: &experiments.LoopPartial{Label: "l", N: 1}},
		&ShardDone{}, &ShardError{Msg: "x"}, &Stop{},
		&Ping{Seq: 1}, &Pong{Seq: 1},
	}
	for _, m := range seedMsgs {
		b, _ := EncodeMessage(m)
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte("A"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		b, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("re-encoding accepted message: %v", err)
		}
		m2, err := DecodeMessage(b)
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}

// sumFrame builds one valid checksummed frame (chain origin 0) holding
// the given payload — the shape Recv expects on a fresh conn.
func sumFrame(t *testing.T, payload []byte) []byte {
	t.Helper()
	frame, _, err := stats.AppendFrameSum(nil, payload, 0)
	if err != nil {
		t.Fatalf("AppendFrameSum: %v", err)
	}
	return frame
}

// TestConnRejectsGarbageStream feeds raw garbage — not valid frames,
// frames with broken checksums, or valid frames holding invalid
// messages — to a connection's Recv and expects errors, never panics or
// hangs: the satellite failure-path contract that a malformed peer
// cannot take the coordinator down.
func TestConnRejectsGarbageStream(t *testing.T) {
	badTrailer := sumFrame(t, []byte(`S{}`))
	badTrailer[len(badTrailer)-1] ^= 0x01 // flip a trailer bit
	badPayload := sumFrame(t, []byte(`S{}`))
	badPayload[stats.FrameHeaderLen] ^= 0x80 // flip a payload bit
	cases := [][]byte{
		[]byte("not a frame at all"),
		{0xff, 0xff, 0xff, 0x7f, 'x'},          // forged 2 GiB length
		{5, 0, 0, 0, 'Z', '{', '}', 'x', 'y'},  // frame with no trailer
		{1, 0, 0, 0},                           // truncated payload
		sumFrame(t, []byte("Z{}")),             // valid frame, unknown kind
		sumFrame(t, []byte("H{b")),             // valid frame, broken JSON
		badTrailer,                             // corrupted checksum trailer
		badPayload,                             // corrupted payload byte
		sumFrame(t, []byte(`H{"version":99}`)), // valid frame, wrong version
	}
	for i, in := range cases {
		a, b := net.Pipe()
		conn := newStreamConn(b, b, b.Close)
		go func(data []byte) {
			a.Write(data)
			a.Close()
		}(in)
		done := make(chan error, 1)
		go func() {
			_, err := conn.Recv()
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("case %d: garbage accepted", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("case %d: Recv hung on garbage", i)
		}
		conn.Close()
	}
}

// TestConnFrameRoundTrip pushes a large message through a stream
// connection to cover multi-chunk frame reads end to end.
func TestConnFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca := newStreamConn(a, a, a.Close)
	cb := newStreamConn(b, b, b.Close)
	defer ca.Close()
	defer cb.Close()
	big := &ShardError{Shard: 1, Msg: strings.Repeat("x", 200_000)}
	go func() {
		if err := ca.Send(big); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	m, err := cb.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	got, ok := m.(*ShardError)
	if !ok || !bytes.Equal([]byte(got.Msg), []byte(big.Msg)) {
		t.Fatalf("round trip mismatch: %T", m)
	}
}

// FuzzHandshake drives the worker-side handshake against an arbitrary
// first frame from the coordinator. Whatever the frame holds — a valid
// challenge, a reject, garbage JSON, a non-challenge message — the
// handshake must return an error or succeed; it must never panic and
// never wedge on the pipe.
func FuzzHandshake(f *testing.F) {
	seed := func(m Message) {
		b, err := EncodeMessage(m)
		if err != nil {
			f.Fatalf("encode seed: %v", err)
		}
		f.Add(b)
	}
	seed(&Challenge{Version: ProtoVersion, Nonce: "n", PingMs: 100, CutoffMs: 1000})
	seed(&Challenge{Version: ProtoVersion, Nonce: ""})
	seed(&Reject{Reason: "no"})
	seed(&Stop{})
	f.Add([]byte("C{"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		a, b := net.Pipe()
		worker := newStreamConn(b, b, b.Close)
		go func() {
			frame, _, err := stats.AppendFrameSum(nil, payload, 0)
			if err != nil {
				a.Close() // unframeable input: hang up so Recv sees EOF fast
				return
			}
			a.Write(frame)
			io.Copy(io.Discard, a) // drain the hello so the worker's Send never wedges
		}()
		if err := Handshake(worker, "w", "tok"); err == nil {
			// Accepted: the first frame must have been a well-formed
			// challenge, or the handshake is not validating its input.
			if m, derr := DecodeMessage(payload); derr != nil {
				t.Fatalf("handshake accepted an undecodable challenge frame")
			} else if _, ok := m.(*Challenge); !ok {
				t.Fatalf("handshake accepted a %T as a challenge", m)
			}
		}
		worker.Close()
		a.Close()
	})
}
