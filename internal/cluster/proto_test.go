package cluster

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		&Hello{Version: ProtoVersion, Name: "w0"},
		&Prepare{Frames: []int{1000, 1500}},
		&Assign{Job: 2, Experiment: "fig3-1", Seed: 42, Scale: 0.5, Workers: 2, Shard: 3, Shards: 7},
		&LoopResult{Job: 2, Shard: 3, Loop: &experiments.LoopPartial{Label: "x", N: 10, Lo: 4}},
		&ShardDone{Job: 2, Shard: 3},
		&ShardError{Job: 2, Shard: 3, Msg: "boom"},
		&Stop{},
	}
	for _, m := range msgs {
		b, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T: got %+v, want %+v", m, got, m)
		}
	}
}

func TestDecodeMessageRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"empty", nil, "empty"},
		{"unknown kind", []byte("Z{}"), "unknown message kind"},
		{"broken json", []byte("H{not json"), "decoding hello"},
		{"wrong version", []byte(`H{"version":99,"name":"w"}`), "protocol version"},
		{"assign no experiment", []byte(`A{"seed":1,"shard":0,"shards":1}`), "names no experiment"},
		{"assign bad shard", []byte(`A{"experiment":"x","shard":5,"shards":2}`), "invalid shard"},
		{"assign negative job", []byte(`A{"job":-1,"experiment":"x","shard":0,"shards":1}`), "negative job"},
		{"loop without body", []byte(`L{"shard":1}`), "no loop"},
		{"loop negative shard", []byte(`L{"shard":-1,"loop":{}}`), "negative shard"},
		{"loop negative job", []byte(`L{"job":-3,"shard":1,"loop":{}}`), "negative job"},
		{"done negative shard", []byte(`D{"shard":-2}`), "negative shard"},
		{"done negative job", []byte(`D{"job":-1,"shard":0}`), "negative job"},
		{"error negative job", []byte(`E{"job":-1,"shard":0}`), "negative job"},
		{"prepare zero frame", []byte(`P{"frames":[1000,0]}`), "non-positive frame"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := DecodeMessage(c.in)
			if err == nil {
				t.Fatalf("decoded %+v from malformed input", m)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// FuzzDecodeMessage asserts the decoder's safety contract: arbitrary
// frame payloads never panic, and anything accepted re-encodes and
// decodes to the same message.
func FuzzDecodeMessage(f *testing.F) {
	seedMsgs := []Message{
		&Hello{Version: ProtoVersion, Name: "w"},
		&Prepare{Frames: []int{1000}},
		&Assign{Job: 1, Experiment: "fig3-1", Shard: 0, Shards: 1},
		&LoopResult{Job: 1, Shard: 0, Loop: &experiments.LoopPartial{Label: "l", N: 1}},
		&ShardDone{}, &ShardError{Msg: "x"}, &Stop{},
	}
	for _, m := range seedMsgs {
		b, _ := EncodeMessage(m)
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte("A"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		b, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("re-encoding accepted message: %v", err)
		}
		m2, err := DecodeMessage(b)
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}

// TestConnRejectsGarbageStream feeds raw garbage — not valid frames, or
// valid frames holding invalid messages — to a connection's Recv and
// expects errors, never panics or hangs: the satellite failure-path
// contract that a malformed peer cannot take the coordinator down.
func TestConnRejectsGarbageStream(t *testing.T) {
	cases := [][]byte{
		[]byte("not a frame at all"),
		{0xff, 0xff, 0xff, 0x7f, 'x'},         // forged 2 GiB length
		{5, 0, 0, 0, 'Z', '{', '}', 'x', 'y'}, // frame holding unknown kind
		{1, 0, 0, 0},                          // truncated payload
		{3, 0, 0, 0, 'H', '{', 'b'},           // frame holding broken JSON
	}
	for i, in := range cases {
		a, b := net.Pipe()
		conn := newStreamConn(b, b, b.Close)
		go func(data []byte) {
			a.Write(data)
			a.Close()
		}(in)
		done := make(chan error, 1)
		go func() {
			_, err := conn.Recv()
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("case %d: garbage accepted", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("case %d: Recv hung on garbage", i)
		}
		conn.Close()
	}
}

// TestConnFrameRoundTrip pushes a large message through a stream
// connection to cover multi-chunk frame reads end to end.
func TestConnFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca := newStreamConn(a, a, a.Close)
	cb := newStreamConn(b, b, b.Close)
	defer ca.Close()
	defer cb.Close()
	big := &ShardError{Shard: 1, Msg: strings.Repeat("x", 200_000)}
	go func() {
		if err := ca.Send(big); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	m, err := cb.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	got, ok := m.(*ShardError)
	if !ok || !bytes.Equal([]byte(got.Msg), []byte(big.Msg)) {
		t.Fatalf("round trip mismatch: %T", m)
	}
}
