package cluster

import (
	"io"
	"net"
	"sync"
)

// inProcTransport runs n workers as goroutines in this process,
// connected to the coordinator over synchronous in-memory pipes. The
// frames and message codecs are exercised exactly as on a real network —
// only the bytes' carrier differs — which is what lets the determinism
// golden test cover the full runtime cheaply, and makes the transport a
// drop-in local mode for cmd/hintshard.
type inProcTransport struct {
	conns chan Conn

	mu     sync.Mutex
	closed bool
	ends   []Conn // worker-side conns, closed with the transport
}

// NewInProcess returns a transport with n in-process workers; serve is
// started once per worker on its own goroutine with the worker's index
// and connection (normally a Serve call; tests substitute misbehaving
// workers). Accept yields the n coordinator ends and then io.EOF.
func NewInProcess(n int, serve func(i int, c Conn)) Transport {
	t := &inProcTransport{conns: make(chan Conn, n)}
	for i := 0; i < n; i++ {
		cp, wp := net.Pipe()
		coord := newStreamConn(cp, cp, cp.Close)
		work := newStreamConn(wp, wp, wp.Close)
		t.ends = append(t.ends, work)
		t.conns <- coord
		go func(i int) {
			defer work.Close()
			serve(i, work)
		}(i)
	}
	close(t.conns)
	return t
}

func (t *inProcTransport) Accept() (Conn, error) {
	c, ok := <-t.conns
	if !ok {
		return nil, io.EOF
	}
	return c, nil
}

func (t *inProcTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for _, c := range t.ends {
		c.Close()
	}
	return nil
}
