package cluster

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// TestStdioWorkerHelper is not a test: it is the subprocess-transport
// worker body the cluster tests spawn (the test binary re-executed with
// CLUSTER_STDIO_WORKER set). It exits the process directly so the test
// framework's "PASS" never reaches the protocol stream.
func TestStdioWorkerHelper(t *testing.T) {
	if os.Getenv("CLUSTER_STDIO_WORKER") == "" {
		t.Skip("subprocess worker helper; spawned by the cluster tests")
	}
	so := ServeOptions{Name: fmt.Sprintf("helper/%d", os.Getpid()), Workers: 1}
	if v := os.Getenv("CLUSTER_DIE_AFTER"); v != "" {
		n, _ := strconv.Atoi(v)
		seen := 0
		so.OnAssign = func(Assign) error {
			seen++
			if seen >= n {
				os.Exit(3) // abrupt mid-shard death
			}
			return nil
		}
	}
	if err := ServeStdio(so); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// helperCommand builds the subprocess worker invocation; killFirst makes
// worker 0 die abruptly on its first assignment.
func helperCommand(killFirst bool) func(i int) *exec.Cmd {
	return func(i int) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestStdioWorkerHelper$")
		cmd.Env = append(os.Environ(), "CLUSTER_STDIO_WORKER=1")
		if killFirst && i == 0 {
			cmd.Env = append(cmd.Env, "CLUSTER_DIE_AFTER=1")
		}
		return cmd
	}
}

// testServeOpts builds worker options; with killFirst, worker 0 drops
// its connection on its first assignment (the in-process analogue of a
// killed worker: the shard is assigned and never answered).
func testServeOpts(i int, killFirst bool) ServeOptions {
	so := ServeOptions{Name: fmt.Sprintf("w%d", i), Workers: 1}
	if killFirst && i == 0 {
		fired := false
		so.OnAssign = func(Assign) error {
			if !fired {
				fired = true
				return errors.New("injected worker death")
			}
			return nil
		}
	}
	return so
}

// startTransport builds one of the three transports with the given
// worker count for the experiment runs in these tests.
func startTransport(t *testing.T, kind string, workers int, killFirst bool) Transport {
	t.Helper()
	switch kind {
	case "inproc":
		return NewInProcess(workers, func(i int, c Conn) {
			Serve(c, testServeOpts(i, killFirst))
		})
	case "subprocess":
		return NewSubprocess(workers, helperCommand(killFirst))
	case "tcp":
		lt, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		for i := 0; i < workers; i++ {
			go func(i int) {
				c, err := DialTCP(lt.Addr())
				if err != nil {
					return
				}
				Serve(c, testServeOpts(i, killFirst))
			}(i)
		}
		return lt
	}
	t.Fatalf("unknown transport %q", kind)
	return nil
}

func clusterRun(t *testing.T, kind, id string, workers, shards int, killFirst bool) (*experiments.Report, RunStats) {
	t.Helper()
	tr := startTransport(t, kind, workers, killFirst)
	rep, stats, err := Run(tr, Options{
		Experiment:   id,
		Seed:         42,
		Scale:        0.1,
		Shards:       shards,
		ShardWorkers: 1,
		Retries:      3,
	})
	if err != nil {
		t.Fatalf("cluster.Run(%s, %s, workers=%d, shards=%d, kill=%v): %v", kind, id, workers, shards, killFirst, err)
	}
	return rep, stats
}

// TestKilledWorkerProcessShardRedispatched kills a real worker process
// mid-shard (it receives the assignment and exits 3 without answering)
// and requires the coordinator to re-dispatch the orphaned shard and
// still produce the byte-identical report.
func TestKilledWorkerProcessShardRedispatched(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	exp, _ := experiments.ByID("fig2-2")
	base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
	rep, stats := clusterRun(t, "subprocess", "fig2-2", 2, 3, true)
	if got := rep.String(); got != base {
		t.Errorf("report differs after mid-shard worker kill:\n--- base ---\n%s\n--- cluster ---\n%s", base, got)
	}
	// The killed worker's shard is recovered either by a post-death
	// requeue or by a steal that raced ahead of the death notice.
	if stats.Requeued+stats.Stolen < 1 {
		t.Errorf("killed worker's shard neither requeued nor stolen (stats %+v)", stats)
	}
	if stats.Workers < 1 {
		t.Errorf("stats.Workers = %d", stats.Workers)
	}
}

// TestWorkerErrorExhaustsRetryBudget drives a shard that fails
// deterministically (unknown experiment id) into the retry budget and
// expects a clean abort carrying the worker's error.
func TestWorkerErrorExhaustsRetryBudget(t *testing.T) {
	tr := startTransport(t, "inproc", 1, false)
	_, _, err := Run(tr, Options{
		Experiment: "no-such-experiment",
		Seed:       42,
		Scale:      0.1,
		Shards:     2,
		Retries:    1,
	})
	if err == nil {
		t.Fatal("run of unknown experiment succeeded")
	}
	if !strings.Contains(err.Error(), "unknown experiment") || !strings.Contains(err.Error(), "failed 2 times") {
		t.Errorf("error %q does not describe the exhausted retry budget", err)
	}
}

// TestWorkerExitCodePropagation: when the run fails because worker
// processes died, the coordinator's error carries the worker's exit
// code for cmd/hintshard to propagate.
func TestWorkerExitCodePropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	tr := NewSubprocess(1, helperCommand(true))
	_, _, err := Run(tr, Options{
		Experiment: "fig2-2",
		Seed:       42,
		Scale:      0.1,
		Shards:     2,
		Retries:    0,
	})
	if err == nil {
		t.Fatal("run with only a dying worker succeeded")
	}
	var we *WorkerExitError
	if !errors.As(err, &we) {
		t.Fatalf("error %v does not carry a WorkerExitError", err)
	}
	if we.Code != 3 {
		t.Errorf("propagated exit code %d, want 3", we.Code)
	}
}

// TestAllWorkersGoneAborts: with a generous retry budget but no workers
// left (and none able to arrive), the coordinator must abort rather
// than wait forever.
func TestAllWorkersGoneAborts(t *testing.T) {
	tr := NewInProcess(1, func(i int, c Conn) {
		so := ServeOptions{Name: "dying", Workers: 1}
		so.OnAssign = func(Assign) error { return errors.New("always dies") }
		Serve(c, so)
	})
	_, _, err := Run(tr, Options{
		Experiment: "fig2-2",
		Seed:       42,
		Scale:      0.1,
		Shards:     2,
		Retries:    100,
	})
	if err == nil {
		t.Fatal("run with no surviving workers succeeded")
	}
	if !strings.Contains(err.Error(), "all workers gone") && !strings.Contains(err.Error(), "shards incomplete") {
		t.Errorf("error %q does not describe the stall", err)
	}
}

// TestProtocolViolatorDroppedRunCompletes: a worker answering with the
// wrong shard id is dropped, its shard is salvaged, and the run
// completes byte-identically on the remaining worker.
func TestProtocolViolatorDroppedRunCompletes(t *testing.T) {
	exp, _ := experiments.ByID("fig2-2")
	base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
	tr := NewInProcess(2, func(i int, c Conn) {
		if i == 0 {
			// Liar: claims completion of a shard it was never assigned.
			Handshake(c, "liar", "")
			if m, err := c.Recv(); err == nil {
				if a, ok := m.(*Assign); ok {
					c.Send(&ShardDone{Shard: a.Shard + 1})
				}
			}
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		}
		Serve(c, ServeOptions{Name: "honest", Workers: 1})
	})
	rep, stats, err := Run(tr, Options{
		Experiment: "fig2-2",
		Seed:       42,
		Scale:      0.1,
		Shards:     3,
		Retries:    3,
	})
	if err != nil {
		t.Fatalf("run with a protocol violator: %v", err)
	}
	if got := rep.String(); got != base {
		t.Errorf("report differs after dropping the violator:\n%s\nvs\n%s", base, got)
	}
	if stats.Requeued < 1 {
		t.Errorf("violator's shard not requeued (Requeued = %d)", stats.Requeued)
	}
}

// TestRunValidatesOptions covers the coordinator's own input checks.
func TestRunValidatesOptions(t *testing.T) {
	if _, _, err := Run(NewInProcess(0, nil), Options{Shards: 1}); err == nil {
		t.Error("empty experiment accepted")
	}
	if _, _, err := Run(NewInProcess(0, nil), Options{Experiment: "x"}); err == nil {
		t.Error("zero shard count accepted")
	}
}

// TestSpeculativeCopyCoversDyingWorker: once a shard has been stolen,
// the original holder's death must not charge the failure budget — the
// live copy completes the shard even with -retries 0. The hello/assign/
// steal/death order is forced by channels, so the scenario is exact,
// not probabilistic.
func TestSpeculativeCopyCoversDyingWorker(t *testing.T) {
	exp, _ := experiments.ByID("fig2-2")
	base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
	w0assigned := make(chan struct{})
	stolen := make(chan struct{})
	tr := NewInProcess(2, func(i int, c Conn) {
		if i == 0 {
			// Takes the only shard, then dies — but only after worker 1
			// has stolen a copy of it.
			Handshake(c, "doomed", "")
			if m, err := c.Recv(); err != nil {
				t.Errorf("doomed worker: %v", err)
				return
			} else if _, ok := m.(*Assign); !ok {
				t.Errorf("doomed worker got %T, want assign", m)
				return
			}
			close(w0assigned)
			<-stolen
			return // connection drops mid-shard
		}
		// Joins only after the shard is held, so its first assignment is
		// necessarily a stolen copy.
		<-w0assigned
		so := ServeOptions{Name: "thief", Workers: 1}
		fired := false
		so.OnAssign = func(Assign) error {
			if !fired {
				fired = true
				close(stolen)
			}
			return nil
		}
		Serve(c, so)
	})
	rep, stats, err := Run(tr, Options{
		Experiment: "fig2-2",
		Seed:       42,
		Scale:      0.1,
		Shards:     1,
		Retries:    0, // any charged failure would abort
	})
	if err != nil {
		t.Fatalf("run failed although a live copy covered the death: %v", err)
	}
	if got := rep.String(); got != base {
		t.Errorf("report differs:\n%s\nvs\n%s", base, got)
	}
	if stats.Stolen < 1 {
		t.Errorf("stats.Stolen = %d, want ≥ 1", stats.Stolen)
	}
	if stats.Requeued != 0 {
		t.Errorf("stats.Requeued = %d, want 0 (death was covered by the copy)", stats.Requeued)
	}
}

// TestHungStragglerCutOffAfterDrainTimeout: a worker that hangs forever
// on a shard another worker already completed must not block the run —
// the drain deadline cuts it off and Run returns the merged report.
func TestHungStragglerCutOffAfterDrainTimeout(t *testing.T) {
	exp, _ := experiments.ByID("fig2-2")
	base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
	w0assigned := make(chan struct{})
	hang := make(chan struct{})
	defer close(hang)
	tr := NewInProcess(2, func(i int, c Conn) {
		if i == 0 {
			Handshake(c, "hung", "")
			if _, err := c.Recv(); err != nil {
				return
			}
			close(w0assigned)
			<-hang // never answers, never dies
			return
		}
		<-w0assigned
		Serve(c, ServeOptions{Name: "worker", Workers: 1})
	})
	done := make(chan struct{})
	var rep *experiments.Report
	var runErr error
	go func() {
		defer close(done)
		rep, _, runErr = Run(tr, Options{
			Experiment:   "fig2-2",
			Seed:         42,
			Scale:        0.1,
			Shards:       1,
			Retries:      0,
			DrainTimeout: 200 * time.Millisecond,
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run blocked on a hung straggler")
	}
	if runErr != nil {
		t.Fatalf("run failed: %v", runErr)
	}
	if got := rep.String(); got != base {
		t.Errorf("report differs:\n%s\nvs\n%s", base, got)
	}
}

// TestHungVerifierSpeculativelyCovered: a worker that receives a
// verification re-run and hangs forever must not stall the campaign —
// the re-run is speculatively duplicated to another worker (the verify
// analogue of stealing) and the hung straggler is cut off at the drain
// deadline. The hello/assign/verify-dispatch order is forced by
// channels, so the scenario is exact.
func TestHungVerifierSpeculativelyCovered(t *testing.T) {
	exp, _ := experiments.ByID("fig2-2")
	base := exp.Run(experiments.Config{Scale: 0.1, Seed: 42, Workers: 1}).String()
	w0assigned := make(chan struct{})
	w1helloed := make(chan struct{})
	hang := make(chan struct{})
	defer close(hang)
	tr := NewInProcess(2, func(i int, c Conn) {
		if i == 1 {
			// Joins only after w0 holds the only fresh shard; its first
			// assignment is therefore the verification re-run (fresh
			// queue empty, stealing disabled), which it never answers.
			<-w0assigned
			if err := Handshake(c, "hung-verifier", ""); err != nil {
				return
			}
			close(w1helloed)
			if _, err := c.Recv(); err != nil {
				return
			}
			<-hang
			return
		}
		so := ServeOptions{Name: "honest", Workers: 1}
		fired := false
		so.OnAssign = func(Assign) error {
			if !fired {
				fired = true
				close(w0assigned)
				// Hold the shard until the hung verifier is enrolled, so
				// its hello is enqueued before this shard's completion.
				<-w1helloed
			}
			return nil
		}
		Serve(c, so)
	})
	stats, err := RunCampaign(tr, []Job{{Experiment: "fig2-2", Seed: 42, Scale: 0.1, Shards: 1}}, CampaignOptions{
		ShardWorkers: 1,
		Retries:      0, // any charged failure would abort
		NoSteal:      true,
		DrainTimeout: 300 * time.Millisecond,
		VerifyShards: func(job int, j Job) []int { return []int{0} },
		OnReport: func(_ int, _ Job, r *experiments.Report) error {
			if got := r.String(); got != base {
				t.Errorf("report differs:\n%s\nvs\n%s", base, got)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("campaign with a hung verifier: %v", err)
	}
	if stats.Verified != 1 {
		t.Errorf("stats.Verified = %d, want 1", stats.Verified)
	}
}

// TestAcceptFailureSurfacesInStallError: when the transport cannot
// produce workers at all (e.g. the worker binary fails to spawn), the
// abort error must carry the transport's failure, not just the generic
// stall.
func TestAcceptFailureSurfacesInStallError(t *testing.T) {
	tr := NewSubprocess(1, func(i int) *exec.Cmd {
		return exec.Command("/definitely/not/a/binary")
	})
	_, _, err := Run(tr, Options{
		Experiment: "fig2-2",
		Seed:       42,
		Scale:      0.1,
		Shards:     1,
	})
	if err == nil {
		t.Fatal("run with an unspawnable worker succeeded")
	}
	if !strings.Contains(err.Error(), "starting worker") {
		t.Errorf("stall error %q does not surface the spawn failure", err)
	}
}
