//go:build !race

package cluster

const underRace = false
