package ctlplane

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/hintserve"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestServeStatsEndpoint covers the hintnode shape: a serving-plane
// feed and no campaign control, with mutation endpoints disabled.
func TestServeStatsEndpoint(t *testing.T) {
	stats := hintserve.Stats{Packets: 120, DataFrames: 100, BadFrames: 5, Acks: 100, Batches: 9, LiveClients: 3}
	srv, err := Start("127.0.0.1:0", Config{Service: "hintnode", ServeStats: func() hintserve.Stats { return stats }})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d %q", code, body)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decoding status: %v\n%s", err, body)
	}
	if st.Service != "hintnode" || st.Campaign != nil || st.Serve == nil {
		t.Fatalf("status document wrong shape: %+v", st)
	}
	if st.Serve.Packets != 120 || st.Serve.LiveClients != 3 {
		t.Errorf("serve stats %+v do not round-trip", st.Serve)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE hintnode_packets_total counter",
		"hintnode_packets_total 120",
		"hintnode_acks_total 100",
		"hintnode_live_clients 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "campaign") {
		t.Errorf("campaign metrics leaked into a serve-only endpoint:\n%s", body)
	}

	// Mutation hooks are unset: the endpoints exist but refuse.
	resp, err := http.Post(base+"/jobs", "text/plain", strings.NewReader("fig2-2"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("submit without a hook = %d, want 403", resp.StatusCode)
	}
	resp, err = http.Post(base+"/jobs/0/cancel", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("cancel without a hook = %d, want 403", resp.StatusCode)
	}
}

// TestSubmitBodyHandling pins the submit endpoint's parsing: the body
// is the spec verbatim (trimmed), oversized bodies are truncated at the
// limit rather than buffered unboundedly, and hook errors map to 409.
func TestSubmitBodyHandling(t *testing.T) {
	var got string
	srv, err := Start("127.0.0.1:0", Config{
		Submit: func(spec string) (int, error) {
			got = spec
			return 7, nil
		},
		Cancel: func(job int) error { return nil },
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	resp, err := http.Post(base+"/jobs", "text/plain", strings.NewReader("  fig3-1:seed=7\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got != "fig3-1:seed=7" {
		t.Fatalf("submit = %d, hook saw %q", resp.StatusCode, got)
	}
	if !strings.Contains(string(body), `"job": 7`) {
		t.Errorf("submit response %q missing job index", body)
	}

	resp, err = http.Post(base+"/jobs/3/cancel", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cancel = %d", resp.StatusCode)
	}
}

// TestMetricLabels pins the exposition-format details the renderer is
// responsible for: quoted label values and the TYPE header appearing
// once per named metric.
func TestMetricLabels(t *testing.T) {
	var b strings.Builder
	metric(&b, "x_job_state", "", 1, "job", "3", "experiment", `fig"2`, "state", "running")
	want := `x_job_state{job="3",experiment="fig\"2",state="running"} 1` + "\n"
	if b.String() != want {
		t.Errorf("metric rendered %q, want %q", b.String(), want)
	}
	b.Reset()
	metric(&b, "x_total", "counter", 42)
	if b.String() != "# TYPE x_total counter\nx_total 42\n" {
		t.Errorf("typed metric rendered %q", b.String())
	}
}

// TestTokenGatesMutation covers the session-token gate on the mutation
// endpoints: a correct MAC passes, a wrong or missing one answers 401
// before any hook runs, the MAC does not transfer between method/path
// pairs, and the read path stays open without credentials.
func TestTokenGatesMutation(t *testing.T) {
	const token = "fleet-secret"
	submits, cancels := 0, 0
	srv, err := Start("127.0.0.1:0", Config{
		Token:  token,
		Submit: func(spec string) (int, error) { submits++; return 1, nil },
		Cancel: func(job int) error { cancels++; return nil },
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	post := func(path, body, mac string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if mac != "" {
			req.Header.Set(MACHeader, mac)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	spec := "fig2-2:seed=7"
	if code := post("/jobs", spec, Sign(token, "POST", "/jobs", []byte(spec))); code != http.StatusOK {
		t.Errorf("signed submit = %d, want 200", code)
	}
	if code := post("/jobs/3/cancel", "", Sign(token, "POST", "/jobs/3/cancel", nil)); code != http.StatusOK {
		t.Errorf("signed cancel = %d, want 200", code)
	}
	if submits != 1 || cancels != 1 {
		t.Fatalf("hooks ran %d/%d times, want 1/1", submits, cancels)
	}

	for name, mac := range map[string]string{
		"missing MAC":    "",
		"wrong token":    Sign("other-secret", "POST", "/jobs", []byte(spec)),
		"body not bound": Sign(token, "POST", "/jobs", []byte("fig3-1")),
		"path not bound": Sign(token, "POST", "/jobs/3/cancel", []byte(spec)),
		"garbage":        "zzzz",
	} {
		if code := post("/jobs", spec, mac); code != http.StatusUnauthorized {
			t.Errorf("%s: submit = %d, want 401", name, code)
		}
	}
	if code := post("/jobs/3/cancel", "", Sign(token, "POST", "/jobs/9/cancel", nil)); code != http.StatusUnauthorized {
		t.Errorf("cancel MAC for another job index accepted")
	}
	if submits != 1 || cancels != 1 {
		t.Errorf("hooks ran on rejected requests (%d/%d)", submits, cancels)
	}

	// Reads stay open: status is side-effect-free.
	if code, _ := get(t, base+"/status"); code != http.StatusOK {
		t.Errorf("unauthenticated /status = %d, want 200", code)
	}
	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Errorf("unauthenticated /metrics = %d, want 200", code)
	}
}

// TestEmptyTokenStaysOpen: the trusted-LAN default — no token, no MAC
// required.
func TestEmptyTokenStaysOpen(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Config{
		Submit: func(spec string) (int, error) { return 0, nil },
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	resp, err := http.Post("http://"+srv.Addr()+"/jobs", "text/plain", strings.NewReader("fig2-2"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("tokenless submit = %d, want 200", resp.StatusCode)
	}
}
