// Package ctlplane is the HTTP control plane shared by the coordinator
// (cmd/hintshard) and the serving plane (cmd/hintnode): a small stdlib
// server exposing live status as JSON (/status), the same counters in
// Prometheus text format (/metrics), and — when the host wires the
// mutation hooks — campaign mutation (POST /jobs to submit, POST
// /jobs/{n}/cancel to withdraw) against the running fleet.
//
// The read path is lock-free by construction: campaign status comes
// from cluster.Control's immutable snapshots (published by the
// coordinator's event loop, swapped in atomically), and serving-plane
// status from hintserve's consistent per-shard stats collection. A
// scraper therefore cannot block, slow, or reorder anything the
// coordinator or serving shards do — which is why the golden
// determinism tests hold byte-identical under concurrent scraping.
package ctlplane

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/hintserve"
)

// Config wires one status server to its data sources. Every field is
// optional: nil sources simply omit their section, and nil mutation
// hooks make the mutation endpoints answer 403.
type Config struct {
	// Service names the process ("hintshard", "hintnode"); it prefixes
	// every metric and tags the status document.
	Service string
	// Control is the campaign feed (coordinator side).
	Control *cluster.Control
	// ServeStats is the serving-plane feed (hintnode side).
	ServeStats func() hintserve.Stats
	// Submit parses one job spec and submits it to the running campaign,
	// returning the new job index. Cancel withdraws a job by index.
	Submit func(spec string) (int, error)
	Cancel func(job int) error
	// Token, when non-empty, gates the mutation endpoints (POST /jobs,
	// POST /jobs/{n}/cancel) behind the fleet's session token: requests
	// must carry Sign(token, method, path, body) in the MACHeader header
	// or they answer 401. The read path (/status, /metrics) stays open —
	// it is lock-free and side-effect-free by construction. An empty
	// token leaves mutation open too, matching the trusted-LAN default
	// of the worker handshake.
	Token string
	// Logf, if set, receives one line per mutation request.
	Logf func(format string, args ...any)
}

// Status is the /status document.
type Status struct {
	Service string    `json:"service"`
	Now     time.Time `json:"now"`
	// Campaign is the latest coordinator snapshot (absent until the
	// campaign publishes one, or when no Control is wired).
	Campaign *cluster.Snapshot `json:"campaign,omitempty"`
	// Serve is the serving-plane counter set (hintnode).
	Serve *hintserve.Stats `json:"serve,omitempty"`
}

// Server is one bound status endpoint.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// maxSpecBytes bounds a submitted job-spec body; real specs are tens of
// bytes.
const maxSpecBytes = 4096

// Start binds addr (host:port, port 0 for ephemeral) and serves the
// control plane until Close.
func Start(addr string, cfg Config) (*Server, error) {
	if cfg.Service == "" {
		cfg.Service = "hintshard"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: listen %s: %w", addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("POST /jobs/{job}/cancel", s.handleCancel)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (resolved port for :0 binds).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately; in-flight scrapes are cut off.
func (s *Server) Close() error { return s.srv.Close() }

// status assembles the current Status document.
func (s *Server) status() Status {
	st := Status{Service: s.cfg.Service, Now: time.Now()}
	if s.cfg.Control != nil {
		st.Campaign = s.cfg.Control.Snapshot()
	}
	if s.cfg.ServeStats != nil {
		v := s.cfg.ServeStats()
		st.Serve = &v
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.status())
}

// MACHeader carries the mutation-request MAC (see Sign).
const MACHeader = "X-Hintshard-MAC"

// Sign computes the mutation-request MAC: HMAC-SHA256 over the request
// method, path, and body under the shared session token, hex-encoded.
// Binding method and path stops a captured submit MAC from authorising
// a cancel (or vice versa); the scheme deliberately has no nonce — the
// control plane trusts its LAN against replay the same way the worker
// plane does, and the token only keeps strangers from steering the
// fleet.
func Sign(token, method, path string, body []byte) string {
	mac := hmac.New(sha256.New, []byte(token))
	io.WriteString(mac, method)
	mac.Write([]byte{0})
	io.WriteString(mac, path)
	mac.Write([]byte{0})
	mac.Write(body)
	return hex.EncodeToString(mac.Sum(nil))
}

// authorized checks a mutation request's MAC in constant time; with no
// token configured every request passes.
func (s *Server) authorized(r *http.Request, body []byte) bool {
	if s.cfg.Token == "" {
		return true
	}
	want := Sign(s.cfg.Token, r.Method, r.URL.Path, body)
	return hmac.Equal([]byte(r.Header.Get(MACHeader)), []byte(want))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Submit == nil {
		http.Error(w, "job submission is not enabled on this endpoint", http.StatusForbidden)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.authorized(r, body) {
		s.cfg.Logf("ctlplane: submit rejected: bad or missing MAC")
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	spec := strings.TrimSpace(string(body))
	if spec == "" {
		http.Error(w, "empty job spec", http.StatusBadRequest)
		return
	}
	job, err := s.cfg.Submit(spec)
	if err != nil {
		s.cfg.Logf("ctlplane: submit %q rejected: %v", spec, err)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.cfg.Logf("ctlplane: submitted job %d (%s)", job, spec)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"job\": %d}\n", job)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cancel == nil {
		http.Error(w, "job cancellation is not enabled on this endpoint", http.StatusForbidden)
		return
	}
	if !s.authorized(r, nil) {
		s.cfg.Logf("ctlplane: cancel rejected: bad or missing MAC")
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	job, err := strconv.Atoi(r.PathValue("job"))
	if err != nil {
		http.Error(w, "bad job index", http.StatusBadRequest)
		return
	}
	if err := s.cfg.Cancel(job); err != nil {
		s.cfg.Logf("ctlplane: cancel %d rejected: %v", job, err)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.cfg.Logf("ctlplane: cancelled job %d", job)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"job\": %d}\n", job)
}

// handleMetrics renders the same data as /status in Prometheus text
// exposition format, all metrics prefixed with the service name.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	p := s.cfg.Service
	if s.cfg.Control != nil {
		if snap := s.cfg.Control.Snapshot(); snap != nil {
			writeCampaignMetrics(&b, p, snap)
		}
	}
	if s.cfg.ServeStats != nil {
		writeServeMetrics(&b, p, s.cfg.ServeStats())
	}
	io.WriteString(w, b.String())
}

// metric writes one sample; labels come as alternating key, value
// pairs.
func metric(b *strings.Builder, name string, typ string, value float64, labels ...string) {
	if typ != "" {
		fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
	}
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", labels[i], labels[i+1])
		}
		b.WriteByte('}')
	}
	fmt.Fprintf(b, " %g\n", value)
}

func writeCampaignMetrics(b *strings.Builder, p string, snap *cluster.Snapshot) {
	c := func(name string, v int) {
		metric(b, p+"_"+name, "counter", float64(v))
	}
	st := snap.Stats
	c("workers_total", st.Workers)
	c("shards_assigned_total", st.Assigned)
	c("shards_stolen_total", st.Stolen)
	c("shards_requeued_total", st.Requeued)
	c("results_discarded_total", st.Discarded)
	c("shards_verified_total", st.Verified)
	c("workers_rejected_total", st.Rejected)
	c("workers_hung_total", st.Hung)
	c("corrupt_frames_total", st.CorruptFrames)
	c("jobs_submitted_total", st.Submitted)
	c("jobs_cancelled_total", st.Cancelled)
	metric(b, p+"_queue_depth", "gauge", float64(snap.QueueDepth))
	metric(b, p+"_campaign_done", "gauge", btof(snap.Done))
	metric(b, p+"_campaign_uptime_seconds", "gauge", snap.At.Sub(snap.StartedAt).Seconds())
	for _, j := range snap.Jobs {
		l := []string{"job", strconv.Itoa(j.Index), "experiment", j.Experiment}
		metric(b, p+"_job_shards", "", float64(j.Shards), l...)
		metric(b, p+"_job_shards_completed", "", float64(j.Completed), l...)
		metric(b, p+"_job_shards_in_flight", "", float64(j.InFlight), l...)
		metric(b, p+"_job_shards_queued", "", float64(j.Queued), l...)
		metric(b, p+"_job_failures", "", float64(j.Failures), l...)
		metric(b, p+"_job_state", "", 1, append(l, "state", j.State)...)
	}
	for _, w := range snap.Workers {
		l := []string{"worker", strconv.Itoa(w.ID), "name", w.Name}
		metric(b, p+"_worker_loops_total", "", float64(w.LoopsDone), l...)
		metric(b, p+"_worker_shards_total", "", float64(w.ShardsDone), l...)
		metric(b, p+"_worker_loops_per_second", "", w.LoopsPerSec, l...)
		metric(b, p+"_worker_up", "", btof(w.State != "dead"), append(l, "state", w.State)...)
	}
}

func writeServeMetrics(b *strings.Builder, p string, st hintserve.Stats) {
	u := func(name string, v uint64) { metric(b, p+"_"+name, "counter", float64(v)) }
	u("packets_total", st.Packets)
	u("short_drops_total", st.ShortDrops)
	u("bad_frames_total", st.BadFrames)
	u("data_frames_total", st.DataFrames)
	u("hints_total", st.Hints)
	u("acks_total", st.Acks)
	u("switches_total", st.Switches)
	u("admitted_total", st.Admitted)
	u("evicted_total", st.Evicted)
	u("rejected_total", st.Rejected)
	u("write_errors_total", st.WriteErrors)
	u("batches_total", st.Batches)
	metric(b, p+"_live_clients", "gauge", float64(st.LiveClients))
}

func btof(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
