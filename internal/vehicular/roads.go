// Package vehicular implements the §5.1 vehicular mesh evaluation: a
// road-constrained mobility model standing in for the paper's
// map-matched taxi traces, link formation by proximity, the
// heading-difference analysis of Table 5.1, the connection-time-estimate
// (CTE) routing metric, and the route-stability comparison against
// hint-free route selection.
//
// The paper's underlying assumption (§5.1.1) is that movement is
// constrained onto a common set of one-dimensional segments — roads — so
// two vehicles with similar headings are usually on the same road and
// separate slowly, while crossing vehicles separate at the full relative
// speed. The model here is exactly that abstraction: each vehicle drives
// straight along a road of arbitrary urban azimuth, occasionally turning
// onto a new road, on a toroidal 1 km² area so density stays constant
// (the paper likewise combines taxi traces into steady 100-vehicle
// networks). Link duration then follows the road geometry:
// range / (2·v·sin(Δheading/2)), which is the structure Table 5.1
// measures.
package vehicular

import (
	"math"
	"math/rand"
	"time"
)

// Area describes the simulated region: a torus of Width × Height metres.
type Area struct {
	Width, Height float64
}

// DefaultArea returns a 1 km² urban region.
func DefaultArea() Area { return Area{Width: 1000, Height: 1000} }

// Vehicle is one simulated vehicle's kinematic state.
type Vehicle struct {
	ID int
	// X, Y in metres within the area.
	X, Y float64
	// HeadingDeg is the road azimuth the vehicle travels, degrees
	// clockwise from north.
	HeadingDeg float64
	// SpeedMps is the current speed.
	SpeedMps float64
}

// MobilityConfig tunes the mobility model.
type MobilityConfig struct {
	Area Area
	// Vehicles is the fleet size (the paper simulates 100 per network).
	Vehicles int
	// MeanSpeed and SpeedJitter give per-vehicle speeds in m/s
	// (defaults 9 ± 3, city traffic).
	MeanSpeed, SpeedJitter float64
	// MeanSegment is the mean road-segment length before a turn, in
	// metres (default 1500 — taxis follow arterial roads for many blocks
	// between turns).
	MeanSegment float64
	// RoadHeadings, when non-zero, quantises road azimuths to this many
	// distinct directions (e.g. 4 for a pure Manhattan grid); 0 leaves
	// azimuths continuous, as in real urban maps.
	RoadHeadings int
	// Step is the simulation tick (default 1 s, matching the paper's
	// per-second trace positions).
	Step time.Duration
	Seed int64
}

// DefaultMobilityConfig returns the configuration used for the Table 5.1
// reproduction: 100 vehicles on 1 km².
func DefaultMobilityConfig(seed int64) MobilityConfig {
	return MobilityConfig{
		Area:        DefaultArea(),
		Vehicles:    100,
		MeanSpeed:   9,
		SpeedJitter: 1.5,
		MeanSegment: 1500,
		Step:        time.Second,
		Seed:        seed,
	}
}

// Simulation holds a running vehicular mobility simulation.
type Simulation struct {
	cfg  MobilityConfig
	rng  *rand.Rand
	vs   []Vehicle
	togo []float64 // metres remaining on the current road segment
	tick int
}

// NewSimulation places the fleet uniformly with random road headings.
func NewSimulation(cfg MobilityConfig) *Simulation {
	if cfg.Vehicles <= 0 {
		cfg.Vehicles = 100
	}
	if cfg.MeanSpeed <= 0 {
		cfg.MeanSpeed = 9
	}
	if cfg.Step <= 0 {
		cfg.Step = time.Second
	}
	if cfg.MeanSegment <= 0 {
		cfg.MeanSegment = 1500
	}
	if cfg.Area.Width <= 0 || cfg.Area.Height <= 0 {
		cfg.Area = DefaultArea()
	}
	s := &Simulation{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < cfg.Vehicles; i++ {
		v := Vehicle{ID: i}
		v.X = s.rng.Float64() * cfg.Area.Width
		v.Y = s.rng.Float64() * cfg.Area.Height
		v.HeadingDeg = s.newHeading()
		v.SpeedMps = math.Max(2, cfg.MeanSpeed+s.rng.NormFloat64()*cfg.SpeedJitter)
		s.vs = append(s.vs, v)
		s.togo = append(s.togo, s.segmentLen())
	}
	return s
}

// newHeading draws a road azimuth, quantised if RoadHeadings is set.
func (s *Simulation) newHeading() float64 {
	if n := s.cfg.RoadHeadings; n > 0 {
		return float64(s.rng.Intn(n)) * 360 / float64(n)
	}
	return s.rng.Float64() * 360
}

// segmentLen draws an exponential road-segment length.
func (s *Simulation) segmentLen() float64 {
	return s.rng.ExpFloat64() * s.cfg.MeanSegment
}

// Vehicles returns the current fleet state (shared slice; do not modify).
func (s *Simulation) Vehicles() []Vehicle { return s.vs }

// Now returns the current simulation time.
func (s *Simulation) Now() time.Duration { return time.Duration(s.tick) * s.cfg.Step }

// Step advances every vehicle one tick: straight along its road, turning
// onto a new road when the segment ends, wrapping toroidally.
func (s *Simulation) Step() {
	dt := s.cfg.Step.Seconds()
	for i := range s.vs {
		v := &s.vs[i]
		dist := v.SpeedMps * dt
		for dist > 0 {
			move := dist
			if move > s.togo[i] {
				move = s.togo[i]
			}
			rad := v.HeadingDeg * math.Pi / 180
			v.X = wrap(v.X+move*math.Sin(rad), s.cfg.Area.Width)
			v.Y = wrap(v.Y+move*math.Cos(rad), s.cfg.Area.Height)
			s.togo[i] -= move
			dist -= move
			if s.togo[i] <= 0 {
				v.HeadingDeg = s.newHeading()
				s.togo[i] = s.segmentLen()
			}
		}
	}
	s.tick++
}

func wrap(x, max float64) float64 {
	x = math.Mod(x, max)
	if x < 0 {
		x += max
	}
	return x
}

// Distance returns the toroidal distance between two vehicles.
func (s *Simulation) Distance(a, b Vehicle) float64 {
	w, h := s.cfg.Area.Width, s.cfg.Area.Height
	dx := math.Abs(a.X - b.X)
	if dx > w/2 {
		dx = w - dx
	}
	dy := math.Abs(a.Y - b.Y)
	if dy > h/2 {
		dy = h - dy
	}
	return math.Hypot(dx, dy)
}
