package vehicular

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSimulationDeterminism(t *testing.T) {
	a := NewSimulation(DefaultMobilityConfig(3))
	b := NewSimulation(DefaultMobilityConfig(3))
	for i := 0; i < 30; i++ {
		a.Step()
		b.Step()
	}
	for i := range a.Vehicles() {
		if a.Vehicles()[i] != b.Vehicles()[i] {
			t.Fatalf("vehicle %d differs across same-seed runs", i)
		}
	}
}

func TestVehiclesStayInArea(t *testing.T) {
	cfg := DefaultMobilityConfig(4)
	sim := NewSimulation(cfg)
	for i := 0; i < 120; i++ {
		sim.Step()
	}
	for _, v := range sim.Vehicles() {
		if v.X < 0 || v.X >= cfg.Area.Width || v.Y < 0 || v.Y >= cfg.Area.Height {
			t.Fatalf("vehicle %d escaped: (%v, %v)", v.ID, v.X, v.Y)
		}
	}
}

func TestVehiclesMove(t *testing.T) {
	sim := NewSimulation(DefaultMobilityConfig(5))
	before := append([]Vehicle(nil), sim.Vehicles()...)
	sim.Step()
	moved := 0
	for i, v := range sim.Vehicles() {
		if v.X != before[i].X || v.Y != before[i].Y {
			moved++
		}
	}
	if moved != len(before) {
		t.Errorf("only %d/%d vehicles moved", moved, len(before))
	}
	if sim.Now() != time.Second {
		t.Errorf("Now = %v", sim.Now())
	}
}

func TestToroidalDistance(t *testing.T) {
	sim := NewSimulation(DefaultMobilityConfig(1))
	a := Vehicle{X: 10, Y: 10}
	b := Vehicle{X: 990, Y: 10}
	// Across the wrap the distance is 20, not 980.
	if d := sim.Distance(a, b); math.Abs(d-20) > 1e-9 {
		t.Errorf("toroidal distance = %v, want 20", d)
	}
	c := Vehicle{X: 10, Y: 990}
	if d := sim.Distance(a, c); math.Abs(d-20) > 1e-9 {
		t.Errorf("toroidal y distance = %v, want 20", d)
	}
}

func TestRoadHeadingsQuantisation(t *testing.T) {
	cfg := DefaultMobilityConfig(6)
	cfg.RoadHeadings = 4
	sim := NewSimulation(cfg)
	for _, v := range sim.Vehicles() {
		h := math.Mod(v.HeadingDeg, 90)
		if h != 0 {
			t.Fatalf("heading %v not on the 4-direction grid", v.HeadingDeg)
		}
	}
}

func TestHeadingBucket(t *testing.T) {
	cases := []struct {
		diff float64
		want int
	}{
		{0, 0}, {9.9, 0}, {10, 1}, {19.9, 1}, {20, 2}, {29.9, 2}, {30, 3}, {180, 3},
	}
	for _, c := range cases {
		if got := HeadingBucket(c.diff); got != c.want {
			t.Errorf("bucket(%v) = %d, want %d", c.diff, got, c.want)
		}
	}
}

func TestCTE(t *testing.T) {
	// Smaller heading differences score higher.
	if CTE(5) <= CTE(50) {
		t.Error("CTE not decreasing in heading difference")
	}
	// Clamped below 1 degree: parallel vehicles get a large finite score.
	if CTE(0) != CTE(0.5) || math.IsInf(CTE(0), 1) {
		t.Error("CTE floor broken")
	}
	// Values beyond 180 reflect (360−d).
	if CTE(350) != CTE(10) {
		t.Errorf("CTE(350) = %v, want CTE(10) = %v", CTE(350), CTE(10))
	}
}

func TestCTEMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		d1 := math.Mod(math.Abs(a), 180)
		d2 := math.Mod(math.Abs(b), 180)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return CTE(d1) >= CTE(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteCTE(t *testing.T) {
	// The route metric is the minimum over hops.
	if got := RouteCTE([]float64{5, 40, 10}); got != CTE(40) {
		t.Errorf("RouteCTE = %v, want min hop %v", got, CTE(40))
	}
	if RouteCTE(nil) != 0 {
		t.Error("empty route should score 0")
	}
}

func TestCollectLinksBasicInvariants(t *testing.T) {
	cfg := DefaultMobilityConfig(7)
	cfg.Vehicles = 40
	sim := NewSimulation(cfg)
	links := CollectLinks(sim, 60*time.Second)
	if len(links) == 0 {
		t.Fatal("no links observed")
	}
	for _, l := range links {
		if l.Duration() < 0 {
			t.Fatalf("negative duration link %+v", l)
		}
		if l.StartHeadingDiff < 0 || l.StartHeadingDiff > 180 {
			t.Fatalf("heading diff %v out of range", l.StartHeadingDiff)
		}
		if l.A >= l.B {
			t.Fatalf("unordered pair (%d, %d)", l.A, l.B)
		}
		if l.End > 60*time.Second {
			t.Fatalf("link ends beyond the horizon: %v", l.End)
		}
	}
}

func TestSimilarHeadingsLastLonger(t *testing.T) {
	// The Table 5.1 structure at reduced scale.
	var all []LinkRecord
	for n := 0; n < 2; n++ {
		sim := NewSimulation(DefaultMobilityConfig(int64(100 + n)))
		all = append(all, CollectLinks(sim, 120*time.Second)...)
	}
	buckets, allMed := MedianDurations(all)
	if buckets[0] <= buckets[3] {
		t.Errorf("similar-heading median %v not above crossing median %v", buckets[0], buckets[3])
	}
	if buckets[0] <= allMed {
		t.Errorf("similar-heading median %v not above all-links median %v", buckets[0], allMed)
	}
}

func TestMedianDurationsEmpty(t *testing.T) {
	buckets, all := MedianDurations(nil)
	if all != 0 {
		t.Error("empty medians should be 0")
	}
	for _, b := range buckets {
		if b != 0 {
			t.Error("empty bucket median non-zero")
		}
	}
}

func TestRouteLifetimesSelectorGap(t *testing.T) {
	mob := DefaultMobilityConfig(8)
	mob.Vehicles = 120
	cfg := StabilityConfig{Mobility: mob, Hops: 2, Trials: 25, Horizon: 60 * time.Second, Seed: 9}
	cte := RouteLifetimes(cfg, CTESelector{})
	free := RouteLifetimes(cfg, RandomSelector{})
	if len(cte) == 0 || len(free) == 0 {
		t.Fatal("no routes constructed")
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(cte) <= mean(free) {
		t.Errorf("CTE routes (%.1fs) not longer-lived than hint-free (%.1fs)",
			mean(cte), mean(free))
	}
}

func TestSelectorNames(t *testing.T) {
	if (CTESelector{}).Name() != "CTE" || (RandomSelector{}).Name() != "hint-free" {
		t.Error("selector names wrong")
	}
}
