package vehicular

import (
	"math/rand"
	"time"
)

// Route-stability simulation for §5.1.2: each trial picks a source
// vehicle, builds a route to a destination a few hops away, and measures
// how long the route survives (every hop staying within LinkRange).
// CTE-guided selection prefers neighbours with similar headings;
// hint-free selection picks among in-range neighbours without heading
// knowledge (by shortest geographic progress, the standard
// greedy-geographic baseline).

// RouteSelector chooses the next hop from candidates.
type RouteSelector interface {
	Name() string
	// Pick returns the index of the chosen candidate.
	Pick(self Vehicle, cands []Vehicle, rng *rand.Rand) int
}

// CTESelector prefers the candidate with the highest CTE (most similar
// heading) — the hint-aware strategy.
type CTESelector struct{}

// Name implements RouteSelector.
func (CTESelector) Name() string { return "CTE" }

// Pick implements RouteSelector.
func (CTESelector) Pick(self Vehicle, cands []Vehicle, rng *rand.Rand) int {
	best, bestCTE := 0, -1.0
	for i, c := range cands {
		d := headingSeparation(self.HeadingDeg, c.HeadingDeg)
		if cte := CTE(d); cte > bestCTE {
			best, bestCTE = i, cte
		}
	}
	return best
}

// RandomSelector picks uniformly among in-range neighbours — the
// hint-free baseline (no heading information, all in-range neighbours
// look equally good to a proximity-based protocol).
type RandomSelector struct{}

// Name implements RouteSelector.
func (RandomSelector) Name() string { return "hint-free" }

// Pick implements RouteSelector.
func (RandomSelector) Pick(self Vehicle, cands []Vehicle, rng *rand.Rand) int {
	return rng.Intn(len(cands))
}

func headingSeparation(a, b float64) float64 {
	d := a - b
	for d < 0 {
		d += 360
	}
	for d >= 360 {
		d -= 360
	}
	if d > 180 {
		d = 360 - d
	}
	return d
}

// StabilityConfig parameterises a route-stability experiment.
type StabilityConfig struct {
	Mobility MobilityConfig
	// Hops is the route length in links (default 3).
	Hops int
	// Trials is the number of routes measured (default 200).
	Trials int
	// Horizon bounds each route-lifetime measurement (default 120 s).
	Horizon time.Duration
	Seed    int64
}

// RouteLifetimeTrial runs one self-contained route-stability attempt:
// its own simulation and RNG both derive from the given seed, so trials
// are independent and can run concurrently in any order. It returns the
// route lifetime in seconds; ok is false when no route could be
// constructed from the sampled source (sparse neighbourhood).
func RouteLifetimeTrial(cfg StabilityConfig, sel RouteSelector, seed int64) (life float64, ok bool) {
	if cfg.Hops <= 0 {
		cfg.Hops = 3
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 120 * time.Second
	}
	mcfg := cfg.Mobility
	mcfg.Seed = seed
	sim := NewSimulation(mcfg)
	// Warm up so vehicle positions decorrelate from the initial
	// placement.
	for i := 0; i < 10; i++ {
		sim.Step()
	}
	// The route-construction RNG is decoupled from the mobility seed so
	// the same fleet can be re-rolled with different sources if desired.
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	route, built := buildRoute(sim, sel, cfg.Hops, rng)
	if !built {
		return 0, false
	}
	return measureRoute(sim, route, cfg.Horizon).Seconds(), true
}

// RouteLifetimes measures the lifetime of Trials routes built with the
// selector: a route dies when any hop separates beyond LinkRange. It
// returns one lifetime in seconds per successfully constructed route,
// retrying failed constructions up to 4× Trials attempts. Each attempt
// is an independent RouteLifetimeTrial with an attempt-indexed seed.
func RouteLifetimes(cfg StabilityConfig, sel RouteSelector) []float64 {
	if cfg.Trials <= 0 {
		cfg.Trials = 200
	}
	var lifetimes []float64
	for attempt := 0; len(lifetimes) < cfg.Trials && attempt < cfg.Trials*4; attempt++ {
		if life, ok := RouteLifetimeTrial(cfg, sel, cfg.Seed+int64(attempt)*104729); ok {
			lifetimes = append(lifetimes, life)
		}
	}
	return lifetimes
}

// buildRoute grows a route from a random source, one hop at a time,
// asking the selector to choose among in-range candidates not already on
// the route.
func buildRoute(sim *Simulation, sel RouteSelector, hops int, rng *rand.Rand) ([]int, bool) {
	vs := sim.Vehicles()
	src := rng.Intn(len(vs))
	route := []int{src}
	used := map[int]bool{src: true}
	cur := src
	for len(route) <= hops {
		var cands []Vehicle
		var ids []int
		for i := range vs {
			if used[i] {
				continue
			}
			if sim.Distance(vs[cur], vs[i]) <= LinkRange {
				cands = append(cands, vs[i])
				ids = append(ids, i)
			}
		}
		if len(cands) == 0 {
			return nil, false
		}
		pick := sel.Pick(vs[cur], cands, rng)
		cur = ids[pick]
		route = append(route, cur)
		used[cur] = true
	}
	return route, true
}

// measureRoute steps the simulation until some hop exceeds LinkRange or
// the horizon passes, returning the elapsed time.
func measureRoute(sim *Simulation, route []int, horizon time.Duration) time.Duration {
	start := sim.Now()
	for sim.Now()-start < horizon {
		vs := sim.Vehicles()
		for i := 0; i+1 < len(route); i++ {
			if sim.Distance(vs[route[i]], vs[route[i+1]]) > LinkRange {
				return sim.Now() - start
			}
		}
		sim.Step()
	}
	return horizon
}
