package vehicular

import (
	"math"
	"sort"
	"time"

	"repro/internal/sensors"
)

// LinkRange is the paper's connectivity surrogate: two vehicles have a
// link at a given time iff they are within 100 m (§5.1.2, which uses
// geographic proximity as a crude surrogate for a connection).
const LinkRange = 100.0

// LinkRecord describes one observed link's lifetime.
type LinkRecord struct {
	A, B int
	// StartHeadingDiff is the unsigned heading difference in degrees
	// [0, 180] when the link began — the predictor Table 5.1 buckets by.
	StartHeadingDiff float64
	Start, End       time.Duration
}

// Duration returns the link lifetime.
func (l LinkRecord) Duration() time.Duration { return l.End - l.Start }

// CollectLinks steps the simulation for the given duration and records
// every link: when a pair first comes within LinkRange a link begins with
// the pair's heading difference at that moment; when they separate the
// link ends. Links still open at the end are closed at the horizon (a
// small downward bias shared by all buckets, as in any finite trace).
func CollectLinks(sim *Simulation, total time.Duration) []LinkRecord {
	type key struct{ a, b int }
	open := map[key]*LinkRecord{}
	var done []LinkRecord
	n := len(sim.Vehicles())
	for sim.Now() < total {
		now := sim.Now()
		vs := sim.Vehicles()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				k := key{i, j}
				inRange := sim.Distance(vs[i], vs[j]) <= LinkRange
				rec, isOpen := open[k]
				switch {
				case inRange && !isOpen:
					open[k] = &LinkRecord{
						A:                i,
						B:                j,
						StartHeadingDiff: sensors.HeadingSeparation(vs[i].HeadingDeg, vs[j].HeadingDeg),
						Start:            now,
					}
				case !inRange && isOpen:
					rec.End = now
					done = append(done, *rec)
					delete(open, k)
				}
			}
		}
		sim.Step()
	}
	horizon := sim.Now()
	for _, rec := range open {
		rec.End = horizon
		done = append(done, *rec)
	}
	sort.Slice(done, func(i, j int) bool {
		if done[i].Start != done[j].Start {
			return done[i].Start < done[j].Start
		}
		if done[i].A != done[j].A {
			return done[i].A < done[j].A
		}
		return done[i].B < done[j].B
	})
	return done
}

// HeadingBucket classifies a heading difference into the Table 5.1
// buckets: [0,10), [10,20), [20,30), [30,180].
func HeadingBucket(diff float64) int {
	switch {
	case diff < 10:
		return 0
	case diff < 20:
		return 1
	case diff < 30:
		return 2
	default:
		return 3
	}
}

// BucketNames labels the Table 5.1 buckets.
var BucketNames = [4]string{"[0,9]", "[10,19]", "[20,29]", "[30,180]"}

// MedianDurations computes Table 5.1: the median link duration in
// seconds per heading-difference bucket plus the all-links median.
func MedianDurations(links []LinkRecord) (buckets [4]float64, all float64) {
	var per [4][]float64
	var every []float64
	for _, l := range links {
		d := l.Duration().Seconds()
		per[HeadingBucket(l.StartHeadingDiff)] = append(per[HeadingBucket(l.StartHeadingDiff)], d)
		every = append(every, d)
	}
	for i := range per {
		buckets[i] = median(per[i])
	}
	return buckets, median(every)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// CTE is the connection time estimate metric of §5.1.1: the inverse of
// the heading difference between the two nodes of a link (degrees in
// [0, 180]); near-zero differences are clamped so parallel vehicles get
// a large, finite score.
func CTE(headingDiffDeg float64) float64 {
	d := math.Abs(headingDiffDeg)
	if d > 180 {
		d = 360 - d
	}
	const floor = 1.0 // below 1° the estimate is effectively "same road"
	if d < floor {
		d = floor
	}
	return 1 / d
}

// RouteCTE aggregates link CTEs into a route metric: the minimum over
// hops, since the weakest link breaks the route first (§5.1.1).
func RouteCTE(headingDiffs []float64) float64 {
	if len(headingDiffs) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, d := range headingDiffs {
		if c := CTE(d); c < min {
			min = c
		}
	}
	return min
}
