package ratesim

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/rate"
	"repro/internal/sensors"
)

// sampleRateWindows mirrors the Chapter 3 post-facto best-window sweep
// (internal/experiments), the hottest SampleRate path in the suite.
var sampleRateWindows = []time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second}

// TestSampleRateSweepAllocations guards the ROADMAP follow-up that
// replaced SampleRate's growing windowed FIFO with a ring buffer sized
// once per (window, frame length): a full TCP window sweep with fresh
// adapters must stay within a fixed, small allocation budget — one ring
// plus adapter/RNG setup per window, nothing per attempt. The growing
// FIFO this replaced cost a doubling-and-copy cascade per adapter (its
// event slice grew to the window population during every run).
func TestSampleRateSweepAllocations(t *testing.T) {
	sched := sensors.AlternatingSchedule(4*time.Second, 2*time.Second, sensors.Walk, false)
	tr := channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: 4 * time.Second, Seed: 21})
	sweep := func() {
		for _, w := range sampleRateWindows {
			sr := rate.NewSampleRate(33)
			sr.Window = w
			Run(Config{Trace: tr, Adapter: sr, Workload: TCP, Seed: 34})
		}
	}
	sweep() // warm the airtime/error LUT caches
	allocs := testing.AllocsPerRun(10, sweep)
	// Budget: per window ≈ adapter struct + math/rand source + one
	// ring allocation. 6 per window (24 total) leaves headroom without
	// letting per-attempt or growth allocations back in.
	if allocs > 24 {
		t.Errorf("TCP window sweep allocates %.0f times, want ≤ 24 (ring regressed to a growing FIFO?)", allocs)
	}
}

// TestSampleRateReplayAllocationFree pins the reused-adapter path: once
// the ring exists, Reset keeps its capacity and a full TCP replay
// performs no event-storage allocation at all.
func TestSampleRateReplayAllocationFree(t *testing.T) {
	sched := sensors.AlternatingSchedule(4*time.Second, 2*time.Second, sensors.Walk, false)
	tr := channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: 4 * time.Second, Seed: 21})
	sr := rate.NewSampleRate(33)
	sr.Window = 2 * time.Second
	Run(Config{Trace: tr, Adapter: sr, Workload: TCP, Seed: 34}) // allocate the ring
	allocs := testing.AllocsPerRun(5, func() {
		Run(Config{Trace: tr, Adapter: sr, Workload: TCP, Seed: 34})
	})
	if allocs != 0 {
		t.Errorf("reused SampleRate replay allocates %v times per run, want 0", allocs)
	}
}
