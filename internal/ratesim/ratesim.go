// Package ratesim is the trace-driven MAC simulation harness for the
// Chapter 3 rate adaptation experiments. It replays a channel fate trace
// (the role the modified ns-3 played in the paper): before each
// transmission attempt the adapter picks a rate, the trace decides the
// packet's fate, the clock advances by the frame exchange's airtime, and
// the adapter observes the outcome.
//
// Two traffic workloads are modelled. UDP saturates the link. TCP adds a
// loss-reactive congestion window with timeouts, reproducing the paper's
// observation that TCP collapses under the bursty loss of a fast-moving
// receiver (which is why the vehicular evaluation uses UDP).
//
// Run is the per-trial hot loop of every Chapter 3 experiment: airtime
// costs come from the memoized phy.AirtimesFor tables, randomness from
// an inline splitmix64 generator, and a replay performs no heap
// allocation (pinned by TestRunAllocationFree).
package ratesim

import (
	"math"
	"time"

	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/rate"
	"repro/internal/trace"
)

// Workload selects the traffic model.
type Workload int

// Supported workloads.
const (
	// UDP is a saturated constant stream.
	UDP Workload = iota
	// TCP adds AIMD congestion control with retransmission timeouts.
	TCP
)

// String names the workload.
func (w Workload) String() string {
	if w == TCP {
		return "TCP"
	}
	return "UDP"
}

// Config parameterises one simulation run.
type Config struct {
	Trace *trace.FateTrace
	// Adapter is the rate adaptation protocol under test.
	Adapter rate.Adapter
	// Workload selects UDP or TCP traffic (default UDP).
	Workload Workload
	// PacketBytes is the MAC payload size (default 1000, as in §3.3).
	PacketBytes int
	// RetryLimit is the MAC retransmission limit per packet (default 7).
	RetryLimit int
	// HintLatency delays the movement hint the adapter sees relative to
	// the trace's ground truth, modelling sensor detection (< 100 ms per
	// §2.2.1) plus hint-protocol delivery. Default 100 ms. Only consulted
	// for adapters implementing MovingSetter.
	HintLatency time.Duration
	// SNRStale delays the SNR the SNR-based adapters learn from an ACK,
	// modelling measurement-report latency (default one slot).
	SNRStale time.Duration
	// SNRNoise is the 1-σ measurement noise (dB) on each SNR report
	// (default 1.5 dB). Per-report noise is what CHARM's averaging
	// defends against and what makes RBAR's instantaneous picks jittery.
	SNRNoise float64
	// Seed drives the per-attempt fate and SNR-noise draws.
	Seed int64
}

// MovingSetter is implemented by hint-aware adapters that accept the
// receiver's movement hint.
type MovingSetter interface {
	SetMoving(bool)
}

// Result summarises one run.
type Result struct {
	// ThroughputMbps is delivered payload throughput.
	ThroughputMbps float64
	// Sent counts transmission attempts; Delivered counts MAC-level
	// successes; LostPackets counts packets dropped after RetryLimit.
	Sent, Delivered, LostPackets int
	// RateHistogram counts attempts per bit rate.
	RateHistogram [phy.NumRates]int
	// Timeouts counts TCP retransmission timeouts (TCP workload only).
	Timeouts int
}

// AvgRateMbps returns the attempt-weighted mean bit rate of the run.
func (r Result) AvgRateMbps() float64 {
	total, n := 0.0, 0
	for i, c := range r.RateHistogram {
		total += float64(phy.Rate(i).Mbps()) * float64(c)
		n += c
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Run replays the trace against the adapter and returns the result.
func Run(cfg Config) Result {
	tr := cfg.Trace
	bytes := cfg.PacketBytes
	if bytes <= 0 {
		bytes = 1000
	}
	retry := cfg.RetryLimit
	if retry <= 0 {
		retry = 7
	}
	hintLat := cfg.HintLatency
	if hintLat == 0 {
		hintLat = 100 * time.Millisecond
	}
	snrStale := cfg.SNRStale
	if snrStale == 0 {
		snrStale = tr.SlotDur
	}
	snrNoise := cfg.SNRNoise
	if snrNoise == 0 {
		snrNoise = 1.5
	}
	rng := parallel.NewRNG(cfg.Seed)
	// Airtime costs are pure functions of (rate, payload size); the
	// memoized tables keep the per-attempt clock advance to two array
	// reads instead of redone integer/Duration arithmetic.
	airt := phy.AirtimesFor(bytes)

	var res Result
	end := tr.Duration()
	now := time.Duration(0)

	// TCP state.
	cwnd := 2.0
	const rtt = 20 * time.Millisecond
	const rto = 200 * time.Millisecond
	consLost := 0

	setter, hasHint := cfg.Adapter.(MovingSetter)
	snrUpd, hasSNR := cfg.Adapter.(rate.SNRUpdater)
	var rtsOverhead time.Duration
	if ru, ok := cfg.Adapter.(rate.RTSUser); ok && ru.UsesRTS() {
		rtsOverhead = phy.RTSCTSAirtime()
	}

	for now < end {
		if hasHint {
			// The hint the sender holds reflects the receiver's state
			// HintLatency ago.
			setter.SetMoving(tr.MovingAt(now - hintLat))
		}
		// Transmit one MAC packet with retries.
		delivered := false
		for attempt := 0; attempt <= retry && now < end; attempt++ {
			if hasSNR {
				// SNR-based protocols receive the receiver's most recent
				// SNR report: one measurement interval stale, with
				// per-report measurement noise.
				snrUpd.UpdateSNR(now, tr.At(now-snrStale).SNR+rng.NormFloat64()*snrNoise)
			}
			r := cfg.Adapter.PickRate(now)
			// Packet fates are drawn per attempt from the slot's delivery
			// probability (which already includes the rate-independent
			// contention loss): given the slot SNR, bit errors are
			// independent across packets, while fades appear as slots whose
			// probability collapses toward zero.
			ok := rng.Float64() < tr.At(now).Prob[r]
			res.Sent++
			res.RateHistogram[r]++
			fb := rate.Feedback{At: now, Rate: r, Acked: ok, SNR: math.NaN()}
			now += rtsOverhead + phy.RetryBackoff(attempt)
			if ok {
				// The sender learns the receiver SNR from the exchange,
				// slightly stale and noisy.
				fb.SNR = tr.At(now-snrStale).SNR + rng.NormFloat64()*snrNoise
				now += airt.Frame[r]
			} else {
				now += airt.Failed[r]
			}
			cfg.Adapter.Observe(fb)
			if ok {
				delivered = true
				break
			}
		}
		if delivered {
			res.Delivered++
		} else {
			res.LostPackets++
		}

		if cfg.Workload == TCP {
			if delivered {
				consLost = 0
				cwnd += 1 / cwnd // congestion avoidance
				if cwnd > 64 {
					cwnd = 64
				}
			} else {
				consLost++
				cwnd /= 2
				if cwnd < 1 {
					cwnd = 1
				}
				if consLost >= 3 {
					// Retransmission timeout: the sender stalls.
					res.Timeouts++
					now += rto
					cwnd = 1
					consLost = 0
				}
			}
			// Pace by the window: cwnd packets per RTT. The top-rate
			// exchange airtime is loop-invariant, hoisted via the table.
			gap := time.Duration(float64(rtt) / cwnd)
			if min := airt.Frame[phy.Rate54]; gap < min {
				gap = 0 // window no longer the bottleneck
			} else {
				gap -= min
			}
			now += gap
		}
	}

	dur := end.Seconds()
	if dur > 0 {
		res.ThroughputMbps = float64(res.Delivered) * float64(bytes) * 8 / dur / 1e6
	}
	return res
}
