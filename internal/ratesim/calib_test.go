package ratesim

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/parallel"
	"repro/internal/rate"
	"repro/internal/sensors"
)

// TestCalibrationShape is a coarse early check that the synthetic channel
// induces the paper's protocol ordering: RapidSample best when mobile,
// SampleRate best when static, hint-aware best on mixed traces. The
// (environment, mode) cells are independent, so they fan out across the
// worker pool — this was the slowest test in the repo when it ran the
// 9 cells serially — and log in deterministic cell order afterwards.
func TestCalibrationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	envs := channel.Environments()
	modes := []string{"static", "mobile", "mixed"}
	type cell struct {
		env  channel.Environment
		mode string
	}
	var cells []cell
	for _, env := range envs {
		for _, mode := range modes {
			cells = append(cells, cell{env, mode})
		}
	}
	results := parallel.Map(0, len(cells), func(ci int) map[string]float64 {
		env, mode := cells[ci].env, cells[ci].mode
		var sched sensors.Schedule
		total := 20 * time.Second
		switch mode {
		case "static":
			sched = sensors.Schedule{{Start: 0, End: total, Mode: sensors.Static}}
		case "mobile":
			sched = sensors.Schedule{{Start: 0, End: total, Mode: sensors.Walk}}
		case "mixed":
			sched = sensors.AlternatingSchedule(total, 10*time.Second, sensors.Walk, false)
		}
		tputs := map[string]float64{}
		var pool channel.TracePool
		for _, mk := range []func(int64) rate.Adapter{
			func(s int64) rate.Adapter { return rate.NewRapidSample() },
			func(s int64) rate.Adapter { return rate.NewSampleRate(s) },
			func(s int64) rate.Adapter { return rate.NewRRAA() },
			func(s int64) rate.Adapter { return rate.NewRBAR() },
			func(s int64) rate.Adapter { return rate.NewCHARM() },
			func(s int64) rate.Adapter { return rate.NewHintAware(s) },
		} {
			sum := 0.0
			const reps = 5
			for rep := 0; rep < reps; rep++ {
				tr := pool.Generate(channel.Config{Env: env, Sched: sched, Total: total, Seed: int64(rep*100 + 1)})
				a := mk(int64(rep + 7))
				res := Run(Config{Trace: tr, Adapter: a, Workload: TCP})
				pool.Put(tr)
				sum += res.ThroughputMbps
			}
			name := mk(0).Name()
			tputs[name] = sum / reps
		}
		return tputs
	})
	for ci, tputs := range results {
		t.Logf("%-8s %-7s RS=%.2f SR=%.2f RRAA=%.2f RBAR=%.2f CHARM=%.2f HA=%.2f",
			cells[ci].env.Name, cells[ci].mode, tputs["RapidSample"], tputs["SampleRate"], tputs["RRAA"],
			tputs["RBAR"], tputs["CHARM"], tputs["HintAware"])
	}
}
