package ratesim

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/rate"
	"repro/internal/sensors"
	"repro/internal/trace"
)

// perfectTrace builds a trace where every rate always delivers.
func perfectTrace(n int) *trace.FateTrace {
	tr := &trace.FateTrace{Env: "unit", Mode: "static", SlotDur: trace.DefaultSlot, Slots: make([]trace.Slot, n)}
	for i := range tr.Slots {
		tr.Slots[i].SNR = 40
		for r := 0; r < phy.NumRates; r++ {
			tr.Slots[i].Prob[r] = 1
			tr.Slots[i].Delivered[r] = true
		}
	}
	return tr
}

// cappedTrace delivers only at rates ≤ max.
func cappedTrace(n int, max phy.Rate) *trace.FateTrace {
	tr := perfectTrace(n)
	for i := range tr.Slots {
		for r := int(max) + 1; r < phy.NumRates; r++ {
			tr.Slots[i].Prob[r] = 0
			tr.Slots[i].Delivered[r] = false
		}
	}
	return tr
}

func TestUDPThroughputOnPerfectChannel(t *testing.T) {
	tr := perfectTrace(400) // 2 s
	res := Run(Config{Trace: tr, Adapter: rate.NewRapidSample(), Workload: UDP, Seed: 1})
	// At 54 Mbps with MAC overhead, goodput is ~24-25 Mbps for 1000 B
	// frames.
	if res.ThroughputMbps < 20 || res.ThroughputMbps > 26 {
		t.Errorf("UDP goodput = %.2f Mbps, want ≈ 24", res.ThroughputMbps)
	}
	if res.LostPackets != 0 {
		t.Errorf("%d lost packets on a perfect channel", res.LostPackets)
	}
	if res.Sent != res.Delivered {
		t.Errorf("sent %d != delivered %d on a perfect channel", res.Sent, res.Delivered)
	}
}

func TestAdapterConvergesToCap(t *testing.T) {
	tr := cappedTrace(400, phy.Rate24)
	res := Run(Config{Trace: tr, Adapter: rate.NewRapidSample(), Workload: UDP, Seed: 2})
	// Most attempts should end up at or below the cap after convergence,
	// and goodput should approach the 24 Mbps effective limit (~14).
	if res.ThroughputMbps < 9 {
		t.Errorf("goodput %.2f too low for a clean 24 Mbps cap", res.ThroughputMbps)
	}
	above := 0
	for r := int(phy.Rate24) + 1; r < phy.NumRates; r++ {
		above += res.RateHistogram[r]
	}
	if above > res.Sent/3 {
		t.Errorf("%d/%d attempts above the cap", above, res.Sent)
	}
}

func TestDeterminism(t *testing.T) {
	sched := sensors.AlternatingSchedule(4*time.Second, time.Second, sensors.Walk, false)
	tr := channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: 4 * time.Second, Seed: 3})
	run := func() Result {
		return Run(Config{Trace: tr, Adapter: rate.NewSampleRate(9), Workload: TCP, Seed: 17})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestTCPSlowerThanUDPOnLossyChannel(t *testing.T) {
	sched := sensors.Schedule{{Start: 0, End: 4 * time.Second, Mode: sensors.Walk}}
	tr := channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: 4 * time.Second, Seed: 4})
	udp := Run(Config{Trace: tr, Adapter: rate.NewSampleRate(1), Workload: UDP, Seed: 5})
	tcp := Run(Config{Trace: tr, Adapter: rate.NewSampleRate(1), Workload: TCP, Seed: 5})
	if tcp.ThroughputMbps > udp.ThroughputMbps {
		t.Errorf("TCP %.2f above UDP %.2f on a lossy mobile channel",
			tcp.ThroughputMbps, udp.ThroughputMbps)
	}
	if tcp.Timeouts == 0 {
		t.Log("note: no TCP timeouts on this trace (acceptable, seed dependent)")
	}
}

func TestHintDelivery(t *testing.T) {
	// The adapter must see the trace's mobility with the configured
	// latency.
	total := 2 * time.Second
	sched := sensors.Schedule{{Start: time.Second, End: total, Mode: sensors.Walk}}
	tr := channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: total, Seed: 6})
	ha := rate.NewHintAware(1)
	Run(Config{Trace: tr, Adapter: ha, Workload: UDP, HintLatency: 100 * time.Millisecond, Seed: 7})
	if !ha.Moving() {
		t.Error("hint-aware adapter never learned the receiver moved")
	}
	if ha.Switches() == 0 {
		t.Error("no strategy switches on a static→mobile trace")
	}
}

func TestRetryAccounting(t *testing.T) {
	// A channel dead at every rate: every packet exhausts its retries.
	tr := perfectTrace(100)
	for i := range tr.Slots {
		for r := 0; r < phy.NumRates; r++ {
			tr.Slots[i].Prob[r] = 0
		}
	}
	res := Run(Config{Trace: tr, Adapter: rate.NewRapidSample(), Workload: UDP, RetryLimit: 3, Seed: 8})
	if res.Delivered != 0 {
		t.Errorf("%d deliveries on a dead channel", res.Delivered)
	}
	if res.LostPackets == 0 {
		t.Error("no packets recorded lost")
	}
	// Each lost packet used RetryLimit+1 attempts (the final chain may
	// be truncated by the trace end).
	if res.Sent > res.LostPackets*4 || res.Sent < res.LostPackets*4-4 {
		t.Errorf("sent %d attempts for %d lost packets, want ≈ %d",
			res.Sent, res.LostPackets, res.LostPackets*4)
	}
}

func TestExtraLossApplied(t *testing.T) {
	tr := perfectTrace(2000)
	tr.ExtraLoss = 0.5
	for i := range tr.Slots {
		for r := 0; r < phy.NumRates; r++ {
			tr.Slots[i].Prob[r] = 0.5 // channel perfect, contention 50%
		}
	}
	res := Run(Config{Trace: tr, Adapter: rate.NewRapidSample(), Workload: UDP, Seed: 9})
	// About half the attempts must fail.
	failFrac := 1 - float64(res.Delivered)/float64(res.Sent)
	if failFrac < 0.3 {
		t.Errorf("attempt failure fraction %.2f, want ≈ 0.5 under 50%% loss", failFrac)
	}
}

// TestRunAllocationFree pins the simulator's inner loop at zero heap
// allocations: with the airtime tables memoized and the inline RNG on
// the stack, replaying a trace must not generate garbage (the adapter
// here, RapidSample, holds fixed-size state).
func TestRunAllocationFree(t *testing.T) {
	sched := sensors.AlternatingSchedule(2*time.Second, time.Second, sensors.Walk, false)
	tr := channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: 2 * time.Second, Seed: 14})
	ad := rate.NewRapidSample()
	Run(Config{Trace: tr, Adapter: ad, Workload: UDP, Seed: 15}) // warm LUT caches
	allocs := testing.AllocsPerRun(5, func() {
		Run(Config{Trace: tr, Adapter: ad, Workload: UDP, Seed: 15})
	})
	if allocs != 0 {
		t.Errorf("Run allocates %v times per replay, want 0", allocs)
	}
}

func TestAvgRateMbps(t *testing.T) {
	var r Result
	if r.AvgRateMbps() != 0 {
		t.Error("empty result should average 0")
	}
	r.RateHistogram[phy.Rate6] = 1
	r.RateHistogram[phy.Rate54] = 1
	if got := r.AvgRateMbps(); got != 30 {
		t.Errorf("avg = %v, want 30", got)
	}
}

func TestWorkloadString(t *testing.T) {
	if UDP.String() != "UDP" || TCP.String() != "TCP" {
		t.Error("workload names wrong")
	}
}
