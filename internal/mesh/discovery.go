package mesh

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/probing"
	"repro/internal/sim"
)

// Network-scale topology maintenance: the Chapter 4 protocol as running
// code. Nodes on a plane broadcast probes on a schedule; receivers
// update their neighbour tables with sliding-window delivery estimates.
// Each node's probe scheduler is either fixed-rate or hint-adaptive
// (§4.2): a moving node — or one whose neighbour advertises movement on
// its probes — probes fast, everyone else probes slowly.
//
// The simulation quantifies the §4.2 trade-off at network scale: total
// probe bandwidth versus the error of every node's delivery estimates
// about every neighbour.

// NodeState is the ground truth for one simulated node.
type NodeState struct {
	ID   NodeID
	X, Y float64
	// Moving is the node's ground-truth mobility; moving nodes random-walk.
	Moving bool
	// SpeedMps is the walk speed while Moving.
	SpeedMps float64
}

// DiscoveryConfig parameterises a topology-maintenance simulation.
type DiscoveryConfig struct {
	// Nodes is the ground-truth node set; positions evolve during the
	// run for moving nodes.
	Nodes []NodeState
	// Range is the communication range in metres (links form within it).
	Range float64
	// PathLossExp shapes delivery probability with distance: delivery ≈
	// (1 − (d/Range)^PathLossExp) for d < Range, 0 beyond (default 4).
	PathLossExp float64
	// MobileChurn adds delivery-probability noise to links with a moving
	// endpoint, modelling the fast-varying mobile channel (default 0.25).
	MobileChurn float64
	// HintAware selects the §4.2 scheduler; otherwise every node probes
	// at StaticRate.
	HintAware bool
	// StaticRate and MobileRate are probes/s (defaults 1 and 10).
	StaticRate, MobileRate float64
	// Total is the simulated duration.
	Total time.Duration
	Seed  int64
}

// DiscoveryResult summarises the run.
type DiscoveryResult struct {
	// ProbesSent is the total probe transmissions (the bandwidth cost).
	ProbesSent int
	// MeanError is the average |estimate − truth| across every
	// (node, neighbour) pair sampled once per second.
	MeanError float64
	// MeanErrorMobile restricts the error to pairs with a moving
	// endpoint — where the schedulers differ.
	MeanErrorMobile float64
}

// RunDiscovery executes the simulation on the discrete-event engine.
func RunDiscovery(cfg DiscoveryConfig) DiscoveryResult {
	if cfg.Range <= 0 {
		cfg.Range = 100
	}
	if cfg.PathLossExp <= 0 {
		cfg.PathLossExp = 4
	}
	if cfg.MobileChurn == 0 {
		cfg.MobileChurn = 0.25
	}
	if cfg.StaticRate <= 0 {
		cfg.StaticRate = 1
	}
	if cfg.MobileRate <= 0 {
		cfg.MobileRate = 10
	}
	if cfg.Total <= 0 {
		cfg.Total = 60 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	eng := sim.New()
	nodes := append([]NodeState(nil), cfg.Nodes...)
	n := len(nodes)

	// Per-receiver, per-sender delivery estimators.
	est := make([]map[NodeID]*probing.Estimator, n)
	tables := make([]*Table, n)
	for i := range nodes {
		est[i] = make(map[NodeID]*probing.Estimator)
		tables[i] = NewTable(nodes[i].ID)
	}
	// Per-pair churn phase for the mobile delivery fluctuation.
	phase := make([][]float64, n)
	for i := range phase {
		phase[i] = make([]float64, n)
		for j := range phase[i] {
			phase[i][j] = rng.Float64() * 2 * math.Pi
		}
	}

	dist := func(a, b int) float64 {
		return math.Hypot(nodes[a].X-nodes[b].X, nodes[a].Y-nodes[b].Y)
	}
	// truth returns the current delivery probability from a to b.
	truth := func(a, b int, now time.Duration) float64 {
		d := dist(a, b)
		if d >= cfg.Range {
			return 0
		}
		p := 1 - math.Pow(d/cfg.Range, cfg.PathLossExp)
		if nodes[a].Moving || nodes[b].Moving {
			lo := math.Min(float64(a), float64(b))
			hi := math.Max(float64(a), float64(b))
			p *= 0.75 + cfg.MobileChurn*math.Sin(2*math.Pi*now.Seconds()/3+phase[int(lo)][int(hi)])
		}
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return p
	}

	var res DiscoveryResult

	// Movement: moving nodes random-walk at 100 ms steps.
	var moveStep func()
	moveStep = func() {
		for i := range nodes {
			if !nodes[i].Moving {
				continue
			}
			sp := nodes[i].SpeedMps
			if sp <= 0 {
				sp = 1.4
			}
			ang := rng.Float64() * 2 * math.Pi
			nodes[i].X += sp * 0.1 * math.Cos(ang)
			nodes[i].Y += sp * 0.1 * math.Sin(ang)
		}
		if eng.Now() < cfg.Total {
			eng.After(100*time.Millisecond, moveStep)
		}
	}
	eng.After(100*time.Millisecond, moveStep)

	// neighbourMoving reports whether any node within range of i is
	// moving — the hint a node learns from the movement bits on its
	// neighbours' probes.
	neighbourMoving := func(i int) bool {
		for j := range nodes {
			if j != i && nodes[j].Moving && dist(i, j) < cfg.Range {
				return true
			}
		}
		return false
	}

	// Probing: each node owns a scheduler-driven probe loop.
	for i := range nodes {
		i := i
		var sched probing.Scheduler
		if cfg.HintAware {
			sched = &probing.HintScheduler{
				StaticPerSecond: cfg.StaticRate,
				MobilePerSecond: cfg.MobileRate,
				MovingFn: func(now time.Duration) bool {
					return nodes[i].Moving || neighbourMoving(i)
				},
			}
		} else {
			sched = &probing.FixedScheduler{PerSecond: cfg.StaticRate}
		}
		var probe func()
		probe = func() {
			now := eng.Now()
			res.ProbesSent++
			// Broadcast: every in-range node draws a delivery outcome
			// and updates its estimate of the sender.
			for j := range nodes {
				if j == i || dist(i, j) >= cfg.Range {
					continue
				}
				e := est[j][nodes[i].ID]
				if e == nil {
					e = probing.NewEstimator()
					est[j][nodes[i].ID] = e
				}
				e.Add(rng.Float64() < truth(i, j, now))
				tables[j].Update(Link{To: nodes[i].ID, Forward: e.Estimate(), UpdatedAt: now})
			}
			if next := sched.Next(now); next < cfg.Total {
				eng.At(next, probe)
			}
		}
		eng.At(time.Duration(rng.Int63n(int64(time.Second))), probe)
	}

	// Accuracy sampling once per second.
	var errSum, errN, errSumMob, errNMob float64
	var sample func()
	sample = func() {
		now := eng.Now()
		for j := range nodes {
			for i := range nodes {
				if i == j || dist(i, j) >= cfg.Range {
					continue
				}
				e := est[j][nodes[i].ID]
				if e == nil || !e.Ready() {
					continue
				}
				err := math.Abs(e.Estimate() - truth(i, j, now))
				errSum += err
				errN++
				if nodes[i].Moving || nodes[j].Moving {
					errSumMob += err
					errNMob++
				}
			}
		}
		if now+time.Second < cfg.Total {
			eng.After(time.Second, sample)
		}
	}
	eng.After(5*time.Second, sample) // let windows fill first

	eng.RunUntil(cfg.Total)
	if errN > 0 {
		res.MeanError = errSum / errN
	}
	if errNMob > 0 {
		res.MeanErrorMobile = errSumMob / errNMob
	}
	return res
}

// GridNodes lays out rows × cols static nodes with the given spacing,
// plus walkers moving among them — a convenient DiscoveryConfig input.
func GridNodes(rows, cols int, spacing float64, walkers int) []NodeState {
	var out []NodeState
	id := NodeID(0)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, NodeState{ID: id, X: float64(c) * spacing, Y: float64(r) * spacing})
			id++
		}
	}
	for w := 0; w < walkers; w++ {
		out = append(out, NodeState{
			ID: id, X: float64(w) * spacing, Y: spacing / 2,
			Moving: true, SpeedMps: 1.4,
		})
		id++
	}
	return out
}
