package mesh

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestLinkETX(t *testing.T) {
	l := Link{Forward: 0.8, Reverse: 0.5}
	if got := l.ETX(); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("ETX = %v, want 2.5", got)
	}
	if got := l.ForwardETX(); math.Abs(got-1.25) > 1e-9 {
		t.Errorf("ForwardETX = %v, want 1.25", got)
	}
	dead := Link{Forward: 0, Reverse: 1}
	if !math.IsInf(dead.ETX(), 1) || !math.IsInf(dead.ForwardETX(), 1) {
		t.Error("dead link ETX should be +Inf")
	}
}

func TestTableUpdateLookup(t *testing.T) {
	tab := NewTable(1)
	tab.Update(Link{To: 2, Forward: 0.9, Reverse: 0.9})
	tab.Update(Link{To: 3, Forward: 0.5, Reverse: 0.5})
	l, ok := tab.Link(2)
	if !ok || l.From != 1 || l.Forward != 0.9 {
		t.Errorf("link = %+v ok=%v", l, ok)
	}
	if _, ok := tab.Link(99); ok {
		t.Error("phantom neighbour")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
	ns := tab.Neighbors()
	if len(ns) != 2 || ns[0] != 2 || ns[1] != 3 {
		t.Errorf("Neighbors = %v", ns)
	}
	tab.Remove(2)
	if tab.Len() != 1 {
		t.Error("Remove failed")
	}
}

func TestTableUpdateReplaces(t *testing.T) {
	tab := NewTable(1)
	tab.Update(Link{To: 2, Forward: 0.2})
	tab.Update(Link{To: 2, Forward: 0.9})
	l, _ := tab.Link(2)
	if l.Forward != 0.9 {
		t.Error("update did not replace")
	}
	if tab.Len() != 1 {
		t.Error("duplicate entries")
	}
}

func TestTableExpire(t *testing.T) {
	tab := NewTable(1)
	tab.Update(Link{To: 2, Forward: 1, UpdatedAt: 0})
	tab.Update(Link{To: 3, Forward: 1, UpdatedAt: 9 * time.Second})
	n := tab.Expire(10*time.Second, 5*time.Second)
	if n != 1 || tab.Len() != 1 {
		t.Errorf("expired %d, len %d", n, tab.Len())
	}
	if _, ok := tab.Link(3); !ok {
		t.Error("fresh link expired")
	}
}

func TestBestNeighbor(t *testing.T) {
	tab := NewTable(1)
	if _, ok := tab.BestNeighbor(); ok {
		t.Error("empty table produced a best neighbour")
	}
	tab.Update(Link{To: 2, Forward: 0.5})
	tab.Update(Link{To: 3, Forward: 0.9})
	tab.Update(Link{To: 4, Forward: 0.7})
	best, ok := tab.BestNeighbor()
	if !ok || best != 3 {
		t.Errorf("best = %v", best)
	}
}

func TestBestNeighborTieBreak(t *testing.T) {
	tab := NewTable(1)
	tab.Update(Link{To: 9, Forward: 0.8})
	tab.Update(Link{To: 2, Forward: 0.8})
	best, _ := tab.BestNeighbor()
	if best != 2 {
		t.Errorf("tie should break to smaller id, got %v", best)
	}
}

func TestPenaltyPaperExample(t *testing.T) {
	// §4.2: p1=0.8, p2=0.6, δ=0.25 → penalty 5/12, overhead 1/3.
	penalty, overhead, err := Penalty(0.8, 0.6, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(penalty-5.0/12) > 1e-9 {
		t.Errorf("penalty = %v, want 5/12", penalty)
	}
	if math.Abs(overhead-1.0/3) > 1e-9 {
		t.Errorf("overhead = %v, want 1/3", overhead)
	}
}

func TestPenaltySmallDelta(t *testing.T) {
	if _, _, err := Penalty(0.8, 0.6, 0.05); !errors.Is(err, ErrSamePick) {
		t.Errorf("err = %v, want ErrSamePick", err)
	}
}

func TestPenaltyArgumentOrder(t *testing.T) {
	// Swapped probabilities must give the same answer.
	p1, o1, e1 := Penalty(0.8, 0.6, 0.25)
	p2, o2, e2 := Penalty(0.6, 0.8, 0.25)
	if e1 != nil || e2 != nil || p1 != p2 || o1 != o2 {
		t.Error("Penalty not symmetric in argument order")
	}
}

func TestPenaltyInvalid(t *testing.T) {
	if _, _, err := Penalty(0, 0.5, 0.3); err == nil {
		t.Error("zero probability accepted")
	}
}

func TestPenaltyProperty(t *testing.T) {
	// Whenever the error can flip the choice, penalty and overhead are
	// non-negative and consistent: overhead = penalty × p1.
	f := func(a, b, d float64) bool {
		p1 := 0.05 + math.Mod(math.Abs(a), 0.95)
		p2 := 0.05 + math.Mod(math.Abs(b), 0.95)
		delta := math.Mod(math.Abs(d), 0.5)
		pen, ov, err := Penalty(p1, p2, delta)
		if errors.Is(err, ErrSamePick) {
			return true
		}
		if err != nil {
			return false
		}
		hi := math.Max(p1, p2)
		return pen >= 0 && ov >= 0 && math.Abs(ov-pen*hi) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
