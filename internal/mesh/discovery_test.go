package mesh

import (
	"testing"
	"time"
)

func discoveryConfig(hintAware bool, seed int64) DiscoveryConfig {
	return DiscoveryConfig{
		Nodes:     GridNodes(3, 3, 60, 2),
		Range:     100,
		HintAware: hintAware,
		Total:     40 * time.Second,
		Seed:      seed,
	}
}

func TestGridNodes(t *testing.T) {
	ns := GridNodes(2, 3, 50, 1)
	if len(ns) != 7 {
		t.Fatalf("%d nodes, want 7", len(ns))
	}
	moving := 0
	for _, n := range ns {
		if n.Moving {
			moving++
		}
	}
	if moving != 1 {
		t.Errorf("%d walkers, want 1", moving)
	}
	// IDs unique.
	seen := map[NodeID]bool{}
	for _, n := range ns {
		if seen[n.ID] {
			t.Fatalf("duplicate id %v", n.ID)
		}
		seen[n.ID] = true
	}
}

func TestRunDiscoveryBasic(t *testing.T) {
	res := RunDiscovery(discoveryConfig(false, 1))
	if res.ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
	if res.MeanError <= 0 || res.MeanError > 0.6 {
		t.Errorf("mean error = %v, implausible", res.MeanError)
	}
}

func TestRunDiscoveryDeterminism(t *testing.T) {
	a := RunDiscovery(discoveryConfig(true, 5))
	b := RunDiscovery(discoveryConfig(true, 5))
	if a != b {
		t.Errorf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

// TestHintAwareDiscoveryTradeoff is the §4.2 claim at network scale:
// the hint-aware scheduler achieves better mobile-pair accuracy than the
// fixed slow scheduler at far below the cost of probing fast everywhere.
func TestHintAwareDiscoveryTradeoff(t *testing.T) {
	slow := RunDiscovery(discoveryConfig(false, 7))

	fastCfg := discoveryConfig(false, 7)
	fastCfg.StaticRate = 10
	fast := RunDiscovery(fastCfg)

	hint := RunDiscovery(discoveryConfig(true, 7))

	if hint.MeanErrorMobile >= slow.MeanErrorMobile {
		t.Errorf("hint-aware mobile error %.3f not below fixed-slow %.3f",
			hint.MeanErrorMobile, slow.MeanErrorMobile)
	}
	if hint.ProbesSent >= fast.ProbesSent {
		t.Errorf("hint-aware sent %d probes, not below always-fast %d",
			hint.ProbesSent, fast.ProbesSent)
	}
	if hint.ProbesSent <= slow.ProbesSent {
		t.Errorf("hint-aware sent %d probes, should exceed always-slow %d",
			hint.ProbesSent, slow.ProbesSent)
	}
	t.Logf("probes: slow=%d hint=%d fast=%d; mobile err: slow=%.3f hint=%.3f fast=%.3f",
		slow.ProbesSent, hint.ProbesSent, fast.ProbesSent,
		slow.MeanErrorMobile, hint.MeanErrorMobile, fast.MeanErrorMobile)
}

func TestDiscoveryNeighbourHintPropagates(t *testing.T) {
	// A static-only network under the hint-aware scheduler probes at the
	// slow rate throughout: about the same probes as fixed-slow.
	cfg := discoveryConfig(true, 9)
	cfg.Nodes = GridNodes(3, 3, 60, 0) // nobody moves
	hint := RunDiscovery(cfg)

	cfgFixed := cfg
	cfgFixed.HintAware = false
	fixed := RunDiscovery(cfgFixed)

	ratio := float64(hint.ProbesSent) / float64(fixed.ProbesSent)
	if ratio > 1.3 {
		t.Errorf("hint-aware probed %.1fx the fixed rate with nobody moving", ratio)
	}
}
