// Package mesh provides the neighbour-table and route-metric machinery
// that the topology-maintenance analysis of §4.2 builds on: ETX link and
// route metrics computed from delivery-probability estimates, and the
// penalty/overhead analysis of choosing links from erroneous estimates.
package mesh

import (
	"errors"
	"math"
	"sort"
	"time"
)

// NodeID identifies a mesh node.
type NodeID int

// Link is a directed link with a delivery-probability estimate.
type Link struct {
	From, To NodeID
	// Forward and Reverse are the delivery probabilities in each
	// direction; ETX uses their product.
	Forward, Reverse float64
	// UpdatedAt is when the estimate was last refreshed.
	UpdatedAt time.Duration
}

// ETX returns the expected number of transmissions for the link: the
// inverse of the product of forward and reverse delivery probabilities
// (De Couto et al.). It returns +Inf for a dead link.
func (l Link) ETX() float64 {
	p := l.Forward * l.Reverse
	if p <= 0 {
		return math.Inf(1)
	}
	return 1 / p
}

// ForwardETX returns the ETX ignoring the reverse (ACK) direction, the
// simplification used in the §4.2 analysis.
func (l Link) ForwardETX() float64 {
	if l.Forward <= 0 {
		return math.Inf(1)
	}
	return 1 / l.Forward
}

// Table is a node's neighbour table: the current link estimate per
// neighbour.
type Table struct {
	Self  NodeID
	links map[NodeID]Link
}

// NewTable returns an empty neighbour table for node self.
func NewTable(self NodeID) *Table {
	return &Table{Self: self, links: make(map[NodeID]Link)}
}

// Update inserts or replaces the link to a neighbour.
func (t *Table) Update(l Link) {
	l.From = t.Self
	t.links[l.To] = l
}

// Link returns the stored link to a neighbour.
func (t *Table) Link(to NodeID) (Link, bool) {
	l, ok := t.links[to]
	return l, ok
}

// Remove deletes a neighbour (e.g. on pruning).
func (t *Table) Remove(to NodeID) { delete(t.links, to) }

// Neighbors returns the neighbour ids sorted ascending.
func (t *Table) Neighbors() []NodeID {
	ids := make([]NodeID, 0, len(t.links))
	for id := range t.links {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len returns the number of neighbours.
func (t *Table) Len() int { return len(t.links) }

// Expire removes links not refreshed within maxAge of now and returns
// how many were removed.
func (t *Table) Expire(now, maxAge time.Duration) int {
	n := 0
	for id, l := range t.links {
		if now-l.UpdatedAt > maxAge {
			delete(t.links, id)
			n++
		}
	}
	return n
}

// BestNeighbor returns the neighbour with the lowest forward ETX and
// whether the table is non-empty; ties break toward the smaller id for
// determinism.
func (t *Table) BestNeighbor() (NodeID, bool) {
	best := NodeID(-1)
	bestETX := math.Inf(1)
	for _, id := range t.Neighbors() {
		if etx := t.links[id].ForwardETX(); etx < bestETX {
			best, bestETX = id, etx
		}
	}
	return best, best >= 0
}

// ErrSamePick is returned by Penalty when the estimate error cannot flip
// the choice of link.
var ErrSamePick = errors.New("mesh: estimate error cannot change the selection")

// Penalty quantifies the §4.2 analysis: two candidate links with true
// delivery probabilities p1 > p2 and a symmetric estimate error delta.
// The node picks the wrong link when p2+delta ≥ p1−delta; the penalty is
// the extra expected transmissions 1/p2 − 1/p1 and the overhead is the
// penalty relative to the optimum, p1/p2 − 1. If the error cannot flip
// the choice, ErrSamePick is returned.
func Penalty(p1, p2, delta float64) (penalty, overhead float64, err error) {
	if p1 < p2 {
		p1, p2 = p2, p1
	}
	if p1 <= 0 || p2 <= 0 {
		return 0, 0, errors.New("mesh: probabilities must be positive")
	}
	if p2+delta < p1-delta {
		return 0, 0, ErrSamePick
	}
	penalty = 1/p2 - 1/p1
	overhead = p1/p2 - 1
	return penalty, overhead, nil
}
