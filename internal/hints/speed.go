package hints

import (
	"math"
	"time"

	"repro/internal/sensors"
)

// SpeedEstimator produces the speed hint of §2.2.3: directly from GPS
// outdoors, approximated by integrating accelerometer magnitude indoors
// (coarser, but the indoor speed range is small). The estimator also
// tracks position: GPS position outdoors; indoors it dead-reckons from
// the speed estimate and the heading hint when one is supplied.
type SpeedEstimator struct {
	// IndoorDecay pulls the integrated indoor speed back toward zero to
	// bound drift (per-second decay factor, default 0.6).
	IndoorDecay float64

	speed    float64
	haveGPS  bool
	x, y     float64
	lastA    time.Duration
	haveA    bool
	restMag  float64 // learned resting force magnitude for de-biasing
	restInit bool
}

// NewSpeedEstimator returns an estimator with default parameters.
func NewSpeedEstimator() *SpeedEstimator {
	return &SpeedEstimator{IndoorDecay: 0.6}
}

// UpdateGPS ingests a fix; with a lock, GPS speed and position are
// authoritative.
func (e *SpeedEstimator) UpdateGPS(s sensors.GPSSample) {
	if !s.Lock {
		e.haveGPS = false
		return
	}
	e.haveGPS = true
	e.speed = s.SpeedMps
	e.x, e.y = s.X, s.Y
}

// UpdateAccel ingests one accelerometer report for the indoor
// approximation. The resting force magnitude (gravity in custom units) is
// learned online and subtracted; the residual magnitude integrates into a
// decaying speed estimate. Values are approximate by design (§2.2.3).
func (e *SpeedEstimator) UpdateAccel(s sensors.AccelSample, headingDeg float64) {
	mag := math.Sqrt(s.X*s.X + s.Y*s.Y + s.Z*s.Z)
	if !e.restInit {
		e.restMag = mag
		e.restInit = true
		e.lastA = s.T
		e.haveA = true
		return
	}
	// Slow EWMA keeps tracking the rest magnitude when quiescent.
	e.restMag = 0.999*e.restMag + 0.001*mag
	dt := (s.T - e.lastA).Seconds()
	e.lastA = s.T
	if dt <= 0 || dt > 1 {
		return
	}
	if e.haveGPS {
		return // outdoor fix overrides integration
	}
	// Residual force in custom units → crude m/s² scale.
	resid := math.Abs(mag-e.restMag) * 0.04
	decay := math.Pow(e.IndoorDecay, dt)
	e.speed = e.speed*decay + resid*dt
	// Dead-reckon position with the heading hint.
	rad := headingDeg * math.Pi / 180
	e.x += e.speed * dt * math.Sin(rad)
	e.y += e.speed * dt * math.Cos(rad)
}

// Speed returns the current speed hint in m/s.
func (e *SpeedEstimator) Speed() float64 { return e.speed }

// Position returns the current position hint in the local metric frame.
func (e *SpeedEstimator) Position() (x, y float64) { return e.x, e.y }
