package hints

import (
	"math"

	"repro/internal/sensors"
)

// NoiseDetector implements the §5.6 microphone hint: a static node in a
// changing environment (pedestrians, passing cars) experiences channel
// dynamics like a moving node's, and ambient sound variation correlates
// with that nearby activity. The detector tracks the variance of recent
// microphone level reports and raises a "dynamic environment" hint when
// it exceeds a threshold — the cue for a static node to switch to a
// mobility-tuned protocol such as RapidSample, which the paper observed
// outperforming SampleRate in such environments.
type NoiseDetector struct {
	// Window is the number of level reports in the variance window
	// (default 30 ≈ 3 s at 100 ms reports).
	Window int
	// StdThreshold is the level standard deviation (dB) above which the
	// environment counts as dynamic (default 2.5).
	StdThreshold float64

	buf    []float64
	head   int
	filled bool
}

// NewNoiseDetector returns a detector with default parameters.
func NewNoiseDetector() *NoiseDetector { return &NoiseDetector{} }

func (d *NoiseDetector) window() int {
	if d.Window > 0 {
		return d.Window
	}
	return 30
}

func (d *NoiseDetector) threshold() float64 {
	if d.StdThreshold > 0 {
		return d.StdThreshold
	}
	return 2.5
}

// Update ingests one microphone report and returns the current hint.
func (d *NoiseDetector) Update(s sensors.MicSample) bool {
	n := d.window()
	if d.buf == nil {
		d.buf = make([]float64, n)
	}
	d.buf[d.head] = s.LevelDB
	d.head++
	if d.head == n {
		d.head = 0
		d.filled = true
	}
	return d.Dynamic()
}

// Dynamic reports whether the ambient variation currently indicates a
// changing environment. It stays false until the window fills.
func (d *NoiseDetector) Dynamic() bool {
	if !d.filled {
		return false
	}
	return d.std() > d.threshold()
}

// Level returns the current ambient variation statistic (the window's
// standard deviation in dB), the value shared as HintNoise.
func (d *NoiseDetector) Level() float64 {
	if !d.filled {
		return 0
	}
	return d.std()
}

func (d *NoiseDetector) std() float64 {
	n := len(d.buf)
	mean := 0.0
	for _, v := range d.buf {
		mean += v
	}
	mean /= float64(n)
	ss := 0.0
	for _, v := range d.buf {
		diff := v - mean
		ss += diff * diff
	}
	return math.Sqrt(ss / float64(n))
}
