package hints

import (
	"math"
	"testing"
	"time"

	"repro/internal/sensors"
)

func TestHeadingCompassInitialises(t *testing.T) {
	e := NewHeadingEstimator()
	if _, ok := e.Heading(); ok {
		t.Error("estimator should start uninitialised")
	}
	e.UpdateCompass(sensors.CompassSample{T: 0, HeadingDeg: 123})
	h, ok := e.Heading()
	if !ok || h != 123 {
		t.Errorf("heading = %v ok=%v, want 123", h, ok)
	}
}

func TestHeadingGyroIntegration(t *testing.T) {
	e := NewHeadingEstimator()
	e.UpdateCompass(sensors.CompassSample{T: 0, HeadingDeg: 0})
	// 10 deg/s for 9 seconds via 10 ms gyro reports.
	for i := 1; i <= 900; i++ {
		e.UpdateGyro(sensors.GyroSample{T: time.Duration(i) * 10 * time.Millisecond, RateDegSec: 10})
	}
	h, _ := e.Heading()
	if math.Abs(h-90) > 1.5 {
		t.Errorf("integrated heading = %v, want ≈ 90", h)
	}
}

func TestHeadingCompassCorrectsGyroDrift(t *testing.T) {
	e := NewHeadingEstimator()
	e.UpdateCompass(sensors.CompassSample{T: 0, HeadingDeg: 0})
	// A biased gyro (1 deg/s false rotation) with periodic compass fixes
	// pointing at the truth: the fused heading must stay bounded instead
	// of drifting without bound.
	for i := 1; i <= 6000; i++ {
		tt := time.Duration(i) * 10 * time.Millisecond
		e.UpdateGyro(sensors.GyroSample{T: tt, RateDegSec: 1})
		if i%5 == 0 { // 20 Hz compass
			e.UpdateCompass(sensors.CompassSample{T: tt, HeadingDeg: 0})
		}
	}
	h, _ := e.Heading()
	if sep := sensors.HeadingSeparation(h, 0); sep > 15 {
		t.Errorf("drift not bounded: fused heading %v (sep %v)", h, sep)
	}
}

func TestHeadingGPSOverride(t *testing.T) {
	e := NewHeadingEstimator()
	e.UpdateCompass(sensors.CompassSample{T: 0, HeadingDeg: 10})
	e.UpdateGPS(sensors.GPSSample{T: time.Second, Lock: true, SpeedMps: 5, HeadingDeg: 200})
	h, _ := e.Heading()
	if h != 200 {
		t.Errorf("GPS course should override: %v", h)
	}
	// No lock or too slow → no override.
	e.UpdateGPS(sensors.GPSSample{T: 2 * time.Second, Lock: false, SpeedMps: 5, HeadingDeg: 90})
	e.UpdateGPS(sensors.GPSSample{T: 3 * time.Second, Lock: true, SpeedMps: 0.1, HeadingDeg: 90})
	if h, _ := e.Heading(); h != 200 {
		t.Errorf("heading changed on unusable fixes: %v", h)
	}
}

func TestHeadingWrap(t *testing.T) {
	e := NewHeadingEstimator()
	e.UpdateCompass(sensors.CompassSample{T: 0, HeadingDeg: 350})
	// Rotate +20° across the wrap.
	for i := 1; i <= 200; i++ {
		e.UpdateGyro(sensors.GyroSample{T: time.Duration(i) * 10 * time.Millisecond, RateDegSec: 10})
	}
	h, _ := e.Heading()
	if h < 0 || h >= 360 {
		t.Errorf("heading %v outside [0, 360)", h)
	}
	if sep := sensors.HeadingSeparation(h, 10); sep > 2 {
		t.Errorf("wrapped heading = %v, want ≈ 10", h)
	}
}

func TestSpeedEstimatorGPS(t *testing.T) {
	e := NewSpeedEstimator()
	e.UpdateGPS(sensors.GPSSample{T: 0, Lock: true, X: 3, Y: 4, SpeedMps: 7})
	if e.Speed() != 7 {
		t.Errorf("speed = %v, want 7", e.Speed())
	}
	x, y := e.Position()
	if x != 3 || y != 4 {
		t.Errorf("position = (%v, %v)", x, y)
	}
}

func TestSpeedEstimatorIndoorApproximation(t *testing.T) {
	e := NewSpeedEstimator()
	// Learn the resting magnitude, then shake.
	for i := 0; i < 100; i++ {
		e.UpdateAccel(sensors.AccelSample{
			T: time.Duration(i) * sensors.ReportInterval, X: 0, Y: 0, Z: 250,
		}, 0)
	}
	if e.Speed() > 0.05 {
		t.Errorf("resting speed = %v, want ≈ 0", e.Speed())
	}
	for i := 100; i < 600; i++ {
		z := 250.0
		if i%2 == 0 {
			z = 280
		}
		e.UpdateAccel(sensors.AccelSample{
			T: time.Duration(i) * sensors.ReportInterval, X: 0, Y: 0, Z: z,
		}, 90)
	}
	if e.Speed() <= 0.05 {
		t.Errorf("shaking speed = %v, want > 0", e.Speed())
	}
	x, _ := e.Position()
	if x <= 0 {
		t.Errorf("dead-reckoned x = %v, want > 0 for heading 90", x)
	}
}

func TestSpeedEstimatorGPSOverridesIntegration(t *testing.T) {
	e := NewSpeedEstimator()
	e.UpdateGPS(sensors.GPSSample{T: 0, Lock: true, SpeedMps: 3})
	for i := 0; i < 50; i++ {
		e.UpdateAccel(sensors.AccelSample{
			T: time.Duration(i) * sensors.ReportInterval, X: 0, Y: 0, Z: 250 + float64(i%2)*40,
		}, 0)
	}
	if e.Speed() != 3 {
		t.Errorf("GPS-backed speed changed to %v", e.Speed())
	}
}
