package hints

import (
	"time"

	"repro/internal/sensors"
)

// HeadingEstimator produces the heading hint of §2.2.2. Outdoors, GPS
// course is authoritative while moving. Indoors, the digital compass can
// be magnetically noisy, so the estimator fuses the gyroscope's relative
// rotation with the compass's absolute reference using a complementary
// filter: the gyro tracks fast changes, the compass slowly corrects the
// gyro's drift.
type HeadingEstimator struct {
	// CompassWeight is the fraction of each compass innovation applied to
	// the fused estimate (small = trust gyro short-term). Default 0.02.
	CompassWeight float64

	heading  float64
	lastGyro time.Duration
	started  bool
}

// NewHeadingEstimator returns an estimator with the default compass
// weight.
func NewHeadingEstimator() *HeadingEstimator {
	return &HeadingEstimator{CompassWeight: 0.02}
}

// UpdateCompass ingests one compass reading. The first reading
// initialises the estimate; later readings nudge the fused heading toward
// the compass by CompassWeight of the angular difference.
func (e *HeadingEstimator) UpdateCompass(s sensors.CompassSample) {
	if !e.started {
		e.heading = s.HeadingDeg
		e.started = true
		return
	}
	w := e.CompassWeight
	if w <= 0 {
		w = 0.02
	}
	e.heading = norm360(e.heading + w*sensors.AngleDiff(s.HeadingDeg, e.heading))
}

// UpdateGyro ingests one gyro reading, integrating the angular rate since
// the previous gyro report.
func (e *HeadingEstimator) UpdateGyro(s sensors.GyroSample) {
	if !e.started {
		e.lastGyro = s.T
		e.started = true
		return
	}
	dt := (s.T - e.lastGyro).Seconds()
	e.lastGyro = s.T
	if dt <= 0 {
		return
	}
	e.heading = norm360(e.heading + s.RateDegSec*dt)
}

// UpdateGPS ingests a GPS fix; when the fix has a lock and the device is
// moving fast enough for course to be meaningful, the GPS heading
// overrides the fused estimate (outdoor case).
func (e *HeadingEstimator) UpdateGPS(s sensors.GPSSample) {
	if s.Lock && s.SpeedMps > 0.5 {
		e.heading = norm360(s.HeadingDeg)
		e.started = true
	}
}

// Heading returns the current heading hint in degrees [0, 360) and
// whether the estimator has been initialised by at least one sensor.
func (e *HeadingEstimator) Heading() (float64, bool) {
	return e.heading, e.started
}

func norm360(d float64) float64 {
	for d < 0 {
		d += 360
	}
	for d >= 360 {
		d -= 360
	}
	return d
}
