package hints

import (
	"math"
	"testing"
	"time"

	"repro/internal/sensors"
)

// accelAt builds one accelerometer report with the given vertical
// magnitude (gravity plus shake) at time t.
func accelAt(t time.Duration, mag float64) sensors.AccelSample {
	return sensors.AccelSample{T: t, Z: mag}
}

// feedQuiet advances the estimator with constant-magnitude (resting)
// reports at 10 Hz over the given span.
func feedQuiet(e *SpeedEstimator, from, span time.Duration, headingDeg float64) time.Duration {
	for t := from; t < from+span; t += 100 * time.Millisecond {
		e.UpdateAccel(accelAt(t, 9.8), headingDeg)
	}
	return from + span
}

// feedShake alternates the report magnitude around rest, like a carried,
// walking device.
func feedShake(e *SpeedEstimator, from, span time.Duration, headingDeg float64) time.Duration {
	i := 0
	for t := from; t < from+span; t += 100 * time.Millisecond {
		mag := 9.8 + 2.0
		if i%2 == 0 {
			mag = 9.8 - 2.0
		}
		i++
		e.UpdateAccel(accelAt(t, mag), headingDeg)
	}
	return from + span
}

func TestSpeedGPSAuthoritative(t *testing.T) {
	e := NewSpeedEstimator()
	e.UpdateGPS(sensors.GPSSample{T: time.Second, Lock: true, SpeedMps: 5.5, X: 10, Y: 20})
	if e.Speed() != 5.5 {
		t.Fatalf("Speed = %g, want 5.5 from the GPS fix", e.Speed())
	}
	if x, y := e.Position(); x != 10 || y != 20 {
		t.Fatalf("Position = (%g, %g), want (10, 20)", x, y)
	}
	// While locked, accelerometer integration must not move the speed:
	// the outdoor fix is authoritative (§2.2.3).
	feedShake(e, 2*time.Second, 3*time.Second, 0)
	if e.Speed() != 5.5 {
		t.Fatalf("Speed = %g after shaking while locked, want 5.5", e.Speed())
	}
}

func TestSpeedQuietStaysNearZero(t *testing.T) {
	e := NewSpeedEstimator()
	feedQuiet(e, 0, 10*time.Second, 0)
	if e.Speed() > 0.01 {
		t.Fatalf("Speed = %g at rest, want ≈ 0", e.Speed())
	}
}

func TestSpeedIndoorIntegrationRisesAndDecays(t *testing.T) {
	e := NewSpeedEstimator()
	next := feedQuiet(e, 0, 2*time.Second, 0) // learn the rest magnitude
	next = feedShake(e, next, 5*time.Second, 0)
	peak := e.Speed()
	if peak <= 0.05 {
		t.Fatalf("Speed = %g after sustained shaking, want clearly positive", peak)
	}
	// Movement stops: the decaying integrator must pull the estimate
	// back toward zero rather than drifting (IndoorDecay bounds drift).
	feedQuiet(e, next, 6*time.Second, 0)
	if e.Speed() > peak/4 {
		t.Fatalf("Speed decayed only to %g from %g after 6 s of rest", e.Speed(), peak)
	}
}

func TestSpeedLossOfLockFallsBackToIntegration(t *testing.T) {
	e := NewSpeedEstimator()
	feedQuiet(e, 0, time.Second, 0)
	e.UpdateGPS(sensors.GPSSample{T: time.Second, Lock: true, SpeedMps: 3, X: 1, Y: 2})
	// Walking into a building: the fix drops and the accelerometer takes
	// over from the last GPS state.
	e.UpdateGPS(sensors.GPSSample{T: 2 * time.Second, Lock: false})
	feedShake(e, 2*time.Second, 4*time.Second, 0)
	if e.Speed() == 3 {
		t.Fatal("speed frozen at the stale GPS value after losing lock")
	}
	if e.Speed() <= 0 {
		t.Fatalf("Speed = %g indoors while shaking, want positive", e.Speed())
	}
}

func TestSpeedDeadReckonsAlongHeading(t *testing.T) {
	e := NewSpeedEstimator()
	next := feedQuiet(e, 0, time.Second, 90)
	x0, _ := e.Position()
	// Shake while heading due east (90°): dead-reckoning must move the
	// position east (+x) and leave north (y) nearly unchanged.
	feedShake(e, next, 10*time.Second, 90)
	x1, y1 := e.Position()
	if x1 <= x0 {
		t.Fatalf("x did not advance east: %g → %g", x0, x1)
	}
	if math.Abs(y1) > 1e-6 {
		t.Fatalf("y drifted to %g while heading east", y1)
	}
}

func TestSpeedIgnoresPathologicalGaps(t *testing.T) {
	e := NewSpeedEstimator()
	e.UpdateAccel(accelAt(0, 9.8), 0)
	// A report gap longer than a second (sensor outage) must not
	// integrate a huge dt.
	e.UpdateAccel(accelAt(10*time.Second, 13.8), 0)
	if e.Speed() != 0 {
		t.Fatalf("Speed = %g after a 10 s sensor gap, want 0", e.Speed())
	}
}
