package hints

import (
	"testing"
	"time"

	"repro/internal/sensors"
)

func TestNoiseDetectorQuietRoom(t *testing.T) {
	mic := sensors.NewMicrophone(sensors.DefaultMicConfig(), 1)
	samples := mic.Generate(func(time.Duration) float64 { return 0 }, 30*time.Second)
	d := NewNoiseDetector()
	dynamicReports := 0
	for _, s := range samples {
		if d.Update(s) {
			dynamicReports++
		}
	}
	if dynamicReports > len(samples)/50 {
		t.Errorf("quiet room flagged dynamic in %d/%d reports", dynamicReports, len(samples))
	}
}

func TestNoiseDetectorBusyCorridor(t *testing.T) {
	mic := sensors.NewMicrophone(sensors.DefaultMicConfig(), 2)
	samples := mic.Generate(func(time.Duration) float64 { return 1 }, 30*time.Second)
	d := NewNoiseDetector()
	dynamicReports, ready := 0, 0
	for _, s := range samples {
		d.Update(s)
		if d.Level() > 0 {
			ready++
			if d.Dynamic() {
				dynamicReports++
			}
		}
	}
	if dynamicReports < ready/2 {
		t.Errorf("busy corridor flagged dynamic in only %d/%d ready reports", dynamicReports, ready)
	}
}

func TestNoiseDetectorTransition(t *testing.T) {
	// Quiet for 20 s, busy for 20 s: the hint must flip within a few
	// window lengths of the change.
	activity := func(at time.Duration) float64 {
		if at >= 20*time.Second {
			return 1
		}
		return 0
	}
	mic := sensors.NewMicrophone(sensors.DefaultMicConfig(), 3)
	samples := mic.Generate(activity, 40*time.Second)
	d := NewNoiseDetector()
	var flipAt time.Duration = -1
	for _, s := range samples {
		if d.Update(s) && flipAt < 0 && s.T >= 20*time.Second {
			flipAt = s.T
		}
	}
	if flipAt < 0 {
		t.Fatal("hint never rose after the environment became busy")
	}
	if flipAt > 30*time.Second {
		t.Errorf("hint rose at %v, want within ~2 windows of 20s", flipAt)
	}
}

func TestNoiseDetectorNotReadyBeforeWindow(t *testing.T) {
	d := NewNoiseDetector()
	for i := 0; i < d.window()-1; i++ {
		if d.Update(sensors.MicSample{LevelDB: float64(i * 10)}) {
			t.Fatal("hint raised before the window filled")
		}
	}
	if d.Level() != 0 {
		t.Error("level non-zero before window filled")
	}
}
