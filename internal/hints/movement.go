// Package hints implements the paper's sensor-hint extraction algorithms
// (§2.2): the jerk statistic and boolean movement hint computed from raw
// accelerometer force reports, the heading hint fused from compass and
// gyroscope, and speed/position hints from GPS or accelerometer
// integration. These are the signals the hint-aware protocols in the rest
// of the system adapt on.
package hints

import (
	"math"
	"time"

	"repro/internal/sensors"
)

// Movement-hint parameters from §2.2.1. The jerk threshold and hysteresis
// window were empirically determined once for the accelerometer type and
// need no per-use calibration.
const (
	// DefaultJerkThreshold is the jerk value above which a report
	// indicates movement.
	DefaultJerkThreshold = 3.0
	// DefaultHysteresisWindow is the number of trailing reports that must
	// all be below threshold before the hint falls back to "not moving"
	// (50 reports × 2 ms = 100 ms).
	DefaultHysteresisWindow = 50
	// jerkHalfWindow is the number of samples averaged on each side of
	// the jerk difference (5 recent vs 5 prior).
	jerkHalfWindow = 5
)

// MovementConfig tunes the movement detector. The zero value selects the
// paper's constants.
type MovementConfig struct {
	// JerkThreshold replaces DefaultJerkThreshold when > 0.
	JerkThreshold float64
	// HysteresisWindow replaces DefaultHysteresisWindow when > 0.
	HysteresisWindow int
}

func (c MovementConfig) threshold() float64 {
	if c.JerkThreshold > 0 {
		return c.JerkThreshold
	}
	return DefaultJerkThreshold
}

func (c MovementConfig) window() int {
	if c.HysteresisWindow > 0 {
		return c.HysteresisWindow
	}
	return DefaultHysteresisWindow
}

// MovementDetector turns a stream of accelerometer force reports into the
// boolean movement hint of §2.2.1. Feed reports in order with Update;
// query the current hint with Moving.
//
// For each report t it computes the jerk
//
//	J_t = (x̄ − x̄′)² + (ȳ − ȳ′)² + (z̄ − z̄′)²   (square-rooted)
//
// where x̄ is the mean of reports t..t−4 and x̄′ of t−5..t−9, then applies
// the hysteresis rule: the hint rises as soon as J_t exceeds the
// threshold and falls only after a full window of sub-threshold jerks.
// Because J is a difference of short-window means, it is invariant to any
// constant force offset — no gravity calibration is needed.
type MovementDetector struct {
	cfg    MovementConfig
	buf    [2 * jerkHalfWindow][3]float64 // ring of the last 10 reports
	n      int                            // total reports seen
	moving bool
	below  int // consecutive sub-threshold jerks while moving
	lastJ  float64
	lastT  time.Duration
	// riseAt records when the hint last rose, for latency measurement.
	risenAt  time.Duration
	haveTime bool
}

// NewMovementDetector returns a detector with the given configuration
// (zero value = paper constants). The hint starts at "not moving"
// (H₀ = 0).
func NewMovementDetector(cfg MovementConfig) *MovementDetector {
	return &MovementDetector{cfg: cfg}
}

// Update ingests one force report and returns the movement hint after
// processing it.
func (d *MovementDetector) Update(s sensors.AccelSample) bool {
	d.buf[d.n%(2*jerkHalfWindow)] = [3]float64{s.X, s.Y, s.Z}
	d.n++
	d.lastT = s.T
	d.haveTime = true
	if d.n < 2*jerkHalfWindow {
		// Not enough history for the two 5-sample windows yet.
		d.lastJ = 0
		return d.moving
	}
	d.lastJ = d.jerk()
	d.step()
	return d.moving
}

// jerk computes J_t from the ring buffer. The most recent 5 reports form
// the "recent" window, the 5 before them the "prior" window.
func (d *MovementDetector) jerk() float64 {
	var recent, prior [3]float64
	for i := 0; i < jerkHalfWindow; i++ {
		r := d.buf[(d.n-1-i)%(2*jerkHalfWindow)]
		p := d.buf[(d.n-1-jerkHalfWindow-i)%(2*jerkHalfWindow)]
		for a := 0; a < 3; a++ {
			recent[a] += r[a]
			prior[a] += p[a]
		}
	}
	var sum float64
	for a := 0; a < 3; a++ {
		diff := (recent[a] - prior[a]) / jerkHalfWindow
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

// step applies the §2.2.1 hysteresis state machine to the latest jerk.
func (d *MovementDetector) step() {
	th := d.cfg.threshold()
	if !d.moving {
		if d.lastJ > th {
			d.moving = true
			d.below = 0
			d.risenAt = d.lastT
		}
		return
	}
	if d.lastJ > th {
		d.below = 0
		return
	}
	d.below++
	if d.below >= d.cfg.window() {
		d.moving = false
		d.below = 0
	}
}

// Moving returns the most recently computed movement hint. This is the
// value the movement hint service returns when queried.
func (d *MovementDetector) Moving() bool { return d.moving }

// LastJerk returns the jerk value of the most recent report (0 until ten
// reports have been seen).
func (d *MovementDetector) LastJerk() float64 { return d.lastJ }

// LastReportTime returns the timestamp of the most recent report and
// whether any report has been seen.
func (d *MovementDetector) LastReportTime() (time.Duration, bool) {
	return d.lastT, d.haveTime
}

// JerkSeries computes the jerk value for every report in the trace,
// returning one value per sample (zero for the first nine). This is the
// quantity plotted in Figure 2-2.
func JerkSeries(samples []sensors.AccelSample, cfg MovementConfig) []float64 {
	d := NewMovementDetector(cfg)
	out := make([]float64, len(samples))
	for i, s := range samples {
		d.Update(s)
		out[i] = d.LastJerk()
	}
	return out
}

// HintSeries runs the detector over the trace and returns the hint value
// after each report.
func HintSeries(samples []sensors.AccelSample, cfg MovementConfig) []bool {
	d := NewMovementDetector(cfg)
	out := make([]bool, len(samples))
	for i, s := range samples {
		out[i] = d.Update(s)
	}
	return out
}
