package hints

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sensors"
)

// mkSamples builds a synthetic report stream from per-report force
// values on the x axis (y and z constant).
func mkSamples(xs []float64) []sensors.AccelSample {
	out := make([]sensors.AccelSample, len(xs))
	for i, x := range xs {
		out[i] = sensors.AccelSample{
			T: time.Duration(i) * sensors.ReportInterval,
			X: x, Y: 3, Z: -7,
		}
	}
	return out
}

func TestJerkHandComputed(t *testing.T) {
	// Ten reports: prior window all 0, recent window all 5 on x.
	xs := []float64{0, 0, 0, 0, 0, 5, 5, 5, 5, 5}
	d := NewMovementDetector(MovementConfig{})
	var last float64
	for _, s := range mkSamples(xs) {
		d.Update(s)
		last = d.LastJerk()
	}
	// x̄ = 5, x̄′ = 0 → J = √(5²) = 5.
	if math.Abs(last-5) > 1e-9 {
		t.Errorf("jerk = %v, want 5", last)
	}
}

func TestJerkMultiAxis(t *testing.T) {
	d := NewMovementDetector(MovementConfig{})
	samples := make([]sensors.AccelSample, 10)
	for i := range samples {
		samples[i].T = time.Duration(i) * sensors.ReportInterval
		if i >= 5 {
			samples[i] = sensors.AccelSample{T: samples[i].T, X: 3, Y: 4, Z: 0}
		}
	}
	for _, s := range samples {
		d.Update(s)
	}
	// Δx̄ = 3, Δȳ = 4 → J = 5.
	if math.Abs(d.LastJerk()-5) > 1e-9 {
		t.Errorf("jerk = %v, want 5", d.LastJerk())
	}
}

func TestJerkZeroBeforeWarmup(t *testing.T) {
	d := NewMovementDetector(MovementConfig{})
	for i, s := range mkSamples(make([]float64, 9)) {
		d.Update(s)
		if d.LastJerk() != 0 {
			t.Fatalf("jerk non-zero at report %d before 10 samples", i)
		}
	}
}

// TestJerkOffsetInvariance verifies the paper's no-calibration claim: the
// jerk is invariant to any constant force offset (gravity, mounting), so
// the detector needs no per-use calibration.
func TestJerkOffsetInvariance(t *testing.T) {
	f := func(seed int64, off0, off1, off2 float64) bool {
		for _, o := range []float64{off0, off1, off2} {
			if math.IsNaN(o) || math.IsInf(o, 0) || math.Abs(o) > 1e9 {
				return true
			}
		}
		rng := rand.New(rand.NewSource(seed))
		base := make([]sensors.AccelSample, 40)
		shifted := make([]sensors.AccelSample, 40)
		for i := range base {
			tt := time.Duration(i) * sensors.ReportInterval
			x, y, z := rng.NormFloat64()*5, rng.NormFloat64()*5, rng.NormFloat64()*5
			base[i] = sensors.AccelSample{T: tt, X: x, Y: y, Z: z}
			shifted[i] = sensors.AccelSample{T: tt, X: x + off0, Y: y + off1, Z: z + off2}
		}
		j1 := JerkSeries(base, MovementConfig{})
		j2 := JerkSeries(shifted, MovementConfig{})
		for i := range j1 {
			// Relative tolerance for float cancellation at huge offsets.
			tol := 1e-6 * (1 + math.Abs(off0) + math.Abs(off1) + math.Abs(off2))
			if math.Abs(j1[i]-j2[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHysteresisRise(t *testing.T) {
	d := NewMovementDetector(MovementConfig{})
	// Quiet reports, then one step change that spikes the jerk.
	xs := make([]float64, 30)
	for i := 15; i < 30; i++ {
		xs[i] = 100
	}
	var rose bool
	for _, s := range mkSamples(xs) {
		if d.Update(s) {
			rose = true
		}
	}
	if !rose {
		t.Error("hint never rose on a large jerk")
	}
}

func TestHysteresisFallNeedsFullWindow(t *testing.T) {
	cfg := MovementConfig{HysteresisWindow: 50}
	d := NewMovementDetector(cfg)
	// Spike then quiet: hint must hold for exactly 50 quiet reports.
	xs := make([]float64, 200)
	for i := 10; i < 15; i++ {
		xs[i] = 100
	}
	samples := mkSamples(xs)
	var fellAt = -1
	for i, s := range samples {
		was := d.Moving()
		now := d.Update(s)
		if was && !now {
			fellAt = i
		}
	}
	if fellAt < 0 {
		t.Fatal("hint never fell")
	}
	// After the spike, the jerk stays elevated while the step remains in
	// the two 5-report windows (~10 reports), then 50 quiet jerks must
	// elapse.
	if fellAt < 60 {
		t.Errorf("hint fell at report %d, before a plausible full window", fellAt)
	}
}

func TestHysteresisReignition(t *testing.T) {
	d := NewMovementDetector(MovementConfig{HysteresisWindow: 50})
	// Spikes every 40 reports keep the hint up (window is 50).
	xs := make([]float64, 400)
	for i := 10; i < 400; i += 40 {
		xs[i] = 200
	}
	samples := mkSamples(xs)
	// Warm up past the first spike.
	downs := 0
	for i, s := range samples {
		was := d.Moving()
		d.Update(s)
		if was && !d.Moving() && i > 20 && i < 380 {
			downs++
		}
	}
	if downs != 0 {
		t.Errorf("hint dropped %d times despite sub-window spike spacing", downs)
	}
}

func TestMovementConfigDefaults(t *testing.T) {
	var cfg MovementConfig
	if cfg.threshold() != DefaultJerkThreshold {
		t.Error("zero config should use the default threshold")
	}
	if cfg.window() != DefaultHysteresisWindow {
		t.Error("zero config should use the default window")
	}
	cfg = MovementConfig{JerkThreshold: 7, HysteresisWindow: 10}
	if cfg.threshold() != 7 || cfg.window() != 10 {
		t.Error("explicit config ignored")
	}
}

func TestDetectorEndToEnd(t *testing.T) {
	// Full pipeline over the synthetic accelerometer: rest → walk → rest.
	const restA, moveLen = 5 * time.Second, 5 * time.Second
	total := restA + moveLen + 5*time.Second
	sched := sensors.Schedule{{Start: restA, End: restA + moveLen, Mode: sensors.Walk}}
	acc := sensors.NewAccelerometer(sensors.DefaultAccelConfig(), 11)
	samples := acc.Generate(sched, total)

	d := NewMovementDetector(MovementConfig{})
	var rise, fall time.Duration = -1, -1
	for _, s := range samples {
		m := d.Update(s)
		if m && rise < 0 {
			rise = s.T
		}
		if !m && rise >= 0 && s.T > restA+moveLen && fall < 0 {
			fall = s.T
		}
	}
	if rise < restA || rise > restA+100*time.Millisecond {
		t.Errorf("rise at %v, want within 100 ms of %v", rise, restA)
	}
	if fall < 0 {
		t.Error("hint never fell after motion ended")
	}
	if lt, ok := d.LastReportTime(); !ok || lt != samples[len(samples)-1].T {
		t.Error("LastReportTime wrong")
	}
}

func TestHintSeriesMatchesDetector(t *testing.T) {
	xs := make([]float64, 100)
	for i := 20; i < 40; i++ {
		xs[i] = 50
	}
	samples := mkSamples(xs)
	series := HintSeries(samples, MovementConfig{})
	d := NewMovementDetector(MovementConfig{})
	for i, s := range samples {
		if got := d.Update(s); got != series[i] {
			t.Fatalf("HintSeries[%d] = %v, detector says %v", i, series[i], got)
		}
	}
}
