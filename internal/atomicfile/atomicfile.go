// Package atomicfile writes files atomically: content lands in a
// temporary file in the destination directory and is renamed into
// place, so a concurrent reader polling for the file either sees
// nothing or sees the complete content — never a partial write. The
// coordinator's -addr-file is the motivating user: workers poll for it
// at startup, and a torn read of half an address made them dial
// garbage.
package atomicfile

import (
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically with the given permissions.
// The temporary file is created in path's directory (rename is only
// atomic within one filesystem) and removed on any failure.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // close/remove already handled; rename owns the file now
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
