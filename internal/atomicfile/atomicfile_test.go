package atomicfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "addr")
	want := []byte("127.0.0.1:4242\n")
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("content %q, want %q", got, want)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("perm %v, want 0644", fi.Mode().Perm())
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "addr")
	if err := WriteFile(path, []byte("old"), 0o600); err != nil {
		t.Fatalf("first WriteFile: %v", err)
	}
	if err := WriteFile(path, []byte("new"), 0o600); err != nil {
		t.Fatalf("second WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "new" {
		t.Fatalf("content %q, want %q", got, "new")
	}
}

func TestWriteFileLeavesNoTempOnError(t *testing.T) {
	dir := t.TempDir()
	// A destination whose parent does not exist fails at CreateTemp.
	if err := WriteFile(filepath.Join(dir, "missing", "addr"), []byte("x"), 0o600); err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("stray files left behind: %v", entries)
	}
}
