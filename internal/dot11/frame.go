// Package dot11 models the subset of 802.11 link-layer framing the hint
// protocol rides on: data frames, ACKs, probe requests/responses and
// beacons, with MAC addresses, sequence numbers and a frame check
// sequence. Frames marshal to and from bytes so the hint protocol can be
// exercised over real sockets (see cmd/hintnode) as well as inside the
// simulator.
//
// The encoding is deliberately a compact 802.11-like format, not a
// byte-exact reproduction of the standard: what matters to the paper is
// the presence of an unused header bit that a binary hint can be stuffed
// into, and the ability to piggy-back a (type, value) hint trailer on data
// frames without confusing legacy receivers.
package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Addr is a 48-bit MAC address.
type Addr [6]byte

// String formats the address in colon-separated hex.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// Broadcast is the all-ones broadcast address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// AddrFromInt derives a deterministic unicast address from an integer
// node id, convenient for simulations.
func AddrFromInt(id int) Addr {
	var a Addr
	a[0] = 0x02 // locally administered, unicast
	binary.BigEndian.PutUint32(a[2:], uint32(id))
	return a
}

// FrameType enumerates the frame types the model supports.
type FrameType byte

// Supported frame types.
const (
	TypeData FrameType = iota
	TypeAck
	TypeProbeReq
	TypeProbeResp
	TypeBeacon
	// TypeHint is the standalone hint frame of §2.3, recognised only by
	// nodes running the hint protocol.
	TypeHint
)

// String returns the frame type name.
func (t FrameType) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeAck:
		return "ack"
	case TypeProbeReq:
		return "probe-req"
	case TypeProbeResp:
		return "probe-resp"
	case TypeBeacon:
		return "beacon"
	case TypeHint:
		return "hint"
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// Header flag bits. FlagMovement is the paper's §2.3 trick: a simple
// binary movement hint occupies an otherwise-unused bit of the header, so
// ACKs and probes can carry it with zero added bytes and full legacy
// compatibility.
const (
	// FlagRetry marks a retransmission.
	FlagRetry byte = 1 << 0
	// FlagMovement carries the boolean movement hint.
	FlagMovement byte = 1 << 1
	// FlagHintTrailer marks that a hint TLV trailer follows the payload.
	FlagHintTrailer byte = 1 << 2
)

// Frame is one link-layer frame.
type Frame struct {
	Type    FrameType
	Flags   byte
	Seq     uint16
	Src     Addr
	Dst     Addr
	Payload []byte
}

// header layout: type(1) flags(1) seq(2) src(6) dst(6) paylen(2) = 18
// bytes, followed by the payload and a CRC-32 FCS.
const (
	headerLen = 18
	fcsLen    = 4
	// MaxPayload bounds the payload length to one 16-bit length field.
	MaxPayload = 2304 // 802.11 MSDU maximum
)

// Marshal errors.
var (
	ErrPayloadTooLarge = errors.New("dot11: payload exceeds MaxPayload")
	ErrShortFrame      = errors.New("dot11: frame too short")
	ErrBadFCS          = errors.New("dot11: frame check sequence mismatch")
	ErrBadLength       = errors.New("dot11: payload length field mismatch")
)

// Marshal serialises the frame, appending the FCS.
func (f *Frame) Marshal() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, ErrPayloadTooLarge
	}
	buf := make([]byte, headerLen+len(f.Payload)+fcsLen)
	buf[0] = byte(f.Type)
	buf[1] = f.Flags
	binary.BigEndian.PutUint16(buf[2:], f.Seq)
	copy(buf[4:], f.Src[:])
	copy(buf[10:], f.Dst[:])
	binary.BigEndian.PutUint16(buf[16:], uint16(len(f.Payload)))
	copy(buf[headerLen:], f.Payload)
	fcs := crc32.ChecksumIEEE(buf[:headerLen+len(f.Payload)])
	binary.BigEndian.PutUint32(buf[headerLen+len(f.Payload):], fcs)
	return buf, nil
}

// Unmarshal parses a frame from b, verifying length consistency and the
// FCS. The returned frame's payload aliases b.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < headerLen+fcsLen {
		return nil, ErrShortFrame
	}
	payLen := int(binary.BigEndian.Uint16(b[16:]))
	if len(b) != headerLen+payLen+fcsLen {
		return nil, ErrBadLength
	}
	want := binary.BigEndian.Uint32(b[headerLen+payLen:])
	if crc32.ChecksumIEEE(b[:headerLen+payLen]) != want {
		return nil, ErrBadFCS
	}
	f := &Frame{
		Type:  FrameType(b[0]),
		Flags: b[1],
		Seq:   binary.BigEndian.Uint16(b[2:]),
	}
	copy(f.Src[:], b[4:10])
	copy(f.Dst[:], b[10:16])
	f.Payload = b[headerLen : headerLen+payLen]
	return f, nil
}

// WireLen returns the marshalled length of the frame in bytes, used by
// the airtime model.
func (f *Frame) WireLen() int { return headerLen + len(f.Payload) + fcsLen }

// Ack constructs the ACK for a received frame, addressed back to its
// sender.
func Ack(of *Frame, from Addr) *Frame {
	return &Frame{Type: TypeAck, Seq: of.Seq, Src: from, Dst: of.Src}
}
