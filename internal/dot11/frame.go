// Package dot11 models the subset of 802.11 link-layer framing the hint
// protocol rides on: data frames, ACKs, probe requests/responses and
// beacons, with MAC addresses, sequence numbers and a frame check
// sequence. Frames marshal to and from bytes so the hint protocol can be
// exercised over real sockets (see cmd/hintnode) as well as inside the
// simulator.
//
// The encoding is deliberately a compact 802.11-like format, not a
// byte-exact reproduction of the standard: what matters to the paper is
// the presence of an unused header bit that a binary hint can be stuffed
// into, and the ability to piggy-back a (type, value) hint trailer on data
// frames without confusing legacy receivers.
package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"slices"
)

// Addr is a 48-bit MAC address.
type Addr [6]byte

// String formats the address in colon-separated hex.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// Broadcast is the all-ones broadcast address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// AddrFromInt derives a deterministic unicast address from an integer
// node id, convenient for simulations.
func AddrFromInt(id int) Addr {
	var a Addr
	a[0] = 0x02 // locally administered, unicast
	binary.BigEndian.PutUint32(a[2:], uint32(id))
	return a
}

// FrameType enumerates the frame types the model supports.
type FrameType byte

// Supported frame types.
const (
	TypeData FrameType = iota
	TypeAck
	TypeProbeReq
	TypeProbeResp
	TypeBeacon
	// TypeHint is the standalone hint frame of §2.3, recognised only by
	// nodes running the hint protocol.
	TypeHint
)

// String returns the frame type name.
func (t FrameType) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeAck:
		return "ack"
	case TypeProbeReq:
		return "probe-req"
	case TypeProbeResp:
		return "probe-resp"
	case TypeBeacon:
		return "beacon"
	case TypeHint:
		return "hint"
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// Header flag bits. FlagMovement is the paper's §2.3 trick: a simple
// binary movement hint occupies an otherwise-unused bit of the header, so
// ACKs and probes can carry it with zero added bytes and full legacy
// compatibility.
const (
	// FlagRetry marks a retransmission.
	FlagRetry byte = 1 << 0
	// FlagMovement carries the boolean movement hint.
	FlagMovement byte = 1 << 1
	// FlagHintTrailer marks that a hint TLV trailer follows the payload.
	FlagHintTrailer byte = 1 << 2
)

// Frame is one link-layer frame.
type Frame struct {
	Type    FrameType
	Flags   byte
	Seq     uint16
	Src     Addr
	Dst     Addr
	Payload []byte
}

// header layout: type(1) flags(1) seq(2) src(6) dst(6) paylen(2) = 18
// bytes, followed by the payload and a CRC-32 FCS.
const (
	headerLen = 18
	fcsLen    = 4
	// MaxPayload bounds the payload length to one 16-bit length field.
	MaxPayload = 2304 // 802.11 MSDU maximum
)

// Marshal errors.
var (
	ErrPayloadTooLarge = errors.New("dot11: payload exceeds MaxPayload")
	ErrShortFrame      = errors.New("dot11: frame too short")
	ErrBadFCS          = errors.New("dot11: frame check sequence mismatch")
	ErrBadLength       = errors.New("dot11: payload length field mismatch")
)

// Marshal serialises the frame, appending the FCS.
func (f *Frame) Marshal() ([]byte, error) {
	return f.MarshalAppend(make([]byte, 0, f.WireLen()))
}

// MarshalAppend serialises the frame (including FCS) onto the end of dst
// and returns the extended slice. When dst has capacity for the frame,
// no allocation occurs — this is the serving-plane entry point: an ACK
// burst marshals into one reusable buffer (see internal/hintserve).
func (f *Frame) MarshalAppend(dst []byte) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, ErrPayloadTooLarge
	}
	off := len(dst)
	dst = slices.Grow(dst, f.WireLen())[:off+f.WireLen()]
	buf := dst[off:]
	buf[0] = byte(f.Type)
	buf[1] = f.Flags
	binary.BigEndian.PutUint16(buf[2:], f.Seq)
	copy(buf[4:], f.Src[:])
	copy(buf[10:], f.Dst[:])
	binary.BigEndian.PutUint16(buf[16:], uint16(len(f.Payload)))
	copy(buf[headerLen:], f.Payload)
	fcs := crc32.ChecksumIEEE(buf[:headerLen+len(f.Payload)])
	binary.BigEndian.PutUint32(buf[headerLen+len(f.Payload):], fcs)
	return dst, nil
}

// Unmarshal parses a frame from b, verifying length consistency and the
// FCS. The returned frame's payload aliases b.
func Unmarshal(b []byte) (*Frame, error) {
	f := &Frame{}
	if err := UnmarshalInto(f, b); err != nil {
		return nil, err
	}
	return f, nil
}

// UnmarshalInto parses a frame from b into f, verifying length
// consistency and the FCS. f's payload aliases b; nothing is allocated,
// so a receive loop can reuse one Frame across packets (the payload
// alias is only valid until the receive buffer is overwritten).
func UnmarshalInto(f *Frame, b []byte) error {
	if len(b) < headerLen+fcsLen {
		return ErrShortFrame
	}
	payLen := int(binary.BigEndian.Uint16(b[16:]))
	if len(b) != headerLen+payLen+fcsLen {
		return ErrBadLength
	}
	want := binary.BigEndian.Uint32(b[headerLen+payLen:])
	if crc32.ChecksumIEEE(b[:headerLen+payLen]) != want {
		return ErrBadFCS
	}
	f.Type = FrameType(b[0])
	f.Flags = b[1]
	f.Seq = binary.BigEndian.Uint16(b[2:])
	copy(f.Src[:], b[4:10])
	copy(f.Dst[:], b[10:16])
	f.Payload = b[headerLen : headerLen+payLen]
	return nil
}

// WireLen returns the marshalled length of the frame in bytes, used by
// the airtime model.
func (f *Frame) WireLen() int { return headerLen + len(f.Payload) + fcsLen }

// Ack constructs the ACK for a received frame, addressed back to its
// sender.
func Ack(of *Frame, from Addr) *Frame {
	a := &Frame{}
	AckInto(a, of, from)
	return a
}

// AckInto fills ack as the ACK for a received frame, addressed back to
// its sender, overwriting every field so a serving loop can reuse one
// Frame for every ACK it emits.
func AckInto(ack, of *Frame, from Addr) {
	ack.Type = TypeAck
	ack.Flags = 0
	ack.Seq = of.Seq
	ack.Src = from
	ack.Dst = of.Src
	ack.Payload = nil
}
