package dot11

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	f := &Frame{
		Type:    TypeData,
		Flags:   FlagMovement | FlagRetry,
		Seq:     1234,
		Src:     AddrFromInt(7),
		Dst:     AddrFromInt(9),
		Payload: []byte("hello wireless world"),
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != f.WireLen() {
		t.Errorf("wire length %d != WireLen %d", len(b), f.WireLen())
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != f.Type || g.Flags != f.Flags || g.Seq != f.Seq ||
		g.Src != f.Src || g.Dst != f.Dst || !bytes.Equal(g.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", g, f)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(typ, flags byte, seq uint16, srcID, dstID int32, payLen uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, int(payLen)%MaxPayload)
		rng.Read(payload)
		fr := &Frame{
			Type:    FrameType(typ % 6),
			Flags:   flags,
			Seq:     seq,
			Src:     AddrFromInt(int(srcID)),
			Dst:     AddrFromInt(int(dstID)),
			Payload: payload,
		}
		b, err := fr.Marshal()
		if err != nil {
			return false
		}
		g, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return g.Type == fr.Type && g.Flags == fr.Flags && g.Seq == fr.Seq &&
			g.Src == fr.Src && g.Dst == fr.Dst && bytes.Equal(g.Payload, fr.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	f := &Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Marshal(); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestUnmarshalShortFrame(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); !errors.Is(err, ErrShortFrame) {
		t.Errorf("err = %v, want ErrShortFrame", err)
	}
}

func TestUnmarshalBadLength(t *testing.T) {
	f := &Frame{Payload: []byte("abc")}
	b, _ := f.Marshal()
	// Truncate one byte: the declared payload length no longer matches.
	if _, err := Unmarshal(b[:len(b)-1]); !errors.Is(err, ErrBadLength) {
		t.Errorf("err = %v, want ErrBadLength", err)
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: []byte("payload bytes")}
	b, _ := f.Marshal()
	// Flip every byte in turn; every corruption must be caught by FCS or
	// the length check (a flipped length byte changes the expected
	// total).
	for i := range b {
		c := append([]byte(nil), b...)
		c[i] ^= 0x40
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
}

func TestAck(t *testing.T) {
	data := &Frame{Type: TypeData, Seq: 77, Src: AddrFromInt(1), Dst: AddrFromInt(2)}
	ack := Ack(data, AddrFromInt(2))
	if ack.Type != TypeAck || ack.Seq != 77 || ack.Dst != data.Src || ack.Src != AddrFromInt(2) {
		t.Errorf("Ack = %+v", ack)
	}
}

func TestAddrFromInt(t *testing.T) {
	a, b := AddrFromInt(1), AddrFromInt(2)
	if a == b {
		t.Error("distinct ids produced equal addresses")
	}
	if a != AddrFromInt(1) {
		t.Error("AddrFromInt not deterministic")
	}
	if a[0]&1 != 0 {
		t.Error("generated address must be unicast (even first octet)")
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{0x02, 0x00, 0xab, 0xcd, 0xef, 0x01}
	if got := a.String(); got != "02:00:ab:cd:ef:01" {
		t.Errorf("Addr.String() = %q", got)
	}
}

func TestFrameTypeString(t *testing.T) {
	names := map[FrameType]string{
		TypeData: "data", TypeAck: "ack", TypeProbeReq: "probe-req",
		TypeProbeResp: "probe-resp", TypeBeacon: "beacon", TypeHint: "hint",
	}
	for ft, want := range names {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ft, got, want)
		}
	}
	if FrameType(99).String() == "" {
		t.Error("unknown type should still format")
	}
}

func TestEmptyPayload(t *testing.T) {
	f := &Frame{Type: TypeAck, Src: AddrFromInt(3), Dst: AddrFromInt(4)}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Payload) != 0 {
		t.Errorf("payload = %v, want empty", g.Payload)
	}
}

func TestMarshalAppendMatchesMarshal(t *testing.T) {
	f := &Frame{Type: TypeData, Flags: FlagMovement, Seq: 77,
		Src: AddrFromInt(5), Dst: AddrFromInt(6), Payload: []byte("append me")}
	want, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Appending onto a prefix must leave the prefix intact and produce
	// the same wire bytes after it.
	prefix := []byte{0xde, 0xad}
	got, err := f.MarshalAppend(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:2], prefix) {
		t.Errorf("prefix clobbered: %x", got[:2])
	}
	if !bytes.Equal(got[2:], want) {
		t.Errorf("MarshalAppend bytes differ from Marshal:\n %x\n %x", got[2:], want)
	}
	// Within capacity, MarshalAppend must not allocate: this is the ACK
	// burst path of the serving plane.
	buf := make([]byte, 0, 4*f.WireLen())
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		var err error
		for i := 0; i < 4; i++ {
			if buf, err = f.MarshalAppend(buf); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("MarshalAppend within capacity allocates %.0f times, want 0", allocs)
	}
	if f2 := (&Frame{Payload: make([]byte, MaxPayload+1)}); true {
		if _, err := f2.MarshalAppend(nil); err != ErrPayloadTooLarge {
			t.Errorf("oversized payload: err = %v", err)
		}
	}
}

func TestUnmarshalIntoReuse(t *testing.T) {
	a := &Frame{Type: TypeData, Seq: 1, Src: AddrFromInt(1), Dst: AddrFromInt(2), Payload: []byte("first")}
	b, _ := a.Marshal()
	var f Frame
	if err := UnmarshalInto(&f, b); err != nil {
		t.Fatal(err)
	}
	if f.Seq != 1 || string(f.Payload) != "first" {
		t.Errorf("first parse: %+v", f)
	}
	// Reusing the same Frame must fully overwrite it, including
	// truncating the payload alias.
	c := &Frame{Type: TypeAck, Seq: 2, Src: AddrFromInt(3), Dst: AddrFromInt(4)}
	cb, _ := c.Marshal()
	if err := UnmarshalInto(&f, cb); err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeAck || f.Seq != 2 || len(f.Payload) != 0 || f.Src != AddrFromInt(3) {
		t.Errorf("reused parse: %+v", f)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := UnmarshalInto(&f, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("UnmarshalInto allocates %.0f times, want 0", allocs)
	}
	if err := UnmarshalInto(&f, b[:3]); err != ErrShortFrame {
		t.Errorf("short frame: err = %v", err)
	}
}

func TestAckIntoOverwrites(t *testing.T) {
	data := &Frame{Type: TypeData, Seq: 9, Src: AddrFromInt(7), Dst: AddrFromInt(1), Payload: []byte("x")}
	want := Ack(data, AddrFromInt(1))
	// Start from a dirty frame: every field must be overwritten.
	ack := Frame{Type: TypeBeacon, Flags: 0xff, Seq: 1234, Src: AddrFromInt(42), Dst: AddrFromInt(43), Payload: []byte("junk")}
	AckInto(&ack, data, AddrFromInt(1))
	if ack.Type != want.Type || ack.Flags != want.Flags || ack.Seq != want.Seq ||
		ack.Src != want.Src || ack.Dst != want.Dst || len(ack.Payload) != 0 {
		t.Errorf("AckInto = %+v, want %+v", ack, *want)
	}
}
