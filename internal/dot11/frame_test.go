package dot11

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	f := &Frame{
		Type:    TypeData,
		Flags:   FlagMovement | FlagRetry,
		Seq:     1234,
		Src:     AddrFromInt(7),
		Dst:     AddrFromInt(9),
		Payload: []byte("hello wireless world"),
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != f.WireLen() {
		t.Errorf("wire length %d != WireLen %d", len(b), f.WireLen())
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != f.Type || g.Flags != f.Flags || g.Seq != f.Seq ||
		g.Src != f.Src || g.Dst != f.Dst || !bytes.Equal(g.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", g, f)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(typ, flags byte, seq uint16, srcID, dstID int32, payLen uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, int(payLen)%MaxPayload)
		rng.Read(payload)
		fr := &Frame{
			Type:    FrameType(typ % 6),
			Flags:   flags,
			Seq:     seq,
			Src:     AddrFromInt(int(srcID)),
			Dst:     AddrFromInt(int(dstID)),
			Payload: payload,
		}
		b, err := fr.Marshal()
		if err != nil {
			return false
		}
		g, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return g.Type == fr.Type && g.Flags == fr.Flags && g.Seq == fr.Seq &&
			g.Src == fr.Src && g.Dst == fr.Dst && bytes.Equal(g.Payload, fr.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	f := &Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Marshal(); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestUnmarshalShortFrame(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); !errors.Is(err, ErrShortFrame) {
		t.Errorf("err = %v, want ErrShortFrame", err)
	}
}

func TestUnmarshalBadLength(t *testing.T) {
	f := &Frame{Payload: []byte("abc")}
	b, _ := f.Marshal()
	// Truncate one byte: the declared payload length no longer matches.
	if _, err := Unmarshal(b[:len(b)-1]); !errors.Is(err, ErrBadLength) {
		t.Errorf("err = %v, want ErrBadLength", err)
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: []byte("payload bytes")}
	b, _ := f.Marshal()
	// Flip every byte in turn; every corruption must be caught by FCS or
	// the length check (a flipped length byte changes the expected
	// total).
	for i := range b {
		c := append([]byte(nil), b...)
		c[i] ^= 0x40
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
}

func TestAck(t *testing.T) {
	data := &Frame{Type: TypeData, Seq: 77, Src: AddrFromInt(1), Dst: AddrFromInt(2)}
	ack := Ack(data, AddrFromInt(2))
	if ack.Type != TypeAck || ack.Seq != 77 || ack.Dst != data.Src || ack.Src != AddrFromInt(2) {
		t.Errorf("Ack = %+v", ack)
	}
}

func TestAddrFromInt(t *testing.T) {
	a, b := AddrFromInt(1), AddrFromInt(2)
	if a == b {
		t.Error("distinct ids produced equal addresses")
	}
	if a != AddrFromInt(1) {
		t.Error("AddrFromInt not deterministic")
	}
	if a[0]&1 != 0 {
		t.Error("generated address must be unicast (even first octet)")
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{0x02, 0x00, 0xab, 0xcd, 0xef, 0x01}
	if got := a.String(); got != "02:00:ab:cd:ef:01" {
		t.Errorf("Addr.String() = %q", got)
	}
}

func TestFrameTypeString(t *testing.T) {
	names := map[FrameType]string{
		TypeData: "data", TypeAck: "ack", TypeProbeReq: "probe-req",
		TypeProbeResp: "probe-resp", TypeBeacon: "beacon", TypeHint: "hint",
	}
	for ft, want := range names {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ft, got, want)
		}
	}
	if FrameType(99).String() == "" {
		t.Error("unknown type should still format")
	}
}

func TestEmptyPayload(t *testing.T) {
	f := &Frame{Type: TypeAck, Src: AddrFromInt(3), Dst: AddrFromInt(4)}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Payload) != 0 {
		t.Errorf("payload = %v, want empty", g.Payload)
	}
}
