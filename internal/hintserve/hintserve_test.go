package hintserve

import (
	"net"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/hintproto"
)

// startServer boots a serving plane on a loopback socket and returns it
// with its address; cleanup stops it.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	s := New(conn, cfg)
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		s.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not stop after Close")
		}
	})
	return s, s.LocalAddr().String()
}

// TestTableAdmitEvictReject exercises the bounded client table's full
// life cycle on a single-bucket table where collisions are forced.
func TestTableAdmitEvictReject(t *testing.T) {
	tbl := newClientTable(8, time.Second) // one bucket pair: 8 slots total
	if got := tbl.capacity(); got != 8 {
		t.Fatalf("capacity = %d, want 8", got)
	}
	now := time.Duration(0)
	for i := 0; i < 8; i++ {
		c, res := tbl.lookup(dot11.AddrFromInt(100+i), now)
		if res != lookupAdmitted || c == nil {
			t.Fatalf("admit %d: res=%v", i, res)
		}
		c.adapter = (&shard{cfg: Config{}.withDefaults()}).newAdapter()
		now += time.Millisecond
	}
	if tbl.live != 8 {
		t.Fatalf("live = %d, want 8", tbl.live)
	}
	// Re-lookup is found, not re-admitted.
	if _, res := tbl.lookup(dot11.AddrFromInt(100), now); res != lookupFound {
		t.Fatalf("re-lookup: res=%v", res)
	}
	// Table full, everyone fresh: a new address must be rejected, not
	// grow the table (spoofed-flood bound).
	if _, res := tbl.lookup(dot11.AddrFromInt(999), now); res != lookupRejected {
		t.Fatalf("full fresh table: res=%v, want rejected", res)
	}
	// After the idle timeout the oldest client is recycled — and the new
	// occupant reuses its adapter.
	now += 2 * time.Second
	// Keep client 100 fresh so it is not the eviction victim.
	tbl.lookup(dot11.AddrFromInt(100), now)
	c, res := tbl.lookup(dot11.AddrFromInt(999), now)
	if res != lookupEvicted {
		t.Fatalf("idle table: res=%v, want evicted", res)
	}
	if c.adapter == nil {
		t.Fatal("evict-admit must reuse the slot's adapter")
	}
	if c.addr != dot11.AddrFromInt(999) || c.frames != 0 || c.hints != 0 {
		t.Fatalf("recycled slot not reinitialised: %+v", c)
	}
	if tbl.live != 8 {
		t.Fatalf("live after eviction = %d, want 8", tbl.live)
	}
}

// TestServeEndToEnd runs a full herd over real UDP and cross-checks the
// load report against the server's own counters: hints ingested from
// all three encodings, movement switches observed, corrupt frames
// rejected, and a healthy ack ratio with sane latencies.
func TestServeEndToEnd(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 4})
	rep, err := RunLoad(LoadConfig{
		Target:       addr,
		Clients:      200,
		Packets:      8000,
		Senders:      4,
		TogglePeriod: 16,
		CorruptRatio: 0.05,
		Timeout:      30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report: %s", rep)
	if rep.DataSent == 0 || rep.Acked == 0 {
		t.Fatalf("no traffic served: %s", rep)
	}
	if rep.AckRatio < 0.9 {
		t.Errorf("ack ratio %.3f, want >= 0.9 on loopback", rep.AckRatio)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("implausible latencies: p50=%s p99=%s", rep.P50, rep.P99)
	}
	st := srv.Stats()
	t.Logf("server: %s", st)
	if st.Acks < uint64(rep.Acked) {
		t.Errorf("server acked %d < client observed %d", st.Acks, rep.Acked)
	}
	if st.Hints == 0 || st.Switches == 0 {
		t.Errorf("hints/switches not ingested: %s", st)
	}
	if rep.CorruptSent > 0 && st.BadFrames == 0 {
		t.Errorf("sent %d corrupt frames but server counted no bad frames", rep.CorruptSent)
	}
	if st.LiveClients == 0 || st.LiveClients > 200 {
		t.Errorf("live clients = %d, want (0,200]", st.LiveClients)
	}
	if st.Rejected != 0 {
		t.Errorf("unexpected rejections at low occupancy: %d", st.Rejected)
	}
}

// TestServeSurvivesVanishingClient kills a client herd mid-run (socket
// closed with ACKs still in flight) and verifies the plane keeps
// serving a second herd afterwards: transient write errors must be
// counted, never fatal.
func TestServeSurvivesVanishingClient(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 2})

	// A raw client that sends data frames and disappears without
	// reading its ACKs: once its socket closes, server ACK writes hit a
	// dead port.
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	vanish, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	f := &dot11.Frame{Type: dot11.TypeData, Src: dot11.AddrFromInt(5000), Dst: apAddr, Payload: []byte("doomed")}
	hintproto.SetMovementBit(f, true)
	for i := 0; i < 50; i++ {
		f.Seq = uint16(i)
		b, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vanish.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	vanish.Close() // herd killed mid-run

	// The plane must still serve a fresh, well-behaved herd.
	rep, err := RunLoad(LoadConfig{
		Target:  addr,
		Clients: 50,
		Packets: 2000,
		Senders: 2,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AckRatio < 0.9 {
		t.Errorf("ack ratio %.3f after client vanished, want >= 0.9", rep.AckRatio)
	}
	st := srv.Stats()
	if st.DataFrames < uint64(rep.DataSent) {
		t.Errorf("server served %d data frames, expected at least %d", st.DataFrames, rep.DataSent)
	}
}

// TestFloodStaysBounded throws far more distinct source addresses at a
// deliberately tiny table than it can hold: the table must reject the
// overflow (bounded memory under spoofed floods) while still serving
// the clients it admitted.
func TestFloodStaysBounded(t *testing.T) {
	srv, addr := startServer(t, Config{
		Shards:          1,
		ClientsPerShard: 64,
		IdleTimeout:     time.Hour, // nothing goes idle during the test
	})
	rep, err := RunLoad(LoadConfig{
		Target:  addr,
		Clients: 1000,
		Packets: 4000,
		Senders: 2,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	t.Logf("report: %s", rep)
	t.Logf("server: %s", st)
	if st.LiveClients > 64 {
		t.Fatalf("live clients %d exceeds table capacity 64", st.LiveClients)
	}
	if st.Rejected == 0 {
		t.Error("a 1000-address flood against 64 slots must reject packets")
	}
	if st.Acks == 0 {
		t.Error("admitted clients must still be served during a flood")
	}
}

// TestStatsStringSmoke keeps the operator formatting total.
func TestStatsStringSmoke(t *testing.T) {
	s := Stats{Packets: 1, DataFrames: 2, LiveClients: 3}
	if s.String() == "" {
		t.Fatal("empty Stats.String")
	}
	r := LoadReport{Clients: 1}
	if r.String() == "" {
		t.Fatal("empty LoadReport.String")
	}
}
