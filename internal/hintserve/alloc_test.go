package hintserve

import (
	"testing"
)

// TestServeBatchZeroAlloc is the allocation budget of the serving
// plane: after the warm-up pass (admissions, adapter rings, scratch
// growth), the per-packet decode→ingest→adapt→ack path must not touch
// the heap at all. The harness replays realistic traffic — movement
// bits, TLV trailers, standalone hint frames, movement toggles — so
// every steady-state branch of servePacket is inside the measured loop.
func TestServeBatchZeroAlloc(t *testing.T) {
	h, err := NewBenchHarness(Config{BatchSize: 64}, 256)
	if err != nil {
		t.Fatal(err)
	}
	// One extra full cycle beyond the constructor's warm pass, so any
	// lazily allocated state (observation rings on the first Observe
	// after a toggle, scratch regrowth) is settled.
	for i := 0; i < h.NumBatches(); i++ {
		h.ServeBatch()
	}
	allocs := testing.AllocsPerRun(200, func() {
		h.ServeBatch()
	})
	if allocs != 0 {
		t.Fatalf("serve path allocates %.1f times per batch, want 0", allocs)
	}
	st := h.Stats()
	if st.BadFrames != 0 {
		t.Fatalf("harness traffic must decode cleanly, got %d bad frames", st.BadFrames)
	}
	if st.DataFrames == 0 || st.Hints == 0 || st.Switches == 0 {
		t.Fatalf("harness must exercise data, hints and toggles: %s", st)
	}
}
