package hintserve

import (
	"net"
	"testing"
	"time"

	"repro/internal/dot11"
)

// TestPercentileIdx pins the nearest-rank definition at the boundaries
// that the old floor form ((n-1)*p/100) got wrong: the P99 of 50
// samples is the 50th (index 49), not the 49th.
func TestPercentileIdx(t *testing.T) {
	cases := []struct{ n, p, want int }{
		{1, 50, 0},
		{1, 99, 0},
		{1, 100, 0},
		{50, 50, 24},
		{50, 99, 49},
		{50, 100, 49},
		{100, 50, 49},
		{100, 99, 98},
		{100, 100, 99},
		// Degenerate inputs stay clamped.
		{0, 99, 0},
		{10, 0, 0},
	}
	for _, c := range cases {
		if got := percentileIdx(c.n, c.p); got != c.want {
			t.Errorf("percentileIdx(%d, %d) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

// TestStatsConsistentUnderLoad hammers Stats() while a shard is live,
// asserting the cross-field invariants that a torn field-by-field sum
// violates: every ACK answers a served packet (Acks ≤ Packets) and
// every packet classifies as at most one of data or bad (DataFrames +
// BadFrames ≤ Packets). Counters must also be monotone between
// scrapes. Before the per-shard seqlock, a scrape could read a batch's
// flushed ACKs together with a pre-batch packet count and fail both.
func TestStatsConsistentUnderLoad(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 1, BatchSize: 16})

	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Drain ACKs so the server's writes keep succeeding.
	go func() {
		buf := make([]byte, 2048)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	// Sender: valid data frames from a handful of clients, as fast as
	// the socket takes them, until stop closes.
	stop := make(chan struct{})
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		apAddr := dot11.AddrFromInt(1)
		var seq uint16
		for {
			select {
			case <-stop:
				return
			default:
			}
			f := &dot11.Frame{Type: dot11.TypeData, Seq: seq, Src: dot11.AddrFromInt(100 + int(seq%8)), Dst: apAddr, Payload: []byte("hammer")}
			seq++
			b, err := f.Marshal()
			if err != nil {
				t.Errorf("marshal: %v", err)
				return
			}
			conn.Write(b)
		}
	}()

	var prev Stats
	deadline := time.After(700 * time.Millisecond)
	scrapes := 0
	for looping := true; looping; {
		select {
		case <-deadline:
			looping = false
		default:
		}
		st := srv.Stats()
		scrapes++
		if st.Acks > st.Packets {
			t.Fatalf("torn snapshot after %d scrapes: Acks %d > Packets %d", scrapes, st.Acks, st.Packets)
		}
		if st.DataFrames+st.BadFrames > st.Packets {
			t.Fatalf("torn snapshot after %d scrapes: DataFrames %d + BadFrames %d > Packets %d", scrapes, st.DataFrames, st.BadFrames, st.Packets)
		}
		if st.Packets < prev.Packets || st.Acks < prev.Acks || st.Batches < prev.Batches {
			t.Fatalf("counters went backwards: %+v then %+v", prev, st)
		}
		prev = st
	}
	close(stop)
	<-senderDone
	if scrapes < 100 {
		t.Errorf("only %d scrapes completed; hammer too weak to mean anything", scrapes)
	}
	if prev.Packets == 0 {
		t.Error("server saw no packets; hammer test ran vacuously")
	}
	t.Logf("%d scrapes, final: %s", scrapes, prev)
}
