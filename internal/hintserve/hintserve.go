// Package hintserve is the production hint-serving plane: the AP-side
// engine that receives hint-bearing frames from thousands of clients
// over UDP, ingests the hints, drives one hint-aware rate adapter per
// client, and acknowledges data frames.
//
// The design replaces the single decode-everything read loop of early
// hintnode builds with a sharded, batched pipeline:
//
//		reader ──route by hash(src addr)──▶ shard 0 ─▶ ack burst
//		                                   shard 1 ─▶ ack burst
//		                                   ...
//
//	  - One reader goroutine pulls datagrams off the socket in bursts
//	    (blocking for the first packet, then polling under a short
//	    deadline) and routes each packet to a shard by the hash of its
//	    source MAC — the one header field that partitions all per-client
//	    state. Packets accumulate into per-shard batches; a batch is
//	    handed over when full or when the socket goes quiet.
//	  - Each shard goroutine owns a preallocated client-state table
//	    (table.go) and processes its batches with zero cross-shard
//	    locking: decode into a reused Frame, ingest hints via the
//	    allocation-free AppendAll walk, adapt the client's rate state,
//	    and marshal the ACK into the batch's reusable output buffer.
//	    ACKs are flushed as one burst of writes per batch.
//	  - Batches recycle through a free list (a channel per shard), which
//	    doubles as backpressure: when a shard falls behind, the reader
//	    blocks on its free list instead of growing queues without bound.
//
// The per-packet serve path performs zero heap allocations in steady
// state (proven by an allocation-budget test); all buffers, frames,
// client slots and adapters are preallocated or slot-recycled.
package hintserve

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dot11"
	"repro/internal/hintproto"
	"repro/internal/rate"
)

// minWireLen is the wire size of the smallest valid frame (empty
// payload); anything shorter is dropped before routing. It is also the
// exact size of every ACK.
var minWireLen = (&dot11.Frame{}).WireLen()

// apAddr is the serving plane's own MAC: the source of every ACK.
var apAddr = dot11.AddrFromInt(1)

// Config tunes the serving plane. The zero value is usable: every
// field defaults sensibly (see withDefaults).
type Config struct {
	// Shards is the number of serving goroutines; default GOMAXPROCS.
	Shards int
	// ClientsPerShard bounds each shard's client table; default 4096.
	// Total capacity is Shards × ClientsPerShard (rounded up to the
	// table's bucket geometry).
	ClientsPerShard int
	// IdleTimeout is how long a client may be silent before its slot can
	// be recycled for a new address; default 30s.
	IdleTimeout time.Duration
	// BatchSize is the number of packets handed to a shard at once;
	// default 64.
	BatchSize int
	// BatchesPerShard sizes each shard's free list; default 4. The
	// reader stalls when a shard has no free batch — that is the
	// backpressure bound.
	BatchesPerShard int
	// MaxPacket is the largest datagram accepted; default fits a frame
	// with MaxPayload.
	MaxPacket int
	// PollWindow is the read deadline used to drain a burst after the
	// first blocking read; default 100µs. Larger windows batch better,
	// smaller windows ack partial batches sooner.
	PollWindow time.Duration
	// AdapterWindow is the sampling window given to each client's
	// static-case adapter. The serving plane must keep this small: the
	// adapter's event ring is sized from it, and at ten thousand clients
	// the default simulation window would cost gigabytes. Default 50ms.
	AdapterWindow time.Duration
	// AdapterBytes is the packet size the adapter's airtime model
	// assumes; default 1500.
	AdapterBytes int
	// Seed makes adapter randomness deterministic; default 1.
	Seed int64
	// OnSwitch, if set, is called from the owning shard whenever a
	// client's movement state flips. It must be fast and must not
	// retain the address past the call.
	OnSwitch func(addr dot11.Addr, moving bool)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.ClientsPerShard <= 0 {
		c.ClientsPerShard = 4096
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.BatchesPerShard <= 0 {
		c.BatchesPerShard = 4
	}
	if c.MaxPacket <= 0 {
		c.MaxPacket = minWireLen + dot11.MaxPayload
	}
	if c.PollWindow <= 0 {
		c.PollWindow = 100 * time.Microsecond
	}
	if c.AdapterWindow <= 0 {
		c.AdapterWindow = 50 * time.Millisecond
	}
	if c.AdapterBytes <= 0 {
		c.AdapterBytes = 1500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// batch is one unit of reader→shard handoff: up to BatchSize packets
// copied into a contiguous store, plus the output buffer their ACKs
// marshal into. Batches are preallocated per shard and recycled via the
// shard's free list, so the steady-state reader/shard loop never
// allocates.
type batch struct {
	n         int
	maxPacket int
	store     []byte           // BatchSize × maxPacket backing bytes
	bufs      [][]byte         // bufs[i] = the i-th packet, aliasing store
	srcs      []netip.AddrPort // srcs[i] = who sent packet i
	out       []byte           // marshalled ACKs, cap BatchSize × minWireLen
	acks      []ackRef
}

// ackRef locates one marshalled ACK inside batch.out.
type ackRef struct {
	off, n int
	dst    netip.AddrPort
}

func newBatch(size, maxPacket int) *batch {
	return &batch{
		maxPacket: maxPacket,
		store:     make([]byte, size*maxPacket),
		bufs:      make([][]byte, size),
		srcs:      make([]netip.AddrPort, size),
		out:       make([]byte, 0, size*minWireLen),
		acks:      make([]ackRef, 0, size),
	}
}

// slotBuf returns the full-size backing buffer for packet slot i.
func (b *batch) slotBuf(i int) []byte {
	return b.store[i*b.maxPacket : (i+1)*b.maxPacket]
}

// resetOut clears only the output side, keeping the packets (used by
// the bench harness to replay a batch).
func (b *batch) resetOut() {
	b.out = b.out[:0]
	b.acks = b.acks[:0]
}

// reset makes the batch ready for refilling.
func (b *batch) reset() {
	b.n = 0
	b.resetOut()
}

// shardStats are the per-shard counters, atomically readable from
// outside the shard goroutine.
//
// The individual fields stay atomic (so any single counter can be read
// racelessly at any time), but a cross-field snapshot needs more: the
// shard goroutine bumps packets and acks at different points of a
// batch, so a reader loading fields one by one can observe impossible
// states like Acks > Packets. seq is a seqlock over the batch: the
// shard goroutine makes it odd before serving a batch and even again
// after the batch's ACKs are flushed, and snapshot() retries until it
// reads the same even value on both sides of its field loads — every
// snapshot is then a between-batches view where the cross-field
// invariants hold.
type shardStats struct {
	seq         atomic.Uint64
	packets     atomic.Uint64
	badFrames   atomic.Uint64
	dataFrames  atomic.Uint64
	hints       atomic.Uint64
	acks        atomic.Uint64
	switches    atomic.Uint64
	admitted    atomic.Uint64
	evicted     atomic.Uint64
	rejected    atomic.Uint64
	writeErrors atomic.Uint64
	batches     atomic.Uint64
	live        atomic.Int64
}

// beginBatch/endBatch bracket the shard goroutine's write section (one
// served batch plus its ACK flush): two atomic adds per 64-packet
// batch, nothing on the per-packet path.
func (ss *shardStats) beginBatch() { ss.seq.Add(1) }
func (ss *shardStats) endBatch()   { ss.seq.Add(1) }

// snapshot reads the shard's counters as one consistent unit.
func (ss *shardStats) snapshot() Stats {
	for {
		s1 := ss.seq.Load()
		if s1&1 == 0 {
			st := Stats{
				Packets:     ss.packets.Load(),
				BadFrames:   ss.badFrames.Load(),
				DataFrames:  ss.dataFrames.Load(),
				Hints:       ss.hints.Load(),
				Acks:        ss.acks.Load(),
				Switches:    ss.switches.Load(),
				Admitted:    ss.admitted.Load(),
				Evicted:     ss.evicted.Load(),
				Rejected:    ss.rejected.Load(),
				WriteErrors: ss.writeErrors.Load(),
				Batches:     ss.batches.Load(),
				LiveClients: ss.live.Load(),
			}
			if ss.seq.Load() == s1 {
				return st
			}
		}
		// Mid-batch: the shard finishes its write section in microseconds
		// (one batch serve + ACK burst), so yield and retry.
		runtime.Gosched()
	}
}

// shard owns one partition of the client space. Everything below stats
// is touched only by the shard goroutine (or, in the bench harness, by
// the single benchmarking goroutine).
type shard struct {
	id   int
	conn *net.UDPConn // nil in the conn-less bench harness
	cfg  Config

	in   chan *batch
	free chan *batch

	table   *clientTable
	scratch []hintproto.Hint
	rx      dot11.Frame // reused for every decode
	ack     dot11.Frame // reused for every ACK
	seedCtr int64

	stats shardStats
}

func newShard(id int, conn *net.UDPConn, cfg Config) *shard {
	sh := &shard{
		id:      id,
		conn:    conn,
		cfg:     cfg,
		in:      make(chan *batch, cfg.BatchesPerShard),
		free:    make(chan *batch, cfg.BatchesPerShard),
		table:   newClientTable(cfg.ClientsPerShard, cfg.IdleTimeout),
		scratch: make([]hintproto.Hint, 0, 16),
	}
	for i := 0; i < cfg.BatchesPerShard; i++ {
		sh.free <- newBatch(cfg.BatchSize, cfg.MaxPacket)
	}
	return sh
}

// newAdapter builds the hint-aware adapter for a freshly admitted
// client. Called once per table slot; recycled slots reuse the adapter.
func (sh *shard) newAdapter() *rate.HintAware {
	sh.seedCtr++
	static := rate.NewSampleRate(sh.cfg.Seed + int64(sh.id)<<40 + sh.seedCtr)
	static.Window = sh.cfg.AdapterWindow
	static.PacketBytes = sh.cfg.AdapterBytes
	return rate.NewHintAwareWith(static, rate.NewRapidSample())
}

// run is the shard goroutine: serve each incoming batch, flush its
// ACKs, recycle it. The stats seqlock brackets serve+flush so Stats()
// always observes whole-batch counter states (the conn-less bench
// harness drives serveBatch directly from a single goroutine and needs
// no bracketing).
func (sh *shard) run(start time.Time) {
	for b := range sh.in {
		sh.stats.beginBatch()
		sh.serveBatch(b, time.Since(start))
		sh.flush(b)
		sh.stats.endBatch()
		b.reset()
		sh.free <- b
	}
}

// serveBatch runs the zero-alloc hot path over every packet in b,
// marshalling ACKs into b.out. now is the serve-plane clock (monotonic
// duration since server start, shared with the rate adapters).
func (sh *shard) serveBatch(b *batch, now time.Duration) {
	sh.stats.batches.Add(1)
	for i := 0; i < b.n; i++ {
		sh.servePacket(b.bufs[i], b.srcs[i], b, now)
	}
}

// servePacket is the per-packet hot path: decode → table → ingest →
// adapt → ack. It must not allocate in steady state.
func (sh *shard) servePacket(pkt []byte, src netip.AddrPort, b *batch, now time.Duration) {
	sh.stats.packets.Add(1)
	f := &sh.rx
	if err := dot11.UnmarshalInto(f, pkt); err != nil {
		sh.stats.badFrames.Add(1)
		return
	}

	c, res := sh.table.lookup(f.Src, now)
	switch res {
	case lookupAdmitted:
		sh.stats.admitted.Add(1)
		if c.adapter == nil {
			c.adapter = sh.newAdapter()
		}
	case lookupEvicted:
		sh.stats.admitted.Add(1)
		sh.stats.evicted.Add(1)
	case lookupRejected:
		sh.stats.rejected.Add(1)
		return
	}
	if res != lookupFound {
		sh.stats.live.Store(int64(sh.table.live))
	}
	c.frames++

	sh.scratch = hintproto.AppendAll(sh.scratch[:0], f)
	for _, h := range sh.scratch {
		c.hints++
		switch h.Type {
		case hintproto.HintMovement:
			moving := h.Value != 0
			if c.adapter.Moving() != moving {
				c.adapter.SetMoving(moving)
				sh.stats.switches.Add(1)
				if cb := sh.cfg.OnSwitch; cb != nil {
					cb(f.Src, moving)
				}
			}
		case hintproto.HintHeading:
			c.heading = h.Value
		case hintproto.HintSpeed:
			c.speed = h.Value
		case hintproto.HintNoise:
			c.noise = h.Value
		}
	}
	if n := len(sh.scratch); n > 0 {
		sh.stats.hints.Add(uint64(n))
	}

	// Only data frames are acknowledged (hint frames are advisory
	// broadcast-style traffic, per the protocol).
	if f.Type != dot11.TypeData {
		return
	}
	sh.stats.dataFrames.Add(1)

	// Drive the client's rate adapter as a real AP would per exchange:
	// pick the rate this frame would be served at, then feed back the
	// (successful) delivery observation.
	r := c.adapter.PickRate(now)
	c.adapter.Observe(rate.Feedback{At: now, Rate: r, Acked: true, SNR: rate.NoSNR()})

	dot11.AckInto(&sh.ack, f, apAddr)
	off := len(b.out)
	out, err := sh.ack.MarshalAppend(b.out)
	if err != nil {
		return // unreachable: ACKs carry no payload
	}
	b.out = out
	b.acks = append(b.acks, ackRef{off: off, n: len(out) - off, dst: src})
}

// flush sends the batch's ACK burst. A failed write is counted and
// skipped — transient send errors must never stop the serving plane.
func (sh *shard) flush(b *batch) {
	if sh.conn == nil {
		return
	}
	for _, a := range b.acks {
		if _, err := sh.conn.WriteToUDPAddrPort(b.out[a.off:a.off+a.n], a.dst); err != nil {
			sh.stats.writeErrors.Add(1)
			continue
		}
		sh.stats.acks.Add(1)
	}
}

// Stats is a point-in-time snapshot of serving counters, summed over
// all shards.
type Stats struct {
	Packets     uint64 // routed to a shard and decoded (or attempted)
	ShortDrops  uint64 // datagrams below the minimum frame size
	BadFrames   uint64 // failed decode (FCS, length)
	DataFrames  uint64 // data frames served
	Hints       uint64 // hints ingested (all encodings)
	Acks        uint64 // ACKs successfully written
	Switches    uint64 // movement-state flips observed
	Admitted    uint64 // client admissions (including via eviction)
	Evicted     uint64 // idle clients recycled for new addresses
	Rejected    uint64 // packets dropped because the table was full
	WriteErrors uint64 // ACK writes that failed
	Batches     uint64 // batches served
	LiveClients int64  // clients currently tracked
}

// Server is the sharded hint-serving plane bound to one UDP socket.
type Server struct {
	conn      *net.UDPConn
	cfg       Config
	shards    []*shard
	start     time.Time
	shortDrop atomic.Uint64
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// New builds a server on conn. The caller owns conn until Serve is
// called; Close closes it.
func New(conn *net.UDPConn, cfg Config) *Server {
	cfg = cfg.withDefaults()
	// Deep socket buffers ride out recv bursts (and ACK-burst sends)
	// that outpace the reader for a moment; best-effort, the kernel may
	// clamp.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(4 << 20)
	s := &Server{conn: conn, cfg: cfg, start: time.Now()}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(i, conn, cfg))
	}
	return s
}

// LocalAddr reports the bound socket address.
func (s *Server) LocalAddr() net.Addr { return s.conn.LocalAddr() }

// NumShards reports the configured shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Serve runs the reader loop and shard goroutines until Close (or a
// fatal socket error). It returns nil on a clean Close.
func (s *Server) Serve() error {
	for _, sh := range s.shards {
		s.wg.Add(1)
		go func(sh *shard) {
			defer s.wg.Done()
			sh.run(s.start)
		}(sh)
	}
	err := s.readLoop()
	for _, sh := range s.shards {
		close(sh.in)
	}
	s.wg.Wait()
	if err != nil && errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// Close shuts the socket down, unblocking Serve.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.conn.Close() })
	return s.closeErr
}

// readLoop pulls datagrams in bursts and routes them to shards.
func (s *Server) readLoop() error {
	pending := make([]*batch, len(s.shards))
	rbuf := make([]byte, s.cfg.MaxPacket)
	var noDeadline time.Time
	for {
		// Block until the first packet of a burst arrives.
		if err := s.conn.SetReadDeadline(noDeadline); err != nil {
			return err
		}
		n, src, err := s.conn.ReadFromUDPAddrPort(rbuf)
		if err != nil {
			s.flushPending(pending)
			return err
		}
		s.route(rbuf[:n], src, pending)

		// Drain the burst under one poll deadline, armed once per burst
		// (a deadline per read would double the syscall count of the
		// reader): either the socket goes quiet or the window elapses,
		// and partial batches are flushed either way, so acks are never
		// held hostage to batch fill.
		if err := s.conn.SetReadDeadline(time.Now().Add(s.cfg.PollWindow)); err != nil {
			return err
		}
		for {
			n, src, err = s.conn.ReadFromUDPAddrPort(rbuf)
			if err != nil {
				if errors.Is(err, os.ErrDeadlineExceeded) {
					break
				}
				s.flushPending(pending)
				return err
			}
			s.route(rbuf[:n], src, pending)
		}
		s.flushPending(pending)
	}
}

// route copies one datagram into the owning shard's pending batch,
// handing the batch over when full. Blocks on the shard's free list
// when the shard is saturated (backpressure).
func (s *Server) route(pkt []byte, src netip.AddrPort, pending []*batch) {
	if len(pkt) < minWireLen {
		s.shortDrop.Add(1)
		return
	}
	var a dot11.Addr
	copy(a[:], pkt[4:10]) // src addr offset in the wire header
	si := int(hashAddr(a) % uint64(len(s.shards)))
	sh := s.shards[si]
	b := pending[si]
	if b == nil {
		b = <-sh.free
		pending[si] = b
	}
	slot := b.slotBuf(b.n)
	copy(slot, pkt)
	b.bufs[b.n] = slot[:len(pkt)]
	b.srcs[b.n] = src
	b.n++
	if b.n == len(b.bufs) {
		sh.in <- b
		pending[si] = nil
	}
}

// flushPending hands over all partially filled batches.
func (s *Server) flushPending(pending []*batch) {
	for i, b := range pending {
		if b != nil && b.n > 0 {
			s.shards[i].in <- b
			pending[i] = nil
		}
	}
}

// Stats sums counters across all shards. Each shard's counters are
// collected as one consistent unit through its stats seqlock (a
// field-by-field sum over live shards could tear — e.g. observe a
// batch's ACKs but not its packets), so the cross-field invariants
// (Acks ≤ Packets, DataFrames + BadFrames ≤ Packets) hold on every
// snapshot.
func (s *Server) Stats() Stats {
	st := Stats{ShortDrops: s.shortDrop.Load()}
	for _, sh := range s.shards {
		p := sh.stats.snapshot()
		st.Packets += p.Packets
		st.BadFrames += p.BadFrames
		st.DataFrames += p.DataFrames
		st.Hints += p.Hints
		st.Acks += p.Acks
		st.Switches += p.Switches
		st.Admitted += p.Admitted
		st.Evicted += p.Evicted
		st.Rejected += p.Rejected
		st.WriteErrors += p.WriteErrors
		st.Batches += p.Batches
		st.LiveClients += p.LiveClients
	}
	return st
}

// String renders the snapshot for operator logs.
func (st Stats) String() string {
	return fmt.Sprintf("packets=%d data=%d hints=%d acks=%d switches=%d live=%d admitted=%d evicted=%d rejected=%d bad=%d short=%d werr=%d batches=%d",
		st.Packets, st.DataFrames, st.Hints, st.Acks, st.Switches,
		st.LiveClients, st.Admitted, st.Evicted, st.Rejected,
		st.BadFrames, st.ShortDrops, st.WriteErrors, st.Batches)
}
