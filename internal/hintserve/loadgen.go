package hintserve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/dot11"
	"repro/internal/hintproto"
	"repro/internal/parallel"
)

// The load generator simulates a herd of hint-protocol clients against
// a serving plane over real UDP. It is the measurement half of the
// tentpole: cmd/hintload wraps it, the e2e tests drive it, and the
// recorded throughput/latency numbers come from its report.
//
// Each sender goroutine owns a connected UDP socket and a contiguous
// span of simulated clients. It works in windows: send a burst of
// frames (stamping each data frame's departure), then drain ACKs until
// the window is accounted for or a short drain deadline expires
// (unacked frames are written off so loss cannot stall the run; late
// ACKs still count when they straggle in during a later drain). The
// window bounds in-flight datagrams so loopback socket buffers are not
// overrun at millions of packets.
//
// ACKs are matched to departures through the wire itself: the serving
// plane acks to the frame's source address, and dot11.AddrFromInt
// embeds the client index in the address bytes, so the sender recovers
// the client from the ACK's destination and the stamp from a small
// per-client sequence ring.

// stampRing is the per-client in-flight departure ring; a power of two
// at least as large as any plausible per-client in-flight count.
const stampRing = 32

// LoadConfig describes one load run. Zero values default sensibly.
type LoadConfig struct {
	// Target is the serving plane's UDP address, e.g. "127.0.0.1:9999".
	Target string
	// Clients is the number of simulated clients; default 100.
	Clients int
	// FirstClient offsets client numbering (and thus MAC addresses) so
	// concurrent herds against one server do not collide; default 0.
	FirstClient int
	// Packets is the total number of data frames to send across all
	// clients; default 10000.
	Packets int64
	// Senders is the number of sender goroutines/sockets; default
	// min(8, GOMAXPROCS).
	Senders int
	// Window is the per-sender burst size (and in-flight bound);
	// default 64.
	Window int
	// MovingRatio is the fraction of clients that start moving;
	// default 0.5.
	MovingRatio float64
	// TogglePeriod is how many frames a client sends between movement
	// flips; 0 disables toggling. Default 64.
	TogglePeriod int
	// TrailerRatio is the probability a data frame carries a TLV hint
	// trailer; default 0.5. Frames without a trailer still carry the
	// movement header bit.
	TrailerRatio float64
	// HintFrameRatio is the probability a standalone hint frame is sent
	// alongside a data frame; default 0.05.
	HintFrameRatio float64
	// CorruptRatio is the probability a data frame is sent with a
	// deliberately broken FCS; default 0.
	CorruptRatio float64
	// PayloadSize is the data-frame payload length; default 64.
	PayloadSize int
	// Seed makes the traffic mix deterministic; default 1.
	Seed int64
	// DrainWait is how long a sender waits for missing ACKs before
	// writing them off as lost. It must comfortably exceed the plane's
	// ack latency under full load or the closed loop degenerates into
	// an open one; default 50ms.
	DrainWait time.Duration
	// Timeout bounds the whole run; default 120s.
	Timeout time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 100
	}
	if c.Packets <= 0 {
		c.Packets = 10000
	}
	if c.Senders <= 0 {
		c.Senders = min(8, runtime.GOMAXPROCS(0))
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MovingRatio == 0 {
		c.MovingRatio = 0.5
	}
	if c.TogglePeriod == 0 {
		c.TogglePeriod = 64
	}
	if c.TrailerRatio == 0 {
		c.TrailerRatio = 0.5
	}
	if c.HintFrameRatio == 0 {
		c.HintFrameRatio = 0.05
	}
	if c.PayloadSize <= 0 {
		c.PayloadSize = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DrainWait <= 0 {
		c.DrainWait = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	return c
}

// LoadReport summarises one load run.
type LoadReport struct {
	Clients       int
	DataSent      int64 // data frames sent expecting an ACK
	CorruptSent   int64 // deliberately corrupted frames (never acked)
	HintSent      int64 // standalone hint frames (never acked)
	Acked         int64
	Toggles       int64 // client movement flips generated
	AckRatio      float64
	Elapsed       time.Duration
	PacketsPerSec float64 // all frames on the wire per second
	P50, P99      time.Duration
}

// String renders the report for operator output.
func (r *LoadReport) String() string {
	return fmt.Sprintf("clients=%d data=%d hint=%d corrupt=%d acked=%d (%.2f%%) toggles=%d elapsed=%s pps=%.0f p50=%s p99=%s",
		r.Clients, r.DataSent, r.HintSent, r.CorruptSent, r.Acked,
		100*r.AckRatio, r.Toggles, r.Elapsed.Round(time.Millisecond),
		r.PacketsPerSec, r.P50, r.P99)
}

// lgClient is one simulated client's sending state.
type lgClient struct {
	addr     dot11.Addr
	seq      uint16
	moving   bool
	sinceTog int
	heading  float64
	speed    float64
	stampSeq [stampRing]uint16
	stampOK  [stampRing]bool
	stampAt  [stampRing]int64 // ns since run start
}

// senderResult is one sender goroutine's tally.
type senderResult struct {
	dataSent, corruptSent, hintSent, acked, toggles int64
	latencies                                       []int64
	err                                             error
}

// RunLoad drives a full load run and reports. It fails only when no
// sender could run at all; individual sender errors are reported inside
// the error when every sender failed.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	raddr, err := net.ResolveUDPAddr("udp", cfg.Target)
	if err != nil {
		return nil, fmt.Errorf("hintserve: bad target %q: %w", cfg.Target, err)
	}

	results := make([]senderResult, cfg.Senders)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < cfg.Senders; s++ {
		lo := cfg.Clients * s / cfg.Senders
		hi := cfg.Clients * (s + 1) / cfg.Senders
		quota := cfg.Packets*int64(s+1)/int64(cfg.Senders) - cfg.Packets*int64(s)/int64(cfg.Senders)
		if hi == lo {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int, quota int64) {
			defer wg.Done()
			results[s] = runSender(cfg, raddr, s, lo, hi, quota, start)
		}(s, lo, hi, quota)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{Clients: cfg.Clients, Elapsed: elapsed}
	var allLat []int64
	var errs []error
	ran := 0
	for i := range results {
		r := &results[i]
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		ran++
		rep.DataSent += r.dataSent
		rep.CorruptSent += r.corruptSent
		rep.HintSent += r.hintSent
		rep.Acked += r.acked
		rep.Toggles += r.toggles
		allLat = append(allLat, r.latencies...)
	}
	if ran == 0 {
		return nil, fmt.Errorf("hintserve: all %d senders failed: %w", cfg.Senders, errors.Join(errs...))
	}
	if rep.DataSent > 0 {
		rep.AckRatio = float64(rep.Acked) / float64(rep.DataSent)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		rep.PacketsPerSec = float64(rep.DataSent+rep.CorruptSent+rep.HintSent) / sec
	}
	if len(allLat) > 0 {
		slices.Sort(allLat)
		rep.P50 = time.Duration(allLat[percentileIdx(len(allLat), 50)])
		rep.P99 = time.Duration(allLat[percentileIdx(len(allLat), 99)])
	}
	return rep, nil
}

// percentileIdx returns the index of the p-th percentile in a sorted
// slice of length n: nearest-rank, ceil(p*n/100) as a 1-based rank,
// clamped into [0, n-1]. The earlier floor form ((n-1)*p/100)
// systematically undershot high percentiles at small n — n=50, p=99
// gave index 48, reporting the 97th–98th percentile as the P99.
func percentileIdx(n, p int) int {
	if n < 1 {
		return 0
	}
	i := (p*n+99)/100 - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// runSender is one sender goroutine: burst, drain, repeat.
func runSender(cfg LoadConfig, raddr *net.UDPAddr, id, lo, hi int, quota int64, start time.Time) senderResult {
	var res senderResult
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		res.err = fmt.Errorf("sender %d: %w", id, err)
		return res
	}
	defer conn.Close()
	// Deep buffers so ACK bursts are not dropped while this goroutine is
	// busy marshalling the next burst; best-effort.
	_ = conn.SetReadBuffer(2 << 20)
	_ = conn.SetWriteBuffer(2 << 20)

	rng := parallel.NewRNG(cfg.Seed + int64(id)*7919)
	clients := make([]lgClient, hi-lo)
	for i := range clients {
		c := &clients[i]
		// Client ids start at 2: the AP is 1.
		c.addr = dot11.AddrFromInt(2 + cfg.FirstClient + lo + i)
		c.moving = rng.Float64() < cfg.MovingRatio
		c.heading = float64(int(rng.Uint64() % 360))
		c.speed = 0.5 + 3*rng.Float64()
	}

	payload := make([]byte, cfg.PayloadSize)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	wire := make([]byte, 0, 4096)
	rxbuf := make([]byte, 256)
	hs := make([]hintproto.Hint, 0, 3)
	var rxFrame dot11.Frame

	deadline := start.Add(cfg.Timeout)
	var sent int64
	// outstanding is the closed-loop window: data frames sent but not
	// yet acked (or written off). The sender only pushes new frames when
	// the window has room, so offered load adapts to the plane's actual
	// service rate instead of overrunning kernel queues.
	var outstanding int64
	rr := 0
	for sent < quota && time.Now().Before(deadline) {
		burst := int64(cfg.Window) - outstanding
		if burst > quota-sent {
			burst = quota - sent
		}
		if burst < 0 {
			burst = 0
		}
		for k := int64(0); k < burst; k++ {
			c := &clients[rr]
			rr = (rr + 1) % len(clients)

			if cfg.TogglePeriod > 0 {
				c.sinceTog++
				if c.sinceTog >= cfg.TogglePeriod {
					c.sinceTog = 0
					c.moving = !c.moving
					res.toggles++
				}
			}

			f := dot11.Frame{Type: dot11.TypeData, Seq: c.seq, Src: c.addr, Dst: apAddr, Payload: payload}
			hintproto.SetMovementBit(&f, c.moving)
			if rng.Float64() < cfg.TrailerRatio {
				hs = hs[:0]
				hs = append(hs,
					hintproto.Hint{Type: hintproto.HintMovement, Value: b2f(c.moving)},
					hintproto.Hint{Type: hintproto.HintSpeed, Value: c.speed},
					hintproto.Hint{Type: hintproto.HintHeading, Value: c.heading},
				)
				if err := hintproto.AppendTrailer(&f, hs); err != nil {
					res.err = fmt.Errorf("sender %d: trailer: %w", id, err)
					return res
				}
			}
			wire, err = f.MarshalAppend(wire[:0])
			if err != nil {
				res.err = fmt.Errorf("sender %d: marshal: %w", id, err)
				return res
			}

			corrupt := cfg.CorruptRatio > 0 && rng.Float64() < cfg.CorruptRatio
			if corrupt {
				wire[len(wire)-1] ^= 0xff // break the FCS
			} else {
				slot := c.seq & (stampRing - 1)
				c.stampSeq[slot] = c.seq
				c.stampOK[slot] = true
				c.stampAt[slot] = int64(time.Since(start))
			}
			if _, err := conn.Write(wire); err != nil {
				// Transient send failure: the frame is lost, not fatal.
				if corrupt {
					res.corruptSent++ // still counted as offered load
				} else {
					c.stampOK[c.seq&(stampRing-1)] = false
				}
				continue
			}
			if corrupt {
				res.corruptSent++
			} else {
				res.dataSent++
				outstanding++
			}
			c.seq++

			if cfg.HintFrameRatio > 0 && rng.Float64() < cfg.HintFrameRatio {
				hs = hs[:0]
				hs = append(hs,
					hintproto.Hint{Type: hintproto.HintSpeed, Value: c.speed},
					hintproto.Hint{Type: hintproto.HintHeading, Value: c.heading},
				)
				hf, err := hintproto.NewHintFrame(c.addr, apAddr, hs)
				if err != nil {
					res.err = fmt.Errorf("sender %d: hint frame: %w", id, err)
					return res
				}
				hintproto.SetMovementBit(hf, c.moving)
				wire, err = hf.MarshalAppend(wire[:0])
				if err != nil {
					res.err = fmt.Errorf("sender %d: marshal hint: %w", id, err)
					return res
				}
				if _, err := conn.Write(wire); err == nil {
					res.hintSent++
				}
			}
		}
		sent += burst

		// Drain ACKs until the window has room for the next burst or the
		// drain deadline expires. On expiry the remaining outstanding
		// frames are written off as lost — loss must not stall the run —
		// but their stamps stay matchable, so stragglers that arrive in a
		// later drain still count.
		if outstanding < int64(cfg.Window) && sent < quota {
			continue
		}
		_ = conn.SetReadDeadline(time.Now().Add(cfg.DrainWait))
		drained := false
		for outstanding >= int64(cfg.Window) || (sent >= quota && outstanding > 0) {
			n, err := conn.Read(rxbuf)
			if err != nil {
				if errors.Is(err, os.ErrDeadlineExceeded) && !drained {
					// Nothing arrived all window: write the in-flight
					// frames off and move on.
					outstanding = 0
				}
				break
			}
			at := int64(time.Since(start))
			if err := dot11.UnmarshalInto(&rxFrame, rxbuf[:n]); err != nil {
				continue
			}
			if rxFrame.Type != dot11.TypeAck {
				continue
			}
			// Recover the client index from the ACK's destination.
			idx := int(binary.BigEndian.Uint32(rxFrame.Dst[2:6])) - 2 - cfg.FirstClient - lo
			if idx < 0 || idx >= len(clients) {
				continue
			}
			c := &clients[idx]
			slot := rxFrame.Seq & (stampRing - 1)
			if !c.stampOK[slot] || c.stampSeq[slot] != rxFrame.Seq {
				continue
			}
			c.stampOK[slot] = false
			res.acked++
			drained = true
			if outstanding > 0 {
				outstanding--
			}
			res.latencies = append(res.latencies, at-c.stampAt[slot])
		}
	}

	// Final drain: give straggling ACKs one longer grace period.
	_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	for {
		n, err := conn.Read(rxbuf)
		if err != nil {
			break
		}
		at := int64(time.Since(start))
		if err := dot11.UnmarshalInto(&rxFrame, rxbuf[:n]); err != nil {
			continue
		}
		if rxFrame.Type != dot11.TypeAck {
			continue
		}
		idx := int(binary.BigEndian.Uint32(rxFrame.Dst[2:6])) - 2 - cfg.FirstClient - lo
		if idx < 0 || idx >= len(clients) {
			continue
		}
		c := &clients[idx]
		slot := rxFrame.Seq & (stampRing - 1)
		if !c.stampOK[slot] || c.stampSeq[slot] != rxFrame.Seq {
			continue
		}
		c.stampOK[slot] = false
		res.acked++
		res.latencies = append(res.latencies, at-c.stampAt[slot])
	}
	return res
}
