package hintserve

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/dot11"
	"repro/internal/hintproto"
)

// BenchHarness drives one shard's serve path synchronously, with no
// socket: prebuilt batches of realistic hint traffic are replayed
// through serveBatch. This is how the allocation budget of the hot path
// is proven (testing.AllocsPerRun measures the whole process, so the
// path under test must run alone on the calling goroutine) and how the
// per-batch microbenchmark gets a stable, network-free number.
//
// The replayed traffic cycles every client through both movement
// states, so the toggle path (SetMoving plus the activated adapter's
// Reset) is part of the measured loop, not just the steady state.
type BenchHarness struct {
	sh      *shard
	batches []*batch
	idx     int
	now     time.Duration
	packets int // packets per full cycle
}

// NewBenchHarness builds a harness serving the given number of
// simulated clients. Each full cycle sends two frames per client — one
// moving, one static — as a mix of movement-bit-only data frames,
// trailer-bearing data frames, and standalone hint frames.
func NewBenchHarness(cfg Config, clients int) (*BenchHarness, error) {
	if clients <= 0 {
		return nil, fmt.Errorf("hintserve: harness needs at least one client, got %d", clients)
	}
	cfg = cfg.withDefaults()
	cfg.Shards = 1
	if cfg.ClientsPerShard < 2*clients {
		cfg.ClientsPerShard = 2 * clients
	}
	sh := newShard(0, nil, cfg)

	total := 2 * clients
	nbatches := (total + cfg.BatchSize - 1) / cfg.BatchSize
	h := &BenchHarness{sh: sh, packets: total}

	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}

	j := 0
	for bi := 0; bi < nbatches; bi++ {
		b := newBatch(cfg.BatchSize, cfg.MaxPacket)
		for b.n < cfg.BatchSize && j < total {
			c := j % clients
			moving := j < clients
			f := &dot11.Frame{
				Type:    dot11.TypeData,
				Seq:     uint16(j),
				Src:     dot11.AddrFromInt(2 + c),
				Dst:     apAddr,
				Payload: payload,
			}
			hintproto.SetMovementBit(f, moving)
			hs := []hintproto.Hint{
				{Type: hintproto.HintMovement, Value: hintproto.DecodeValue(hintproto.HintMovement, hintproto.EncodeValue(hintproto.HintMovement, b2f(moving)))},
				{Type: hintproto.HintSpeed, Value: 1.5},
				{Type: hintproto.HintHeading, Value: float64((c * 45) % 360)},
			}
			switch {
			case j%16 == 5:
				// Standalone hint frame: ingested, never acked.
				hf, err := hintproto.NewHintFrame(f.Src, apAddr, hs)
				if err != nil {
					return nil, err
				}
				hf.Seq = f.Seq
				hintproto.SetMovementBit(hf, moving)
				f = hf
			case j%2 == 0:
				// Piggy-backed TLV trailer on the data frame.
				if err := hintproto.AppendTrailer(f, hs); err != nil {
					return nil, err
				}
			}
			wire, err := f.Marshal()
			if err != nil {
				return nil, err
			}
			slot := b.slotBuf(b.n)
			copy(slot, wire)
			b.bufs[b.n] = slot[:len(wire)]
			b.srcs[b.n] = netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(c >> 8), byte(c)}), 9)
			b.n++
			j++
		}
		h.batches = append(h.batches, b)
	}

	// Warm pass: admit every client, grow the hint scratch, and let each
	// adapter allocate its observation ring. After this, serving is
	// allocation-free.
	for range h.batches {
		h.ServeBatch()
	}
	return h, nil
}

// ServeBatch replays the next prebuilt batch through the shard's serve
// path, advancing the serve clock, and reports the packet and ACK
// counts of that batch.
func (h *BenchHarness) ServeBatch() (packets, acks int) {
	b := h.batches[h.idx]
	h.idx = (h.idx + 1) % len(h.batches)
	h.now += 500 * time.Microsecond
	b.resetOut()
	h.sh.serveBatch(b, h.now)
	return b.n, len(b.acks)
}

// CyclePackets reports how many packets one full replay cycle serves.
func (h *BenchHarness) CyclePackets() int { return h.packets }

// NumBatches reports how many prebuilt batches the harness cycles over.
func (h *BenchHarness) NumBatches() int { return len(h.batches) }

// Stats exposes the underlying shard's counters.
func (h *BenchHarness) Stats() Stats {
	st := Stats{}
	sh := h.sh
	st.Packets = sh.stats.packets.Load()
	st.BadFrames = sh.stats.badFrames.Load()
	st.DataFrames = sh.stats.dataFrames.Load()
	st.Hints = sh.stats.hints.Load()
	st.Switches = sh.stats.switches.Load()
	st.Admitted = sh.stats.admitted.Load()
	st.Evicted = sh.stats.evicted.Load()
	st.Rejected = sh.stats.rejected.Load()
	st.Batches = sh.stats.batches.Load()
	st.LiveClients = sh.stats.live.Load()
	return st
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
