package hintserve

import (
	"encoding/binary"
	"time"

	"repro/internal/dot11"
	"repro/internal/rate"
)

// The client table is the DPVS static-map idiom scaled up: all state for
// a shard's clients lives in one array allocated at startup, sized by
// configuration, and never grows. Lookups are two-choice set-associative
// — a client hashes to two buckets of `ways` slots each and lives in one
// of those sixteen slots — so the worst case is a fixed, small scan with
// no probing cascades and no per-packet map machinery. The table is
// owned by exactly one shard goroutine: no locks anywhere.
//
// Boundedness is a defence, not just an optimisation: a spoofed-address
// flood can at worst churn table slots, never exhaust memory. A new
// address is admitted into a free slot, or by evicting the
// least-recently-seen client in its two buckets if that client has been
// idle longer than the idle timeout; if all sixteen slots are live and
// fresh, the packet is dropped and counted as rejected.

// ways is the bucket width: slots scanned per hash choice.
const ways = 8

// client is one client's serving state: identity, recency, the latest
// decoded hints, and the per-client hint-aware rate adapter (the
// per-destination state a real AP keeps).
type client struct {
	addr     dot11.Addr
	live     bool
	lastSeen time.Duration
	heading  float64
	speed    float64
	noise    float64
	frames   uint64
	hints    uint64
	// adapter is allocated once per slot on first use and reused (after
	// a Reset) when the slot is recycled to a new client, so admission
	// churn does not allocate in steady state.
	adapter *rate.HintAware
}

// lookupResult describes how lookup resolved an address.
type lookupResult int

const (
	lookupFound lookupResult = iota
	lookupAdmitted
	lookupEvicted // admitted by recycling an idle client's slot
	lookupRejected
)

// clientTable is a shard's preallocated client map.
type clientTable struct {
	slots    []client
	nbuckets int // power of two
	mask     uint64
	idle     time.Duration
	live     int
}

// newClientTable builds a table with at least capacity slots. idle is
// the eviction threshold: a client unseen for longer may be replaced.
func newClientTable(capacity int, idle time.Duration) *clientTable {
	nbuckets := 1
	for nbuckets*ways < capacity {
		nbuckets <<= 1
	}
	return &clientTable{
		slots:    make([]client, nbuckets*ways),
		nbuckets: nbuckets,
		mask:     uint64(nbuckets - 1),
		idle:     idle,
	}
}

// capacity returns the table's fixed slot count.
func (t *clientTable) capacity() int { return len(t.slots) }

// hashAddr mixes a MAC address into 64 well-distributed bits
// (splitmix64 finalizer over the 48 address bits). The low bits pick
// the shard, the high bits pick the buckets, so shard routing and
// bucket placement stay independent.
func hashAddr(a dot11.Addr) uint64 {
	x := uint64(binary.BigEndian.Uint32(a[:4]))<<16 | uint64(binary.BigEndian.Uint16(a[4:]))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// buckets returns the two candidate bucket indices for a hash.
func (t *clientTable) buckets(h uint64) (int, int) {
	return int((h >> 32) & t.mask), int((h >> 48) & t.mask)
}

// lookup finds the slot for addr, admitting it if unknown. It returns
// the slot and how it was resolved; the slot is nil only for
// lookupRejected. On lookupAdmitted the slot's adapter may be nil (the
// caller creates it once); on lookupEvicted the recycled adapter has
// been Reset. lastSeen is refreshed on every call.
func (t *clientTable) lookup(addr dot11.Addr, now time.Duration) (*client, lookupResult) {
	h := hashAddr(addr)
	b1, b2 := t.buckets(h)

	// Find the client, remembering reuse candidates along the way: the
	// first free slot and the least-recently-seen live slot.
	var free *client
	var oldest *client
	for _, b := range [2]int{b1, b2} {
		base := b * ways
		for i := 0; i < ways; i++ {
			s := &t.slots[base+i]
			if s.live {
				if s.addr == addr {
					s.lastSeen = now
					return s, lookupFound
				}
				if oldest == nil || s.lastSeen < oldest.lastSeen {
					oldest = s
				}
			} else if free == nil {
				free = s
			}
		}
		if b2 == b1 {
			break
		}
	}

	if free != nil {
		t.admit(free, addr, now)
		return free, lookupAdmitted
	}
	if oldest != nil && now-oldest.lastSeen > t.idle {
		t.live-- // admit re-increments
		t.admit(oldest, addr, now)
		oldest.adapter.Reset()
		return oldest, lookupEvicted
	}
	return nil, lookupRejected
}

// admit initialises a slot for a new client, preserving any adapter
// already allocated for the slot.
func (t *clientTable) admit(s *client, addr dot11.Addr, now time.Duration) {
	s.addr = addr
	s.live = true
	s.lastSeen = now
	s.heading = 0
	s.speed = 0
	s.noise = 0
	s.frames = 0
	s.hints = 0
	t.live++
}
