package experiments

import (
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/rate"
	"repro/internal/ratesim"
	"repro/internal/sensors"
	"repro/internal/trace"
)

func init() {
	register("fig3-5", "hint-aware rate adaptation on mixed static/mobile traces (TCP)", Fig3_5,
		frames(phy.DefaultFrameBytes), tags("ch3", "rate", "paper"), plan(ratePlan(3, 15, 4)))
	register("fig3-6", "rate adaptation on mobile-only traces (TCP)", Fig3_6,
		frames(phy.DefaultFrameBytes), tags("ch3", "rate", "paper"), plan(ratePlan(3, 10, 4)))
	register("fig3-7", "rate adaptation on static-only traces (TCP)", Fig3_7,
		frames(phy.DefaultFrameBytes), tags("ch3", "rate", "paper"), plan(ratePlan(3, 10, 4)))
	register("fig3-8", "rate adaptation in the vehicular setting (UDP)", Fig3_8,
		frames(phy.DefaultFrameBytes), tags("ch3", "rate", "paper"), plan(ratePlan(1, 10, 4)))
}

// ratePlan publishes a Chapter 3 comparison's sub-trial grid as data:
// one cell per (environment, trace) pair, one unit per protocol — the
// exact plan its rateComparisonTrials call declares at the same Config.
func ratePlan(envs, nBase, nMin int) func(Config) parallel.SubPlan {
	return func(cfg Config) parallel.SubPlan {
		return parallel.SubPlan{Cells: envs * cfg.scaleInt(nBase, nMin), Units: len(protoSet)}
	}
}

// protoSet names the protocols compared in Chapter 3.
var protoSet = []string{"HintAware", "RapidSample", "SampleRate", "RRAA", "RBAR", "CHARM"}

// sampleRateWindows is the parameter sweep for the paper's post-facto
// best-parameter selection: "we post-process the trace to determine the
// best SampleRate parameter to use in each case; this biases our
// experiments in favor of SampleRate".
var sampleRateWindows = []time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second}

// newAdapter constructs a fresh adapter by protocol name. SampleRate's
// window is a parameter; other protocols take none.
func newAdapter(name string, window time.Duration, seed int64) rate.Adapter {
	switch name {
	case "HintAware":
		return rate.NewHintAware(seed)
	case "RapidSample":
		return rate.NewRapidSample()
	case "SampleRate":
		sr := rate.NewSampleRate(seed)
		sr.Window = window
		return sr
	case "RRAA":
		return rate.NewRRAA()
	case "RBAR":
		return rate.NewRBAR()
	case "CHARM":
		return rate.NewCHARM()
	}
	panic("unknown protocol " + name)
}

// runProto runs one protocol over one trace; for SampleRate it sweeps
// the window parameter and keeps the best result per the paper's biased
// methodology.
func runProto(name string, tr *trace.FateTrace, workload ratesim.Workload, seed int64) float64 {
	if name == "SampleRate" {
		best := 0.0
		for _, w := range sampleRateWindows {
			res := ratesim.Run(ratesim.Config{Trace: tr, Adapter: newAdapter(name, w, seed), Workload: workload, Seed: seed})
			if res.ThroughputMbps > best {
				best = res.ThroughputMbps
			}
		}
		return best
	}
	res := ratesim.Run(ratesim.Config{Trace: tr, Adapter: newAdapter(name, 0, seed), Workload: workload, Seed: seed})
	return res.ThroughputMbps
}

// rateComparisonTrials runs the trial phase of a Chapter 3 comparison
// as a sub-trial grid: one cell per (environment, trace) pair, one work
// unit per protocol replay. Each unit emits its protocol's throughput
// into the "<env>/<protocol>" accumulator; row-major sub-trial indexing
// visits units in exactly the order the old one-trial-per-cell loop
// emitted them, so the merged accumulators — and the report bytes — are
// unchanged, while a cell's six replays (the actual wall-clock weight;
// MAC replay dwarfs trace generation) can now land on six different
// workers. Trace and adapter seeds derive from the *cell* index on the
// cell seed streams, so every unit of a cell replays the identical
// trace regardless of which process runs it; the traceProvider memoizes
// the cell's generation across the units that share a process.
type rateCell struct {
	mean, ci float64
}

func rateComparisonTrials(cfg Config, label string, envs []channel.Environment, schedFor func(total time.Duration, rep int) sensors.Schedule,
	total time.Duration, nTraces int, workload ratesim.Workload) {

	traces := cfg.stream(label + "/traces")
	adapters := cfg.stream(label + "/adapters")
	plan := parallel.SubPlan{Cells: len(envs) * nTraces, Units: len(protoSet)}
	// Traces are per-cell throwaways; the pool recycles slot buffers
	// across cells so the fan-out is not throttled by allocation.
	var pool channel.TracePool
	prov := newTraceProvider(cfg, &pool, plan.Units, plan.Trials(), func(cell int) channel.Config {
		ei, rep := cell/nTraces, cell%nTraces
		return channel.Config{
			Env:   envs[ei],
			Sched: schedFor(total, rep),
			Total: total,
			Seed:  traces.Seed(cell),
		}
	})
	cfg.subTrials(label, plan, func(idx int, em *Emitter) {
		cell, unit := plan.Cell(idx)
		ei := cell / nTraces
		tr := prov.acquire(cell)
		defer prov.release(cell)
		p := protoSet[unit]
		em.Add(envs[ei].Name+"/"+p, runProto(p, tr, workload, adapters.Seed(cell)))
	})
}

// rateCells reads the merged per-protocol accumulators back into the
// mean/CI table the report renders.
func rateCells(cfg Config, envs []channel.Environment) map[string]map[string]rateCell {
	out := make(map[string]map[string]rateCell)
	for _, env := range envs {
		m := make(map[string]rateCell, len(protoSet))
		for _, p := range protoSet {
			acc := cfg.acc(env.Name + "/" + p)
			m[p] = rateCell{mean: acc.Mean(), ci: acc.CI95()}
		}
		out[env.Name] = m
	}
	return out
}

// buildRateReport renders the comparison as a paper-style table
// normalised to the reference protocol, with one row per protocol and
// one column pair per environment.
func buildRateReport(r *Report, cells map[string]map[string]rateCell, envs []channel.Environment, ref string) {
	for _, env := range envs {
		r.Columns = append(r.Columns, env.Name, env.Name+"±")
	}
	for _, p := range protoSet {
		row := Row{Label: p}
		for _, env := range envs {
			c := cells[env.Name][p]
			refMean := cells[env.Name][ref].mean
			norm, ciNorm := 0.0, 0.0
			if refMean > 0 {
				norm = c.mean / refMean
				ciNorm = c.ci / refMean
			}
			row.Values = append(row.Values, norm, ciNorm)
		}
		r.Rows = append(r.Rows, row)
	}
	for _, env := range envs {
		r.Notes = append(r.Notes, fmt.Sprintf("%s: %s absolute throughput %.2f Mbps",
			env.Name, ref, cells[env.Name][ref].mean))
	}
}

// Fig3_5 reproduces Figure 3-5: mixed-mobility 20 s traces (half static,
// half mobile) in the office, hallway and outdoor environments under
// TCP, comparing the hint-aware protocol against SampleRate (best
// post-facto window), RRAA and the SNR-based protocols.
func Fig3_5(cfg Config) *Report {
	envs := channel.Environments()
	n := cfg.scaleInt(15, 4) // the paper collects 10–20 traces per env
	sched := func(total time.Duration, rep int) sensors.Schedule {
		// Half static, half mobile; alternate which comes first, as in
		// the paper ("static for the first 10 seconds and mobile for the
		// next 10 seconds or the vice versa").
		return sensors.AlternatingSchedule(total, total/2, sensors.Walk, rep%2 == 1)
	}
	rateComparisonTrials(cfg, "fig3-5", envs, sched, 20*time.Second, n, ratesim.TCP)
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig3-5",
		Title: "Mixed-mobility throughput, normalised to hint-aware",
		Paper: "hint-aware best everywhere: +23–52% vs SampleRate, +17–39% vs RRAA, up to +47% vs RBAR",
	}
	cells := rateCells(cfg, envs)
	buildRateReport(r, cells, envs, "HintAware")

	for _, env := range envs {
		c := cells[env.Name]
		ha := c["HintAware"].mean
		r.AddCheck("hintaware-beats-samplerate-"+env.Name, ha > c["SampleRate"].mean,
			"hint-aware %.2f vs SampleRate %.2f (+%.0f%%)", ha, c["SampleRate"].mean, 100*(ha/c["SampleRate"].mean-1))
		r.AddCheck("hintaware-beats-rraa-"+env.Name, ha > c["RRAA"].mean,
			"hint-aware %.2f vs RRAA %.2f (+%.0f%%)", ha, c["RRAA"].mean, 100*(ha/c["RRAA"].mean-1))
		r.AddCheck("hintaware-beats-rbar-"+env.Name, ha > c["RBAR"].mean,
			"hint-aware %.2f vs RBAR %.2f (+%.0f%%)", ha, c["RBAR"].mean, 100*(ha/c["RBAR"].mean-1))
	}
	return r
}

// Fig3_6 reproduces Figure 3-6: mobile-only traces. RapidSample should
// beat every other protocol, by up to ~75% over SampleRate.
func Fig3_6(cfg Config) *Report {
	envs := channel.Environments()
	n := cfg.scaleInt(10, 4)
	sched := func(total time.Duration, rep int) sensors.Schedule {
		return sensors.Schedule{{Start: 0, End: total, Mode: sensors.Walk}}
	}
	rateComparisonTrials(cfg, "fig3-6", envs, sched, 20*time.Second, n, ratesim.TCP)
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig3-6",
		Title: "Mobile-only throughput, normalised to RapidSample",
		Paper: "RapidSample best in every environment; up to +75% vs SampleRate, up to +25% vs others",
	}
	cells := rateCells(cfg, envs)
	buildRateReport(r, cells, envs, "RapidSample")

	for _, env := range envs {
		c := cells[env.Name]
		rs := c["RapidSample"].mean
		for _, p := range []string{"SampleRate", "RRAA", "RBAR", "CHARM"} {
			r.AddCheck("rapidsample-beats-"+p+"-"+env.Name, rs > c[p].mean,
				"RapidSample %.2f vs %s %.2f", rs, p, c[p].mean)
		}
	}
	return r
}

// Fig3_7 reproduces Figure 3-7: static-only traces. RapidSample should
// be the worst frame-based protocol and SampleRate the best overall.
func Fig3_7(cfg Config) *Report {
	envs := channel.Environments()
	n := cfg.scaleInt(10, 4)
	sched := func(total time.Duration, rep int) sensors.Schedule {
		return sensors.Schedule{{Start: 0, End: total, Mode: sensors.Static}}
	}
	rateComparisonTrials(cfg, "fig3-7", envs, sched, 20*time.Second, n, ratesim.TCP)
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig3-7",
		Title: "Static-only throughput, normalised to RapidSample",
		Paper: "RapidSample worst (−12–28% vs SampleRate, up to −18% vs RRAA); SampleRate highest",
	}
	cells := rateCells(cfg, envs)
	buildRateReport(r, cells, envs, "RapidSample")

	for _, env := range envs {
		c := cells[env.Name]
		rs := c["RapidSample"].mean
		r.AddCheck("samplerate-beats-rapidsample-"+env.Name, c["SampleRate"].mean > rs,
			"SampleRate %.2f vs RapidSample %.2f (+%.0f%%)", c["SampleRate"].mean, rs, 100*(c["SampleRate"].mean/rs-1))
		r.AddCheck("rraa-beats-rapidsample-"+env.Name, c["RRAA"].mean > rs,
			"RRAA %.2f vs RapidSample %.2f", c["RRAA"].mean, rs)
	}
	return r
}

// Fig3_8 reproduces Figure 3-8: the vehicular setting under UDP (the
// paper switches to UDP because TCP times out under the mobile loss
// rates). RapidSample should lead, with roughly +28% over SampleRate and
// ~2× over the SNR-based protocols.
func Fig3_8(cfg Config) *Report {
	envs := []channel.Environment{channel.Vehicular}
	n := cfg.scaleInt(10, 4)
	sched := func(total time.Duration, rep int) sensors.Schedule {
		return sensors.Schedule{{Start: 0, End: total, Mode: sensors.Vehicle}}
	}
	rateComparisonTrials(cfg, "fig3-8", envs, sched, 10*time.Second, n, ratesim.UDP)
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig3-8",
		Title: "Vehicular throughput (UDP), normalised to RapidSample",
		Paper: "RapidSample ≈ +28% vs SampleRate, +36% vs RRAA, ~2× vs SNR-based",
	}
	cells := rateCells(cfg, envs)
	buildRateReport(r, cells, envs, "RapidSample")

	c := cells["vehicular"]
	rs := c["RapidSample"].mean
	for _, p := range []string{"SampleRate", "RRAA", "RBAR", "CHARM"} {
		r.AddCheck("rapidsample-beats-"+p, rs > c[p].mean,
			"RapidSample %.2f vs %s %.2f", rs, p, c[p].mean)
	}
	// Note: our harness grants RBAR the paper's §3.4 idealisation of
	// up-to-date receiver SNR even through loss bursts, which compresses
	// the vehicular gap relative to the paper's ~2x (their trained
	// SNR→rate mappings degraded badly at vehicular speeds).
	r.AddCheck("snr-gap-large", rs > 1.1*c["RBAR"].mean,
		"RapidSample %.2f vs RBAR %.2f (paper ~2x; idealised SNR feed compresses the gap)", rs, c["RBAR"].mean)
	return r
}
